//! Selective post-OPC extraction: the paper's core engine.
//!
//! For every *tagged* gate instance, the extractor builds a local
//! simulation window around the instance's poly geometry, applies the
//! configured OPC recipe (none / rule / model — with neighbouring
//! geometry as rule-corrected context), images the corrected mask,
//! slices every printed channel, reduces slices to equivalent lengths,
//! and writes the result into a [`CdAnnotation`] ready for timing
//! back-annotation.
//!
//! Windowing is per-instance rather than full-chip: this *is* the paper's
//! "selective extraction from the global circuit netlist" — experiment T9
//! quantifies the resulting scalability.
//!
//! # Engine architecture
//!
//! The engine runs in three phases:
//!
//! 1. **Key building** (parallel): each tagged gate's targets, context,
//!    window, channel sites and local exposure conditions are gathered and
//!    *canonicalised* — translated so the window's lower-left corner is the
//!    origin. Two gates whose neighbourhoods are translated copies of each
//!    other therefore produce identical [`ContextKey`]s. Coordinates are
//!    integer nanometres, so the translation is exact.
//! 2. **Unique-context pipeline** (parallel): OPC, aerial imaging and
//!    channel measurement run once per *distinct* key, in the local frame.
//! 3. **Merge** (serial, in `GateId` order): each gate's annotation is
//!    assembled from its key's shared result; statistics are accumulated
//!    in gate order. Because work distribution only affects *where* a key
//!    is computed — never its value or the merge order — the outcome is
//!    bit-identical for any thread count and for cache on vs off.
//!
//! Across-chip conditions are quantised onto a focus/dose lattice before
//! keying, and simulation runs *at* the quantised conditions, so cache
//! reuse under an [`AcrossChipMap`] is exact rather than approximate.

use crate::error::{FlowError, Result};
use crate::fault::{FaultInjection, FaultPolicy, FaultStage, InjectedFault, QuarantinedGate};
use crate::tags::TagSet;
use postopc_cdex::{extract_gate, ExtractedGate, MeasureConfig};
use postopc_device::{EquivalentGate, GateSlice, MosKind, ProcessParams};
use postopc_geom::{Coord, Polygon, Rect, Vector};
use postopc_layout::{Design, GateId, Layer, TransistorSite};
use postopc_litho::{AerialImage, ProcessConditions, ResistModel, SimulationSpec, SurrogateModel};
use postopc_opc::{model, rules, ModelOpcConfig, RuleOpcConfig};
use postopc_sta::{CdAnnotation, GateAnnotation, TransistorCd};
use std::collections::HashMap;

/// How the mask in each extraction window is corrected before imaging.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OpcMode {
    /// No correction: image the drawn layout (the "what if we skipped
    /// OPC" baseline of experiment T1).
    None,
    /// Rule-based OPC on targets and context.
    Rule,
    /// Model-based OPC on the instance's polygons, rule-corrected
    /// context (the production recipe).
    #[default]
    Model,
}

/// Across-chip systematic process variation: a smooth focus/dose surface
/// over the die (lens field curvature, post-exposure-bake plate gradients,
/// etch loading — the dominant 90 nm CD-uniformity terms).
///
/// Real across-field variation lives at the millimetre scale; our
/// substitute die is tens of µm, so the map is scale-compressed: `period`
/// should be chosen relative to the die size (see `DESIGN.md`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AcrossChipMap {
    /// Peak focus excursion in nm.
    pub focus_amplitude_nm: f64,
    /// Peak relative dose excursion (0.02 = ±2%).
    pub dose_amplitude: f64,
    /// Spatial period of the variation surface, in nm.
    pub period_nm: f64,
}

impl AcrossChipMap {
    /// A typical 90 nm across-chip budget: ±60 nm focus, ±2% dose.
    pub fn typical(die: postopc_geom::Rect) -> AcrossChipMap {
        AcrossChipMap {
            focus_amplitude_nm: 60.0,
            dose_amplitude: 0.02,
            period_nm: (die.width().max(die.height()) as f64) * 0.8,
        }
    }

    /// Validates the map's numeric fields (finite, in-band).
    ///
    /// # Errors
    ///
    /// [`FlowError::InvalidConfig`] naming the offending field when an
    /// amplitude or the period is non-finite or out of band.
    pub fn validate(&self) -> Result<()> {
        for (name, value) in [
            ("focus_amplitude_nm", self.focus_amplitude_nm),
            ("dose_amplitude", self.dose_amplitude),
            ("period_nm", self.period_nm),
        ] {
            if !value.is_finite() {
                return Err(FlowError::InvalidConfig(format!(
                    "across-chip {name} must be finite, got {value}"
                )));
            }
        }
        if !(0.0..=500.0).contains(&self.focus_amplitude_nm) {
            return Err(FlowError::InvalidConfig(format!(
                "across-chip focus_amplitude_nm must be in [0, 500] nm, got {}",
                self.focus_amplitude_nm
            )));
        }
        if !(0.0..1.0).contains(&self.dose_amplitude) {
            return Err(FlowError::InvalidConfig(format!(
                "across-chip dose_amplitude must be in [0, 1), got {}",
                self.dose_amplitude
            )));
        }
        if self.period_nm <= 0.0 {
            return Err(FlowError::InvalidConfig(format!(
                "across-chip period_nm must be positive, got {}",
                self.period_nm
            )));
        }
        Ok(())
    }

    /// The local exposure conditions at a die position.
    pub fn conditions_at(
        &self,
        die: postopc_geom::Rect,
        position: postopc_geom::Point,
        base: ProcessConditions,
    ) -> ProcessConditions {
        let tau = std::f64::consts::TAU;
        let u = tau * (position.x - die.left()) as f64 / self.period_nm;
        let v = tau * (position.y - die.bottom()) as f64 / self.period_nm;
        ProcessConditions {
            focus_nm: base.focus_nm + self.focus_amplitude_nm * u.sin() * v.cos(),
            dose: base.dose * (1.0 + self.dose_amplitude * (u + 0.7).cos() * (v + 0.3).sin()),
        }
    }
}

/// Feature-vector dimension of the learned CD surrogate: bias, drawn CD,
/// width, focus (linear + quadratic), dose, four nearest-neighbour gaps,
/// pattern density at three radii, window geometry and edge clearance.
/// See [`site_features`] for the exact layout.
pub const SURROGATE_FEATURE_DIM: usize = 16;

/// Configuration of the learned CD surrogate tier (see
/// [`SurrogateModel`]): a confidence-gated fast path between the warm
/// [`ContextStore`] and full litho simulation. Trained online from the
/// SOCS results the run computes anyway; out-of-distribution contexts
/// always take the real simulation path.
#[derive(Clone, PartialEq)]
pub struct SurrogateConfig {
    /// Master switch. `false` (the default) leaves the engine on its
    /// pre-surrogate path, bit for bit.
    pub enabled: bool,
    /// Confidence gate: a context is served by the surrogate only when
    /// every site's leverage score is at most `gate_threshold ×`
    /// [`SURROGATE_FEATURE_DIM`]. In-distribution points score near the
    /// feature dimension, so this is "how many times a typical training
    /// point's leverage" is still trusted. Lower is stricter.
    pub gate_threshold: f64,
    /// Minimum training samples absorbed before any prediction is served
    /// (the warm-up: the first `min_train` contexts always simulate).
    pub min_train: usize,
    /// Training-round size: gate decisions for a round use the model as
    /// of the round start, the round's fallbacks simulate in parallel,
    /// and the model refits at the round boundary. The round structure —
    /// not thread scheduling — defines the training stream, which is what
    /// keeps surrogate runs bit-identical across thread counts.
    pub round: usize,
    /// Audit cadence: every `audit_every`-th gate-accepted context is
    /// simulated anyway; the SOCS result is used (and trained on) and the
    /// surrogate/SOCS residual feeds
    /// [`ExtractionStats::surrogate_max_residual_nm`]. `0` disables
    /// auditing.
    pub audit_every: usize,
    /// Ridge regulariser of the underlying model.
    pub lambda: f64,
    /// Gradient-boosted stumps per target fitted to the ridge residuals
    /// at each refit; `0` keeps the surrogate purely linear.
    pub boost_rounds: usize,
    /// Optional pre-trained model (from a `POCSURR1` file or a warm
    /// artifact) to start from instead of a blank one. Online training
    /// continues on top of it.
    pub pretrained: Option<SurrogateModel>,
}

impl SurrogateConfig {
    /// Surrogate disabled (the [`ExtractionConfig::standard`] default).
    pub fn off() -> SurrogateConfig {
        SurrogateConfig {
            enabled: false,
            ..SurrogateConfig::standard()
        }
    }

    /// The production surrogate recipe: leverage gate at 4× the feature
    /// dimension, 32-context warm-up and rounds, audit every 16th
    /// accepted context, 8 boost stumps per target.
    pub fn standard() -> SurrogateConfig {
        SurrogateConfig {
            enabled: true,
            gate_threshold: 4.0,
            min_train: 32,
            round: 32,
            audit_every: 16,
            lambda: 1e-3,
            boost_rounds: 8,
            pretrained: None,
        }
    }

    /// A blank model matching this configuration's hyper-parameters.
    pub fn fresh_model(&self) -> SurrogateModel {
        SurrogateModel::new(SURROGATE_FEATURE_DIM, self.lambda, self.boost_rounds)
    }

    /// Validates the configuration ahead of a run (no-op when disabled).
    ///
    /// # Errors
    ///
    /// [`FlowError::InvalidConfig`] naming the offending field for a
    /// non-positive gate threshold, regulariser, warm-up or round size,
    /// or a pre-trained model of the wrong feature dimension.
    pub fn validate(&self) -> Result<()> {
        if !self.enabled {
            return Ok(());
        }
        for (name, value) in [
            ("gate_threshold", self.gate_threshold),
            ("lambda", self.lambda),
        ] {
            if !value.is_finite() || value <= 0.0 {
                return Err(FlowError::InvalidConfig(format!(
                    "surrogate {name} must be finite and positive, got {value}"
                )));
            }
        }
        for (name, value) in [("min_train", self.min_train), ("round", self.round)] {
            if value == 0 {
                return Err(FlowError::InvalidConfig(format!(
                    "surrogate {name} must be at least 1"
                )));
            }
        }
        if let Some(pre) = &self.pretrained {
            if pre.dim() != SURROGATE_FEATURE_DIM {
                return Err(FlowError::InvalidConfig(format!(
                    "surrogate pretrained model has feature dimension {}, engine expects {}",
                    pre.dim(),
                    SURROGATE_FEATURE_DIM
                )));
            }
        }
        Ok(())
    }
}

impl Default for SurrogateConfig {
    fn default() -> Self {
        SurrogateConfig::off()
    }
}

impl std::fmt::Debug for SurrogateConfig {
    /// The pre-trained model's full training state is summarised as its
    /// [`SurrogateModel::fingerprint`]: the `Debug` rendering feeds
    /// [`crate::content_hash`], where the model *hash* (not megabytes of
    /// Gram state) belongs in the invalidation key.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SurrogateConfig")
            .field("enabled", &self.enabled)
            .field("gate_threshold", &self.gate_threshold)
            .field("min_train", &self.min_train)
            .field("round", &self.round)
            .field("audit_every", &self.audit_every)
            .field("lambda", &self.lambda)
            .field("boost_rounds", &self.boost_rounds)
            .field(
                "pretrained",
                &self
                    .pretrained
                    .as_ref()
                    .map(|m| format!("fingerprint={:#018x}", m.fingerprint())),
            )
            .finish()
    }
}

/// Extraction configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct ExtractionConfig {
    /// Imaging model.
    pub sim: SimulationSpec,
    /// Resist threshold model.
    pub resist: ResistModel,
    /// Gate slicing parameters.
    pub measure: MeasureConfig,
    /// Device model for equivalent-length reduction.
    pub process: ProcessParams,
    /// Mask correction recipe.
    pub opc_mode: OpcMode,
    /// Model-OPC settings (used when `opc_mode == Model`).
    pub model_opc: ModelOpcConfig,
    /// Rule-OPC settings (used for context and `opc_mode == Rule`).
    pub rule_opc: RuleOpcConfig,
    /// Extra margin around the instance bbox for the simulation window, nm.
    pub window_margin_nm: Coord,
    /// Context gathering radius beyond the window (optical ambit), nm.
    pub context_ambit_nm: Coord,
    /// Optional across-chip systematic variation surface: each gate is
    /// imaged at the *local* focus/dose of its die position.
    pub across_chip: Option<AcrossChipMap>,
    /// Worker threads for the parallel phases. `None` defers to the
    /// `POSTOPC_THREADS` environment variable, then to the machine's
    /// available parallelism. The result is identical for any value.
    pub threads: Option<usize>,
    /// Deduplicate identical litho contexts (OPC + imaging + measurement
    /// run once per distinct context). The result is identical either way;
    /// `false` forces every gate down the full pipeline.
    pub cache: bool,
    /// Focus lattice pitch (nm) for quantising across-chip conditions
    /// before context keying. `0.0` disables quantisation (every gate
    /// under an [`AcrossChipMap`] then gets a distinct key). Ignored when
    /// `across_chip` is `None` — nominal conditions are used verbatim.
    pub focus_quantum_nm: f64,
    /// Dose lattice pitch (relative dose) for across-chip quantisation;
    /// `0.0` disables it.
    pub dose_quantum: f64,
    /// What to do when a per-gate fault (typed error or worker panic)
    /// occurs. [`FaultPolicy::Fail`] (the default) aborts on the first
    /// fault — bit-identical to the pre-quarantine engine;
    /// [`FaultPolicy::Quarantine`] records the gate (it keeps drawn
    /// dimensions) and keeps going.
    pub fault_policy: FaultPolicy,
    /// Optional deterministic fault injector — validation plumbing for the
    /// quarantine machinery; `None` (the default) leaves the engine on its
    /// normal path.
    pub fault_injection: Option<FaultInjection>,
    /// Learned CD surrogate tier: confidence-gated ridge/stump predictions
    /// that bypass the OPC → imaging → measurement pipeline for novel
    /// contexts the model is confident about. Off by default — the
    /// surrogate-off engine is bit-identical to the pre-surrogate one.
    pub surrogate: SurrogateConfig,
}

impl ExtractionConfig {
    /// The production recipe: model OPC, standard measurement.
    pub fn standard() -> ExtractionConfig {
        ExtractionConfig {
            sim: SimulationSpec::nominal(),
            resist: ResistModel::standard(),
            measure: MeasureConfig::standard(),
            process: ProcessParams::n90(),
            opc_mode: OpcMode::Model,
            model_opc: ModelOpcConfig::standard(),
            rule_opc: RuleOpcConfig::standard(),
            window_margin_nm: 80,
            context_ambit_nm: 420,
            across_chip: None,
            threads: None,
            cache: true,
            focus_quantum_nm: 0.5,
            dose_quantum: 5e-4,
            fault_policy: FaultPolicy::Fail,
            fault_injection: None,
            surrogate: SurrogateConfig::off(),
        }
    }

    /// Validates the configuration's numeric fields ahead of a run.
    ///
    /// # Errors
    ///
    /// [`FlowError::InvalidConfig`] for an out-of-band across-chip map,
    /// quarantine budget or injection rate.
    pub fn validate(&self) -> Result<()> {
        if let Some(map) = &self.across_chip {
            map.validate()?;
        }
        if let FaultPolicy::Quarantine { max_fraction } = self.fault_policy {
            if !max_fraction.is_finite() || !(0.0..=1.0).contains(&max_fraction) {
                return Err(FlowError::InvalidConfig(format!(
                    "quarantine max_fraction must be in [0, 1], got {max_fraction}"
                )));
            }
        }
        if let Some(injection) = &self.fault_injection {
            injection.validate()?;
        }
        self.surrogate.validate()?;
        Ok(())
    }

    /// The same configuration at different process conditions (for
    /// process-window timing, experiment F5).
    pub fn with_conditions(&self, conditions: ProcessConditions) -> ExtractionConfig {
        let mut cfg = self.clone();
        cfg.sim = cfg.sim.with_conditions(conditions);
        cfg.model_opc.sim = cfg.model_opc.sim.clone(); // OPC stays at nominal: masks are built once
        cfg
    }
}

impl Default for ExtractionConfig {
    fn default() -> Self {
        ExtractionConfig::standard()
    }
}

/// Bookkeeping of one extraction run.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ExtractionStats {
    /// Gates successfully extracted.
    pub gates_extracted: usize,
    /// Gates that fell back to drawn dimensions (unprinted channels).
    pub gates_failed: usize,
    /// Simulation windows imaged (one per *distinct* litho context).
    pub windows: usize,
    /// Model-OPC aerial simulations (cost metric of experiment T7/T9).
    pub opc_simulations: usize,
    /// Model-OPC fragment moves.
    pub opc_fragment_moves: usize,
    /// Gates whose litho context matched one already seen earlier in
    /// this run and reused its result.
    pub cache_hits: usize,
    /// Gates that were the first in-run occurrence of their distinct
    /// litho context (every other gate is a `cache_hit`). Split by
    /// provenance into `windows` (imaged this run) and `store_hits`
    /// (served from a warm [`ContextStore`] without re-imaging).
    pub cache_misses: usize,
    /// Distinct contexts served from a warm [`ContextStore`] instead of
    /// being re-imaged (always `0` without one). `windows` counts only the
    /// contexts this run actually imaged, so under an incremental (ECO)
    /// re-extraction `windows` *is* the number of dirtied windows.
    pub store_hits: usize,
    /// Distinct contexts served by the learned CD surrogate instead of
    /// being imaged (always `0` with the surrogate off). Together,
    /// `windows + store_hits + surrogate_hits == cache_misses`.
    pub surrogate_hits: usize,
    /// Novel contexts that took the full simulation path while the
    /// surrogate was enabled: warm-up, leverage-gate rejections,
    /// implausible predictions and audits. Always `0` with it off.
    pub surrogate_fallbacks: usize,
    /// Largest |surrogate CD − SOCS CD| (nm, over both equivalent
    /// lengths) observed on audited contexts — contexts the gate accepted
    /// but that were simulated anyway on the configured audit cadence.
    /// `0.0` when nothing was audited.
    pub surrogate_max_residual_nm: f64,
    /// All per-transistor extraction records (input to CD statistics, T2).
    pub extracted: Vec<ExtractedGate>,
    /// Gates quarantined under [`FaultPolicy::Quarantine`] (they keep
    /// drawn dimensions, like measurement fallbacks). Always `0` under
    /// [`FaultPolicy::Fail`].
    pub gates_quarantined: usize,
    /// Per-gate quarantine records, in `GateId` order.
    pub quarantined: Vec<QuarantinedGate>,
}

impl ExtractionStats {
    /// Fraction of gates served from the context cache, in `[0, 1]`.
    pub fn cache_hit_rate(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            0.0
        } else {
            self.cache_hits as f64 / total as f64
        }
    }

    /// Fraction of submitted gates that were quarantined, in `[0, 1]`.
    pub fn quarantine_fraction(&self) -> f64 {
        let total = self.gates_extracted + self.gates_failed + self.gates_quarantined;
        if total == 0 {
            0.0
        } else {
            self.gates_quarantined as f64 / total as f64
        }
    }
}

/// Result of an extraction run: the annotation plus its statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct ExtractionOutcome {
    /// Per-gate extracted CDs, ready for [`postopc_sta::TimingModel::analyze`].
    pub annotation: CdAnnotation,
    /// Run statistics.
    pub stats: ExtractionStats,
}

/// A transistor channel's contribution to a [`ContextKey`]: geometry in
/// the window-local frame, dimensions as exact bit patterns.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct SiteKey {
    channel: Rect,
    kind: MosKind,
    width_bits: u64,
    drawn_bits: u64,
    finger: usize,
}

/// Everything the per-window pipeline depends on, canonicalised to the
/// window-local frame. Two gates with equal keys print identically.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct ContextKey {
    targets: Vec<Polygon>,
    context: Vec<Polygon>,
    window: Rect,
    sites: Vec<SiteKey>,
    focus_bits: u64,
    dose_bits: u64,
}

/// Phase-1 output for one gate: its canonical key plus what the merge
/// phase needs to re-anchor shared results to this instance.
struct GateWork {
    gate: GateId,
    site_indices: Vec<usize>,
    key: ContextKey,
}

/// Phase-2 output for one distinct context.
#[derive(Clone)]
struct UniqueOutcome {
    opc_simulations: usize,
    opc_fragment_moves: usize,
    /// Per-channel slices and equivalent, in site order; `None` if any
    /// channel failed to print (member gates keep drawn dimensions).
    sites: Option<Vec<(Vec<GateSlice>, EquivalentGate)>>,
}

/// Phase-2 result per distinct context, policy-resolved: under
/// [`FaultPolicy::Fail`] a failing context carries its typed error (the
/// merge aborts on the first one in `GateId` order, as before); under
/// [`FaultPolicy::Quarantine`] it carries the rendered cause and the merge
/// quarantines every member gate instead.
enum UniqueResult {
    Ok(UniqueOutcome),
    Err(FlowError),
    Fault(String),
}

/// A warm store of distinct litho-context outcomes, keyed by the engine's
/// canonical [`ContextKey`]s (exact window-local geometry + quantised
/// conditions — the same keys the in-run dedup uses, so reuse is exact,
/// never approximate).
///
/// Pass one to [`extract_gates_with_store`] to make extraction
/// incremental: contexts already in the store are *not* re-imaged — their
/// stored per-site measurements are merged as if freshly computed, bit
/// for bit — and every novel context is imaged once and then retained.
/// After an ECO that dirties K gates, a re-extraction therefore images
/// only the dirtied optical-influence windows ([`ExtractionStats::windows`]
/// counts exactly those; [`ExtractionStats::store_hits`] the reused ones).
///
/// The store is bypassed whenever fault injection is active — injected
/// faults are validation plumbing and must not poison warm state.
#[derive(Clone, Default)]
pub struct ContextStore {
    entries: HashMap<ContextKey, UniqueOutcome>,
}

impl std::fmt::Debug for ContextStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ContextStore")
            .field("entries", &self.entries.len())
            .finish()
    }
}

impl ContextStore {
    /// An empty store.
    pub fn new() -> ContextStore {
        ContextStore::default()
    }

    /// Number of distinct contexts retained.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the store holds no contexts yet.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Serializes the store into `out` as length-prefixed canonical bytes
    /// (entries sorted by their encoding, so equal stores produce equal
    /// bytes regardless of hash-map iteration order).
    pub(crate) fn encode_into(&self, out: &mut Vec<u8>) {
        let mut encoded: Vec<Vec<u8>> = self
            .entries
            .iter()
            .map(|(key, outcome)| {
                let mut buf = Vec::new();
                encode_context_key(key, &mut buf);
                encode_unique_outcome(outcome, &mut buf);
                buf
            })
            .collect();
        encoded.sort_unstable();
        put_u64(out, encoded.len() as u64);
        for buf in encoded {
            put_u64(out, buf.len() as u64);
            out.extend_from_slice(&buf);
        }
    }

    /// Decodes a store previously written by [`Self::encode_into`].
    pub(crate) fn decode_from(bytes: &[u8], cursor: &mut usize) -> Result<ContextStore> {
        let count = take_u64(bytes, cursor)?;
        let mut entries = HashMap::with_capacity(count.min(1 << 20) as usize);
        for _ in 0..count {
            let len = take_u64(bytes, cursor)? as usize;
            let end = cursor
                .checked_add(len)
                .filter(|&e| e <= bytes.len())
                .ok_or_else(|| artifact_err("context store entry overruns the payload"))?;
            let entry = &bytes[..end];
            let key = decode_context_key(entry, cursor)?;
            let outcome = decode_unique_outcome(entry, cursor)?;
            if *cursor != end {
                return Err(artifact_err("context store entry has trailing bytes"));
            }
            entries.insert(key, outcome);
        }
        Ok(ContextStore { entries })
    }
}

pub(crate) fn artifact_err(reason: &str) -> FlowError {
    FlowError::Artifact(crate::error::ArtifactError::corrupt(reason))
}

pub(crate) fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

pub(crate) fn put_i64(out: &mut Vec<u8>, v: i64) {
    out.extend_from_slice(&v.to_le_bytes());
}

pub(crate) fn take_u64(bytes: &[u8], cursor: &mut usize) -> Result<u64> {
    let end = cursor
        .checked_add(8)
        .filter(|&e| e <= bytes.len())
        .ok_or_else(|| artifact_err("truncated integer field"))?;
    let mut raw = [0u8; 8];
    raw.copy_from_slice(&bytes[*cursor..end]);
    *cursor = end;
    Ok(u64::from_le_bytes(raw))
}

pub(crate) fn take_i64(bytes: &[u8], cursor: &mut usize) -> Result<i64> {
    Ok(take_u64(bytes, cursor)? as i64)
}

fn encode_polygon(p: &Polygon, out: &mut Vec<u8>) {
    put_u64(out, p.vertices().len() as u64);
    for v in p.vertices() {
        put_i64(out, v.x);
        put_i64(out, v.y);
    }
}

fn decode_polygon(bytes: &[u8], cursor: &mut usize) -> Result<Polygon> {
    let n = take_u64(bytes, cursor)?;
    if n > 1 << 20 {
        return Err(artifact_err("polygon vertex count out of range"));
    }
    let mut vertices = Vec::with_capacity(n as usize);
    for _ in 0..n {
        let x = take_i64(bytes, cursor)?;
        let y = take_i64(bytes, cursor)?;
        vertices.push(postopc_geom::Point::new(x, y));
    }
    Polygon::new(vertices).map_err(|e| artifact_err(&format!("invalid stored polygon: {e}")))
}

fn encode_rect(r: Rect, out: &mut Vec<u8>) {
    put_i64(out, r.left());
    put_i64(out, r.bottom());
    put_i64(out, r.right());
    put_i64(out, r.top());
}

fn decode_rect(bytes: &[u8], cursor: &mut usize) -> Result<Rect> {
    let (x0, y0) = (take_i64(bytes, cursor)?, take_i64(bytes, cursor)?);
    let (x1, y1) = (take_i64(bytes, cursor)?, take_i64(bytes, cursor)?);
    Rect::new(x0, y0, x1, y1).map_err(|e| artifact_err(&format!("invalid stored rect: {e}")))
}

fn encode_context_key(key: &ContextKey, out: &mut Vec<u8>) {
    put_u64(out, key.targets.len() as u64);
    for p in &key.targets {
        encode_polygon(p, out);
    }
    put_u64(out, key.context.len() as u64);
    for p in &key.context {
        encode_polygon(p, out);
    }
    encode_rect(key.window, out);
    put_u64(out, key.sites.len() as u64);
    for s in &key.sites {
        encode_rect(s.channel, out);
        out.push(match s.kind {
            MosKind::Nmos => 0,
            MosKind::Pmos => 1,
        });
        put_u64(out, s.width_bits);
        put_u64(out, s.drawn_bits);
        put_u64(out, s.finger as u64);
    }
    put_u64(out, key.focus_bits);
    put_u64(out, key.dose_bits);
}

fn decode_context_key(bytes: &[u8], cursor: &mut usize) -> Result<ContextKey> {
    let n_targets = take_u64(bytes, cursor)?;
    let mut targets = Vec::with_capacity(n_targets.min(1 << 20) as usize);
    for _ in 0..n_targets {
        targets.push(decode_polygon(bytes, cursor)?);
    }
    let n_context = take_u64(bytes, cursor)?;
    let mut context = Vec::with_capacity(n_context.min(1 << 20) as usize);
    for _ in 0..n_context {
        context.push(decode_polygon(bytes, cursor)?);
    }
    let window = decode_rect(bytes, cursor)?;
    let n_sites = take_u64(bytes, cursor)?;
    let mut sites = Vec::with_capacity(n_sites.min(1 << 20) as usize);
    for _ in 0..n_sites {
        let channel = decode_rect(bytes, cursor)?;
        let kind = match bytes.get(*cursor) {
            Some(0) => MosKind::Nmos,
            Some(1) => MosKind::Pmos,
            _ => return Err(artifact_err("invalid stored MOS kind")),
        };
        *cursor += 1;
        sites.push(SiteKey {
            channel,
            kind,
            width_bits: take_u64(bytes, cursor)?,
            drawn_bits: take_u64(bytes, cursor)?,
            finger: take_u64(bytes, cursor)? as usize,
        });
    }
    Ok(ContextKey {
        targets,
        context,
        window,
        sites,
        focus_bits: take_u64(bytes, cursor)?,
        dose_bits: take_u64(bytes, cursor)?,
    })
}

fn encode_unique_outcome(outcome: &UniqueOutcome, out: &mut Vec<u8>) {
    put_u64(out, outcome.opc_simulations as u64);
    put_u64(out, outcome.opc_fragment_moves as u64);
    match &outcome.sites {
        None => out.push(0),
        Some(per_site) => {
            out.push(1);
            put_u64(out, per_site.len() as u64);
            for (slices, equivalent) in per_site {
                put_u64(out, slices.len() as u64);
                for s in slices {
                    put_u64(out, s.w_nm.to_bits());
                    put_u64(out, s.l_nm.to_bits());
                }
                put_u64(out, equivalent.w_nm.to_bits());
                put_u64(out, equivalent.l_delay_nm.to_bits());
                put_u64(out, equivalent.l_leakage_nm.to_bits());
            }
        }
    }
}

fn decode_unique_outcome(bytes: &[u8], cursor: &mut usize) -> Result<UniqueOutcome> {
    let opc_simulations = take_u64(bytes, cursor)? as usize;
    let opc_fragment_moves = take_u64(bytes, cursor)? as usize;
    let tag = bytes.get(*cursor).copied();
    *cursor += 1;
    let sites = match tag {
        Some(0) => None,
        Some(1) => {
            let n = take_u64(bytes, cursor)?;
            let mut per_site = Vec::with_capacity(n.min(1 << 20) as usize);
            for _ in 0..n {
                let n_slices = take_u64(bytes, cursor)?;
                let mut slices = Vec::with_capacity(n_slices.min(1 << 20) as usize);
                for _ in 0..n_slices {
                    slices.push(GateSlice {
                        w_nm: f64::from_bits(take_u64(bytes, cursor)?),
                        l_nm: f64::from_bits(take_u64(bytes, cursor)?),
                    });
                }
                let equivalent = EquivalentGate {
                    w_nm: f64::from_bits(take_u64(bytes, cursor)?),
                    l_delay_nm: f64::from_bits(take_u64(bytes, cursor)?),
                    l_leakage_nm: f64::from_bits(take_u64(bytes, cursor)?),
                };
                per_site.push((slices, equivalent));
            }
            Some(per_site)
        }
        _ => return Err(artifact_err("invalid stored outcome tag")),
    };
    Ok(UniqueOutcome {
        opc_simulations,
        opc_fragment_moves,
        sites,
    })
}

/// First non-physical (non-finite or non-positive) dimension in a gate's
/// merged CD records, if any — the extraction → STA boundary guard.
fn invalid_cd(records: &[TransistorCd]) -> Option<(&'static str, f64)> {
    for r in records {
        for (field, value) in [
            ("width_nm", r.width_nm),
            ("l_delay_nm", r.l_delay_nm),
            ("l_leakage_nm", r.l_leakage_nm),
        ] {
            if !value.is_finite() || value <= 0.0 {
                return Some((field, value));
            }
        }
    }
    None
}

fn quantize(value: f64, quantum: f64) -> f64 {
    if quantum > 0.0 {
        (value / quantum).round() * quantum
    } else {
        value
    }
}

/// Extracts post-OPC CDs for every tagged gate of `design`.
///
/// The output is deterministic: bit-identical for any thread count and
/// for `cache` on vs off (see the module docs for why).
///
/// # Errors
///
/// Under [`FaultPolicy::Fail`] (the default), propagates simulation/OPC
/// errors (the first in `GateId` order) and rejects non-physical merged
/// CDs with [`postopc_sta::StaError::InvalidCd`]. Under
/// [`FaultPolicy::Quarantine`], per-gate faults are recorded in the stats
/// instead (the gate keeps drawn dimensions) and only an overrun of the
/// quarantine budget ([`FlowError::QuarantineExceeded`]) or an invalid
/// configuration aborts the run. Per-gate *measurement* failures are
/// recorded as `gates_failed` under either policy, as before.
pub fn extract_gates(
    design: &Design,
    config: &ExtractionConfig,
    tags: &TagSet,
) -> Result<ExtractionOutcome> {
    extract_gates_with_store(design, config, tags, None)
}

/// [`extract_gates`] against a warm [`ContextStore`]: contexts already in
/// the store skip the OPC → imaging → measurement pipeline (their stored
/// results are merged bit-identically), novel contexts are imaged once
/// and retained. With `None` (or an empty store) this *is* a cold run.
///
/// # Errors
///
/// As [`extract_gates`] — the store only changes where a context's result
/// comes from, never its value.
pub fn extract_gates_with_store(
    design: &Design,
    config: &ExtractionConfig,
    tags: &TagSet,
    store: Option<&mut ContextStore>,
) -> Result<ExtractionOutcome> {
    extract_gates_with_caches(design, config, tags, store, None)
}

/// [`extract_gates_with_store`] with an additional *external* surrogate
/// model: when `config.surrogate.enabled` and `surrogate` is `Some`, the
/// engine gates, predicts and trains against the caller's model in place
/// (so a warm service accumulates training across runs); with `None` it
/// uses a run-local model seeded from `config.surrogate.pretrained`. The
/// model parameter is ignored while the surrogate is disabled.
///
/// # Errors
///
/// As [`extract_gates`], plus [`FlowError::InvalidConfig`] for a model of
/// the wrong feature dimension and [`FlowError::Litho`] if a (pre-trained
/// or online) model cannot be refitted.
pub fn extract_gates_with_caches(
    design: &Design,
    config: &ExtractionConfig,
    tags: &TagSet,
    store: Option<&mut ContextStore>,
    surrogate: Option<&mut SurrogateModel>,
) -> Result<ExtractionOutcome> {
    config.validate()?;
    // Group transistor sites by gate for quick lookup.
    let mut sites_by_gate: HashMap<GateId, Vec<usize>> = HashMap::new();
    for (i, site) in design.transistor_sites().iter().enumerate() {
        sites_by_gate.entry(site.gate).or_default().push(i);
    }
    let gate_order = tags.sorted();
    let threads = postopc_parallel::effective_threads(config.threads);
    let injection = config.fault_injection;
    let injected_for = |gate: GateId| injection.and_then(|inj| inj.fault_for(gate));

    // Phase 1: build each gate's canonical context key. Under `Quarantine`
    // a faulting gate (typed error *or* worker panic) is set aside instead
    // of aborting the run; the fault list comes back in input order, so
    // the record is thread-count invariant.
    let mut quarantined: Vec<QuarantinedGate> = Vec::new();
    let work_fn = |_: usize, gate_id: &GateId| {
        let injected = injected_for(*gate_id);
        if injected == Some(InjectedFault::WorkerPanic) {
            panic!(
                "injected fault: worker panic while building gate {} context",
                gate_id.0
            );
        }
        build_gate_work(design, config, &sites_by_gate, *gate_id, injected)
    };
    let works: Vec<Option<GateWork>> = match config.fault_policy {
        FaultPolicy::Fail => postopc_parallel::try_par_map(threads, &gate_order, work_fn)?
            .into_iter()
            .map(Some)
            .collect(),
        FaultPolicy::Quarantine { .. } => {
            let (results, faults) =
                postopc_parallel::try_par_map_quarantine(threads, &gate_order, "context", work_fn);
            for fault in faults {
                quarantined.push(QuarantinedGate {
                    gate: gate_order[fault.item],
                    stage: FaultStage::Context,
                    cause: fault.cause.to_string(),
                });
            }
            results
        }
    };

    // Deduplicate keys in gate order (first member of each distinct
    // context is its representative), then run each distinct context
    // through the OPC → imaging → measurement pipeline. Quarantined gates
    // have no key and join no context.
    let mut unique_index: HashMap<&ContextKey, usize> = HashMap::new();
    let mut unique_keys: Vec<&ContextKey> = Vec::new();
    let mut membership: Vec<Option<usize>> = Vec::with_capacity(works.len());
    for work in &works {
        let Some(work) = work else {
            membership.push(None);
            continue;
        };
        if config.cache {
            let next = unique_keys.len();
            let idx = *unique_index.entry(&work.key).or_insert_with(|| {
                unique_keys.push(&work.key);
                next
            });
            membership.push(Some(idx));
        } else {
            membership.push(Some(unique_keys.len()));
            unique_keys.push(&work.key);
        }
    }
    // Partition distinct contexts into store-served (their retained
    // outcome replays bit for bit, no pipeline) and novel. Injection runs
    // bypass the store entirely: injected faults must not poison it.
    let store_enabled = config.fault_injection.is_none();
    let mut served: Vec<Option<UniqueResult>> = (0..unique_keys.len()).map(|_| None).collect();
    let mut provenance = vec![Provenance::Imaged; unique_keys.len()];
    let mut novel_pos: Vec<usize> = Vec::new();
    let mut novel_keys: Vec<&ContextKey> = Vec::new();
    {
        let warm = if store_enabled {
            store.as_deref()
        } else {
            None
        };
        for (i, key) in unique_keys.iter().enumerate() {
            match warm.and_then(|s| s.entries.get(*key)) {
                Some(outcome) => {
                    served[i] = Some(UniqueResult::Ok(outcome.clone()));
                    provenance[i] = Provenance::Store;
                }
                None => {
                    novel_pos.push(i);
                    novel_keys.push(key);
                }
            }
        }
    }
    // The learned-surrogate tier sits between the warm store and full
    // simulation. Like the store it is bypassed entirely under fault
    // injection: injected faults must never train the model.
    let surrogate_active = config.surrogate.enabled && config.fault_injection.is_none();
    let mut local_model: SurrogateModel;
    let model: Option<&mut SurrogateModel> = if surrogate_active {
        match surrogate {
            Some(m) => Some(m),
            None => {
                local_model = match &config.surrogate.pretrained {
                    Some(pre) => pre.clone(),
                    None => config.surrogate.fresh_model(),
                };
                Some(&mut local_model)
            }
        }
    } else {
        None
    };
    let mut from_surrogate = vec![false; novel_keys.len()];
    let mut surrogate_fallbacks = 0usize;
    let mut surrogate_max_residual_nm = 0.0f64;
    let novel_results: Vec<UniqueResult> = match model {
        Some(model) => {
            if model.dim() != SURROGATE_FEATURE_DIM {
                return Err(FlowError::InvalidConfig(format!(
                    "surrogate model has feature dimension {}, engine expects {}",
                    model.dim(),
                    SURROGATE_FEATURE_DIM
                )));
            }
            if !model.is_fitted() && !model.is_empty() {
                model.refit()?;
            }
            run_novel_with_surrogate(
                config,
                threads,
                &novel_keys,
                model,
                &mut from_surrogate,
                &mut surrogate_fallbacks,
                &mut surrogate_max_residual_nm,
            )?
        }
        None => run_novel_batch(config, threads, &novel_keys),
    };
    // Retain every freshly *simulated* context — surrogate predictions
    // never enter the store, which stays pure SOCS — then slot the novel
    // results back into key order.
    if store_enabled {
        if let Some(store) = store {
            for ((&pos, &predicted), result) in
                novel_pos.iter().zip(&from_surrogate).zip(&novel_results)
            {
                if predicted {
                    continue;
                }
                if let UniqueResult::Ok(outcome) = result {
                    store
                        .entries
                        .insert(unique_keys[pos].clone(), outcome.clone());
                }
            }
        }
    }
    for ((pos, predicted), result) in novel_pos.into_iter().zip(from_surrogate).zip(novel_results) {
        if predicted {
            provenance[pos] = Provenance::Surrogate;
        }
        served[pos] = Some(result);
    }
    let results: Vec<UniqueResult> = served
        .into_iter()
        .map(|r| r.unwrap_or_else(|| unreachable!("every context is served or novel")))
        .collect();

    // Phase 3: merge in gate order — deterministic regardless of which
    // worker computed which context.
    let mut annotation = CdAnnotation::new();
    let mut stats = ExtractionStats::default();
    let mut seen = vec![false; unique_keys.len()];
    for ((work, uidx), &gate_id) in works.iter().zip(&membership).zip(&gate_order) {
        let (Some(work), Some(uidx)) = (work.as_ref(), *uidx) else {
            // Already quarantined in phase 1: the gate keeps drawn
            // dimensions and contributes nothing to the annotation.
            continue;
        };
        let outcome = match &results[uidx] {
            UniqueResult::Ok(outcome) => outcome,
            UniqueResult::Err(e) => return Err(e.clone()),
            UniqueResult::Fault(cause) => {
                quarantined.push(QuarantinedGate {
                    gate: gate_id,
                    stage: FaultStage::Pipeline,
                    cause: cause.clone(),
                });
                continue;
            }
        };
        if seen[uidx] {
            stats.cache_hits += 1;
        } else {
            seen[uidx] = true;
            stats.cache_misses += 1;
            match provenance[uidx] {
                // Served warm or predicted: no window was imaged, no OPC
                // cost was paid this run — only the reuse is recorded.
                Provenance::Store => stats.store_hits += 1,
                Provenance::Surrogate => stats.surrogate_hits += 1,
                Provenance::Imaged => {
                    stats.windows += 1;
                    stats.opc_simulations += outcome.opc_simulations;
                    stats.opc_fragment_moves += outcome.opc_fragment_moves;
                }
            }
        }
        let per_site = match &outcome.sites {
            Some(per_site) if !work.site_indices.is_empty() => per_site,
            _ => {
                stats.gates_failed += 1;
                continue;
            }
        };
        let gate = design.netlist().gate(work.gate);
        let cell = design.library().cell(gate.kind, gate.drive);
        let mut records = Vec::with_capacity(per_site.len());
        let mut extracted = Vec::with_capacity(per_site.len());
        for (&site_index, (slices, equivalent)) in work.site_indices.iter().zip(per_site) {
            let site = design.transistor_sites()[site_index];
            // Recover the logical input pin from the cell template.
            let input_pin = cell
                .transistors()
                .iter()
                .find(|t| t.finger == site.finger && t.kind == site.kind)
                .and_then(|t| t.input_pin);
            records.push(TransistorCd {
                kind: site.kind,
                width_nm: site.width_nm,
                l_delay_nm: equivalent.l_delay_nm,
                l_leakage_nm: equivalent.l_leakage_nm,
                input_pin,
                finger: site.finger,
            });
            extracted.push(ExtractedGate {
                site,
                slices: slices.clone(),
                equivalent: *equivalent,
            });
        }
        if injected_for(gate_id) == Some(InjectedFault::NanCd) {
            for r in &mut records {
                r.l_delay_nm = f64::NAN;
            }
        }
        // Boundary guard: non-physical CDs never cross into STA — they
        // either abort the run or quarantine the gate here at the seam.
        if let Some((field, value)) = invalid_cd(&records) {
            match config.fault_policy {
                FaultPolicy::Fail => {
                    return Err(postopc_sta::StaError::InvalidCd { field, value }.into());
                }
                FaultPolicy::Quarantine { .. } => {
                    quarantined.push(QuarantinedGate {
                        gate: gate_id,
                        stage: FaultStage::Boundary,
                        cause: format!("non-physical {field} = {value}"),
                    });
                    continue;
                }
            }
        }
        stats.extracted.extend(extracted);
        annotation.set_gate(
            work.gate,
            GateAnnotation {
                transistors: records,
            },
        );
        stats.gates_extracted += 1;
    }

    // Enforce the quarantine budget, then publish the records in `GateId`
    // order (context faults arrive before merge-time ones; the sort is
    // stable and each gate appears at most once).
    stats.gates_quarantined = quarantined.len();
    if let FaultPolicy::Quarantine { max_fraction } = config.fault_policy {
        let total = gate_order.len();
        if quarantined.len() as f64 > max_fraction * total as f64 {
            return Err(FlowError::QuarantineExceeded {
                quarantined: quarantined.len(),
                total,
                max_fraction,
            });
        }
    }
    quarantined.sort_by_key(|q| q.gate.0);
    stats.quarantined = quarantined;
    stats.surrogate_fallbacks = surrogate_fallbacks;
    stats.surrogate_max_residual_nm = surrogate_max_residual_nm;
    Ok(ExtractionOutcome { annotation, stats })
}

/// Where a distinct context's result came from this run.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Provenance {
    /// Imaged through the full OPC → imaging → measurement pipeline.
    Imaged,
    /// Replayed from a warm [`ContextStore`].
    Store,
    /// Predicted by the learned CD surrogate.
    Surrogate,
}

/// Runs a batch of novel contexts through the full pipeline under the
/// configured fault policy, returning policy-resolved results in input
/// order. Cost-aware scheduling: a window's pipeline cost scales with its
/// pixel count (OPC iterations and measurement both ride on the same
/// raster), so the pool hands out chunks weighted by estimated pixels
/// instead of item counts.
fn run_novel_batch(
    config: &ExtractionConfig,
    threads: usize,
    keys: &[&ContextKey],
) -> Vec<UniqueResult> {
    match config.fault_policy {
        FaultPolicy::Fail => postopc_parallel::par_map_costed(
            threads,
            keys,
            |_, key| window_pixel_cost(config, key),
            |_, key| run_unique(config, key),
        )
        .into_iter()
        .map(|r| match r {
            Ok(outcome) => UniqueResult::Ok(outcome),
            Err(e) => UniqueResult::Err(e),
        })
        .collect(),
        FaultPolicy::Quarantine { .. } => {
            let (oks, faults) = postopc_parallel::try_par_map_quarantine_init(
                threads,
                keys,
                "pipeline",
                |_, key| window_pixel_cost(config, key),
                || (),
                |(), _, key| run_unique(config, key),
            );
            let mut out: Vec<Option<UniqueResult>> =
                oks.into_iter().map(|o| o.map(UniqueResult::Ok)).collect();
            for fault in faults {
                out[fault.item] = Some(UniqueResult::Fault(fault.cause.to_string()));
            }
            out.into_iter()
                .map(|o| o.unwrap_or_else(|| unreachable!("every context resolves or faults")))
                .collect()
        }
    }
}

/// Runs the novel contexts with the surrogate tier active, in training
/// rounds: gate decisions for a round are made *serially in key order*
/// against the model as of the round start, the round's fallbacks
/// simulate in parallel, the model absorbs the fresh SOCS truths
/// (serially, in key order) and refits at the round boundary. Work
/// distribution never touches the decision or training stream, so the
/// outcome — including the model's final state — is bit-identical for any
/// thread count.
#[allow(clippy::too_many_arguments)]
fn run_novel_with_surrogate(
    config: &ExtractionConfig,
    threads: usize,
    keys: &[&ContextKey],
    model: &mut SurrogateModel,
    from_surrogate: &mut [bool],
    fallbacks: &mut usize,
    max_residual_nm: &mut f64,
) -> Result<Vec<UniqueResult>> {
    let sc = &config.surrogate;
    let round = sc.round.max(1);
    let mut results: Vec<Option<UniqueResult>> = (0..keys.len()).map(|_| None).collect();
    let mut accepted = 0usize;
    let mut start = 0;
    while start < keys.len() {
        let end = start.saturating_add(round).min(keys.len());
        let mut sim_idx: Vec<usize> = Vec::new();
        let mut audits: Vec<(usize, UniqueOutcome)> = Vec::new();
        for i in start..end {
            match surrogate_outcome(model, sc, keys[i]) {
                Some(outcome) => {
                    accepted += 1;
                    if sc.audit_every > 0 && accepted.is_multiple_of(sc.audit_every) {
                        // Audit: simulate anyway, keep the SOCS truth, and
                        // record the surrogate/SOCS parity residual.
                        audits.push((i, outcome));
                        sim_idx.push(i);
                    } else {
                        results[i] = Some(UniqueResult::Ok(outcome));
                        from_surrogate[i] = true;
                    }
                }
                None => sim_idx.push(i),
            }
        }
        *fallbacks += sim_idx.len();
        let sim_keys: Vec<&ContextKey> = sim_idx.iter().map(|&i| keys[i]).collect();
        let sim_results = run_novel_batch(config, threads, &sim_keys);
        // Train on the freshly simulated truths, serially in key order.
        let mut absorbed = false;
        for (&i, result) in sim_idx.iter().zip(&sim_results) {
            let UniqueResult::Ok(outcome) = result else {
                continue;
            };
            let Some(per_site) = &outcome.sites else {
                // Failed measurement: member gates keep drawn dimensions;
                // there is no CD truth to learn from.
                continue;
            };
            for (site, (_, equivalent)) in keys[i].sites.iter().zip(per_site) {
                let drawn = f64::from_bits(site.drawn_bits);
                let y = [
                    equivalent.l_delay_nm - drawn,
                    equivalent.l_leakage_nm - drawn,
                ];
                if y.iter().all(|v| v.is_finite()) {
                    model.absorb(&site_features(keys[i], site), y)?;
                    absorbed = true;
                }
            }
            if let Some((_, predicted)) = audits.iter().find(|(a, _)| *a == i) {
                let residual = outcome_residual_nm(predicted, outcome);
                if residual > *max_residual_nm {
                    *max_residual_nm = residual;
                }
            }
        }
        for (i, result) in sim_idx.into_iter().zip(sim_results) {
            results[i] = Some(result);
        }
        if absorbed {
            model.refit()?;
        }
        start = end;
    }
    Ok(results
        .into_iter()
        .map(|r| r.unwrap_or_else(|| unreachable!("every novel context resolves")))
        .collect())
}

/// The surrogate's verdict on one novel context: a fully predicted
/// [`UniqueOutcome`] if the model is warmed up, *every* site passes the
/// leverage gate and every predicted CD is physically plausible —
/// otherwise `None` (take the real simulation path).
fn surrogate_outcome(
    model: &SurrogateModel,
    sc: &SurrogateConfig,
    key: &ContextKey,
) -> Option<UniqueOutcome> {
    if key.sites.is_empty() || model.len() < sc.min_train as u64 {
        return None;
    }
    let limit = sc.gate_threshold * SURROGATE_FEATURE_DIM as f64;
    let mut per_site = Vec::with_capacity(key.sites.len());
    for site in &key.sites {
        let x = site_features(key, site);
        let score = model.score(&x)?;
        if !(score.is_finite() && score <= limit) {
            return None;
        }
        let pred = model.predict(&x)?;
        let drawn = f64::from_bits(site.drawn_bits);
        let l_delay = drawn + pred[0];
        let l_leakage = drawn + pred[1];
        // Physicality band: a prediction outside ±45% of drawn is a model
        // wobble, not a plausible post-OPC CD — take the real path. This
        // also keeps surrogate output clear of the STA boundary guard.
        let plausible = |l: f64| l.is_finite() && l > drawn * 0.55 && l < drawn * 1.45;
        if !plausible(l_delay) || !plausible(l_leakage) {
            return None;
        }
        let width = f64::from_bits(site.width_bits);
        per_site.push((
            vec![GateSlice {
                w_nm: width,
                l_nm: l_delay,
            }],
            EquivalentGate {
                w_nm: width,
                l_delay_nm: l_delay,
                l_leakage_nm: l_leakage,
            },
        ));
    }
    Some(UniqueOutcome {
        opc_simulations: 0,
        opc_fragment_moves: 0,
        sites: Some(per_site),
    })
}

/// Largest per-site |predicted CD − SOCS CD| in nm, over both equivalent
/// lengths, between a surrogate prediction and the simulated truth for
/// the same context.
fn outcome_residual_nm(predicted: &UniqueOutcome, truth: &UniqueOutcome) -> f64 {
    let (Some(pred), Some(real)) = (&predicted.sites, &truth.sites) else {
        return 0.0;
    };
    let mut max = 0.0f64;
    for ((_, p), (_, r)) in pred.iter().zip(real) {
        max = max
            .max((p.l_delay_nm - r.l_delay_nm).abs())
            .max((p.l_leakage_nm - r.l_leakage_nm).abs());
    }
    max
}

/// Hand-built surrogate features for one channel site of a canonical
/// context ([`SURROGATE_FEATURE_DIM`] entries): bias, drawn CD, width,
/// quantised exposure conditions (focus linear + quadratic, dose),
/// nearest-neighbour clearances in the four directions, bbox pattern
/// density at three radii, and window geometry. Pure arithmetic over the
/// canonical key — equal keys produce bit-equal features, and the window-
/// local frame makes them translation-invariant by construction.
fn site_features(key: &ContextKey, site: &SiteKey) -> Vec<f64> {
    let ambit = 420.0f64;
    let drawn = f64::from_bits(site.drawn_bits);
    let width = f64::from_bits(site.width_bits);
    let focus = f64::from_bits(key.focus_bits);
    let dose = f64::from_bits(key.dose_bits);
    let ch = site.channel;
    let cx = (ch.left() as f64 + ch.right() as f64) * 0.5;
    let cy = (ch.bottom() as f64 + ch.top() as f64) * 0.5;
    // Nearest-neighbour clearances from the channel bbox, per direction
    // (left, right, down, up), capped at the optical ambit. Shapes
    // overlapping the channel (its own gate poly) are skipped.
    let mut gap = [ambit; 4];
    for p in key.targets.iter().chain(key.context.iter()) {
        let b = p.bbox();
        let overlaps_x = b.left() < ch.right() && b.right() > ch.left();
        let overlaps_y = b.bottom() < ch.top() && b.top() > ch.bottom();
        if overlaps_x && overlaps_y {
            continue;
        }
        if overlaps_y && b.right() <= ch.left() {
            gap[0] = gap[0].min((ch.left() - b.right()) as f64);
        }
        if overlaps_y && b.left() >= ch.right() {
            gap[1] = gap[1].min((b.left() - ch.right()) as f64);
        }
        if overlaps_x && b.top() <= ch.bottom() {
            gap[2] = gap[2].min((ch.bottom() - b.top()) as f64);
        }
        if overlaps_x && b.bottom() >= ch.top() {
            gap[3] = gap[3].min((b.bottom() - ch.top()) as f64);
        }
    }
    // Local pattern density: bbox-clipped covered-area fraction of square
    // neighbourhoods around the channel center.
    let density = |r: f64| -> f64 {
        let mut area = 0.0;
        for p in key.targets.iter().chain(key.context.iter()) {
            let b = p.bbox();
            let w = (b.right() as f64).min(cx + r) - (b.left() as f64).max(cx - r);
            let h = (b.top() as f64).min(cy + r) - (b.bottom() as f64).max(cy - r);
            if w > 0.0 && h > 0.0 {
                area += w * h;
            }
        }
        (area / (4.0 * r * r)).min(1.0)
    };
    let win = key.window;
    let edge = (cx - win.left() as f64)
        .min(win.right() as f64 - cx)
        .min(cy - win.bottom() as f64)
        .min(win.top() as f64 - cy);
    vec![
        1.0,
        drawn / 90.0 - 1.0,
        width / 1000.0,
        focus / 60.0,
        (focus / 60.0) * (focus / 60.0),
        dose - 1.0,
        (gap[0] / ambit).clamp(0.0, 1.0),
        (gap[1] / ambit).clamp(0.0, 1.0),
        (gap[2] / ambit).clamp(0.0, 1.0),
        (gap[3] / ambit).clamp(0.0, 1.0),
        density(150.0),
        density(300.0),
        density(450.0),
        win.width() as f64 / 1000.0,
        win.height() as f64 / 1000.0,
        (edge / ambit).clamp(-1.0, 1.0),
    ]
}

/// Phase 1: gather one gate's targets, context, window, sites and local
/// conditions, canonicalised to the window-local frame.
fn build_gate_work(
    design: &Design,
    config: &ExtractionConfig,
    sites_by_gate: &HashMap<GateId, Vec<usize>>,
    gate_id: GateId,
    injected: Option<InjectedFault>,
) -> Result<GateWork> {
    let gate = design.netlist().gate(gate_id);
    let cell = design.library().cell(gate.kind, gate.drive);
    let inst = design.placement().instance(gate_id).ok_or_else(|| {
        FlowError::InvalidConfig(format!("gate {} has no placement instance", gate_id.0))
    })?;
    // Target polygons: this instance's poly shapes in chip coordinates.
    let targets: Vec<Polygon> = cell
        .shapes_on(Layer::Poly)
        .map(|p| inst.transform.apply_polygon(p))
        .collect();
    let window = targets
        .iter()
        .map(|p| p.bbox())
        .reduce(|a, b| a.union_bbox(&b))
        .ok_or_else(|| {
            FlowError::InvalidConfig(format!("cell of gate {} has no poly geometry", gate_id.0))
        })?
        .expand(config.window_margin_nm)?;
    let window = if injected == Some(InjectedFault::DegenerateGeometry) {
        // Collapse the window to a point so the real degenerate-rect
        // validation fires: the fault surfaces as a genuine geometry
        // error, not a synthetic one.
        Rect::new(
            window.left(),
            window.bottom(),
            window.left(),
            window.bottom(),
        )?
    } else {
        window
    };
    // Context: every other poly shape within the optical ambit.
    let search = window.expand(config.context_ambit_nm)?;
    let target_set: std::collections::HashSet<&Polygon> = targets.iter().collect();
    let context = design
        .shapes_in_window(Layer::Poly, search)
        .into_iter()
        .filter(|p| !target_set.contains(p));

    // Canonicalise: translate everything so the window's lower-left corner
    // is the origin. Translated-duplicate neighbourhoods then key (and
    // simulate) identically; integer-nm coordinates keep the shift exact.
    let shift = Vector {
        dx: -window.left(),
        dy: -window.bottom(),
    };
    let local_targets: Vec<Polygon> = targets.iter().map(|p| p.translate(shift)).collect();
    let mut local_context: Vec<Polygon> = context.map(|p| p.translate(shift)).collect();
    // The spatial index returns context in insertion order, which is not
    // translation-invariant — sort into a canonical order.
    local_context.sort_by(|a, b| {
        let ka = a.vertices().iter().map(|p| (p.x, p.y));
        let kb = b.vertices().iter().map(|p| (p.x, p.y));
        ka.cmp(kb)
    });

    // Local exposure conditions, quantised onto the cache lattice. The
    // simulation later runs *at* the quantised conditions, so reuse is
    // exact. Without an across-chip map the nominal conditions pass
    // through untouched.
    let conditions = match &config.across_chip {
        Some(map) => {
            let local = map.conditions_at(design.die(), window.center(), config.sim.conditions);
            ProcessConditions {
                focus_nm: quantize(local.focus_nm, config.focus_quantum_nm),
                dose: quantize(local.dose, config.dose_quantum),
            }
        }
        None => config.sim.conditions,
    };

    let site_indices = sites_by_gate.get(&gate_id).cloned().unwrap_or_default();
    let sites: Vec<SiteKey> = site_indices
        .iter()
        .map(|&i| {
            let s = &design.transistor_sites()[i];
            SiteKey {
                channel: s.channel.translate(shift),
                kind: s.kind,
                width_bits: s.width_nm.to_bits(),
                drawn_bits: s.drawn_l_nm.to_bits(),
                finger: s.finger,
            }
        })
        .collect();
    Ok(GateWork {
        gate: gate_id,
        site_indices,
        key: ContextKey {
            targets: local_targets,
            context: local_context,
            window: window.translate(shift),
            sites,
            focus_bits: conditions.focus_nm.to_bits(),
            dose_bits: conditions.dose.to_bits(),
        },
    })
}

/// Estimated pipeline cost of one distinct context: the pixel count of its
/// padded simulation raster. The padding margin is condition-dependent
/// (defocus widens the kernels, hence the ambit), so it is derived from the
/// key's own quantised conditions — the same stack `run_unique` images with.
fn window_pixel_cost(config: &ExtractionConfig, key: &ContextKey) -> u64 {
    let sim = config.sim.with_conditions(ProcessConditions {
        focus_nm: f64::from_bits(key.focus_bits),
        dose: f64::from_bits(key.dose_bits),
    });
    let margin = sim.kernel_stack().ambit_nm().ceil();
    let nx = (key.window.width() as f64 + 2.0 * margin) / sim.pixel_nm + 1.0;
    let ny = (key.window.height() as f64 + 2.0 * margin) / sim.pixel_nm + 1.0;
    (nx.max(1.0) * ny.max(1.0)) as u64
}

/// Phase 2: OPC, imaging and per-channel measurement for one distinct
/// context, entirely in the window-local frame.
fn run_unique(config: &ExtractionConfig, key: &ContextKey) -> Result<UniqueOutcome> {
    let targets = &key.targets;
    let context = &key.context;
    let window = key.window;
    let mut opc_simulations = 0;
    let mut opc_fragment_moves = 0;

    // Correct the mask.
    let (mask_targets, mask_context) = match config.opc_mode {
        OpcMode::None => (targets.clone(), context.clone()),
        OpcMode::Rule => {
            let t = rules::correct(&config.rule_opc, targets, context)?;
            let c = rules::correct(&config.rule_opc, context, targets)?;
            (t.corrected, c.corrected)
        }
        OpcMode::Model => {
            let c = rules::correct(&config.rule_opc, context, targets)?;
            let m = model::correct(&config.model_opc, targets, &c.corrected, window)?;
            opc_simulations = m.report.simulations;
            opc_fragment_moves = m.report.fragment_moves;
            (m.corrected, c.corrected)
        }
    };

    // Image the corrected mask at the key's (possibly quantised local
    // across-chip) conditions.
    let mask: Vec<Polygon> = mask_targets
        .iter()
        .chain(mask_context.iter())
        .cloned()
        .collect();
    let sim = config.sim.with_conditions(ProcessConditions {
        focus_nm: f64::from_bits(key.focus_bits),
        dose: f64::from_bits(key.dose_bits),
    });
    let image = AerialImage::simulate(&sim, &mask, window)?;

    // Measure every channel; any failure fails the whole context (member
    // gates keep drawn dimensions), matching the per-gate fallback rule.
    let mut per_site = Vec::with_capacity(key.sites.len());
    for sk in &key.sites {
        let site = TransistorSite {
            gate: GateId(0), // local frame: the real id is re-anchored at merge
            kind: sk.kind,
            channel: sk.channel,
            width_nm: f64::from_bits(sk.width_bits),
            drawn_l_nm: f64::from_bits(sk.drawn_bits),
            finger: sk.finger,
        };
        match extract_gate(
            &config.measure,
            &config.process,
            &image,
            &config.resist,
            &site,
        ) {
            Ok(e) => per_site.push((e.slices, e.equivalent)),
            Err(_) => {
                return Ok(UniqueOutcome {
                    opc_simulations,
                    opc_fragment_moves,
                    sites: None,
                })
            }
        }
    }
    Ok(UniqueOutcome {
        opc_simulations,
        opc_fragment_moves,
        sites: Some(per_site),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use postopc_layout::{generate, TechRules};

    fn chain_design(n: usize) -> Design {
        Design::compile(
            generate::inverter_chain(n).expect("netlist"),
            TechRules::n90(),
        )
        .expect("design")
    }

    fn fast_config(mode: OpcMode) -> ExtractionConfig {
        let mut cfg = ExtractionConfig::standard();
        cfg.opc_mode = mode;
        cfg.model_opc.iterations = 3;
        cfg
    }

    #[test]
    fn extracts_all_tagged_gates() {
        let d = chain_design(6);
        let tags = TagSet::all(&d);
        let out = extract_gates(&d, &fast_config(OpcMode::Rule), &tags).expect("extract");
        assert_eq!(out.stats.gates_extracted, 6);
        assert_eq!(out.stats.gates_failed, 0);
        assert_eq!(out.annotation.gate_count(), 6);
        // Each inverter has 2 channels.
        assert_eq!(out.stats.extracted.len(), 12);
        // Extracted lengths are near drawn but not exactly drawn.
        let mean = out.annotation.mean_l_delay_nm().expect("annotated");
        assert!((mean - 90.0).abs() < 20.0, "mean extracted L = {mean}");
    }

    #[test]
    fn selective_extraction_touches_only_tagged() {
        let d = chain_design(8);
        let mut tags = TagSet::new();
        tags.insert(GateId(0));
        tags.insert(GateId(3));
        let out = extract_gates(&d, &fast_config(OpcMode::Rule), &tags).expect("extract");
        assert_eq!(out.annotation.gate_count(), 2);
        assert!(out.annotation.gate(GateId(0)).is_some());
        assert!(out.annotation.gate(GateId(1)).is_none());
        assert_eq!(out.stats.windows, 2);
    }

    #[test]
    fn model_mode_costs_simulations() {
        let d = chain_design(3);
        let mut tags = TagSet::new();
        tags.insert(GateId(1));
        let rule = extract_gates(&d, &fast_config(OpcMode::Rule), &tags).expect("extract");
        let model = extract_gates(&d, &fast_config(OpcMode::Model), &tags).expect("extract");
        assert_eq!(rule.stats.opc_simulations, 0);
        assert!(model.stats.opc_simulations >= 3);
        assert!(model.stats.opc_fragment_moves > 0);
    }

    #[test]
    fn opc_improves_extracted_cd_accuracy() {
        let d = chain_design(5);
        let tags = TagSet::all(&d);
        let none = extract_gates(&d, &fast_config(OpcMode::None), &tags).expect("extract");
        let model = extract_gates(&d, &fast_config(OpcMode::Model), &tags).expect("extract");
        let rms = |out: &ExtractionOutcome| {
            let v: Vec<f64> = out
                .stats
                .extracted
                .iter()
                .map(|e| e.equivalent.l_delay_nm - e.site.drawn_l_nm)
                .collect();
            (v.iter().map(|d| d * d).sum::<f64>() / v.len() as f64).sqrt()
        };
        assert!(
            rms(&model) < rms(&none),
            "model OPC should bring printed CDs toward drawn: {} vs {}",
            rms(&model),
            rms(&none)
        );
    }

    #[test]
    fn annotation_preserves_pin_mapping() {
        let d = Design::compile(
            generate::ripple_carry_adder(1).expect("netlist"),
            TechRules::n90(),
        )
        .expect("design");
        let mut tags = TagSet::new();
        tags.insert(GateId(0)); // a NAND2
        let out = extract_gates(&d, &fast_config(OpcMode::Rule), &tags).expect("extract");
        let ann = out.annotation.gate(GateId(0)).expect("annotated");
        assert_eq!(ann.transistors.len(), 4); // 2 fingers × N/P
        let pins: std::collections::HashSet<Option<usize>> =
            ann.transistors.iter().map(|t| t.input_pin).collect();
        assert!(pins.contains(&Some(0)) && pins.contains(&Some(1)));
    }

    #[test]
    fn parallel_output_is_bit_identical_to_serial() {
        let d = chain_design(10);
        let tags = TagSet::all(&d);
        let mut serial = fast_config(OpcMode::Rule);
        serial.threads = Some(1);
        let mut pooled = fast_config(OpcMode::Rule);
        pooled.threads = Some(4);
        let a = extract_gates(&d, &serial, &tags).expect("serial");
        let b = extract_gates(&d, &pooled, &tags).expect("pooled");
        assert_eq!(a, b, "thread count must not change the outcome");
    }

    #[test]
    fn costed_scheduling_is_bit_identical_across_thread_counts() {
        // A mixed-cell design: inverters and NAND gates have different
        // window sizes, so cost-aware chunking actually varies chunk
        // boundaries with the thread count — the outcome must not.
        let d = Design::compile(
            generate::ripple_carry_adder(2).expect("netlist"),
            TechRules::n90(),
        )
        .expect("design");
        let tags = TagSet::all(&d);
        let mut reference: Option<ExtractionOutcome> = None;
        for threads in [1usize, 2, 3, 8] {
            let mut cfg = fast_config(OpcMode::Rule);
            cfg.threads = Some(threads);
            let out = extract_gates(&d, &cfg, &tags).expect("extract");
            match &reference {
                None => reference = Some(out),
                Some(r) => assert_eq!(&out, r, "threads = {threads}"),
            }
        }
    }

    #[test]
    fn cache_hit_path_matches_forced_miss_run() {
        let d = chain_design(10);
        let tags = TagSet::all(&d);
        let mut cached = fast_config(OpcMode::Rule);
        cached.cache = true;
        let mut uncached = fast_config(OpcMode::Rule);
        uncached.cache = false;
        let hit = extract_gates(&d, &cached, &tags).expect("cached");
        let miss = extract_gates(&d, &uncached, &tags).expect("uncached");
        // Identical CDs whether served from the cache or recomputed.
        assert_eq!(hit.annotation, miss.annotation);
        assert_eq!(hit.stats.extracted, miss.stats.extracted);
        assert_eq!(
            hit.stats.cache_hits + hit.stats.cache_misses,
            miss.stats.cache_misses,
            "every gate is accounted for exactly once"
        );
        assert_eq!(miss.stats.cache_hits, 0);
        assert!(
            hit.stats.cache_hits > 0,
            "a uniform inverter chain must share contexts: {:?} misses",
            hit.stats.cache_misses
        );
        assert!(hit.stats.windows < miss.stats.windows);
    }

    #[test]
    fn thread_env_fallback_is_honoured() {
        // `threads: None` defers to POSTOPC_THREADS; forcing 1 must both
        // work and give the standard (multi-thread-identical) outcome.
        let d = chain_design(4);
        let tags = TagSet::all(&d);
        let mut explicit = fast_config(OpcMode::Rule);
        explicit.threads = Some(2);
        let expected = extract_gates(&d, &explicit, &tags).expect("explicit");
        std::env::set_var(postopc_parallel::THREADS_ENV, "1");
        let mut via_env = fast_config(OpcMode::Rule);
        via_env.threads = None;
        let got = extract_gates(&d, &via_env, &tags);
        std::env::remove_var(postopc_parallel::THREADS_ENV);
        assert_eq!(got.expect("env fallback"), expected);
    }

    #[test]
    fn warm_store_reuses_contexts_bit_identically() {
        let d = chain_design(8);
        let tags = TagSet::all(&d);
        let cfg = fast_config(OpcMode::Rule);
        let cold = extract_gates(&d, &cfg, &tags).expect("cold");
        let mut store = ContextStore::new();
        let first = extract_gates_with_store(&d, &cfg, &tags, Some(&mut store)).expect("first");
        // Filling pass: behaves exactly like a cold run, then retains
        // every distinct context.
        assert_eq!(first, cold);
        assert_eq!(store.len(), cold.stats.windows);
        // Warm pass: nothing is re-imaged, the annotation replays exactly.
        let warm = extract_gates_with_store(&d, &cfg, &tags, Some(&mut store)).expect("warm");
        assert_eq!(warm.annotation, cold.annotation);
        assert_eq!(warm.stats.extracted, cold.stats.extracted);
        assert_eq!(warm.stats.windows, 0);
        assert_eq!(warm.stats.store_hits, cold.stats.windows);
    }

    #[test]
    fn context_store_round_trips_through_bytes() {
        let d = chain_design(6);
        let tags = TagSet::all(&d);
        let cfg = fast_config(OpcMode::Rule);
        let mut store = ContextStore::new();
        let cold = extract_gates_with_store(&d, &cfg, &tags, Some(&mut store)).expect("fill");
        let mut bytes = Vec::new();
        store.encode_into(&mut bytes);
        // Canonical encoding: equal stores produce equal bytes.
        let mut again = Vec::new();
        store.encode_into(&mut again);
        assert_eq!(bytes, again);
        let mut cursor = 0;
        let mut decoded = ContextStore::decode_from(&bytes, &mut cursor).expect("decode");
        assert_eq!(cursor, bytes.len());
        assert_eq!(decoded.len(), store.len());
        // The decoded store serves every context of a fresh run.
        let replay = extract_gates_with_store(&d, &cfg, &tags, Some(&mut decoded)).expect("warm");
        assert_eq!(replay.annotation, cold.annotation);
        assert_eq!(replay.stats.windows, 0);
        // Truncation surfaces as a typed error, never a panic.
        let err = ContextStore::decode_from(&bytes[..bytes.len() - 3], &mut 0)
            .expect_err("truncated store must fail");
        assert!(matches!(err, FlowError::Artifact(_)));
    }

    /// A surrogate recipe sized for test designs: tiny warm-up and
    /// rounds so the tier actually engages on a few dozen contexts.
    fn surrogate_config(d: &Design) -> ExtractionConfig {
        let mut cfg = fast_config(OpcMode::Rule);
        // Across-chip variation diversifies the contexts (distinct
        // focus/dose per gate) — exactly the regime where the exact-reuse
        // cache is blind and the surrogate earns its keep.
        cfg.across_chip = Some(AcrossChipMap::typical(d.die()));
        cfg.surrogate = SurrogateConfig {
            enabled: true,
            min_train: 6,
            round: 6,
            audit_every: 3,
            ..SurrogateConfig::standard()
        };
        cfg
    }

    #[test]
    fn surrogate_run_is_bit_identical_across_thread_counts() {
        let d = chain_design(24);
        let tags = TagSet::all(&d);
        let mut reference: Option<ExtractionOutcome> = None;
        for threads in [1usize, 2, 4] {
            let mut cfg = surrogate_config(&d);
            cfg.threads = Some(threads);
            let out = extract_gates(&d, &cfg, &tags).expect("extract");
            assert!(
                out.stats.surrogate_hits > 0,
                "tier must engage: {:?}",
                out.stats
            );
            match &reference {
                None => reference = Some(out),
                Some(r) => assert_eq!(&out, r, "threads = {threads}"),
            }
        }
    }

    #[test]
    fn surrogate_predictions_track_simulated_truth() {
        let d = chain_design(24);
        let tags = TagSet::all(&d);
        let with = extract_gates(&d, &surrogate_config(&d), &tags).expect("surrogate");
        let mut cfg_off = surrogate_config(&d);
        cfg_off.surrogate.enabled = false;
        let without = extract_gates(&d, &cfg_off, &tags).expect("exact");
        assert_eq!(without.stats.surrogate_hits, 0);
        assert_eq!(without.stats.surrogate_fallbacks, 0);
        let mut worst = 0.0f64;
        for gate in tags.sorted() {
            let (a, b) = (
                with.annotation.gate(gate).expect("annotated"),
                without.annotation.gate(gate).expect("annotated"),
            );
            for (ta, tb) in a.transistors.iter().zip(&b.transistors) {
                worst = worst.max((ta.l_delay_nm - tb.l_delay_nm).abs());
                worst = worst.max((ta.l_leakage_nm - tb.l_leakage_nm).abs());
            }
        }
        assert!(worst < 2.5, "surrogate CD error {worst} nm too large");
        assert!(
            with.stats.surrogate_max_residual_nm < 2.5,
            "audited residual {} nm too large",
            with.stats.surrogate_max_residual_nm
        );
    }

    #[test]
    fn surrogate_predictions_never_enter_the_warm_store() {
        let d = chain_design(24);
        let tags = TagSet::all(&d);
        let cfg = surrogate_config(&d);
        let mut store = ContextStore::new();
        let out = extract_gates_with_store(&d, &cfg, &tags, Some(&mut store)).expect("extract");
        assert!(out.stats.surrogate_hits > 0);
        // Only the imaged contexts are retained: the store stays pure SOCS.
        assert_eq!(store.len(), out.stats.windows);
        assert_eq!(
            out.stats.windows + out.stats.store_hits + out.stats.surrogate_hits,
            out.stats.cache_misses
        );
    }

    #[test]
    fn fault_injection_bypasses_the_surrogate() {
        let d = chain_design(12);
        let tags = TagSet::all(&d);
        let mut cfg = surrogate_config(&d);
        cfg.fault_policy = FaultPolicy::Quarantine { max_fraction: 1.0 };
        cfg.fault_injection = Some(FaultInjection {
            seed: 7,
            rate: 0.25,
            nan_cd: true,
            degenerate_geometry: false,
            worker_panic: false,
        });
        let out = extract_gates(&d, &cfg, &tags).expect("extract");
        assert_eq!(
            out.stats.surrogate_hits, 0,
            "injected faults must never reach the surrogate"
        );
        assert_eq!(out.stats.surrogate_fallbacks, 0);
        assert!(out.stats.gates_quarantined > 0);
    }

    #[test]
    fn external_model_accumulates_training_across_runs() {
        let d = chain_design(18);
        let tags = TagSet::all(&d);
        let cfg = surrogate_config(&d);
        let mut model = cfg.surrogate.fresh_model();
        let first =
            extract_gates_with_caches(&d, &cfg, &tags, None, Some(&mut model)).expect("first");
        let trained = model.len();
        assert!(trained > 0, "the run must train the external model");
        // Second run starts warm: no warm-up fallbacks, more hits.
        let second =
            extract_gates_with_caches(&d, &cfg, &tags, None, Some(&mut model)).expect("second");
        assert!(model.len() >= trained);
        assert!(second.stats.surrogate_hits >= first.stats.surrogate_hits);
        assert_eq!(second.annotation.gate_count(), d.netlist().gate_count());
    }

    #[test]
    fn across_chip_quantisation_keeps_cache_effective() {
        let d = chain_design(10);
        let tags = TagSet::all(&d);
        let mut cfg = fast_config(OpcMode::Rule);
        cfg.across_chip = Some(AcrossChipMap::typical(d.die()));
        // Coarse lattice: neighbouring gates land on the same conditions.
        cfg.focus_quantum_nm = 10.0;
        cfg.dose_quantum = 0.01;
        let coarse = extract_gates(&d, &cfg, &tags).expect("coarse");
        cfg.focus_quantum_nm = 0.0;
        cfg.dose_quantum = 0.0;
        let exact = extract_gates(&d, &cfg, &tags).expect("exact");
        assert!(
            coarse.stats.cache_hits >= exact.stats.cache_hits,
            "quantisation can only merge contexts: {} vs {}",
            coarse.stats.cache_hits,
            exact.stats.cache_hits
        );
    }
}
