//! Sequential (register-to-register) timing semantics.

use postopc_device::ProcessParams;
use postopc_layout::{generate, Design, GateId, GateKind, TechRules};
use postopc_sta::{k_worst_paths, CdAnnotation, GateAnnotation, TimingModel, TimingReport};

fn registered_design() -> Design {
    Design::compile(
        generate::registered_farm(4, 10, 3).expect("netlist"),
        TechRules::n90(),
    )
    .expect("design")
}

fn analyze(design: &Design, clock: f64) -> TimingReport {
    TimingModel::new(design, ProcessParams::n90(), clock)
        .expect("model")
        .analyze(None)
        .expect("analysis")
}

#[test]
fn register_to_register_paths_launch_and_capture_at_dffs() {
    let design = registered_design();
    let report = analyze(&design, 1200.0);
    let netlist = design.netlist();
    // Worst endpoints are the capture-register D nets, not primary outputs
    // (the PO is just one clk-to-Q behind a register, always easy).
    let paths = report.top_paths(&design, 4);
    for p in &paths {
        let first = netlist.gate(p.gates[0]);
        assert_eq!(
            first.kind,
            GateKind::Dff,
            "speed path must launch at a register, got {}",
            first.name
        );
        // Captured at a D pin: the endpoint net feeds a DFF's D input.
        let feeds_dff_d = netlist
            .gates()
            .iter()
            .any(|g| g.kind == GateKind::Dff && g.inputs[0] == p.endpoint);
        assert!(
            feeds_dff_d,
            "endpoint {:?} is not a capture D pin",
            p.endpoint
        );
    }
}

#[test]
fn arrival_is_clk_to_q_plus_combinational() {
    let design = registered_design();
    let report = analyze(&design, 1200.0);
    let netlist = design.netlist();
    // Pick one launch register and follow its path.
    let launch = netlist
        .gates()
        .iter()
        .position(|g| g.name == "p0_launch")
        .map(|i| GateId(i as u32))
        .expect("launch register exists");
    let q_net = netlist.gate(launch).output;
    let clk_to_q = report.gate_delay_ps(launch);
    assert!(clk_to_q > 0.0);
    assert!((report.arrival_ps(q_net) - clk_to_q).abs() < 1e-9);
    // Data arrivals at D do not move Q: Q launches at the clock edge even
    // though the D input (a primary input) arrives at 0.
    let paths = report.top_paths(&design, 1);
    let sum: f64 = paths[0]
        .gates
        .iter()
        .map(|&g| report.gate_delay_ps(g))
        .sum();
    assert!((sum - paths[0].arrival_ps).abs() < 1e-6);
}

#[test]
fn capture_slack_accounts_for_setup() {
    let design = registered_design();
    let clock = 1500.0;
    let model = TimingModel::new(&design, ProcessParams::n90(), clock).expect("model");
    let report = model.analyze(None).expect("analysis");
    let netlist = design.netlist();
    let capture = netlist
        .gates()
        .iter()
        .find(|g| g.name == "p0_capture")
        .expect("capture register exists");
    let d_net = capture.inputs[0];
    let seq = model
        .library()
        .drawn_timing(GateKind::Dff, capture.drive)
        .sequential
        .expect("register arcs");
    assert!(seq.setup_ps > 0.0 && seq.clk_to_q_ps > seq.setup_ps);
    let expected_slack = (clock - seq.setup_ps) - report.arrival_ps(d_net);
    assert!((report.slack_ps(d_net) - expected_slack).abs() < 1e-9);
    // The endpoint list contains this D net.
    assert!(report.endpoint_slacks().iter().any(|&(n, _)| n == d_net));
}

#[test]
fn faster_clock_squeezes_register_slack_only() {
    let design = registered_design();
    let slow = analyze(&design, 2000.0);
    let fast = analyze(&design, 1000.0);
    // Arrivals are clock-independent.
    let ep = slow.endpoint_slacks()[0].0;
    assert!((slow.arrival_ps(ep) - fast.arrival_ps(ep)).abs() < 1e-9);
    // Slack drops by exactly the clock difference.
    assert!(((slow.worst_slack_ps() - fast.worst_slack_ps()) - 1000.0).abs() < 1e-9);
}

#[test]
fn k_worst_enumeration_covers_register_endpoints() {
    let design = registered_design();
    let report = analyze(&design, 1200.0);
    let paths = k_worst_paths(&report, &design, 8);
    assert!(!paths.is_empty());
    let netlist = design.netlist();
    // The worst enumerated paths are the reg-to-reg ones and launch at
    // registers.
    let launches_at_dff = paths
        .iter()
        .filter(|p| netlist.gate(p.gates[0]).kind == GateKind::Dff)
        .count();
    assert!(launches_at_dff >= paths.len() / 2);
    for p in &paths {
        let sum: f64 = p.gates.iter().map(|&g| report.gate_delay_ps(g)).sum();
        assert!((sum - p.arrival_ps).abs() < 1e-6);
    }
}

#[test]
fn annotated_register_cds_move_clk_to_q() {
    let design = registered_design();
    let model = TimingModel::new(&design, ProcessParams::n90(), 1200.0).expect("model");
    let drawn = model.analyze(None).expect("analysis");
    // Shorten every register's channels: clk-to-Q and setup shrink, so
    // register-to-register slack improves even with unchanged logic.
    let mut ann = CdAnnotation::new();
    for (gi, g) in design.netlist().gates().iter().enumerate() {
        if g.kind != GateKind::Dff {
            continue;
        }
        let mut records = model.library().drawn_transistors(g.kind, g.drive).to_vec();
        for r in &mut records {
            r.l_delay_nm -= 5.0;
            r.l_leakage_nm -= 5.0;
        }
        ann.set_gate(
            GateId(gi as u32),
            GateAnnotation {
                transistors: records,
            },
        );
    }
    let annotated = model.analyze(Some(&ann)).expect("analysis");
    assert!(
        annotated.worst_slack_ps() > drawn.worst_slack_ps(),
        "shorter register channels must speed up reg-to-reg paths"
    );
}
