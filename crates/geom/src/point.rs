//! Integer-nanometer points and displacement vectors.
//!
//! Layout coordinates use `i64` database units with 1 DBU = 1 nm, matching
//! the convention of the rest of the workspace (see `DESIGN.md`).

use std::fmt;
use std::ops::{Add, AddAssign, Mul, Neg, Sub, SubAssign};

/// Coordinate type used for all layout geometry (1 unit = 1 nm).
pub type Coord = i64;

/// A point in layout space.
///
/// ```
/// use postopc_geom::Point;
/// let p = Point::new(100, 200);
/// assert_eq!(p + postopc_geom::Vector::new(-50, 0), Point::new(50, 200));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Point {
    /// Horizontal coordinate in nm.
    pub x: Coord,
    /// Vertical coordinate in nm.
    pub y: Coord,
}

/// A displacement between two points.
///
/// Distinguished from [`Point`] so that positions and offsets cannot be
/// accidentally mixed (C-NEWTYPE).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Vector {
    /// Horizontal displacement in nm.
    pub dx: Coord,
    /// Vertical displacement in nm.
    pub dy: Coord,
}

impl Point {
    /// Creates a point at `(x, y)`.
    pub const fn new(x: Coord, y: Coord) -> Self {
        Point { x, y }
    }

    /// The origin `(0, 0)`.
    pub const ORIGIN: Point = Point::new(0, 0);

    /// Manhattan (L1) distance to `other`.
    ///
    /// ```
    /// use postopc_geom::Point;
    /// assert_eq!(Point::new(0, 0).manhattan_distance(Point::new(3, -4)), 7);
    /// ```
    pub fn manhattan_distance(self, other: Point) -> Coord {
        (self.x - other.x).abs() + (self.y - other.y).abs()
    }

    /// Euclidean distance to `other`, in nm as `f64`.
    pub fn distance(self, other: Point) -> f64 {
        let dx = (self.x - other.x) as f64;
        let dy = (self.y - other.y) as f64;
        dx.hypot(dy)
    }

    /// Component-wise minimum of two points.
    pub fn min(self, other: Point) -> Point {
        Point::new(self.x.min(other.x), self.y.min(other.y))
    }

    /// Component-wise maximum of two points.
    pub fn max(self, other: Point) -> Point {
        Point::new(self.x.max(other.x), self.y.max(other.y))
    }

    /// The vector from `self` to `other` (`other - self`).
    pub fn vector_to(self, other: Point) -> Vector {
        Vector::new(other.x - self.x, other.y - self.y)
    }
}

impl Vector {
    /// Creates a displacement of `(dx, dy)`.
    pub const fn new(dx: Coord, dy: Coord) -> Self {
        Vector { dx, dy }
    }

    /// The zero displacement.
    pub const ZERO: Vector = Vector::new(0, 0);

    /// Euclidean norm of the vector in nm.
    pub fn length(self) -> f64 {
        (self.dx as f64).hypot(self.dy as f64)
    }

    /// Manhattan norm of the vector.
    pub fn manhattan_length(self) -> Coord {
        self.dx.abs() + self.dy.abs()
    }

    /// 2D cross product (z-component), useful for winding computations.
    pub fn cross(self, other: Vector) -> i128 {
        self.dx as i128 * other.dy as i128 - self.dy as i128 * other.dx as i128
    }

    /// Dot product as an `i128` to avoid overflow on large coordinates.
    pub fn dot(self, other: Vector) -> i128 {
        self.dx as i128 * other.dx as i128 + self.dy as i128 * other.dy as i128
    }

    /// Rotates the vector 90 degrees counter-clockwise.
    pub fn rotate90(self) -> Vector {
        Vector::new(-self.dy, self.dx)
    }
}

impl fmt::Display for Point {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {})", self.x, self.y)
    }
}

impl fmt::Display for Vector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "<{}, {}>", self.dx, self.dy)
    }
}

impl Add<Vector> for Point {
    type Output = Point;
    fn add(self, rhs: Vector) -> Point {
        Point::new(self.x + rhs.dx, self.y + rhs.dy)
    }
}

impl AddAssign<Vector> for Point {
    fn add_assign(&mut self, rhs: Vector) {
        self.x += rhs.dx;
        self.y += rhs.dy;
    }
}

impl Sub<Vector> for Point {
    type Output = Point;
    fn sub(self, rhs: Vector) -> Point {
        Point::new(self.x - rhs.dx, self.y - rhs.dy)
    }
}

impl SubAssign<Vector> for Point {
    fn sub_assign(&mut self, rhs: Vector) {
        self.x -= rhs.dx;
        self.y -= rhs.dy;
    }
}

impl Sub for Point {
    type Output = Vector;
    fn sub(self, rhs: Point) -> Vector {
        Vector::new(self.x - rhs.x, self.y - rhs.y)
    }
}

impl Add for Vector {
    type Output = Vector;
    fn add(self, rhs: Vector) -> Vector {
        Vector::new(self.dx + rhs.dx, self.dy + rhs.dy)
    }
}

impl Sub for Vector {
    type Output = Vector;
    fn sub(self, rhs: Vector) -> Vector {
        Vector::new(self.dx - rhs.dx, self.dy - rhs.dy)
    }
}

impl Neg for Vector {
    type Output = Vector;
    fn neg(self) -> Vector {
        Vector::new(-self.dx, -self.dy)
    }
}

impl Mul<Coord> for Vector {
    type Output = Vector;
    fn mul(self, rhs: Coord) -> Vector {
        Vector::new(self.dx * rhs, self.dy * rhs)
    }
}

impl From<(Coord, Coord)> for Point {
    fn from((x, y): (Coord, Coord)) -> Point {
        Point::new(x, y)
    }
}

impl From<(Coord, Coord)> for Vector {
    fn from((dx, dy): (Coord, Coord)) -> Vector {
        Vector::new(dx, dy)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn point_arithmetic_roundtrips() {
        let p = Point::new(10, -3);
        let v = Vector::new(7, 9);
        assert_eq!((p + v) - v, p);
        assert_eq!((p + v) - p, v);
    }

    #[test]
    fn distances() {
        let a = Point::new(0, 0);
        let b = Point::new(3, 4);
        assert_eq!(a.manhattan_distance(b), 7);
        assert!((a.distance(b) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn cross_and_dot() {
        let x = Vector::new(1, 0);
        let y = Vector::new(0, 1);
        assert_eq!(x.cross(y), 1);
        assert_eq!(y.cross(x), -1);
        assert_eq!(x.dot(y), 0);
        assert_eq!(x.rotate90(), y);
    }

    #[test]
    fn min_max_are_componentwise() {
        let a = Point::new(1, 9);
        let b = Point::new(5, 2);
        assert_eq!(a.min(b), Point::new(1, 2));
        assert_eq!(a.max(b), Point::new(5, 9));
    }

    #[test]
    fn display_formats() {
        assert_eq!(Point::new(1, 2).to_string(), "(1, 2)");
        assert_eq!(Vector::new(-1, 0).to_string(), "<-1, 0>");
    }

    #[test]
    fn no_overflow_in_cross_for_large_coords() {
        let v = Vector::new(i64::MAX / 2, 0);
        let w = Vector::new(0, 2);
        assert_eq!(v.cross(w), (i64::MAX / 2) as i128 * 2);
    }
}
