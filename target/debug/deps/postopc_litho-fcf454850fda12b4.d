/root/repo/target/debug/deps/postopc_litho-fcf454850fda12b4.d: crates/litho/src/lib.rs crates/litho/src/bossung.rs crates/litho/src/contour.rs crates/litho/src/cutline.rs crates/litho/src/error.rs crates/litho/src/fem.rs crates/litho/src/image.rs crates/litho/src/kernels.rs crates/litho/src/optics.rs crates/litho/src/resist.rs Cargo.toml

/root/repo/target/debug/deps/libpostopc_litho-fcf454850fda12b4.rmeta: crates/litho/src/lib.rs crates/litho/src/bossung.rs crates/litho/src/contour.rs crates/litho/src/cutline.rs crates/litho/src/error.rs crates/litho/src/fem.rs crates/litho/src/image.rs crates/litho/src/kernels.rs crates/litho/src/optics.rs crates/litho/src/resist.rs Cargo.toml

crates/litho/src/lib.rs:
crates/litho/src/bossung.rs:
crates/litho/src/contour.rs:
crates/litho/src/cutline.rs:
crates/litho/src/error.rs:
crates/litho/src/fem.rs:
crates/litho/src/image.rs:
crates/litho/src/kernels.rs:
crates/litho/src/optics.rs:
crates/litho/src/resist.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
