//! Property-based tests for the geometry kernel invariants.

use postopc_geom::{Coord, Grid, Point, Polygon, Rect, Transform, Vector};
use proptest::prelude::*;

fn arb_rect() -> impl Strategy<Value = Rect> {
    (
        -10_000i64..10_000,
        -10_000i64..10_000,
        1i64..5_000,
        1i64..5_000,
    )
        .prop_map(|(x, y, w, h)| Rect::new(x, y, x + w, y + h).expect("positive extents"))
}

/// A random rectilinear "staircase" polygon: monotone staircase up, then
/// closed back along the axes. Always simple by construction.
fn arb_staircase() -> impl Strategy<Value = Polygon> {
    proptest::collection::vec((1i64..500, 1i64..500), 2..12).prop_map(|steps| {
        let mut v = vec![Point::new(0, 0)];
        let mut x = 0;
        let mut y = 0;
        for (dx, dy) in &steps {
            x += dx;
            v.push(Point::new(x, y));
            y += dy;
            v.push(Point::new(x, y));
        }
        v.push(Point::new(0, y));
        Polygon::new(v).expect("staircase is valid")
    })
}

proptest! {
    #[test]
    fn rect_intersection_is_commutative_and_contained(a in arb_rect(), b in arb_rect()) {
        let ab = a.intersection(&b);
        let ba = b.intersection(&a);
        prop_assert_eq!(ab, ba);
        if let Some(i) = ab {
            prop_assert!(a.contains_rect(&i));
            prop_assert!(b.contains_rect(&i));
        }
    }

    #[test]
    fn union_bbox_contains_both(a in arb_rect(), b in arb_rect()) {
        let u = a.union_bbox(&b);
        prop_assert!(u.contains_rect(&a));
        prop_assert!(u.contains_rect(&b));
    }

    #[test]
    fn staircase_rect_decomposition_partitions_area(p in arb_staircase()) {
        let rects = p.to_rects();
        let sum: i128 = rects.iter().map(|r| r.area()).sum();
        prop_assert_eq!(sum, p.area());
        for i in 0..rects.len() {
            for j in (i + 1)..rects.len() {
                prop_assert!(!rects[i].intersects(&rects[j]));
            }
        }
    }

    #[test]
    fn staircase_contains_agrees_with_rect_decomposition(
        p in arb_staircase(),
        x in -100i64..2000,
        y in -100i64..2000,
    ) {
        let pt = Point::new(x, y);
        let in_poly = p.contains(pt);
        // Half-open convention on both sides: point is in a decomposition
        // rect iff min <= p < max componentwise.
        let in_rects = p.to_rects().iter().any(|r| {
            pt.x >= r.left() && pt.x < r.right() && pt.y >= r.bottom() && pt.y < r.top()
        });
        prop_assert_eq!(in_poly, in_rects);
    }

    #[test]
    fn zero_offsets_round_trip(p in arb_staircase()) {
        let offsets = vec![0 as Coord; p.edge_count()];
        let rebuilt = p.with_edge_offsets(&offsets).expect("rebuild");
        prop_assert_eq!(rebuilt.simplified().expect("simplify"), p);
    }

    #[test]
    fn small_offsets_change_area_by_first_order(r in arb_rect(), bias in 1i64..20) {
        // Uniform outward bias on a rectangle: area grows by exactly
        // perimeter*bias + 4*bias^2.
        let p = Polygon::from(r);
        let offsets = vec![bias; 4];
        let grown = p.with_edge_offsets(&offsets).expect("grow");
        let expected = p.area() + p.perimeter() as i128 * bias as i128 + 4 * (bias as i128).pow(2);
        prop_assert_eq!(grown.area(), expected);
    }

    #[test]
    fn transforms_preserve_polygon_area(p in arb_staircase(), oi in 0usize..8, dx in -1000i64..1000, dy in -1000i64..1000) {
        let t = Transform::new(postopc_geom::Orient::ALL[oi], Vector::new(dx, dy));
        let q = t.apply_polygon(&p);
        prop_assert_eq!(q.area(), p.area());
        prop_assert!(q.is_simple());
    }

    #[test]
    fn raster_conserves_polygon_area(p in arb_staircase()) {
        let mut g = Grid::new(p.bbox(), 32, 7.3).expect("grid");
        g.add_polygon(&p, 1.0);
        let raster_area = g.total() * 7.3 * 7.3;
        let exact = p.area() as f64;
        prop_assert!((raster_area - exact).abs() < exact.max(1.0) * 1e-9 + 1e-6);
    }

    #[test]
    fn grid_sample_within_range(p in arb_staircase(), fx in 0.0f64..1.0, fy in 0.0f64..1.0) {
        let mut g = Grid::new(p.bbox(), 16, 5.0).expect("grid");
        g.add_polygon(&p, 1.0);
        let bb = p.bbox();
        let x = bb.left() as f64 + fx * bb.width() as f64;
        let y = bb.bottom() as f64 + fy * bb.height() as f64;
        let v = g.sample(x, y);
        prop_assert!((-1e-12..=1.0 + 1e-12).contains(&v), "sample {} out of [0,1]", v);
    }
}
