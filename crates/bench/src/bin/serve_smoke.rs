//! Warm-service smoke test and bench-regression gate for the CI script
//! (`scripts/check.sh`, `serve` stage). Three modes, all fail the process
//! (exit 1) when an invariant breaks:
//!
//! **Default (parity + floor gates)**:
//!
//! 1. **Cold-vs-warm bit parity** — `serve` cold (persisting an
//!    artifact), then warm from that artifact: every query answer must
//!    match bit for bit, and corrupt / truncated / version-mismatched
//!    artifacts must come back as typed `FlowError::Artifact` values,
//!    never panics (a bad byte then silently serves a cold compile).
//! 2. **Incremental-vs-full ECO bit parity** — an ECO that widens the
//!    extraction set must re-image only the dirtied litho windows
//!    (`windows` strictly less than a from-scratch run) while producing
//!    the identical annotation and timing report.
//! 3. **Warm-query speedup floor** — repeat guardband/corner/MC queries
//!    against the warm session must beat the cold full pipeline by at
//!    least [`SPEEDUP_FLOOR`]× on the T6 composite and T9 farm designs.
//!
//! **`--record`** — runs the speedup measurement and writes
//! `BENCH_serve.json` in the working directory (committed, so later PRs
//! gate against it).
//!
//! **`--bench-regression`** — re-measures the warm-session speedups and
//! fails if any drops below [`FLOOR_FRACTION`] of the value recorded in
//! `BENCH_serve.json`.

use postopc::guardband::GuardbandConfig;
use postopc::{
    serve, FlowConfig, FlowError, OpcMode, Selection, SessionQuery, TagSet, TimingSession,
    WarmArtifact,
};
use postopc_bench::json::{parse_speedups, write_serve_rows, ServeBenchRow};
use postopc_bench::OrExit;
use postopc_layout::Design;
use postopc_sta::{Corner, MonteCarloConfig, TimingModel};
use std::path::Path;

/// Minimum cold-pipeline / warm-repeat-query speedup in default mode.
const SPEEDUP_FLOOR: f64 = 10.0;

/// Fraction of the recorded speedup a fresh `--bench-regression`
/// measurement must retain (same tolerance as the other bench gates).
const FLOOR_FRACTION: f64 = 0.6;

/// The two gated workloads: name, design builder, tagged path count.
fn workloads() -> Vec<(&'static str, Design, usize)> {
    vec![
        ("T6 composite 70%", postopc_bench::evaluation_design(11), 12),
        ("T9 farm 12x16", postopc_bench::farm_design(12, 16, 7), 8),
    ]
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let failed = match args.first().map(String::as_str) {
        None => parity_gates() | speedup_gate(None),
        Some("--record") => speedup_gate(Some(Path::new("BENCH_serve.json"))),
        Some("--bench-regression") => bench_regression(),
        Some(other) => {
            eprintln!(
                "serve_smoke: unknown argument {other} (expected --record or --bench-regression)"
            );
            true
        }
    };
    if failed {
        std::process::exit(1);
    }
}

/// A serve config over `paths` critical paths with the fast OPC recipe.
fn config(design: &Design, paths: usize) -> FlowConfig {
    let probe = TimingModel::new(design, postopc_device::ProcessParams::n90(), 1_000_000.0)
        .or_exit("probe model");
    let clock = probe
        .analyze(None)
        .or_exit("probe timing")
        .critical_delay_ps()
        * 1.10;
    let mut cfg = FlowConfig::standard(clock);
    cfg.selection = Selection::Critical { paths };
    cfg.extraction.opc_mode = OpcMode::Rule;
    cfg
}

/// The repeat query batch every gate measures: a corner sweep, a Monte
/// Carlo run and a guardband analysis.
fn query_batch() -> Vec<SessionQuery> {
    let monte_carlo = MonteCarloConfig {
        samples: 120,
        sigma_nm: 1.5,
        seed: 17,
        ..MonteCarloConfig::default()
    };
    vec![
        SessionQuery::Corners(Corner::classic_set(6.0)),
        SessionQuery::MonteCarlo(monte_carlo.clone()),
        SessionQuery::Guardband(GuardbandConfig {
            monte_carlo,
            ..GuardbandConfig::default()
        }),
    ]
}

/// Gates 1 and 2: artifact round-trip / typed-error behaviour and
/// incremental-vs-full ECO parity. Returns `true` on failure.
fn parity_gates() -> bool {
    let mut failed = false;
    let design = postopc_bench::evaluation_design(11);
    let cfg = config(&design, 12);
    let queries = query_batch();

    // --- Gate 1: cold-vs-warm bit parity through the persisted artifact.
    let dir = std::env::temp_dir().join("postopc-serve-smoke");
    std::fs::create_dir_all(&dir).or_exit("temp dir");
    let path = dir.join("t6.warm");
    std::fs::remove_file(&path).ok();
    let cold = serve(&design, &cfg, Some(&path), &queries).or_exit("cold serve");
    let warm = serve(&design, &cfg, Some(&path), &queries).or_exit("warm serve");
    if cold.warm || !warm.warm {
        eprintln!("serve_smoke: FAIL - artifact did not switch the session cold->warm");
        failed = true;
    }
    if cold.outcomes != warm.outcomes {
        eprintln!("serve_smoke: FAIL - warm answers differ from cold answers");
        failed = true;
    }

    // Malformed artifacts must produce typed errors, never panics.
    let bytes = std::fs::read(&path).or_exit("artifact bytes");
    let mut corrupt = bytes.clone();
    let mid = corrupt.len() / 2;
    corrupt[mid] ^= 1;
    if !matches!(
        WarmArtifact::from_bytes(&corrupt),
        Err(FlowError::Artifact(_))
    ) {
        eprintln!("serve_smoke: FAIL - corrupt artifact did not yield FlowError::Artifact");
        failed = true;
    }
    if !matches!(
        WarmArtifact::from_bytes(&bytes[..bytes.len() / 3]),
        Err(FlowError::Artifact(_))
    ) {
        eprintln!("serve_smoke: FAIL - truncated artifact did not yield FlowError::Artifact");
        failed = true;
    }
    let mut wrong_version = bytes.clone();
    wrong_version[8] = 0xfe;
    match WarmArtifact::from_bytes(&wrong_version) {
        Err(FlowError::Artifact(reason)) if reason.to_string().contains("version") => {}
        other => {
            eprintln!("serve_smoke: FAIL - version mismatch not reported as such: {other:?}");
            failed = true;
        }
    }
    // A stale artifact (config changed) must force a cold run, not a
    // wrong-answer warm one.
    let mut other_cfg = cfg.clone();
    other_cfg.clock_ps += 1.0;
    let stale = serve(&design, &other_cfg, Some(&path), &queries).or_exit("stale serve");
    if stale.warm {
        eprintln!("serve_smoke: FAIL - stale artifact was served warm");
        failed = true;
    }
    std::fs::remove_file(&path).ok();

    // --- Gate 2: incremental ECO == full re-run, touching fewer windows.
    let model = TimingModel::new(&design, cfg.process.clone(), cfg.clock_ps).or_exit("model");
    let mut session = TimingSession::new(&model, &cfg).or_exit("session");
    let all = TagSet::all(&design);
    let eco = session.apply_eco(&all).or_exit("eco");
    let mut full_cfg = cfg.clone();
    full_cfg.selection = Selection::All;
    let full = postopc::run_flow(&design, &full_cfg).or_exit("full flow");
    if *session.annotation() != full.annotation || eco.report != full.comparison.annotated {
        eprintln!("serve_smoke: FAIL - incremental ECO differs from the full re-run");
        failed = true;
    }
    if eco.stats.windows >= full.extraction.windows {
        eprintln!(
            "serve_smoke: FAIL - ECO re-imaged {} windows, full run needed {}",
            eco.stats.windows, full.extraction.windows
        );
        failed = true;
    }
    if !failed {
        println!("serve_smoke: PASS - cold/warm answers bit-identical, bad artifacts typed");
        println!(
            "serve_smoke: PASS - ECO re-imaged {} of {} windows, bit-identical to full",
            eco.stats.windows, full.extraction.windows
        );
    }
    failed
}

/// Measures one workload: cold full pipeline (compile + extract + query
/// batch) vs the same batch repeated against the warm session. Returns
/// `(row, failed)`.
fn measure(name: &'static str, design: &Design, paths: usize) -> (ServeBenchRow, bool) {
    let cfg = config(design, paths);
    let queries = query_batch();
    let model = TimingModel::new(design, cfg.process.clone(), cfg.clock_ps).or_exit("model");
    let answer =
        |session: &mut TimingSession<'_>, queries: &[SessionQuery]| -> Vec<postopc::QueryOutcome> {
            queries
                .iter()
                .map(|q| session.run(q).or_exit("query"))
                .collect()
        };
    // Cold: everything from scratch, as a one-shot pipeline would.
    let ((mut session, cold_answers), cold_s) = postopc_bench::timing::time(|| {
        let mut session = TimingSession::new(&model, &cfg).or_exit("cold session");
        let answers = answer(&mut session, &queries);
        (session, answers)
    });
    // Warm: the same batch again on the living session; best of two.
    let mut warm_s = f64::MAX;
    let mut identical = true;
    for _ in 0..2 {
        let (warm_answers, secs) = postopc_bench::timing::time(|| answer(&mut session, &queries));
        identical &= warm_answers == cold_answers;
        warm_s = warm_s.min(secs);
    }
    let speedup = cold_s / warm_s.max(1e-9);
    println!(
        "serve_smoke: {name}: cold {cold_s:.3} s, warm {warm_s:.3} s, {speedup:.1}x, \
         identical: {identical}"
    );
    let row = ServeBenchRow {
        design: name.to_string(),
        engine: "warm session".to_string(),
        queries: queries.len(),
        wall_s: warm_s,
        speedup,
        identical,
    };
    (row, !identical)
}

/// Gate 3: the warm session must beat the cold pipeline by
/// [`SPEEDUP_FLOOR`]× on every workload. With `record_to`, also writes
/// `BENCH_serve.json`. Returns `true` on failure.
fn speedup_gate(record_to: Option<&Path>) -> bool {
    let mut failed = false;
    let mut rows = Vec::new();
    for (name, design, paths) in workloads() {
        let (row, bad) = measure(name, &design, paths);
        failed |= bad;
        if row.speedup < SPEEDUP_FLOOR {
            eprintln!(
                "serve_smoke: FAIL - {name} warm speedup {:.1}x below the {SPEEDUP_FLOOR}x floor",
                row.speedup
            );
            failed = true;
        }
        rows.push(row);
    }
    if let Some(path) = record_to {
        let threads = postopc_parallel::effective_threads(None);
        match write_serve_rows(path, threads, &rows) {
            Ok(()) => println!(
                "serve_smoke: recorded {} rows to {}",
                rows.len(),
                path.display()
            ),
            Err(e) => {
                eprintln!("serve_smoke: FAIL - cannot write {}: {e}", path.display());
                failed = true;
            }
        }
    }
    if !failed {
        println!("serve_smoke: PASS - warm sessions at or above the {SPEEDUP_FLOOR}x floor");
    }
    failed
}

/// The `--bench-regression` mode: fresh measurements against the recorded
/// `BENCH_serve.json` floors. Returns `true` on failure.
fn bench_regression() -> bool {
    let recorded = match std::fs::read_to_string("BENCH_serve.json") {
        Ok(doc) => parse_speedups(&doc),
        Err(e) => {
            eprintln!("serve_smoke: FAIL - cannot read BENCH_serve.json: {e}");
            return true;
        }
    };
    let mut failed = false;
    for (name, design, paths) in workloads() {
        let (row, bad) = measure(name, &design, paths);
        failed |= bad;
        let Some(baseline) = recorded
            .iter()
            .find(|r| r.design == name && r.engine == "warm session")
        else {
            eprintln!(
                "serve_smoke: FAIL - no recorded row for {name} in BENCH_serve.json \
                 (re-record with --record?)"
            );
            failed = true;
            continue;
        };
        let floor = baseline.speedup * FLOOR_FRACTION;
        if row.speedup < floor {
            eprintln!(
                "serve_smoke: FAIL - {name} fresh {:.1}x below floor {floor:.1}x \
                 (recorded {:.1}x)",
                row.speedup, baseline.speedup
            );
            failed = true;
        } else {
            println!(
                "serve_smoke: bench {name}: fresh {:.1}x vs recorded {:.1}x (floor {floor:.1}x) - OK",
                row.speedup, baseline.speedup
            );
        }
    }
    if !failed {
        println!("serve_smoke: PASS - warm-session speedups within their recorded floors");
    }
    failed
}
