//! Machine-readable benchmark artifacts.
//!
//! The perf trajectory across PRs needs numbers that tooling can diff, not
//! just human tables. This module renders the engine-comparison results
//! (experiment T9 and the `flow_scaling` bench) as a small, stable JSON
//! document — `BENCH_extract.json` — written next to the working directory
//! of the run. No external JSON dependency exists in the workspace (the
//! build is offline), so the writer is hand-rolled for exactly this schema.

use std::io::Write;
use std::path::Path;

/// Schema identifier stamped into every document so future PRs can evolve
/// the format without breaking diff tooling silently. v2 adds the learned
/// CD surrogate counters (`surrogate_hits` / `surrogate_fallbacks`) of
/// each run to every row (0 for the pre-surrogate engines).
pub const ENGINE_BENCH_SCHEMA: &str = "postopc-bench-extract-v2";

/// One engine-comparison measurement: a (design, engine) cell of the T9
/// engine table.
#[derive(Debug, Clone, PartialEq)]
pub struct EngineBenchRow {
    /// Workload name (e.g. `shuffled farm 20x24`).
    pub design: String,
    /// Engine configuration (e.g. `context cache`).
    pub engine: String,
    /// Simulation windows imaged (one per distinct litho context).
    pub windows: usize,
    /// Gates served from the context cache.
    pub hits: usize,
    /// Cache hit rate in `[0, 1]`.
    pub hit_rate: f64,
    /// Unique contexts served by the learned CD surrogate without
    /// simulation (0 for engines that do not enable it).
    pub surrogate_hits: usize,
    /// Unique contexts the surrogate declined (warm-up, leverage-gate
    /// rejection, audit or implausible prediction) that simulated instead.
    pub surrogate_fallbacks: usize,
    /// Wall-clock seconds of the extraction run.
    pub wall_s: f64,
    /// Speedup versus the baseline engine on the same design.
    pub speedup: f64,
}

/// Schema identifier of the STA engine-comparison document
/// (`BENCH_sta.json`): naive per-sample `analyze` vs the compiled
/// evaluators on the same Monte Carlo workload. v2 adds the shift-cache
/// hit/miss counters of each run; v3 adds the `accuracy` section — the
/// sampling-scheme convergence errors ([`StaAccuracyRow`]) behind the
/// tail-targeted importance-sampling floors of the perf regression gate.
pub const STA_BENCH_SCHEMA: &str = "postopc-bench-sta-v3";

/// One STA engine measurement: a (design, engine, samples) cell of the
/// Monte Carlo scaling table.
#[derive(Debug, Clone, PartialEq)]
pub struct StaBenchRow {
    /// Workload name (e.g. `T6 composite 70%`).
    pub design: String,
    /// Engine configuration (`naive analyze`, `compiled` or `batched`).
    pub engine: String,
    /// Monte Carlo sample count.
    pub samples: usize,
    /// Wall-clock seconds of the run.
    pub wall_s: f64,
    /// Speedup versus the naive engine at the same sample count.
    pub speedup: f64,
    /// Whether `worst_slacks_ps` matched the naive engine bit for bit.
    pub identical: bool,
    /// Shift-cache hits of the run (per-worker plus shared prewarmed
    /// lookups; 0 for the naive engine, which has no shift cache).
    pub shift_hits: u64,
    /// Shift-cache misses of the run (each ran the device model once;
    /// the batched engine prewarms, so its hot loop records 0).
    pub shift_misses: u64,
}

/// One sampling-accuracy measurement of the `accuracy` section (schema
/// v3): the worst-slack estimation errors of a `(sampling, samples)`
/// point against a high-sample plain reference, averaged over fixed
/// seeds (`postopc_sta::statistical::convergence_study`). The study is
/// deterministic and thread-invariant, so the recorded values
/// regenerate bit-identically on any machine — the regression gate
/// compares them with headroom only to survive intentional estimator
/// changes.
#[derive(Debug, Clone, PartialEq)]
pub struct StaAccuracyRow {
    /// Workload name (e.g. `T6 composite 70%`).
    pub design: String,
    /// Sampling scheme label (`plain`, `antithetic`, `tail-is`).
    pub sampling: String,
    /// Monte Carlo samples per run.
    pub samples: usize,
    /// Mean absolute 1%-quantile worst-slack error vs the reference, ps.
    pub q01_abs_err_ps: f64,
    /// Mean absolute 0.1%-quantile worst-slack error vs the reference,
    /// ps — the deep-tail statistic tail-IS targets.
    pub q001_abs_err_ps: f64,
    /// Mean absolute mean-worst-slack error vs the reference, ps.
    pub mean_abs_err_ps: f64,
}

/// Schema identifier of the warm-service document (`BENCH_serve.json`):
/// cold full-pipeline bring-up vs repeat queries against a warm
/// [`postopc::TimingSession`].
pub const SERVE_BENCH_SCHEMA: &str = "postopc-bench-serve-v1";

/// One warm-service measurement: a (design, engine) cell of the serve
/// table. `engine` is `"warm session"` for the gated rows; the speedup
/// is cold wall time over warm wall time for the same query batch.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeBenchRow {
    /// Workload name (e.g. `T6 composite 70%`).
    pub design: String,
    /// Serving configuration (`cold pipeline` or `warm session`).
    pub engine: String,
    /// Queries answered per measured batch.
    pub queries: usize,
    /// Wall-clock seconds to answer the batch.
    pub wall_s: f64,
    /// Speedup versus the cold full pipeline on the same batch.
    pub speedup: f64,
    /// Whether the warm answers matched the cold answers bit for bit.
    pub identical: bool,
}

/// Escapes a string for a JSON string literal.
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Renders a finite JSON number (non-finite values — impossible for sane
/// measurements — degrade to 0 rather than emitting invalid JSON).
fn number(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "0".to_string()
    }
}

/// Renders the engine-comparison document.
pub fn render_engine_rows(threads: usize, rows: &[EngineBenchRow]) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!("  \"schema\": \"{ENGINE_BENCH_SCHEMA}\",\n"));
    out.push_str(&format!("  \"threads\": {threads},\n"));
    out.push_str("  \"rows\": [\n");
    for (i, row) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"design\": \"{}\", \"engine\": \"{}\", \"windows\": {}, \"hits\": {}, \
             \"hit_rate\": {}, \"surrogate_hits\": {}, \"surrogate_fallbacks\": {}, \
             \"wall_s\": {}, \"speedup\": {}}}{}\n",
            escape(&row.design),
            escape(&row.engine),
            row.windows,
            row.hits,
            number(row.hit_rate),
            row.surrogate_hits,
            row.surrogate_fallbacks,
            number(row.wall_s),
            number(row.speedup),
            if i + 1 < rows.len() { "," } else { "" },
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Writes the engine-comparison document to `path`.
///
/// # Errors
///
/// Propagates filesystem errors (callers report and continue — a missing
/// artifact must not fail the benchmark itself).
pub fn write_engine_rows(
    path: &Path,
    threads: usize,
    rows: &[EngineBenchRow],
) -> std::io::Result<()> {
    let mut file = std::fs::File::create(path)?;
    file.write_all(render_engine_rows(threads, rows).as_bytes())
}

/// Renders the STA engine-comparison document: the timing `rows` plus
/// the schema-v3 `accuracy` section (pass `&[]` to omit the study).
pub fn render_sta_rows(
    threads: usize,
    rows: &[StaBenchRow],
    accuracy: &[StaAccuracyRow],
) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!("  \"schema\": \"{STA_BENCH_SCHEMA}\",\n"));
    out.push_str(&format!("  \"threads\": {threads},\n"));
    out.push_str("  \"rows\": [\n");
    for (i, row) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"design\": \"{}\", \"engine\": \"{}\", \"samples\": {}, \"wall_s\": {}, \
             \"speedup\": {}, \"identical\": {}, \"shift_hits\": {}, \"shift_misses\": {}}}{}\n",
            escape(&row.design),
            escape(&row.engine),
            row.samples,
            number(row.wall_s),
            number(row.speedup),
            row.identical,
            row.shift_hits,
            row.shift_misses,
            if i + 1 < rows.len() { "," } else { "" },
        ));
    }
    out.push_str("  ],\n");
    out.push_str("  \"accuracy\": [\n");
    for (i, row) in accuracy.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"design\": \"{}\", \"sampling\": \"{}\", \"samples\": {}, \
             \"q01_abs_err_ps\": {}, \"q001_abs_err_ps\": {}, \"mean_abs_err_ps\": {}}}{}\n",
            escape(&row.design),
            escape(&row.sampling),
            row.samples,
            number(row.q01_abs_err_ps),
            number(row.q001_abs_err_ps),
            number(row.mean_abs_err_ps),
            if i + 1 < accuracy.len() { "," } else { "" },
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Writes the STA engine-comparison document to `path`.
///
/// # Errors
///
/// Propagates filesystem errors (callers report and continue — a missing
/// artifact must not fail the benchmark itself).
pub fn write_sta_rows(
    path: &Path,
    threads: usize,
    rows: &[StaBenchRow],
    accuracy: &[StaAccuracyRow],
) -> std::io::Result<()> {
    let mut file = std::fs::File::create(path)?;
    file.write_all(render_sta_rows(threads, rows, accuracy).as_bytes())
}

/// Renders the warm-service document.
pub fn render_serve_rows(threads: usize, rows: &[ServeBenchRow]) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!("  \"schema\": \"{SERVE_BENCH_SCHEMA}\",\n"));
    out.push_str(&format!("  \"threads\": {threads},\n"));
    out.push_str("  \"rows\": [\n");
    for (i, row) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"design\": \"{}\", \"engine\": \"{}\", \"queries\": {}, \"wall_s\": {}, \
             \"speedup\": {}, \"identical\": {}}}{}\n",
            escape(&row.design),
            escape(&row.engine),
            row.queries,
            number(row.wall_s),
            number(row.speedup),
            row.identical,
            if i + 1 < rows.len() { "," } else { "" },
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Writes the warm-service document to `path`.
///
/// # Errors
///
/// Propagates filesystem errors (callers report and continue — a missing
/// artifact must not fail the benchmark itself).
pub fn write_serve_rows(
    path: &Path,
    threads: usize,
    rows: &[ServeBenchRow],
) -> std::io::Result<()> {
    let mut file = std::fs::File::create(path)?;
    file.write_all(render_serve_rows(threads, rows).as_bytes())
}

/// One recorded measurement read back from a committed `BENCH_*.json`
/// artifact — the fields the regression gate compares against.
#[derive(Debug, Clone, PartialEq)]
pub struct RecordedSpeedup {
    /// Workload name (`design` field of the row).
    pub design: String,
    /// Engine configuration (`engine` field of the row).
    pub engine: String,
    /// Monte Carlo sample count, for STA rows (`None` for extraction rows).
    pub samples: Option<usize>,
    /// Speedup versus the baseline engine recorded for the row.
    pub speedup: f64,
}

/// Extracts a string field's value from a single rendered row line,
/// undoing the escapes [`escape`] applies.
fn str_field(line: &str, key: &str) -> Option<String> {
    let pat = format!("\"{key}\": \"");
    let start = line.find(&pat)? + pat.len();
    let mut out = String::new();
    let mut escaped = false;
    for c in line[start..].chars() {
        if escaped {
            out.push(match c {
                'n' => '\n',
                't' => '\t',
                'r' => '\r',
                other => other,
            });
            escaped = false;
        } else if c == '\\' {
            escaped = true;
        } else if c == '"' {
            return Some(out);
        } else {
            out.push(c);
        }
    }
    None
}

/// Extracts a numeric field's value from a single rendered row line.
fn num_field(line: &str, key: &str) -> Option<f64> {
    let pat = format!("\"{key}\": ");
    let start = line.find(&pat)? + pat.len();
    let rest = &line[start..];
    let end = rest.find([',', '}']).unwrap_or(rest.len());
    rest[..end].trim().parse().ok()
}

/// Reads the per-row speedups back out of a document this module rendered
/// (either schema). This is the inverse of the hand-rolled writers above,
/// bound to their one-row-per-line layout — deliberately not a general
/// JSON parser, for the same offline-build reason the writers exist.
/// Lines that are not rows (schema header, brackets) are skipped; a row
/// missing any required field is skipped too, so the caller can treat
/// "row not found" uniformly.
pub fn parse_speedups(doc: &str) -> Vec<RecordedSpeedup> {
    doc.lines()
        .filter_map(|line| {
            Some(RecordedSpeedup {
                design: str_field(line, "design")?,
                engine: str_field(line, "engine")?,
                samples: num_field(line, "samples").map(|s| s as usize),
                speedup: num_field(line, "speedup")?,
            })
        })
        .collect()
}

/// Reads the sampling-accuracy rows back out of a schema-v3 STA
/// document. Same line-oriented contract as [`parse_speedups`]: rows of
/// the `accuracy` section carry a `sampling` string field that timing
/// rows lack, so the two sections never shadow each other, and a line
/// missing any required field is skipped.
pub fn parse_accuracy(doc: &str) -> Vec<StaAccuracyRow> {
    doc.lines()
        .filter_map(|line| {
            Some(StaAccuracyRow {
                design: str_field(line, "design")?,
                sampling: str_field(line, "sampling")?,
                samples: num_field(line, "samples")? as usize,
                q01_abs_err_ps: num_field(line, "q01_abs_err_ps")?,
                q001_abs_err_ps: num_field(line, "q001_abs_err_ps")?,
                mean_abs_err_ps: num_field(line, "mean_abs_err_ps")?,
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row() -> EngineBenchRow {
        EngineBenchRow {
            design: "uniform inv farm 240".to_string(),
            engine: "context cache".to_string(),
            windows: 16,
            hits: 224,
            hit_rate: 0.9333333333333333,
            surrogate_hits: 42,
            surrogate_fallbacks: 7,
            wall_s: 0.99,
            speedup: 15.5,
        }
    }

    #[test]
    fn renders_stable_schema() {
        let doc = render_engine_rows(1, &[row()]);
        assert!(doc.contains("\"schema\": \"postopc-bench-extract-v2\""));
        assert!(doc.contains("\"threads\": 1"));
        assert!(doc.contains("\"design\": \"uniform inv farm 240\""));
        assert!(doc.contains("\"windows\": 16"));
        assert!(doc.contains("\"surrogate_hits\": 42"));
        assert!(doc.contains("\"surrogate_fallbacks\": 7"));
        assert!(doc.contains("\"wall_s\": 0.99"));
        // Exactly one row: no trailing comma.
        assert!(!doc.contains("}},\n  ]"));
    }

    #[test]
    fn escapes_strings_and_guards_numbers() {
        let mut r = row();
        r.design = "evil \"name\"\\with\nnewline".to_string();
        r.speedup = f64::INFINITY;
        let doc = render_engine_rows(2, &[r]);
        assert!(doc.contains("evil \\\"name\\\"\\\\with\\nnewline"));
        assert!(doc.contains("\"speedup\": 0"));
    }

    #[test]
    fn multiple_rows_are_comma_separated() {
        let doc = render_engine_rows(4, &[row(), row(), row()]);
        assert_eq!(doc.matches("\"design\"").count(), 3);
        assert_eq!(doc.matches("},\n").count(), 2);
    }

    fn sta_row() -> StaBenchRow {
        StaBenchRow {
            design: "T6 composite 70%".to_string(),
            engine: "compiled".to_string(),
            samples: 2000,
            wall_s: 1.25,
            speedup: 8.0,
            identical: true,
            shift_hits: 123_456,
            shift_misses: 789,
        }
    }

    fn accuracy_row() -> StaAccuracyRow {
        StaAccuracyRow {
            design: "T6 composite 70%".to_string(),
            sampling: "tail-is".to_string(),
            samples: 500,
            q01_abs_err_ps: 1.298,
            q001_abs_err_ps: 1.656,
            mean_abs_err_ps: 1.9826,
        }
    }

    #[test]
    fn renders_sta_schema() {
        let doc = render_sta_rows(1, &[sta_row()], &[accuracy_row()]);
        assert!(doc.contains("\"schema\": \"postopc-bench-sta-v3\""));
        assert!(doc.contains("\"samples\": 2000"));
        assert!(doc.contains("\"identical\": true"));
        assert!(doc.contains("\"speedup\": 8"));
        assert!(doc.contains("\"shift_hits\": 123456"));
        assert!(doc.contains("\"shift_misses\": 789"));
        assert!(doc.contains("\"accuracy\": ["));
        assert!(doc.contains("\"sampling\": \"tail-is\""));
        assert!(doc.contains("\"q01_abs_err_ps\": 1.298"));
        assert!(doc.contains("\"q001_abs_err_ps\": 1.656"));
        assert!(!doc.contains("}},\n  ]"));
    }

    #[test]
    fn writes_sta_rows_to_disk() {
        let dir = std::env::temp_dir().join("postopc_json_test");
        std::fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join("BENCH_sta.json");
        write_sta_rows(&path, 1, &[sta_row()], &[accuracy_row()]).expect("write");
        let read = std::fs::read_to_string(&path).expect("read back");
        assert_eq!(read, render_sta_rows(1, &[sta_row()], &[accuracy_row()]));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn parse_round_trips_both_schemas() {
        let extract_doc = render_engine_rows(1, &[row(), row()]);
        let parsed = parse_speedups(&extract_doc);
        assert_eq!(parsed.len(), 2);
        assert_eq!(parsed[0].design, "uniform inv farm 240");
        assert_eq!(parsed[0].engine, "context cache");
        assert_eq!(parsed[0].samples, None);
        assert_eq!(parsed[0].speedup, 15.5);
        let sta_doc = render_sta_rows(1, &[sta_row()], &[accuracy_row()]);
        let parsed = parse_speedups(&sta_doc);
        assert_eq!(parsed.len(), 1);
        assert_eq!(parsed[0].samples, Some(2000));
        assert_eq!(parsed[0].speedup, 8.0);
    }

    #[test]
    fn parse_accuracy_round_trips_and_ignores_timing_rows() {
        let doc = render_sta_rows(1, &[sta_row()], &[accuracy_row(), accuracy_row()]);
        let parsed = parse_accuracy(&doc);
        assert_eq!(parsed.len(), 2);
        assert_eq!(parsed[0], accuracy_row());
        // Timing rows carry no `sampling` field; an accuracy-free (or
        // pre-v3) document parses to an empty study.
        assert!(parse_accuracy(&render_sta_rows(1, &[sta_row()], &[])).is_empty());
        assert!(parse_accuracy("not json at all").is_empty());
    }

    #[test]
    fn parse_undoes_string_escapes_and_skips_partial_rows() {
        let mut r = row();
        r.design = "evil \"name\"\\with\nnewline".to_string();
        let doc = render_engine_rows(1, &[r.clone()]);
        let parsed = parse_speedups(&doc);
        assert_eq!(parsed.len(), 1);
        assert_eq!(parsed[0].design, r.design);
        // A line with a design but no speedup is not a row.
        assert!(parse_speedups("{\"design\": \"x\", \"engine\": \"y\"}").is_empty());
        assert!(parse_speedups("not json at all").is_empty());
    }

    fn serve_row() -> ServeBenchRow {
        ServeBenchRow {
            design: "T6 composite 70%".to_string(),
            engine: "warm session".to_string(),
            queries: 3,
            wall_s: 0.004,
            speedup: 120.0,
            identical: true,
        }
    }

    #[test]
    fn renders_serve_schema_and_parses_back() {
        let doc = render_serve_rows(1, &[serve_row()]);
        assert!(doc.contains("\"schema\": \"postopc-bench-serve-v1\""));
        assert!(doc.contains("\"queries\": 3"));
        assert!(doc.contains("\"identical\": true"));
        assert!(!doc.contains("}},\n  ]"));
        let parsed = parse_speedups(&doc);
        assert_eq!(parsed.len(), 1);
        assert_eq!(parsed[0].design, "T6 composite 70%");
        assert_eq!(parsed[0].engine, "warm session");
        assert_eq!(parsed[0].samples, None);
        assert_eq!(parsed[0].speedup, 120.0);
    }

    #[test]
    fn writes_serve_rows_to_disk() {
        let dir = std::env::temp_dir().join("postopc_json_test");
        std::fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join("BENCH_serve.json");
        write_serve_rows(&path, 1, &[serve_row()]).expect("write");
        let read = std::fs::read_to_string(&path).expect("read back");
        assert_eq!(read, render_serve_rows(1, &[serve_row()]));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn writes_to_disk() {
        let dir = std::env::temp_dir().join("postopc_json_test");
        std::fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join("BENCH_extract.json");
        write_engine_rows(&path, 1, &[row()]).expect("write");
        let read = std::fs::read_to_string(&path).expect("read back");
        assert_eq!(read, render_engine_rows(1, &[row()]));
        let _ = std::fs::remove_file(&path);
    }
}
