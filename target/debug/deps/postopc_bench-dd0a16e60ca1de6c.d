/root/repo/target/debug/deps/postopc_bench-dd0a16e60ca1de6c.d: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/timing.rs Cargo.toml

/root/repo/target/debug/deps/libpostopc_bench-dd0a16e60ca1de6c.rmeta: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/timing.rs Cargo.toml

crates/bench/src/lib.rs:
crates/bench/src/experiments.rs:
crates/bench/src/timing.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
