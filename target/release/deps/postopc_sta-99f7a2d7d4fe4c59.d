/root/repo/target/release/deps/postopc_sta-99f7a2d7d4fe4c59.d: crates/sta/src/lib.rs crates/sta/src/annotate.rs crates/sta/src/corners.rs crates/sta/src/error.rs crates/sta/src/graph.rs crates/sta/src/liberty.rs crates/sta/src/paths.rs crates/sta/src/statistical.rs

/root/repo/target/release/deps/libpostopc_sta-99f7a2d7d4fe4c59.rlib: crates/sta/src/lib.rs crates/sta/src/annotate.rs crates/sta/src/corners.rs crates/sta/src/error.rs crates/sta/src/graph.rs crates/sta/src/liberty.rs crates/sta/src/paths.rs crates/sta/src/statistical.rs

/root/repo/target/release/deps/libpostopc_sta-99f7a2d7d4fe4c59.rmeta: crates/sta/src/lib.rs crates/sta/src/annotate.rs crates/sta/src/corners.rs crates/sta/src/error.rs crates/sta/src/graph.rs crates/sta/src/liberty.rs crates/sta/src/paths.rs crates/sta/src/statistical.rs

crates/sta/src/lib.rs:
crates/sta/src/annotate.rs:
crates/sta/src/corners.rs:
crates/sta/src/error.rs:
crates/sta/src/graph.rs:
crates/sta/src/liberty.rs:
crates/sta/src/paths.rs:
crates/sta/src/statistical.rs:
