//! Non-rectangular gate modelling by slicing (companion paper #44:
//! "From poly line to transistor: building BSIM models for non-rectangular
//! transistors", Poppe, Neureuther, Wu, Capodieci, 2006).
//!
//! Post-OPC printed gates are not rectangles: corner rounding, line-end
//! pullback and proximity bias make the channel length vary across the
//! transistor width. The slice model cuts the gate into narrow rectangular
//! slices along the width axis, evaluates each slice with the standard
//! compact model, and reduces the ensemble to a single *equivalent
//! rectangular transistor* — one equivalent length for delay (matching
//! total on-current) and a different one for leakage (matching total off-
//! current), exactly as the companion paper prescribes.

use crate::error::{DeviceError, Result};
use crate::mosfet::Mosfet;
use crate::params::{MosKind, ProcessParams};

/// One rectangular slice of a printed gate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GateSlice {
    /// Slice width (along the transistor width axis) in nm.
    pub w_nm: f64,
    /// Printed channel length of this slice in nm.
    pub l_nm: f64,
}

/// A non-rectangular printed gate, represented as parallel slices.
///
/// ```
/// use postopc_device::{SlicedGate, GateSlice, MosKind, ProcessParams};
/// # fn main() -> Result<(), postopc_device::DeviceError> {
/// let p = ProcessParams::n90();
/// // Corner rounding narrowed the channel at one edge of the gate.
/// let gate = SlicedGate::new(MosKind::Nmos, vec![
///     GateSlice { w_nm: 100.0, l_nm: 84.0 },
///     GateSlice { w_nm: 800.0, l_nm: 90.0 },
///     GateSlice { w_nm: 100.0, l_nm: 88.0 },
/// ])?;
/// let eq = gate.equivalent(&p)?;
/// // Delay-equivalent L is near the width-weighted mean; leakage-
/// // equivalent L is pulled toward the shortest slice.
/// assert!(eq.l_leakage_nm < eq.l_delay_nm);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SlicedGate {
    kind: MosKind,
    slices: Vec<GateSlice>,
}

/// The equivalent rectangular transistor of a sliced gate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EquivalentGate {
    /// Total width (sum of slice widths) in nm.
    pub w_nm: f64,
    /// Length whose rectangular device matches the sliced gate's total
    /// on-current — use for delay analysis.
    pub l_delay_nm: f64,
    /// Length whose rectangular device matches the sliced gate's total
    /// off-current — use for static-power analysis.
    pub l_leakage_nm: f64,
}

impl SlicedGate {
    /// Builds a sliced gate.
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::EmptySlices`] for an empty slice list, or
    /// [`DeviceError::InvalidDimension`] if any slice dimension is
    /// non-positive or non-finite.
    pub fn new(kind: MosKind, slices: Vec<GateSlice>) -> Result<SlicedGate> {
        if slices.is_empty() {
            return Err(DeviceError::EmptySlices);
        }
        for s in &slices {
            if !(s.w_nm.is_finite() && s.w_nm > 0.0) {
                return Err(DeviceError::InvalidDimension {
                    name: "slice W",
                    value: s.w_nm,
                });
            }
            if !(s.l_nm.is_finite() && s.l_nm > 0.0) {
                return Err(DeviceError::InvalidDimension {
                    name: "slice L",
                    value: s.l_nm,
                });
            }
        }
        Ok(SlicedGate { kind, slices })
    }

    /// Transistor polarity.
    pub fn kind(&self) -> MosKind {
        self.kind
    }

    /// The slices.
    pub fn slices(&self) -> &[GateSlice] {
        &self.slices
    }

    /// Total transistor width in nm.
    pub fn total_width_nm(&self) -> f64 {
        self.slices.iter().map(|s| s.w_nm).sum()
    }

    /// Total on-current: the sum of per-slice alpha-power currents
    /// (slices conduct in parallel), in µA.
    pub fn i_on(&self, p: &ProcessParams) -> Result<f64> {
        self.sum_over_slices(p, |m, p| m.i_on(p))
    }

    /// Total off-current (parallel leakage), in µA.
    pub fn i_off(&self, p: &ProcessParams) -> Result<f64> {
        self.sum_over_slices(p, |m, p| m.i_off(p))
    }

    /// Reduces the sliced gate to its equivalent rectangular transistor.
    ///
    /// Solves `I(W_total, L_eq) = I_sliced` by bisection for both the
    /// on-current (delay) and off-current (leakage) definitions; both
    /// currents are strictly decreasing in `L`, so the roots are unique.
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::NoConvergence`] if bisection fails (requires
    /// pathological slice data outside the bracket `[L_min/2, 2·L_max]`).
    pub fn equivalent(&self, p: &ProcessParams) -> Result<EquivalentGate> {
        let w = self.total_width_nm();
        let l_min = self.slices.iter().map(|s| s.l_nm).fold(f64::MAX, f64::min);
        let l_max = self.slices.iter().map(|s| s.l_nm).fold(0.0, f64::max);
        let ion = self.i_on(p)?;
        let ioff = self.i_off(p)?;
        let l_delay = bisect_length(
            |l| Mosfet::new(self.kind, w, l).map(|m| m.i_on(p)),
            ion,
            l_min * 0.5,
            l_max * 2.0,
            "delay-equivalent length",
        )?;
        let l_leak = bisect_length(
            |l| Mosfet::new(self.kind, w, l).map(|m| m.i_off(p)),
            ioff,
            l_min * 0.5,
            l_max * 2.0,
            "leakage-equivalent length",
        )?;
        Ok(EquivalentGate {
            w_nm: w,
            l_delay_nm: l_delay,
            l_leakage_nm: l_leak,
        })
    }

    fn sum_over_slices(
        &self,
        p: &ProcessParams,
        f: impl Fn(&Mosfet, &ProcessParams) -> f64,
    ) -> Result<f64> {
        let mut total = 0.0;
        for s in &self.slices {
            let m = Mosfet::new(self.kind, s.w_nm, s.l_nm)?;
            total += f(&m, p);
        }
        Ok(total)
    }
}

/// Finds `L` in `[lo, hi]` with `current(L) == target`, assuming `current`
/// is strictly decreasing in `L`.
fn bisect_length(
    current: impl Fn(f64) -> Result<f64>,
    target: f64,
    mut lo: f64,
    mut hi: f64,
    what: &'static str,
) -> Result<f64> {
    const MAX_ITER: usize = 200;
    let f_lo = current(lo)?;
    let f_hi = current(hi)?;
    if target > f_lo || target < f_hi {
        return Err(DeviceError::NoConvergence {
            what,
            iterations: 0,
        });
    }
    for _ in 0..MAX_ITER {
        let mid = 0.5 * (lo + hi);
        let f_mid = current(mid)?;
        if (hi - lo) < 1e-6 {
            return Ok(mid);
        }
        if f_mid > target {
            lo = mid; // current too high => need longer channel
        } else {
            hi = mid;
        }
    }
    Err(DeviceError::NoConvergence {
        what,
        iterations: MAX_ITER,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p() -> ProcessParams {
        ProcessParams::n90()
    }

    fn uniform(l: f64) -> SlicedGate {
        SlicedGate::new(
            MosKind::Nmos,
            vec![
                GateSlice {
                    w_nm: 250.0,
                    l_nm: l,
                },
                GateSlice {
                    w_nm: 250.0,
                    l_nm: l,
                },
                GateSlice {
                    w_nm: 500.0,
                    l_nm: l,
                },
            ],
        )
        .expect("valid gate")
    }

    #[test]
    fn rejects_empty_and_bad_slices() {
        assert!(matches!(
            SlicedGate::new(MosKind::Nmos, vec![]),
            Err(DeviceError::EmptySlices)
        ));
        assert!(SlicedGate::new(
            MosKind::Nmos,
            vec![GateSlice {
                w_nm: -1.0,
                l_nm: 90.0
            }]
        )
        .is_err());
    }

    #[test]
    fn uniform_gate_equivalent_recovers_length() {
        let eq = uniform(90.0).equivalent(&p()).expect("converges");
        assert!((eq.l_delay_nm - 90.0).abs() < 1e-3, "{}", eq.l_delay_nm);
        assert!((eq.l_leakage_nm - 90.0).abs() < 1e-3, "{}", eq.l_leakage_nm);
        assert_eq!(eq.w_nm, 1000.0);
    }

    #[test]
    fn uniform_gate_currents_match_rectangular() {
        let pp = p();
        let g = uniform(88.0);
        let m = Mosfet::new(MosKind::Nmos, 1000.0, 88.0).expect("valid");
        assert!((g.i_on(&pp).expect("ok") - m.i_on(&pp)).abs() / m.i_on(&pp) < 1e-12);
        assert!((g.i_off(&pp).expect("ok") - m.i_off(&pp)).abs() / m.i_off(&pp) < 1e-12);
    }

    #[test]
    fn leakage_equivalent_shorter_than_delay_equivalent() {
        // Necked gate: a narrow short region dominates leakage.
        let g = SlicedGate::new(
            MosKind::Nmos,
            vec![
                GateSlice {
                    w_nm: 100.0,
                    l_nm: 78.0,
                },
                GateSlice {
                    w_nm: 900.0,
                    l_nm: 90.0,
                },
            ],
        )
        .expect("valid");
        let eq = g.equivalent(&p()).expect("converges");
        assert!(
            eq.l_leakage_nm < eq.l_delay_nm,
            "L_leak {} !< L_delay {}",
            eq.l_leakage_nm,
            eq.l_delay_nm
        );
        // Both must lie strictly between the extremes.
        assert!(eq.l_delay_nm > 78.0 && eq.l_delay_nm < 90.0);
        assert!(eq.l_leakage_nm > 78.0 && eq.l_leakage_nm < 90.0);
    }

    #[test]
    fn equivalent_matches_ensemble_currents() {
        let pp = p();
        let g = SlicedGate::new(
            MosKind::Pmos,
            vec![
                GateSlice {
                    w_nm: 300.0,
                    l_nm: 86.0,
                },
                GateSlice {
                    w_nm: 300.0,
                    l_nm: 92.0,
                },
                GateSlice {
                    w_nm: 400.0,
                    l_nm: 89.0,
                },
            ],
        )
        .expect("valid");
        let eq = g.equivalent(&pp).expect("converges");
        let delay_dev = Mosfet::new(MosKind::Pmos, eq.w_nm, eq.l_delay_nm).expect("valid");
        let leak_dev = Mosfet::new(MosKind::Pmos, eq.w_nm, eq.l_leakage_nm).expect("valid");
        let ion = g.i_on(&pp).expect("ok");
        let ioff = g.i_off(&pp).expect("ok");
        assert!((delay_dev.i_on(&pp) - ion).abs() / ion < 1e-4);
        assert!((leak_dev.i_off(&pp) - ioff).abs() / ioff < 1e-4);
    }

    #[test]
    fn single_nm_necking_changes_leakage_percent_level() {
        // The slice model exists because mid-gate CD alone misses necking:
        // quantify that a 5 nm neck over 10% of the width moves leakage
        // far more than the width-weighted-average length suggests.
        let pp = p();
        let necked = SlicedGate::new(
            MosKind::Nmos,
            vec![
                GateSlice {
                    w_nm: 100.0,
                    l_nm: 80.0,
                },
                GateSlice {
                    w_nm: 900.0,
                    l_nm: 90.0,
                },
            ],
        )
        .expect("valid");
        let avg_l = (100.0 * 80.0 + 900.0 * 90.0) / 1000.0;
        let avg_dev = Mosfet::new(MosKind::Nmos, 1000.0, avg_l).expect("valid");
        let sliced_ioff = necked.i_off(&pp).expect("ok");
        assert!(
            sliced_ioff > 1.05 * avg_dev.i_off(&pp),
            "slice model should exceed the averaged-L leakage estimate"
        );
    }
}
