/root/repo/target/debug/deps/postopc_parallel-30065d8930bc0fa4.d: crates/parallel/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libpostopc_parallel-30065d8930bc0fa4.rmeta: crates/parallel/src/lib.rs Cargo.toml

crates/parallel/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
