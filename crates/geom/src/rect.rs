//! Axis-aligned rectangles.

use crate::error::{GeomError, Result};
use crate::point::{Coord, Point, Vector};
use std::fmt;

/// An axis-aligned rectangle with strictly positive area.
///
/// The canonical representation stores the lower-left (`min`) and upper-right
/// (`max`) corners with `min.x < max.x` and `min.y < max.y`. Constructors
/// normalize corner order; degenerate (zero-width or zero-height) rectangles
/// are rejected so that downstream geometry never has to special-case them.
///
/// ```
/// use postopc_geom::Rect;
/// # fn main() -> Result<(), postopc_geom::GeomError> {
/// let r = Rect::new(0, 0, 90, 400)?;
/// assert_eq!(r.width(), 90);
/// assert_eq!(r.area(), 36_000);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Rect {
    min: Point,
    max: Point,
}

impl Rect {
    /// Creates a rectangle spanning the two corner points, in any order.
    ///
    /// # Errors
    ///
    /// Returns [`GeomError::EmptyRect`] if the rectangle would have zero
    /// width or height.
    pub fn new(x0: Coord, y0: Coord, x1: Coord, y1: Coord) -> Result<Rect> {
        let min = Point::new(x0.min(x1), y0.min(y1));
        let max = Point::new(x0.max(x1), y0.max(y1));
        if min.x == max.x || min.y == max.y {
            return Err(GeomError::EmptyRect {
                width: max.x - min.x,
                height: max.y - min.y,
            });
        }
        Ok(Rect { min, max })
    }

    /// Creates a rectangle from corner points.
    ///
    /// # Errors
    ///
    /// Returns [`GeomError::EmptyRect`] for degenerate extents.
    pub fn from_points(a: Point, b: Point) -> Result<Rect> {
        Rect::new(a.x, a.y, b.x, b.y)
    }

    /// Creates a rectangle centered at `center` with the given width/height.
    ///
    /// Odd sizes are rounded so the full width/height is preserved
    /// (`min = center - size/2`, `max = min + size`).
    ///
    /// # Errors
    ///
    /// Returns [`GeomError::EmptyRect`] if `width` or `height` is `<= 0`.
    pub fn centered(center: Point, width: Coord, height: Coord) -> Result<Rect> {
        if width <= 0 || height <= 0 {
            return Err(GeomError::EmptyRect { width, height });
        }
        let min = Point::new(center.x - width / 2, center.y - height / 2);
        Rect::new(min.x, min.y, min.x + width, min.y + height)
    }

    /// Lower-left corner.
    pub fn min(&self) -> Point {
        self.min
    }

    /// Upper-right corner.
    pub fn max(&self) -> Point {
        self.max
    }

    /// Left edge x-coordinate.
    pub fn left(&self) -> Coord {
        self.min.x
    }

    /// Right edge x-coordinate.
    pub fn right(&self) -> Coord {
        self.max.x
    }

    /// Bottom edge y-coordinate.
    pub fn bottom(&self) -> Coord {
        self.min.y
    }

    /// Top edge y-coordinate.
    pub fn top(&self) -> Coord {
        self.max.y
    }

    /// Width in nm (always positive).
    pub fn width(&self) -> Coord {
        self.max.x - self.min.x
    }

    /// Height in nm (always positive).
    pub fn height(&self) -> Coord {
        self.max.y - self.min.y
    }

    /// Area in nm² as `i128` (a full-chip rectangle overflows `i64`).
    pub fn area(&self) -> i128 {
        self.width() as i128 * self.height() as i128
    }

    /// Center point (rounded toward `min` for odd extents).
    pub fn center(&self) -> Point {
        Point::new(
            self.min.x + self.width() / 2,
            self.min.y + self.height() / 2,
        )
    }

    /// Whether `p` lies inside or on the boundary.
    pub fn contains(&self, p: Point) -> bool {
        p.x >= self.min.x && p.x <= self.max.x && p.y >= self.min.y && p.y <= self.max.y
    }

    /// Whether `p` lies strictly inside the rectangle.
    pub fn contains_strict(&self, p: Point) -> bool {
        p.x > self.min.x && p.x < self.max.x && p.y > self.min.y && p.y < self.max.y
    }

    /// Whether `other` is fully contained (boundary touching allowed).
    pub fn contains_rect(&self, other: &Rect) -> bool {
        self.contains(other.min) && self.contains(other.max)
    }

    /// Whether the two rectangles share interior area (touching edges do
    /// not count as intersection).
    pub fn intersects(&self, other: &Rect) -> bool {
        self.min.x < other.max.x
            && other.min.x < self.max.x
            && self.min.y < other.max.y
            && other.min.y < self.max.y
    }

    /// The overlapping region, if the interiors intersect.
    pub fn intersection(&self, other: &Rect) -> Option<Rect> {
        if !self.intersects(other) {
            return None;
        }
        Rect::new(
            self.min.x.max(other.min.x),
            self.min.y.max(other.min.y),
            self.max.x.min(other.max.x),
            self.max.y.min(other.max.y),
        )
        .ok()
    }

    /// Smallest rectangle containing both inputs.
    pub fn union_bbox(&self, other: &Rect) -> Rect {
        Rect {
            min: self.min.min(other.min),
            max: self.max.max(other.max),
        }
    }

    /// Grows (positive `bias`) or shrinks (negative) all four sides by
    /// `bias` nm.
    ///
    /// # Errors
    ///
    /// Returns [`GeomError::EmptyRect`] if shrinking collapses the rectangle.
    pub fn expand(&self, bias: Coord) -> Result<Rect> {
        Rect::new(
            self.min.x - bias,
            self.min.y - bias,
            self.max.x + bias,
            self.max.y + bias,
        )
    }

    /// The rectangle translated by `v`.
    pub fn translate(&self, v: Vector) -> Rect {
        Rect {
            min: self.min + v,
            max: self.max + v,
        }
    }

    /// Euclidean gap between the closest points of two rectangles
    /// (0.0 if they touch or overlap).
    pub fn gap(&self, other: &Rect) -> f64 {
        let dx = (other.min.x - self.max.x)
            .max(self.min.x - other.max.x)
            .max(0);
        let dy = (other.min.y - self.max.y)
            .max(self.min.y - other.max.y)
            .max(0);
        (dx as f64).hypot(dy as f64)
    }

    /// The four corner points, counter-clockwise from `min`.
    pub fn corners(&self) -> [Point; 4] {
        [
            self.min,
            Point::new(self.max.x, self.min.y),
            self.max,
            Point::new(self.min.x, self.max.y),
        ]
    }
}

impl fmt::Display for Rect {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{} .. {}]", self.min, self.max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(x0: Coord, y0: Coord, x1: Coord, y1: Coord) -> Rect {
        Rect::new(x0, y0, x1, y1).expect("valid rect")
    }

    #[test]
    fn normalizes_corner_order() {
        let a = r(10, 20, 0, 0);
        assert_eq!(a.min(), Point::new(0, 0));
        assert_eq!(a.max(), Point::new(10, 20));
    }

    #[test]
    fn rejects_degenerate() {
        assert!(matches!(
            Rect::new(0, 0, 0, 10),
            Err(GeomError::EmptyRect { .. })
        ));
        assert!(Rect::centered(Point::ORIGIN, 0, 5).is_err());
    }

    #[test]
    fn centered_preserves_size() {
        let c = Rect::centered(Point::new(100, 100), 91, 45).expect("valid");
        assert_eq!(c.width(), 91);
        assert_eq!(c.height(), 45);
    }

    #[test]
    fn intersection_and_touching() {
        let a = r(0, 0, 10, 10);
        let b = r(10, 0, 20, 10); // shares an edge only
        assert!(!a.intersects(&b));
        assert_eq!(a.intersection(&b), None);
        let c = r(5, 5, 15, 15);
        assert_eq!(a.intersection(&c), Some(r(5, 5, 10, 10)));
    }

    #[test]
    fn union_bbox_covers_both() {
        let a = r(0, 0, 1, 1);
        let b = r(5, -3, 6, 9);
        let u = a.union_bbox(&b);
        assert!(u.contains_rect(&a) && u.contains_rect(&b));
        assert_eq!(u, r(0, -3, 6, 9));
    }

    #[test]
    fn expand_and_shrink() {
        let a = r(0, 0, 10, 10);
        assert_eq!(a.expand(5).expect("grown"), r(-5, -5, 15, 15));
        assert_eq!(a.expand(-4).expect("shrunk"), r(4, 4, 6, 6));
        assert!(a.expand(-5).is_err());
    }

    #[test]
    fn gap_between_rects() {
        let a = r(0, 0, 10, 10);
        let b = r(13, 0, 20, 10);
        assert!((a.gap(&b) - 3.0).abs() < 1e-12);
        let c = r(13, 14, 20, 20);
        assert!((a.gap(&c) - 5.0).abs() < 1e-12);
        let d = r(5, 5, 6, 6);
        assert_eq!(a.gap(&d), 0.0);
    }

    #[test]
    fn area_uses_wide_arithmetic() {
        let big = r(0, 0, 3_000_000_000, 3_000_000_000);
        assert_eq!(big.area(), 9_000_000_000_000_000_000i128);
    }

    #[test]
    fn corners_ccw() {
        let a = r(0, 0, 2, 3);
        let c = a.corners();
        assert_eq!(c[0], Point::new(0, 0));
        assert_eq!(c[1], Point::new(2, 0));
        assert_eq!(c[2], Point::new(2, 3));
        assert_eq!(c[3], Point::new(0, 3));
    }
}
