/root/repo/target/release/deps/selective_opc-4592f24b3e808b98.d: crates/bench/benches/selective_opc.rs Cargo.toml

/root/repo/target/release/deps/libselective_opc-4592f24b3e808b98.rmeta: crates/bench/benches/selective_opc.rs Cargo.toml

crates/bench/benches/selective_opc.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
