//! Error type of the integrated post-OPC timing flow.

use std::error::Error;
use std::fmt;
use std::path::{Path, PathBuf};

/// The artifact I/O operation that failed — carried by
/// [`ArtifactErrorKind::Io`] so a recovery ladder can tell a torn write
/// from a failed fsync from a rename that never landed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArtifactOp {
    /// Reading artifact bytes from disk.
    Read,
    /// Writing the temporary file of an atomic save.
    Write,
    /// Flushing the file (or its parent directory) to stable storage.
    Fsync,
    /// Renaming the temporary file into place.
    Rename,
    /// Creating or inspecting the sidecar advisory lock.
    Lock,
}

impl fmt::Display for ArtifactOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            ArtifactOp::Read => "read",
            ArtifactOp::Write => "write",
            ArtifactOp::Fsync => "fsync",
            ArtifactOp::Rename => "rename",
            ArtifactOp::Lock => "lock",
        })
    }
}

/// Why a persisted artifact could not be used. The kinds mirror the
/// recovery ladder in [`crate::serve`]: torn/partial bytes, a format from
/// another era, a stale invalidation key, an I/O failure (possibly
/// transient and retryable), or another live serve holding the lock.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ArtifactErrorKind {
    /// Torn or malformed bytes: bad magic, checksum mismatch,
    /// truncation, or a corrupt field. The artifact must be rebuilt.
    Corrupt,
    /// The artifact was written by a different format version.
    Version {
        /// Version stored in the artifact header.
        found: u32,
        /// Version this build reads and writes.
        expected: u32,
    },
    /// The artifact parses but was built from different inputs (its
    /// content hash does not match the consumer's).
    StaleHash {
        /// Hash stored in the artifact.
        stored: u64,
        /// Hash of the consumer's current inputs.
        expected: u64,
    },
    /// An I/O operation failed. `transient` marks the `EINTR`-style
    /// class that [`crate::durable::retry_transient`] may retry.
    Io {
        /// The operation that failed.
        op: ArtifactOp,
        /// Whether a bounded retry is worthwhile.
        transient: bool,
    },
    /// Another live process holds the sidecar advisory lock.
    Locked {
        /// Pid recorded in the lock file.
        owner_pid: u32,
    },
}

/// A typed artifact failure: what went wrong ([`ArtifactErrorKind`]),
/// where (the path, when one is involved), and a rendered detail line.
#[derive(Debug, Clone, PartialEq)]
pub struct ArtifactError {
    /// The failure class, for programmatic recovery decisions.
    pub kind: ArtifactErrorKind,
    /// The artifact (or lock/temporary) path involved, if any.
    pub path: Option<PathBuf>,
    /// Human-readable cause.
    pub detail: String,
}

impl ArtifactError {
    /// Torn or malformed artifact bytes.
    #[must_use]
    pub fn corrupt(detail: &str) -> ArtifactError {
        ArtifactError {
            kind: ArtifactErrorKind::Corrupt,
            path: None,
            detail: detail.to_string(),
        }
    }

    /// Unsupported format version.
    #[must_use]
    pub fn version(found: u32, expected: u32) -> ArtifactError {
        ArtifactError {
            kind: ArtifactErrorKind::Version { found, expected },
            path: None,
            detail: format!("unsupported version {found} (expected {expected})"),
        }
    }

    /// Content-hash mismatch: the inputs changed since the artifact was
    /// built.
    #[must_use]
    pub fn stale(stored: u64, expected: u64) -> ArtifactError {
        ArtifactError {
            kind: ArtifactErrorKind::StaleHash { stored, expected },
            path: None,
            detail: format!(
                "content hash mismatch: artifact {stored:#018x}, inputs {expected:#018x} — \
                 layout, process or config changed since it was built"
            ),
        }
    }

    /// An I/O failure during `op` on `path`.
    #[must_use]
    pub fn io(op: ArtifactOp, path: &Path, transient: bool, detail: &str) -> ArtifactError {
        ArtifactError {
            kind: ArtifactErrorKind::Io { op, transient },
            path: Some(path.to_path_buf()),
            detail: format!(
                "cannot {op} {}: {detail}{}",
                path.display(),
                if transient { " (transient)" } else { "" }
            ),
        }
    }

    /// The sidecar advisory lock is held by a live process.
    #[must_use]
    pub fn locked(path: &Path, owner_pid: u32) -> ArtifactError {
        ArtifactError {
            kind: ArtifactErrorKind::Locked { owner_pid },
            path: Some(path.to_path_buf()),
            detail: format!(
                "artifact is locked by live pid {owner_pid} ({}) — \
                 another serve is using it",
                path.display()
            ),
        }
    }

    /// The same error anchored to `path` (decode errors gain the file
    /// they came from when loading from disk).
    #[must_use]
    pub fn with_path(mut self, path: &Path) -> ArtifactError {
        self.path = Some(path.to_path_buf());
        self
    }

    /// Whether a bounded retry may clear the failure (the `EINTR`-style
    /// transient I/O class).
    #[must_use]
    pub fn is_transient(&self) -> bool {
        matches!(
            self.kind,
            ArtifactErrorKind::Io {
                transient: true,
                ..
            }
        )
    }
}

impl fmt::Display for ArtifactError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.detail)?;
        // I/O and lock details already name their path.
        if let Some(path) = &self.path {
            if !matches!(
                self.kind,
                ArtifactErrorKind::Io { .. } | ArtifactErrorKind::Locked { .. }
            ) {
                write!(f, " [{}]", path.display())?;
            }
        }
        Ok(())
    }
}

impl Error for ArtifactError {}

/// Errors produced by the end-to-end flow.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum FlowError {
    /// Layout/netlist substrate failure.
    Layout(postopc_layout::LayoutError),
    /// Lithography simulation failure.
    Litho(postopc_litho::LithoError),
    /// OPC failure.
    Opc(postopc_opc::OpcError),
    /// CD extraction failure.
    Cdex(postopc_cdex::CdexError),
    /// Timing analysis failure.
    Sta(postopc_sta::StaError),
    /// Geometry failure.
    Geometry(postopc_geom::GeomError),
    /// A flow configuration value was out of range.
    InvalidConfig(String),
    /// A persisted artifact could not be used: torn/partial bytes, an
    /// unsupported version, a stale content hash, an I/O failure or a
    /// held advisory lock — see [`ArtifactErrorKind`]. Loading never
    /// panics — every malformed input lands here.
    Artifact(ArtifactError),
    /// Quarantined gates exceeded the configured budget
    /// ([`crate::FaultPolicy::Quarantine`]'s `max_fraction`).
    QuarantineExceeded {
        /// Gates quarantined during the run.
        quarantined: usize,
        /// Tagged gates submitted to extraction.
        total: usize,
        /// The configured budget the run overran.
        max_fraction: f64,
    },
}

impl fmt::Display for FlowError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FlowError::Layout(e) => write!(f, "layout error: {e}"),
            FlowError::Litho(e) => write!(f, "lithography error: {e}"),
            FlowError::Opc(e) => write!(f, "opc error: {e}"),
            FlowError::Cdex(e) => write!(f, "extraction error: {e}"),
            FlowError::Sta(e) => write!(f, "timing error: {e}"),
            FlowError::Geometry(e) => write!(f, "geometry error: {e}"),
            FlowError::InvalidConfig(reason) => write!(f, "invalid flow configuration: {reason}"),
            FlowError::Artifact(reason) => write!(f, "invalid artifact: {reason}"),
            FlowError::QuarantineExceeded {
                quarantined,
                total,
                max_fraction,
            } => write!(
                f,
                "quarantine budget exceeded: {quarantined} of {total} gates \
                 quarantined (max fraction {max_fraction})"
            ),
        }
    }
}

impl Error for FlowError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            FlowError::Layout(e) => Some(e),
            FlowError::Litho(e) => Some(e),
            FlowError::Opc(e) => Some(e),
            FlowError::Cdex(e) => Some(e),
            FlowError::Sta(e) => Some(e),
            FlowError::Geometry(e) => Some(e),
            FlowError::InvalidConfig(_) => None,
            FlowError::Artifact(e) => Some(e),
            FlowError::QuarantineExceeded { .. } => None,
        }
    }
}

macro_rules! from_error {
    ($variant:ident, $ty:ty) => {
        impl From<$ty> for FlowError {
            fn from(e: $ty) -> Self {
                FlowError::$variant(e)
            }
        }
    };
}

from_error!(Layout, postopc_layout::LayoutError);
from_error!(Litho, postopc_litho::LithoError);
from_error!(Opc, postopc_opc::OpcError);
from_error!(Cdex, postopc_cdex::CdexError);
from_error!(Sta, postopc_sta::StaError);
from_error!(Geometry, postopc_geom::GeomError);

/// Convenience result alias for the flow crate.
pub type Result<T> = std::result::Result<T, FlowError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_sources() {
        let e: FlowError = postopc_geom::GeomError::InvalidResolution(0.0).into();
        assert!(e.source().is_some());
        assert!(e.to_string().contains("geometry"));
        let c = FlowError::InvalidConfig("bad".into());
        assert!(c.source().is_none());
    }

    #[test]
    fn artifact_error_kinds_render_their_ladder_rung() {
        let corrupt = ArtifactError::corrupt("checksum mismatch: artifact is corrupt")
            .with_path(Path::new("/tmp/warm.bin"));
        assert_eq!(corrupt.kind, ArtifactErrorKind::Corrupt);
        assert!(corrupt.to_string().contains("checksum"));
        assert!(corrupt.to_string().contains("warm.bin"));
        assert!(!corrupt.is_transient());

        let version = ArtifactError::version(7, 2);
        assert!(version.to_string().contains("version 7"));
        assert_eq!(
            version.kind,
            ArtifactErrorKind::Version {
                found: 7,
                expected: 2
            }
        );

        let stale = ArtifactError::stale(1, 2);
        assert!(stale.to_string().contains("content hash mismatch"));

        let io = ArtifactError::io(ArtifactOp::Rename, Path::new("/x/a.bin"), true, "EINTR");
        assert!(io.is_transient());
        assert!(io.to_string().contains("rename"));
        assert!(io.to_string().contains("transient"));
        let hard = ArtifactError::io(ArtifactOp::Write, Path::new("/x/a.bin"), false, "ENOSPC");
        assert!(!hard.is_transient());

        let locked = ArtifactError::locked(Path::new("/x/a.bin.lock"), 42);
        assert!(locked.to_string().contains("pid 42"));
        let flow: FlowError = FlowError::Artifact(locked);
        assert!(flow.source().is_some());
        assert!(flow.to_string().contains("invalid artifact"));
    }
}
