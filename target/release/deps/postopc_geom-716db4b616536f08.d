/root/repo/target/release/deps/postopc_geom-716db4b616536f08.d: crates/geom/src/lib.rs crates/geom/src/edge.rs crates/geom/src/error.rs crates/geom/src/index.rs crates/geom/src/point.rs crates/geom/src/polygon.rs crates/geom/src/raster.rs crates/geom/src/rect.rs crates/geom/src/transform.rs Cargo.toml

/root/repo/target/release/deps/libpostopc_geom-716db4b616536f08.rmeta: crates/geom/src/lib.rs crates/geom/src/edge.rs crates/geom/src/error.rs crates/geom/src/index.rs crates/geom/src/point.rs crates/geom/src/polygon.rs crates/geom/src/raster.rs crates/geom/src/rect.rs crates/geom/src/transform.rs Cargo.toml

crates/geom/src/lib.rs:
crates/geom/src/edge.rs:
crates/geom/src/error.rs:
crates/geom/src/index.rs:
crates/geom/src/point.rs:
crates/geom/src/polygon.rs:
crates/geom/src/raster.rs:
crates/geom/src/rect.rs:
crates/geom/src/transform.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
