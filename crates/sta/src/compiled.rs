//! The compiled sample evaluator: everything annotation-invariant is
//! precomputed once by [`TimingModel::compile`], and each evaluation runs
//! against reusable scratch buffers — no per-sample `HashMap`, no
//! re-built `Wire`s, no re-cloned base records, no fresh result vectors
//! in the Monte Carlo hot loop.
//!
//! The evaluator is a pure refactoring of [`TimingModel::analyze`]: every
//! float operation happens on the same values in the same order, so the
//! results are **bit-identical** to the naive path (enforced by the
//! `compiled_parity` reference-implementation tests). Per-gate
//! characterization goes through a [`CharacterizationCache`] whose hits
//! replay exact bits, which keeps that guarantee while collapsing
//! corner-style workloads (every gate shifted uniformly) to one device-
//! model evaluation per distinct cell.

use crate::annotate::{CdAnnotation, TransistorCd};
use crate::error::{Result, StaError};
use crate::graph::{TimingModel, TimingReport};
use crate::liberty::{CellTiming, CharacterizationCache, CLOCK_SLEW_PS, PRIMARY_INPUT_SLEW_PS};
use postopc_device::Wire;
use postopc_layout::{GateId, GateKind, NetId};
use std::collections::HashMap;

/// Samples evaluated per gate visit by [`CompiledSta::evaluate_shifted_batch`].
///
/// Lane state is stored as `[f64; LANES]` arrays (structure-of-arrays per
/// net/gate), so the per-lane loops compile to straight-line vector code in
/// release builds without any architecture-specific intrinsics. Eight lanes
/// amortize the per-gate walk (topological order, netlist indirections,
/// endpoint pushes) across eight samples while keeping the per-batch state
/// well inside L2 for realistic designs.
pub const LANES: usize = 8;

/// Exact-bit equality of two cell timings. The incremental (ECO) path
/// must treat `-0.0`/`+0.0` and distinct NaN payloads as *different* —
/// `PartialEq` would not — because "unchanged" there means "the stored
/// bits the full pass would have produced".
fn timing_bits_eq(a: &CellTiming, b: &CellTiming) -> bool {
    let bits = |x: f64, y: f64| x.to_bits() == y.to_bits();
    let seq = match (&a.sequential, &b.sequential) {
        (None, None) => true,
        (Some(x), Some(y)) => bits(x.clk_to_q_ps, y.clk_to_q_ps) && bits(x.setup_ps, y.setup_ps),
        _ => false,
    };
    seq && bits(a.input_cap_ff, b.input_cap_ff)
        && bits(a.pull_up_r_kohm, b.pull_up_r_kohm)
        && bits(a.pull_down_r_kohm, b.pull_down_r_kohm)
        && bits(a.intrinsic_ps, b.intrinsic_ps)
        && bits(a.output_cap_ff, b.output_cap_ff)
        && bits(a.leakage_ua, b.leakage_ua)
        && a.nldm
            .load_axis_ff
            .iter()
            .zip(b.nldm.load_axis_ff.iter())
            .all(|(x, y)| bits(*x, *y))
        && a.nldm
            .delay_grid_ps
            .iter()
            .flatten()
            .zip(b.nldm.delay_grid_ps.iter().flatten())
            .all(|(x, y)| bits(*x, *y))
        && a.nldm
            .slew_grid_ps
            .iter()
            .flatten()
            .zip(b.nldm.slew_grid_ps.iter().flatten())
            .all(|(x, y)| bits(*x, *y))
}

/// Summary of one evaluated sample — the quantities Monte Carlo keeps,
/// produced without materializing a full [`TimingReport`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SampleTiming {
    /// Worst endpoint slack, in ps.
    pub worst_slack_ps: f64,
    /// Critical path delay (clock − worst slack), in ps.
    pub critical_delay_ps: f64,
    /// Total static leakage, in µA.
    pub leakage_ua: f64,
}

/// Per-gate sensitivities produced by [`CompiledSta::gate_sensitivities`]
/// — the inputs tail-targeted (importance-sampled) Monte Carlo derives
/// its per-gate tilt from.
#[derive(Debug, Clone)]
pub struct GateSensitivity {
    /// Worst endpoint slack of the zero-shift baseline, in ps.
    pub worst_slack_ps: f64,
    /// Slack of each gate's output net (`required − arrival`;
    /// `INFINITY` when no endpoint constrains the net), in ps.
    pub slack_ps: Vec<f64>,
    /// Central-difference derivative of each gate's stage delay with
    /// respect to a uniform channel-length shift, in ps per nm.
    pub ddelay_dl_ps_per_nm: Vec<f64>,
}

/// The per-gate base ensembles of a Monte Carlo run, deduplicated into
/// distinct cells — built once per run by [`CompiledSta::sample_cells`]
/// and consumed by [`CompiledSta::evaluate_shifted`].
///
/// Gates whose `(GateKind, base transistor records)` match bit for bit
/// share one slot, so a uniform length shift applied to either produces
/// the identical `CellTiming` — the invariant the shift cache keys on.
#[derive(Debug)]
pub struct SampleCells {
    /// Gate index → slot in `cells`.
    cell_of_gate: Vec<u32>,
    /// Distinct `(kind, base records)` ensembles, first-seen order.
    cells: Vec<(GateKind, Vec<TransistorCd>)>,
}

impl SampleCells {
    /// Number of distinct cells the gates collapsed to.
    pub fn distinct(&self) -> usize {
        self.cells.len()
    }

    /// Cell slot of each gate, indexed by gate (the key space of the
    /// shift caches — samplers scan this to enumerate `(cell, bin)` pairs
    /// worth prewarming).
    pub fn cell_of_gate(&self) -> &[u32] {
        &self.cell_of_gate
    }
}

/// The compiled, annotation-invariant form of a [`TimingModel`].
///
/// Owns per-net drawn [`Wire`] models, per-gate drawn [`CellTiming`]s and
/// drawn transistor records; borrows the model (netlist, topological
/// order, library) it was compiled from. Evaluations mutate a separate
/// [`StaScratch`], so one compiled model is shared read-only across
/// worker threads.
///
/// ```
/// use postopc_sta::TimingModel;
/// use postopc_layout::{Design, generate, TechRules};
/// use postopc_device::ProcessParams;
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let design = Design::compile(generate::ripple_carry_adder(4)?, TechRules::n90())?;
/// let model = TimingModel::new(&design, ProcessParams::n90(), 500.0)?;
/// let compiled = model.compile()?;
/// let mut scratch = compiled.scratch();
/// let report = compiled.evaluate(&mut scratch, None)?;
/// assert_eq!(report, model.analyze(None)?);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct CompiledSta<'m> {
    model: &'m TimingModel<'m>,
    /// Drawn per-net wire RC (`None` below the 1 nm routing threshold).
    drawn_wires: Vec<Option<Wire>>,
    /// Drawn per-gate electrical views.
    base_timings: Vec<CellTiming>,
    /// Drawn per-gate transistor records (annotation templates).
    base_records: Vec<Vec<TransistorCd>>,
    /// Net → sink-gate indices, one entry per input-pin occurrence, in
    /// gate order — re-summing one net's sink load walks the exact
    /// addends of the full pass in the exact order (the incremental ECO
    /// path's bit-identity depends on it).
    net_sinks: Vec<Vec<u32>>,
    /// Net → driver gate index (`u32::MAX` for primary inputs), the O(1)
    /// form of `Netlist::driver`'s linear scan.
    net_driver: Vec<u32>,
}

/// Reusable per-worker evaluation state: propagation buffers, a record
/// staging buffer, and a characterization cache.
///
/// Created by [`CompiledSta::scratch`] (sized for that design) and passed
/// mutably to every evaluation; contents are dead between calls, so one
/// scratch serves any number of sequential evaluations. In parallel Monte
/// Carlo each worker owns one via `par_map_init`.
#[derive(Debug)]
pub struct StaScratch {
    timings: Vec<CellTiming>,
    sink_cap: Vec<f64>,
    gate_delays: Vec<f64>,
    slews: Vec<f64>,
    arrivals: Vec<f64>,
    requireds: Vec<f64>,
    endpoint_required: Vec<(NetId, f64)>,
    /// Dense per-net worst-slack combine (`INFINITY` = untouched).
    worst_by_net: Vec<f64>,
    /// Nets touched in `worst_by_net`, for sparse reset.
    touched: Vec<NetId>,
    /// Per-gate record staging buffer for sample fills.
    records: Vec<TransistorCd>,
    cache: CharacterizationCache,
    shift_cache: ShiftTimingCache,
    /// Per-(gate, lane) tagged timing indices of the current batch
    /// (`gate * LANES + lane`; see `LANE_LOCAL_BIT` / `LANE_OVERFLOW_BIT`).
    lane_timing_idx: Vec<u32>,
    /// Batch-local timings characterized past the local-cache cap.
    lane_overflow: Vec<CellTiming>,
    /// Per-net lane-parallel propagation state (SoA: one `[f64; LANES]`
    /// row per net/gate, so lane loops autovectorize).
    lane_sink_cap: Vec<[f64; LANES]>,
    /// Per-gate input-pin caps of the current batch, filled while the
    /// lane timings resolve so the sink-load pass reads straight rows.
    lane_input_cap: Vec<[f64; LANES]>,
    lane_slews: Vec<[f64; LANES]>,
    lane_arrivals: Vec<[f64; LANES]>,
    lane_endpoint_required: Vec<(NetId, [f64; LANES])>,
    /// Incremental (ECO) dirty flags: gates whose timing or sink load
    /// changed and must re-derive delay/slew this pass.
    eco_gate_dirty: Vec<bool>,
    /// Incremental dirty flags: nets whose sink capacitance must be
    /// re-summed (a sink gate's input cap changed).
    eco_net_cap_dirty: Vec<bool>,
    /// Incremental change flags: nets whose output slew bits moved.
    eco_slew_changed: Vec<bool>,
    /// Incremental change flags: nets whose arrival bits moved.
    eco_arrival_changed: Vec<bool>,
    /// Incremental change flags: gates whose delay bits moved.
    eco_delay_changed: Vec<bool>,
}

impl StaScratch {
    /// The characterization cache carried by this scratch.
    pub fn cache(&self) -> &CharacterizationCache {
        &self.cache
    }

    /// Entries in the `(cell, shift-bin)` cache of the Monte Carlo fast
    /// path ([`CompiledSta::evaluate_shifted`]).
    pub fn shift_cache_len(&self) -> usize {
        self.shift_cache.store.len()
    }

    /// Hits of the `(cell, shift-bin)` cache.
    pub fn shift_cache_hits(&self) -> u64 {
        self.shift_cache.hits
    }

    /// Misses of the `(cell, shift-bin)` cache (device-model evaluations).
    pub fn shift_cache_misses(&self) -> u64 {
        self.shift_cache.misses
    }

    /// Lookups served by a caller-supplied [`SharedShiftCache`] (prewarmed
    /// entries never probe the local cache, so they are counted apart).
    pub fn shift_cache_shared_hits(&self) -> u64 {
        self.shift_cache.shared_hits
    }

    /// Insertions the `(cell, shift-bin)` cache refused because it was at
    /// its entry cap ([`SHIFT_CACHE_CAP_DEFAULT`] or the
    /// [`SHIFT_CACHE_CAP_ENV`] override) — those shifts were characterized
    /// without being memoized.
    pub fn shift_cache_rejected(&self) -> u64 {
        self.shift_cache.rejected
    }

    /// The entry cap of the `(cell, shift-bin)` cache, resolved when this
    /// scratch was created.
    pub fn shift_cache_cap(&self) -> usize {
        self.shift_cache.cap
    }

    /// Snapshot of the `(cell, shift-bin)` cache, sorted by packed key —
    /// the serialization view the warm-artifact store persists. Keys are
    /// `(cell << 32) | bin` against the [`SampleCells`] dedup of the run
    /// that filled the cache, so entries only transfer between runs whose
    /// base ensembles (and hence cell slots) match — exactly the
    /// invariant a content-addressed artifact guarantees.
    pub fn export_shift_entries(&self) -> Vec<(u64, CellTiming)> {
        let mut out = Vec::with_capacity(self.shift_cache.store.len());
        for (&key, &idx) in self.shift_cache.keys.iter().zip(&self.shift_cache.slot_idx) {
            if key != SHIFT_EMPTY {
                out.push((key, self.shift_cache.store[idx as usize]));
            }
        }
        out.sort_unstable_by_key(|&(key, _)| key);
        out
    }

    /// Re-memoizes previously exported `(cell, shift-bin)` entries.
    /// Entries already present are left alone; entries past the cap are
    /// dropped (and counted as rejected). Because a hit replays exact
    /// bits, absorbing entries can only skip device-model calls — it can
    /// never change a result.
    pub fn absorb_shift_entries(&mut self, entries: &[(u64, CellTiming)]) {
        for &(key, timing) in entries {
            if key == SHIFT_EMPTY {
                continue;
            }
            self.shift_cache.insert(key, timing);
        }
    }

    /// Mutable access to the characterization cache (artifact absorb path).
    pub fn cache_mut(&mut self) -> &mut CharacterizationCache {
        &mut self.cache
    }
}

/// Tag bit marking a lane timing index as pointing into the scratch's
/// local shift-cache store rather than the shared prewarmed cache.
const LANE_LOCAL_BIT: u32 = 1 << 31;
/// Tag bit (alongside `LANE_LOCAL_BIT`) for the batch-local overflow
/// staging area used once the local cache hits its entry cap.
const LANE_OVERFLOW_BIT: u32 = 1 << 30;
/// Mask extracting the store index from a tagged lane timing index.
const LANE_IDX_MASK: u32 = LANE_OVERFLOW_BIT - 1;

/// Resolves a tagged per-lane timing index against the three possible
/// stores (shared prewarmed cache, local shift cache, batch overflow).
#[inline]
fn lane_timing<'a>(
    shared: &'a [CellTiming],
    local: &'a [CellTiming],
    overflow: &'a [CellTiming],
    tagged: u32,
) -> &'a CellTiming {
    if tagged & LANE_LOCAL_BIT == 0 {
        &shared[tagged as usize]
    } else if tagged & LANE_OVERFLOW_BIT != 0 {
        &overflow[(tagged & LANE_IDX_MASK) as usize]
    } else {
        &local[(tagged & LANE_IDX_MASK) as usize]
    }
}

/// Slot marker for an empty `ShiftTimingCache` bucket. Real keys are
/// `(cell << 32) | bin` with `cell` a dense index far below `u32::MAX`,
/// so they can never collide with the marker.
const SHIFT_EMPTY: u64 = u64::MAX;

/// Default entry cap of the shift cache: bounded by
/// `distinct cells × occupied shift bins`, which stays far below this for
/// real designs; the cap only guards against pathological workloads.
/// Overridable per process via [`SHIFT_CACHE_CAP_ENV`].
pub const SHIFT_CACHE_CAP_DEFAULT: usize = 1 << 18;

/// Environment variable overriding the shift-cache entry cap (positive
/// integer; unset, empty or unparsable values fall back to
/// [`SHIFT_CACHE_CAP_DEFAULT`]). Read when a scratch is created, following
/// the `POSTOPC_THREADS` precedent.
pub const SHIFT_CACHE_CAP_ENV: &str = "POSTOPC_SHIFT_CACHE_CAP";

/// Open-addressed `(cell, shift-bin) → CellTiming` map — the Monte Carlo
/// characterization cache. The key is two small integers packed into a
/// `u64`, so a lookup is one multiply-shift hash and a short linear probe:
/// orders of magnitude cheaper than hashing a transistor ensemble, which
/// is what makes the per-sample hot loop allocation- and hash-free.
///
/// Values live in an append-only `store` and the slot array holds `u32`
/// indices into it: a rehash moves 12 bytes per entry instead of a whole
/// [`CellTiming`], and the batched evaluator can stage per-lane *indices*
/// (4 bytes each) instead of copying ~400-byte timings per gate visit.
#[derive(Debug)]
struct ShiftTimingCache {
    /// Power-of-two slot array; `SHIFT_EMPTY` marks free slots.
    keys: Vec<u64>,
    /// `store` index of the same slot (garbage where the key is empty).
    slot_idx: Vec<u32>,
    /// Cached timings in insertion order.
    store: Vec<CellTiming>,
    /// Entry cap resolved at construction (env override or default).
    cap: usize,
    hits: u64,
    misses: u64,
    /// Hits served by a caller-supplied [`SharedShiftCache`] instead of
    /// this local map (counted here so the scratch owns all counters).
    shared_hits: u64,
    /// Insertions refused because the store was at its cap.
    rejected: u64,
}

impl ShiftTimingCache {
    fn new() -> ShiftTimingCache {
        let slots = 1024;
        ShiftTimingCache {
            keys: vec![SHIFT_EMPTY; slots],
            slot_idx: vec![0; slots],
            store: Vec::new(),
            cap: crate::liberty::env_cache_cap(SHIFT_CACHE_CAP_ENV, SHIFT_CACHE_CAP_DEFAULT),
            hits: 0,
            misses: 0,
            shared_hits: 0,
            rejected: 0,
        }
    }

    /// SplitMix64 finalizer: full-avalanche integer hash.
    fn hash(mut x: u64) -> u64 {
        x ^= x >> 30;
        x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
        x ^= x >> 27;
        x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
        x ^ (x >> 31)
    }

    /// Index into `store` of the cached timing for `key`, if present.
    fn get(&mut self, key: u64) -> Option<u32> {
        debug_assert_ne!(key, SHIFT_EMPTY);
        let mask = self.keys.len() - 1;
        let mut i = Self::hash(key) as usize & mask;
        loop {
            let k = self.keys[i];
            if k == key {
                self.hits += 1;
                return Some(self.slot_idx[i]);
            }
            if k == SHIFT_EMPTY {
                self.misses += 1;
                return None;
            }
            i = (i + 1) & mask;
        }
    }

    /// Inserts `val` under `key`, returning its `store` index; `None` past
    /// the cap (the value is then characterized without memoizing).
    fn insert(&mut self, key: u64, val: CellTiming) -> Option<u32> {
        if self.store.len() >= self.cap {
            self.rejected += 1;
            return None;
        }
        if (self.store.len() + 1) * 4 > self.keys.len() * 3 {
            self.grow();
        }
        let mask = self.keys.len() - 1;
        let mut i = Self::hash(key) as usize & mask;
        while self.keys[i] != SHIFT_EMPTY {
            if self.keys[i] == key {
                return Some(self.slot_idx[i]); // double-insert is a no-op
            }
            i = (i + 1) & mask;
        }
        let idx = self.store.len() as u32;
        self.store.push(val);
        self.keys[i] = key;
        self.slot_idx[i] = idx;
        Some(idx)
    }

    fn grow(&mut self) {
        let new_slots = self.keys.len() * 2;
        let old_keys = std::mem::replace(&mut self.keys, vec![SHIFT_EMPTY; new_slots]);
        let old_idx = std::mem::replace(&mut self.slot_idx, vec![0; new_slots]);
        let mask = new_slots - 1;
        for (key, idx) in old_keys.into_iter().zip(old_idx) {
            if key == SHIFT_EMPTY {
                continue;
            }
            let mut i = Self::hash(key) as usize & mask;
            while self.keys[i] != SHIFT_EMPTY {
                i = (i + 1) & mask;
            }
            self.keys[i] = key;
            self.slot_idx[i] = idx;
        }
    }
}

/// A read-only `(cell, shift-bin) → CellTiming` table built once by
/// [`CompiledSta::prewarm_shift_cache`] and shared by reference across
/// Monte Carlo workers.
///
/// Storage is a dense 2-D direct-index map (`cells × bin span`), so a probe
/// is one bounds check and two loads — no hashing at all. Entries are
/// characterized by the same staging + device-model path a cold
/// [`ShiftTimingCache`] miss runs, so a shared hit replays exactly the bits
/// a cold evaluation would compute (warm/cold bit-identity, proven by the
/// `batched_parity` tests).
#[derive(Debug)]
pub struct SharedShiftCache {
    /// Smallest prewarmed bin (row offset of the dense table).
    min_bin: i32,
    /// Dense bin-range width (`max_bin - min_bin + 1`; 0 when empty).
    span: usize,
    /// `cell * span + (bin - min_bin)` → `store` index; `u32::MAX` absent.
    idx: Vec<u32>,
    /// Prewarmed timings, sorted by `(cell, bin)`.
    store: Vec<CellTiming>,
    /// `store[i].leakage_ua`, densely packed — the batch fill pass sums
    /// leakage for every (gate, lane) and these 8-byte rows keep it from
    /// dragging whole `CellTiming`s through the cache.
    leak: Vec<f64>,
    /// `store[i].input_cap_ff`, densely packed (same rationale).
    cap: Vec<f64>,
}

impl SharedShiftCache {
    /// Number of prewarmed `(cell, bin)` entries.
    pub fn entries(&self) -> usize {
        self.store.len()
    }

    /// `store` index of `(cell, bin)`, if prewarmed.
    #[inline]
    fn get(&self, cell: u32, bin: i32) -> Option<u32> {
        let off = i64::from(bin) - i64::from(self.min_bin);
        if off < 0 || off >= self.span as i64 {
            return None;
        }
        let i = self.idx[cell as usize * self.span + off as usize];
        (i != u32::MAX).then_some(i)
    }
}

impl<'m> CompiledSta<'m> {
    /// Precomputes the annotation-invariant structure of `model`.
    pub(crate) fn new(model: &'m TimingModel<'m>) -> Result<CompiledSta<'m>> {
        let netlist = model.design().netlist();
        let tech = model.design().tech();
        let mut base_timings = Vec::with_capacity(netlist.gate_count());
        let mut base_records = Vec::with_capacity(netlist.gate_count());
        for gate in netlist.gates() {
            base_timings.push(model.library().drawn_timing(gate.kind, gate.drive));
            base_records.push(
                model
                    .library()
                    .drawn_transistors(gate.kind, gate.drive)
                    .to_vec(),
            );
        }
        let mut drawn_wires = Vec::with_capacity(netlist.nets().len());
        for (ni, _) in netlist.nets().iter().enumerate() {
            let length = model
                .design()
                .routing()
                .route_of(NetId(ni as u32))
                .map(|r| r.length_nm)
                .unwrap_or(0.0);
            if length < 1.0 {
                drawn_wires.push(None);
                continue;
            }
            let wire = Wire::new(
                *model.wire_layer(),
                length,
                tech.m1_width as f64,
                tech.m1_space as f64,
            )
            .map_err(StaError::from)?;
            drawn_wires.push(Some(wire));
        }
        let mut net_sinks: Vec<Vec<u32>> = vec![Vec::new(); netlist.nets().len()];
        let mut net_driver = vec![u32::MAX; netlist.nets().len()];
        for (gi, gate) in netlist.gates().iter().enumerate() {
            for &input in &gate.inputs {
                net_sinks[input.0 as usize].push(gi as u32);
            }
            net_driver[gate.output.0 as usize] = gi as u32;
        }
        Ok(CompiledSta {
            model,
            drawn_wires,
            base_timings,
            base_records,
            net_sinks,
            net_driver,
        })
    }

    /// The timing model this evaluator was compiled from.
    pub fn model(&self) -> &'m TimingModel<'m> {
        self.model
    }

    /// The drawn transistor records of gate `gate` (annotation template —
    /// same as looking the cell up in the library, without the hash).
    pub fn base_records(&self, gate: GateId) -> &[TransistorCd] {
        &self.base_records[gate.0 as usize]
    }

    /// A scratch sized for this design.
    pub fn scratch(&self) -> StaScratch {
        let n_nets = self.drawn_wires.len();
        let n_gates = self.base_timings.len();
        StaScratch {
            timings: Vec::with_capacity(n_gates),
            sink_cap: vec![0.0; n_nets],
            gate_delays: vec![0.0; n_gates],
            slews: vec![0.0; n_nets],
            arrivals: vec![0.0; n_nets],
            requireds: vec![f64::INFINITY; n_nets],
            endpoint_required: Vec::new(),
            worst_by_net: vec![f64::INFINITY; n_nets],
            touched: Vec::new(),
            records: Vec::new(),
            cache: CharacterizationCache::new(),
            shift_cache: ShiftTimingCache::new(),
            lane_timing_idx: vec![0; n_gates * LANES],
            lane_overflow: Vec::new(),
            lane_sink_cap: vec![[0.0; LANES]; n_nets],
            lane_input_cap: vec![[0.0; LANES]; n_gates],
            lane_slews: vec![[0.0; LANES]; n_nets],
            lane_arrivals: vec![[0.0; LANES]; n_nets],
            lane_endpoint_required: Vec::new(),
            eco_gate_dirty: vec![false; n_gates],
            eco_net_cap_dirty: vec![false; n_nets],
            eco_slew_changed: vec![false; n_nets],
            eco_arrival_changed: vec![false; n_nets],
            eco_delay_changed: vec![false; n_gates],
        }
    }

    /// Deduplicates per-gate base ensembles (`bases[gi]` = systematic
    /// records of gate `gi`) into distinct `(kind, records)` cells for
    /// [`Self::evaluate_shifted`]. Two gates share a cell only when their
    /// kind and every record match bit for bit.
    ///
    /// # Panics
    ///
    /// Panics if `bases` does not cover every gate of the design.
    pub fn sample_cells(&self, bases: &[Vec<TransistorCd>]) -> SampleCells {
        let netlist = self.model.design().netlist();
        assert_eq!(bases.len(), netlist.gate_count(), "one base set per gate");
        let mut seen: HashMap<(GateKind, Vec<u64>), u32> = HashMap::new();
        let mut cell_of_gate = Vec::with_capacity(bases.len());
        let mut cells: Vec<(GateKind, Vec<TransistorCd>)> = Vec::new();
        for (gi, base) in bases.iter().enumerate() {
            let kind = netlist.gate(GateId(gi as u32)).kind;
            // Exact-bit fingerprint of the ensemble (dimension bit
            // patterns plus the discrete record fields).
            let mut bits = Vec::with_capacity(base.len() * 6);
            for r in base {
                bits.push(r.kind as u64);
                bits.push(r.width_nm.to_bits());
                bits.push(r.l_delay_nm.to_bits());
                bits.push(r.l_leakage_nm.to_bits());
                bits.push(r.input_pin.map_or(u64::MAX, |p| p as u64));
                bits.push(r.finger as u64);
            }
            let slot = *seen.entry((kind, bits)).or_insert_with(|| {
                cells.push((kind, base.clone()));
                (cells.len() - 1) as u32
            });
            cell_of_gate.push(slot);
        }
        SampleCells {
            cell_of_gate,
            cells,
        }
    }

    /// Full analysis with optional annotation — the drop-in compiled
    /// counterpart of [`TimingModel::analyze`], bit-identical to it.
    ///
    /// # Errors
    ///
    /// Propagates device errors for non-physical annotated dimensions.
    pub fn evaluate(
        &self,
        scratch: &mut StaScratch,
        annotation: Option<&CdAnnotation>,
    ) -> Result<TimingReport> {
        let netlist = self.model.design().netlist();
        scratch.timings.clear();
        let mut leakage = 0.0;
        for (gi, gate) in netlist.gates().iter().enumerate() {
            let timing = match annotation.and_then(|a| a.gate(GateId(gi as u32))) {
                Some(ann) => self.model.library().annotated_timing_cached(
                    &mut scratch.cache,
                    gate.kind,
                    &ann.transistors,
                )?,
                None => self.base_timings[gi],
            };
            leakage += timing.leakage_ua;
            scratch.timings.push(timing);
        }
        self.propagate(scratch, annotation)?;
        let endpoint_slacks = Self::sorted_endpoint_slacks(scratch);
        Ok(TimingReport::from_parts(
            scratch.arrivals.clone(),
            scratch.requireds.clone(),
            scratch.gate_delays.clone(),
            scratch.slews.clone(),
            endpoint_slacks,
            self.model.clock_ps(),
            leakage,
        ))
    }

    /// Incremental ECO re-analysis: re-derives only the state an
    /// annotation edit actually moved, bit-identical to a full
    /// [`Self::evaluate`] with `next`.
    ///
    /// `scratch` must hold the state of a completed evaluation with
    /// `prev` on this compiled model (that is the warm state the
    /// increments are applied to). The diff of `prev` → `next` seeds the
    /// dirty set: gates whose annotation entry changed re-characterize
    /// (through the scratch's cache); nets whose sink gates changed input
    /// capacitance re-sum their load over the precompiled sink adjacency
    /// in gate order (the exact addend order of the full pass); then two
    /// topological sweeps recompute delay/slew and arrivals only for
    /// gates flagged dirty or fed by a changed net, propagating flags
    /// precisely when stored bits move. Untouched gates keep their stored
    /// bits, recomputed gates run the same float ops on the same values
    /// as the full pass — so the result is bit-identical by induction
    /// (enforced by the `eco` parity tests and the `serve` CI stage).
    /// The backward required pass, endpoint slacks and the leakage sum
    /// are cheap pure functions of the forward state and re-run whole.
    ///
    /// # Errors
    ///
    /// Returns [`StaError::InvalidIncremental`] when the scratch holds no
    /// prior full evaluation; propagates device errors for non-physical
    /// annotated dimensions.
    pub fn evaluate_eco(
        &self,
        scratch: &mut StaScratch,
        prev: Option<&CdAnnotation>,
        next: Option<&CdAnnotation>,
    ) -> Result<TimingReport> {
        let netlist = self.model.design().netlist();
        let n_gates = self.base_timings.len();
        if scratch.timings.len() != n_gates {
            return Err(StaError::InvalidIncremental(
                "scratch holds no prior full evaluation (run evaluate first)".into(),
            ));
        }
        scratch.eco_gate_dirty.fill(false);
        scratch.eco_net_cap_dirty.fill(false);
        scratch.eco_slew_changed.fill(false);
        scratch.eco_arrival_changed.fill(false);
        scratch.eco_delay_changed.fill(false);

        // Phase 1a — candidate gates: anything annotated on either side.
        for a in [prev, next].into_iter().flatten() {
            for (&gid, _) in a.gates() {
                scratch.eco_gate_dirty[gid.0 as usize] = true;
            }
        }
        // Re-characterize candidates whose entries actually differ; drop
        // the flag when the annotation (or the resulting timing) is
        // unchanged bit for bit.
        for gi in 0..n_gates {
            if !scratch.eco_gate_dirty[gi] {
                continue;
            }
            let gid = GateId(gi as u32);
            if prev.and_then(|a| a.gate(gid)) == next.and_then(|a| a.gate(gid)) {
                scratch.eco_gate_dirty[gi] = false;
                continue;
            }
            let gate = netlist.gate(gid);
            let timing = match next.and_then(|a| a.gate(gid)) {
                Some(ann) => self.model.library().annotated_timing_cached(
                    &mut scratch.cache,
                    gate.kind,
                    &ann.transistors,
                )?,
                None => self.base_timings[gi],
            };
            let old = scratch.timings[gi];
            if timing_bits_eq(&old, &timing) {
                scratch.eco_gate_dirty[gi] = false;
                continue;
            }
            let cap_changed = old.input_cap_ff.to_bits() != timing.input_cap_ff.to_bits();
            scratch.timings[gi] = timing;
            if cap_changed {
                for &input in &gate.inputs {
                    scratch.eco_net_cap_dirty[input.0 as usize] = true;
                }
            }
        }
        // Phase 1b — net annotation edits re-width the driver's wire.
        for a in [prev, next].into_iter().flatten() {
            for (&nid, _) in a.nets() {
                if prev.and_then(|p| p.net(nid)) != next.and_then(|q| q.net(nid)) {
                    let driver = self.net_driver[nid.0 as usize];
                    if driver != u32::MAX {
                        scratch.eco_gate_dirty[driver as usize] = true;
                    }
                }
            }
        }

        // Phase 2 — re-sum dirtied sink loads over the precompiled sink
        // adjacency (gate order — the full pass's addend order).
        for ni in 0..self.net_sinks.len() {
            if !scratch.eco_net_cap_dirty[ni] {
                continue;
            }
            let mut sum = 0.0;
            for &gi in &self.net_sinks[ni] {
                sum += scratch.timings[gi as usize].input_cap_ff;
            }
            if sum.to_bits() != scratch.sink_cap[ni].to_bits() {
                scratch.sink_cap[ni] = sum;
                let driver = self.net_driver[ni];
                if driver != u32::MAX {
                    scratch.eco_gate_dirty[driver as usize] = true;
                }
            }
        }

        // Phase 3 — delays and output slews of the dirty cone, in the
        // full pass's topological order and with its exact formulas.
        for &gid in netlist.topological_order() {
            let gi = gid.0 as usize;
            let gate = netlist.gate(gid);
            let sequential = gate.kind.is_sequential();
            let inputs_changed = !sequential
                && gate
                    .inputs
                    .iter()
                    .any(|n| scratch.eco_slew_changed[n.0 as usize]);
            if !(scratch.eco_gate_dirty[gi] || inputs_changed) {
                continue;
            }
            let t = scratch.timings[gi];
            let slew_in = if sequential {
                CLOCK_SLEW_PS
            } else {
                gate.inputs
                    .iter()
                    .map(|n| scratch.slews[n.0 as usize])
                    .fold(0.0, f64::max)
            };
            let out = gate.output.0 as usize;
            let c_sinks = scratch.sink_cap[out] + t.output_cap_ff;
            let (table_delay, out_slew) = t.nldm.delay_and_slew_ps(slew_in, c_sinks);
            let delay = match &self.drawn_wires[out] {
                Some(w) => {
                    let wire = match next.and_then(|a| a.net(NetId(out as u32))) {
                        Some(net_ann) => w
                            .with_printed_width(net_ann.printed_width_nm)
                            .map_err(StaError::from)?,
                        None => *w,
                    };
                    let r = t.drive_r_kohm();
                    table_delay + (wire.elmore_delay_ps(r, c_sinks) - r * c_sinks)
                }
                None => table_delay,
            };
            if delay.to_bits() != scratch.gate_delays[gi].to_bits() {
                scratch.gate_delays[gi] = delay;
                scratch.eco_delay_changed[gi] = true;
            }
            if out_slew.to_bits() != scratch.slews[out].to_bits() {
                scratch.slews[out] = out_slew;
                scratch.eco_slew_changed[out] = true;
            }
        }

        // Phase 4 — arrivals of the dirty fanout cone.
        for &gid in netlist.topological_order() {
            let gi = gid.0 as usize;
            let gate = netlist.gate(gid);
            let sequential = gate.kind.is_sequential();
            let inputs_changed = !sequential
                && gate
                    .inputs
                    .iter()
                    .any(|n| scratch.eco_arrival_changed[n.0 as usize]);
            if !(scratch.eco_delay_changed[gi] || inputs_changed) {
                continue;
            }
            let worst_in = if sequential {
                0.0
            } else {
                gate.inputs
                    .iter()
                    .map(|n| scratch.arrivals[n.0 as usize])
                    .fold(0.0, f64::max)
            };
            let out = gate.output.0 as usize;
            let arrival = worst_in + scratch.gate_delays[gi];
            if arrival.to_bits() != scratch.arrivals[out].to_bits() {
                scratch.arrivals[out] = arrival;
                scratch.eco_arrival_changed[out] = true;
            }
        }

        // Phase 5 — cheap whole-pass tail: backward requireds, endpoint
        // slacks, and the leakage re-sum in gate order (the same fold the
        // full evaluation accumulates).
        self.backward_requireds(scratch);
        let endpoint_slacks = Self::sorted_endpoint_slacks(scratch);
        let leakage = scratch.timings.iter().map(|t| t.leakage_ua).sum();
        Ok(TimingReport::from_parts(
            scratch.arrivals.clone(),
            scratch.requireds.clone(),
            scratch.gate_delays.clone(),
            scratch.slews.clone(),
            endpoint_slacks,
            self.model.clock_ps(),
            leakage,
        ))
    }

    /// The Monte Carlo hot path: evaluates one sample whose per-gate CD
    /// records are produced by `fill` (called once per gate, in gate
    /// order, with an empty staging buffer to extend). Every gate is
    /// treated as annotated and nets stay drawn — exactly the shape of a
    /// sampled [`CdAnnotation`] covering all gates — and only a summary is
    /// returned, so the evaluation allocates nothing after warm-up.
    ///
    /// # Errors
    ///
    /// Propagates device errors for non-physical filled dimensions.
    pub fn evaluate_sample<F>(&self, scratch: &mut StaScratch, mut fill: F) -> Result<SampleTiming>
    where
        F: FnMut(usize, &mut Vec<TransistorCd>),
    {
        let netlist = self.model.design().netlist();
        scratch.timings.clear();
        let mut leakage = 0.0;
        for (gi, gate) in netlist.gates().iter().enumerate() {
            scratch.records.clear();
            fill(gi, &mut scratch.records);
            let timing = self.model.library().annotated_timing_cached(
                &mut scratch.cache,
                gate.kind,
                &scratch.records,
            )?;
            leakage += timing.leakage_ua;
            scratch.timings.push(timing);
        }
        self.propagate(scratch, None)?;
        // Worst slack is the minimum over endpoint entries — the same
        // value `analyze` reads off the head of its sorted slack list.
        let worst_slack_ps = scratch
            .endpoint_required
            .iter()
            .map(|&(net, required)| required - scratch.arrivals[net.0 as usize])
            .fold(f64::INFINITY, f64::min);
        Ok(SampleTiming {
            worst_slack_ps,
            critical_delay_ps: self.model.clock_ps() - worst_slack_ps,
            leakage_ua: leakage,
        })
    }

    /// The Monte Carlo fastest path: evaluates one sample whose per-gate
    /// CDs are the gate's base ensemble (see [`Self::sample_cells`])
    /// uniformly shifted by `shift_of(gi)` — called once per gate in gate
    /// order, returning the `(grid bin, shift nm)` pair produced by the
    /// sampler's quantizer. The shift must be a pure function of the bin
    /// (the bin is the cache identity of the shift).
    ///
    /// Characterization is memoized per `(cell, bin)` in the scratch's
    /// integer-keyed shift cache: because a cell's gates share base
    /// records bit for bit and the shift value is a pure function of the
    /// bin, a hit replays exactly the bits a miss would compute. Records
    /// are only materialized on a miss, so a warm sample runs the device
    /// model zero times and allocates nothing. A prewarmed
    /// [`SharedShiftCache`] (see [`Self::prewarm_shift_cache`]) is probed
    /// first when supplied; its entries were characterized by the same
    /// path, so results are bit-identical with or without it.
    ///
    /// # Errors
    ///
    /// Propagates device errors for non-physical shifted dimensions.
    pub fn evaluate_shifted<F>(
        &self,
        scratch: &mut StaScratch,
        cells: &SampleCells,
        shared: Option<&SharedShiftCache>,
        mut shift_of: F,
    ) -> Result<SampleTiming>
    where
        F: FnMut(usize) -> (i32, f64),
    {
        scratch.timings.clear();
        let mut leakage = 0.0;
        for (gi, &cell) in cells.cell_of_gate.iter().enumerate() {
            let (bin, shift) = shift_of(gi);
            let shared_hit = shared.and_then(|s| s.get(cell, bin).map(|i| (s, i)));
            let timing = if let Some((s, i)) = shared_hit {
                scratch.shift_cache.shared_hits += 1;
                s.store[i as usize]
            } else {
                let key = (u64::from(cell) << 32) | u64::from(bin as u32);
                match scratch.shift_cache.get(key) {
                    Some(i) => scratch.shift_cache.store[i as usize],
                    None => {
                        let t = self.characterize_shift(cells, cell, shift, scratch)?;
                        scratch.shift_cache.insert(key, t);
                        t
                    }
                }
            };
            leakage += timing.leakage_ua;
            scratch.timings.push(timing);
        }
        self.propagate(scratch, None)?;
        let worst_slack_ps = scratch
            .endpoint_required
            .iter()
            .map(|&(net, required)| required - scratch.arrivals[net.0 as usize])
            .fold(f64::INFINITY, f64::min);
        Ok(SampleTiming {
            worst_slack_ps,
            critical_delay_ps: self.model.clock_ps() - worst_slack_ps,
            leakage_ua: leakage,
        })
    }

    /// Characterizes one `(cell, shift)` ensemble through the scratch's
    /// record staging buffer — the single code path behind local shift-
    /// cache misses, shared-cache prewarming and the batched evaluator, so
    /// every consumer computes identical bits for identical inputs.
    fn characterize_shift(
        &self,
        cells: &SampleCells,
        cell: u32,
        shift: f64,
        scratch: &mut StaScratch,
    ) -> Result<CellTiming> {
        let (kind, base) = &cells.cells[cell as usize];
        scratch.records.clear();
        scratch.records.extend_from_slice(base);
        for r in scratch.records.iter_mut() {
            r.l_delay_nm = (r.l_delay_nm + shift).max(1.0);
            r.l_leakage_nm = (r.l_leakage_nm + shift).max(1.0);
        }
        self.model
            .library()
            .annotated_timing(*kind, &scratch.records)
    }

    /// Characterizes every `(cell, bin)` pair of `keys` once, in parallel,
    /// into a read-only [`SharedShiftCache`] that Monte Carlo workers
    /// share by reference — the per-worker caches then start warm instead
    /// of each re-running the device model for the same bins.
    ///
    /// `shift_of_bin` maps a grid bin to its shift in nm and must be the
    /// same pure function the evaluation-time sampler uses (for the
    /// `sigma / 16` grid: `bin as f64 * step`). Duplicate keys are
    /// deduplicated; the build is deterministic for any thread count.
    ///
    /// # Errors
    ///
    /// Propagates device errors for non-physical shifted dimensions.
    pub fn prewarm_shift_cache<F>(
        &self,
        cells: &SampleCells,
        keys: &[(u32, i32)],
        threads: usize,
        shift_of_bin: F,
    ) -> Result<SharedShiftCache>
    where
        F: Fn(i32) -> f64 + Sync,
    {
        let mut sorted: Vec<(u32, i32)> = keys.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        if sorted.is_empty() {
            return Ok(SharedShiftCache {
                min_bin: 0,
                span: 0,
                idx: Vec::new(),
                store: Vec::new(),
                leak: Vec::new(),
                cap: Vec::new(),
            });
        }
        let min_bin = sorted.iter().map(|&(_, b)| b).min().unwrap_or(0);
        let max_bin = sorted.iter().map(|&(_, b)| b).max().unwrap_or(0);
        let store = postopc_parallel::try_par_map(threads, &sorted, |_, &(cell, bin)| {
            let (kind, base) = &cells.cells[cell as usize];
            let shift = shift_of_bin(bin);
            let mut records = base.clone();
            for r in records.iter_mut() {
                r.l_delay_nm = (r.l_delay_nm + shift).max(1.0);
                r.l_leakage_nm = (r.l_leakage_nm + shift).max(1.0);
            }
            self.model.library().annotated_timing(*kind, &records)
        })?;
        let span = (max_bin - min_bin) as usize + 1;
        let mut idx = vec![u32::MAX; cells.cells.len() * span];
        for (i, &(cell, bin)) in sorted.iter().enumerate() {
            idx[cell as usize * span + (bin - min_bin) as usize] = i as u32;
        }
        let leak = store.iter().map(|t| t.leakage_ua).collect();
        let cap = store.iter().map(|t| t.input_cap_ff).collect();
        Ok(SharedShiftCache {
            min_bin,
            span,
            idx,
            store,
            leak,
            cap,
        })
    }

    /// The batched Monte Carlo hot path: evaluates [`LANES`] samples per
    /// gate visit. `shift_of(lane, gi)` supplies the `(grid bin, shift)`
    /// of gate `gi` in lane `lane` — called in gate-major order (all lanes
    /// of gate 0, then gate 1, …) so lane fills stay cache-local.
    ///
    /// Per lane, every float operation mirrors [`Self::evaluate_shifted`]
    /// exactly (same fold orders, same table lookups, same endpoint
    /// accumulation), so each returned [`SampleTiming`] is bit-identical
    /// to a scalar evaluation of the same shift stream — the contract the
    /// `batched_parity` suite enforces. The propagation state is laid out
    /// as `[f64; LANES]` rows (structure-of-arrays), so the per-lane loops
    /// autovectorize in release builds, and timings are staged as 4-byte
    /// indices into the shift caches instead of being copied per gate.
    /// The backward required-time relaxation is skipped entirely: a sample
    /// summary only reads endpoint required times and arrivals, which are
    /// fixed before that pass runs.
    ///
    /// Callers with fewer than [`LANES`] live samples pad the tail lanes
    /// by repeating a live sample's stream and discard the padded results
    /// (every lane is always evaluated).
    ///
    /// # Errors
    ///
    /// Propagates device errors for non-physical shifted dimensions.
    pub fn evaluate_shifted_batch<F>(
        &self,
        scratch: &mut StaScratch,
        cells: &SampleCells,
        shared: Option<&SharedShiftCache>,
        mut shift_of: F,
    ) -> Result<[SampleTiming; LANES]>
    where
        F: FnMut(usize, usize) -> (i32, f64),
    {
        let clock_ps = self.model.clock_ps();
        let mut leakage = [0.0f64; LANES];
        // Phase 1 — resolve every (gate, lane) timing to a tagged store
        // index, characterizing misses through the shared scalar path.
        // Leakage accumulates here in gate order, matching the scalar
        // engine's accumulation order per lane.
        scratch.lane_overflow.clear();
        for (gi, &cell) in cells.cell_of_gate.iter().enumerate() {
            // `lane` feeds `shift_of` and three lane-indexed arrays; an
            // iterator over any one of them would obscure that.
            #[allow(clippy::needless_range_loop)]
            for lane in 0..LANES {
                let (bin, shift) = shift_of(lane, gi);
                // Hot path first: a prewarmed run resolves every lookup
                // here, reading leakage and input cap from the shared
                // cache's dense 8-byte side rows instead of dragging the
                // full `CellTiming` through the cache (the values are
                // copies of the same store fields — same bits).
                if let Some((s, i)) = shared.and_then(|s| s.get(cell, bin).map(|i| (s, i))) {
                    scratch.shift_cache.shared_hits += 1;
                    debug_assert_eq!(i & (LANE_LOCAL_BIT | LANE_OVERFLOW_BIT), 0);
                    leakage[lane] += s.leak[i as usize];
                    scratch.lane_input_cap[gi][lane] = s.cap[i as usize];
                    scratch.lane_timing_idx[gi * LANES + lane] = i;
                    continue;
                }
                let key = (u64::from(cell) << 32) | u64::from(bin as u32);
                let tagged = match scratch.shift_cache.get(key) {
                    Some(i) => i | LANE_LOCAL_BIT,
                    None => {
                        let t = self.characterize_shift(cells, cell, shift, scratch)?;
                        match scratch.shift_cache.insert(key, t) {
                            Some(i) => i | LANE_LOCAL_BIT,
                            None => {
                                // Past the local cap: stage in the
                                // batch-local overflow area.
                                scratch.lane_overflow.push(t);
                                (scratch.lane_overflow.len() - 1) as u32
                                    | LANE_LOCAL_BIT
                                    | LANE_OVERFLOW_BIT
                            }
                        }
                    }
                };
                let t = lane_timing(
                    &[],
                    &scratch.shift_cache.store,
                    &scratch.lane_overflow,
                    tagged,
                );
                leakage[lane] += t.leakage_ua;
                let cap = t.input_cap_ff;
                scratch.lane_input_cap[gi][lane] = cap;
                scratch.lane_timing_idx[gi * LANES + lane] = tagged;
            }
        }

        // Phase 2 — lane-parallel propagation. Split-borrow the scratch so
        // the timing stores stay readable while lane arrays mutate.
        let StaScratch {
            ref shift_cache,
            ref lane_overflow,
            ref lane_timing_idx,
            ref lane_input_cap,
            ref mut lane_sink_cap,
            ref mut lane_slews,
            ref mut lane_arrivals,
            ref mut lane_endpoint_required,
            ..
        } = *scratch;
        let shared_store: &[CellTiming] = shared.map_or(&[], |s| &s.store);
        let local_store = &shift_cache.store;
        let netlist = self.model.design().netlist();

        // Sink loads (gate order, one add per input per lane — the scalar
        // pass order, so partial sums agree bit for bit). The caps were
        // staged per gate while the lane timings resolved above, so this
        // pass never re-resolves a tagged index.
        for row in lane_sink_cap.iter_mut() {
            *row = [0.0; LANES];
        }
        for (gi, gate) in netlist.gates().iter().enumerate() {
            let caps = lane_input_cap[gi];
            for &input in &gate.inputs {
                let row = &mut lane_sink_cap[input.0 as usize];
                for l in 0..LANES {
                    row[l] += caps[l];
                }
            }
        }

        // Delays, output slews and forward arrivals fused into a single
        // topological walk: a gate's input slews *and* input arrivals are
        // both final before the walk reaches it, so folding arrivals here
        // performs exactly the float ops of the scalar engine's split
        // delay/arrival passes — one traversal and one per-gate delay
        // store/reload cheaper, and each lane timing resolves once.
        for row in lane_slews.iter_mut() {
            *row = [PRIMARY_INPUT_SLEW_PS; LANES];
        }
        for row in lane_arrivals.iter_mut() {
            *row = [0.0; LANES];
        }
        for &gid in netlist.topological_order() {
            let gate = netlist.gate(gid);
            let gi = gid.0 as usize;
            let ts: [&CellTiming; LANES] = std::array::from_fn(|l| {
                lane_timing(
                    shared_store,
                    local_store,
                    lane_overflow,
                    lane_timing_idx[gi * LANES + l],
                )
            });
            let (slew_in, worst_in) = if gate.kind.is_sequential() {
                ([CLOCK_SLEW_PS; LANES], [0.0; LANES])
            } else {
                let mut s = [0.0f64; LANES];
                let mut a = [0.0f64; LANES];
                for n in &gate.inputs {
                    let srow = &lane_slews[n.0 as usize];
                    let arow = &lane_arrivals[n.0 as usize];
                    for l in 0..LANES {
                        s[l] = s[l].max(srow[l]);
                        a[l] = a[l].max(arow[l]);
                    }
                }
                (s, a)
            };
            let out = gate.output.0 as usize;
            let sinks = lane_sink_cap[out];
            let mut out_slews = [0.0f64; LANES];
            let mut arrivals = [0.0f64; LANES];
            let wire = self.drawn_wires[out].as_ref();
            for l in 0..LANES {
                let t = ts[l];
                let c_sinks = sinks[l] + t.output_cap_ff;
                let (table_delay, out_slew) = t.nldm.delay_and_slew_ps(slew_in[l], c_sinks);
                let delay = match wire {
                    Some(w) => {
                        let r = t.drive_r_kohm();
                        table_delay + (w.elmore_delay_ps(r, c_sinks) - r * c_sinks)
                    }
                    None => table_delay,
                };
                out_slews[l] = out_slew;
                arrivals[l] = worst_in[l] + delay;
            }
            lane_slews[out] = out_slews;
            lane_arrivals[out] = arrivals;
        }

        // Endpoint required times in the scalar push order (primary
        // outputs, then sequential gates in index order). The backward
        // relaxation over internal nets is omitted: the sample summary
        // below never reads it.
        lane_endpoint_required.clear();
        for &po in netlist.primary_outputs() {
            lane_endpoint_required.push((po, [clock_ps; LANES]));
        }
        for (gi, gate) in netlist.gates().iter().enumerate() {
            let t0 = lane_timing(
                shared_store,
                local_store,
                lane_overflow,
                lane_timing_idx[gi * LANES],
            );
            if t0.sequential.is_none() {
                continue;
            }
            // Sequential-ness is a property of the cell kind, so every
            // lane of a gate agrees on it; setup times still vary per bin.
            let mut req = [clock_ps; LANES];
            for (l, r) in req.iter_mut().enumerate() {
                let t = lane_timing(
                    shared_store,
                    local_store,
                    lane_overflow,
                    lane_timing_idx[gi * LANES + l],
                );
                if let Some(seq) = &t.sequential {
                    *r = clock_ps - seq.setup_ps;
                }
            }
            lane_endpoint_required.push((gate.inputs[0], req));
        }

        // Worst slack per lane: min-fold over endpoints in push order.
        let mut worst = [f64::INFINITY; LANES];
        for &(net, req) in lane_endpoint_required.iter() {
            let arr = &lane_arrivals[net.0 as usize];
            for l in 0..LANES {
                worst[l] = worst[l].min(req[l] - arr[l]);
            }
        }
        Ok(std::array::from_fn(|l| SampleTiming {
            worst_slack_ps: worst[l],
            critical_delay_ps: clock_ps - worst[l],
            leakage_ua: leakage[l],
        }))
    }

    /// Delay/arrival/required propagation over `scratch.timings`,
    /// mirroring `analyze` operation for operation.
    fn propagate(&self, scratch: &mut StaScratch, annotation: Option<&CdAnnotation>) -> Result<()> {
        let netlist = self.model.design().netlist();

        // Sink loads.
        scratch.sink_cap.fill(0.0);
        for (gi, gate) in netlist.gates().iter().enumerate() {
            for &input in &gate.inputs {
                scratch.sink_cap[input.0 as usize] += scratch.timings[gi].input_cap_ff;
            }
        }

        // Gate delays and output slews in topological order, mirroring
        // `analyze`: the NLDM table at (worst input slew, lumped sink
        // load) plus the Elmore excess of the precompiled drawn wire
        // (re-widthed in place when the annotation prints the net
        // differently) over the lumped `R·C` the table already charges.
        scratch.slews.fill(PRIMARY_INPUT_SLEW_PS);
        for &gid in netlist.topological_order() {
            let gate = netlist.gate(gid);
            let t = &scratch.timings[gid.0 as usize];
            let slew_in = if gate.kind.is_sequential() {
                CLOCK_SLEW_PS
            } else {
                gate.inputs
                    .iter()
                    .map(|n| scratch.slews[n.0 as usize])
                    .fold(0.0, f64::max)
            };
            let out = gate.output.0 as usize;
            let c_sinks = scratch.sink_cap[out] + t.output_cap_ff;
            let (table_delay, out_slew) = t.nldm.delay_and_slew_ps(slew_in, c_sinks);
            scratch.gate_delays[gid.0 as usize] = match &self.drawn_wires[out] {
                Some(w) => {
                    let wire = match annotation.and_then(|a| a.net(NetId(out as u32))) {
                        Some(net_ann) => w
                            .with_printed_width(net_ann.printed_width_nm)
                            .map_err(StaError::from)?,
                        None => *w,
                    };
                    let r = t.drive_r_kohm();
                    table_delay + (wire.elmore_delay_ps(r, c_sinks) - r * c_sinks)
                }
                None => table_delay,
            };
            scratch.slews[out] = out_slew;
        }

        // Forward arrivals in topological order.
        scratch.arrivals.fill(0.0);
        for &gid in netlist.topological_order() {
            let gate = netlist.gate(gid);
            let worst_in = if gate.kind.is_sequential() {
                0.0
            } else {
                gate.inputs
                    .iter()
                    .map(|n| scratch.arrivals[n.0 as usize])
                    .fold(0.0, f64::max)
            };
            scratch.arrivals[gate.output.0 as usize] =
                worst_in + scratch.gate_delays[gid.0 as usize];
        }

        // Backward requireds from the endpoints.
        self.backward_requireds(scratch);
        Ok(())
    }

    /// Backward required-time relaxation from the endpoints — the final
    /// pass of [`Self::propagate`], shared verbatim with the incremental
    /// ECO path (it is cheap and a pure function of the forward state, so
    /// the incremental evaluator reruns it whole rather than tracking
    /// dirty cones backwards).
    fn backward_requireds(&self, scratch: &mut StaScratch) {
        let netlist = self.model.design().netlist();
        scratch.requireds.fill(f64::INFINITY);
        let clock_ps = self.model.clock_ps();
        scratch.endpoint_required.clear();
        for &po in netlist.primary_outputs() {
            scratch.requireds[po.0 as usize] = clock_ps;
            scratch.endpoint_required.push((po, clock_ps));
        }
        for (gi, gate) in netlist.gates().iter().enumerate() {
            if let Some(seq) = &scratch.timings[gi].sequential {
                let d_net = gate.inputs[0];
                let required = clock_ps - seq.setup_ps;
                let r = &mut scratch.requireds[d_net.0 as usize];
                *r = r.min(required);
                scratch.endpoint_required.push((d_net, required));
            }
        }
        for &gid in netlist.topological_order().iter().rev() {
            let gate = netlist.gate(gid);
            if gate.kind.is_sequential() {
                continue;
            }
            let req_out = scratch.requireds[gate.output.0 as usize];
            if req_out.is_finite() {
                let req_in = req_out - scratch.gate_delays[gid.0 as usize];
                for &input in &gate.inputs {
                    let r = &mut scratch.requireds[input.0 as usize];
                    *r = r.min(req_in);
                }
            }
        }
    }

    /// Per-gate tail-sampling sensitivities: one zero-shift baseline
    /// evaluation (forward arrivals plus the backward required-time
    /// relaxation — the "extra backward pass"), then per gate:
    ///
    /// - `slack_ps[gi]`: the slack of the gate's output net
    ///   (`required − arrival`; `INFINITY` when no endpoint constrains
    ///   it) — the criticality signal;
    /// - `ddelay_dl_ps_per_nm[gi]`: the central-difference derivative of
    ///   the gate's stage delay (NLDM table plus Elmore wire excess, the
    ///   exact formula [`Self::propagate`] uses) with respect to a
    ///   uniform channel-length shift of ±`step_nm`, evaluated at the
    ///   gate's baseline input slew and sink load. Loading feedback
    ///   through neighbour input caps is second-order and ignored — the
    ///   derivative seeds a sampling tilt, not a timing result.
    ///
    /// The device model runs twice per *distinct cell* (±`step_nm`), not
    /// per gate, so the pass costs about two corner characterizations.
    /// Everything is computed serially in gate order from deterministic
    /// inputs, so the result is identical for any thread count.
    ///
    /// # Errors
    ///
    /// Propagates device errors for non-physical shifted dimensions.
    pub fn gate_sensitivities(
        &self,
        scratch: &mut StaScratch,
        cells: &SampleCells,
        step_nm: f64,
    ) -> Result<GateSensitivity> {
        let baseline = self.evaluate_shifted(scratch, cells, None, |_| (0, 0.0))?;

        // ±step characterizations, once per distinct cell.
        let n_cells = cells.cells.len();
        let mut plus = Vec::with_capacity(n_cells);
        let mut minus = Vec::with_capacity(n_cells);
        for cell in 0..n_cells as u32 {
            plus.push(self.characterize_shift(cells, cell, step_nm, scratch)?);
            minus.push(self.characterize_shift(cells, cell, -step_nm, scratch)?);
        }

        let netlist = self.model.design().netlist();
        let n_gates = netlist.gate_count();
        let mut slack_ps = Vec::with_capacity(n_gates);
        let mut ddelay = Vec::with_capacity(n_gates);
        for (gi, gate) in netlist.gates().iter().enumerate() {
            let out = gate.output.0 as usize;
            slack_ps.push(scratch.requireds[out] - scratch.arrivals[out]);
            let slew_in = if gate.kind.is_sequential() {
                CLOCK_SLEW_PS
            } else {
                gate.inputs
                    .iter()
                    .map(|n| scratch.slews[n.0 as usize])
                    .fold(0.0, f64::max)
            };
            let wire = self.drawn_wires[out].as_ref();
            let sink_cap = scratch.sink_cap[out];
            let stage_delay = |t: &CellTiming| {
                let c_sinks = sink_cap + t.output_cap_ff;
                let (table_delay, _) = t.nldm.delay_and_slew_ps(slew_in, c_sinks);
                match wire {
                    Some(w) => {
                        let r = t.drive_r_kohm();
                        table_delay + (w.elmore_delay_ps(r, c_sinks) - r * c_sinks)
                    }
                    None => table_delay,
                }
            };
            let cell = cells.cell_of_gate[gi] as usize;
            ddelay.push((stage_delay(&plus[cell]) - stage_delay(&minus[cell])) / (2.0 * step_nm));
        }
        Ok(GateSensitivity {
            worst_slack_ps: baseline.worst_slack_ps,
            slack_ps,
            ddelay_dl_ps_per_nm: ddelay,
        })
    }

    /// Per-endpoint worst slacks, most critical first — the dense-array
    /// equivalent of `analyze`'s HashMap min-combine. The final sort key
    /// `(slack, NetId)` is a total order over unique net ids, so the
    /// result is identical however the entries were combined.
    fn sorted_endpoint_slacks(scratch: &mut StaScratch) -> Vec<(NetId, f64)> {
        for &(net, required) in &scratch.endpoint_required {
            let ni = net.0 as usize;
            let slack = required - scratch.arrivals[ni];
            let worst = &mut scratch.worst_by_net[ni];
            if *worst == f64::INFINITY {
                scratch.touched.push(net);
            }
            *worst = worst.min(slack);
        }
        let mut slacks: Vec<(NetId, f64)> = scratch
            .touched
            .iter()
            .map(|&net| (net, scratch.worst_by_net[net.0 as usize]))
            .collect();
        for &net in &scratch.touched {
            scratch.worst_by_net[net.0 as usize] = f64::INFINITY;
        }
        scratch.touched.clear();
        slacks.sort_by(|a, b| a.1.total_cmp(&b.1).then_with(|| a.0.cmp(&b.0)));
        slacks
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use postopc_device::ProcessParams;
    use postopc_layout::{generate, Design, TechRules};

    fn design() -> Design {
        Design::compile(
            generate::ripple_carry_adder(3).expect("netlist"),
            TechRules::n90(),
        )
        .expect("design")
    }

    #[test]
    fn scratch_is_reusable_across_evaluations() {
        let d = design();
        let model = TimingModel::new(&d, ProcessParams::n90(), 800.0).expect("model");
        let compiled = model.compile().expect("compile");
        let mut scratch = compiled.scratch();
        let first = compiled.evaluate(&mut scratch, None).expect("first");
        // A dirty scratch (post-annotated run) must not bleed into the
        // next drawn evaluation.
        let ann = crate::corners::corner_annotation(&model, 4.0);
        let slow = compiled.evaluate(&mut scratch, Some(&ann)).expect("slow");
        assert!(slow.critical_delay_ps() > first.critical_delay_ps());
        let again = compiled.evaluate(&mut scratch, None).expect("again");
        assert_eq!(first, again);
    }

    #[test]
    fn sample_summary_matches_full_report() {
        let d = design();
        let model = TimingModel::new(&d, ProcessParams::n90(), 800.0).expect("model");
        let compiled = model.compile().expect("compile");
        let mut scratch = compiled.scratch();
        let delta = 2.5;
        let ann = crate::corners::corner_annotation(&model, delta);
        let report = compiled.evaluate(&mut scratch, Some(&ann)).expect("report");
        let sample = compiled
            .evaluate_sample(&mut scratch, |gi, records| {
                records.extend_from_slice(compiled.base_records(GateId(gi as u32)));
                for r in records.iter_mut() {
                    r.l_delay_nm = (r.l_delay_nm + delta).max(1.0);
                    r.l_leakage_nm = (r.l_leakage_nm + delta).max(1.0);
                }
            })
            .expect("sample");
        assert_eq!(sample.worst_slack_ps, report.worst_slack_ps());
        assert_eq!(sample.critical_delay_ps, report.critical_delay_ps());
        assert_eq!(sample.leakage_ua, report.leakage_ua());
    }

    #[test]
    fn shifted_evaluation_matches_record_fill_and_dedupes() {
        let d = design();
        let model = TimingModel::new(&d, ProcessParams::n90(), 800.0).expect("model");
        let compiled = model.compile().expect("compile");
        let bases: Vec<Vec<_>> = d
            .netlist()
            .gates()
            .iter()
            .enumerate()
            .map(|(gi, _)| compiled.base_records(GateId(gi as u32)).to_vec())
            .collect();
        let cells = compiled.sample_cells(&bases);
        // Identical cells collapse: far fewer distinct ensembles than gates.
        assert!(cells.distinct() < d.netlist().gate_count());
        // A gate-dependent but repeating shift pattern, as bins on a grid.
        let step = 0.25;
        let shift_of = |gi: usize| {
            let bin = (gi % 5) as i32 - 2;
            (bin, f64::from(bin) * step)
        };
        let mut scratch = compiled.scratch();
        let shifted = compiled
            .evaluate_shifted(&mut scratch, &cells, None, shift_of)
            .expect("shifted");
        // The generic record-fill path on the same shifts must agree
        // exactly (the shift cache replays the bits a fill computes).
        let filled = compiled
            .evaluate_sample(&mut scratch, |gi, records| {
                let (_, shift) = shift_of(gi);
                records.extend_from_slice(&bases[gi]);
                for r in records.iter_mut() {
                    r.l_delay_nm = (r.l_delay_nm + shift).max(1.0);
                    r.l_leakage_nm = (r.l_leakage_nm + shift).max(1.0);
                }
            })
            .expect("filled");
        assert_eq!(shifted, filled);
        // Re-running warm hits for every gate and learns nothing new.
        let entries = scratch.shift_cache_len();
        let hits = scratch.shift_cache_hits();
        let again = compiled
            .evaluate_shifted(&mut scratch, &cells, None, shift_of)
            .expect("again");
        assert_eq!(again, shifted);
        assert_eq!(scratch.shift_cache_len(), entries);
        assert_eq!(
            scratch.shift_cache_hits(),
            hits + d.netlist().gate_count() as u64
        );
        assert!(scratch.shift_cache_misses() > 0);
    }

    #[test]
    fn characterization_cache_dedupes_uniform_samples() {
        let d = design();
        let model = TimingModel::new(&d, ProcessParams::n90(), 800.0).expect("model");
        let compiled = model.compile().expect("compile");
        let mut scratch = compiled.scratch();
        for _ in 0..3 {
            compiled
                .evaluate_sample(&mut scratch, |gi, records| {
                    records.extend_from_slice(compiled.base_records(GateId(gi as u32)));
                })
                .expect("sample");
        }
        // Drawn records per gate collapse to one entry per distinct cell.
        let cache = scratch.cache();
        assert!(cache.len() < d.netlist().gate_count());
        assert!(cache.hits() > cache.misses());
    }

    #[test]
    fn eco_reanalysis_is_bit_identical_to_full() {
        let d = design();
        let model = TimingModel::new(&d, ProcessParams::n90(), 800.0).expect("model");
        let compiled = model.compile().expect("compile");
        let prev = crate::corners::corner_annotation(&model, 2.0);
        // Edit a handful of gates (K ≪ N) plus one routed net's width.
        let wide = crate::corners::corner_annotation(&model, 5.0);
        let mut next = prev.clone();
        for gi in [0u32, 2, 5] {
            next.set_gate(GateId(gi), wide.gate(GateId(gi)).expect("gate").clone());
        }
        let routed = (0..compiled.drawn_wires.len())
            .find(|&n| compiled.drawn_wires[n].is_some())
            .expect("routed net");
        next.set_net(
            NetId(routed as u32),
            crate::annotate::NetAnnotation {
                printed_width_nm: 120.0,
            },
        );

        let mut warm = compiled.scratch();
        compiled.evaluate(&mut warm, Some(&prev)).expect("warm");
        let eco = compiled
            .evaluate_eco(&mut warm, Some(&prev), Some(&next))
            .expect("eco");
        let mut fresh = compiled.scratch();
        let full = compiled.evaluate(&mut fresh, Some(&next)).expect("full");
        assert_eq!(eco, full);
        // A sparse edit must not dirty the whole design.
        assert!(
            warm.eco_gate_dirty.iter().filter(|&&dirty| dirty).count() < d.netlist().gate_count()
        );
        // The warm state is itself a valid base: ECO back to `prev`
        // reproduces the original full analysis bit for bit.
        let back = compiled
            .evaluate_eco(&mut warm, Some(&next), Some(&prev))
            .expect("back");
        let mut s2 = compiled.scratch();
        let orig = compiled.evaluate(&mut s2, Some(&prev)).expect("orig");
        assert_eq!(back, orig);
    }

    #[test]
    fn eco_handles_missing_annotations() {
        let d = design();
        let model = TimingModel::new(&d, ProcessParams::n90(), 800.0).expect("model");
        let compiled = model.compile().expect("compile");
        let ann = crate::corners::corner_annotation(&model, 3.0);
        let mut warm = compiled.scratch();
        let drawn = compiled.evaluate(&mut warm, None).expect("drawn");
        // None → Some: every annotated gate dirties; still bit-identical.
        let eco = compiled
            .evaluate_eco(&mut warm, None, Some(&ann))
            .expect("eco");
        let mut fresh = compiled.scratch();
        let full = compiled.evaluate(&mut fresh, Some(&ann)).expect("full");
        assert_eq!(eco, full);
        // Some → None: retracting the ECO restores the drawn analysis.
        let reverted = compiled
            .evaluate_eco(&mut warm, Some(&ann), None)
            .expect("revert");
        assert_eq!(reverted, drawn);
        // A no-op diff leaves every stored bit alone.
        let noop = compiled.evaluate_eco(&mut warm, None, None).expect("noop");
        assert_eq!(noop, drawn);
        assert!(warm.eco_gate_dirty.iter().all(|&dirty| !dirty));
    }

    #[test]
    fn gate_sensitivities_match_baseline_and_point_slow() {
        let d = design();
        let model = TimingModel::new(&d, ProcessParams::n90(), 800.0).expect("model");
        let compiled = model.compile().expect("compile");
        let bases: Vec<Vec<_>> = (0..d.netlist().gate_count())
            .map(|gi| compiled.base_records(GateId(gi as u32)).to_vec())
            .collect();
        let cells = compiled.sample_cells(&bases);
        let mut scratch = compiled.scratch();
        let report = compiled.evaluate(&mut scratch, None).expect("report");
        let sens = compiled
            .gate_sensitivities(&mut scratch, &cells, 0.125)
            .expect("sensitivities");
        let n = d.netlist().gate_count();
        assert_eq!(sens.slack_ps.len(), n);
        assert_eq!(sens.ddelay_dl_ps_per_nm.len(), n);
        // The baseline of the pass is the drawn analysis.
        assert_eq!(sens.worst_slack_ps, report.worst_slack_ps());
        // Net slacks are bounded below by the worst endpoint slack, and
        // the worst path's driver attains it.
        let min = sens.slack_ps.iter().copied().fold(f64::INFINITY, f64::min);
        assert!(sens
            .slack_ps
            .iter()
            .all(|s| *s >= sens.worst_slack_ps - 1e-9));
        assert!((min - sens.worst_slack_ps).abs() < 1e-6);
        // Longer channels are slower: the derivative is positive for the
        // bulk of the design (every gate, for this library).
        let positive = sens
            .ddelay_dl_ps_per_nm
            .iter()
            .filter(|d| **d > 0.0)
            .count();
        assert!(positive * 2 > n, "{positive} of {n} gates slow with L");
        // Deterministic: a second pass reproduces identical bits.
        let again = compiled
            .gate_sensitivities(&mut scratch, &cells, 0.125)
            .expect("again");
        assert_eq!(sens.slack_ps, again.slack_ps);
        assert_eq!(sens.ddelay_dl_ps_per_nm, again.ddelay_dl_ps_per_nm);
    }

    #[test]
    fn eco_without_prior_evaluation_is_rejected() {
        let d = design();
        let model = TimingModel::new(&d, ProcessParams::n90(), 800.0).expect("model");
        let compiled = model.compile().expect("compile");
        let mut cold = compiled.scratch();
        let err = compiled
            .evaluate_eco(&mut cold, None, None)
            .expect_err("cold scratch must be rejected");
        assert!(matches!(err, StaError::InvalidIncremental(_)));
    }
}
