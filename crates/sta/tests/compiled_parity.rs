//! Reference-implementation tests: the compiled evaluator must be
//! **bit-identical** to the naive `TimingModel::analyze` path — drawn,
//! corner, annotated (gates and nets), and Monte Carlo-sampled CDs all
//! produce exactly equal reports (arrivals, requireds, delays, endpoint
//! slacks, leakage). `TimingReport` derives `PartialEq` over every field,
//! so one `assert_eq!` covers the whole report.

use postopc_device::ProcessParams;
use postopc_layout::{generate, Design, GateId, NetId, TechRules};
use postopc_rng::{rngs::StdRng, RngExt, SeedableRng};
use postopc_sta::{
    analyze_corners, corner_annotation, corners, statistical, CdAnnotation, Corner, GateAnnotation,
    MonteCarloConfig, NetAnnotation, TimingModel, PRIMARY_INPUT_SLEW_PS,
};

fn rca_design() -> Design {
    Design::compile(
        generate::ripple_carry_adder(4).expect("netlist"),
        TechRules::n90(),
    )
    .expect("design")
}

fn random_design(seed: u64) -> Design {
    Design::compile(
        generate::random_logic(&generate::RandomLogicSpec {
            gates: 60,
            inputs: 8,
            depth_bias: 1.5,
            seed,
        })
        .expect("netlist"),
        TechRules::n90(),
    )
    .expect("design")
}

/// A registered design so sequential endpoints (register D required
/// times, clock-launched arrivals) are covered too.
fn registered_design() -> Design {
    Design::compile(
        generate::registered_farm(4, 6, 3).expect("netlist"),
        TechRules::n90(),
    )
    .expect("design")
}

#[test]
fn drawn_reports_are_bit_identical() {
    for design in [rca_design(), random_design(7), registered_design()] {
        let model = TimingModel::new(&design, ProcessParams::n90(), 900.0).expect("model");
        let naive = model.analyze(None).expect("naive");
        let compiled = model.compile().expect("compile");
        let report = compiled
            .evaluate(&mut compiled.scratch(), None)
            .expect("compiled");
        assert_eq!(naive, report);
    }
}

#[test]
fn corner_reports_are_bit_identical() {
    let design = rca_design();
    let model = TimingModel::new(&design, ProcessParams::n90(), 900.0).expect("model");
    for corner in Corner::classic_set(6.0) {
        let ann = corner_annotation(&model, corner.delta_l_nm);
        let naive = model.analyze(Some(&ann)).expect("naive");
        let through_api = corners::analyze_corner(&model, &corner).expect("corner");
        assert_eq!(naive, through_api, "corner {}", corner.name);
    }
    // The batched entry point shares one scratch across corners; a dirty
    // scratch must not leak between evaluations.
    let set = Corner::classic_set(6.0);
    let batch = analyze_corners(&model, &set).expect("batch");
    for (corner, report) in set.iter().zip(&batch) {
        let ann = corner_annotation(&model, corner.delta_l_nm);
        assert_eq!(&model.analyze(Some(&ann)).expect("naive"), report);
    }
}

#[test]
fn annotated_reports_are_bit_identical_including_nets() {
    let design = random_design(19);
    let model = TimingModel::new(&design, ProcessParams::n90(), 900.0).expect("model");
    // Mixed annotation: random subset of gates with random CDs, plus
    // printed widths on the routed nets — the F8 multi-layer shape.
    let mut rng = StdRng::seed_from_u64(99);
    let mut ann = CdAnnotation::new();
    for (gi, g) in design.netlist().gates().iter().enumerate() {
        if rng.random_range(0.0..1.0) < 0.5 {
            continue;
        }
        let mut records = model.library().drawn_transistors(g.kind, g.drive).to_vec();
        for r in &mut records {
            let delta: f64 = rng.random_range(-6.0..6.0);
            r.l_delay_nm = (r.l_delay_nm + delta).max(40.0);
            r.l_leakage_nm = (r.l_leakage_nm + delta).max(40.0);
        }
        ann.set_gate(
            GateId(gi as u32),
            GateAnnotation {
                transistors: records,
            },
        );
    }
    let m1_width = design.tech().m1_width as f64;
    for ni in 0..design.netlist().nets().len() {
        let net = NetId(ni as u32);
        let routed = design
            .routing()
            .route_of(net)
            .map(|r| r.length_nm >= 1.0)
            .unwrap_or(false);
        if routed && rng.random_range(0.0..1.0) < 0.5 {
            ann.set_net(
                net,
                NetAnnotation {
                    printed_width_nm: m1_width * rng.random_range(0.8..1.2),
                },
            );
        }
    }
    assert!(ann.net_count() > 0, "test must exercise net annotations");
    let naive = model.analyze(Some(&ann)).expect("naive");
    let compiled = model.compile().expect("compile");
    let mut scratch = compiled.scratch();
    let report = compiled
        .evaluate(&mut scratch, Some(&ann))
        .expect("compiled");
    assert_eq!(naive, report);
    // Same scratch, second annotation — still exact.
    let report2 = compiled.evaluate(&mut scratch, Some(&ann)).expect("again");
    assert_eq!(naive, report2);
}

#[test]
fn shared_compile_matches_per_call_apis() {
    // One CompiledSta + scratch serving drawn, corner-sweep and Monte
    // Carlo analyses (the flow/guardband shape) must reproduce each
    // standalone API bit for bit, however dirty the shared scratch is.
    let design = registered_design();
    let model = TimingModel::new(&design, ProcessParams::n90(), 900.0).expect("model");
    let compiled = model.compile().expect("compile");
    let mut scratch = compiled.scratch();
    let drawn_shared = compiled.evaluate(&mut scratch, None).expect("drawn");
    assert_eq!(drawn_shared, model.analyze(None).expect("naive drawn"));
    let set = Corner::classic_set(5.0);
    let shared = corners::analyze_corners_with(&compiled, &mut scratch, &set).expect("shared");
    assert_eq!(shared, analyze_corners(&model, &set).expect("standalone"));
    let cfg = MonteCarloConfig {
        samples: 12,
        sigma_nm: 1.0,
        seed: 3,
        ..MonteCarloConfig::default()
    };
    let mc_shared = statistical::run_with(&compiled, None, &cfg).expect("shared mc");
    assert_eq!(mc_shared, statistical::run(&model, None, &cfg).expect("mc"));
    // And the scratch is still clean for another drawn pass.
    assert_eq!(
        compiled.evaluate(&mut scratch, None).expect("drawn again"),
        drawn_shared
    );
}

#[test]
fn slew_propagation_is_bit_identical_and_meaningful() {
    // The 2-D NLDM model makes every report carry per-net slews; both
    // engines must agree on them bit for bit (covered by report equality
    // above, re-asserted here per net), and the propagation must actually
    // do something: driven nets carry their driver's table slew, undriven
    // nets the primary-input default.
    for design in [rca_design(), random_design(23), registered_design()] {
        let model = TimingModel::new(&design, ProcessParams::n90(), 900.0).expect("model");
        let ann = corner_annotation(&model, 2.0);
        let naive = model.analyze(Some(&ann)).expect("naive");
        let compiled = model.compile().expect("compile");
        let report = compiled
            .evaluate(&mut compiled.scratch(), Some(&ann))
            .expect("compiled");
        let netlist = design.netlist();
        let mut driven_differs = 0usize;
        for ni in 0..netlist.nets().len() {
            let net = NetId(ni as u32);
            assert_eq!(
                naive.slew_ps(net).to_bits(),
                report.slew_ps(net).to_bits(),
                "slew of net {ni}"
            );
            assert!(naive.slew_ps(net) > 0.0);
            match netlist.driver(net) {
                Some(_) => {
                    if naive.slew_ps(net) != PRIMARY_INPUT_SLEW_PS {
                        driven_differs += 1;
                    }
                }
                None => assert_eq!(naive.slew_ps(net), PRIMARY_INPUT_SLEW_PS),
            }
        }
        assert!(
            driven_differs > 0,
            "slew propagation left every driven net at the default"
        );
    }
}

#[test]
fn monte_carlo_engines_are_bit_identical() {
    for design in [rca_design(), registered_design()] {
        let model = TimingModel::new(&design, ProcessParams::n90(), 900.0).expect("model");
        // Systematic annotation: every gate uniformly shifted, as the T6
        // extracted-systematics flow produces.
        let systematic = corner_annotation(&model, -1.5);
        for systematic in [None, Some(&systematic)] {
            let cfg = MonteCarloConfig {
                samples: 25,
                sigma_nm: 1.5,
                seed: 17,
                ..MonteCarloConfig::default()
            };
            let compiled = statistical::run(&model, systematic, &cfg).expect("compiled mc");
            let naive = statistical::run_reference(&model, systematic, &cfg).expect("naive mc");
            assert_eq!(compiled, naive);
            // Exact bits, spelled out: not approximately equal — equal.
            for (a, b) in compiled
                .worst_slacks_ps()
                .iter()
                .zip(naive.worst_slacks_ps())
            {
                assert_eq!(a.to_bits(), b.to_bits());
            }
        }
    }
}
