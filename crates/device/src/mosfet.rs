//! Alpha-power-law MOSFET evaluation.

use crate::error::{DeviceError, Result};
use crate::params::{MosKind, ProcessParams};

/// A single rectangular-gate transistor.
///
/// ```
/// use postopc_device::{Mosfet, MosKind, ProcessParams};
/// # fn main() -> Result<(), postopc_device::DeviceError> {
/// let p = ProcessParams::n90();
/// let n = Mosfet::new(MosKind::Nmos, 1000.0, 90.0)?;
/// let short = Mosfet::new(MosKind::Nmos, 1000.0, 85.0)?;
/// // A shorter printed channel is faster (more current) but leaks more.
/// assert!(short.i_on(&p) > n.i_on(&p));
/// assert!(short.i_off(&p) > n.i_off(&p));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Mosfet {
    kind: MosKind,
    w_nm: f64,
    l_nm: f64,
}

impl Mosfet {
    /// Creates a transistor with the given drawn/printed dimensions in nm.
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::InvalidDimension`] if either dimension is
    /// non-positive or non-finite.
    pub fn new(kind: MosKind, w_nm: f64, l_nm: f64) -> Result<Mosfet> {
        if !(w_nm.is_finite() && w_nm > 0.0) {
            return Err(DeviceError::InvalidDimension {
                name: "W",
                value: w_nm,
            });
        }
        if !(l_nm.is_finite() && l_nm > 0.0) {
            return Err(DeviceError::InvalidDimension {
                name: "L",
                value: l_nm,
            });
        }
        Ok(Mosfet { kind, w_nm, l_nm })
    }

    /// Transistor polarity.
    pub fn kind(&self) -> MosKind {
        self.kind
    }

    /// Channel width in nm.
    pub fn width_nm(&self) -> f64 {
        self.w_nm
    }

    /// Channel length in nm.
    pub fn length_nm(&self) -> f64 {
        self.l_nm
    }

    /// The same device with a different channel length (CD back-annotation).
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::InvalidDimension`] for a non-positive length.
    pub fn with_length(&self, l_nm: f64) -> Result<Mosfet> {
        Mosfet::new(self.kind, self.w_nm, l_nm)
    }

    /// Threshold voltage in volts, including short-channel roll-off:
    /// `Vth(L) = Vth0 − a · exp(−L/λ)`.
    pub fn vth(&self, p: &ProcessParams) -> f64 {
        let vth0 = match self.kind {
            MosKind::Nmos => p.vth0_n,
            MosKind::Pmos => p.vth0_p,
        };
        vth0 - p.vth_rolloff_v * (-self.l_nm / p.vth_rolloff_lambda_nm).exp()
    }

    /// Saturation drive current in µA (alpha-power law). Clamped to a tiny
    /// positive value if the overdrive is non-positive (off device).
    pub fn i_on(&self, p: &ProcessParams) -> f64 {
        let k = match self.kind {
            MosKind::Nmos => p.k_n,
            MosKind::Pmos => p.k_p,
        };
        let overdrive = (p.vdd - self.vth(p)).max(0.0);
        (k * (self.w_nm / self.l_nm) * overdrive.powf(p.alpha)).max(1e-9)
    }

    /// Subthreshold leakage current in µA:
    /// `I_off = i0 (W/L) 10^(−Vth / S)`.
    pub fn i_off(&self, p: &ProcessParams) -> f64 {
        let s_v = p.subthreshold_swing_mv / 1000.0;
        p.i_leak0 * (self.w_nm / self.l_nm) * 10f64.powf(-self.vth(p) / s_v)
    }

    /// Total gate capacitance in fF (area + overlap/fringe).
    pub fn c_gate(&self, p: &ProcessParams) -> f64 {
        p.c_ox * self.w_nm * self.l_nm + p.c_overlap * self.w_nm
    }

    /// Drain junction capacitance in fF.
    pub fn c_drain(&self, p: &ProcessParams) -> f64 {
        p.c_junction * self.w_nm
    }

    /// Effective switching resistance in kΩ, defined as
    /// `R = Vdd / I_on` with unit bookkeeping (V/µA = MΩ → ×1000 kΩ).
    ///
    /// With capacitance in fF this gives delays directly in ps
    /// (kΩ · fF = ps).
    pub fn r_eff(&self, p: &ProcessParams) -> f64 {
        1000.0 * p.vdd / self.i_on(p)
    }
}

impl std::fmt::Display for Mosfet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} W={}nm L={}nm", self.kind, self.w_nm, self.l_nm)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p() -> ProcessParams {
        ProcessParams::n90()
    }

    fn nmos(w: f64, l: f64) -> Mosfet {
        Mosfet::new(MosKind::Nmos, w, l).expect("valid device")
    }

    #[test]
    fn rejects_bad_dimensions() {
        assert!(Mosfet::new(MosKind::Nmos, 0.0, 90.0).is_err());
        assert!(Mosfet::new(MosKind::Nmos, 100.0, -1.0).is_err());
        assert!(Mosfet::new(MosKind::Pmos, f64::NAN, 90.0).is_err());
    }

    #[test]
    fn nominal_nmos_current_in_calibrated_range() {
        // ~500-700 uA/um is the published 90 nm ballpark.
        let i = nmos(1000.0, 90.0).i_on(&p());
        assert!((450.0..750.0).contains(&i), "I_on = {i} µA/µm");
    }

    #[test]
    fn nominal_leakage_in_calibrated_range() {
        // Tens of nA per µm.
        let i = nmos(1000.0, 90.0).i_off(&p()) * 1000.0; // nA
        assert!((1.0..100.0).contains(&i), "I_off = {i} nA/µm");
    }

    #[test]
    fn gate_cap_in_calibrated_range() {
        let c = nmos(1000.0, 90.0).c_gate(&p());
        assert!((1.0..3.0).contains(&c), "C_gate = {c} fF/µm");
    }

    #[test]
    fn current_scales_with_width() {
        let a = nmos(500.0, 90.0).i_on(&p());
        let b = nmos(1000.0, 90.0).i_on(&p());
        assert!((b / a - 2.0).abs() < 1e-12);
    }

    #[test]
    fn shorter_channel_is_monotonically_faster_and_leakier() {
        let pp = p();
        let mut last_ion = 0.0;
        let mut last_ioff = 0.0;
        for l in [100.0, 95.0, 90.0, 85.0, 80.0] {
            let d = nmos(1000.0, l);
            assert!(d.i_on(&pp) > last_ion, "I_on not monotone at L={l}");
            assert!(d.i_off(&pp) > last_ioff, "I_off not monotone at L={l}");
            last_ion = d.i_on(&pp);
            last_ioff = d.i_off(&pp);
        }
    }

    #[test]
    fn leakage_is_much_more_cd_sensitive_than_drive() {
        let pp = p();
        let nom = nmos(1000.0, 90.0);
        let short = nmos(1000.0, 81.0); // -10% CD
        let ion_ratio = short.i_on(&pp) / nom.i_on(&pp);
        let ioff_ratio = short.i_off(&pp) / nom.i_off(&pp);
        assert!(ion_ratio > 1.05 && ion_ratio < 1.5, "ion ratio {ion_ratio}");
        assert!(
            ioff_ratio > 2.0,
            "ioff ratio {ioff_ratio} should be exponential"
        );
    }

    #[test]
    fn pmos_is_weaker_than_nmos() {
        let pp = p();
        let n = nmos(1000.0, 90.0);
        let pm = Mosfet::new(MosKind::Pmos, 1000.0, 90.0).expect("valid");
        assert!(n.i_on(&pp) > 1.5 * pm.i_on(&pp));
    }

    #[test]
    fn r_eff_times_c_gives_picoseconds() {
        let pp = p();
        let d = nmos(1000.0, 90.0);
        // FO4-ish delay sanity: R_eff * 4*C_gate should be a few ps.
        let tau = d.r_eff(&pp) * 4.0 * d.c_gate(&pp);
        assert!((1.0..100.0).contains(&tau), "tau = {tau} ps");
    }

    #[test]
    fn with_length_preserves_identity() {
        let d = nmos(640.0, 90.0);
        let e = d.with_length(93.5).expect("valid");
        assert_eq!(e.width_nm(), 640.0);
        assert_eq!(e.length_nm(), 93.5);
        assert_eq!(e.kind(), MosKind::Nmos);
    }
}
