//! Persistent warm-timing artifacts: one expensive compile serves many
//! cheap sessions.
//!
//! A [`WarmArtifact`] captures everything a warm timing session would
//! otherwise have to recompute — the post-OPC [`CdAnnotation`], the
//! characterization-cache entries, the Monte Carlo shift-cache entries
//! and the extraction [`ContextStore`] — in an in-tree, versioned binary
//! format (no external serialization dependency, so the offline build
//! stays intact). Every float is stored as its exact bit pattern, so a
//! loaded artifact replays timing **bit-identically** to the fresh
//! compile that produced it.
//!
//! # Format
//!
//! ```text
//! magic      8 bytes   b"POCWARM1"
//! version    u32 LE    bumped on any layout change
//! hash       u64 LE    content hash of (layout, process, clock, flow config)
//! sections   ...       annotation, char entries, shift entries, store,
//!                      optional surrogate model (since version 2)
//! checksum   u64 LE    FNV-1a over every preceding byte
//! ```
//!
//! All sections are length-prefixed little-endian; loading validates the
//! magic, version and checksum and length-checks every read, returning a
//! typed [`FlowError::Artifact`] — never panicking — on any malformed
//! input. The **invalidation key** is the content hash: it digests the
//! design's netlist, transistor sites and die, the process parameters,
//! the clock, the gate-selection policy, the wire-extraction config and
//! the extraction configuration *minus* fields that cannot change
//! results (thread count, context-cache toggle, fault policy/injection —
//! all bit-identical by construction; likewise `report_paths`, which
//! only shapes the printed comparison). A consumer compares
//! [`content_hash`] of its current inputs against the stored hash and
//! falls back to a cold compile on mismatch.

use crate::durable::ArtifactIo;
use crate::error::{ArtifactError, Result};
use crate::extract::{artifact_err, put_u64, take_u64, ContextStore};
use crate::fault::FaultPolicy;
use crate::flow::FlowConfig;
use postopc_device::MosKind;
use postopc_layout::{Design, GateId, GateKind, NetId};
use postopc_sta::{
    CdAnnotation, CellTiming, CharCacheEntry, GateAnnotation, NetAnnotation, NldmTable,
    SequentialTiming, TransistorCd, NLDM_LOAD_PTS, NLDM_SLEW_PTS,
};
use std::path::Path;

/// Magic bytes identifying a warm-timing artifact.
pub const ARTIFACT_MAGIC: [u8; 8] = *b"POCWARM1";

/// Current artifact format version; readers reject any other.
/// Version 2 added the optional surrogate-model section.
pub const ARTIFACT_VERSION: u32 = 2;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// FNV-1a over a byte stream — the stable in-tree hash both the
/// checksum and the content hash ride on (never `DefaultHasher`, whose
/// output may change across Rust releases).
fn fnv1a(seed: u64, bytes: &[u8]) -> u64 {
    let mut h = seed;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// Content hash of a timing compile's inputs: the artifact invalidation
/// key. Digests the design (netlist connectivity, placed transistor
/// sites, die), the device process, the clock, the gate-selection
/// policy, the wire-extraction config and the extraction configuration —
/// everything the flow lets vary that can move an annotated answer.
/// Results-invariant fields (threads, cache toggle, fault
/// policy/injection, `report_paths`) are normalised away — so re-running
/// on more threads does not orphan an artifact.
pub fn content_hash(design: &Design, config: &FlowConfig) -> u64 {
    let mut canon = config.extraction.clone();
    canon.threads = None;
    canon.cache = true;
    canon.fault_policy = FaultPolicy::Fail;
    canon.fault_injection = None;
    // The surrogate tier changes annotated results, so its knobs — and the
    // fingerprint of any pre-trained model (via `SurrogateConfig`'s `Debug`
    // rendering) — stay in the key while it is enabled: a warm start must
    // never mix surrogate and non-surrogate artifacts. With it disabled
    // the knobs are inert, so they are normalised away.
    if !canon.surrogate.enabled {
        canon.surrogate = crate::extract::SurrogateConfig::off();
    }
    let mut h = fnv1a(FNV_OFFSET, b"postopc-warm-artifact");
    h = fnv1a(h, format!("{:?}", design.netlist().gates()).as_bytes());
    h = fnv1a(h, format!("{:?}", design.transistor_sites()).as_bytes());
    h = fnv1a(h, format!("{:?}", design.die()).as_bytes());
    h = fnv1a(h, format!("{:?}", config.process).as_bytes());
    h = fnv1a(h, &config.clock_ps.to_bits().to_le_bytes());
    h = fnv1a(h, format!("{canon:?}").as_bytes());
    h = fnv1a(h, format!("{:?}", config.selection).as_bytes());
    h = fnv1a(h, format!("{:?}", config.wires).as_bytes());
    h
}

/// Everything a warm timing session reuses from one expensive compile,
/// in exact bits. See the module docs for the byte format.
#[derive(Debug)]
pub struct WarmArtifact {
    /// [`content_hash`] of the inputs this artifact was built from.
    pub content_hash: u64,
    /// The post-OPC extraction annotation.
    pub annotation: CdAnnotation,
    /// Exported characterization-cache entries
    /// ([`postopc_sta::CharacterizationCache::export`]).
    pub char_entries: Vec<CharCacheEntry>,
    /// Exported per-worker shift-cache entries
    /// ([`postopc_sta::StaScratch::export_shift_entries`]).
    pub shift_entries: Vec<(u64, CellTiming)>,
    /// Retained distinct litho contexts for incremental re-extraction.
    pub context_store: ContextStore,
    /// Trained CD-surrogate state, when the compile ran with the
    /// surrogate tier enabled: a restored session resumes gating and
    /// online training exactly where the compile left off.
    pub surrogate: Option<postopc_litho::SurrogateModel>,
}

impl WarmArtifact {
    /// Serializes the artifact to its canonical byte form (equal
    /// artifacts produce equal bytes).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(&ARTIFACT_MAGIC);
        out.extend_from_slice(&ARTIFACT_VERSION.to_le_bytes());
        put_u64(&mut out, self.content_hash);
        encode_annotation(&self.annotation, &mut out);
        put_u64(&mut out, self.char_entries.len() as u64);
        for entry in &self.char_entries {
            out.push(gate_kind_tag(entry.kind));
            put_u64(&mut out, entry.records.len() as u64);
            for r in &entry.records {
                encode_record(r, &mut out);
            }
            encode_cell_timing(&entry.timing, &mut out);
        }
        put_u64(&mut out, self.shift_entries.len() as u64);
        for (key, timing) in &self.shift_entries {
            put_u64(&mut out, *key);
            encode_cell_timing(timing, &mut out);
        }
        self.context_store.encode_into(&mut out);
        match &self.surrogate {
            None => out.push(0),
            Some(model) => {
                out.push(1);
                model.encode_into(&mut out);
            }
        }
        let checksum = fnv1a(FNV_OFFSET, &out);
        put_u64(&mut out, checksum);
        out
    }

    /// Parses an artifact from bytes.
    ///
    /// # Errors
    ///
    /// [`FlowError::Artifact`] on bad magic, unsupported version,
    /// checksum mismatch, truncation or any corrupt field — loading
    /// never panics on malformed input.
    pub fn from_bytes(bytes: &[u8]) -> Result<WarmArtifact> {
        let header = ARTIFACT_MAGIC.len() + 4 + 8;
        if bytes.len() < header + 8 {
            return Err(artifact_err("too short to hold a header and checksum"));
        }
        if bytes[..ARTIFACT_MAGIC.len()] != ARTIFACT_MAGIC {
            return Err(artifact_err("bad magic: not a warm-timing artifact"));
        }
        let mut cursor = ARTIFACT_MAGIC.len();
        let mut ver = [0u8; 4];
        ver.copy_from_slice(&bytes[cursor..cursor + 4]);
        let version = u32::from_le_bytes(ver);
        if version != ARTIFACT_VERSION {
            return Err(crate::FlowError::Artifact(ArtifactError::version(
                version,
                ARTIFACT_VERSION,
            )));
        }
        cursor += 4;
        let body = &bytes[..bytes.len() - 8];
        let stored_checksum = take_u64(bytes, &mut { bytes.len() - 8 })?;
        if fnv1a(FNV_OFFSET, body) != stored_checksum {
            return Err(artifact_err("checksum mismatch: artifact is corrupt"));
        }
        let content_hash = take_u64(body, &mut cursor)?;
        let annotation = decode_annotation(body, &mut cursor)?;
        let n_char = take_u64(body, &mut cursor)?;
        let mut char_entries = Vec::with_capacity(n_char.min(1 << 20) as usize);
        for _ in 0..n_char {
            let kind = gate_kind_of(body, &mut cursor)?;
            let n_records = take_u64(body, &mut cursor)?;
            let mut records = Vec::with_capacity(n_records.min(1 << 20) as usize);
            for _ in 0..n_records {
                records.push(decode_record(body, &mut cursor)?);
            }
            let timing = decode_cell_timing(body, &mut cursor)?;
            char_entries.push(CharCacheEntry {
                kind,
                records,
                timing,
            });
        }
        let n_shift = take_u64(body, &mut cursor)?;
        let mut shift_entries = Vec::with_capacity(n_shift.min(1 << 20) as usize);
        for _ in 0..n_shift {
            let key = take_u64(body, &mut cursor)?;
            shift_entries.push((key, decode_cell_timing(body, &mut cursor)?));
        }
        let context_store = ContextStore::decode_from(body, &mut cursor)?;
        let surrogate = match body.get(cursor).copied() {
            Some(0) => {
                cursor += 1;
                None
            }
            Some(1) => {
                cursor += 1;
                let model = postopc_litho::SurrogateModel::decode_from(body, &mut cursor)
                    .map_err(|e| artifact_err(&format!("surrogate section: {e}")))?;
                Some(model)
            }
            _ => return Err(artifact_err("invalid stored surrogate tag")),
        };
        if cursor != body.len() {
            return Err(artifact_err("trailing bytes after the last section"));
        }
        Ok(WarmArtifact {
            content_hash,
            annotation,
            char_entries,
            shift_entries,
            context_store,
            surrogate,
        })
    }

    /// Writes the artifact to `path` atomically: the bytes are staged in
    /// `<path>.tmp.<pid>`, fsynced, renamed into place, and the parent
    /// directory fsynced — a crash or failure at any step leaves the
    /// previous artifact at `path` untouched.
    ///
    /// # Errors
    ///
    /// [`FlowError::Artifact`] with an
    /// [`ArtifactErrorKind::Io`](crate::ArtifactErrorKind::Io) naming
    /// the path and failing operation (write/fsync/rename).
    pub fn save(&self, path: &Path) -> Result<()> {
        self.save_with(path, &mut ArtifactIo::faultless())
    }

    /// [`Self::save`] through a caller-supplied I/O context (fault
    /// injection and retry policy).
    ///
    /// # Errors
    ///
    /// As [`Self::save`].
    pub fn save_with(&self, path: &Path, io: &mut ArtifactIo) -> Result<()> {
        io.write_atomic(path, &self.to_bytes())
    }

    /// Reads and parses an artifact from `path`.
    ///
    /// # Errors
    ///
    /// [`FlowError::Artifact`] for I/O failures (transient ones are
    /// retried) and, via [`Self::from_bytes`], for any malformed
    /// content; decode errors carry `path`.
    pub fn load(path: &Path) -> Result<WarmArtifact> {
        WarmArtifact::load_with(path, &mut ArtifactIo::faultless())
    }

    /// [`Self::load`] through a caller-supplied I/O context.
    ///
    /// # Errors
    ///
    /// As [`Self::load`].
    pub fn load_with(path: &Path, io: &mut ArtifactIo) -> Result<WarmArtifact> {
        let bytes = io.read(path)?;
        WarmArtifact::from_bytes(&bytes).map_err(|e| match e {
            crate::FlowError::Artifact(err) => crate::FlowError::Artifact(err.with_path(path)),
            other => other,
        })
    }

    /// [`Self::load`] plus an invalidation check against the hash of the
    /// consumer's current inputs — the full recovery ladder: I/O errors,
    /// torn/partial bytes, foreign versions and stale hashes each come
    /// back as their own [`ArtifactErrorKind`](crate::ArtifactErrorKind).
    ///
    /// # Errors
    ///
    /// [`FlowError::Artifact`] with
    /// [`ArtifactErrorKind::StaleHash`](crate::ArtifactErrorKind::StaleHash)
    /// when the stored hash differs from `expected_hash` (the inputs
    /// changed: recompile cold), plus everything [`Self::load`] can
    /// return.
    pub fn load_validated(path: &Path, expected_hash: u64) -> Result<WarmArtifact> {
        WarmArtifact::load_validated_with(path, expected_hash, &mut ArtifactIo::faultless())
    }

    /// [`Self::load_validated`] through a caller-supplied I/O context.
    ///
    /// # Errors
    ///
    /// As [`Self::load_validated`].
    pub fn load_validated_with(
        path: &Path,
        expected_hash: u64,
        io: &mut ArtifactIo,
    ) -> Result<WarmArtifact> {
        let artifact = WarmArtifact::load_with(path, io)?;
        if artifact.content_hash != expected_hash {
            return Err(crate::FlowError::Artifact(
                ArtifactError::stale(artifact.content_hash, expected_hash).with_path(path),
            ));
        }
        Ok(artifact)
    }
}

fn gate_kind_tag(kind: GateKind) -> u8 {
    match kind {
        GateKind::Inv => 0,
        GateKind::Buf => 1,
        GateKind::Nand2 => 2,
        GateKind::Nor2 => 3,
        GateKind::Nand3 => 4,
        GateKind::Dff => 5,
    }
}

fn gate_kind_of(bytes: &[u8], cursor: &mut usize) -> Result<GateKind> {
    let kind = match bytes.get(*cursor) {
        Some(0) => GateKind::Inv,
        Some(1) => GateKind::Buf,
        Some(2) => GateKind::Nand2,
        Some(3) => GateKind::Nor2,
        Some(4) => GateKind::Nand3,
        Some(5) => GateKind::Dff,
        _ => return Err(artifact_err("invalid stored gate kind")),
    };
    *cursor += 1;
    Ok(kind)
}

fn put_f64(out: &mut Vec<u8>, v: f64) {
    put_u64(out, v.to_bits());
}

fn take_f64(bytes: &[u8], cursor: &mut usize) -> Result<f64> {
    Ok(f64::from_bits(take_u64(bytes, cursor)?))
}

fn encode_record(r: &TransistorCd, out: &mut Vec<u8>) {
    out.push(match r.kind {
        MosKind::Nmos => 0,
        MosKind::Pmos => 1,
    });
    put_f64(out, r.width_nm);
    put_f64(out, r.l_delay_nm);
    put_f64(out, r.l_leakage_nm);
    put_u64(out, r.input_pin.map_or(u64::MAX, |p| p as u64));
    put_u64(out, r.finger as u64);
}

fn decode_record(bytes: &[u8], cursor: &mut usize) -> Result<TransistorCd> {
    let kind = match bytes.get(*cursor) {
        Some(0) => MosKind::Nmos,
        Some(1) => MosKind::Pmos,
        _ => return Err(artifact_err("invalid stored MOS kind")),
    };
    *cursor += 1;
    let width_nm = take_f64(bytes, cursor)?;
    let l_delay_nm = take_f64(bytes, cursor)?;
    let l_leakage_nm = take_f64(bytes, cursor)?;
    let pin = take_u64(bytes, cursor)?;
    let finger = take_u64(bytes, cursor)? as usize;
    Ok(TransistorCd {
        kind,
        width_nm,
        l_delay_nm,
        l_leakage_nm,
        input_pin: (pin != u64::MAX).then_some(pin as usize),
        finger,
    })
}

fn encode_cell_timing(t: &CellTiming, out: &mut Vec<u8>) {
    put_f64(out, t.input_cap_ff);
    put_f64(out, t.pull_up_r_kohm);
    put_f64(out, t.pull_down_r_kohm);
    put_f64(out, t.intrinsic_ps);
    put_f64(out, t.output_cap_ff);
    put_f64(out, t.leakage_ua);
    match &t.sequential {
        None => out.push(0),
        Some(seq) => {
            out.push(1);
            put_f64(out, seq.clk_to_q_ps);
            put_f64(out, seq.setup_ps);
        }
    }
    for v in t.nldm.load_axis_ff {
        put_f64(out, v);
    }
    for row in t.nldm.delay_grid_ps {
        for v in row {
            put_f64(out, v);
        }
    }
    for row in t.nldm.slew_grid_ps {
        for v in row {
            put_f64(out, v);
        }
    }
}

fn decode_cell_timing(bytes: &[u8], cursor: &mut usize) -> Result<CellTiming> {
    let input_cap_ff = take_f64(bytes, cursor)?;
    let pull_up_r_kohm = take_f64(bytes, cursor)?;
    let pull_down_r_kohm = take_f64(bytes, cursor)?;
    let intrinsic_ps = take_f64(bytes, cursor)?;
    let output_cap_ff = take_f64(bytes, cursor)?;
    let leakage_ua = take_f64(bytes, cursor)?;
    let sequential = match bytes.get(*cursor) {
        Some(0) => {
            *cursor += 1;
            None
        }
        Some(1) => {
            *cursor += 1;
            Some(SequentialTiming {
                clk_to_q_ps: take_f64(bytes, cursor)?,
                setup_ps: take_f64(bytes, cursor)?,
            })
        }
        _ => return Err(artifact_err("invalid stored sequential tag")),
    };
    let mut load_axis_ff = [0.0; NLDM_LOAD_PTS];
    for v in &mut load_axis_ff {
        *v = take_f64(bytes, cursor)?;
    }
    let mut delay_grid_ps = [[0.0; NLDM_LOAD_PTS]; NLDM_SLEW_PTS];
    for row in &mut delay_grid_ps {
        for v in row.iter_mut() {
            *v = take_f64(bytes, cursor)?;
        }
    }
    let mut slew_grid_ps = [[0.0; NLDM_LOAD_PTS]; NLDM_SLEW_PTS];
    for row in &mut slew_grid_ps {
        for v in row.iter_mut() {
            *v = take_f64(bytes, cursor)?;
        }
    }
    Ok(CellTiming {
        input_cap_ff,
        pull_up_r_kohm,
        pull_down_r_kohm,
        intrinsic_ps,
        output_cap_ff,
        leakage_ua,
        sequential,
        nldm: NldmTable {
            load_axis_ff,
            delay_grid_ps,
            slew_grid_ps,
        },
    })
}

fn encode_annotation(ann: &CdAnnotation, out: &mut Vec<u8>) {
    // HashMap iteration is unordered; sort by id for canonical bytes.
    let mut gates: Vec<(&GateId, &GateAnnotation)> = ann.gates().collect();
    gates.sort_by_key(|(g, _)| g.0);
    put_u64(out, gates.len() as u64);
    for (gate, g) in gates {
        put_u64(out, u64::from(gate.0));
        put_u64(out, g.transistors.len() as u64);
        for r in &g.transistors {
            encode_record(r, out);
        }
    }
    let mut nets: Vec<(&NetId, &NetAnnotation)> = ann.nets().collect();
    nets.sort_by_key(|(n, _)| n.0);
    put_u64(out, nets.len() as u64);
    for (net, n) in nets {
        put_u64(out, u64::from(net.0));
        put_f64(out, n.printed_width_nm);
    }
}

fn decode_annotation(bytes: &[u8], cursor: &mut usize) -> Result<CdAnnotation> {
    let mut ann = CdAnnotation::new();
    let n_gates = take_u64(bytes, cursor)?;
    for _ in 0..n_gates {
        let gate = take_u64(bytes, cursor)?;
        if gate > u64::from(u32::MAX) {
            return Err(artifact_err("stored gate id out of range"));
        }
        let n_records = take_u64(bytes, cursor)?;
        let mut transistors = Vec::with_capacity(n_records.min(1 << 20) as usize);
        for _ in 0..n_records {
            transistors.push(decode_record(bytes, cursor)?);
        }
        ann.set_gate(GateId(gate as u32), GateAnnotation { transistors });
    }
    let n_nets = take_u64(bytes, cursor)?;
    for _ in 0..n_nets {
        let net = take_u64(bytes, cursor)?;
        if net > u64::from(u32::MAX) {
            return Err(artifact_err("stored net id out of range"));
        }
        let printed_width_nm = take_f64(bytes, cursor)?;
        ann.set_net(NetId(net as u32), NetAnnotation { printed_width_nm });
    }
    Ok(ann)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::FlowError;
    use crate::flow::Selection;
    use crate::multilayer::WireExtractionConfig;
    use postopc_layout::{generate, TechRules};

    fn design() -> Design {
        Design::compile(
            generate::inverter_chain(4).expect("netlist"),
            TechRules::n90(),
        )
        .expect("design")
    }

    fn fast_config() -> FlowConfig {
        let mut cfg = FlowConfig::standard(800.0);
        cfg.selection = Selection::All;
        cfg.extraction.opc_mode = crate::extract::OpcMode::Rule;
        cfg
    }

    fn sample_artifact() -> WarmArtifact {
        let d = design();
        let cfg = fast_config();
        let tags = crate::tags::TagSet::all(&d);
        let mut store = ContextStore::new();
        let out =
            crate::extract::extract_gates_with_store(&d, &cfg.extraction, &tags, Some(&mut store))
                .expect("extract");
        let model =
            postopc_sta::TimingModel::new(&d, cfg.process.clone(), cfg.clock_ps).expect("model");
        let compiled = model.compile().expect("compile");
        let mut scratch = compiled.scratch();
        compiled
            .evaluate(&mut scratch, Some(&out.annotation))
            .expect("evaluate");
        WarmArtifact {
            content_hash: content_hash(&d, &cfg),
            annotation: out.annotation,
            char_entries: scratch.cache().export(),
            shift_entries: scratch.export_shift_entries(),
            context_store: store,
            surrogate: None,
        }
    }

    #[test]
    fn round_trip_is_exact() {
        let artifact = sample_artifact();
        let bytes = artifact.to_bytes();
        // Canonical bytes: serializing twice is identical.
        assert_eq!(bytes, artifact.to_bytes());
        let loaded = WarmArtifact::from_bytes(&bytes).expect("parse");
        assert_eq!(loaded.content_hash, artifact.content_hash);
        assert_eq!(loaded.annotation, artifact.annotation);
        assert_eq!(loaded.char_entries, artifact.char_entries);
        assert_eq!(loaded.shift_entries, artifact.shift_entries);
        assert_eq!(loaded.context_store.len(), artifact.context_store.len());
        // And the round trip is a fixed point.
        assert_eq!(loaded.to_bytes(), bytes);
    }

    #[test]
    fn corrupt_inputs_return_typed_errors_never_panic() {
        let artifact = sample_artifact();
        let bytes = artifact.to_bytes();
        // Bad magic.
        let mut bad = bytes.clone();
        bad[0] ^= 0xff;
        assert!(matches!(
            WarmArtifact::from_bytes(&bad),
            Err(FlowError::Artifact(_))
        ));
        // Unsupported version.
        let mut bad = bytes.clone();
        bad[8] = 0xfe;
        let err = WarmArtifact::from_bytes(&bad).expect_err("version");
        assert!(err.to_string().contains("version"));
        // Flipped payload byte: checksum catches it.
        let mut bad = bytes.clone();
        let mid = bytes.len() / 2;
        bad[mid] ^= 0x01;
        let err = WarmArtifact::from_bytes(&bad).expect_err("corrupt");
        assert!(err.to_string().contains("checksum"));
        // Truncation at every prefix parses to a typed error, not a panic.
        for cut in [0, 7, 12, 19, 20, bytes.len() / 3, bytes.len() - 1] {
            assert!(
                WarmArtifact::from_bytes(&bytes[..cut]).is_err(),
                "prefix of {cut} bytes must be rejected"
            );
        }
        // Empty input.
        assert!(WarmArtifact::from_bytes(&[]).is_err());
    }

    #[test]
    fn content_hash_tracks_inputs() {
        let d = design();
        let cfg = FlowConfig::standard(800.0);
        let base = content_hash(&d, &cfg);
        assert_eq!(base, content_hash(&d, &cfg));
        // Results-invariant knobs do not invalidate.
        let mut invariant = cfg.clone();
        invariant.extraction.threads = Some(7);
        invariant.extraction.cache = false;
        invariant.report_paths = 3;
        assert_eq!(base, content_hash(&d, &invariant));
        // Result-relevant inputs do.
        let mut clock = cfg.clone();
        clock.clock_ps = 900.0;
        assert_ne!(base, content_hash(&d, &clock));
        let mut opc = cfg.clone();
        opc.extraction.opc_mode = crate::extract::OpcMode::Rule;
        assert_ne!(base, content_hash(&d, &opc));
        let mut proc2 = cfg.clone();
        proc2.process.vdd += 0.1;
        assert_ne!(base, content_hash(&d, &proc2));
        // The selection policy shapes which gates the annotation covers,
        // so it is part of the key …
        let mut paths = cfg.clone();
        paths.selection = Selection::Critical { paths: 10 };
        assert_ne!(base, content_hash(&d, &paths));
        let mut all = cfg.clone();
        all.selection = Selection::All;
        assert_ne!(base, content_hash(&d, &all));
        // … and so is the wire-extraction config, which adds net entries.
        let mut wired = cfg.clone();
        wired.wires = Some(WireExtractionConfig::standard());
        assert_ne!(base, content_hash(&d, &wired));
    }

    #[test]
    fn surrogate_section_round_trips_and_is_validated() {
        let mut artifact = sample_artifact();
        let mut model = crate::extract::SurrogateConfig::standard().fresh_model();
        for i in 0..20 {
            let a = i as f64 / 10.0 - 1.0;
            let mut x = vec![0.0; crate::extract::SURROGATE_FEATURE_DIM];
            x[0] = 1.0;
            x[1] = a;
            model.absorb(&x, [2.0 * a, -a]).expect("absorb");
        }
        let fingerprint = model.fingerprint();
        artifact.surrogate = Some(model);
        let bytes = artifact.to_bytes();
        let loaded = WarmArtifact::from_bytes(&bytes).expect("parse");
        let restored = loaded.surrogate.as_ref().expect("surrogate section");
        assert_eq!(restored.len(), 20);
        assert_eq!(restored.fingerprint(), fingerprint);
        assert_eq!(loaded.to_bytes(), bytes, "round trip is a fixed point");
        // Truncations inside the surrogate section are typed errors.
        for cut in [bytes.len() - 9, bytes.len() - 50] {
            assert!(matches!(
                WarmArtifact::from_bytes(&bytes[..cut]),
                Err(FlowError::Artifact(_))
            ));
        }
    }

    #[test]
    fn content_hash_tracks_the_surrogate_knob() {
        let d = design();
        let cfg = fast_config();
        let base = content_hash(&d, &cfg);
        // Flipping *only* the surrogate switch invalidates: a warm start
        // must never mix surrogate and non-surrogate artifacts.
        let mut on = cfg.clone();
        on.extraction.surrogate = crate::extract::SurrogateConfig::standard();
        let on_hash = content_hash(&d, &on);
        assert_ne!(base, on_hash);
        // While enabled, the gate threshold is part of the key …
        let mut stricter = on.clone();
        stricter.extraction.surrogate.gate_threshold = 2.0;
        assert_ne!(on_hash, content_hash(&d, &stricter));
        // … and so is the pre-trained model (via its fingerprint).
        let mut pretrained = on.clone();
        let mut model = on.extraction.surrogate.fresh_model();
        let x = vec![1.0; crate::extract::SURROGATE_FEATURE_DIM];
        model.absorb(&x, [1.0, 1.0]).expect("absorb");
        pretrained.extraction.surrogate.pretrained = Some(model);
        assert_ne!(on_hash, content_hash(&d, &pretrained));
        // With the surrogate disabled its inert knobs are normalised away.
        let mut inert = cfg.clone();
        inert.extraction.surrogate.gate_threshold = 9.0;
        inert.extraction.surrogate.min_train = 5;
        assert_eq!(base, content_hash(&d, &inert));
    }

    #[test]
    fn load_validated_enforces_the_invalidation_key() {
        let artifact = sample_artifact();
        let dir = std::env::temp_dir().join("postopc-artifact-test");
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("warm.bin");
        artifact.save(&path).expect("save");
        let ok = WarmArtifact::load_validated(&path, artifact.content_hash).expect("load");
        assert_eq!(ok.annotation, artifact.annotation);
        let err = WarmArtifact::load_validated(&path, artifact.content_hash ^ 1)
            .expect_err("stale artifact must be rejected");
        assert!(err.to_string().contains("content hash mismatch"));
        // Missing file is a typed error too.
        assert!(matches!(
            WarmArtifact::load(&dir.join("absent.bin")),
            Err(FlowError::Artifact(_))
        ));
        std::fs::remove_file(&path).ok();
    }
}
