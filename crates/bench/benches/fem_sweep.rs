//! Benchmarks a focus-exposure-matrix sweep over an isolated line (the
//! primitive behind experiment F5), serial vs pooled.
//!
//! Uses the in-tree timing harness (`postopc_bench::timing`); criterion is
//! not available offline.

use postopc_bench::timing::{bench, render_bench_table};
use postopc_geom::{Polygon, Rect};
use postopc_litho::{cutline, AerialImage, FocusExposureMatrix, ResistModel, SimulationSpec};

fn main() {
    let line = Polygon::from(Rect::new(-45, -600, 45, 600).expect("rect"));
    let window = Rect::new(-300, -300, 300, 300).expect("rect");
    let resist = ResistModel::standard();
    let measure = |conditions: &postopc_litho::ProcessConditions| {
        let spec = SimulationSpec::nominal().with_conditions(*conditions);
        let image = AerialImage::simulate(&spec, std::slice::from_ref(&line), window)?;
        cutline::measure_cd(&image, &resist, (0.0, 0.0), (1.0, 0.0), 150.0)
    };
    let entries = vec![
        (
            "5x3_line_cd_sweep/serial".to_string(),
            bench(10, || {
                FocusExposureMatrix::sweep(
                    vec![-150.0, -75.0, 0.0, 75.0, 150.0],
                    vec![0.94, 1.0, 1.06],
                    measure,
                )
                .expect("sweep succeeds")
            }),
        ),
        (
            "5x3_line_cd_sweep/pooled".to_string(),
            bench(10, || {
                FocusExposureMatrix::sweep_parallel(
                    vec![-150.0, -75.0, 0.0, 75.0, 150.0],
                    vec![0.94, 1.0, 1.06],
                    None,
                    measure,
                )
                .expect("sweep succeeds")
            }),
        ),
    ];
    print!("{}", render_bench_table("fem", &entries));
}
