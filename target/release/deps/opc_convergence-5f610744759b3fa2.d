/root/repo/target/release/deps/opc_convergence-5f610744759b3fa2.d: crates/bench/benches/opc_convergence.rs Cargo.toml

/root/repo/target/release/deps/libopc_convergence-5f610744759b3fa2.rmeta: crates/bench/benches/opc_convergence.rs Cargo.toml

crates/bench/benches/opc_convergence.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
