//! Quickstart: compile a small design, run the complete post-OPC timing
//! flow, and print the drawn-vs-silicon comparison.
//!
//! ```bash
//! cargo run --release --example quickstart
//! ```

use postopc::{run_flow, FlowConfig, OpcMode, Selection};
use postopc_device::ProcessParams;
use postopc_layout::{generate, Design, TechRules};
use postopc_sta::TimingModel;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Build and compile a design: a 4-bit ripple-carry adder placed,
    //    routed and flattened to polygons.
    let netlist = generate::ripple_carry_adder(4)?;
    let design = Design::compile(netlist, TechRules::n90())?;
    println!(
        "compiled {}: {} gates, die {:.1} x {:.1} um",
        design.netlist().name(),
        design.netlist().gate_count(),
        design.die().width() as f64 / 1000.0,
        design.die().height() as f64 / 1000.0,
    );

    // 2. Pick a clock with 10% margin over drawn timing.
    let probe = TimingModel::new(&design, ProcessParams::n90(), 1e6)?;
    let drawn_delay = probe.analyze(None)?.critical_delay_ps();
    println!("drawn critical delay: {drawn_delay:.1} ps");

    // 3. Run the paper's flow: tag critical gates, OPC + extract their
    //    printed CDs, back-annotate, re-time.
    let mut config = FlowConfig::standard(drawn_delay * 1.1);
    config.selection = Selection::Critical { paths: 5 };
    config.extraction.opc_mode = OpcMode::Model;
    config.extraction.model_opc.iterations = 4;
    let report = run_flow(&design, &config)?;

    println!(
        "tagged {} critical gates ({:.0}% of design), extracted {} (failures: {})",
        report.tags.len(),
        100.0 * report.tags.coverage(&design),
        report.extraction.gates_extracted,
        report.extraction.gates_failed,
    );
    println!(
        "extraction took {:.1} s, timing {:.1} ms",
        report.extraction_time.as_secs_f64(),
        report.timing_time.as_secs_f64() * 1000.0,
    );
    let cmp = &report.comparison;
    println!(
        "worst slack: drawn {:.1} ps -> silicon-calibrated {:.1} ps ({:+.1}%)",
        cmp.drawn.worst_slack_ps(),
        cmp.annotated.worst_slack_ps(),
        100.0 * cmp.worst_slack_shift_fraction(),
    );
    println!(
        "leakage: drawn {:.1} uA -> annotated {:.1} uA",
        cmp.drawn.leakage_ua(),
        cmp.annotated.leakage_ua(),
    );
    println!("{}", postopc::report::render_path_comparison(&design, cmp));
    Ok(())
}
