/root/repo/target/release/deps/postopc_bench-c34e3e80738e1af8.d: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/timing.rs

/root/repo/target/release/deps/libpostopc_bench-c34e3e80738e1af8.rlib: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/timing.rs

/root/repo/target/release/deps/libpostopc_bench-c34e3e80738e1af8.rmeta: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/timing.rs

crates/bench/src/lib.rs:
crates/bench/src/experiments.rs:
crates/bench/src/timing.rs:
