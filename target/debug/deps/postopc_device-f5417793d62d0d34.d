/root/repo/target/debug/deps/postopc_device-f5417793d62d0d34.d: crates/device/src/lib.rs crates/device/src/error.rs crates/device/src/mosfet.rs crates/device/src/params.rs crates/device/src/rc.rs crates/device/src/slices.rs

/root/repo/target/debug/deps/postopc_device-f5417793d62d0d34: crates/device/src/lib.rs crates/device/src/error.rs crates/device/src/mosfet.rs crates/device/src/params.rs crates/device/src/rc.rs crates/device/src/slices.rs

crates/device/src/lib.rs:
crates/device/src/error.rs:
crates/device/src/mosfet.rs:
crates/device/src/params.rs:
crates/device/src/rc.rs:
crates/device/src/slices.rs:
