//! Benchmarks extraction scaling with design size (experiment T9) and the
//! STA engine itself — including the parallel/cached engine configurations
//! the T9 table reports.
//!
//! Uses the in-tree timing harness (`postopc_bench::timing`); criterion is
//! not available offline. Alongside the human table, the engine comparison
//! is written to `BENCH_extract.json` in the same schema the `repro -- t9`
//! run emits, so perf trajectories can be diffed by tooling.

use postopc::{extract_gates, ExtractionConfig, OpcMode, TagSet};
use postopc_bench::json::{write_engine_rows, EngineBenchRow};
use postopc_bench::timing::{bench, render_bench_table};
use postopc_device::ProcessParams;
use postopc_layout::{generate, Design, TechRules};
use postopc_sta::TimingModel;

fn main() {
    let engines: Vec<(&str, ExtractionConfig)> = vec![
        ("serial_nocache", {
            let mut c = ExtractionConfig::standard();
            c.opc_mode = OpcMode::Rule;
            c.cache = false;
            c.threads = Some(1);
            c
        }),
        ("cached", {
            let mut c = ExtractionConfig::standard();
            c.opc_mode = OpcMode::Rule;
            c.threads = Some(1);
            c
        }),
        ("cached_pool", {
            let mut c = ExtractionConfig::standard();
            c.opc_mode = OpcMode::Rule;
            c.threads = None; // all cores
            c
        }),
    ];
    let mut extraction = Vec::new();
    let mut rows: Vec<EngineBenchRow> = Vec::new();
    for gates in [4usize, 8, 16] {
        let design = Design::compile(
            generate::inverter_chain(gates).expect("netlist"),
            TechRules::n90(),
        )
        .expect("design");
        let tags = TagSet::all(&design);
        let mut baseline_s = 0.0;
        for (i, (label, cfg)) in engines.iter().enumerate() {
            let out = extract_gates(&design, cfg, &tags).expect("extraction");
            let stats = bench(5, || {
                extract_gates(&design, cfg, &tags).expect("extraction")
            });
            if i == 0 {
                baseline_s = stats.best_s;
            }
            extraction.push((format!("rule_full/{gates}/{label}"), stats));
            rows.push(EngineBenchRow {
                design: format!("inverter chain {gates}"),
                engine: (*label).to_string(),
                windows: out.stats.windows,
                hits: out.stats.cache_hits,
                hit_rate: out.stats.cache_hit_rate(),
                surrogate_hits: out.stats.surrogate_hits,
                surrogate_fallbacks: out.stats.surrogate_fallbacks,
                wall_s: stats.best_s,
                speedup: baseline_s / stats.best_s.max(1e-9),
            });
        }
    }
    print!("{}", render_bench_table("extraction", &extraction));
    let path = std::path::Path::new("BENCH_extract.json");
    let threads = postopc_parallel::effective_threads(None);
    match write_engine_rows(path, threads, &rows) {
        Ok(()) => println!("[flow_scaling wrote {}]", path.display()),
        Err(e) => eprintln!("[flow_scaling could not write {}: {e}]", path.display()),
    }

    let design = Design::compile(
        generate::paper_testcase(11).expect("netlist"),
        TechRules::n90(),
    )
    .expect("design");
    let model = TimingModel::new(&design, ProcessParams::n90(), 1000.0).expect("model");
    let sta = vec![(
        "analyze_550_gates".to_string(),
        bench(10, || model.analyze(None).expect("analysis")),
    )];
    print!("{}", render_bench_table("sta", &sta));
}
