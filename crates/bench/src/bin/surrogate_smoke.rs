//! CI gates for the learned CD surrogate (`scripts/check.sh` stage
//! `surrogate`). Exits 1 when any invariant breaks:
//!
//! 1. **In-distribution parity** — on the dense shuffled speed-path farm
//!    (the diverse-context T9 workload) the surrogate must actually serve
//!    contexts, and every annotated CD must stay within
//!    [`PARITY_TOL_NM`] of the pure-SOCS truth (the audit residual the
//!    engine reports must agree).
//! 2. **Determinism** — the surrogate run is bit-identical whether the
//!    worker pool runs serial or wide (round-based training makes the
//!    training stream a function of key order, not scheduling).
//! 3. **Out-of-distribution fallback** — a model trained on a uniform
//!    inverter farm must refuse to predict on an unrelated adder layout:
//!    100% of its unique contexts fall back to real simulation.
//! 4. **Speedup floor** — the surrogate run must beat the serial no-cache
//!    baseline by at least [`SPEEDUP_FLOOR`]× on the shuffled farm.
//!
//! With `--model FILE` (a `POCSURR1` file from `surrogate_train`), the
//! pretrained model additionally seeds a farm run that must hit at least
//! as often as the online-trained run while holding the same parity.

use postopc::{
    extract_gates, extract_gates_with_caches, ExtractionConfig, ExtractionOutcome, OpcMode,
    SurrogateConfig, TagSet,
};
use postopc_bench::OrExit;
use postopc_layout::{generate, Design, PlacementOptions, TechRules};
use postopc_litho::SurrogateModel;

/// Worst tolerated |surrogate − SOCS| per annotated channel length, nm.
/// Audited residuals run ~0.01 nm; a model predicting physics it never
/// saw lands far above this.
const PARITY_TOL_NM: f64 = 1.0;

/// Fresh surrogate-vs-baseline wall-time floor on the shuffled farm. The
/// recorded speedup in `BENCH_extract.json` is gated separately (and
/// tighter) by `perf_smoke --bench-regression`; this absolute floor keeps
/// the smoke meaningful on any machine.
const SPEEDUP_FLOOR: f64 = 3.0;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let model_path = args
        .iter()
        .position(|a| a == "--model")
        .and_then(|i| args.get(i + 1))
        .cloned();
    if args
        .iter()
        .any(|a| a != "--model" && Some(a) != model_path.as_ref())
    {
        eprintln!("surrogate_smoke: unknown arguments {args:?} (expected [--model FILE])");
        std::process::exit(1);
    }
    if gates(model_path.as_deref()) {
        std::process::exit(1);
    }
}

/// Compiles a dense (100% utilization) design — the placement the T9
/// benchmark rows use.
fn dense(netlist: postopc_layout::Netlist) -> Design {
    Design::compile_with(
        netlist,
        TechRules::n90(),
        &PlacementOptions {
            utilization: 1.0,
            seed: 11,
        },
    )
    .or_exit("design compiles")
}

/// Worst |Δl| over all annotated channel lengths between two outcomes of
/// the same design, nm.
fn worst_cd_delta_nm(truth: &ExtractionOutcome, fast: &ExtractionOutcome) -> f64 {
    let mut worst: f64 = 0.0;
    for (gate, t_ann) in truth.annotation.gates() {
        let f_ann = fast
            .annotation
            .gate(*gate)
            .or_exit("both runs annotate the same gates");
        for (t, f) in t_ann.transistors.iter().zip(&f_ann.transistors) {
            worst = worst
                .max((t.l_delay_nm - f.l_delay_nm).abs())
                .max((t.l_leakage_nm - f.l_leakage_nm).abs());
        }
    }
    worst
}

/// Runs every gate; returns `true` on failure.
fn gates(model_path: Option<&str>) -> bool {
    let mut failed = false;
    let farm = dense(generate::speed_path_farm(20, 24, 11).or_exit("farm generates"));
    let farm_tags = TagSet::all(&farm);

    // Serial no-cache baseline: the denominator of the speedup gate and
    // the honest cost of what the surrogate replaces.
    let mut baseline_cfg = ExtractionConfig::standard();
    baseline_cfg.opc_mode = OpcMode::Rule;
    baseline_cfg.cache = false;
    baseline_cfg.threads = Some(1);
    let (_, baseline_s) = postopc_bench::timing::time(|| {
        extract_gates(&farm, &baseline_cfg, &farm_tags).or_exit("baseline extraction")
    });

    // Pure-SOCS truth (cache + pool, no surrogate) for the parity gates.
    let mut truth_cfg = ExtractionConfig::standard();
    truth_cfg.opc_mode = OpcMode::Rule;
    let truth = extract_gates(&farm, &truth_cfg, &farm_tags).or_exit("truth extraction");

    // Gate 1+4: the surrogate run — serves contexts, tracks truth, beats
    // the baseline.
    let mut surrogate_cfg = truth_cfg.clone();
    surrogate_cfg.surrogate = SurrogateConfig::standard();
    let (fast, fast_s) = postopc_bench::timing::time(|| {
        extract_gates(&farm, &surrogate_cfg, &farm_tags).or_exit("surrogate extraction")
    });
    let speedup = baseline_s / fast_s.max(1e-9);
    println!(
        "surrogate_smoke: shuffled farm 20x24: baseline {baseline_s:.2} s, surrogate {fast_s:.2} s \
         ({speedup:.1}x), {} predicted / {} fell back of {} unique contexts",
        fast.stats.surrogate_hits,
        fast.stats.surrogate_fallbacks,
        fast.stats.surrogate_hits + fast.stats.windows,
    );
    if fast.stats.surrogate_hits == 0 {
        eprintln!("surrogate_smoke: FAIL - surrogate served no contexts on its home workload");
        failed = true;
    }
    let worst = worst_cd_delta_nm(&truth, &fast);
    println!(
        "surrogate_smoke: parity: worst CD delta {worst:.3} nm, max audited residual {:.3} nm \
         (tolerance {PARITY_TOL_NM} nm)",
        fast.stats.surrogate_max_residual_nm,
    );
    if worst > PARITY_TOL_NM || fast.stats.surrogate_max_residual_nm > PARITY_TOL_NM {
        eprintln!("surrogate_smoke: FAIL - surrogate CDs drifted past {PARITY_TOL_NM} nm of SOCS");
        failed = true;
    }
    if speedup < SPEEDUP_FLOOR {
        eprintln!(
            "surrogate_smoke: FAIL - surrogate speedup {speedup:.1}x below the {SPEEDUP_FLOOR}x floor"
        );
        failed = true;
    }

    // Gate 2: scheduling must not touch the result — serial vs pooled
    // surrogate runs are bit-identical (stats included).
    let mut serial_cfg = surrogate_cfg.clone();
    serial_cfg.threads = Some(1);
    let serial = extract_gates(&farm, &serial_cfg, &farm_tags).or_exit("serial surrogate");
    if serial != fast {
        eprintln!("surrogate_smoke: FAIL - surrogate outcome differs between serial and pool");
        failed = true;
    } else {
        println!("surrogate_smoke: PASS - surrogate run bit-identical serial vs pooled");
    }

    // Gate 3: a model trained only on the uniform inverter farm must
    // decline every context of an unrelated adder layout. One giant
    // round freezes the decisions on the pretrained state, so online
    // training cannot quietly pull the layout in-distribution mid-run.
    let chain = dense(generate::inverter_chain(240).or_exit("chain generates"));
    let mut train_cfg = ExtractionConfig::standard();
    train_cfg.opc_mode = OpcMode::Rule;
    train_cfg.surrogate = SurrogateConfig {
        min_train: usize::MAX,
        ..SurrogateConfig::standard()
    };
    let mut chain_model = train_cfg.surrogate.fresh_model();
    extract_gates_with_caches(
        &chain,
        &train_cfg,
        &TagSet::all(&chain),
        None,
        Some(&mut chain_model),
    )
    .or_exit("chain training run");
    let ood_design = Design::compile(
        generate::ripple_carry_adder(4).or_exit("adder generates"),
        TechRules::n90(),
    )
    .or_exit("adder compiles");
    let mut ood_cfg = ExtractionConfig::standard();
    ood_cfg.opc_mode = OpcMode::Rule;
    ood_cfg.surrogate = SurrogateConfig {
        min_train: 8,
        round: usize::MAX,
        pretrained: Some(chain_model),
        ..SurrogateConfig::standard()
    };
    let ood =
        extract_gates(&ood_design, &ood_cfg, &TagSet::all(&ood_design)).or_exit("OOD extraction");
    println!(
        "surrogate_smoke: OOD adder: {} predicted, {} of {} unique contexts fell back",
        ood.stats.surrogate_hits, ood.stats.surrogate_fallbacks, ood.stats.windows,
    );
    if ood.stats.surrogate_hits != 0 || ood.stats.surrogate_fallbacks != ood.stats.windows {
        eprintln!(
            "surrogate_smoke: FAIL - leverage gate let an out-of-distribution context through"
        );
        failed = true;
    } else {
        println!("surrogate_smoke: PASS - 100% fallback on the out-of-distribution layout");
    }

    // Optional gate 5: a pretrained model from `surrogate_train` must
    // load, serve at least as much as online training from scratch, and
    // hold the same parity.
    if let Some(path) = model_path {
        let bytes = match std::fs::read(path) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("surrogate_smoke: FAIL - cannot read model {path:?}: {e}");
                return true;
            }
        };
        let model = match SurrogateModel::from_file_bytes(&bytes) {
            Ok(m) => m,
            Err(e) => {
                eprintln!("surrogate_smoke: FAIL - bad model file {path:?}: {e}");
                return true;
            }
        };
        let mut pre_cfg = surrogate_cfg.clone();
        pre_cfg.surrogate.pretrained = Some(model);
        let pre = extract_gates(&farm, &pre_cfg, &farm_tags).or_exit("pretrained extraction");
        let pre_worst = worst_cd_delta_nm(&truth, &pre);
        println!(
            "surrogate_smoke: pretrained: {} predicted (online run: {}), worst CD delta {pre_worst:.3} nm",
            pre.stats.surrogate_hits, fast.stats.surrogate_hits,
        );
        if pre.stats.surrogate_hits < fast.stats.surrogate_hits || pre_worst > PARITY_TOL_NM {
            eprintln!("surrogate_smoke: FAIL - pretrained model underperforms online training");
            failed = true;
        } else {
            println!("surrogate_smoke: PASS - pretrained model serves warm and tracks truth");
        }
    }

    if !failed {
        println!("surrogate_smoke: PASS - all surrogate gates held");
    }
    failed
}
