/root/repo/target/release/deps/ablations-e27abd48bc1ef0a6.d: crates/bench/benches/ablations.rs

/root/repo/target/release/deps/ablations-e27abd48bc1ef0a6: crates/bench/benches/ablations.rs

crates/bench/benches/ablations.rs:
