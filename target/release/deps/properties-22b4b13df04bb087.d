/root/repo/target/release/deps/properties-22b4b13df04bb087.d: crates/device/tests/properties.rs Cargo.toml

/root/repo/target/release/deps/libproperties-22b4b13df04bb087.rmeta: crates/device/tests/properties.rs Cargo.toml

crates/device/tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
