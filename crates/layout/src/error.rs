//! Error types for layout and netlist construction.

use std::error::Error;
use std::fmt;

/// Errors produced by netlist validation, placement and routing.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum LayoutError {
    /// A net has no driver or more than one driver.
    DriverConflict {
        /// Net name.
        net: String,
        /// Number of drivers found.
        drivers: usize,
    },
    /// A gate has the wrong number of input connections for its kind.
    ArityMismatch {
        /// Gate name.
        gate: String,
        /// Expected input count.
        expected: usize,
        /// Actual input count.
        actual: usize,
    },
    /// The combinational portion of the netlist contains a cycle.
    CombinationalLoop {
        /// A gate on the cycle.
        gate: String,
    },
    /// A referenced id does not exist.
    UnknownId {
        /// What kind of id (`"net"`, `"gate"`, `"cell"`).
        kind: &'static str,
        /// The offending index.
        index: usize,
    },
    /// The design is empty (nothing to place).
    EmptyDesign,
    /// Geometry construction failed while generating cell layouts.
    Geometry(postopc_geom::GeomError),
    /// Stream I/O failed while reading or writing a layout.
    Io(String),
    /// A layout stream was malformed.
    Parse {
        /// 1-based line number of the offending record.
        line: usize,
        /// Human-readable reason.
        reason: String,
    },
}

impl fmt::Display for LayoutError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LayoutError::DriverConflict { net, drivers } => {
                write!(f, "net {net} has {drivers} drivers, expected exactly 1")
            }
            LayoutError::ArityMismatch {
                gate,
                expected,
                actual,
            } => write!(f, "gate {gate} expects {expected} inputs, got {actual}"),
            LayoutError::CombinationalLoop { gate } => {
                write!(f, "combinational loop through gate {gate}")
            }
            LayoutError::UnknownId { kind, index } => {
                write!(f, "unknown {kind} id {index}")
            }
            LayoutError::EmptyDesign => write!(f, "design contains no gates"),
            LayoutError::Geometry(e) => write!(f, "geometry error: {e}"),
            LayoutError::Io(reason) => write!(f, "layout stream i/o failed: {reason}"),
            LayoutError::Parse { line, reason } => {
                write!(f, "malformed layout stream at line {line}: {reason}")
            }
        }
    }
}

impl Error for LayoutError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            LayoutError::Geometry(e) => Some(e),
            _ => None,
        }
    }
}

impl From<postopc_geom::GeomError> for LayoutError {
    fn from(e: postopc_geom::GeomError) -> Self {
        LayoutError::Geometry(e)
    }
}

/// Convenience result alias for the layout crate.
pub type Result<T> = std::result::Result<T, LayoutError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = LayoutError::DriverConflict {
            net: "n42".into(),
            drivers: 2,
        };
        assert!(e.to_string().contains("n42"));
        let g = LayoutError::Geometry(postopc_geom::GeomError::InvalidResolution(0.0));
        assert!(g.source().is_some());
    }
}
