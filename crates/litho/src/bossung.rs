//! Bossung-curve analysis: quadratic CD(focus) fits per dose and the
//! isofocal point.
//!
//! A focus-exposure matrix becomes actionable through its Bossung fit:
//! the curvature tells how fast CD walks through focus, the best-focus
//! vertex locates the tool offset, and the isofocal dose (where the
//! curvature vanishes) is the exposure at which the feature is most
//! robust to focus errors.

use crate::fem::FocusExposureMatrix;

/// A quadratic fit `CD(f) = a·f² + b·f + c` for one dose row.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BossungCurve {
    /// Dose of this row.
    pub dose: f64,
    /// Quadratic coefficient in nm / nm² (focus curvature).
    pub a: f64,
    /// Linear coefficient in nm / nm (tilt; 0 for a symmetric process).
    pub b: f64,
    /// CD at zero focus, in nm.
    pub c: f64,
}

impl BossungCurve {
    /// The fitted CD at a focus value.
    pub fn cd_at(&self, focus_nm: f64) -> f64 {
        self.a * focus_nm * focus_nm + self.b * focus_nm + self.c
    }

    /// The focus of the curve's vertex (best focus), in nm; `None` for a
    /// flat (a ≈ 0) curve.
    pub fn best_focus_nm(&self) -> Option<f64> {
        (self.a.abs() > 1e-12).then(|| -self.b / (2.0 * self.a))
    }
}

/// Fits one Bossung curve per dose row of a FEM by least squares.
///
/// Rows with fewer than three printable cells are skipped (a quadratic
/// needs three points).
pub fn fit_bossung(fem: &FocusExposureMatrix) -> Vec<BossungCurve> {
    let mut curves = Vec::new();
    for (di, &dose) in fem.dose_values().iter().enumerate() {
        let samples: Vec<(f64, f64)> = fem
            .focus_values()
            .iter()
            .enumerate()
            .filter_map(|(fi, &f)| fem.at(fi, di).map(|cd| (f, cd)))
            .collect();
        if samples.len() < 3 {
            continue;
        }
        if let Some((a, b, c)) = quadratic_least_squares(&samples) {
            curves.push(BossungCurve { dose, a, b, c });
        }
    }
    curves
}

/// The isofocal dose: the dose at which the fitted focus curvature
/// crosses zero (interpolated between the two bracketing rows), or `None`
/// if all curvatures share a sign.
pub fn isofocal_dose(curves: &[BossungCurve]) -> Option<f64> {
    for pair in curves.windows(2) {
        let (lo, hi) = (&pair[0], &pair[1]);
        if lo.a == 0.0 {
            return Some(lo.dose);
        }
        if lo.a * hi.a < 0.0 {
            let t = lo.a / (lo.a - hi.a);
            return Some(lo.dose + t * (hi.dose - lo.dose));
        }
    }
    curves.last().and_then(|c| (c.a == 0.0).then_some(c.dose))
}

/// Least-squares quadratic through `(x, y)` samples via the 3×3 normal
/// equations; `None` if the system is singular (all x identical).
fn quadratic_least_squares(samples: &[(f64, f64)]) -> Option<(f64, f64, f64)> {
    let n = samples.len() as f64;
    let (mut sx, mut sx2, mut sx3, mut sx4) = (0.0, 0.0, 0.0, 0.0);
    let (mut sy, mut sxy, mut sx2y) = (0.0, 0.0, 0.0);
    for &(x, y) in samples {
        let x2 = x * x;
        sx += x;
        sx2 += x2;
        sx3 += x2 * x;
        sx4 += x2 * x2;
        sy += y;
        sxy += x * y;
        sx2y += x2 * y;
    }
    // Solve [sx4 sx3 sx2; sx3 sx2 sx; sx2 sx n] [a b c]^T = [sx2y sxy sy]^T.
    let m = [[sx4, sx3, sx2], [sx3, sx2, sx], [sx2, sx, n]];
    let rhs = [sx2y, sxy, sy];
    solve3(m, rhs)
}

/// Solves a 3×3 linear system by Gaussian elimination with partial
/// pivoting; `None` if singular.
fn solve3(mut m: [[f64; 3]; 3], mut rhs: [f64; 3]) -> Option<(f64, f64, f64)> {
    for col in 0..3 {
        let pivot = (col..3).max_by(|&a, &b| m[a][col].abs().total_cmp(&m[b][col].abs()))?;
        if m[pivot][col].abs() < 1e-12 {
            return None;
        }
        m.swap(col, pivot);
        rhs.swap(col, pivot);
        let pivot_row = m[col];
        for row in (col + 1)..3 {
            let factor = m[row][col] / pivot_row[col];
            for (k, &p) in pivot_row.iter().enumerate().skip(col) {
                m[row][k] -= factor * p;
            }
            rhs[row] -= factor * rhs[col];
        }
    }
    let c = rhs[2] / m[2][2];
    let b = (rhs[1] - m[1][2] * c) / m[1][1];
    let a = (rhs[0] - m[0][1] * b - m[0][2] * c) / m[0][0];
    Some((a, b, c))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fem::FocusExposureMatrix;
    use crate::optics::ProcessConditions;

    /// Synthetic FEM with known quadratic structure: curvature flips sign
    /// at dose 1.0 (the isofocal dose).
    fn synthetic_fem() -> FocusExposureMatrix {
        FocusExposureMatrix::sweep(
            vec![-150.0, -75.0, 0.0, 75.0, 150.0],
            vec![0.94, 1.0, 1.06],
            |c: &ProcessConditions| {
                let a = (c.dose - 1.0) * 0.002; // curvature ∝ dose offset
                Ok(90.0 + 10.0 * (c.dose - 1.0) + a * c.focus_nm * c.focus_nm)
            },
        )
        .expect("sweep")
    }

    #[test]
    fn fit_recovers_known_coefficients() {
        let curves = fit_bossung(&synthetic_fem());
        assert_eq!(curves.len(), 3);
        let under = &curves[0]; // dose 0.94: a = -0.00012
        assert!((under.a - (-0.00012)).abs() < 1e-9, "a = {}", under.a);
        assert!(under.b.abs() < 1e-9);
        assert!((under.c - 89.4).abs() < 1e-6);
        assert!((under.cd_at(100.0) - (89.4 - 1.2)).abs() < 1e-6);
        // Symmetric curves have their vertex at zero focus.
        assert!(under.best_focus_nm().expect("curved").abs() < 1e-6);
    }

    #[test]
    fn isofocal_dose_found_by_interpolation() {
        let curves = fit_bossung(&synthetic_fem());
        let iso = isofocal_dose(&curves).expect("sign change");
        assert!((iso - 1.0).abs() < 1e-6, "isofocal at {iso}");
    }

    #[test]
    fn no_isofocal_when_curvature_keeps_sign() {
        let fem = FocusExposureMatrix::sweep(
            vec![-100.0, 0.0, 100.0],
            vec![0.95, 1.05],
            |c: &ProcessConditions| Ok(90.0 + 0.0002 * c.focus_nm * c.focus_nm + c.dose),
        )
        .expect("sweep");
        let curves = fit_bossung(&fem);
        assert_eq!(curves.len(), 2);
        assert!(isofocal_dose(&curves).is_none());
    }

    #[test]
    fn flat_curve_has_no_best_focus() {
        let flat = BossungCurve {
            dose: 1.0,
            a: 0.0,
            b: 0.0,
            c: 90.0,
        };
        assert!(flat.best_focus_nm().is_none());
        assert_eq!(flat.cd_at(123.0), 90.0);
    }

    #[test]
    fn real_fem_fits_a_bowl() {
        use crate::cutline;
        use crate::image::{AerialImage, SimulationSpec};
        use crate::resist::ResistModel;
        use postopc_geom::{Polygon, Rect};
        let line = Polygon::from(Rect::new(-45, -600, 45, 600).expect("rect"));
        let window = Rect::new(-300, -300, 300, 300).expect("rect");
        let resist = ResistModel::standard();
        let fem = FocusExposureMatrix::sweep(
            vec![-150.0, -75.0, 0.0, 75.0, 150.0],
            vec![1.0],
            |c: &ProcessConditions| {
                let spec = SimulationSpec::nominal().with_conditions(*c);
                let image = AerialImage::simulate(&spec, std::slice::from_ref(&line), window)?;
                cutline::measure_cd(&image, &resist, (0.0, 0.0), (1.0, 0.0), 150.0)
            },
        )
        .expect("sweep");
        let curves = fit_bossung(&fem);
        assert_eq!(curves.len(), 1);
        // Our imaging model thins lines through focus: negative curvature,
        // vertex near best focus.
        assert!(curves[0].a < 0.0, "curvature {}", curves[0].a);
        assert!(curves[0].best_focus_nm().expect("curved").abs() < 40.0);
    }
}
