/root/repo/target/debug/deps/postopc_rng-94c84ef9191d5c74.d: crates/rng/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libpostopc_rng-94c84ef9191d5c74.rmeta: crates/rng/src/lib.rs Cargo.toml

crates/rng/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
