//! Technology rules of the simplified 90 nm-class process.

use postopc_geom::Coord;

/// Geometric design rules and standard-cell template dimensions, in nm.
///
/// These numbers define the generated layouts; they are chosen to match a
/// 90 nm logic process (drawn gate length 90 nm, contacted poly pitch
/// 280 nm, M1 half-pitch 120 nm) so that the lithography simulator operates
/// at the k₁ ≈ 0.35 regime the paper targets.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TechRules {
    /// Drawn transistor gate length (poly width over active).
    pub gate_length: Coord,
    /// Poly line width outside the channel (field poly).
    pub poly_width: Coord,
    /// Contacted poly pitch (gate-to-gate spacing within a cell).
    pub poly_pitch: Coord,
    /// Poly endcap extension past active.
    pub poly_endcap: Coord,
    /// Contact cut size (square).
    pub contact_size: Coord,
    /// Minimum metal-1 width.
    pub m1_width: Coord,
    /// Minimum metal-1 spacing.
    pub m1_space: Coord,
    /// Metal-2 width.
    pub m2_width: Coord,
    /// Routing track pitch for both metals.
    pub track_pitch: Coord,
    /// Standard-cell height (a multiple of the track pitch).
    pub cell_height: Coord,
    /// NMOS active width for a 1× cell.
    pub nmos_width_x1: Coord,
    /// PMOS active width for a 1× cell.
    pub pmos_width_x1: Coord,
    /// Gap between NMOS and PMOS active regions.
    pub active_gap: Coord,
    /// Margin from the active region to the cell boundary.
    pub active_margin: Coord,
}

impl TechRules {
    /// The 90 nm-class rule set used throughout the reproduction.
    pub fn n90() -> TechRules {
        TechRules {
            gate_length: 90,
            poly_width: 90,
            poly_pitch: 280,
            poly_endcap: 130,
            contact_size: 120,
            m1_width: 120,
            m1_space: 120,
            m2_width: 140,
            track_pitch: 240,
            cell_height: 2640, // 11 tracks
            nmos_width_x1: 420,
            pmos_width_x1: 640,
            active_gap: 460,
            active_margin: 280,
        }
    }

    /// NMOS width for a given drive strength multiplier.
    pub fn nmos_width(&self, drive: Drive) -> Coord {
        self.nmos_width_x1 * drive.factor()
    }

    /// PMOS width for a given drive strength multiplier.
    pub fn pmos_width(&self, drive: Drive) -> Coord {
        self.pmos_width_x1 * drive.factor()
    }
}

impl Default for TechRules {
    fn default() -> Self {
        TechRules::n90()
    }
}

/// Standard-cell drive strength.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub enum Drive {
    /// Unit drive.
    #[default]
    X1,
    /// Double drive.
    X2,
    /// Quadruple drive.
    X4,
}

impl Drive {
    /// All drive strengths, weakest first.
    pub const ALL: [Drive; 3] = [Drive::X1, Drive::X2, Drive::X4];

    /// Width multiplier relative to the 1× cell.
    pub fn factor(self) -> Coord {
        match self {
            Drive::X1 => 1,
            Drive::X2 => 2,
            Drive::X4 => 4,
        }
    }
}

impl std::fmt::Display for Drive {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Drive::X1 => f.write_str("X1"),
            Drive::X2 => f.write_str("X2"),
            Drive::X4 => f.write_str("X4"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn n90_dimensions_are_consistent() {
        let t = TechRules::n90();
        assert_eq!(t.gate_length, 90);
        assert!(t.poly_pitch > t.poly_width + t.contact_size);
        assert_eq!(t.cell_height % t.track_pitch, 0);
        // The actives, gap, and margins must fit inside the cell height.
        assert!(
            t.nmos_width_x1 + t.pmos_width_x1 + t.active_gap + 2 * t.active_margin <= t.cell_height
        );
    }

    #[test]
    fn drive_factors() {
        let t = TechRules::n90();
        assert_eq!(t.nmos_width(Drive::X2), 2 * t.nmos_width_x1);
        assert_eq!(t.pmos_width(Drive::X4), 4 * t.pmos_width_x1);
        assert_eq!(Drive::X1.to_string(), "X1");
    }
}
