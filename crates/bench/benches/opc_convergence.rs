//! Benchmarks the model-OPC feedback loop: cost per iteration count on a
//! dense three-line pattern (backs experiment T1 and DESIGN ablation #3).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use postopc_geom::{Polygon, Rect};
use postopc_opc::{model, ModelOpcConfig};

fn targets() -> Vec<Polygon> {
    vec![
        Polygon::from(Rect::new(-45, -300, 45, 300).expect("rect")),
        Polygon::from(Rect::new(-325, -300, -235, 300).expect("rect")),
        Polygon::from(Rect::new(235, -300, 325, 300).expect("rect")),
    ]
}

fn bench_opc_convergence(c: &mut Criterion) {
    let window = Rect::new(-450, -450, 450, 450).expect("rect");
    let targets = targets();
    let mut group = c.benchmark_group("model_opc");
    group.sample_size(10);
    for iterations in [1usize, 3, 6] {
        group.bench_with_input(
            BenchmarkId::new("iterations", iterations),
            &iterations,
            |b, &iters| {
                let cfg = ModelOpcConfig {
                    iterations: iters,
                    ..ModelOpcConfig::standard()
                };
                b.iter(|| {
                    model::correct(&cfg, std::hint::black_box(&targets), &[], window)
                        .expect("opc converges")
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_opc_convergence);
criterion_main!(benches);
