//! Ablation benches for the design choices called out in DESIGN.md:
//! kernel stack vs single Gaussian, and slice-based equivalent length vs
//! single mid-gate CD.

use criterion::{criterion_group, criterion_main, Criterion};
use postopc_device::{GateSlice, MosKind, Mosfet, ProcessParams, SlicedGate};
use postopc_geom::{Polygon, Rect};
use postopc_litho::{AerialImage, KernelMode, SimulationSpec};

fn bench_kernel_stack(c: &mut Criterion) {
    let mask: Vec<Polygon> = (0..5)
        .map(|i| Polygon::from(Rect::new(i * 280, -600, i * 280 + 90, 600).expect("rect")))
        .collect();
    let window = Rect::new(-300, -700, 1500, 700).expect("rect");
    let mut group = c.benchmark_group("imaging");
    group.sample_size(10);
    for (name, mode) in [
        ("center_surround", KernelMode::CenterSurround),
        ("single_gaussian", KernelMode::SingleGaussian),
    ] {
        let spec = SimulationSpec {
            kernel_mode: mode,
            ..SimulationSpec::nominal()
        };
        group.bench_function(name, |b| {
            b.iter(|| AerialImage::simulate(&spec, std::hint::black_box(&mask), window).expect("image"));
        });
    }
    group.finish();
}

fn bench_equivalent_length(c: &mut Criterion) {
    let process = ProcessParams::n90();
    let slices: Vec<GateSlice> = (0..8)
        .map(|i| GateSlice {
            w_nm: 52.5,
            l_nm: 86.0 + i as f64,
        })
        .collect();
    let gate = SlicedGate::new(MosKind::Nmos, slices).expect("gate");
    let mut group = c.benchmark_group("equivalent_length");
    group.bench_function("slice_bisection", |b| {
        b.iter(|| gate.equivalent(std::hint::black_box(&process)).expect("converges"));
    });
    group.bench_function("mid_cd_single_eval", |b| {
        b.iter(|| {
            Mosfet::new(MosKind::Nmos, 420.0, std::hint::black_box(89.5))
                .expect("device")
                .i_on(&process)
        });
    });
    group.finish();
}

criterion_group!(benches, bench_kernel_stack, bench_equivalent_length);
criterion_main!(benches);
