/root/repo/target/debug/deps/postopc_sta-1379e7574f6a7d58.d: crates/sta/src/lib.rs crates/sta/src/annotate.rs crates/sta/src/corners.rs crates/sta/src/error.rs crates/sta/src/graph.rs crates/sta/src/liberty.rs crates/sta/src/paths.rs crates/sta/src/statistical.rs

/root/repo/target/debug/deps/postopc_sta-1379e7574f6a7d58: crates/sta/src/lib.rs crates/sta/src/annotate.rs crates/sta/src/corners.rs crates/sta/src/error.rs crates/sta/src/graph.rs crates/sta/src/liberty.rs crates/sta/src/paths.rs crates/sta/src/statistical.rs

crates/sta/src/lib.rs:
crates/sta/src/annotate.rs:
crates/sta/src/corners.rs:
crates/sta/src/error.rs:
crates/sta/src/graph.rs:
crates/sta/src/liberty.rs:
crates/sta/src/paths.rs:
crates/sta/src/statistical.rs:
