/root/repo/target/release/examples/process_window-e47c25d0f9465372.d: examples/process_window.rs Cargo.toml

/root/repo/target/release/examples/libprocess_window-e47c25d0f9465372.rmeta: examples/process_window.rs Cargo.toml

examples/process_window.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
