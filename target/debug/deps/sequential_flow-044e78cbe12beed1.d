/root/repo/target/debug/deps/sequential_flow-044e78cbe12beed1.d: tests/sequential_flow.rs

/root/repo/target/debug/deps/sequential_flow-044e78cbe12beed1: tests/sequential_flow.rs

tests/sequential_flow.rs:
