/root/repo/target/debug/deps/postopc_parallel-60980d0d6419309d.d: crates/parallel/src/lib.rs

/root/repo/target/debug/deps/postopc_parallel-60980d0d6419309d: crates/parallel/src/lib.rs

crates/parallel/src/lib.rs:
