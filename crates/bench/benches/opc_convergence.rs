//! Benchmarks the model-OPC feedback loop: cost per iteration count on a
//! dense three-line pattern (backs experiment T1 and DESIGN ablation #3).
//!
//! Uses the in-tree timing harness (`postopc_bench::timing`); criterion is
//! not available offline.

use postopc_bench::timing::{bench, render_bench_table};
use postopc_geom::{Polygon, Rect};
use postopc_opc::{model, ModelOpcConfig};

fn targets() -> Vec<Polygon> {
    vec![
        Polygon::from(Rect::new(-45, -300, 45, 300).expect("rect")),
        Polygon::from(Rect::new(-325, -300, -235, 300).expect("rect")),
        Polygon::from(Rect::new(235, -300, 325, 300).expect("rect")),
    ]
}

fn main() {
    let window = Rect::new(-450, -450, 450, 450).expect("rect");
    let targets = targets();
    let mut entries = Vec::new();
    for iterations in [1usize, 3, 6] {
        let cfg = ModelOpcConfig {
            iterations,
            ..ModelOpcConfig::standard()
        };
        let stats = bench(10, || {
            model::correct(&cfg, std::hint::black_box(&targets), &[], window)
                .expect("opc converges")
        });
        entries.push((format!("iterations/{iterations}"), stats));
    }
    print!("{}", render_bench_table("model_opc", &entries));
}
