/root/repo/target/release/deps/postopc-02d69e864dc02ead.d: crates/core/src/bin/postopc.rs Cargo.toml

/root/repo/target/release/deps/libpostopc-02d69e864dc02ead.rmeta: crates/core/src/bin/postopc.rs Cargo.toml

crates/core/src/bin/postopc.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
