//! Sort-once quantile estimation.
//!
//! One public home for the Hyndman–Fan type 7 estimator (the R/NumPy
//! default) that statistical timing consumers — the Monte Carlo result
//! ([`crate::MonteCarloResult`]), the convergence study behind the
//! `mc_batch` gate, and guardband sweeps — previously each re-derived.
//! The contract is *sort once, query many times*: callers build an
//! ascending view with [`sorted_ascending`] (or keep their own), then
//! issue O(1) [`quantile_of_sorted`] queries against it.

/// Returns a copy of `values` sorted ascending by [`f64::total_cmp`],
/// the view the `*_of_sorted` queries expect. Total ordering means NaNs
/// (if any leak in) land deterministically at the top instead of
/// poisoning the sort.
#[must_use]
pub fn sorted_ascending(values: &[f64]) -> Vec<f64> {
    let mut sorted = values.to_vec();
    sorted.sort_by(f64::total_cmp);
    sorted
}

/// The `q`-quantile (0..=1, clamped) of an ascending-sorted sample, by
/// linear interpolation between order statistics (Hyndman–Fan type 7):
/// with `n` sorted samples `x[0..n]`, the position is `h = (n - 1) q`
/// and the estimate `x[⌊h⌋] + (h - ⌊h⌋) · (x[⌊h⌋+1] - x[⌊h⌋])`.
/// `q = 0` and `q = 1` return the sample extremes exactly.
///
/// # Panics
///
/// Panics if `sorted` is empty — a quantile of nothing has no value.
#[must_use]
pub fn quantile_of_sorted(sorted: &[f64], q: f64) -> f64 {
    let n = sorted.len();
    let h = (n - 1) as f64 * q.clamp(0.0, 1.0);
    let lo = (h.floor() as usize).min(n - 1);
    let frac = h - lo as f64;
    if frac == 0.0 || lo + 1 >= n {
        sorted[lo]
    } else {
        sorted[lo] + frac * (sorted[lo + 1] - sorted[lo])
    }
}

/// [`quantile_of_sorted`] for several levels against one sorted view —
/// callers needing a quantile profile (e.g. guardband sweeps) issue one
/// call instead of re-sorting per level.
///
/// # Panics
///
/// Panics if `sorted` is empty.
#[must_use]
pub fn quantiles_of_sorted(sorted: &[f64], qs: &[f64]) -> Vec<f64> {
    qs.iter().map(|&q| quantile_of_sorted(sorted, q)).collect()
}

/// Sorts `(value, weight)` pairs ascending by value ([`f64::total_cmp`]),
/// the view the weighted quantile queries expect. The sort is stable, so
/// ties keep their input order and the result is deterministic.
///
/// # Panics
///
/// Panics if the slices differ in length.
#[must_use]
pub fn sorted_with_weights(values: &[f64], weights: &[f64]) -> (Vec<f64>, Vec<f64>) {
    assert_eq!(values.len(), weights.len(), "one weight per value");
    let mut order: Vec<usize> = (0..values.len()).collect();
    order.sort_by(|&a, &b| values[a].total_cmp(&values[b]));
    let sorted = order.iter().map(|&i| values[i]).collect();
    let w = order.iter().map(|&i| weights[i]).collect();
    (sorted, w)
}

/// The `q`-quantile (0..=1, clamped) of an ascending-sorted *weighted*
/// sample — the self-normalized estimator importance-sampled Monte Carlo
/// queries ([`crate::statistical::Sampling::TailIs`]).
///
/// Weights are normalized internally (`ŵᵢ = wᵢ / Σw`), then each sample
/// gets the type-7 plotting position
/// `pᵢ = Cᵢ₋₁ · n_eff / (n_eff − 1)` with `p₀ = 0`, where `Cᵢ₋₁` is the
/// cumulative normalized weight *before* sample `i` and
/// `n_eff = 1 / Σŵᵢ²` is the Kish effective sample size. The estimate
/// interpolates linearly between the bracketing positions and clamps to
/// the last value past the final position. At equal weights
/// `pᵢ = i / (n − 1)` exactly, so the estimator reduces to the
/// unweighted Hyndman–Fan type 7 of [`quantile_of_sorted`] (the
/// debiasing that fixes the small-`n` low bias of plain weighted-ECDF
/// inversion). Degenerate inputs fall back deterministically: a single
/// sample is every quantile, and `n_eff ≤ 1` (all mass on one sample)
/// answers with the weighted-ECDF inverse over the positive-weight
/// samples.
///
/// # Panics
///
/// Panics if the slices are empty or differ in length, if any weight is
/// negative or non-finite, or if the weights sum to zero.
#[must_use]
pub fn weighted_quantile_of_sorted(sorted: &[f64], weights: &[f64], q: f64) -> f64 {
    assert_eq!(sorted.len(), weights.len(), "one weight per value");
    let n = sorted.len();
    assert!(n > 0, "a quantile of nothing has no value");
    assert!(
        weights.iter().all(|w| w.is_finite() && *w >= 0.0),
        "weights must be finite and non-negative"
    );
    if n == 1 {
        return sorted[0];
    }
    let total: f64 = weights.iter().sum();
    assert!(total > 0.0, "weights must not sum to zero");
    let q = q.clamp(0.0, 1.0);
    let sum_sq: f64 = weights.iter().map(|w| (w / total) * (w / total)).sum();
    let n_eff = 1.0 / sum_sq;
    if n_eff <= 1.0 + 1e-12 {
        // All mass effectively on one sample: the interpolation scale
        // n_eff/(n_eff − 1) is unusable, so invert the weighted ECDF
        // over the samples that actually carry weight.
        let mut cum = 0.0;
        for (x, w) in sorted.iter().zip(weights) {
            if *w > 0.0 {
                cum += w / total;
                if cum >= q {
                    return *x;
                }
            }
        }
        return sorted[n - 1];
    }
    let scale = n_eff / (n_eff - 1.0);
    let mut prev_p = 0.0;
    let mut prev_x = sorted[0];
    let mut cum = 0.0;
    for i in 1..n {
        cum += weights[i - 1] / total;
        let p = cum * scale;
        let x = sorted[i];
        if q <= p {
            if p > prev_p {
                return prev_x + (q - prev_p) / (p - prev_p) * (x - prev_x);
            }
            // Zero-width segment (a zero-weight run): step to its end.
            return x;
        }
        prev_p = p;
        prev_x = x;
    }
    sorted[n - 1]
}

/// [`weighted_quantile_of_sorted`] for several levels against one sorted
/// weighted view.
///
/// # Panics
///
/// Panics as [`weighted_quantile_of_sorted`] does.
#[must_use]
pub fn weighted_quantiles_of_sorted(sorted: &[f64], weights: &[f64], qs: &[f64]) -> Vec<f64> {
    qs.iter()
        .map(|&q| weighted_quantile_of_sorted(sorted, weights, q))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interpolates_between_order_statistics() {
        // Hyndman–Fan type 7 on a known vector: n = 5, h = 4q.
        let sorted = [10.0, 20.0, 40.0, 80.0, 160.0];
        assert_eq!(quantile_of_sorted(&sorted, 0.0), 10.0);
        assert_eq!(quantile_of_sorted(&sorted, 0.25), 20.0);
        // h = 4 * 0.5 = 2 → exactly the middle order statistic.
        assert_eq!(quantile_of_sorted(&sorted, 0.5), 40.0);
        // h = 4 * 0.1 = 0.4 → 10 + 0.4 * (20 - 10).
        assert!((quantile_of_sorted(&sorted, 0.1) - 14.0).abs() < 1e-12);
        // h = 4 * 0.9 = 3.6 → 80 + 0.6 * (160 - 80).
        assert!((quantile_of_sorted(&sorted, 0.9) - 128.0).abs() < 1e-12);
        assert_eq!(quantile_of_sorted(&sorted, 1.0), 160.0);
        // Out-of-range quantiles clamp to the extremes.
        assert_eq!(quantile_of_sorted(&sorted, -0.5), 10.0);
        assert_eq!(quantile_of_sorted(&sorted, 1.5), 160.0);
    }

    #[test]
    fn single_sample_is_every_quantile() {
        let sorted = [7.5];
        for q in [0.0, 0.01, 0.5, 0.99, 1.0] {
            assert_eq!(quantile_of_sorted(&sorted, q), 7.5);
        }
    }

    #[test]
    fn sorted_ascending_orders_totally() {
        let sorted = sorted_ascending(&[3.0, -1.0, 2.0, -0.0, 0.0]);
        // total_cmp puts -0.0 before +0.0 deterministically.
        assert_eq!(sorted.len(), 5);
        assert_eq!(sorted[0], -1.0);
        assert!(sorted[1].is_sign_negative() && sorted[1] == 0.0);
        assert!(sorted[2].is_sign_positive() && sorted[2] == 0.0);
        assert_eq!(&sorted[3..], &[2.0, 3.0]);
    }

    #[test]
    fn weighted_equal_weights_reduce_to_type7() {
        // Property: uniform weights must reproduce the unweighted
        // estimator for any sample and any level (up to rounding).
        let sorted = sorted_ascending(&[10.0, 20.0, 40.0, 80.0, 160.0, -3.0, 0.5]);
        let weights = vec![1.0; sorted.len()];
        for q in [0.0, 0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0] {
            let w = weighted_quantile_of_sorted(&sorted, &weights, q);
            let u = quantile_of_sorted(&sorted, q);
            assert!((w - u).abs() < 1e-9, "q={q}: weighted {w} vs type7 {u}");
        }
        // Scaling every weight by a constant changes nothing.
        let scaled = vec![0.125; sorted.len()];
        for q in [0.01, 0.5, 0.99] {
            assert_eq!(
                weighted_quantile_of_sorted(&sorted, &weights, q).to_bits(),
                weighted_quantile_of_sorted(&sorted, &scaled, q).to_bits()
            );
        }
    }

    #[test]
    fn weighted_degenerate_weights_answer_from_the_massive_sample() {
        // All mass on one sample: every interior quantile is that value.
        let sorted = [1.0, 2.0, 3.0, 4.0];
        let weights = [0.0, 0.0, 1.0, 0.0];
        for q in [0.01, 0.25, 0.5, 0.75, 0.99, 1.0] {
            assert_eq!(weighted_quantile_of_sorted(&sorted, &weights, q), 3.0);
        }
        // Near-degenerate (tiny but positive side weights) stays finite
        // and inside the sample range.
        let near = [1e-300, 1e-300, 1.0, 1e-300];
        for q in [0.0, 0.01, 0.5, 0.99, 1.0] {
            let v = weighted_quantile_of_sorted(&sorted, &near, q);
            assert!((1.0..=4.0).contains(&v), "q={q} escaped the range: {v}");
        }
    }

    #[test]
    fn weighted_single_sample_is_every_quantile() {
        for q in [0.0, 0.01, 0.5, 0.99, 1.0] {
            assert_eq!(weighted_quantile_of_sorted(&[7.5], &[0.25], q), 7.5);
        }
    }

    #[test]
    fn weighted_all_equal_values_are_every_quantile() {
        // All-equal slacks: whatever the weights, the answer is the value.
        let sorted = [4.25; 9];
        let weights = [0.3, 1.0, 0.01, 2.0, 0.5, 0.5, 0.7, 0.2, 4.0];
        for q in [0.0, 0.01, 0.5, 0.99, 1.0] {
            assert_eq!(weighted_quantile_of_sorted(&sorted, &weights, q), 4.25);
        }
    }

    #[test]
    fn weighted_profile_is_monotone_and_zero_weights_are_skipped() {
        let values = [5.0, 1.0, 9.0, 3.0, 7.0, 2.0, 8.0];
        let weights = [0.5, 0.0, 1.5, 1.0, 0.25, 2.0, 0.75];
        let (sorted, w) = sorted_with_weights(&values, &weights);
        assert_eq!(sorted, sorted_ascending(&values));
        let qs: Vec<f64> = (0..=20).map(|i| f64::from(i) / 20.0).collect();
        let profile = weighted_quantiles_of_sorted(&sorted, &w, &qs);
        for pair in profile.windows(2) {
            assert!(pair[0] <= pair[1], "profile not monotone: {profile:?}");
        }
        // Estimates stay inside the positive-weight sample range.
        for v in &profile {
            assert!((2.0..=9.0).contains(v), "escaped support: {v}");
        }
    }

    #[test]
    fn multi_quantile_matches_scalar_queries() {
        let sorted = sorted_ascending(&[5.0, 1.0, 9.0, 3.0, 7.0, 2.0]);
        let qs = [0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 1.0];
        let profile = quantiles_of_sorted(&sorted, &qs);
        for (i, &q) in qs.iter().enumerate() {
            assert_eq!(
                profile[i].to_bits(),
                quantile_of_sorted(&sorted, q).to_bits()
            );
        }
        // Quantile profile of any sample is monotone in q.
        for pair in profile.windows(2) {
            assert!(pair[0] <= pair[1]);
        }
    }
}
