//! Cross-crate integration: litho + OPC + extraction against real cell
//! geometry, and device/STA consistency of the annotation path.

use postopc_cdex::{extract_gate, MeasureConfig};
use postopc_device::{Mosfet, ProcessParams, SlicedGate};
use postopc_geom::Polygon;
use postopc_layout::{generate, CellLibrary, Design, Drive, GateKind, Layer, TechRules};
use postopc_litho::{AerialImage, ResistModel, SimulationSpec};
use postopc_opc::{model, orc, ModelOpcConfig, OrcConfig};
use postopc_sta::{TimingLibrary, TimingModel};

#[test]
fn cell_poly_survives_opc_and_prints() {
    // Every cell in the library must be correctable and printable: no
    // pinches at nominal conditions after model OPC.
    let lib = CellLibrary::new(TechRules::n90()).expect("library");
    let sim = SimulationSpec::nominal();
    let resist = ResistModel::standard();
    for kind in [GateKind::Inv, GateKind::Nand2, GateKind::Nor2] {
        let cell = lib.cell(kind, Drive::X1);
        let targets: Vec<Polygon> = cell.shapes_on(Layer::Poly).cloned().collect();
        let window = cell.bbox().expand(150).expect("window");
        let cfg = ModelOpcConfig {
            iterations: 4,
            ..ModelOpcConfig::standard()
        };
        let corrected = model::correct(&cfg, &targets, &[], window).expect("opc");
        let report = orc::verify(
            &OrcConfig::standard(),
            &sim,
            &resist,
            &targets,
            &corrected.corrected,
            &[],
            window,
        )
        .expect("orc");
        let pinches = report
            .hotspots
            .iter()
            .filter(|h| h.kind == postopc_opc::HotspotKind::Pinch)
            .count();
        assert_eq!(pinches, 0, "{kind} pinches after model OPC");
        assert!(
            report.rms_epe < 6.0,
            "{kind} post-OPC rms EPE {:.2} nm too large",
            report.rms_epe
        );
    }
}

#[test]
fn extracted_equivalent_matches_device_model_currents() {
    // Extraction and the device crate must agree: the equivalent gate's
    // rectangular device reproduces the slice ensemble's currents.
    let design = Design::compile(
        generate::inverter_chain(4).expect("netlist"),
        TechRules::n90(),
    )
    .expect("design");
    let process = ProcessParams::n90();
    let site = design.transistor_sites()[2];
    let window = site.channel.expand(300).expect("window");
    let mask: Vec<Polygon> = design
        .shapes_in_window(Layer::Poly, window.expand(420).expect("ambit"))
        .into_iter()
        .cloned()
        .collect();
    let image = AerialImage::simulate(&SimulationSpec::nominal(), &mask, window).expect("image");
    let extracted = extract_gate(
        &MeasureConfig::standard(),
        &process,
        &image,
        &ResistModel::standard(),
        &site,
    )
    .expect("extraction");
    let sliced = SlicedGate::new(site.kind, extracted.slices.clone()).expect("gate");
    let eq_device = Mosfet::new(
        site.kind,
        extracted.equivalent.w_nm,
        extracted.equivalent.l_delay_nm,
    )
    .expect("device");
    let i_slices = sliced.i_on(&process).expect("current");
    let i_eq = eq_device.i_on(&process);
    assert!(
        (i_slices - i_eq).abs() / i_slices < 1e-3,
        "equivalent device current mismatch: {i_slices} vs {i_eq}"
    );
}

#[test]
fn timing_library_matches_cell_geometry() {
    // The STA library's electrical view must be derived from the same
    // transistors the layout declares.
    let cells = CellLibrary::new(TechRules::n90()).expect("cells");
    let lib = TimingLibrary::characterize(&cells, ProcessParams::n90()).expect("library");
    for kind in GateKind::ALL {
        for drive in Drive::ALL {
            let records = lib.drawn_transistors(kind, drive);
            let cell = cells.cell(kind, drive);
            assert_eq!(records.len(), cell.transistors().len());
            for (r, t) in records.iter().zip(cell.transistors()) {
                assert_eq!(r.kind, t.kind);
                assert_eq!(r.width_nm, t.width_nm);
                assert_eq!(r.l_delay_nm, t.length_nm);
                assert_eq!(r.input_pin, t.input_pin);
            }
        }
    }
}

#[test]
fn sta_delay_scales_with_extracted_length_direction() {
    // Cross-check sign conventions end to end: longer extracted channels
    // must slow the design down, shorter must speed it up.
    use postopc_layout::GateId;
    use postopc_sta::{CdAnnotation, GateAnnotation};
    let design = Design::compile(
        generate::inverter_chain(10).expect("netlist"),
        TechRules::n90(),
    )
    .expect("design");
    let model = TimingModel::new(&design, ProcessParams::n90(), 1000.0).expect("model");
    let drawn = model.analyze(None).expect("drawn");
    let shifted = |delta: f64| {
        let mut ann = CdAnnotation::new();
        for (gi, g) in design.netlist().gates().iter().enumerate() {
            let mut records = model.library().drawn_transistors(g.kind, g.drive).to_vec();
            for r in &mut records {
                r.l_delay_nm += delta;
                r.l_leakage_nm += delta;
            }
            ann.set_gate(
                GateId(gi as u32),
                GateAnnotation {
                    transistors: records,
                },
            );
        }
        model.analyze(Some(&ann)).expect("annotated")
    };
    let long = shifted(6.0);
    let short = shifted(-6.0);
    assert!(long.critical_delay_ps() > drawn.critical_delay_ps());
    assert!(short.critical_delay_ps() < drawn.critical_delay_ps());
    assert!(short.leakage_ua() > drawn.leakage_ua());
    assert!(long.leakage_ua() < drawn.leakage_ua());
}

#[test]
fn geometry_round_trip_through_placement_transforms() {
    // Flattened chip shapes must cover exactly the transistor channels
    // the cross-reference reports, for every orientation the placer uses.
    let design = Design::compile(
        generate::ripple_carry_adder(3).expect("netlist"),
        TechRules::n90(),
    )
    .expect("design");
    for site in design.transistor_sites() {
        let hits = design.shapes_in_window(Layer::Poly, site.channel);
        assert!(
            hits.iter().any(|p| p.contains(site.channel.center())),
            "no poly polygon contains channel center {}",
            site.channel.center()
        );
        let active_hits = design.shapes_in_window(Layer::Active, site.channel);
        assert!(
            active_hits
                .iter()
                .any(|p| p.contains(site.channel.center())),
            "no active under channel at {}",
            site.channel.center()
        );
    }
}
