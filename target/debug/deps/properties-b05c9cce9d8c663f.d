/root/repo/target/debug/deps/properties-b05c9cce9d8c663f.d: crates/device/tests/properties.rs

/root/repo/target/debug/deps/properties-b05c9cce9d8c663f: crates/device/tests/properties.rs

crates/device/tests/properties.rs:
