//! Error types for lithography simulation.

use std::error::Error;
use std::fmt;

/// Errors produced by the imaging and measurement pipeline.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum LithoError {
    /// Underlying geometry failure (invalid window, resolution, ...).
    Geometry(postopc_geom::GeomError),
    /// Optical parameters out of physical range.
    InvalidOptics {
        /// Name of the offending parameter.
        name: &'static str,
        /// The rejected value.
        value: f64,
    },
    /// An edge-position search found no threshold crossing in range.
    NoContourCrossing {
        /// Search start x in nm.
        x_nm: f64,
        /// Search start y in nm.
        y_nm: f64,
    },
    /// Learned CD surrogate failure (bad training sample, unsolvable
    /// normal equations, or a corrupt persisted model).
    Surrogate(String),
}

impl fmt::Display for LithoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LithoError::Geometry(e) => write!(f, "geometry error: {e}"),
            LithoError::InvalidOptics { name, value } => {
                write!(f, "invalid optical parameter {name} = {value}")
            }
            LithoError::NoContourCrossing { x_nm, y_nm } => {
                write!(f, "no printed contour crossing near ({x_nm}, {y_nm})")
            }
            LithoError::Surrogate(reason) => write!(f, "surrogate model error: {reason}"),
        }
    }
}

impl Error for LithoError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            LithoError::Geometry(e) => Some(e),
            _ => None,
        }
    }
}

impl From<postopc_geom::GeomError> for LithoError {
    fn from(e: postopc_geom::GeomError) -> Self {
        LithoError::Geometry(e)
    }
}

/// Convenience result alias for the litho crate.
pub type Result<T> = std::result::Result<T, LithoError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = LithoError::InvalidOptics {
            name: "NA",
            value: 2.0,
        };
        assert!(e.to_string().contains("NA"));
        assert!(e.source().is_none());
        let g = LithoError::from(postopc_geom::GeomError::InvalidResolution(0.0));
        assert!(g.source().is_some());
    }
}
