/root/repo/target/debug/deps/postopc_rng-ddaccf6580b5cb67.d: crates/rng/src/lib.rs

/root/repo/target/debug/deps/postopc_rng-ddaccf6580b5cb67: crates/rng/src/lib.rs

crates/rng/src/lib.rs:
