/root/repo/target/release/deps/postopc_suite-a74130decd22b49a.d: src/lib.rs

/root/repo/target/release/deps/libpostopc_suite-a74130decd22b49a.rlib: src/lib.rs

/root/repo/target/release/deps/libpostopc_suite-a74130decd22b49a.rmeta: src/lib.rs

src/lib.rs:
