/root/repo/target/debug/deps/postopc_parallel-e5934bfeb8d6b79f.d: crates/parallel/src/lib.rs

/root/repo/target/debug/deps/libpostopc_parallel-e5934bfeb8d6b79f.rlib: crates/parallel/src/lib.rs

/root/repo/target/debug/deps/libpostopc_parallel-e5934bfeb8d6b79f.rmeta: crates/parallel/src/lib.rs

crates/parallel/src/lib.rs:
