/root/repo/target/release/deps/postopc_device-8319332b1ca236e9.d: crates/device/src/lib.rs crates/device/src/error.rs crates/device/src/mosfet.rs crates/device/src/params.rs crates/device/src/rc.rs crates/device/src/slices.rs

/root/repo/target/release/deps/libpostopc_device-8319332b1ca236e9.rlib: crates/device/src/lib.rs crates/device/src/error.rs crates/device/src/mosfet.rs crates/device/src/params.rs crates/device/src/rc.rs crates/device/src/slices.rs

/root/repo/target/release/deps/libpostopc_device-8319332b1ca236e9.rmeta: crates/device/src/lib.rs crates/device/src/error.rs crates/device/src/mosfet.rs crates/device/src/params.rs crates/device/src/rc.rs crates/device/src/slices.rs

crates/device/src/lib.rs:
crates/device/src/error.rs:
crates/device/src/mosfet.rs:
crates/device/src/params.rs:
crates/device/src/rc.rs:
crates/device/src/slices.rs:
