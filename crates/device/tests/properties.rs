//! Property-based tests for device-model invariants.

use postopc_device::{GateSlice, MosKind, Mosfet, ProcessParams, SlicedGate, Wire, WireLayerParams};
use proptest::prelude::*;

fn arb_kind() -> impl Strategy<Value = MosKind> {
    prop_oneof![Just(MosKind::Nmos), Just(MosKind::Pmos)]
}

fn arb_slices() -> impl Strategy<Value = Vec<GateSlice>> {
    proptest::collection::vec(
        (20.0f64..600.0, 60.0f64..130.0).prop_map(|(w, l)| GateSlice { w_nm: w, l_nm: l }),
        1..10,
    )
}

proptest! {
    #[test]
    fn currents_monotone_in_length(kind in arb_kind(), w in 100.0f64..2000.0, l in 60.0f64..120.0) {
        let p = ProcessParams::n90();
        let a = Mosfet::new(kind, w, l).expect("valid");
        let b = Mosfet::new(kind, w, l + 2.0).expect("valid");
        prop_assert!(a.i_on(&p) > b.i_on(&p));
        prop_assert!(a.i_off(&p) > b.i_off(&p));
        prop_assert!(a.c_gate(&p) < b.c_gate(&p));
    }

    #[test]
    fn currents_linear_in_width(kind in arb_kind(), w in 100.0f64..2000.0, l in 60.0f64..120.0) {
        let p = ProcessParams::n90();
        let a = Mosfet::new(kind, w, l).expect("valid");
        let b = Mosfet::new(kind, 2.0 * w, l).expect("valid");
        prop_assert!((b.i_on(&p) / a.i_on(&p) - 2.0).abs() < 1e-9);
        prop_assert!((b.i_off(&p) / a.i_off(&p) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn equivalent_lengths_within_slice_extremes(kind in arb_kind(), slices in arb_slices()) {
        let p = ProcessParams::n90();
        let l_min = slices.iter().map(|s| s.l_nm).fold(f64::MAX, f64::min);
        let l_max = slices.iter().map(|s| s.l_nm).fold(0.0f64, f64::max);
        let gate = SlicedGate::new(kind, slices).expect("valid");
        let eq = gate.equivalent(&p).expect("converges");
        prop_assert!(eq.l_delay_nm >= l_min - 1e-3 && eq.l_delay_nm <= l_max + 1e-3);
        prop_assert!(eq.l_leakage_nm >= l_min - 1e-3 && eq.l_leakage_nm <= l_max + 1e-3);
        // Leakage length never exceeds delay length (exponential weighting
        // favours short slices).
        prop_assert!(eq.l_leakage_nm <= eq.l_delay_nm + 1e-3);
    }

    #[test]
    fn equivalent_currents_match(kind in arb_kind(), slices in arb_slices()) {
        let p = ProcessParams::n90();
        let gate = SlicedGate::new(kind, slices).expect("valid");
        let eq = gate.equivalent(&p).expect("converges");
        let delay_dev = Mosfet::new(kind, eq.w_nm, eq.l_delay_nm).expect("valid");
        let leak_dev = Mosfet::new(kind, eq.w_nm, eq.l_leakage_nm).expect("valid");
        let ion = gate.i_on(&p).expect("valid");
        let ioff = gate.i_off(&p).expect("valid");
        prop_assert!((delay_dev.i_on(&p) - ion).abs() / ion < 1e-3);
        prop_assert!((leak_dev.i_off(&p) - ioff).abs() / ioff < 1e-3);
    }

    #[test]
    fn wire_printed_width_conserves_pitch(
        len in 1_000.0f64..100_000.0,
        width in 80.0f64..200.0,
        space in 80.0f64..200.0,
        delta in -30.0f64..30.0,
    ) {
        let wire = Wire::new(WireLayerParams::m1_90nm(), len, width, space).expect("valid");
        let printed = width + delta;
        if printed > 0.0 && printed < width + space {
            let w2 = wire.with_printed_width(printed).expect("valid");
            prop_assert!((w2.width_nm() + w2.spacing_nm() - (width + space)).abs() < 1e-9);
            // Narrower wires are more resistive.
            if delta < 0.0 {
                prop_assert!(w2.resistance_kohm() > wire.resistance_kohm());
            }
        }
    }

    #[test]
    fn elmore_monotone_in_driver_resistance(
        len in 1_000.0f64..50_000.0,
        r1 in 0.5f64..5.0,
        extra in 0.1f64..5.0,
        c_load in 0.5f64..20.0,
    ) {
        let wire = Wire::new(WireLayerParams::m1_90nm(), len, 120.0, 120.0).expect("valid");
        prop_assert!(wire.elmore_delay_ps(r1 + extra, c_load) > wire.elmore_delay_ps(r1, c_load));
    }
}
