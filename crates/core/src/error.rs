//! Error type of the integrated post-OPC timing flow.

use std::error::Error;
use std::fmt;

/// Errors produced by the end-to-end flow.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum FlowError {
    /// Layout/netlist substrate failure.
    Layout(postopc_layout::LayoutError),
    /// Lithography simulation failure.
    Litho(postopc_litho::LithoError),
    /// OPC failure.
    Opc(postopc_opc::OpcError),
    /// CD extraction failure.
    Cdex(postopc_cdex::CdexError),
    /// Timing analysis failure.
    Sta(postopc_sta::StaError),
    /// Geometry failure.
    Geometry(postopc_geom::GeomError),
    /// A flow configuration value was out of range.
    InvalidConfig(String),
    /// A persisted artifact was unreadable: bad magic, unsupported
    /// version, checksum mismatch, truncation, or a corrupt field.
    /// Loading never panics — every malformed input lands here.
    Artifact(String),
    /// Quarantined gates exceeded the configured budget
    /// ([`crate::FaultPolicy::Quarantine`]'s `max_fraction`).
    QuarantineExceeded {
        /// Gates quarantined during the run.
        quarantined: usize,
        /// Tagged gates submitted to extraction.
        total: usize,
        /// The configured budget the run overran.
        max_fraction: f64,
    },
}

impl fmt::Display for FlowError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FlowError::Layout(e) => write!(f, "layout error: {e}"),
            FlowError::Litho(e) => write!(f, "lithography error: {e}"),
            FlowError::Opc(e) => write!(f, "opc error: {e}"),
            FlowError::Cdex(e) => write!(f, "extraction error: {e}"),
            FlowError::Sta(e) => write!(f, "timing error: {e}"),
            FlowError::Geometry(e) => write!(f, "geometry error: {e}"),
            FlowError::InvalidConfig(reason) => write!(f, "invalid flow configuration: {reason}"),
            FlowError::Artifact(reason) => write!(f, "invalid artifact: {reason}"),
            FlowError::QuarantineExceeded {
                quarantined,
                total,
                max_fraction,
            } => write!(
                f,
                "quarantine budget exceeded: {quarantined} of {total} gates \
                 quarantined (max fraction {max_fraction})"
            ),
        }
    }
}

impl Error for FlowError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            FlowError::Layout(e) => Some(e),
            FlowError::Litho(e) => Some(e),
            FlowError::Opc(e) => Some(e),
            FlowError::Cdex(e) => Some(e),
            FlowError::Sta(e) => Some(e),
            FlowError::Geometry(e) => Some(e),
            FlowError::InvalidConfig(_) => None,
            FlowError::Artifact(_) => None,
            FlowError::QuarantineExceeded { .. } => None,
        }
    }
}

macro_rules! from_error {
    ($variant:ident, $ty:ty) => {
        impl From<$ty> for FlowError {
            fn from(e: $ty) -> Self {
                FlowError::$variant(e)
            }
        }
    };
}

from_error!(Layout, postopc_layout::LayoutError);
from_error!(Litho, postopc_litho::LithoError);
from_error!(Opc, postopc_opc::OpcError);
from_error!(Cdex, postopc_cdex::CdexError);
from_error!(Sta, postopc_sta::StaError);
from_error!(Geometry, postopc_geom::GeomError);

/// Convenience result alias for the flow crate.
pub type Result<T> = std::result::Result<T, FlowError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_sources() {
        let e: FlowError = postopc_geom::GeomError::InvalidResolution(0.0).into();
        assert!(e.source().is_some());
        assert!(e.to_string().contains("geometry"));
        let c = FlowError::InvalidConfig("bad".into());
        assert!(c.source().is_none());
    }
}
