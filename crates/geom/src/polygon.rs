//! Rectilinear (Manhattan) polygons.
//!
//! These are the workhorse of the layout model: every drawn shape, every
//! OPC-corrected mask shape, and every printed-contour approximation is a
//! rectilinear polygon. The representation is a closed counter-clockwise
//! vertex loop in which *collinear* consecutive edges are permitted — OPC
//! fragmentation inserts such pseudo-vertices on purpose so that individual
//! edge fragments can be biased independently.

use crate::edge::{Edge, Orientation};
use crate::error::{GeomError, Result};
use crate::point::{Coord, Point, Vector};
use crate::rect::Rect;
use std::fmt;

/// A closed rectilinear polygon with counter-clockwise winding.
///
/// # Invariants
///
/// - at least 4 vertices;
/// - every edge is axis-parallel with non-zero length;
/// - non-zero enclosed area;
/// - counter-clockwise winding (normalized on construction).
///
/// Collinear consecutive edges (pseudo-vertices) are allowed; see
/// [`Polygon::simplified`] to remove them.
///
/// ```
/// use postopc_geom::{Polygon, Rect};
/// # fn main() -> Result<(), postopc_geom::GeomError> {
/// let line = Polygon::from(Rect::new(0, 0, 90, 600)?);
/// assert_eq!(line.area(), 54_000);
/// assert_eq!(line.edge_count(), 4);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Polygon {
    vertices: Vec<Point>,
}

impl Polygon {
    /// Builds a polygon from a vertex loop (implicitly closed).
    ///
    /// Clockwise input is reversed to the canonical counter-clockwise
    /// winding. Consecutive duplicate vertices are rejected.
    ///
    /// # Errors
    ///
    /// Returns [`GeomError::InvalidPolygon`] if there are fewer than four
    /// vertices, any edge is diagonal or zero-length, or the area is zero.
    pub fn new(vertices: Vec<Point>) -> Result<Polygon> {
        if vertices.len() < 4 {
            return Err(GeomError::InvalidPolygon(format!(
                "need at least 4 vertices, got {}",
                vertices.len()
            )));
        }
        let n = vertices.len();
        for i in 0..n {
            let a = vertices[i];
            let b = vertices[(i + 1) % n];
            if a == b {
                return Err(GeomError::InvalidPolygon(format!(
                    "zero-length edge at vertex {i} ({a})"
                )));
            }
            if a.x != b.x && a.y != b.y {
                return Err(GeomError::InvalidPolygon(format!(
                    "diagonal edge at vertex {i}: {a} -> {b}"
                )));
            }
        }
        let signed = signed_area2(&vertices);
        if signed == 0 {
            return Err(GeomError::InvalidPolygon("zero area".into()));
        }
        let mut vertices = vertices;
        if signed < 0 {
            vertices.reverse();
        }
        // Canonicalize the loop so equality and hashing are independent of
        // which vertex the caller started from: rotate the smallest vertex
        // to the front.
        let first = vertices
            .iter()
            .enumerate()
            .min_by_key(|&(_, p)| *p)
            .map_or(0, |(i, _)| i);
        vertices.rotate_left(first);
        Ok(Polygon { vertices })
    }

    /// The vertex loop (counter-clockwise, implicitly closed).
    pub fn vertices(&self) -> &[Point] {
        &self.vertices
    }

    /// Number of edges (== number of vertices).
    pub fn edge_count(&self) -> usize {
        self.vertices.len()
    }

    /// The `i`-th directed edge, from vertex `i` to vertex `i + 1`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.edge_count()`.
    pub fn edge(&self, i: usize) -> Edge {
        let n = self.vertices.len();
        assert!(i < n, "edge index {i} out of bounds for {n} edges");
        Edge::new(self.vertices[i], self.vertices[(i + 1) % n])
    }

    /// Iterator over all directed edges in CCW order.
    pub fn edges(&self) -> impl Iterator<Item = Edge> + '_ {
        (0..self.edge_count()).map(move |i| self.edge(i))
    }

    /// Enclosed area in nm² (always positive).
    pub fn area(&self) -> i128 {
        signed_area2(&self.vertices).unsigned_abs() as i128 / 2
    }

    /// Total boundary length in nm.
    pub fn perimeter(&self) -> Coord {
        self.edges().map(|e| e.length()).sum()
    }

    /// Axis-aligned bounding box.
    pub fn bbox(&self) -> Rect {
        let mut min = self.vertices[0];
        let mut max = self.vertices[0];
        for &v in &self.vertices[1..] {
            min = min.min(v);
            max = max.max(v);
        }
        // Invariant: non-zero area implies non-degenerate bbox.
        Rect::from_points(min, max)
            .unwrap_or_else(|_| unreachable!("non-zero polygon area implies a valid bbox"))
    }

    /// Even-odd containment with the half-open convention: a point on the
    /// bottom/left boundary is inside, on the top/right boundary outside.
    ///
    /// ```
    /// use postopc_geom::{Polygon, Point, Rect};
    /// # fn main() -> Result<(), postopc_geom::GeomError> {
    /// let p = Polygon::from(Rect::new(0, 0, 10, 10)?);
    /// assert!(p.contains(Point::new(5, 5)));
    /// assert!(p.contains(Point::new(0, 0)));
    /// assert!(!p.contains(Point::new(10, 10)));
    /// # Ok(())
    /// # }
    /// ```
    pub fn contains(&self, p: Point) -> bool {
        let mut inside = false;
        for e in self.edges() {
            if e.orientation() == Orientation::Vertical {
                let (ylo, yhi) = if e.start.y < e.end.y {
                    (e.start.y, e.end.y)
                } else {
                    (e.end.y, e.start.y)
                };
                if ylo <= p.y && p.y < yhi && e.start.x > p.x {
                    inside = !inside;
                }
            }
        }
        inside
    }

    /// The polygon translated by `v`.
    pub fn translate(&self, v: Vector) -> Polygon {
        Polygon {
            vertices: self.vertices.iter().map(|&p| p + v).collect(),
        }
    }

    /// Decomposes the polygon into non-overlapping horizontal-band
    /// rectangles whose union is exactly the polygon.
    ///
    /// Works for any simple rectilinear polygon, including those with
    /// pseudo-vertices. The result is ordered bottom-to-top, left-to-right.
    pub fn to_rects(&self) -> Vec<Rect> {
        let mut ys: Vec<Coord> = self.vertices.iter().map(|p| p.y).collect();
        ys.sort_unstable();
        ys.dedup();
        let mut rects = Vec::new();
        for band in ys.windows(2) {
            let (y0, y1) = (band[0], band[1]);
            let mut xs: Vec<Coord> = Vec::new();
            for e in self.edges() {
                if e.orientation() == Orientation::Vertical {
                    let (lo, hi) = if e.start.y < e.end.y {
                        (e.start.y, e.end.y)
                    } else {
                        (e.end.y, e.start.y)
                    };
                    if lo <= y0 && hi >= y1 {
                        xs.push(e.start.x);
                    }
                }
            }
            xs.sort_unstable();
            for pair in xs.chunks_exact(2) {
                if let Ok(r) = Rect::new(pair[0], y0, pair[1], y1) {
                    rects.push(r);
                }
            }
        }
        rects
    }

    /// Removes pseudo-vertices (collinear triples), zero-length edges and
    /// back-and-forth spikes, returning the minimal equivalent polygon.
    ///
    /// # Errors
    ///
    /// Returns [`GeomError::InvalidPolygon`] if simplification collapses the
    /// polygon below four vertices (e.g. a degenerate OPC reconstruction).
    pub fn simplified(&self) -> Result<Polygon> {
        let mut v = self.vertices.clone();
        loop {
            let n = v.len();
            if n < 4 {
                return Err(GeomError::InvalidPolygon(
                    "polygon collapsed during simplification".into(),
                ));
            }
            let mut removed = false;
            let mut out: Vec<Point> = Vec::with_capacity(n);
            let mut i = 0;
            while i < n {
                let prev = match out.last() {
                    Some(&p) => p,
                    None => v[(i + n - 1) % n],
                };
                let cur = v[i];
                let next = v[(i + 1) % n];
                if cur == prev || cur == next {
                    removed = true; // duplicate vertex
                    i += 1;
                    continue;
                }
                let collinear =
                    (prev.x == cur.x && cur.x == next.x) || (prev.y == cur.y && cur.y == next.y);
                if collinear {
                    removed = true; // pseudo-vertex or spike midpoint
                    i += 1;
                    continue;
                }
                out.push(cur);
                i += 1;
            }
            // The wrap-around vertex may itself be redundant; loop until fixpoint.
            if !removed {
                return Polygon::new(out);
            }
            v = out;
        }
    }

    /// Inserts pseudo-vertices along edges.
    ///
    /// `cuts[i]` lists distances from the start of edge `i` (each strictly
    /// between 0 and the edge length) at which to split. Used by OPC
    /// fragmentation so fragments can be biased independently.
    ///
    /// # Errors
    ///
    /// Returns [`GeomError::OutOfBounds`] if `cuts.len()` differs from the
    /// edge count, or [`GeomError::InvalidPolygon`] if any cut is outside
    /// the open interval `(0, edge length)`.
    pub fn with_cuts(&self, cuts: &[Vec<Coord>]) -> Result<Polygon> {
        if cuts.len() != self.edge_count() {
            return Err(GeomError::OutOfBounds {
                index: cuts.len(),
                len: self.edge_count(),
            });
        }
        let mut vertices =
            Vec::with_capacity(self.vertices.len() + cuts.iter().map(Vec::len).sum::<usize>());
        for (i, edge_cuts) in cuts.iter().enumerate() {
            let e = self.edge(i);
            vertices.push(e.start);
            let mut sorted = edge_cuts.clone();
            sorted.sort_unstable();
            let dir = e.direction();
            for &d in &sorted {
                if d <= 0 || d >= e.length() {
                    return Err(GeomError::InvalidPolygon(format!(
                        "cut {d} outside edge {i} of length {}",
                        e.length()
                    )));
                }
                vertices.push(e.start + dir * d);
            }
        }
        Polygon::new(vertices)
    }

    /// Rebuilds the polygon with each edge independently displaced along its
    /// outward normal by `offsets[i]` nm — the core primitive of model-based
    /// OPC edge movement.
    ///
    /// Perpendicular neighbours meet at the intersection of the two shifted
    /// lines; collinear neighbours (fragment boundaries) are joined by a
    /// perpendicular jog at the original boundary coordinate. Offsets large
    /// enough to make the contour self-intersect are the caller's
    /// responsibility to avoid (OPC clamps its moves).
    ///
    /// # Errors
    ///
    /// Returns [`GeomError::OutOfBounds`] if `offsets.len()` differs from
    /// the edge count, or [`GeomError::InvalidPolygon`] if the displaced
    /// contour degenerates (e.g. an edge inverted by an excessive offset).
    pub fn with_edge_offsets(&self, offsets: &[Coord]) -> Result<Polygon> {
        let n = self.edge_count();
        if offsets.len() != n {
            return Err(GeomError::OutOfBounds {
                index: offsets.len(),
                len: n,
            });
        }
        let shifted: Vec<Edge> = (0..n).map(|i| self.edge(i).shifted(offsets[i])).collect();
        let mut vertices: Vec<Point> = Vec::with_capacity(n * 2);
        for i in 0..n {
            let cur = &shifted[i];
            let next = &shifted[(i + 1) % n];
            if cur.orientation() == next.orientation() {
                // Collinear neighbours: jog at the original shared coordinate.
                let boundary = self.edge(i).end;
                match cur.orientation() {
                    Orientation::Horizontal => {
                        vertices.push(Point::new(boundary.x, cur.level()));
                        vertices.push(Point::new(boundary.x, next.level()));
                    }
                    Orientation::Vertical => {
                        vertices.push(Point::new(cur.level(), boundary.y));
                        vertices.push(Point::new(next.level(), boundary.y));
                    }
                }
            } else {
                // Perpendicular neighbours: intersection of the two lines.
                let p = match cur.orientation() {
                    Orientation::Horizontal => Point::new(next.level(), cur.level()),
                    Orientation::Vertical => Point::new(cur.level(), next.level()),
                };
                vertices.push(p);
            }
        }
        // Drop exact duplicates introduced by zero-offset jogs.
        let mut dedup: Vec<Point> = Vec::with_capacity(vertices.len());
        for p in vertices {
            if dedup.last() != Some(&p) {
                dedup.push(p);
            }
        }
        while dedup.len() > 1 && dedup.first() == dedup.last() {
            dedup.pop();
        }
        Polygon::new(dedup)
    }

    /// Whether the interiors of two rectilinear polygons overlap
    /// (computed on the rectangle decompositions; touching boundaries do
    /// not count).
    pub fn intersects_polygon(&self, other: &Polygon) -> bool {
        if !self.bbox().intersects(&other.bbox()) {
            return false;
        }
        let theirs = other.to_rects();
        self.to_rects()
            .iter()
            .any(|a| theirs.iter().any(|b| a.intersects(b)))
    }

    /// The overlap area of two rectilinear polygons in nm².
    pub fn overlap_area(&self, other: &Polygon) -> i128 {
        if !self.bbox().intersects(&other.bbox()) {
            return 0;
        }
        let theirs = other.to_rects();
        let mut total: i128 = 0;
        for a in self.to_rects() {
            for b in &theirs {
                if let Some(i) = a.intersection(b) {
                    total += i.area();
                }
            }
        }
        total
    }

    /// O(n²) simplicity check: no two non-adjacent edges touch or cross.
    ///
    /// Intended for validation in tests and debug assertions; production
    /// paths maintain simplicity by construction.
    pub fn is_simple(&self) -> bool {
        let edges: Vec<Edge> = self.edges().collect();
        let n = edges.len();
        for i in 0..n {
            for j in (i + 1)..n {
                if j == i + 1 || (i == 0 && j == n - 1) {
                    continue; // adjacent edges share exactly one vertex
                }
                if edges_touch(&edges[i], &edges[j]) {
                    return false;
                }
            }
        }
        true
    }
}

impl From<Rect> for Polygon {
    fn from(r: Rect) -> Polygon {
        Polygon {
            vertices: r.corners().to_vec(),
        }
    }
}

impl fmt::Display for Polygon {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "poly[")?;
        for (i, v) in self.vertices.iter().enumerate() {
            if i > 0 {
                write!(f, " ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, "]")
    }
}

/// Twice the signed area (positive for CCW winding).
fn signed_area2(vertices: &[Point]) -> i128 {
    let n = vertices.len();
    let mut sum: i128 = 0;
    for i in 0..n {
        let a = vertices[i];
        let b = vertices[(i + 1) % n];
        sum += a.x as i128 * b.y as i128 - b.x as i128 * a.y as i128;
    }
    sum
}

/// Whether two axis-parallel segments share any point.
fn edges_touch(a: &Edge, b: &Edge) -> bool {
    fn span(e: &Edge) -> (Coord, Coord, Coord, Coord) {
        (
            e.start.x.min(e.end.x),
            e.start.x.max(e.end.x),
            e.start.y.min(e.end.y),
            e.start.y.max(e.end.y),
        )
    }
    let (ax0, ax1, ay0, ay1) = span(a);
    let (bx0, bx1, by0, by1) = span(b);
    ax0 <= bx1 && bx0 <= ax1 && ay0 <= by1 && by0 <= ay1
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rect_poly(x0: Coord, y0: Coord, x1: Coord, y1: Coord) -> Polygon {
        Polygon::from(Rect::new(x0, y0, x1, y1).expect("valid rect"))
    }

    /// An L-shaped polygon used by several tests:
    /// 20 wide x 10 tall base with a 10x10 tower on the left.
    fn l_shape() -> Polygon {
        Polygon::new(vec![
            Point::new(0, 0),
            Point::new(20, 0),
            Point::new(20, 10),
            Point::new(10, 10),
            Point::new(10, 20),
            Point::new(0, 20),
        ])
        .expect("valid L")
    }

    #[test]
    fn rejects_bad_polygons() {
        assert!(Polygon::new(vec![Point::new(0, 0), Point::new(1, 0), Point::new(1, 1)]).is_err());
        // diagonal
        assert!(Polygon::new(vec![
            Point::new(0, 0),
            Point::new(5, 5),
            Point::new(5, 0),
            Point::new(0, 0)
        ])
        .is_err());
        // zero area (out-and-back)
        assert!(Polygon::new(vec![
            Point::new(0, 0),
            Point::new(10, 0),
            Point::new(10, 0),
            Point::new(0, 0)
        ])
        .is_err());
    }

    #[test]
    fn normalizes_winding_to_ccw() {
        let cw = Polygon::new(vec![
            Point::new(0, 0),
            Point::new(0, 10),
            Point::new(10, 10),
            Point::new(10, 0),
        ])
        .expect("valid");
        assert!(signed_area2(cw.vertices()) > 0);
        assert_eq!(cw.area(), 100);
    }

    #[test]
    fn area_and_perimeter_of_l() {
        let l = l_shape();
        assert_eq!(l.area(), 300);
        assert_eq!(l.perimeter(), 80);
        assert_eq!(l.bbox(), Rect::new(0, 0, 20, 20).expect("valid"));
    }

    #[test]
    fn containment_even_odd() {
        let l = l_shape();
        assert!(l.contains(Point::new(5, 5)));
        assert!(l.contains(Point::new(5, 15)));
        assert!(l.contains(Point::new(15, 5)));
        assert!(!l.contains(Point::new(15, 15)));
        assert!(!l.contains(Point::new(-1, 5)));
        assert!(!l.contains(Point::new(25, 5)));
    }

    #[test]
    fn to_rects_partitions_area() {
        let l = l_shape();
        let rects = l.to_rects();
        let total: i128 = rects.iter().map(|r| r.area()).sum();
        assert_eq!(total, l.area());
        // No pairwise overlap.
        for i in 0..rects.len() {
            for j in (i + 1)..rects.len() {
                assert!(!rects[i].intersects(&rects[j]));
            }
        }
    }

    #[test]
    fn with_cuts_inserts_pseudo_vertices() {
        let p = rect_poly(0, 0, 100, 10);
        let cuts = vec![vec![30, 60], vec![], vec![50], vec![]];
        let cut = p.with_cuts(&cuts).expect("valid cuts");
        assert_eq!(cut.edge_count(), 4 + 3);
        assert_eq!(cut.area(), p.area());
        assert!(cut.vertices().contains(&Point::new(30, 0)));
        assert!(cut.vertices().contains(&Point::new(50, 10)));
    }

    #[test]
    fn with_cuts_rejects_out_of_range() {
        let p = rect_poly(0, 0, 100, 10);
        assert!(p.with_cuts(&[vec![0], vec![], vec![], vec![]]).is_err());
        assert!(p.with_cuts(&[vec![100], vec![], vec![], vec![]]).is_err());
        assert!(p.with_cuts(&[vec![]]).is_err());
    }

    #[test]
    fn zero_offsets_preserve_polygon() {
        let l = l_shape();
        let same = l
            .with_edge_offsets(&vec![0; l.edge_count()])
            .expect("rebuild");
        assert_eq!(same.simplified().expect("simplify"), l);
    }

    #[test]
    fn uniform_outward_offsets_grow_rect() {
        let p = rect_poly(0, 0, 10, 10);
        let grown = p.with_edge_offsets(&[2, 2, 2, 2]).expect("grown");
        assert_eq!(
            grown.simplified().expect("simplify"),
            rect_poly(-2, -2, 12, 12)
        );
        let shrunk = p.with_edge_offsets(&[-3, -3, -3, -3]).expect("shrunk");
        assert_eq!(
            shrunk.simplified().expect("simplify"),
            rect_poly(3, 3, 7, 7)
        );
    }

    #[test]
    fn fragment_offsets_create_jogs() {
        // Split the bottom edge of a wide line and push only the middle
        // fragment outward (a classic OPC hammerhead-like move).
        let p = rect_poly(0, 0, 100, 10);
        let cut = p
            .with_cuts(&[vec![30, 70], vec![], vec![], vec![]])
            .expect("cut");
        // Edges now: bottom[0..30], bottom[30..70], bottom[70..100], right, top, left.
        let mut offsets = vec![0; cut.edge_count()];
        offsets[1] = 4; // outward = downward for the bottom edge
        let moved = cut.with_edge_offsets(&offsets).expect("moved");
        assert!(moved.is_simple());
        assert_eq!(moved.area(), p.area() + 40 * 4);
        assert!(moved.contains(Point::new(50, -2)));
        assert!(!moved.contains(Point::new(10, -2)));
    }

    #[test]
    fn simplified_removes_pseudo_vertices() {
        let p = rect_poly(0, 0, 100, 10);
        let cut = p
            .with_cuts(&[vec![50], vec![], vec![5, 95], vec![]])
            .expect("cut");
        assert_eq!(cut.simplified().expect("simplify"), p);
    }

    #[test]
    fn is_simple_detects_self_touch() {
        let l = l_shape();
        assert!(l.is_simple());
        // Bowtie-like rectilinear self-touching loop.
        let bad = Polygon::new(vec![
            Point::new(0, 0),
            Point::new(10, 0),
            Point::new(10, 10),
            Point::new(5, 10),
            Point::new(5, -5),
            Point::new(0, -5),
        ])
        .expect("constructed");
        assert!(!bad.is_simple());
    }

    #[test]
    fn polygon_overlap_area() {
        let a = rect_poly(0, 0, 100, 100);
        let b = rect_poly(50, 50, 150, 150);
        assert!(a.intersects_polygon(&b));
        assert_eq!(a.overlap_area(&b), 2500);
        assert_eq!(a.overlap_area(&a), a.area());
        let far = rect_poly(1000, 1000, 1100, 1100);
        assert!(!a.intersects_polygon(&far));
        assert_eq!(a.overlap_area(&far), 0);
        // Touching edges: no interior overlap.
        let touch = rect_poly(100, 0, 200, 100);
        assert!(!a.intersects_polygon(&touch));
        // L-shapes overlap only where both arms cover.
        let l = l_shape();
        let bar = rect_poly(0, 0, 20, 5);
        assert_eq!(l.overlap_area(&bar), 100);
    }

    #[test]
    fn from_rect_round_trips_area() {
        let r = Rect::new(-5, -5, 5, 5).expect("valid");
        let p = Polygon::from(r);
        assert_eq!(p.area(), r.area());
        assert_eq!(p.bbox(), r);
    }
}
