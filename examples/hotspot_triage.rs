//! Hotspot triage: verify a layout block post-OPC, cluster the surviving
//! hotspots by geometric pattern, and report the triage list a fab would
//! work from (companion-paper methodology; see `postopc_opc::hotspots`).
//!
//! ```bash
//! cargo run --release --example hotspot_triage
//! ```

use postopc_geom::Polygon;
use postopc_layout::{generate, Design, Layer, TechRules};
use postopc_litho::{ResistModel, SimulationSpec};
use postopc_opc::{hotspots, orc, rules, HotspotConfig, OrcConfig, RuleOpcConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let design = Design::compile(generate::ripple_carry_adder(2)?, TechRules::n90())?;
    let shapes: Vec<Polygon> = design.shapes_on(Layer::Poly).to_vec();
    println!(
        "verifying {} poly shapes with rule-OPC masks...",
        shapes.len()
    );

    // Rule-correct the whole block and verify it (rule OPC leaves real
    // residuals at line ends — those become our hotspots).
    let corrected = rules::correct(&RuleOpcConfig::standard(), &shapes, &[])?;
    let window = design.die().expand(200)?;
    let mut orc_cfg = OrcConfig::standard();
    orc_cfg.epe_limit = 6.0; // tighten so rule-OPC residuals violate
    let report = orc::verify(
        &orc_cfg,
        &SimulationSpec::nominal(),
        &ResistModel::standard(),
        &shapes,
        &corrected.corrected,
        &[],
        window,
    )?;
    println!(
        "ORC: rms EPE {:.2} nm, max |EPE| {:.2} nm, {} hotspots",
        report.rms_epe,
        report.max_abs_epe,
        report.hotspots.len()
    );

    // Capture snippets and cluster them.
    let cfg = HotspotConfig::standard();
    let snippets = report
        .hotspots
        .iter()
        .map(|&h| hotspots::HotspotSnippet::capture(&cfg, h, &shapes))
        .collect::<Result<Vec<_>, _>>()?;
    let clusters = hotspots::cluster_hotspots(&cfg, snippets);
    println!(
        "{} hotspots fall into {} pattern clusters:",
        report.hotspots.len(),
        clusters.len()
    );
    for (i, cluster) in clusters.iter().enumerate().take(8) {
        println!(
            "  cluster {}: {} occurrences, pattern density {:.2}, first at ({:.0}, {:.0}) nm",
            i + 1,
            cluster.members.len(),
            cluster.representative.density(),
            cluster.representative.hotspot.x_nm,
            cluster.representative.hotspot.y_nm,
        );
    }
    if let Some(top) = clusters.first() {
        println!(
            "triage: fixing the top cluster's pattern addresses {:.0}% of all hotspots",
            100.0 * top.members.len() as f64 / report.hotspots.len().max(1) as f64
        );
    }
    Ok(())
}
