/root/repo/target/release/deps/repro-314359052ec3964e.d: crates/bench/src/bin/repro.rs

/root/repo/target/release/deps/repro-314359052ec3964e: crates/bench/src/bin/repro.rs

crates/bench/src/bin/repro.rs:
