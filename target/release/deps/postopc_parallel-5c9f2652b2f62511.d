/root/repo/target/release/deps/postopc_parallel-5c9f2652b2f62511.d: crates/parallel/src/lib.rs

/root/repo/target/release/deps/libpostopc_parallel-5c9f2652b2f62511.rlib: crates/parallel/src/lib.rs

/root/repo/target/release/deps/libpostopc_parallel-5c9f2652b2f62511.rmeta: crates/parallel/src/lib.rs

crates/parallel/src/lib.rs:
