/root/repo/target/release/deps/properties-ddc4f58d0a199833.d: crates/sta/tests/properties.rs Cargo.toml

/root/repo/target/release/deps/libproperties-ddc4f58d0a199833.rmeta: crates/sta/tests/properties.rs Cargo.toml

crates/sta/tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
