#!/usr/bin/env bash
# Offline CI gate: formatting, lints, tier-1 build + tests, workspace
# tests, perf smoke parity (across a thread matrix) and the
# bench-regression gate against the committed BENCH_*.json artifacts.
#
# Everything here runs with no network access; the workspace has no
# external dependencies (see DESIGN.md "Dependencies").
#
# Usage:
#   scripts/check.sh                       full gate (every stage below)
#   scripts/check.sh --quick               inner loop: fmt + clippy +
#                                          strict + tier-1 only
#   scripts/check.sh --stage NAME[,NAME..] run only the named stages
#                                          (repeatable; order stays the
#                                          canonical order below)
#   scripts/check.sh --skip NAME[,NAME..]  run everything except the
#                                          named stages (repeatable)
#   scripts/check.sh --timings-json PATH   write per-stage wall times as
#                                          JSON to PATH (also on failure,
#                                          with the failing stage marked)
#
# Unknown flags and unknown stage names exit 2 before any stage runs.
# --quick composes with --stage/--skip as an intersection.
#
# Stages (each prints its own wall time):
#   fmt        cargo fmt --check
#   clippy     cargo clippy --workspace --all-targets -- -D warnings
#   strict     library + binary clippy with unwrap()/expect() denied
#              outside tests (bench bins exit with rendered diagnostics
#              via OrExit instead of panicking)
#   build      tier-1: cargo build --release
#   test       tier-1: cargo test -q
#   wstest     cargo test --workspace -q
#   smoke      perf_smoke parity gates (ambient thread count)
#   threads    perf_smoke parity gates under POSTOPC_THREADS=1,2,4
#   faults     fault_smoke: seeded injection, quarantine determinism gates
#   mc_batch   mc_batch_smoke: batched-engine parity, warm shared shift
#              cache, variance-reduction convergence gates
#   tail       tail_smoke under POSTOPC_THREADS=1,2,4: tail-IS + control
#              variate engine/thread bit-parity, weight normalization,
#              CV exactness on a linear model, and the deep-tail claim
#              (tail-IS@500 q01 error <= plain@2000 on the T6 study)
#   serve      serve_smoke: cold-vs-warm artifact bit parity, typed bad-
#              artifact errors, incremental-vs-full ECO bit parity, and
#              the warm-query speedup floor
#   chaos      chaos_smoke under POSTOPC_THREADS=1,2,4: seeded I/O fault
#              schedules against the durable serving layer — every serve
#              answers bit-identically to fault-free or fails typed,
#              torn/crashed artifacts never get served, budgets are
#              deterministic, lock contention is refused typed
#   surrogate  surrogate_train + surrogate_smoke: learned-CD-surrogate
#              parity vs SOCS, serial-vs-pool bit identity, 100% fallback
#              on an out-of-distribution layout, the speedup floor, and
#              the POCSURR1 model-file round trip
#   bench      perf_smoke --bench-regression vs committed BENCH_*.json
#              (STA floors now include the schema-v3 sampling-accuracy
#              rows), then serve_smoke --bench-regression
set -euo pipefail
cd "$(dirname "$0")/.."

# Canonical stage order; --stage never reorders, only filters.
STAGES=(fmt clippy strict build test wstest smoke threads faults mc_batch
  tail serve chaos surrogate bench bench_serve)
QUICK_STAGES=(fmt clippy strict build test)

QUICK=0
ONLY=()
SKIP=()
TIMINGS_JSON=""

known_stage() {
  local s
  for s in "${STAGES[@]}"; do
    [[ "$s" == "$1" ]] && return 0
  done
  return 1
}

# Splits a comma-separated stage list, validating every name.
add_stages() {
  local dest="$1" list="$2" name
  IFS=',' read -ra names <<<"$list"
  if [[ "${#names[@]}" -eq 0 ]]; then
    echo "check.sh: empty stage list for --$dest" >&2
    exit 2
  fi
  for name in "${names[@]}"; do
    if ! known_stage "$name"; then
      echo "check.sh: unknown stage '$name' (known: ${STAGES[*]})" >&2
      exit 2
    fi
    if [[ "$dest" == "stage" ]]; then
      ONLY+=("$name")
    else
      SKIP+=("$name")
    fi
  done
}

while [[ $# -gt 0 ]]; do
  case "$1" in
    --quick) QUICK=1 ;;
    --stage | --skip)
      if [[ $# -lt 2 ]]; then
        echo "check.sh: $1 needs a stage name" >&2
        exit 2
      fi
      add_stages "${1#--}" "$2"
      shift
      ;;
    --stage=*) add_stages stage "${1#--stage=}" ;;
    --skip=*) add_stages skip "${1#--skip=}" ;;
    --timings-json)
      if [[ $# -lt 2 ]]; then
        echo "check.sh: --timings-json needs a path" >&2
        exit 2
      fi
      TIMINGS_JSON="$2"
      shift
      ;;
    --timings-json=*) TIMINGS_JSON="${1#--timings-json=}" ;;
    *)
      echo "check.sh: unknown argument '$1' (expected --quick, --stage," \
        "--skip or --timings-json)" >&2
      exit 2
      ;;
  esac
  shift
done

selected() {
  local name="$1" s
  if [[ "${#ONLY[@]}" -gt 0 ]]; then
    local found=0
    for s in "${ONLY[@]}"; do
      [[ "$s" == "$name" ]] && found=1
    done
    [[ "$found" -eq 1 ]] || return 1
  fi
  if [[ "$QUICK" -eq 1 ]]; then
    local quick=0
    for s in "${QUICK_STAGES[@]}"; do
      [[ "$s" == "$name" ]] && quick=1
    done
    [[ "$quick" -eq 1 ]] || return 1
  fi
  if [[ "${#SKIP[@]}" -gt 0 ]]; then
    for s in "${SKIP[@]}"; do
      [[ "$s" == "$name" ]] && return 1
    done
  fi
  return 0
}

now_s() {
  # Sub-second wall clock where bash provides it (5.0+), whole seconds
  # otherwise — the JSON consumer treats both as plain numbers.
  echo "${EPOCHREALTIME:-$SECONDS}"
}

elapsed() {
  awk -v a="$1" -v b="$2" 'BEGIN { printf "%.3f", b - a }'
}

TIMED_NAMES=()
TIMED_SECS=()
TIMED_STATUS=()
RUNNING_STAGE=""
RUNNING_T0=0

# Per-stage wall times as a small stable JSON document, written on every
# exit path when --timings-json was given: completed stages as recorded,
# plus the in-flight stage marked "failed" when a gate aborted the run.
write_timings() {
  [[ -n "$TIMINGS_JSON" ]] || return 0
  local names=("${TIMED_NAMES[@]}") secs=("${TIMED_SECS[@]}") status=("${TIMED_STATUS[@]}")
  if [[ -n "$RUNNING_STAGE" ]]; then
    names+=("$RUNNING_STAGE")
    secs+=("$(elapsed "$RUNNING_T0" "$(now_s)")")
    status+=("failed")
  fi
  {
    echo "{"
    echo "  \"schema\": \"postopc-check-timings-v1\","
    echo "  \"stages\": ["
    local i last=$((${#names[@]} - 1))
    for i in "${!names[@]}"; do
      local comma=","
      [[ "$i" -eq "$last" ]] && comma=""
      echo "    {\"name\": \"${names[$i]}\", \"wall_s\": ${secs[$i]}, \"status\": \"${status[$i]}\"}$comma"
    done
    echo "  ]"
    echo "}"
  } >"$TIMINGS_JSON"
  echo "check.sh: wrote stage timings to $TIMINGS_JSON"
}
trap write_timings EXIT

RAN=0
# Runs one named stage if selected, timing it. Any command failure aborts
# the script (set -e), so a stage that prints its wall time has passed.
stage() {
  local name="$1"
  shift
  selected "$name" || return 0
  echo "== stage $name: $*"
  RUNNING_STAGE="$name"
  RUNNING_T0="$(now_s)"
  "$@"
  local dt
  dt="$(elapsed "$RUNNING_T0" "$(now_s)")"
  RUNNING_STAGE=""
  TIMED_NAMES+=("$name")
  TIMED_SECS+=("$dt")
  TIMED_STATUS+=("passed")
  RAN=$((RAN + 1))
  echo "== stage $name passed in $dt s"
}

stage fmt cargo fmt --check
stage clippy cargo clippy --workspace --all-targets -- -D warnings
# Library and binary code (#[cfg(test)] excluded) must route every
# fallible path through typed errors: unwrap()/expect() are deny-by-default
# and each surviving call carries a scoped #[allow] naming its invariant.
# The bench *library* carries a crate-level allow (documented panic-on-
# setup contract); its CI-gating *bins* fail via OrExit, never a panic.
strict_stage() {
  cargo clippy --workspace --lib --bins -- \
    -D warnings -D clippy::unwrap_used -D clippy::expect_used
}
stage strict strict_stage
stage build cargo build --release
stage test cargo test -q
stage wstest cargo test --workspace -q
stage smoke cargo run --release -p postopc-bench --bin perf_smoke

# Thread matrix: the parity gates re-run with the worker pool pinned to
# 1, 2 and 4 threads, so par_map_costed / par_map_init determinism is
# exercised off the single-thread fallback path too.
thread_matrix() {
  local t
  for t in 1 2 4; do
    echo "-- POSTOPC_THREADS=$t"
    POSTOPC_THREADS="$t" cargo run --release -p postopc-bench --bin perf_smoke
  done
}
stage threads thread_matrix

# Fault-injection smoke: a seeded injector over the repro design must
# complete under quarantine, report exact counts, stay bit-identical
# across the thread matrix, and trip the budget past the cap.
stage faults cargo run --release -p postopc-bench --bin fault_smoke

# Batched Monte Carlo smoke: cross-engine bit-parity over sampling
# schemes and lane remainders, warm shared-cache effectiveness, and the
# variance-reduction convergence gate (antithetic/stratified @500 vs
# plain @2000 on the mean worst slack).
stage mc_batch cargo run --release -p postopc-bench --bin mc_batch_smoke

# Tail-targeted Monte Carlo smoke, across the same thread matrix as the
# parity gates: importance sampling + control variate must stay
# bit-identical for every engine and POSTOPC_THREADS in {1,2,4}, weights
# must self-normalize, the control variate must be exact on a pure
# linear model, and tail-IS@500 must estimate the 1%-quantile at least
# as well as plain@2000 on the T6 convergence study.
tail_matrix() {
  local t
  for t in 1 2 4; do
    echo "-- POSTOPC_THREADS=$t"
    POSTOPC_THREADS="$t" cargo run --release -p postopc-bench --bin tail_smoke
  done
}
stage tail tail_matrix

# Warm-service smoke: persisted-artifact round trips (cold == warm, bit
# for bit; corrupt/truncated/stale artifacts come back as typed errors),
# incremental ECO re-analysis parity against a from-scratch run, and the
# 10x warm-query speedup floor on the T6/T9 workloads.
stage serve cargo run --release -p postopc-bench --bin serve_smoke

# Chaos stage: seeded I/O fault schedules against the durable serving
# layer, replayed across the thread matrix. Serves must answer
# bit-identically to fault-free or fail with typed errors — never panic,
# never publish a torn artifact, never serve a stale one warm.
chaos_matrix() {
  local t
  for t in 1 2 4; do
    echo "-- POSTOPC_THREADS=$t"
    POSTOPC_THREADS="$t" cargo run --release -p postopc-bench --bin chaos_smoke
  done
}
stage chaos chaos_matrix

# Learned-CD-surrogate smoke: offline training via surrogate_train (the
# POCSURR1 file write), then surrogate_smoke's gates — in-distribution
# parity vs SOCS, serial-vs-pool bit identity, 100% fallback on an out-
# of-distribution layout, the wall-time speedup floor, and the trained
# model loading back in as a warm seed.
surrogate_stage() {
  cargo run --release -p postopc-bench --bin surrogate_train -- \
    --out target/surrogate_ci.bin
  cargo run --release -p postopc-bench --bin surrogate_smoke -- \
    --model target/surrogate_ci.bin
}
stage surrogate surrogate_stage

stage bench cargo run --release -p postopc-bench --bin perf_smoke -- --bench-regression
stage bench_serve cargo run --release -p postopc-bench --bin serve_smoke -- --bench-regression

if [[ "$RAN" -eq 0 ]]; then
  echo "check.sh: no stage selected (filters left nothing to run)" >&2
  exit 2
fi
echo "check.sh: all selected gates passed ($RAN stage(s))"
