/root/repo/target/debug/deps/postopc_suite-b941c503c820c1b0.d: src/lib.rs

/root/repo/target/debug/deps/libpostopc_suite-b941c503c820c1b0.rlib: src/lib.rs

/root/repo/target/debug/deps/libpostopc_suite-b941c503c820c1b0.rmeta: src/lib.rs

src/lib.rs:
