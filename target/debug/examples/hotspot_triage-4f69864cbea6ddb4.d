/root/repo/target/debug/examples/hotspot_triage-4f69864cbea6ddb4.d: examples/hotspot_triage.rs Cargo.toml

/root/repo/target/debug/examples/libhotspot_triage-4f69864cbea6ddb4.rmeta: examples/hotspot_triage.rs Cargo.toml

examples/hotspot_triage.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
