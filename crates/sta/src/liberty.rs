//! Timing library: electrical characterization of standard cells from the
//! device model (the stand-in for a Liberty/NLDM deck).

use crate::annotate::TransistorCd;
use crate::error::{Result, StaError};
use postopc_device::{MosKind, Mosfet, ProcessParams};
use postopc_layout::{CellLibrary, Drive, GateKind};
use std::collections::HashMap;

/// Sequential timing arcs of a register cell.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SequentialTiming {
    /// Clock-to-Q delay, in ps.
    pub clk_to_q_ps: f64,
    /// Setup time required at D before the capturing edge, in ps.
    pub setup_ps: f64,
}

/// Number of input-slew grid points in an NLDM table.
pub const NLDM_SLEW_PTS: usize = 4;
/// Number of output-load grid points in an NLDM table.
pub const NLDM_LOAD_PTS: usize = 4;

/// The global input-slew axis shared by every cell's table, in ps.
/// Geometric spacing covers the slews the library itself produces (a few
/// ps for a strong gate into a light load, hundreds for a weak gate into
/// a long wire's lumped sinks).
pub const NLDM_SLEW_AXIS_PS: [f64; NLDM_SLEW_PTS] = [4.0, 16.0, 64.0, 256.0];

/// Load-axis points as multiples of the cell's own input capacitance
/// (FO1/4-ish up to FO32): per-cell scaling keeps the grid centered on the
/// loads that cell actually sees, whatever its drive strength.
const NLDM_LOAD_MULT: [f64; NLDM_LOAD_PTS] = [0.25, 2.0, 8.0, 32.0];

/// Input slew assumed at primary inputs and undriven nets, in ps.
pub const PRIMARY_INPUT_SLEW_PS: f64 = 20.0;

/// Slew of the clock edge launching sequential arcs, in ps.
pub const CLOCK_SLEW_PS: f64 = 20.0;

/// 10–90% transition gain of an RC output node (`ln 9`).
const SLEW_GAIN: f64 = 2.2;

/// Fraction of the input transition that feeds through to the output
/// transition of a switching CMOS stage.
const SLEW_FEEDTHROUGH: f64 = 0.25;

/// One NLDM-style 2-D timing table: delay and output slew of a cell's
/// worst arc indexed by (input slew, output load).
///
/// The slew axis is the global [`NLDM_SLEW_AXIS_PS`]; the load axis is
/// per-cell ([`load_axis_ff`](Self::load_axis_ff)). Lookups bilinearly
/// interpolate inside the grid and **clamp** to the edges outside it —
/// out-of-range queries never extrapolate past the characterized corner
/// values.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NldmTable {
    /// Output-load grid points, in fF (ascending).
    pub load_axis_ff: [f64; NLDM_LOAD_PTS],
    /// Arc delay at each (slew, load) node, in ps.
    pub delay_grid_ps: [[f64; NLDM_LOAD_PTS]; NLDM_SLEW_PTS],
    /// Output slew at each (slew, load) node, in ps.
    pub slew_grid_ps: [[f64; NLDM_LOAD_PTS]; NLDM_SLEW_PTS],
}

impl NldmTable {
    /// The all-zero table (placeholder storage; never evaluated).
    pub const ZERO: NldmTable = NldmTable {
        load_axis_ff: [0.0; NLDM_LOAD_PTS],
        delay_grid_ps: [[0.0; NLDM_LOAD_PTS]; NLDM_SLEW_PTS],
        slew_grid_ps: [[0.0; NLDM_LOAD_PTS]; NLDM_SLEW_PTS],
    };

    /// Clamped segment lookup on an ascending axis: the segment index and
    /// the interpolation weight in `[0, 1]` within it.
    ///
    /// Branchless on purpose: the segment index is a popcount of
    /// `x > axis[k]` tests and the weight clamp folds the two
    /// out-of-range cases into the in-range formula — per-lane slews and
    /// loads land in different segments, so data-dependent branches here
    /// would mispredict constantly in the batched evaluator's hot loop.
    /// Bit-compatible with the branchy form: inside a segment the weight
    /// expression is untouched, below the axis it clamps to exactly 0.0,
    /// above to exactly 1.0.
    fn segment(axis: &[f64], x: f64) -> (usize, f64) {
        let last = axis.len() - 1;
        let mut i = 0;
        for &knot in &axis[1..last] {
            i += usize::from(x > knot);
        }
        let w = ((x - axis[i]) / (axis[i + 1] - axis[i])).clamp(0.0, 1.0);
        (i, w)
    }

    /// Interpolates one grid at a resolved segment pair.
    ///
    /// Endpoint-exact lerp form: at a weight of exactly 0 or 1 the
    /// result is the grid node's bits, not a round-trip through a
    /// difference — queries on grid nodes replay characterization
    /// exactly.
    #[inline]
    fn lerp2(
        grid: &[[f64; NLDM_LOAD_PTS]; NLDM_SLEW_PTS],
        (i, ws): (usize, f64),
        (j, wc): (usize, f64),
    ) -> f64 {
        let lo = (1.0 - wc) * grid[i][j] + wc * grid[i][j + 1];
        let hi = (1.0 - wc) * grid[i + 1][j] + wc * grid[i + 1][j + 1];
        (1.0 - ws) * lo + ws * hi
    }

    /// Clamped bilinear interpolation of one grid at (slew, load).
    fn bilinear(
        &self,
        grid: &[[f64; NLDM_LOAD_PTS]; NLDM_SLEW_PTS],
        slew_ps: f64,
        load_ff: f64,
    ) -> f64 {
        let s = Self::segment(&NLDM_SLEW_AXIS_PS, slew_ps);
        let c = Self::segment(&self.load_axis_ff, load_ff);
        Self::lerp2(grid, s, c)
    }

    /// Arc delay at (input slew, output load), in ps. For sequential
    /// cells this is the full clock-to-Q launch arc.
    pub fn delay_ps(&self, slew_ps: f64, load_ff: f64) -> f64 {
        self.bilinear(&self.delay_grid_ps, slew_ps, load_ff)
    }

    /// Output slew at (input slew, output load), in ps.
    pub fn output_slew_ps(&self, slew_ps: f64, load_ff: f64) -> f64 {
        self.bilinear(&self.slew_grid_ps, slew_ps, load_ff)
    }

    /// Arc delay and output slew at one (input slew, output load) point,
    /// resolving the two axis searches once and interpolating both grids
    /// from them. Bit-identical to calling [`Self::delay_ps`] then
    /// [`Self::output_slew_ps`] — the identical lerps on the identical
    /// segments — at half the search cost; the compiled evaluators'
    /// propagation loops use this form.
    #[inline]
    pub fn delay_and_slew_ps(&self, slew_ps: f64, load_ff: f64) -> (f64, f64) {
        let s = Self::segment(&NLDM_SLEW_AXIS_PS, slew_ps);
        let c = Self::segment(&self.load_axis_ff, load_ff);
        (
            Self::lerp2(&self.delay_grid_ps, s, c),
            Self::lerp2(&self.slew_grid_ps, s, c),
        )
    }
}

/// Electrical timing view of one cell (possibly CD-annotated).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CellTiming {
    /// Capacitance presented by one input pin, in fF.
    pub input_cap_ff: f64,
    /// Effective pull-up resistance, in kΩ.
    pub pull_up_r_kohm: f64,
    /// Effective pull-down resistance, in kΩ.
    pub pull_down_r_kohm: f64,
    /// Parasitic (self-load) delay, in ps.
    pub intrinsic_ps: f64,
    /// Output-node junction capacitance, in fF.
    pub output_cap_ff: f64,
    /// Static leakage, in µA.
    pub leakage_ua: f64,
    /// Register arcs (`Some` only for sequential cells).
    pub sequential: Option<SequentialTiming>,
    /// The cell's 2-D (input slew × output load) delay/slew table. For
    /// sequential cells the delay grid is the full clock-to-Q launch arc;
    /// for combinational cells it includes the intrinsic term, so the
    /// table alone is the gate's lumped-load delay.
    pub nldm: NldmTable,
}

impl CellTiming {
    /// Average drive resistance used for generic (non-edge-specific)
    /// delay arcs, in kΩ.
    pub fn drive_r_kohm(&self) -> f64 {
        0.5 * (self.pull_up_r_kohm + self.pull_down_r_kohm)
    }
}

/// A characterized timing library for a cell library + process.
///
/// ```
/// use postopc_sta::TimingLibrary;
/// use postopc_layout::{CellLibrary, TechRules, GateKind, Drive};
/// use postopc_device::ProcessParams;
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let cells = CellLibrary::new(TechRules::n90())?;
/// let lib = TimingLibrary::characterize(&cells, ProcessParams::n90())?;
/// let inv = lib.drawn_timing(GateKind::Inv, Drive::X1);
/// assert!(inv.input_cap_ff > 0.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct TimingLibrary {
    process: ProcessParams,
    drawn: HashMap<(GateKind, Drive), CellTiming>,
    drawn_transistors: HashMap<(GateKind, Drive), Vec<TransistorCd>>,
}

impl TimingLibrary {
    /// Characterizes every cell of `cells` under `process`.
    ///
    /// # Errors
    ///
    /// Propagates device-model errors (impossible for valid cell layouts).
    pub fn characterize(cells: &CellLibrary, process: ProcessParams) -> Result<TimingLibrary> {
        let mut drawn = HashMap::new();
        let mut drawn_transistors = HashMap::new();
        for cell in cells.iter() {
            let records: Vec<TransistorCd> = cell
                .transistors()
                .iter()
                .map(|t| {
                    TransistorCd::drawn(t.kind, t.width_nm, t.length_nm, t.input_pin, t.finger)
                })
                .collect();
            let timing = Self::timing_from_transistors(&process, cell.kind(), &records)?;
            drawn.insert((cell.kind(), cell.drive()), timing);
            drawn_transistors.insert((cell.kind(), cell.drive()), records);
        }
        Ok(TimingLibrary {
            process,
            drawn,
            drawn_transistors,
        })
    }

    /// The process parameters of the library.
    pub fn process(&self) -> &ProcessParams {
        &self.process
    }

    /// Drawn-dimension timing of a cell.
    ///
    /// # Panics
    ///
    /// Never in practice: characterization covers every kind/drive pair.
    pub fn drawn_timing(&self, kind: GateKind, drive: Drive) -> CellTiming {
        self.drawn[&(kind, drive)]
    }

    /// The drawn transistor records of a cell (template for annotation).
    ///
    /// # Panics
    ///
    /// Never in practice: characterization covers every kind/drive pair.
    pub fn drawn_transistors(&self, kind: GateKind, drive: Drive) -> &[TransistorCd] {
        &self.drawn_transistors[&(kind, drive)]
    }

    /// Timing of a cell instance with extracted (post-OPC) CDs.
    ///
    /// # Errors
    ///
    /// Propagates device-model errors for non-physical extracted lengths.
    pub fn annotated_timing(
        &self,
        kind: GateKind,
        transistors: &[TransistorCd],
    ) -> Result<CellTiming> {
        Self::timing_from_transistors(&self.process, kind, transistors)
    }

    /// [`annotated_timing`](Self::annotated_timing) through a memoized
    /// [`CharacterizationCache`]: characterization runs once per distinct
    /// `(kind, CD ensemble)` instead of once per gate instance.
    ///
    /// A cache hit replays the exact `CellTiming` bits of the original
    /// characterization — the key quantization is the identity (`f64`
    /// bit patterns), so cached and uncached paths are bit-identical.
    ///
    /// # Errors
    ///
    /// Propagates device-model errors for non-physical extracted lengths.
    pub fn annotated_timing_cached(
        &self,
        cache: &mut CharacterizationCache,
        kind: GateKind,
        transistors: &[TransistorCd],
    ) -> Result<CellTiming> {
        if let Some(timing) = cache.get(kind, transistors) {
            return Ok(timing);
        }
        let timing = Self::timing_from_transistors(&self.process, kind, transistors)?;
        cache.insert(kind, timing);
        Ok(timing)
    }

    /// Core characterization: reduce a transistor ensemble to RC/leakage.
    fn timing_from_transistors(
        process: &ProcessParams,
        kind: GateKind,
        transistors: &[TransistorCd],
    ) -> Result<CellTiming> {
        // Group drive fingers per logic input. Buffers and registers
        // drive their output from the internal (None) stage.
        let drive_group = |t: &TransistorCd| match kind {
            GateKind::Buf | GateKind::Dff => t.input_pin.is_none(),
            _ => t.input_pin.is_some(),
        };
        // Per-input drive buckets in first-seen order. Cells have at most
        // a handful of pins, so linear probes beat hashing — and unlike a
        // HashMap, the summation order is deterministic, which the
        // characterization cache's replay guarantee depends on.
        let mut i_on_n: Vec<(Option<usize>, f64)> = Vec::with_capacity(4);
        let mut i_on_p: Vec<(Option<usize>, f64)> = Vec::with_capacity(4);
        let mut input_pins: Vec<usize> = Vec::with_capacity(4);
        let accumulate =
            |buckets: &mut Vec<(Option<usize>, f64)>, pin: Option<usize>, i: f64| match buckets
                .iter_mut()
                .find(|(p, _)| *p == pin)
            {
                Some(slot) => slot.1 += i,
                None => buckets.push((pin, i)),
            };
        let mut input_cap_sum = 0.0;
        let mut output_cap = 0.0;
        let mut leakage = 0.0;
        for t in transistors {
            // Extraction → STA boundary guard: reject non-physical CDs
            // with a gate-level error before device evaluation, so
            // injected or corrupted annotations surface at the seam
            // instead of as silent timing garbage.
            for (field, value) in [
                ("width_nm", t.width_nm),
                ("l_delay_nm", t.l_delay_nm),
                ("l_leakage_nm", t.l_leakage_nm),
            ] {
                if !value.is_finite() || value <= 0.0 {
                    return Err(StaError::InvalidCd { field, value });
                }
            }
            let delay_dev = Mosfet::new(t.kind, t.width_nm, t.l_delay_nm)?;
            let leak_dev = Mosfet::new(t.kind, t.width_nm, t.l_leakage_nm)?;
            if drive_group(t) {
                let bucket = match t.kind {
                    MosKind::Nmos => &mut i_on_n,
                    MosKind::Pmos => &mut i_on_p,
                };
                accumulate(bucket, t.input_pin, delay_dev.i_on(process));
            }
            if let Some(pin) = t.input_pin {
                input_cap_sum += delay_dev.c_gate(process);
                if !input_pins.contains(&pin) {
                    input_pins.push(pin);
                }
            }
            output_cap += delay_dev.c_drain(process);
            // Roughly half the devices see full V_ds in a static state;
            // stacked devices leak less (taken as 1/stack).
            let stack = match t.kind {
                MosKind::Nmos => kind.nmos_stack(),
                MosKind::Pmos => kind.pmos_stack(),
            } as f64;
            leakage += 0.5 * leak_dev.i_off(process) / stack;
        }
        let n_inputs = input_pins.len().max(1) as f64;
        let input_cap = input_cap_sum / n_inputs;
        let mean_current = |m: &[(Option<usize>, f64)]| {
            if m.is_empty() {
                1e-9
            } else {
                m.iter().map(|(_, i)| i).sum::<f64>() / m.len() as f64
            }
        };
        let r_down = kind.nmos_stack() as f64 * 1000.0 * process.vdd / mean_current(&i_on_n);
        let r_up = kind.pmos_stack() as f64 * 1000.0 * process.vdd / mean_current(&i_on_p);
        let intrinsic = 0.7 * 0.5 * (r_up + r_down) * output_cap;
        // Register arcs: two internal latch stages from clock edge to Q,
        // one stage of settling required at D before the edge. Both scale
        // with the same annotated drive resistances, so post-OPC CDs move
        // register timing too.
        let sequential = kind.is_sequential().then(|| {
            let stage = intrinsic + 0.5 * (r_up + r_down) * input_cap;
            SequentialTiming {
                clk_to_q_ps: 2.0 * stage,
                setup_ps: stage,
            }
        });
        let nldm = Self::build_nldm(
            process,
            input_cap,
            output_cap,
            intrinsic,
            0.5 * (r_up + r_down),
            &sequential,
        );
        Ok(CellTiming {
            input_cap_ff: input_cap,
            pull_up_r_kohm: r_up,
            pull_down_r_kohm: r_down,
            intrinsic_ps: intrinsic,
            output_cap_ff: output_cap,
            leakage_ua: leakage,
            sequential,
            nldm,
        })
    }

    /// Characterizes the cell's 2-D NLDM table at every (slew, load) grid
    /// node. The node model is the RC drive delay plus a slew-dependent
    /// term: a slow input edge holds the gate in its transition region for
    /// a fraction `Vth/Vdd` of the input slew, with the penalty saturating
    /// once the output pole (load ≫ the cell's own capacitance) dominates.
    /// Output slew is the 10–90% RC transition combined in quadrature with
    /// the feed-through of the input edge — deliberately nonlinear in
    /// (slew, load), so bilinear interpolation is a genuine approximation
    /// and exact only at the grid nodes.
    fn build_nldm(
        process: &ProcessParams,
        input_cap: f64,
        output_cap: f64,
        intrinsic: f64,
        drive_r: f64,
        sequential: &Option<SequentialTiming>,
    ) -> NldmTable {
        let launch_ps = match sequential {
            Some(seq) => seq.clk_to_q_ps,
            None => intrinsic,
        };
        // Load scale at which the slew penalty saturates: the cell's own
        // capacitive footprint.
        let c_char = input_cap + output_cap;
        let vth_frac = 0.5 * (process.vth0_n + process.vth0_p) / process.vdd;
        let mut load_axis_ff = [0.0; NLDM_LOAD_PTS];
        for (j, mult) in NLDM_LOAD_MULT.iter().enumerate() {
            load_axis_ff[j] = mult * input_cap;
        }
        let mut delay_grid_ps = [[0.0; NLDM_LOAD_PTS]; NLDM_SLEW_PTS];
        let mut slew_grid_ps = [[0.0; NLDM_LOAD_PTS]; NLDM_SLEW_PTS];
        for (i, &s) in NLDM_SLEW_AXIS_PS.iter().enumerate() {
            for (j, &c) in load_axis_ff.iter().enumerate() {
                delay_grid_ps[i][j] = launch_ps + drive_r * c + vth_frac * s * c / (c + c_char);
                slew_grid_ps[i][j] = (SLEW_GAIN * drive_r * c).hypot(SLEW_FEEDTHROUGH * s);
            }
        }
        NldmTable {
            load_axis_ff,
            delay_grid_ps,
            slew_grid_ps,
        }
    }
}

/// Exact-bit key of one transistor record: the `f64` dimensions are keyed
/// by their IEEE-754 bit patterns (identity quantization), so two records
/// collide only when characterization would compute the very same floats.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct RecordKey {
    kind: MosKind,
    width_bits: u64,
    l_delay_bits: u64,
    l_leakage_bits: u64,
    input_pin: Option<usize>,
    finger: usize,
}

impl RecordKey {
    fn of(t: &TransistorCd) -> RecordKey {
        RecordKey {
            kind: t.kind,
            width_bits: t.width_nm.to_bits(),
            l_delay_bits: t.l_delay_nm.to_bits(),
            l_leakage_bits: t.l_leakage_nm.to_bits(),
            input_pin: t.input_pin,
            finger: t.finger,
        }
    }

    /// Inverse of [`Self::of`] — the key stores the record's exact bit
    /// patterns, so the round-trip reproduces the record bit for bit.
    fn expand(&self) -> TransistorCd {
        TransistorCd {
            kind: self.kind,
            width_nm: f64::from_bits(self.width_bits),
            l_delay_nm: f64::from_bits(self.l_delay_bits),
            l_leakage_nm: f64::from_bits(self.l_leakage_bits),
            input_pin: self.input_pin,
            finger: self.finger,
        }
    }
}

/// Default entry cap of the characterization cache. Corner and extraction
/// workloads deduplicate to a handful of distinct ensembles; a Monte Carlo
/// stream of fresh random CDs would otherwise grow one entry per gate per
/// sample, so past the cap new ensembles are characterized without being
/// stored (existing entries keep hitting). Overridable per process via
/// [`CHAR_CACHE_CAP_ENV`].
pub const CHAR_CACHE_CAP_DEFAULT: usize = 4096;

/// Environment variable overriding the characterization-cache entry cap
/// (positive integer; unset, empty or unparsable values fall back to
/// [`CHAR_CACHE_CAP_DEFAULT`]). Read when a cache is created, following
/// the `POSTOPC_THREADS` precedent.
pub const CHAR_CACHE_CAP_ENV: &str = "POSTOPC_CHAR_CACHE_CAP";

/// Resolves a positive cache cap from an environment variable, falling
/// back to `default` when unset or unparsable (shared by the
/// characterization and shift caches).
pub(crate) fn env_cache_cap(var: &str, default: usize) -> usize {
    std::env::var(var)
        .ok()
        .and_then(|s| s.trim().parse::<usize>().ok())
        .filter(|&cap| cap > 0)
        .unwrap_or(default)
}

/// One memoized characterization: the kind + exact record keys it was
/// computed for, and the resulting timing.
type CacheEntry = (GateKind, Box<[RecordKey]>, CellTiming);

/// A memoized characterization cache for
/// [`TimingLibrary::annotated_timing_cached`], keyed by `(GateKind,`
/// exact CD bit patterns`)`.
///
/// Lookups stage the probe key in a reusable buffer, so a cache hit costs
/// one hash and one comparison — no allocation. The cache is plain mutable
/// state: each evaluation scratch (worker) owns one, and because a hit
/// replays the exact bits a miss would compute, results never depend on
/// hit/miss history or cache sharing.
#[derive(Debug)]
pub struct CharacterizationCache {
    /// Hash-bucketed entries; collisions resolved by full-key comparison.
    buckets: HashMap<u64, Vec<CacheEntry>>,
    /// Probe key staging buffer, reused across lookups.
    key_buf: Vec<RecordKey>,
    /// Hash of the last staged probe (consumed by `insert`).
    staged_hash: u64,
    /// Entry cap resolved at construction (env override or default).
    cap: usize,
    entries: usize,
    hits: u64,
    misses: u64,
    /// Insertions refused because the cache was at its cap.
    rejected: u64,
}

impl Default for CharacterizationCache {
    fn default() -> CharacterizationCache {
        CharacterizationCache::new()
    }
}

impl CharacterizationCache {
    /// An empty cache whose entry cap is [`CHAR_CACHE_CAP_DEFAULT`] or the
    /// [`CHAR_CACHE_CAP_ENV`] override, resolved now.
    pub fn new() -> CharacterizationCache {
        Self::with_cap(env_cache_cap(CHAR_CACHE_CAP_ENV, CHAR_CACHE_CAP_DEFAULT))
    }

    /// An empty cache with an explicit entry cap (tests and tools that
    /// should not depend on the process environment).
    pub fn with_cap(cap: usize) -> CharacterizationCache {
        CharacterizationCache {
            buckets: HashMap::new(),
            key_buf: Vec::new(),
            staged_hash: 0,
            cap: cap.max(1),
            entries: 0,
            hits: 0,
            misses: 0,
            rejected: 0,
        }
    }

    /// Number of memoized characterizations.
    pub fn len(&self) -> usize {
        self.entries
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries == 0
    }

    /// The entry cap this cache was created with.
    pub fn cap(&self) -> usize {
        self.cap
    }

    /// Lookups that replayed a memoized characterization.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Lookups that fell through to the device model.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Insertions refused because the cache was at its cap (those
    /// ensembles were characterized without being memoized).
    pub fn rejected(&self) -> u64 {
        self.rejected
    }

    /// Stages the probe key for `(kind, transistors)` and returns the
    /// memoized timing, if present.
    fn get(&mut self, kind: GateKind, transistors: &[TransistorCd]) -> Option<CellTiming> {
        use std::hash::{Hash, Hasher};
        self.key_buf.clear();
        self.key_buf.extend(transistors.iter().map(RecordKey::of));
        let mut hasher = std::collections::hash_map::DefaultHasher::new();
        kind.hash(&mut hasher);
        self.key_buf.hash(&mut hasher);
        self.staged_hash = hasher.finish();
        let found = self.buckets.get(&self.staged_hash).and_then(|bucket| {
            bucket
                .iter()
                .find(|(k, key, _)| *k == kind && key[..] == self.key_buf[..])
                .map(|&(_, _, timing)| timing)
        });
        match found {
            Some(timing) => {
                self.hits += 1;
                Some(timing)
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Memoizes `timing` under the key staged by the preceding `get` miss.
    fn insert(&mut self, kind: GateKind, timing: CellTiming) {
        if self.entries >= self.cap {
            self.rejected += 1;
            return;
        }
        self.buckets.entry(self.staged_hash).or_default().push((
            kind,
            self.key_buf.as_slice().into(),
            timing,
        ));
        self.entries += 1;
    }

    /// Snapshot of every memoized entry, in a deterministic order (sorted
    /// by bucket hash, then bucket position) — the serialization view the
    /// warm-artifact store persists. Record keys are expanded back to the
    /// exact [`TransistorCd`]s they were staged from: the key *is* the
    /// record's bit patterns, so the round-trip is lossless.
    pub fn export(&self) -> Vec<CharCacheEntry> {
        let mut hashes: Vec<u64> = self.buckets.keys().copied().collect();
        hashes.sort_unstable();
        let mut out = Vec::with_capacity(self.entries);
        for h in hashes {
            let Some(bucket) = self.buckets.get(&h) else {
                continue;
            };
            for (kind, keys, timing) in bucket {
                out.push(CharCacheEntry {
                    kind: *kind,
                    records: keys.iter().map(RecordKey::expand).collect(),
                    timing: *timing,
                });
            }
        }
        out
    }

    /// Re-memoizes a previously exported entry, staging its key through
    /// the regular probe path so absorbed and natively inserted entries
    /// hash identically. Entries already present (or past the cap) are
    /// left alone; the probe counts toward the miss/hit counters like any
    /// other lookup.
    pub fn absorb(&mut self, entry: &CharCacheEntry) {
        if self.get(entry.kind, &entry.records).is_none() {
            self.insert(entry.kind, entry.timing);
        }
    }
}

/// One exported characterization-cache entry (see
/// [`CharacterizationCache::export`] / [`CharacterizationCache::absorb`]):
/// the exact transistor ensemble the timing was computed for, and the
/// timing itself.
#[derive(Debug, Clone, PartialEq)]
pub struct CharCacheEntry {
    /// Gate kind of the characterized cell.
    pub kind: GateKind,
    /// The exact CD records the timing was memoized under.
    pub records: Vec<TransistorCd>,
    /// The memoized electrical view.
    pub timing: CellTiming,
}

#[cfg(test)]
mod tests {
    use super::*;
    use postopc_layout::TechRules;

    fn library() -> TimingLibrary {
        let cells = CellLibrary::new(TechRules::n90()).expect("cells");
        TimingLibrary::characterize(&cells, ProcessParams::n90()).expect("characterize")
    }

    #[test]
    fn boundary_guard_rejects_non_physical_cds() {
        let lib = library();
        let template = TransistorCd {
            kind: MosKind::Nmos,
            width_nm: 260.0,
            l_delay_nm: 90.0,
            l_leakage_nm: 90.0,
            input_pin: Some(0),
            finger: 0,
        };
        for (field, record) in [
            (
                "l_delay_nm",
                TransistorCd {
                    l_delay_nm: f64::NAN,
                    ..template
                },
            ),
            (
                "l_leakage_nm",
                TransistorCd {
                    l_leakage_nm: f64::NEG_INFINITY,
                    ..template
                },
            ),
            (
                "width_nm",
                TransistorCd {
                    width_nm: 0.0,
                    ..template
                },
            ),
        ] {
            match lib.annotated_timing(GateKind::Inv, &[record]) {
                Err(StaError::InvalidCd { field: f, .. }) => assert_eq!(f, field),
                other => panic!("expected InvalidCd for {field}, got {other:?}"),
            }
        }
    }

    #[test]
    fn characterizes_every_cell() {
        let lib = library();
        for kind in GateKind::ALL {
            for drive in Drive::ALL {
                let t = lib.drawn_timing(kind, drive);
                assert!(
                    t.input_cap_ff > 0.1 && t.input_cap_ff < 50.0,
                    "{kind}{drive} cap"
                );
                assert!(t.pull_down_r_kohm > 0.1 && t.pull_down_r_kohm < 100.0);
                assert!(t.intrinsic_ps > 0.0);
                assert!(t.leakage_ua > 0.0);
            }
        }
    }

    #[test]
    fn higher_drive_means_lower_resistance() {
        let lib = library();
        for kind in GateKind::ALL {
            let x1 = lib.drawn_timing(kind, Drive::X1);
            let x4 = lib.drawn_timing(kind, Drive::X4);
            assert!(
                x4.pull_down_r_kohm < 0.5 * x1.pull_down_r_kohm,
                "{kind}: X4 {} vs X1 {}",
                x4.pull_down_r_kohm,
                x1.pull_down_r_kohm
            );
        }
    }

    #[test]
    fn stacks_raise_resistance() {
        let lib = library();
        let inv = lib.drawn_timing(GateKind::Inv, Drive::X1);
        let nand3 = lib.drawn_timing(GateKind::Nand3, Drive::X1);
        assert!(nand3.pull_down_r_kohm > 2.0 * inv.pull_down_r_kohm);
        let nor2 = lib.drawn_timing(GateKind::Nor2, Drive::X1);
        assert!(nor2.pull_up_r_kohm > 1.5 * inv.pull_up_r_kohm);
    }

    #[test]
    fn shorter_annotated_length_speeds_up_and_leaks_more() {
        let lib = library();
        let drawn = lib.drawn_timing(GateKind::Inv, Drive::X1);
        let mut records = lib.drawn_transistors(GateKind::Inv, Drive::X1).to_vec();
        for r in &mut records {
            r.l_delay_nm = 84.0;
            r.l_leakage_nm = 84.0;
        }
        let annotated = lib
            .annotated_timing(GateKind::Inv, &records)
            .expect("annotate");
        assert!(annotated.pull_down_r_kohm < drawn.pull_down_r_kohm);
        assert!(annotated.leakage_ua > 1.5 * drawn.leakage_ua);
    }

    #[test]
    fn fo4_delay_is_physically_plausible() {
        let lib = library();
        let inv = lib.drawn_timing(GateKind::Inv, Drive::X1);
        let fo4 = inv.intrinsic_ps + inv.drive_r_kohm() * 4.0 * inv.input_cap_ff;
        // 90 nm FO4 is ~25-45 ps in silicon; our abstraction should land
        // within a loose factor.
        assert!((5.0..120.0).contains(&fo4), "FO4 = {fo4} ps");
    }

    #[test]
    fn cached_characterization_is_bit_identical_and_counts() {
        let lib = library();
        let mut cache = CharacterizationCache::new();
        let mut records = lib.drawn_transistors(GateKind::Nand2, Drive::X2).to_vec();
        for r in &mut records {
            r.l_delay_nm = 87.25;
            r.l_leakage_nm = 88.5;
        }
        let direct = lib
            .annotated_timing(GateKind::Nand2, &records)
            .expect("direct");
        let miss = lib
            .annotated_timing_cached(&mut cache, GateKind::Nand2, &records)
            .expect("miss");
        let hit = lib
            .annotated_timing_cached(&mut cache, GateKind::Nand2, &records)
            .expect("hit");
        assert_eq!(direct, miss);
        assert_eq!(direct, hit);
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
        assert_eq!(cache.len(), 1);
        // The tiniest CD change is a different key (exact-bit match).
        records[0].l_delay_nm += f64::EPSILON * 128.0;
        let other = lib
            .annotated_timing_cached(&mut cache, GateKind::Nand2, &records)
            .expect("other");
        assert_ne!(direct, other);
        assert_eq!((cache.hits(), cache.misses()), (1, 2));
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn cache_distinguishes_gate_kinds() {
        // Same record list under a different kind must not collide: the
        // stack factors differ even when the ensembles match.
        let lib = library();
        let mut cache = CharacterizationCache::new();
        let records = vec![
            TransistorCd::drawn(MosKind::Nmos, 420.0, 90.0, Some(0), 0),
            TransistorCd::drawn(MosKind::Pmos, 640.0, 90.0, Some(0), 0),
        ];
        let inv = lib
            .annotated_timing_cached(&mut cache, GateKind::Inv, &records)
            .expect("inv");
        let nand = lib
            .annotated_timing_cached(&mut cache, GateKind::Nand2, &records)
            .expect("nand");
        assert_ne!(inv, nand);
        assert_eq!(cache.misses(), 2);
    }

    #[test]
    fn pmos_weakness_shows_in_pull_up() {
        let lib = library();
        let inv = lib.drawn_timing(GateKind::Inv, Drive::X1);
        assert!(inv.pull_up_r_kohm > inv.pull_down_r_kohm);
    }

    #[test]
    fn nldm_bilinear_is_exact_at_grid_nodes() {
        let lib = library();
        for kind in GateKind::ALL {
            for drive in Drive::ALL {
                let t = lib.drawn_timing(kind, drive);
                for (i, &s) in NLDM_SLEW_AXIS_PS.iter().enumerate() {
                    for (j, &c) in t.nldm.load_axis_ff.iter().enumerate() {
                        assert_eq!(
                            t.nldm.delay_ps(s, c),
                            t.nldm.delay_grid_ps[i][j],
                            "{kind}{drive} delay node ({i},{j})"
                        );
                        assert_eq!(
                            t.nldm.output_slew_ps(s, c),
                            t.nldm.slew_grid_ps[i][j],
                            "{kind}{drive} slew node ({i},{j})"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn nldm_extrapolation_clamps_to_the_grid_edges() {
        let lib = library();
        let t = lib.drawn_timing(GateKind::Nand2, Drive::X1);
        let s_min = NLDM_SLEW_AXIS_PS[0];
        let s_max = NLDM_SLEW_AXIS_PS[NLDM_SLEW_PTS - 1];
        let c_min = t.nldm.load_axis_ff[0];
        let c_max = t.nldm.load_axis_ff[NLDM_LOAD_PTS - 1];
        // Below/above the axes: identical to the edge query, never beyond
        // the characterized corner values.
        assert_eq!(
            t.nldm.delay_ps(0.0, c_min * 0.01),
            t.nldm.delay_ps(s_min, c_min)
        );
        assert_eq!(
            t.nldm.delay_ps(s_max * 10.0, c_max * 10.0),
            t.nldm.delay_grid_ps[NLDM_SLEW_PTS - 1][NLDM_LOAD_PTS - 1]
        );
        assert_eq!(
            t.nldm.output_slew_ps(s_max * 10.0, c_max * 10.0),
            t.nldm.slew_grid_ps[NLDM_SLEW_PTS - 1][NLDM_LOAD_PTS - 1]
        );
        // A wildly out-of-range query stays within the grid's value range.
        let max_delay = t.nldm.delay_grid_ps[NLDM_SLEW_PTS - 1][NLDM_LOAD_PTS - 1];
        assert!(t.nldm.delay_ps(1e6, 1e6) <= max_delay);
    }

    #[test]
    fn nldm_delay_is_monotone_in_load_and_slew() {
        let lib = library();
        for kind in GateKind::ALL {
            let t = lib.drawn_timing(kind, Drive::X2);
            let c_lo = t.nldm.load_axis_ff[0];
            let c_hi = t.nldm.load_axis_ff[NLDM_LOAD_PTS - 1];
            // Delay monotone in load at fixed slew (21 loads across the
            // grid, including off-node points).
            for &s in &[NLDM_SLEW_AXIS_PS[0], 20.0, 100.0] {
                let mut prev = f64::NEG_INFINITY;
                for k in 0..=20 {
                    let c = c_lo + (c_hi - c_lo) * (k as f64) / 20.0;
                    let d = t.nldm.delay_ps(s, c);
                    assert!(d >= prev, "{kind}: delay not monotone in load at s={s}");
                    prev = d;
                }
            }
            // And monotone in slew at fixed load.
            for &c in &[c_lo, 0.5 * (c_lo + c_hi), c_hi] {
                let mut prev = f64::NEG_INFINITY;
                for k in 0..=20 {
                    let s = NLDM_SLEW_AXIS_PS[0]
                        + (NLDM_SLEW_AXIS_PS[NLDM_SLEW_PTS - 1] - NLDM_SLEW_AXIS_PS[0])
                            * (k as f64)
                            / 20.0;
                    let d = t.nldm.delay_ps(s, c);
                    assert!(d >= prev, "{kind}: delay not monotone in slew at c={c}");
                    prev = d;
                }
            }
        }
    }

    #[test]
    fn nldm_tables_replay_bit_identically_through_the_cache() {
        // The 2-D table is part of the cached CellTiming: a cache hit must
        // replay every grid value bit for bit, not just the scalar fields.
        let lib = library();
        let mut cache = CharacterizationCache::new();
        let mut records = lib.drawn_transistors(GateKind::Nor2, Drive::X4).to_vec();
        for r in &mut records {
            r.l_delay_nm = 86.75;
            r.l_leakage_nm = 87.125;
        }
        let direct = lib
            .annotated_timing(GateKind::Nor2, &records)
            .expect("direct");
        let miss = lib
            .annotated_timing_cached(&mut cache, GateKind::Nor2, &records)
            .expect("miss");
        let hit = lib
            .annotated_timing_cached(&mut cache, GateKind::Nor2, &records)
            .expect("hit");
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
        for t in [&miss, &hit] {
            assert_eq!(direct.nldm.load_axis_ff, t.nldm.load_axis_ff);
            assert_eq!(direct.nldm.delay_grid_ps, t.nldm.delay_grid_ps);
            assert_eq!(direct.nldm.slew_grid_ps, t.nldm.slew_grid_ps);
        }
        // The table responds to annotation: shorter channels drive harder,
        // so every delay node of a faster ensemble is strictly smaller.
        let drawn = lib.drawn_timing(GateKind::Nor2, Drive::X4);
        for r in &mut records {
            r.l_delay_nm = 80.0;
        }
        let fast = lib
            .annotated_timing(GateKind::Nor2, &records)
            .expect("fast");
        for i in 0..NLDM_SLEW_PTS {
            for j in 0..NLDM_LOAD_PTS {
                assert!(fast.nldm.delay_grid_ps[i][j] < drawn.nldm.delay_grid_ps[i][j]);
            }
        }
    }

    #[test]
    fn nldm_slew_dependence_is_visible_and_saturating() {
        // A slower input edge must slow the gate down, and the penalty at
        // heavy load must not exceed the full Vth/Vdd fraction of the
        // extra slew (the node model saturates).
        let lib = library();
        let t = lib.drawn_timing(GateKind::Inv, Drive::X1);
        let c = t.nldm.load_axis_ff[2];
        let fast_edge = t.nldm.delay_ps(NLDM_SLEW_AXIS_PS[0], c);
        let slow_edge = t.nldm.delay_ps(NLDM_SLEW_AXIS_PS[3], c);
        let extra_slew = NLDM_SLEW_AXIS_PS[3] - NLDM_SLEW_AXIS_PS[0];
        assert!(slow_edge > fast_edge + 1.0, "slew penalty too small");
        assert!(slow_edge - fast_edge < extra_slew, "slew penalty too large");
    }

    #[test]
    fn characterization_cache_rejects_at_cap() {
        let lib = library();
        let mut cache = CharacterizationCache::with_cap(1);
        assert_eq!(cache.cap(), 1);
        let drawn = |kind| lib.drawn_transistors(kind, Drive::X1).to_vec();
        lib.annotated_timing_cached(&mut cache, GateKind::Inv, &drawn(GateKind::Inv))
            .expect("first");
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.rejected(), 0);
        // A second distinct cell does not fit: characterized but refused.
        lib.annotated_timing_cached(&mut cache, GateKind::Nand2, &drawn(GateKind::Nand2))
            .expect("second");
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.rejected(), 1);
        // The resident entry still hits; the refused one misses again.
        let hits = cache.hits();
        lib.annotated_timing_cached(&mut cache, GateKind::Inv, &drawn(GateKind::Inv))
            .expect("hit");
        assert_eq!(cache.hits(), hits + 1);
        lib.annotated_timing_cached(&mut cache, GateKind::Nand2, &drawn(GateKind::Nand2))
            .expect("miss again");
        assert_eq!(cache.rejected(), 2);
    }

    #[test]
    fn env_cap_parsing_falls_back_to_default() {
        // Not set → default; the parser itself rejects zero and garbage.
        assert_eq!(
            env_cache_cap("POSTOPC_TEST_UNSET_CAP_VAR", CHAR_CACHE_CAP_DEFAULT),
            CHAR_CACHE_CAP_DEFAULT
        );
        // with_cap(0) clamps to one resident entry instead of disabling.
        assert_eq!(CharacterizationCache::with_cap(0).cap(), 1);
    }

    #[test]
    fn export_absorb_round_trips_entries() {
        let lib = library();
        let mut cache = CharacterizationCache::new();
        for kind in [GateKind::Inv, GateKind::Nand2, GateKind::Nor2] {
            let records = lib.drawn_transistors(kind, Drive::X1).to_vec();
            lib.annotated_timing_cached(&mut cache, kind, &records)
                .expect("characterize");
        }
        let exported = cache.export();
        assert_eq!(exported.len(), cache.len());
        // Absorbing into a fresh cache reproduces every entry: lookups
        // hit without running the device model.
        let mut warm = CharacterizationCache::new();
        for entry in &exported {
            warm.absorb(entry);
        }
        assert_eq!(warm.len(), exported.len());
        for entry in &exported {
            let timing = lib
                .annotated_timing_cached(&mut warm, entry.kind, &entry.records)
                .expect("lookup");
            assert_eq!(timing, entry.timing);
        }
        // Export order is deterministic: two exports agree exactly.
        assert_eq!(cache.export(), exported);
    }
}
