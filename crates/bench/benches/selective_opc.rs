//! Benchmarks the selective-OPC cost asymmetry (experiment T7): rule-only
//! vs selective vs model-everywhere on a small job.

use criterion::{criterion_group, criterion_main, Criterion};
use postopc_geom::{Polygon, Rect};
use postopc_opc::{model, rules, selective, ModelOpcConfig, RuleOpcConfig};

fn lines() -> Vec<Polygon> {
    (0..4)
        .map(|i| Polygon::from(Rect::new(i * 280, -300, i * 280 + 90, 300).expect("rect")))
        .collect()
}

fn bench_selective(c: &mut Criterion) {
    let window = Rect::new(-300, -450, 1200, 450).expect("rect");
    let all = lines();
    let model_cfg = ModelOpcConfig {
        iterations: 3,
        ..ModelOpcConfig::standard()
    };
    let rule_cfg = RuleOpcConfig::standard();
    let mut group = c.benchmark_group("selective_opc");
    group.sample_size(10);
    group.bench_function("rule_only", |b| {
        b.iter(|| rules::correct(&rule_cfg, std::hint::black_box(&all), &[]).expect("rule"));
    });
    group.bench_function("selective_1_of_4", |b| {
        b.iter(|| {
            selective::correct(&model_cfg, &rule_cfg, &all[..1], &all[1..], &[], window)
                .expect("selective")
        });
    });
    group.bench_function("model_all_4", |b| {
        b.iter(|| model::correct(&model_cfg, &all, &[], window).expect("model"));
    });
    group.finish();
}

criterion_group!(benches, bench_selective);
criterion_main!(benches);
