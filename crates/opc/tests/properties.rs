//! Randomized tests for fragmentation and correction invariants, seeded
//! via the in-tree `postopc-rng` generator (offline replacement for the
//! former proptest suite; every sweep is deterministic).

use postopc_geom::{Coord, Point, Polygon, Rect};
use postopc_opc::{FragmentKind, FragmentSpec, FragmentedPolygon};
use postopc_rng::{rngs::StdRng, RngExt, SeedableRng};

const CASES: usize = 96;

fn arb_line(rng: &mut StdRng) -> Polygon {
    let w = rng.random_range(60i64..200);
    let h = rng.random_range(200i64..1500);
    Polygon::from(Rect::new(0, 0, w, h).expect("positive extents"))
}

/// A random rectilinear staircase (same construction as the geom tests).
fn arb_staircase(rng: &mut StdRng) -> Polygon {
    let steps = rng.random_range(2usize..6);
    let mut v = vec![Point::new(0, 0)];
    let (mut x, mut y) = (0, 0);
    for _ in 0..steps {
        x += rng.random_range(80i64..400);
        v.push(Point::new(x, y));
        y += rng.random_range(80i64..400);
        v.push(Point::new(x, y));
    }
    v.push(Point::new(0, y));
    Polygon::new(v).expect("staircase is valid")
}

#[test]
fn fragmentation_conserves_perimeter() {
    let mut rng = StdRng::seed_from_u64(0x0C01);
    for _ in 0..CASES {
        let p = arb_staircase(&mut rng);
        let frag = FragmentedPolygon::new(&p, &FragmentSpec::standard()).expect("fragment");
        let total: Coord = frag.fragments().iter().map(|f| f.length).sum();
        assert_eq!(total, p.perimeter());
        assert_eq!(frag.fragments().len(), frag.polygon().edge_count());
    }
}

#[test]
fn fragmentation_preserves_area() {
    let mut rng = StdRng::seed_from_u64(0x0C02);
    for _ in 0..CASES {
        let p = arb_staircase(&mut rng);
        let frag = FragmentedPolygon::new(&p, &FragmentSpec::standard()).expect("fragment");
        assert_eq!(frag.polygon().area(), p.area());
    }
}

#[test]
fn fragments_respect_max_length() {
    let mut rng = StdRng::seed_from_u64(0x0C03);
    for _ in 0..CASES {
        let p = arb_line(&mut rng);
        let max_len = rng.random_range(80i64..300);
        let spec = FragmentSpec {
            max_len,
            corner_len: 50,
            min_len: 30,
        };
        let frag = FragmentedPolygon::new(&p, &spec).expect("fragment");
        for f in frag.fragments() {
            // + corner_len tolerates the integer division remainder on the
            // last piece.
            assert!(
                f.length <= max_len + spec.corner_len,
                "fragment of {} nm exceeds bound",
                f.length
            );
        }
    }
}

#[test]
fn uniform_offsets_shift_area_predictably() {
    let mut rng = StdRng::seed_from_u64(0x0C04);
    for _ in 0..CASES {
        let p = arb_line(&mut rng);
        let bias = rng.random_range(-10i64..10);
        let frag = FragmentedPolygon::new(&p, &FragmentSpec::standard()).expect("fragment");
        let offsets = vec![bias; frag.len()];
        let corrected = frag.apply_offsets(&offsets).expect("apply");
        // Uniform outward bias on a rectangle: exact area formula.
        let expected =
            p.area() + p.perimeter() as i128 * bias as i128 + 4 * (bias as i128) * (bias as i128);
        assert_eq!(corrected.area(), expected);
    }
}

#[test]
fn small_random_offsets_keep_polygon_simple() {
    let mut rng = StdRng::seed_from_u64(0x0C05);
    for _ in 0..CASES {
        let p = arb_line(&mut rng);
        let frag = FragmentedPolygon::new(&p, &FragmentSpec::standard()).expect("fragment");
        let offsets: Vec<Coord> = (0..frag.len())
            .map(|_| rng.random_range(-8i64..8))
            .collect();
        if let Ok(corrected) = frag.apply_offsets(&offsets) {
            assert!(
                corrected.is_simple(),
                "offsets produced a self-touching mask"
            );
        }
    }
}

#[test]
fn line_caps_are_line_ends() {
    let mut rng = StdRng::seed_from_u64(0x0C06);
    for _ in 0..CASES {
        let p = arb_line(&mut rng);
        let frag = FragmentedPolygon::new(&p, &FragmentSpec::standard()).expect("fragment");
        let bbox = p.bbox();
        if bbox.width() <= 2 * FragmentSpec::standard().max_len
            && bbox.width()
                < 2 * FragmentSpec::standard().corner_len + FragmentSpec::standard().min_len
        {
            // Narrow lines: top/bottom edges unsplit and capped.
            let line_ends = frag
                .fragments()
                .iter()
                .filter(|f| f.kind == FragmentKind::LineEnd)
                .count();
            assert_eq!(line_ends, 2);
        }
    }
}

#[test]
fn control_points_lie_on_the_target_boundary() {
    let mut rng = StdRng::seed_from_u64(0x0C07);
    for _ in 0..CASES {
        let p = arb_staircase(&mut rng);
        let frag = FragmentedPolygon::new(&p, &FragmentSpec::standard()).expect("fragment");
        for f in frag.fragments() {
            let inside = f.control - f.outward * 2;
            let outside = f.control + f.outward * 2;
            assert!(p.contains(inside) || p.contains(f.control));
            assert!(!p.contains(outside));
        }
    }
}
