/root/repo/target/debug/deps/postopc-4e0424f00f306028.d: crates/core/src/bin/postopc.rs

/root/repo/target/debug/deps/postopc-4e0424f00f306028: crates/core/src/bin/postopc.rs

crates/core/src/bin/postopc.rs:
