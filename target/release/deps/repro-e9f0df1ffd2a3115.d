/root/repo/target/release/deps/repro-e9f0df1ffd2a3115.d: crates/bench/src/bin/repro.rs Cargo.toml

/root/repo/target/release/deps/librepro-e9f0df1ffd2a3115.rmeta: crates/bench/src/bin/repro.rs Cargo.toml

crates/bench/src/bin/repro.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
