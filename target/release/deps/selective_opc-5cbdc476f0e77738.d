/root/repo/target/release/deps/selective_opc-5cbdc476f0e77738.d: crates/bench/benches/selective_opc.rs

/root/repo/target/release/deps/selective_opc-5cbdc476f0e77738: crates/bench/benches/selective_opc.rs

crates/bench/benches/selective_opc.rs:
