//! Offline trainer for the learned CD surrogate.
//!
//! Runs a full SOCS extraction over a training design with the surrogate
//! in record-only mode (warm-up larger than any workload, so every unique
//! context simulates and trains) and persists the resulting model as a
//! `POCSURR1` file that `postopc --surrogate-model FILE` and
//! `surrogate_smoke --model FILE` can seed from.
//!
//! ```bash
//! cargo run --release -p postopc-bench --bin surrogate_train -- \
//!     --design farm:20x24 --out target/surrogate_model.bin
//! ```

use postopc::{extract_gates_with_caches, ExtractionConfig, OpcMode, SurrogateConfig, TagSet};
use postopc_layout::{generate, Design, PlacementOptions, TechRules};
use std::process::ExitCode;

const USAGE: &str = "usage:
  surrogate_train [--design <spec>] [--out FILE]
design specs: farm:<paths>x<depth>  chain:<stages>  rca:<bits>
              (all placed dense, 100% utilization, seed 11)
defaults: --design farm:20x24, --out target/surrogate_model.bin";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("surrogate_train: error: {message}");
            eprintln!();
            eprintln!("{USAGE}");
            ExitCode::from(2)
        }
    }
}

fn flag(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

/// Compiles a training design from its spec, dense (100% utilization) so
/// the contexts match the benchmark workloads bit for bit.
fn build_design(spec: &str) -> Result<Design, String> {
    let (kind, param) = spec
        .split_once(':')
        .ok_or_else(|| format!("bad design spec {spec:?}"))?;
    let parse =
        |p: &str| -> Result<usize, String> { p.parse().map_err(|_| format!("bad number {p:?}")) };
    let netlist = match kind {
        "farm" => {
            let (paths, depth) = param
                .split_once('x')
                .ok_or_else(|| format!("expected NxM, got {param:?}"))?;
            generate::speed_path_farm(parse(paths)?, parse(depth)?, 11)
        }
        "chain" => generate::inverter_chain(parse(param)?),
        "rca" => generate::ripple_carry_adder(parse(param)?),
        _ => return Err(format!("unknown design spec {spec:?}")),
    }
    .map_err(|e| format!("netlist generation failed: {e}"))?;
    Design::compile_with(
        netlist,
        TechRules::n90(),
        &PlacementOptions {
            utilization: 1.0,
            seed: 11,
        },
    )
    .map_err(|e| format!("compile failed: {e}"))
}

fn run(args: &[String]) -> Result<(), String> {
    let spec = flag(args, "--design").unwrap_or_else(|| "farm:20x24".into());
    let out = flag(args, "--out").unwrap_or_else(|| "target/surrogate_model.bin".into());
    let design = build_design(&spec)?;
    let tags = TagSet::all(&design);

    // Record-only surrogate: the warm-up exceeds any realistic unique-
    // context count, so no prediction is ever served and every context's
    // SOCS result feeds the model.
    let mut config = ExtractionConfig::standard();
    config.opc_mode = OpcMode::Rule;
    config.surrogate = SurrogateConfig {
        min_train: usize::MAX,
        ..SurrogateConfig::standard()
    };
    let mut model = config.surrogate.fresh_model();
    let t0 = std::time::Instant::now();
    let outcome = extract_gates_with_caches(&design, &config, &tags, None, Some(&mut model))
        .map_err(|e| format!("training extraction failed: {e}"))?;
    if !model.is_fitted() {
        model
            .refit()
            .map_err(|e| format!("final refit failed: {e}"))?;
    }

    if let Some(parent) = std::path::Path::new(&out).parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)
                .map_err(|e| format!("cannot create {parent:?}: {e}"))?;
        }
    }
    std::fs::write(&out, model.to_file_bytes())
        .map_err(|e| format!("cannot write {out:?}: {e}"))?;
    println!(
        "surrogate_train: {spec}: {} gates, {} unique contexts simulated in {:.1} s",
        design.netlist().gate_count(),
        outcome.stats.windows,
        t0.elapsed().as_secs_f64(),
    );
    println!(
        "surrogate_train: wrote {out} ({} samples, fingerprint {:#018x})",
        model.len(),
        model.fingerprint(),
    );
    Ok(())
}
