/root/repo/target/debug/deps/postopc_bench-d74dd77e14b09175.d: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/timing.rs

/root/repo/target/debug/deps/libpostopc_bench-d74dd77e14b09175.rlib: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/timing.rs

/root/repo/target/debug/deps/libpostopc_bench-d74dd77e14b09175.rmeta: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/timing.rs

crates/bench/src/lib.rs:
crates/bench/src/experiments.rs:
crates/bench/src/timing.rs:
