#!/usr/bin/env bash
# Offline CI gate: formatting, lints, tier-1 build + tests.
#
# Everything here runs with no network access; the workspace has no
# external dependencies (see DESIGN.md "Dependencies").
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check"
cargo fmt --check

echo "== cargo clippy (all targets, -D warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "== tier-1: cargo build --release"
cargo build --release

echo "== tier-1: cargo test -q"
cargo test -q

echo "== workspace tests: cargo test --workspace -q"
cargo test --workspace -q

echo "== perf smoke: pooled extraction parity + compiled/naive STA parity"
cargo run --release -p postopc-bench --bin perf_smoke

echo "check.sh: all gates passed"
