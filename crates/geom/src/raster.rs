//! Scalar field rasterization: mask transmission grids and aerial images.
//!
//! A [`Grid`] is a uniform scalar field over a rectangular window of layout
//! space. The lithography simulator rasterizes mask polygons into a
//! transmission grid (pixel value = covered area fraction), convolves it
//! with optical kernels, and samples the resulting intensity field at
//! arbitrary nm positions via bilinear interpolation.

use crate::error::{GeomError, Result};
use crate::point::Point;
use crate::polygon::Polygon;
use crate::rect::Rect;

/// A uniform scalar field over a window of layout space.
///
/// Pixel `(ix, iy)` covers the square
/// `[origin + ix·pixel, origin + (ix+1)·pixel) × [...y...]`, and its sample
/// point (for interpolation) is the pixel center.
#[derive(Debug, Clone, PartialEq)]
pub struct Grid {
    origin: Point,
    pixel: f64,
    nx: usize,
    ny: usize,
    data: Vec<f64>,
}

impl Grid {
    /// Creates a zero-filled grid covering `window` (expanded by `margin`
    /// nm on all sides) at `pixel` nm per pixel.
    ///
    /// # Errors
    ///
    /// Returns [`GeomError::InvalidResolution`] if `pixel <= 0`, is not
    /// finite, or the window would require an absurd (> 10⁸) pixel count.
    pub fn new(window: Rect, margin: i64, pixel: f64) -> Result<Grid> {
        let (origin, nx, ny) = grid_shape(window, margin, pixel)?;
        Ok(Grid {
            origin,
            pixel,
            nx,
            ny,
            data: vec![0.0; nx * ny],
        })
    }

    /// Reshapes this grid in place to cover `window` (expanded by `margin`
    /// nm on all sides) at `pixel` nm per pixel, zero-filled, reusing the
    /// existing data allocation when it is large enough.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Grid::new`]; on error the grid is unchanged.
    pub fn reset(&mut self, window: Rect, margin: i64, pixel: f64) -> Result<()> {
        let (origin, nx, ny) = grid_shape(window, margin, pixel)?;
        self.origin = origin;
        self.pixel = pixel;
        self.nx = nx;
        self.ny = ny;
        self.data.clear();
        self.data.resize(nx * ny, 0.0);
        Ok(())
    }

    /// Returns a grid with this grid's shape but the given row-major data.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != nx * ny`.
    pub fn with_data(&self, data: Vec<f64>) -> Grid {
        assert_eq!(
            data.len(),
            self.nx * self.ny,
            "data length must match grid shape"
        );
        Grid {
            origin: self.origin,
            pixel: self.pixel,
            nx: self.nx,
            ny: self.ny,
            data,
        }
    }

    /// Number of pixels (`nx × ny`).
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the grid holds no pixels.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Grid width in pixels.
    pub fn nx(&self) -> usize {
        self.nx
    }

    /// Grid height in pixels.
    pub fn ny(&self) -> usize {
        self.ny
    }

    /// Pixel size in nm.
    pub fn pixel(&self) -> f64 {
        self.pixel
    }

    /// Lower-left corner of pixel `(0, 0)` in nm.
    pub fn origin(&self) -> Point {
        self.origin
    }

    /// Raw row-major data (`iy * nx + ix`).
    pub fn data(&self) -> &[f64] {
        &self.data
    }

    /// Mutable raw data.
    pub fn data_mut(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Value at pixel `(ix, iy)`.
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of bounds.
    pub fn at(&self, ix: usize, iy: usize) -> f64 {
        assert!(
            ix < self.nx && iy < self.ny,
            "pixel ({ix},{iy}) out of grid"
        );
        self.data[iy * self.nx + ix]
    }

    /// Sets the value at pixel `(ix, iy)`.
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of bounds.
    pub fn set(&mut self, ix: usize, iy: usize, v: f64) {
        assert!(
            ix < self.nx && iy < self.ny,
            "pixel ({ix},{iy}) out of grid"
        );
        self.data[iy * self.nx + ix] = v;
    }

    /// Accumulates `weight` × (covered area fraction) of `rect` into every
    /// overlapped pixel. Partial pixels receive fractional coverage, so the
    /// rasterization conserves total area exactly.
    pub fn add_rect(&mut self, rect: Rect, weight: f64) {
        let x0 = (rect.left() - self.origin.x) as f64 / self.pixel;
        let x1 = (rect.right() - self.origin.x) as f64 / self.pixel;
        let y0 = (rect.bottom() - self.origin.y) as f64 / self.pixel;
        let y1 = (rect.top() - self.origin.y) as f64 / self.pixel;
        let ix0 = x0.floor().max(0.0) as usize;
        let ix1 = (x1.ceil() as usize).min(self.nx);
        let iy0 = y0.floor().max(0.0) as usize;
        let iy1 = (y1.ceil() as usize).min(self.ny);
        for iy in iy0..iy1 {
            let cov_y = (y1.min((iy + 1) as f64) - y0.max(iy as f64)).max(0.0);
            if cov_y <= 0.0 {
                continue;
            }
            for ix in ix0..ix1 {
                let cov_x = (x1.min((ix + 1) as f64) - x0.max(ix as f64)).max(0.0);
                if cov_x > 0.0 {
                    self.data[iy * self.nx + ix] += weight * cov_x * cov_y;
                }
            }
        }
    }

    /// Rasterizes a polygon (via its rectangle decomposition) with the given
    /// weight.
    pub fn add_polygon(&mut self, polygon: &Polygon, weight: f64) {
        for r in polygon.to_rects() {
            self.add_rect(r, weight);
        }
    }

    /// Bilinear sample at an arbitrary nm position (clamped to the grid).
    pub fn sample(&self, x_nm: f64, y_nm: f64) -> f64 {
        // Convert to continuous pixel-center coordinates.
        let fx = (x_nm - self.origin.x as f64) / self.pixel - 0.5;
        let fy = (y_nm - self.origin.y as f64) / self.pixel - 0.5;
        let fx = fx.clamp(0.0, (self.nx - 1) as f64);
        let fy = fy.clamp(0.0, (self.ny - 1) as f64);
        let ix = (fx.floor() as usize).min(self.nx.saturating_sub(2));
        let iy = (fy.floor() as usize).min(self.ny.saturating_sub(2));
        // Degenerate 1-pixel axes collapse the interpolation cell: clamp the
        // far corner indices so they never read past the grid.
        let ix1 = (ix + 1).min(self.nx - 1);
        let iy1 = (iy + 1).min(self.ny - 1);
        let tx = fx - ix as f64;
        let ty = fy - iy as f64;
        let v00 = self.data[iy * self.nx + ix];
        let v10 = self.data[iy * self.nx + ix1];
        let v01 = self.data[iy1 * self.nx + ix];
        let v11 = self.data[iy1 * self.nx + ix1];
        v00 * (1.0 - tx) * (1.0 - ty)
            + v10 * tx * (1.0 - ty)
            + v01 * (1.0 - tx) * ty
            + v11 * tx * ty
    }

    /// Maximum value over the whole grid (0.0 for an empty grid).
    pub fn max_value(&self) -> f64 {
        self.data.iter().copied().fold(0.0_f64, f64::max)
    }

    /// Sum of all pixel values (× pixel area gives integrated quantity).
    pub fn total(&self) -> f64 {
        self.data.iter().sum()
    }

    /// Convolves each row with a symmetric kernel (odd length, centered),
    /// then each column, in place — the separable-convolution primitive the
    /// imaging model builds Gaussian blurs from.
    ///
    /// # Panics
    ///
    /// Panics if `kernel` has even length.
    pub fn convolve_separable(&mut self, kernel: &[f64]) {
        self.convolve_separable_with(kernel, &mut ConvScratch::new());
    }

    /// [`Grid::convolve_separable`] reusing caller-owned scratch buffers,
    /// avoiding per-call allocation in imaging loops.
    ///
    /// Both passes stream row-major (tap-outer over contiguous rows), so the
    /// column pass never takes the `nx`-strided walks of a pixel-outer
    /// formulation; per pixel the taps still accumulate in ascending order,
    /// which keeps results bit-identical to the naive per-pixel loops.
    ///
    /// # Panics
    ///
    /// Panics if `kernel` has even length.
    pub fn convolve_separable_with(&mut self, kernel: &[f64], scratch: &mut ConvScratch) {
        assert!(
            kernel.len() % 2 == 1,
            "separable kernel must have odd length"
        );
        let (nx, ny) = (self.nx, self.ny);
        let field = grown(&mut scratch.field, nx * ny);
        row_pass(&self.data, field, nx, kernel);
        // Column pass back into our own data (already consumed by the row
        // pass above).
        for iy in 0..ny {
            let out = &mut self.data[iy * nx..(iy + 1) * nx];
            out.fill(0.0);
            accumulate_column_taps(out, field, iy, nx, ny, kernel);
        }
    }

    /// Fused weight-scale + accumulate: adds `weight` × (this grid convolved
    /// with `kernel`) into `acc`, without modifying the grid and without
    /// materializing the convolved field as a `Grid`. Equivalent to
    /// `clone() → convolve_separable → map_inplace(×weight) → zip_map(+)`
    /// bit-for-bit when `acc` starts from the same partial sum, minus all
    /// four temporaries.
    ///
    /// # Panics
    ///
    /// Panics if `kernel` has even length or `acc.len() != self.len()`.
    pub fn convolve_separable_scaled_into(
        &self,
        kernel: &[f64],
        weight: f64,
        acc: &mut [f64],
        scratch: &mut ConvScratch,
    ) {
        assert!(
            kernel.len() % 2 == 1,
            "separable kernel must have odd length"
        );
        assert_eq!(acc.len(), self.data.len(), "accumulator length mismatch");
        let (nx, ny) = (self.nx, self.ny);
        let ConvScratch { field, row } = scratch;
        let field = grown(field, nx * ny);
        row_pass(&self.data, field, nx, kernel);
        let row = grown(row, nx);
        for iy in 0..ny {
            row.fill(0.0);
            accumulate_column_taps(row, field, iy, nx, ny, kernel);
            for (a, &v) in acc[iy * nx..(iy + 1) * nx].iter_mut().zip(row.iter()) {
                *a += weight * v;
            }
        }
    }

    /// Returns a grid with identical shape whose pixels are
    /// `f(self, other)` applied element-wise.
    ///
    /// # Panics
    ///
    /// Panics if the grids have different shapes.
    pub fn zip_map(&self, other: &Grid, f: impl Fn(f64, f64) -> f64) -> Grid {
        assert!(
            self.nx == other.nx && self.ny == other.ny,
            "grid shape mismatch: {}x{} vs {}x{}",
            self.nx,
            self.ny,
            other.nx,
            other.ny
        );
        Grid {
            origin: self.origin,
            pixel: self.pixel,
            nx: self.nx,
            ny: self.ny,
            data: self
                .data
                .iter()
                .zip(&other.data)
                .map(|(&a, &b)| f(a, b))
                .collect(),
        }
    }

    /// Applies `f` to every pixel in place.
    pub fn map_inplace(&mut self, f: impl Fn(f64) -> f64) {
        for v in &mut self.data {
            *v = f(*v);
        }
    }
}

/// Reusable scratch buffers for [`Grid::convolve_separable_with`] and
/// [`Grid::convolve_separable_scaled_into`]. Buffers grow to the largest
/// grid seen and are then reused allocation-free.
#[derive(Debug, Default, Clone)]
pub struct ConvScratch {
    field: Vec<f64>,
    row: Vec<f64>,
}

impl ConvScratch {
    /// Creates empty scratch; buffers are sized lazily on first use.
    pub fn new() -> ConvScratch {
        ConvScratch::default()
    }
}

/// Shape of the grid covering `window` expanded by `margin` at `pixel` nm:
/// shared by [`Grid::new`] and [`Grid::reset`].
fn grid_shape(window: Rect, margin: i64, pixel: f64) -> Result<(Point, usize, usize)> {
    if !(pixel.is_finite() && pixel > 0.0) {
        return Err(GeomError::InvalidResolution(pixel));
    }
    let origin = Point::new(window.left() - margin, window.bottom() - margin);
    let w = (window.width() + 2 * margin) as f64;
    let h = (window.height() + 2 * margin) as f64;
    let nx = (w / pixel).ceil() as usize + 1;
    let ny = (h / pixel).ceil() as usize + 1;
    if nx.saturating_mul(ny) > 100_000_000 {
        return Err(GeomError::InvalidResolution(pixel));
    }
    Ok((origin, nx, ny))
}

/// Ensures `buf` holds at least `n` elements and returns the first `n`.
fn grown(buf: &mut Vec<f64>, n: usize) -> &mut [f64] {
    if buf.len() < n {
        buf.resize(n, 0.0);
    }
    &mut buf[..n]
}

/// Horizontal pass of the separable convolution: `dst = src ⊛ kernel` along
/// x, row by row. Tap-outer over contiguous row slices, streaming both
/// buffers row-major; each output pixel accumulates taps in ascending order
/// (out-of-bounds taps skipped), matching the per-pixel formulation
/// bit-for-bit.
fn row_pass(src: &[f64], dst: &mut [f64], nx: usize, kernel: &[f64]) {
    let half = kernel.len() / 2;
    let nxi = nx as isize;
    for (src_row, dst_row) in src.chunks_exact(nx).zip(dst.chunks_exact_mut(nx)) {
        dst_row.fill(0.0);
        for (k, &w) in kernel.iter().enumerate() {
            let shift = k as isize - half as isize;
            let ix0 = (-shift).max(0) as usize;
            let ix1 = (nxi - shift).clamp(0, nxi) as usize;
            if ix0 >= ix1 {
                continue;
            }
            let s0 = (ix0 as isize + shift) as usize;
            let src_run = &src_row[s0..s0 + (ix1 - ix0)];
            for (o, &s) in dst_row[ix0..ix1].iter_mut().zip(src_run) {
                *o += w * s;
            }
        }
    }
}

/// Vertical-pass inner step: accumulates kernel taps for output row `iy`
/// into `out` (length `nx`), reading whole source rows of `field`
/// contiguously. Taps apply in ascending order with out-of-bounds rows
/// skipped — the same per-pixel operation order as a column-strided loop,
/// without its strided reads.
fn accumulate_column_taps(
    out: &mut [f64],
    field: &[f64],
    iy: usize,
    nx: usize,
    ny: usize,
    kernel: &[f64],
) {
    let half = kernel.len() / 2;
    for (k, &w) in kernel.iter().enumerate() {
        let j = iy as isize + k as isize - half as isize;
        if j < 0 || j as usize >= ny {
            continue;
        }
        let src_row = &field[j as usize * nx..(j as usize + 1) * nx];
        for (o, &s) in out.iter_mut().zip(src_row) {
            *o += w * s;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid_10x10() -> Grid {
        Grid::new(Rect::new(0, 0, 100, 100).expect("rect"), 0, 10.0).expect("grid")
    }

    #[test]
    fn rejects_bad_resolution() {
        let w = Rect::new(0, 0, 10, 10).expect("rect");
        assert!(Grid::new(w, 0, 0.0).is_err());
        assert!(Grid::new(w, 0, -1.0).is_err());
        assert!(Grid::new(w, 0, f64::NAN).is_err());
    }

    #[test]
    fn rect_coverage_conserves_area() {
        let mut g = grid_10x10();
        // 25x35 rect not aligned to the 10 nm pixel grid.
        g.add_rect(Rect::new(12, 13, 37, 48).expect("rect"), 1.0);
        let total_area = g.total() * 10.0 * 10.0;
        assert!((total_area - 25.0 * 35.0).abs() < 1e-9, "{total_area}");
    }

    #[test]
    fn full_pixel_coverage_is_one() {
        let mut g = grid_10x10();
        g.add_rect(Rect::new(10, 10, 20, 20).expect("rect"), 1.0);
        assert!((g.at(1, 1) - 1.0).abs() < 1e-12);
        assert_eq!(g.at(0, 0), 0.0);
        assert_eq!(g.at(2, 2), 0.0);
    }

    #[test]
    fn polygon_coverage_matches_area() {
        let mut g = grid_10x10();
        let l = Polygon::new(vec![
            Point::new(5, 5),
            Point::new(55, 5),
            Point::new(55, 25),
            Point::new(25, 25),
            Point::new(25, 65),
            Point::new(5, 65),
        ])
        .expect("valid L");
        g.add_polygon(&l, 1.0);
        let total_area = g.total() * 100.0;
        assert!((total_area - l.area() as f64).abs() < 1e-6);
    }

    #[test]
    fn bilinear_sample_interpolates() {
        let mut g = grid_10x10();
        g.set(0, 0, 0.0);
        g.set(1, 0, 1.0);
        // Pixel centers at x = 5 and x = 15 (y = 5): halfway is 10.
        let v = g.sample(10.0, 5.0);
        assert!((v - 0.5).abs() < 1e-12, "{v}");
        // At a center, exact value.
        assert!((g.sample(15.0, 5.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn sample_clamps_outside() {
        let mut g = grid_10x10();
        g.set(0, 0, 7.0);
        assert!((g.sample(-100.0, -100.0) - 7.0).abs() < 1e-12);
    }

    #[test]
    fn identity_kernel_is_noop() {
        let mut g = grid_10x10();
        g.add_rect(Rect::new(20, 20, 60, 70).expect("rect"), 1.0);
        let before = g.data().to_vec();
        g.convolve_separable(&[1.0]);
        assert_eq!(g.data(), &before[..]);
    }

    #[test]
    fn box_kernel_conserves_mass_in_interior() {
        let mut g = grid_10x10();
        g.set(5, 5, 9.0);
        g.convolve_separable(&[1.0 / 3.0, 1.0 / 3.0, 1.0 / 3.0]);
        assert!((g.total() - 9.0).abs() < 1e-9);
        assert!((g.at(5, 5) - 1.0).abs() < 1e-12);
        assert!((g.at(4, 4) - 1.0).abs() < 1e-12);
        assert_eq!(g.at(2, 2), 0.0);
    }

    #[test]
    fn box_kernel_conserves_mass_on_wide_grid() {
        // nx > ny: the column pass must write back only ny values.
        let mut g = Grid::new(Rect::new(0, 0, 200, 50).expect("rect"), 0, 10.0).expect("grid");
        g.set(10, 2, 9.0);
        g.convolve_separable(&[1.0 / 3.0, 1.0 / 3.0, 1.0 / 3.0]);
        assert!((g.total() - 9.0).abs() < 1e-9);
        assert!((g.at(10, 2) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn zip_map_combines_fields() {
        let mut a = grid_10x10();
        let mut b = grid_10x10();
        a.set(3, 3, 2.0);
        b.set(3, 3, 5.0);
        let c = a.zip_map(&b, |x, y| x + y);
        assert!((c.at(3, 3) - 7.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn zip_map_panics_on_shape_mismatch() {
        let a = grid_10x10();
        let b = Grid::new(Rect::new(0, 0, 50, 50).expect("rect"), 0, 10.0).expect("grid");
        let _ = a.zip_map(&b, |x, _| x);
    }

    /// A negative margin exactly cancelling one dimension produces a
    /// single-pixel axis (`nx == 1` or `ny == 1`).
    fn degenerate_column_grid() -> Grid {
        let g = Grid::new(Rect::new(0, 0, 100, 1000).expect("rect"), -50, 10.0).expect("grid");
        assert_eq!(g.nx(), 1);
        assert!(g.ny() > 1);
        g
    }

    #[test]
    fn sample_on_one_column_grid_does_not_panic() {
        let mut g = degenerate_column_grid();
        for iy in 0..g.ny() {
            g.set(0, iy, iy as f64);
        }
        // Anywhere in x collapses to the single column; y still interpolates.
        let v = g.sample(50.0, 960.0);
        assert!(v.is_finite());
        // Top-right corner forces the largest indices on both axes.
        let v = g.sample(1e9, 1e9);
        assert!((v - (g.ny() - 1) as f64).abs() < 1e-12, "{v}");
    }

    #[test]
    fn sample_on_one_row_grid_does_not_panic() {
        let mut g = Grid::new(Rect::new(0, 0, 1000, 100).expect("rect"), -50, 10.0).expect("grid");
        assert_eq!(g.ny(), 1);
        for ix in 0..g.nx() {
            g.set(ix, 0, ix as f64);
        }
        let v = g.sample(960.0, 50.0);
        assert!(v.is_finite());
        let v = g.sample(-1e9, -1e9);
        assert_eq!(v, 0.0);
    }

    #[test]
    fn sample_on_one_pixel_grid_returns_the_pixel() {
        let mut g = Grid::new(Rect::new(0, 0, 100, 100).expect("rect"), -50, 200.0).expect("grid");
        assert_eq!((g.nx(), g.ny()), (1, 1));
        g.set(0, 0, 3.5);
        assert_eq!(g.sample(0.0, 0.0), 3.5);
        assert_eq!(g.sample(1e6, -1e6), 3.5);
    }

    #[test]
    fn reset_reuses_allocation_and_matches_new() {
        let mut g = Grid::new(Rect::new(0, 0, 400, 300).expect("rect"), 20, 5.0).expect("grid");
        g.add_rect(Rect::new(50, 50, 150, 150).expect("rect"), 1.0);
        let cap_before = g.data.capacity();
        let window = Rect::new(-30, 10, 170, 90).expect("rect");
        g.reset(window, 15, 5.0).expect("reset");
        let fresh = Grid::new(window, 15, 5.0).expect("grid");
        assert_eq!(g, fresh);
        assert!(g.data.capacity() >= cap_before, "reset must not shrink");
        // Error path leaves the grid untouched.
        assert!(g.reset(window, 15, -1.0).is_err());
        assert_eq!(g, fresh);
    }

    #[test]
    fn with_data_preserves_shape() {
        let g = grid_10x10();
        let d = vec![2.0; g.len()];
        let h = g.with_data(d);
        assert_eq!((h.nx(), h.ny()), (g.nx(), g.ny()));
        assert_eq!(h.origin(), g.origin());
        assert_eq!(h.at(3, 7), 2.0);
    }

    /// The pre-rewrite pixel-outer implementation, kept verbatim as the
    /// bit-identity reference for the streaming passes.
    fn convolve_separable_reference(g: &mut Grid, kernel: &[f64]) {
        let half = kernel.len() / 2;
        let (nx, ny) = (g.nx(), g.ny());
        let mut scratch = vec![0.0; nx.max(ny)];
        for iy in 0..ny {
            let row = g.data()[iy * nx..(iy + 1) * nx].to_vec();
            for (ix, out) in scratch[..nx].iter_mut().enumerate() {
                let mut acc = 0.0;
                for (k, &w) in kernel.iter().enumerate() {
                    let j = ix as isize + k as isize - half as isize;
                    if j >= 0 && (j as usize) < nx {
                        acc += w * row[j as usize];
                    }
                }
                *out = acc;
            }
            g.data_mut()[iy * nx..(iy + 1) * nx].copy_from_slice(&scratch[..nx]);
        }
        for ix in 0..nx {
            for (iy, out) in scratch[..ny].iter_mut().enumerate() {
                let mut acc = 0.0;
                for (k, &w) in kernel.iter().enumerate() {
                    let j = iy as isize + k as isize - half as isize;
                    if j >= 0 && (j as usize) < ny {
                        acc += w * g.data()[j as usize * nx + ix];
                    }
                }
                *out = acc;
            }
            for (iy, &value) in scratch[..ny].iter().enumerate() {
                g.data_mut()[iy * nx + ix] = value;
            }
        }
    }

    /// Naive dense 2-D convolution with the outer product of the separable
    /// kernel — the ground truth both implementations approximate.
    fn convolve_dense_reference(g: &Grid, kernel: &[f64]) -> Vec<f64> {
        let half = kernel.len() as isize / 2;
        let (nx, ny) = (g.nx() as isize, g.ny() as isize);
        let mut out = vec![0.0; g.len()];
        for oy in 0..ny {
            for ox in 0..nx {
                let mut acc = 0.0;
                for (ky, &wy) in kernel.iter().enumerate() {
                    let sy = oy + ky as isize - half;
                    if sy < 0 || sy >= ny {
                        continue;
                    }
                    for (kx, &wx) in kernel.iter().enumerate() {
                        let sx = ox + kx as isize - half;
                        if sx < 0 || sx >= nx {
                            continue;
                        }
                        acc += wy * wx * g.data()[(sy * nx + sx) as usize];
                    }
                }
                out[(oy * nx + ox) as usize] = acc;
            }
        }
        out
    }

    fn random_grid(rng: &mut postopc_rng::StdRng, w: i64, h: i64, pixel: f64) -> Grid {
        use postopc_rng::RngExt;
        let mut g = Grid::new(Rect::new(0, 0, w, h).expect("rect"), 0, pixel).expect("grid");
        for v in g.data_mut() {
            *v = rng.random_range(0.0..1.0);
        }
        g
    }

    fn random_kernel(rng: &mut postopc_rng::StdRng, half: usize) -> Vec<f64> {
        use postopc_rng::RngExt;
        (0..2 * half + 1)
            .map(|_| rng.random_range(-0.5..1.0))
            .collect()
    }

    #[test]
    fn streaming_pass_is_bit_identical_to_pixel_outer_reference() {
        use postopc_rng::SeedableRng;
        let mut rng = postopc_rng::StdRng::seed_from_u64(31);
        // Asymmetric shapes, kernels wider than an axis, single-pixel axes.
        for (w, h, half) in [
            (200, 50, 2),
            (50, 200, 7),
            (30, 470, 19),
            (470, 30, 19),
            (10, 10, 40),
            (100, 1000, 0),
        ] {
            let kernel = random_kernel(&mut rng, half);
            let g = random_grid(&mut rng, w, h, 10.0);
            let mut reference = g.clone();
            convolve_separable_reference(&mut reference, &kernel);
            let mut streaming = g.clone();
            streaming.convolve_separable(&kernel);
            assert_eq!(
                streaming.data(),
                reference.data(),
                "bitwise mismatch for {w}x{h} half={half}"
            );
        }
    }

    #[test]
    fn separable_matches_dense_reference_on_asymmetric_grids() {
        use postopc_rng::SeedableRng;
        let mut rng = postopc_rng::StdRng::seed_from_u64(57);
        for (w, h, half) in [(170, 60, 3), (60, 170, 6), (250, 40, 11)] {
            let kernel = random_kernel(&mut rng, half);
            let g = random_grid(&mut rng, w, h, 10.0);
            let dense = convolve_dense_reference(&g, &kernel);
            let mut separable = g.clone();
            separable.convolve_separable(&kernel);
            for (i, (&s, &d)) in separable.data().iter().zip(&dense).enumerate() {
                assert!(
                    (s - d).abs() < 1e-9,
                    "pixel {i} of {w}x{h} half={half}: separable {s} vs dense {d}"
                );
            }
        }
    }

    #[test]
    fn fused_scaled_accumulate_is_bit_identical_to_unfused_sequence() {
        use postopc_rng::SeedableRng;
        let mut rng = postopc_rng::StdRng::seed_from_u64(83);
        let g = random_grid(&mut rng, 310, 90, 10.0);
        let kernels = [random_kernel(&mut rng, 5), random_kernel(&mut rng, 13)];
        let weights = [1.6, -0.6];
        // Unfused: clone → convolve → scale → add, per kernel.
        let mut unfused = vec![0.0; g.len()];
        for (kernel, &weight) in kernels.iter().zip(&weights) {
            let mut field = g.clone();
            field.convolve_separable(kernel);
            field.map_inplace(|v| v * weight);
            for (a, &v) in unfused.iter_mut().zip(field.data()) {
                *a += v;
            }
        }
        // Fused path, reusing one scratch across kernels.
        let mut fused = vec![0.0; g.len()];
        let mut scratch = ConvScratch::new();
        for (kernel, &weight) in kernels.iter().zip(&weights) {
            g.convolve_separable_scaled_into(kernel, weight, &mut fused, &mut scratch);
        }
        assert_eq!(fused, unfused);
    }

    #[test]
    fn convolution_scratch_reuse_across_shapes_is_safe() {
        use postopc_rng::SeedableRng;
        let mut rng = postopc_rng::StdRng::seed_from_u64(99);
        let mut scratch = ConvScratch::new();
        // Big grid first so later smaller grids see stale scratch contents.
        for (w, h) in [(400, 400), (60, 200), (200, 60), (100, 100)] {
            let kernel = random_kernel(&mut rng, 4);
            let g = random_grid(&mut rng, w, h, 10.0);
            let mut expected = g.clone();
            convolve_separable_reference(&mut expected, &kernel);
            let mut with_scratch = g.clone();
            with_scratch.convolve_separable_with(&kernel, &mut scratch);
            assert_eq!(with_scratch.data(), expected.data());
        }
    }
}
