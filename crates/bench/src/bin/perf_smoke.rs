//! Quick-mode performance smoke test for the CI gate (`scripts/check.sh`).
//!
//! Two sections, both fail the process (exit 1) when an invariant breaks:
//!
//! **Extraction.** Extracts a small uniform inverter farm twice — context
//! cache with the serial engine, then context cache with the worker pool:
//!
//! 1. The two outcomes must be bit-identical (scheduling must never change
//!    extracted CDs).
//! 2. The pooled engine must stay within a small tolerance of the serial
//!    wall time (parity on one core, faster on many). The tolerance
//!    absorbs timer noise on loaded single-core CI machines; a real pool
//!    regression — the chunked scheduler falling over its own overhead —
//!    shows up far above it.
//!
//! **STA.** The compiled evaluator must match the naive `analyze` path bit
//! for bit on a small adder: drawn, corner-annotated, and a short
//! Monte Carlo run (compiled `run` vs naive `run_reference`). No timing
//! gate here — parity is the contract; speed is measured by `mc_scaling`.
//!
//! Runtime is a few seconds: each extraction engine gets one warm-up run
//! (fills the thread-local imaging workspaces) and the best of two timed
//! runs; the STA section runs each analysis once.

use postopc::{extract_gates, ExtractionConfig, OpcMode, TagSet};
use postopc_device::ProcessParams;
use postopc_layout::{generate, Design, PlacementOptions, TechRules};
use postopc_sta::{
    analyze_corner, corner_annotation, statistical, Corner, MonteCarloConfig, TimingModel,
};

/// Pool wall time may exceed serial by at most this factor.
const POOL_TOLERANCE: f64 = 1.25;

fn main() {
    // Dense placement (100% utilization) so every gate sees the repeated
    // neighbourhood the context cache thrives on — the same shape as the
    // T9 uniform-farm row, scaled down for CI.
    let design = Design::compile_with(
        generate::inverter_chain(48).expect("netlist"),
        TechRules::n90(),
        &PlacementOptions {
            utilization: 1.0,
            seed: 11,
        },
    )
    .expect("design");
    let tags = TagSet::all(&design);
    let mut cached = ExtractionConfig::standard();
    cached.opc_mode = OpcMode::Rule;
    cached.threads = Some(1);
    let mut pooled = cached.clone();
    pooled.threads = None; // all cores

    let run = |cfg: &ExtractionConfig| {
        let warm = extract_gates(&design, cfg, &tags).expect("extraction");
        let mut best = f64::MAX;
        for _ in 0..2 {
            let (out, secs) = postopc_bench::timing::time(|| {
                extract_gates(&design, cfg, &tags).expect("extraction")
            });
            assert_eq!(out, warm, "extraction must be deterministic");
            best = best.min(secs);
        }
        (warm, best)
    };
    let (serial_out, serial_s) = run(&cached);
    let (pool_out, pool_s) = run(&pooled);
    let threads = postopc_parallel::effective_threads(None);
    println!(
        "perf_smoke: cache-only {serial_s:.2} s, cache+pool {pool_s:.2} s ({threads} worker(s))"
    );

    let mut failed = false;
    if serial_out != pool_out {
        eprintln!("perf_smoke: FAIL - pooled outcome differs from serial outcome");
        failed = true;
    }
    if pool_s > serial_s * POOL_TOLERANCE {
        eprintln!(
            "perf_smoke: FAIL - cache+pool {pool_s:.2} s exceeds cache-only {serial_s:.2} s x {POOL_TOLERANCE}"
        );
        failed = true;
    }
    // STA section: compiled evaluator vs naive analyze, bit for bit.
    let sta_design = Design::compile(
        generate::ripple_carry_adder(3).expect("netlist"),
        TechRules::n90(),
    )
    .expect("sta design");
    let model = TimingModel::new(&sta_design, ProcessParams::n90(), 800.0).expect("model");
    let compiled = model.compile().expect("compile");
    let mut scratch = compiled.scratch();

    let drawn_naive = model.analyze(None).expect("naive drawn");
    let drawn_compiled = compiled
        .evaluate(&mut scratch, None)
        .expect("compiled drawn");
    if drawn_naive != drawn_compiled {
        eprintln!("perf_smoke: FAIL - compiled drawn report differs from naive analyze");
        failed = true;
    }

    let corner = Corner {
        name: "SS".into(),
        delta_l_nm: 6.0,
    };
    let ann = corner_annotation(&model, corner.delta_l_nm);
    let corner_naive = analyze_corner(&model, &corner).expect("naive corner");
    let corner_compiled = compiled
        .evaluate(&mut scratch, Some(&ann))
        .expect("compiled corner");
    if corner_naive != corner_compiled {
        eprintln!("perf_smoke: FAIL - compiled corner report differs from naive analyze");
        failed = true;
    }

    let mc = MonteCarloConfig {
        samples: 20,
        sigma_nm: 1.5,
        seed: 5,
        threads: None,
    };
    let mc_compiled = statistical::run(&model, Some(&ann), &mc).expect("compiled MC");
    let mc_naive = statistical::run_reference(&model, Some(&ann), &mc).expect("naive MC");
    if mc_compiled != mc_naive {
        eprintln!("perf_smoke: FAIL - compiled Monte Carlo differs from naive engine");
        failed = true;
    }

    if failed {
        std::process::exit(1);
    }
    println!("perf_smoke: PASS - pooled engine at parity or better, outcomes bit-identical");
    println!("perf_smoke: PASS - compiled STA bit-identical to naive (drawn, corner, MC)");
}
