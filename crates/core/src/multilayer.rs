//! Multi-layer extraction — the paper's proposed extension.
//!
//! Beyond poly, the printed widths of routed metal-1 wires perturb
//! interconnect RC. This module measures printed wire widths segment by
//! segment and merges per-net [`postopc_sta::NetAnnotation`]s into an
//! existing annotation. Metal is imaged without OPC (metal OPC was not
//! part of the paper's flow; the extension is about *extraction*).

use crate::error::Result;
use postopc_cdex::measure_wire_width;
use postopc_geom::{Coord, Rect};
use postopc_layout::{Design, Layer, NetId};
use postopc_litho::{AerialImage, ResistModel, SimulationSpec};
use postopc_sta::{CdAnnotation, NetAnnotation};

/// Wire extraction configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct WireExtractionConfig {
    /// Imaging model (metal layers use the same exposure tool here).
    pub sim: SimulationSpec,
    /// Resist model.
    pub resist: ResistModel,
    /// Measurement stations per segment.
    pub stations: usize,
    /// Segments longer than this are measured over a centred sub-window
    /// of this length, in nm (bounds simulation cost).
    pub max_window_len: Coord,
    /// Context gathering radius, in nm.
    pub context_ambit_nm: Coord,
}

impl WireExtractionConfig {
    /// Production defaults: 9 stations (several land between cell-internal
    /// metal even on congested drops), 4 µm windows.
    pub fn standard() -> WireExtractionConfig {
        WireExtractionConfig {
            sim: SimulationSpec::nominal(),
            resist: ResistModel::standard(),
            stations: 9,
            max_window_len: 4_000,
            context_ambit_nm: 420,
        }
    }
}

impl Default for WireExtractionConfig {
    fn default() -> Self {
        WireExtractionConfig::standard()
    }
}

/// Statistics of a wire extraction run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct WireExtractionStats {
    /// Nets annotated with a printed width.
    pub nets_annotated: usize,
    /// Segments measured.
    pub segments_measured: usize,
    /// Segments where the wire failed to print (skipped).
    pub segments_failed: usize,
}

/// Extracts printed metal-1 widths for `nets` and merges them into
/// `annotation`.
///
/// # Errors
///
/// Propagates simulation errors; unprintable segments are skipped and
/// counted in the stats.
pub fn extract_wires(
    design: &Design,
    config: &WireExtractionConfig,
    nets: &[NetId],
    annotation: &mut CdAnnotation,
) -> Result<WireExtractionStats> {
    let mut stats = WireExtractionStats::default();
    for &net in nets {
        let Some(route) = design.routing().route_of(net) else {
            continue;
        };
        let mut weighted = 0.0;
        let mut total_len = 0.0;
        for seg in &route.segments {
            if seg.layer != Layer::Metal1 {
                continue;
            }
            let seg_len = seg.rect.width().max(seg.rect.height());
            let window = measurement_window(seg.rect, config.max_window_len)?;
            let search = window.expand(config.context_ambit_nm)?;
            let mask: Vec<postopc_geom::Polygon> = design
                .shapes_in_window(Layer::Metal1, search)
                .into_iter()
                .cloned()
                .collect();
            let image = AerialImage::simulate(&config.sim, &mask, window)?;
            stats.segments_measured += 1;
            match measure_wire_width(&image, &config.resist, seg.rect, config.stations)? {
                Some(width) => {
                    weighted += width * seg_len as f64;
                    total_len += seg_len as f64;
                }
                None => stats.segments_failed += 1,
            }
        }
        if total_len > 0.0 {
            let printed = weighted / total_len;
            let drawn = design.tech().m1_width as f64;
            // Plausibility band: a mean outside ±40% of drawn means the
            // stations hit merged metal; keep the drawn width instead.
            if (0.6 * drawn..1.4 * drawn).contains(&printed) {
                annotation.set_net(
                    net,
                    NetAnnotation {
                        printed_width_nm: printed,
                    },
                );
                stats.nets_annotated += 1;
            } else {
                stats.segments_failed += 1;
            }
        }
    }
    Ok(stats)
}

/// A measurement window over (at most the central `max_len` of) a segment.
fn measurement_window(segment: Rect, max_len: Coord) -> Result<Rect> {
    let horizontal = segment.width() >= segment.height();
    let len = if horizontal {
        segment.width()
    } else {
        segment.height()
    };
    if len <= max_len {
        return Ok(segment);
    }
    let c = segment.center();
    let window = if horizontal {
        Rect::new(
            c.x - max_len / 2,
            segment.bottom(),
            c.x + max_len / 2,
            segment.top(),
        )?
    } else {
        Rect::new(
            segment.left(),
            c.y - max_len / 2,
            segment.right(),
            c.y + max_len / 2,
        )?
    };
    Ok(window)
}

#[cfg(test)]
mod tests {
    use super::*;
    use postopc_layout::{generate, TechRules};

    #[test]
    fn annotates_routed_nets() {
        // Needs a multi-row design: single-row chains route entirely on
        // metal-2 trunks and have no metal-1 drops to measure.
        let d = Design::compile(
            generate::inverter_chain(60).expect("netlist"),
            TechRules::n90(),
        )
        .expect("design");
        assert!(d.placement().rows() > 1);
        let nets: Vec<NetId> = (0..d.netlist().nets().len() as u32)
            .map(NetId)
            .take(30)
            .collect();
        let mut ann = CdAnnotation::new();
        let stats =
            extract_wires(&d, &WireExtractionConfig::standard(), &nets, &mut ann).expect("wires");
        assert!(stats.nets_annotated > 0, "no nets annotated");
        assert!(stats.segments_measured >= stats.nets_annotated);
        // Printed widths should be near the drawn 120 nm.
        assert_eq!(
            ann.gates().count(),
            0,
            "wire extraction must not annotate gates"
        );
        assert_eq!(ann.net_count(), stats.nets_annotated);
    }

    #[test]
    fn window_clipping_bounds_cost() {
        let long = Rect::new(0, 0, 100_000, 120).expect("rect");
        let w = measurement_window(long, 4_000).expect("window");
        assert_eq!(w.width(), 4_000);
        assert_eq!(w.height(), 120);
        let short = Rect::new(0, 0, 1_000, 120).expect("rect");
        assert_eq!(measurement_window(short, 4_000).expect("window"), short);
    }

    #[test]
    fn empty_net_list_is_a_noop() {
        let d = Design::compile(
            generate::inverter_chain(3).expect("netlist"),
            TechRules::n90(),
        )
        .expect("design");
        let mut ann = CdAnnotation::new();
        let stats =
            extract_wires(&d, &WireExtractionConfig::standard(), &[], &mut ann).expect("wires");
        assert_eq!(stats.nets_annotated, 0);
        assert_eq!(ann.net_count(), 0);
    }
}
