/root/repo/target/debug/deps/postopc_geom-66511ed1997fae3e.d: crates/geom/src/lib.rs crates/geom/src/edge.rs crates/geom/src/error.rs crates/geom/src/index.rs crates/geom/src/point.rs crates/geom/src/polygon.rs crates/geom/src/raster.rs crates/geom/src/rect.rs crates/geom/src/transform.rs

/root/repo/target/debug/deps/libpostopc_geom-66511ed1997fae3e.rlib: crates/geom/src/lib.rs crates/geom/src/edge.rs crates/geom/src/error.rs crates/geom/src/index.rs crates/geom/src/point.rs crates/geom/src/polygon.rs crates/geom/src/raster.rs crates/geom/src/rect.rs crates/geom/src/transform.rs

/root/repo/target/debug/deps/libpostopc_geom-66511ed1997fae3e.rmeta: crates/geom/src/lib.rs crates/geom/src/edge.rs crates/geom/src/error.rs crates/geom/src/index.rs crates/geom/src/point.rs crates/geom/src/polygon.rs crates/geom/src/raster.rs crates/geom/src/rect.rs crates/geom/src/transform.rs

crates/geom/src/lib.rs:
crates/geom/src/edge.rs:
crates/geom/src/error.rs:
crates/geom/src/index.rs:
crates/geom/src/point.rs:
crates/geom/src/polygon.rs:
crates/geom/src/raster.rs:
crates/geom/src/rect.rs:
crates/geom/src/transform.rs:
