/root/repo/target/release/deps/postopc_suite-c17ab8b2290c509a.d: src/lib.rs Cargo.toml

/root/repo/target/release/deps/libpostopc_suite-c17ab8b2290c509a.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
