/root/repo/target/release/deps/postopc_sta-b11234448b925b95.d: crates/sta/src/lib.rs crates/sta/src/annotate.rs crates/sta/src/corners.rs crates/sta/src/error.rs crates/sta/src/graph.rs crates/sta/src/liberty.rs crates/sta/src/paths.rs crates/sta/src/statistical.rs Cargo.toml

/root/repo/target/release/deps/libpostopc_sta-b11234448b925b95.rmeta: crates/sta/src/lib.rs crates/sta/src/annotate.rs crates/sta/src/corners.rs crates/sta/src/error.rs crates/sta/src/graph.rs crates/sta/src/liberty.rs crates/sta/src/paths.rs crates/sta/src/statistical.rs Cargo.toml

crates/sta/src/lib.rs:
crates/sta/src/annotate.rs:
crates/sta/src/corners.rs:
crates/sta/src/error.rs:
crates/sta/src/graph.rs:
crates/sta/src/liberty.rs:
crates/sta/src/paths.rs:
crates/sta/src/statistical.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
