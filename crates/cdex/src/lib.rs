//! # postopc-cdex
//!
//! Post-OPC critical-dimension extraction: the measurement layer of the
//! DAC 2005 flow. Given an aerial image of the (OPC-corrected) mask and a
//! transistor-site cross-reference, this crate:
//!
//! 1. slices each printed channel with cutlines along the transistor
//!    width ([`measure_gate_slices`]);
//! 2. reduces the slice stack to an equivalent rectangular transistor —
//!    separate delay and leakage lengths — per the companion paper's
//!    non-rectangular-gate method ([`extract_gate`]);
//! 3. measures printed wire widths for the multi-layer extension
//!    ([`measure_wire_width`]);
//! 4. summarizes CD populations ([`CdStatistics`], experiment T2).
//!
//! # Example
//!
//! ```
//! use postopc_cdex::{extract_gate, MeasureConfig};
//! use postopc_device::{MosKind, ProcessParams};
//! use postopc_geom::{Polygon, Rect};
//! use postopc_layout::{GateId, TransistorSite};
//! use postopc_litho::{AerialImage, ResistModel, SimulationSpec};
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let poly = Polygon::from(Rect::new(-45, -500, 45, 500)?);
//! let image = AerialImage::simulate(&SimulationSpec::nominal(), &[poly],
//!     Rect::new(-300, -400, 300, 400)?)?;
//! let site = TransistorSite {
//!     gate: GateId(0), kind: MosKind::Nmos,
//!     channel: Rect::new(-45, -210, 45, 210)?,
//!     width_nm: 420.0, drawn_l_nm: 90.0, finger: 0,
//! };
//! let extracted = extract_gate(&MeasureConfig::standard(), &ProcessParams::n90(),
//!     &image, &ResistModel::standard(), &site)?;
//! println!("L_delay = {:.1} nm, L_leak = {:.1} nm",
//!     extracted.equivalent.l_delay_nm, extracted.equivalent.l_leakage_nm);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

mod equivalent;
mod error;
mod measure;
mod stats;
mod wires;

pub use equivalent::{extract_gate, ExtractedGate};
pub use error::{CdexError, Result};
pub use measure::{measure_gate_slices, MeasureConfig};
pub use stats::CdStatistics;
pub use wires::measure_wire_width;
