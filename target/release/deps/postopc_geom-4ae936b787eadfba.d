/root/repo/target/release/deps/postopc_geom-4ae936b787eadfba.d: crates/geom/src/lib.rs crates/geom/src/edge.rs crates/geom/src/error.rs crates/geom/src/index.rs crates/geom/src/point.rs crates/geom/src/polygon.rs crates/geom/src/raster.rs crates/geom/src/rect.rs crates/geom/src/transform.rs Cargo.toml

/root/repo/target/release/deps/libpostopc_geom-4ae936b787eadfba.rmeta: crates/geom/src/lib.rs crates/geom/src/edge.rs crates/geom/src/error.rs crates/geom/src/index.rs crates/geom/src/point.rs crates/geom/src/polygon.rs crates/geom/src/raster.rs crates/geom/src/rect.rs crates/geom/src/transform.rs Cargo.toml

crates/geom/src/lib.rs:
crates/geom/src/edge.rs:
crates/geom/src/error.rs:
crates/geom/src/index.rs:
crates/geom/src/point.rs:
crates/geom/src/polygon.rs:
crates/geom/src/raster.rs:
crates/geom/src/rect.rs:
crates/geom/src/transform.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
