//! Performance smoke test and bench-regression gate for the CI script
//! (`scripts/check.sh`). Two modes, both fail the process (exit 1) when an
//! invariant breaks:
//!
//! **Default (parity gates)** — fast enough to repeat across the CI thread
//! matrix (`POSTOPC_THREADS=1,2,4`):
//!
//! 1. Extracts a small uniform inverter farm twice — context cache with
//!    the serial engine, then with the worker pool. The two outcomes must
//!    be bit-identical (scheduling must never change extracted CDs), and
//!    the pooled engine must stay within a small tolerance of the serial
//!    wall time (parity on one core, faster on many). The tolerance
//!    absorbs timer noise on loaded single-core CI machines; a real pool
//!    regression — the chunked scheduler falling over its own overhead —
//!    shows up far above it.
//! 2. The compiled STA evaluator must match the naive `analyze` path bit
//!    for bit on a small adder: drawn, corner-annotated, and a short
//!    Monte Carlo run, all through ONE shared `CompiledSta` + scratch
//!    (the compile-once flow shape).
//!
//! **`--bench-regression`** — re-measures the headline engine speedups at
//! the recorded workload scale and fails if any drops below a floor
//! fraction of the value committed in `BENCH_extract.json` /
//! `BENCH_sta.json` ([`BENCH_FLOORS`]), so the perf wins of earlier PRs
//! cannot silently regress. Run once per CI pass (it is the expensive
//! stage: the extraction baseline alone is a few seconds).

use postopc::{extract_gates, ExtractionConfig, OpcMode, SurrogateConfig, TagSet};
use postopc_bench::json::{parse_accuracy, parse_speedups};
use postopc_bench::OrExit;
use postopc_device::ProcessParams;
use postopc_layout::{generate, Design, PlacementOptions, TechRules};
use postopc_sta::{
    analyze_corner, corner_annotation, statistical, Corner, McEngine, MonteCarloConfig, Sampling,
    TimingModel,
};

/// Pool wall time may exceed serial by at most this factor.
const POOL_TOLERANCE: f64 = 1.25;

/// A fresh sampling-accuracy error may exceed its recorded value by at
/// most this factor. The convergence study is deterministic and
/// thread-invariant, so a fresh run normally reproduces the artifact
/// exactly — the headroom only lets intentional estimator retunes land
/// without re-recording in the same commit, while a real regression
/// (a broken weight path, a lost tilt) blows the quantile errors by
/// integer factors.
const ACCURACY_TOLERANCE: f64 = 1.5;

/// One gated benchmark row: where its recorded speedup lives and the
/// fraction of it a fresh measurement must retain. The floors live in this
/// one table so retuning the gate is a single-diff change.
struct BenchFloor {
    file: &'static str,
    design: &'static str,
    engine: &'static str,
    samples: Option<usize>,
    fraction: f64,
}

/// Every (artifact, row) pair the regression gate re-measures. 0.6× floors
/// absorb machine-to-machine variance while still catching a lost cache or
/// a de-compiled hot loop (which cost integer factors, not 40%).
const BENCH_FLOORS: &[BenchFloor] = &[
    BenchFloor {
        file: "BENCH_extract.json",
        design: "shuffled farm 20x24",
        engine: "cache + surrogate",
        samples: None,
        fraction: 0.6,
    },
    BenchFloor {
        file: "BENCH_extract.json",
        design: "uniform inv farm 240",
        engine: "context cache",
        samples: None,
        fraction: 0.6,
    },
    BenchFloor {
        file: "BENCH_extract.json",
        design: "uniform inv farm 240",
        engine: "cache + pool",
        samples: None,
        fraction: 0.6,
    },
    BenchFloor {
        file: "BENCH_sta.json",
        design: "T6 composite 70%",
        engine: "compiled",
        samples: Some(250),
        fraction: 0.6,
    },
    BenchFloor {
        file: "BENCH_sta.json",
        design: "T6 composite 70%",
        engine: "batched",
        samples: Some(250),
        fraction: 0.6,
    },
];

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let failed = match args.first().map(String::as_str) {
        None => parity_gates(),
        Some("--bench-regression") => bench_regression(),
        Some(other) => {
            eprintln!("perf_smoke: unknown argument {other} (expected --bench-regression)");
            true
        }
    };
    if failed {
        std::process::exit(1);
    }
}

/// The default mode: pooled-extraction and compiled-STA parity gates.
/// Returns `true` on failure.
fn parity_gates() -> bool {
    // Dense placement (100% utilization) so every gate sees the repeated
    // neighbourhood the context cache thrives on — the same shape as the
    // T9 uniform-farm row, scaled down for CI.
    let design = Design::compile_with(
        generate::inverter_chain(48).or_exit("netlist"),
        TechRules::n90(),
        &PlacementOptions {
            utilization: 1.0,
            seed: 11,
        },
    )
    .or_exit("design");
    let tags = TagSet::all(&design);
    let mut cached = ExtractionConfig::standard();
    cached.opc_mode = OpcMode::Rule;
    cached.threads = Some(1);
    let mut pooled = cached.clone();
    pooled.threads = None; // all cores

    // Each engine gets one warm-up run (fills the thread-local imaging
    // workspaces) and the best of two timed runs.
    let run = |cfg: &ExtractionConfig| {
        let warm = extract_gates(&design, cfg, &tags).or_exit("extraction");
        let mut best = f64::MAX;
        for _ in 0..2 {
            let (out, secs) = postopc_bench::timing::time(|| {
                extract_gates(&design, cfg, &tags).or_exit("extraction")
            });
            assert_eq!(out, warm, "extraction must be deterministic");
            best = best.min(secs);
        }
        (warm, best)
    };
    let (serial_out, serial_s) = run(&cached);
    let (pool_out, pool_s) = run(&pooled);
    let threads = postopc_parallel::effective_threads(None);
    println!(
        "perf_smoke: cache-only {serial_s:.2} s, cache+pool {pool_s:.2} s ({threads} worker(s))"
    );

    let mut failed = false;
    if serial_out != pool_out {
        eprintln!("perf_smoke: FAIL - pooled outcome differs from serial outcome");
        failed = true;
    }
    if pool_s > serial_s * POOL_TOLERANCE {
        eprintln!(
            "perf_smoke: FAIL - cache+pool {pool_s:.2} s exceeds cache-only {serial_s:.2} s x {POOL_TOLERANCE}"
        );
        failed = true;
    }
    // STA section: compiled evaluator vs naive analyze, bit for bit, with
    // one compile shared across drawn, corner and Monte Carlo analyses.
    let sta_design = Design::compile(
        generate::ripple_carry_adder(3).or_exit("netlist"),
        TechRules::n90(),
    )
    .or_exit("sta design");
    let model = TimingModel::new(&sta_design, ProcessParams::n90(), 800.0).or_exit("model");
    let compiled = model.compile().or_exit("compile");
    let mut scratch = compiled.scratch();

    let drawn_naive = model.analyze(None).or_exit("naive drawn");
    let drawn_compiled = compiled
        .evaluate(&mut scratch, None)
        .or_exit("compiled drawn");
    if drawn_naive != drawn_compiled {
        eprintln!("perf_smoke: FAIL - compiled drawn report differs from naive analyze");
        failed = true;
    }

    let corner = Corner {
        name: "SS".into(),
        delta_l_nm: 6.0,
    };
    let ann = corner_annotation(&model, corner.delta_l_nm);
    let corner_naive = analyze_corner(&model, &corner).or_exit("naive corner");
    let corner_compiled = compiled
        .evaluate(&mut scratch, Some(&ann))
        .or_exit("compiled corner");
    if corner_naive != corner_compiled {
        eprintln!("perf_smoke: FAIL - compiled corner report differs from naive analyze");
        failed = true;
    }

    let mc = MonteCarloConfig {
        samples: 20,
        sigma_nm: 1.5,
        seed: 5,
        threads: None,
        engine: McEngine::Scalar,
        ..MonteCarloConfig::default()
    };
    let mc_compiled = statistical::run_with(&compiled, Some(&ann), &mc).or_exit("compiled MC");
    let mc_naive = statistical::run_reference(&model, Some(&ann), &mc).or_exit("naive MC");
    if mc_compiled != mc_naive {
        eprintln!("perf_smoke: FAIL - compiled Monte Carlo differs from naive engine");
        failed = true;
    }
    // The batched SoA engine must agree bit for bit too, for every
    // sampling scheme (same streams, different evaluation shape). The
    // tail-IS row runs with the control variate attached so the weight
    // and control accumulators are parity-checked as well.
    for sampling in [
        Sampling::Plain,
        Sampling::Antithetic,
        Sampling::Stratified,
        Sampling::TailIs {
            tilt: postopc_bench::TAIL_TILT,
        },
    ] {
        let scalar_cfg = MonteCarloConfig {
            sampling,
            control_variate: matches!(sampling, Sampling::TailIs { .. }),
            engine: McEngine::Scalar,
            ..mc.clone()
        };
        let batched_cfg = MonteCarloConfig {
            engine: McEngine::Batched,
            ..scalar_cfg.clone()
        };
        let scalar = statistical::run_with(&compiled, Some(&ann), &scalar_cfg).or_exit("scalar MC");
        let batched =
            statistical::run_with(&compiled, Some(&ann), &batched_cfg).or_exit("batched MC");
        if scalar != batched {
            eprintln!("perf_smoke: FAIL - batched Monte Carlo differs from scalar ({sampling:?})");
            failed = true;
        }
    }

    if !failed {
        println!("perf_smoke: PASS - pooled engine at parity or better, outcomes bit-identical");
        println!("perf_smoke: PASS - compiled STA bit-identical to naive (drawn, corner, MC)");
        println!("perf_smoke: PASS - batched STA bit-identical to scalar (all samplings)");
    }
    failed
}

/// Looks up the recorded speedup for one gated row in its committed
/// artifact (relative to the working directory — `check.sh` runs from the
/// repository root, where the artifacts live).
fn recorded_speedup(gate: &BenchFloor) -> Option<f64> {
    let doc = std::fs::read_to_string(gate.file).ok()?;
    parse_speedups(&doc)
        .into_iter()
        .find(|r| r.design == gate.design && r.engine == gate.engine && r.samples == gate.samples)
        .map(|r| r.speedup)
}

/// Compares one fresh measurement against its recorded floor, printing the
/// verdict. Returns `true` on failure (row missing counts as failure: a
/// gate that cannot find its baseline is not protecting anything).
fn check_floor(gate: &BenchFloor, fresh: f64) -> bool {
    let label = match gate.samples {
        Some(s) => format!("{} / {} @ {s} samples", gate.design, gate.engine),
        None => format!("{} / {}", gate.design, gate.engine),
    };
    match recorded_speedup(gate) {
        None => {
            eprintln!(
                "perf_smoke: FAIL - no recorded row for {label} in {} (re-record the artifact?)",
                gate.file
            );
            true
        }
        Some(recorded) => {
            let floor = recorded * gate.fraction;
            let ok = fresh >= floor;
            println!(
                "perf_smoke: bench {label}: fresh {fresh:.2}x vs recorded {recorded:.2}x \
                 (floor {floor:.2}x) - {}",
                if ok { "OK" } else { "FAIL" }
            );
            if !ok {
                eprintln!(
                    "perf_smoke: FAIL - {label} regressed below {:.0}% of the recorded speedup",
                    100.0 * gate.fraction
                );
            }
            !ok
        }
    }
}

/// The `--bench-regression` mode: re-measures the gated speedups at the
/// recorded workload scale (same designs, same engine configurations, same
/// single-shot methodology as `t9` / `mc_scaling`) and applies
/// [`BENCH_FLOORS`]. Returns `true` on failure.
fn bench_regression() -> bool {
    let mut failed = false;

    // Extraction: the T9 shuffled-farm surrogate row — the learned CD
    // surrogate (cache + pool + online-trained model) vs the serial
    // no-cache baseline on the diverse-context workload where plain
    // dedup buys little.
    let farm = Design::compile_with(
        generate::speed_path_farm(20, 24, 11).or_exit("netlist"),
        TechRules::n90(),
        &PlacementOptions {
            utilization: 1.0,
            seed: 11,
        },
    )
    .or_exit("farm design");
    let farm_tags = TagSet::all(&farm);
    let mut farm_baseline = ExtractionConfig::standard();
    farm_baseline.opc_mode = OpcMode::Rule;
    farm_baseline.cache = false;
    farm_baseline.threads = Some(1);
    let mut farm_surrogate = farm_baseline.clone();
    farm_surrogate.cache = true;
    farm_surrogate.threads = None; // all cores
    farm_surrogate.surrogate = SurrogateConfig::standard();
    let (_, farm_baseline_s) = postopc_bench::timing::time(|| {
        extract_gates(&farm, &farm_baseline, &farm_tags).or_exit("farm baseline")
    });
    let (surrogate_out, farm_surrogate_s) = postopc_bench::timing::time(|| {
        extract_gates(&farm, &farm_surrogate, &farm_tags).or_exit("farm surrogate")
    });
    if surrogate_out.stats.surrogate_hits == 0 {
        eprintln!("perf_smoke: FAIL - surrogate served no contexts on the shuffled farm");
        failed = true;
    }
    failed |= check_floor(
        &BENCH_FLOORS[0],
        farm_baseline_s / farm_surrogate_s.max(1e-9),
    );

    // Extraction: the T9 uniform-farm row — baseline (serial, no cache)
    // vs context cache vs cache + pool, dense 240-inverter farm.
    let design = Design::compile_with(
        generate::inverter_chain(240).or_exit("netlist"),
        TechRules::n90(),
        &PlacementOptions {
            utilization: 1.0,
            seed: 11,
        },
    )
    .or_exit("design");
    let tags = TagSet::all(&design);
    let mut baseline = ExtractionConfig::standard();
    baseline.opc_mode = OpcMode::Rule;
    baseline.cache = false;
    baseline.threads = Some(1);
    let mut cached = baseline.clone();
    cached.cache = true;
    let mut pooled = cached.clone();
    pooled.threads = None; // all cores
    let (_, baseline_s) = postopc_bench::timing::time(|| {
        extract_gates(&design, &baseline, &tags).or_exit("baseline")
    });
    let (_, cached_s) =
        postopc_bench::timing::time(|| extract_gates(&design, &cached, &tags).or_exit("cached"));
    let (_, pooled_s) =
        postopc_bench::timing::time(|| extract_gates(&design, &pooled, &tags).or_exit("pooled"));
    failed |= check_floor(&BENCH_FLOORS[1], baseline_s / cached_s.max(1e-9));
    failed |= check_floor(&BENCH_FLOORS[2], baseline_s / pooled_s.max(1e-9));

    // STA: the mc_scaling 250-sample row — naive per-sample analyze vs the
    // compiled evaluator on the T6 composite workload, one thread.
    let design = postopc_bench::evaluation_design(11);
    let probe = TimingModel::new(&design, ProcessParams::n90(), 1_000_000.0).or_exit("probe model");
    let clock = probe
        .analyze(None)
        .or_exit("probe timing")
        .critical_delay_ps()
        * 1.10;
    let model = TimingModel::new(&design, ProcessParams::n90(), clock).or_exit("model");
    let drawn = model.analyze(None).or_exit("drawn timing");
    let path_tags = TagSet::from_critical_paths(&design, &drawn, 40);
    let mut cfg = ExtractionConfig::standard();
    cfg.opc_mode = OpcMode::Rule;
    let out = extract_gates(&design, &cfg, &path_tags).or_exit("extraction");
    let compiled_sta = model.compile().or_exit("compile");
    let mc = MonteCarloConfig {
        samples: 250,
        sigma_nm: 1.5,
        seed: 17,
        threads: Some(1),
        engine: McEngine::Scalar,
        ..MonteCarloConfig::default()
    };
    let batched_mc = MonteCarloConfig {
        engine: McEngine::Batched,
        ..mc.clone()
    };
    let (naive_mc, naive_s) = postopc_bench::timing::time(|| {
        statistical::run_reference(&model, Some(&out.annotation), &mc).or_exit("naive MC")
    });
    let (compiled_mc, compiled_s) = postopc_bench::timing::time(|| {
        statistical::run_with(&compiled_sta, Some(&out.annotation), &mc).or_exit("compiled MC")
    });
    let (batched_run, batched_s) = postopc_bench::timing::time(|| {
        statistical::run_with(&compiled_sta, Some(&out.annotation), &batched_mc)
            .or_exit("batched MC")
    });
    if naive_mc != compiled_mc || naive_mc != batched_run {
        eprintln!("perf_smoke: FAIL - engines diverged during the bench-regression run");
        failed = true;
    }
    failed |= check_floor(&BENCH_FLOORS[3], naive_s / compiled_s.max(1e-9));
    failed |= check_floor(&BENCH_FLOORS[4], naive_s / batched_s.max(1e-9));

    // STA accuracy: the schema-v3 rows of BENCH_sta.json — the sampling
    // convergence study on the same compiled T6 workload. Every fresh
    // (sampling, samples) error must stay within ACCURACY_TOLERANCE of
    // the recorded value, and the tail claim itself is re-proved: the
    // importance sampler at 500 samples must still beat plain at 2000
    // on the 1%-quantile.
    failed |= accuracy_floors(&postopc_bench::sta_accuracy_rows(
        "T6 composite 70%",
        &compiled_sta,
        Some(&out.annotation),
    ));

    if !failed {
        println!("perf_smoke: PASS - all gated speedups within their recorded floors");
    }
    failed
}

/// Applies the sampling-accuracy floors to a fresh convergence study.
/// Returns `true` on failure (missing recorded rows count as failure).
fn accuracy_floors(fresh: &[postopc_bench::json::StaAccuracyRow]) -> bool {
    let recorded = match std::fs::read_to_string("BENCH_sta.json") {
        Ok(doc) => parse_accuracy(&doc),
        Err(e) => {
            eprintln!("perf_smoke: FAIL - cannot read BENCH_sta.json: {e}");
            return true;
        }
    };
    let mut failed = false;
    for row in fresh {
        let label = format!(
            "{} / {} @ {} samples",
            row.design, row.sampling, row.samples
        );
        let Some(rec) = recorded.iter().find(|r| {
            r.design == row.design && r.sampling == row.sampling && r.samples == row.samples
        }) else {
            eprintln!(
                "perf_smoke: FAIL - no recorded accuracy row for {label} \
                 (re-record BENCH_sta.json with mc_scaling?)"
            );
            failed = true;
            continue;
        };
        let q01_bound = rec.q01_abs_err_ps * ACCURACY_TOLERANCE;
        let q001_bound = rec.q001_abs_err_ps * ACCURACY_TOLERANCE;
        let ok = row.q01_abs_err_ps <= q01_bound && row.q001_abs_err_ps <= q001_bound;
        println!(
            "perf_smoke: accuracy {label}: fresh q01 {:.3} ps / q001 {:.3} ps vs recorded \
             {:.3} / {:.3} ps (x{ACCURACY_TOLERANCE}) - {}",
            row.q01_abs_err_ps,
            row.q001_abs_err_ps,
            rec.q01_abs_err_ps,
            rec.q001_abs_err_ps,
            if ok { "OK" } else { "FAIL" }
        );
        if !ok {
            eprintln!("perf_smoke: FAIL - {label} quantile error regressed past its floor");
            failed = true;
        }
    }
    // The headline tail claim, re-proved on the fresh study.
    let tail = fresh
        .iter()
        .find(|r| r.sampling == "tail-is" && r.samples == 500);
    let plain = fresh
        .iter()
        .find(|r| r.sampling == "plain" && r.samples == 2000);
    match (tail, plain) {
        (Some(tail), Some(plain)) => {
            if tail.q01_abs_err_ps > plain.q01_abs_err_ps {
                eprintln!(
                    "perf_smoke: FAIL - tail-IS@500 q01 err {:.3} ps exceeds plain@2000 \
                     q01 err {:.3} ps",
                    tail.q01_abs_err_ps, plain.q01_abs_err_ps
                );
                failed = true;
            } else {
                println!(
                    "perf_smoke: accuracy tail-IS@500 q01 err {:.3} ps <= plain@2000 \
                     q01 err {:.3} ps - OK",
                    tail.q01_abs_err_ps, plain.q01_abs_err_ps
                );
            }
        }
        _ => {
            eprintln!("perf_smoke: FAIL - fresh study missing tail-is@500 or plain@2000");
            failed = true;
        }
    }
    failed
}
