/root/repo/target/release/deps/flow_scaling-bd25c3bd0e8fdcc3.d: crates/bench/benches/flow_scaling.rs

/root/repo/target/release/deps/flow_scaling-bd25c3bd0e8fdcc3: crates/bench/benches/flow_scaling.rs

crates/bench/benches/flow_scaling.rs:
