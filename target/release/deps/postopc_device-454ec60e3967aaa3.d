/root/repo/target/release/deps/postopc_device-454ec60e3967aaa3.d: crates/device/src/lib.rs crates/device/src/error.rs crates/device/src/mosfet.rs crates/device/src/params.rs crates/device/src/rc.rs crates/device/src/slices.rs Cargo.toml

/root/repo/target/release/deps/libpostopc_device-454ec60e3967aaa3.rmeta: crates/device/src/lib.rs crates/device/src/error.rs crates/device/src/mosfet.rs crates/device/src/params.rs crates/device/src/rc.rs crates/device/src/slices.rs Cargo.toml

crates/device/src/lib.rs:
crates/device/src/error.rs:
crates/device/src/mosfet.rs:
crates/device/src/params.rs:
crates/device/src/rc.rs:
crates/device/src/slices.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
