/root/repo/target/debug/examples/selective_opc-36000c33f06aae67.d: examples/selective_opc.rs

/root/repo/target/debug/examples/selective_opc-36000c33f06aae67: examples/selective_opc.rs

examples/selective_opc.rs:
