/root/repo/target/release/deps/postopc_layout-91211c428f97437f.d: crates/layout/src/lib.rs crates/layout/src/density.rs crates/layout/src/design.rs crates/layout/src/drc.rs crates/layout/src/error.rs crates/layout/src/generate.rs crates/layout/src/io.rs crates/layout/src/layer.rs crates/layout/src/library.rs crates/layout/src/netlist.rs crates/layout/src/place.rs crates/layout/src/route.rs crates/layout/src/stdcells.rs crates/layout/src/tech.rs crates/layout/src/xref.rs Cargo.toml

/root/repo/target/release/deps/libpostopc_layout-91211c428f97437f.rmeta: crates/layout/src/lib.rs crates/layout/src/density.rs crates/layout/src/design.rs crates/layout/src/drc.rs crates/layout/src/error.rs crates/layout/src/generate.rs crates/layout/src/io.rs crates/layout/src/layer.rs crates/layout/src/library.rs crates/layout/src/netlist.rs crates/layout/src/place.rs crates/layout/src/route.rs crates/layout/src/stdcells.rs crates/layout/src/tech.rs crates/layout/src/xref.rs Cargo.toml

crates/layout/src/lib.rs:
crates/layout/src/density.rs:
crates/layout/src/design.rs:
crates/layout/src/drc.rs:
crates/layout/src/error.rs:
crates/layout/src/generate.rs:
crates/layout/src/io.rs:
crates/layout/src/layer.rs:
crates/layout/src/library.rs:
crates/layout/src/netlist.rs:
crates/layout/src/place.rs:
crates/layout/src/route.rs:
crates/layout/src/stdcells.rs:
crates/layout/src/tech.rs:
crates/layout/src/xref.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
