//! Printed-contour extraction and image-quality metrics.
//!
//! Beyond point measurements (cutlines), the flow sometimes needs the
//! whole printed shape — e.g. to report hotspot snippets or to compute
//! printed-area statistics — and edge-quality metrics (ILS/NILS) that
//! predict CD stability through dose.

use crate::error::Result;
use crate::image::AerialImage;
use crate::resist::ResistModel;
use postopc_geom::{Coord, Point, Polygon, Rect};

/// Extracts the printed contours inside `window` as rectilinear polygons
/// at the given trace resolution (nm per step).
///
/// The printed region is discretized at `step_nm` and each connected
/// component's boundary is traced; the result is a pixel-accurate
/// rectilinear approximation of the resist contour (adequate for area,
/// snippet and hotspot-shape work; use cutlines for sub-nm CD metrology).
///
/// # Errors
///
/// Returns a geometry error only for a degenerate `window` or
/// non-positive `step_nm`.
pub fn printed_contours(
    image: &AerialImage,
    resist: &ResistModel,
    window: Rect,
    step_nm: f64,
) -> Result<Vec<Polygon>> {
    if !(step_nm.is_finite() && step_nm > 0.0) {
        return Err(postopc_geom::GeomError::InvalidResolution(step_nm).into());
    }
    let nx = (window.width() as f64 / step_nm).ceil() as usize + 1;
    let ny = (window.height() as f64 / step_nm).ceil() as usize + 1;
    // Sample the printed predicate on the grid.
    let mut printed = vec![false; nx * ny];
    for iy in 0..ny {
        for ix in 0..nx {
            let x = window.left() as f64 + (ix as f64 + 0.5) * step_nm;
            let y = window.bottom() as f64 + (iy as f64 + 0.5) * step_nm;
            printed[iy * nx + ix] = resist.printed_at(image, x, y);
        }
    }
    // Connected components by flood fill (4-connectivity).
    let mut label = vec![usize::MAX; nx * ny];
    let mut components = 0usize;
    let mut stack = Vec::new();
    for start in 0..nx * ny {
        if !printed[start] || label[start] != usize::MAX {
            continue;
        }
        let id = components;
        components += 1;
        stack.push(start);
        label[start] = id;
        while let Some(i) = stack.pop() {
            let (ix, iy) = (i % nx, i / nx);
            let mut push = |j: usize| {
                if printed[j] && label[j] == usize::MAX {
                    label[j] = id;
                    stack.push(j);
                }
            };
            if ix > 0 {
                push(i - 1);
            }
            if ix + 1 < nx {
                push(i + 1);
            }
            if iy > 0 {
                push(i - nx);
            }
            if iy + 1 < ny {
                push(i + nx);
            }
        }
    }
    // Build each component's polygon from its pixel rows (union of
    // per-row runs, merged through the polygon's rect decomposition
    // equivalence: we construct the boundary by tracing runs).
    let mut polygons = Vec::with_capacity(components);
    for id in 0..components {
        if let Some(poly) = component_polygon(&label, nx, ny, id, window, step_nm) {
            polygons.push(poly);
        }
    }
    Ok(polygons)
}

/// Builds the rectilinear outline of one labelled component by tracing
/// its boundary edges (pixel-edge walk, outer contour only).
fn component_polygon(
    label: &[usize],
    nx: usize,
    ny: usize,
    id: usize,
    window: Rect,
    step_nm: f64,
) -> Option<Polygon> {
    let inside = |ix: isize, iy: isize| -> bool {
        if ix < 0 || iy < 0 || ix as usize >= nx || iy as usize >= ny {
            return false;
        }
        label[iy as usize * nx + ix as usize] == id
    };
    // Find the lowest-leftmost boundary pixel.
    let start = (0..nx * ny).find(|&i| label[i] == id)?;
    let (sx, sy) = ((start % nx) as isize, (start / nx) as isize);
    // Boundary walk over pixel corners, keeping the component on the left.
    // Directions: 0 = +x, 1 = +y, 2 = -x, 3 = -y.
    let mut corners: Vec<(isize, isize)> = Vec::new();
    let (mut cx, mut cy) = (sx, sy); // current corner (pixel lower-left)
    let mut dir = 0usize;
    let start_corner = (cx, cy);
    loop {
        corners.push((cx, cy));
        // Try to turn left first (keeps the region on the left), then
        // straight, then right, then back.
        let mut moved = false;
        for turn in [3usize, 0, 1, 2] {
            let nd = (dir + turn) % 4;
            let (dx, dy) = [(1isize, 0isize), (0, 1), (-1, 0), (0, -1)][nd];
            // A step along (dx,dy) from corner (cx,cy) is a boundary edge
            // iff the pixel on its left is inside and on its right outside.
            let (lx, ly, rx, ry) = match nd {
                0 => (cx, cy, cx, cy - 1),
                1 => (cx - 1, cy, cx, cy),
                2 => (cx - 1, cy - 1, cx - 1, cy),
                _ => (cx, cy - 1, cx - 1, cy - 1),
            };
            if inside(lx, ly) && !inside(rx, ry) {
                cx += dx;
                cy += dy;
                dir = nd;
                moved = true;
                break;
            }
        }
        if !moved {
            return None; // isolated pixel patterns degenerate; skip
        }
        if (cx, cy) == start_corner {
            break;
        }
        if corners.len() > 8 * nx * ny {
            return None; // tracing failure guard
        }
    }
    // Convert corners to nm and simplify collinear runs.
    let to_nm = |c: (isize, isize)| {
        Point::new(
            window.left() + (c.0 as f64 * step_nm).round() as Coord,
            window.bottom() + (c.1 as f64 * step_nm).round() as Coord,
        )
    };
    let vertices: Vec<Point> = corners.into_iter().map(to_nm).collect();
    Polygon::new(vertices)
        .ok()
        .and_then(|p| p.simplified().ok())
}

/// Image log slope at a point along a unit direction, in 1/nm:
/// `ILS = |dI/dn| / I`. Higher is better (steeper edges, more dose
/// latitude).
pub fn image_log_slope(image: &AerialImage, at: (f64, f64), direction: (f64, f64)) -> f64 {
    const H: f64 = 2.0;
    let (x, y) = at;
    let (dx, dy) = direction;
    let i0 = image.intensity_at(x, y).max(1e-12);
    let plus = image.intensity_at(x + dx * H, y + dy * H);
    let minus = image.intensity_at(x - dx * H, y - dy * H);
    ((plus - minus) / (2.0 * H)).abs() / i0
}

/// Normalized image log slope: `NILS = ILS × CD`, the standard
/// dimensionless edge-quality figure (≥ 2 is comfortable at the 90 nm
/// node; below ~1.5 dose control collapses).
pub fn nils(image: &AerialImage, edge: (f64, f64), normal: (f64, f64), cd_nm: f64) -> f64 {
    image_log_slope(image, edge, normal) * cd_nm
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::image::SimulationSpec;

    fn line_image() -> AerialImage {
        let line = Polygon::from(Rect::new(-45, -600, 45, 600).expect("rect"));
        AerialImage::simulate(
            &SimulationSpec::nominal(),
            &[line],
            Rect::new(-300, -300, 300, 300).expect("rect"),
        )
        .expect("image")
    }

    #[test]
    fn contour_of_a_line_is_one_polygon_with_right_area() {
        let image = line_image();
        let window = Rect::new(-200, -250, 200, 250).expect("rect");
        let contours =
            printed_contours(&image, &ResistModel::standard(), window, 5.0).expect("contours");
        assert_eq!(contours.len(), 1, "expected one printed component");
        let printed = &contours[0];
        // Printed CD ≈ 95 nm over the 500 nm window height: area within
        // ~15% of that estimate.
        let area = printed.area() as f64;
        let expected = 95.0 * 500.0;
        assert!(
            (area - expected).abs() / expected < 0.15,
            "printed area {area} vs expected {expected}"
        );
        assert!(printed.is_simple());
    }

    #[test]
    fn empty_image_has_no_contours() {
        let image = AerialImage::simulate(
            &SimulationSpec::nominal(),
            &[],
            Rect::new(-300, -300, 300, 300).expect("rect"),
        )
        .expect("image");
        let contours = printed_contours(
            &image,
            &ResistModel::standard(),
            Rect::new(-200, -200, 200, 200).expect("rect"),
            5.0,
        )
        .expect("contours");
        assert!(contours.is_empty());
    }

    #[test]
    fn two_lines_give_two_components() {
        let mask = vec![
            Polygon::from(Rect::new(-45, -600, 45, 600).expect("rect")),
            Polygon::from(Rect::new(235, -600, 325, 600).expect("rect")),
        ];
        let image = AerialImage::simulate(
            &SimulationSpec::nominal(),
            &mask,
            Rect::new(-300, -300, 600, 300).expect("rect"),
        )
        .expect("image");
        let contours = printed_contours(
            &image,
            &ResistModel::standard(),
            Rect::new(-200, -250, 500, 250).expect("rect"),
            5.0,
        )
        .expect("contours");
        assert_eq!(contours.len(), 2);
    }

    #[test]
    fn contours_from_shared_workspace_match_direct_simulation() {
        use crate::workspace::SimWorkspace;
        let line = Polygon::from(Rect::new(-45, -600, 45, 600).expect("rect"));
        let sim_window = Rect::new(-300, -300, 300, 300).expect("rect");
        let trace_window = Rect::new(-200, -250, 200, 250).expect("rect");
        let mut ws = SimWorkspace::new();
        let pooled = AerialImage::simulate_with(
            &mut ws,
            &SimulationSpec::nominal(),
            std::slice::from_ref(&line),
            sim_window,
        )
        .expect("image");
        let direct = line_image();
        let resist = ResistModel::standard();
        let from_pooled = printed_contours(&pooled, &resist, trace_window, 5.0).expect("contours");
        let from_direct = printed_contours(&direct, &resist, trace_window, 5.0).expect("contours");
        assert_eq!(from_pooled, from_direct);
    }

    #[test]
    fn rejects_bad_step() {
        let image = line_image();
        assert!(printed_contours(
            &image,
            &ResistModel::standard(),
            Rect::new(-100, -100, 100, 100).expect("rect"),
            0.0
        )
        .is_err());
    }

    #[test]
    fn nils_is_physical_at_the_edge() {
        let image = line_image();
        // Printed edge near x = 47; NILS between 0.5 and 5 for this node.
        let n = nils(&image, (47.0, 0.0), (1.0, 0.0), 90.0);
        assert!((0.5..5.0).contains(&n), "NILS = {n}");
        // ILS at the line center is much smaller than at the edge.
        let ils_center = image_log_slope(&image, (0.0, 0.0), (1.0, 0.0));
        let ils_edge = image_log_slope(&image, (47.0, 0.0), (1.0, 0.0));
        assert!(ils_edge > 3.0 * ils_center);
    }

    #[test]
    fn defocus_degrades_nils() {
        let line = Polygon::from(Rect::new(-45, -600, 45, 600).expect("rect"));
        let window = Rect::new(-300, -300, 300, 300).expect("rect");
        let focused = AerialImage::simulate(
            &SimulationSpec::nominal(),
            std::slice::from_ref(&line),
            window,
        )
        .expect("image");
        let blurred = AerialImage::simulate(
            &SimulationSpec::nominal().with_conditions(crate::ProcessConditions {
                focus_nm: 200.0,
                dose: 1.0,
            }),
            &[line],
            window,
        )
        .expect("image");
        assert!(
            nils(&blurred, (47.0, 0.0), (1.0, 0.0), 90.0)
                < nils(&focused, (47.0, 0.0), (1.0, 0.0), 90.0)
        );
    }
}
