/root/repo/target/release/examples/hotspot_triage-619621a3457e1b09.d: examples/hotspot_triage.rs Cargo.toml

/root/repo/target/release/examples/libhotspot_triage-619621a3457e1b09.rmeta: examples/hotspot_triage.rs Cargo.toml

examples/hotspot_triage.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
