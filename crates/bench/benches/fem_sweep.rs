//! Benchmarks a focus-exposure-matrix sweep over an isolated line (the
//! primitive behind experiment F5).

use criterion::{criterion_group, criterion_main, Criterion};
use postopc_geom::{Polygon, Rect};
use postopc_litho::{
    cutline, AerialImage, FocusExposureMatrix, ResistModel, SimulationSpec,
};

fn bench_fem(c: &mut Criterion) {
    let line = Polygon::from(Rect::new(-45, -600, 45, 600).expect("rect"));
    let window = Rect::new(-300, -300, 300, 300).expect("rect");
    let resist = ResistModel::standard();
    let mut group = c.benchmark_group("fem");
    group.sample_size(10);
    group.bench_function("5x3_line_cd_sweep", |b| {
        b.iter(|| {
            FocusExposureMatrix::sweep(
                vec![-150.0, -75.0, 0.0, 75.0, 150.0],
                vec![0.94, 1.0, 1.06],
                |conditions| {
                    let spec = SimulationSpec::nominal().with_conditions(*conditions);
                    let image = AerialImage::simulate(&spec, &[line.clone()], window)?;
                    cutline::measure_cd(&image, &resist, (0.0, 0.0), (1.0, 0.0), 150.0)
                },
            )
            .expect("sweep succeeds")
        });
    });
    group.finish();
}

criterion_group!(benches, bench_fem);
criterion_main!(benches);
