/root/repo/target/debug/deps/properties-7cd9e11acc10384b.d: crates/geom/tests/properties.rs

/root/repo/target/debug/deps/properties-7cd9e11acc10384b: crates/geom/tests/properties.rs

crates/geom/tests/properties.rs:
