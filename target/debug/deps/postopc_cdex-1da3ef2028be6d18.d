/root/repo/target/debug/deps/postopc_cdex-1da3ef2028be6d18.d: crates/cdex/src/lib.rs crates/cdex/src/equivalent.rs crates/cdex/src/error.rs crates/cdex/src/measure.rs crates/cdex/src/stats.rs crates/cdex/src/wires.rs

/root/repo/target/debug/deps/postopc_cdex-1da3ef2028be6d18: crates/cdex/src/lib.rs crates/cdex/src/equivalent.rs crates/cdex/src/error.rs crates/cdex/src/measure.rs crates/cdex/src/stats.rs crates/cdex/src/wires.rs

crates/cdex/src/lib.rs:
crates/cdex/src/equivalent.rs:
crates/cdex/src/error.rs:
crates/cdex/src/measure.rs:
crates/cdex/src/stats.rs:
crates/cdex/src/wires.rs:
