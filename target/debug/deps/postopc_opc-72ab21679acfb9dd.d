/root/repo/target/debug/deps/postopc_opc-72ab21679acfb9dd.d: crates/opc/src/lib.rs crates/opc/src/error.rs crates/opc/src/fragment.rs crates/opc/src/hotspots.rs crates/opc/src/model.rs crates/opc/src/mrc.rs crates/opc/src/orc.rs crates/opc/src/rules.rs crates/opc/src/selective.rs crates/opc/src/sraf.rs

/root/repo/target/debug/deps/postopc_opc-72ab21679acfb9dd: crates/opc/src/lib.rs crates/opc/src/error.rs crates/opc/src/fragment.rs crates/opc/src/hotspots.rs crates/opc/src/model.rs crates/opc/src/mrc.rs crates/opc/src/orc.rs crates/opc/src/rules.rs crates/opc/src/selective.rs crates/opc/src/sraf.rs

crates/opc/src/lib.rs:
crates/opc/src/error.rs:
crates/opc/src/fragment.rs:
crates/opc/src/hotspots.rs:
crates/opc/src/model.rs:
crates/opc/src/mrc.rs:
crates/opc/src/orc.rs:
crates/opc/src/rules.rs:
crates/opc/src/selective.rs:
crates/opc/src/sraf.rs:
