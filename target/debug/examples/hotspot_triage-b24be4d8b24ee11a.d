/root/repo/target/debug/examples/hotspot_triage-b24be4d8b24ee11a.d: examples/hotspot_triage.rs

/root/repo/target/debug/examples/hotspot_triage-b24be4d8b24ee11a: examples/hotspot_triage.rs

examples/hotspot_triage.rs:
