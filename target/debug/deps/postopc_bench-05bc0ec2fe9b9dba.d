/root/repo/target/debug/deps/postopc_bench-05bc0ec2fe9b9dba.d: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/timing.rs

/root/repo/target/debug/deps/postopc_bench-05bc0ec2fe9b9dba: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/timing.rs

crates/bench/src/lib.rs:
crates/bench/src/experiments.rs:
crates/bench/src/timing.rs:
