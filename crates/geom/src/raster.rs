//! Scalar field rasterization: mask transmission grids and aerial images.
//!
//! A [`Grid`] is a uniform scalar field over a rectangular window of layout
//! space. The lithography simulator rasterizes mask polygons into a
//! transmission grid (pixel value = covered area fraction), convolves it
//! with optical kernels, and samples the resulting intensity field at
//! arbitrary nm positions via bilinear interpolation.

use crate::error::{GeomError, Result};
use crate::point::Point;
use crate::polygon::Polygon;
use crate::rect::Rect;

/// A uniform scalar field over a window of layout space.
///
/// Pixel `(ix, iy)` covers the square
/// `[origin + ix·pixel, origin + (ix+1)·pixel) × [...y...]`, and its sample
/// point (for interpolation) is the pixel center.
#[derive(Debug, Clone, PartialEq)]
pub struct Grid {
    origin: Point,
    pixel: f64,
    nx: usize,
    ny: usize,
    data: Vec<f64>,
}

impl Grid {
    /// Creates a zero-filled grid covering `window` (expanded by `margin`
    /// nm on all sides) at `pixel` nm per pixel.
    ///
    /// # Errors
    ///
    /// Returns [`GeomError::InvalidResolution`] if `pixel <= 0`, is not
    /// finite, or the window would require an absurd (> 10⁸) pixel count.
    pub fn new(window: Rect, margin: i64, pixel: f64) -> Result<Grid> {
        if !(pixel.is_finite() && pixel > 0.0) {
            return Err(GeomError::InvalidResolution(pixel));
        }
        let origin = Point::new(window.left() - margin, window.bottom() - margin);
        let w = (window.width() + 2 * margin) as f64;
        let h = (window.height() + 2 * margin) as f64;
        let nx = (w / pixel).ceil() as usize + 1;
        let ny = (h / pixel).ceil() as usize + 1;
        if nx.saturating_mul(ny) > 100_000_000 {
            return Err(GeomError::InvalidResolution(pixel));
        }
        Ok(Grid {
            origin,
            pixel,
            nx,
            ny,
            data: vec![0.0; nx * ny],
        })
    }

    /// Grid width in pixels.
    pub fn nx(&self) -> usize {
        self.nx
    }

    /// Grid height in pixels.
    pub fn ny(&self) -> usize {
        self.ny
    }

    /// Pixel size in nm.
    pub fn pixel(&self) -> f64 {
        self.pixel
    }

    /// Lower-left corner of pixel `(0, 0)` in nm.
    pub fn origin(&self) -> Point {
        self.origin
    }

    /// Raw row-major data (`iy * nx + ix`).
    pub fn data(&self) -> &[f64] {
        &self.data
    }

    /// Mutable raw data.
    pub fn data_mut(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Value at pixel `(ix, iy)`.
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of bounds.
    pub fn at(&self, ix: usize, iy: usize) -> f64 {
        assert!(
            ix < self.nx && iy < self.ny,
            "pixel ({ix},{iy}) out of grid"
        );
        self.data[iy * self.nx + ix]
    }

    /// Sets the value at pixel `(ix, iy)`.
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of bounds.
    pub fn set(&mut self, ix: usize, iy: usize, v: f64) {
        assert!(
            ix < self.nx && iy < self.ny,
            "pixel ({ix},{iy}) out of grid"
        );
        self.data[iy * self.nx + ix] = v;
    }

    /// Accumulates `weight` × (covered area fraction) of `rect` into every
    /// overlapped pixel. Partial pixels receive fractional coverage, so the
    /// rasterization conserves total area exactly.
    pub fn add_rect(&mut self, rect: Rect, weight: f64) {
        let x0 = (rect.left() - self.origin.x) as f64 / self.pixel;
        let x1 = (rect.right() - self.origin.x) as f64 / self.pixel;
        let y0 = (rect.bottom() - self.origin.y) as f64 / self.pixel;
        let y1 = (rect.top() - self.origin.y) as f64 / self.pixel;
        let ix0 = x0.floor().max(0.0) as usize;
        let ix1 = (x1.ceil() as usize).min(self.nx);
        let iy0 = y0.floor().max(0.0) as usize;
        let iy1 = (y1.ceil() as usize).min(self.ny);
        for iy in iy0..iy1 {
            let cov_y = (y1.min((iy + 1) as f64) - y0.max(iy as f64)).max(0.0);
            if cov_y <= 0.0 {
                continue;
            }
            for ix in ix0..ix1 {
                let cov_x = (x1.min((ix + 1) as f64) - x0.max(ix as f64)).max(0.0);
                if cov_x > 0.0 {
                    self.data[iy * self.nx + ix] += weight * cov_x * cov_y;
                }
            }
        }
    }

    /// Rasterizes a polygon (via its rectangle decomposition) with the given
    /// weight.
    pub fn add_polygon(&mut self, polygon: &Polygon, weight: f64) {
        for r in polygon.to_rects() {
            self.add_rect(r, weight);
        }
    }

    /// Bilinear sample at an arbitrary nm position (clamped to the grid).
    pub fn sample(&self, x_nm: f64, y_nm: f64) -> f64 {
        // Convert to continuous pixel-center coordinates.
        let fx = (x_nm - self.origin.x as f64) / self.pixel - 0.5;
        let fy = (y_nm - self.origin.y as f64) / self.pixel - 0.5;
        let fx = fx.clamp(0.0, (self.nx - 1) as f64);
        let fy = fy.clamp(0.0, (self.ny - 1) as f64);
        let ix = (fx.floor() as usize).min(self.nx - 2);
        let iy = (fy.floor() as usize).min(self.ny.saturating_sub(2));
        let tx = fx - ix as f64;
        let ty = fy - iy as f64;
        let v00 = self.data[iy * self.nx + ix];
        let v10 = self.data[iy * self.nx + ix + 1];
        let v01 = self.data[(iy + 1) * self.nx + ix];
        let v11 = self.data[(iy + 1) * self.nx + ix + 1];
        v00 * (1.0 - tx) * (1.0 - ty)
            + v10 * tx * (1.0 - ty)
            + v01 * (1.0 - tx) * ty
            + v11 * tx * ty
    }

    /// Maximum value over the whole grid (0.0 for an empty grid).
    pub fn max_value(&self) -> f64 {
        self.data.iter().copied().fold(0.0_f64, f64::max)
    }

    /// Sum of all pixel values (× pixel area gives integrated quantity).
    pub fn total(&self) -> f64 {
        self.data.iter().sum()
    }

    /// Convolves each row with a symmetric kernel (odd length, centered),
    /// then each column, in place — the separable-convolution primitive the
    /// imaging model builds Gaussian blurs from.
    ///
    /// # Panics
    ///
    /// Panics if `kernel` has even length.
    pub fn convolve_separable(&mut self, kernel: &[f64]) {
        assert!(
            kernel.len() % 2 == 1,
            "separable kernel must have odd length"
        );
        let half = kernel.len() / 2;
        let mut scratch = vec![0.0; self.nx.max(self.ny)];
        // Rows.
        for iy in 0..self.ny {
            let row = &self.data[iy * self.nx..(iy + 1) * self.nx];
            for (ix, out) in scratch[..self.nx].iter_mut().enumerate() {
                let mut acc = 0.0;
                for (k, &w) in kernel.iter().enumerate() {
                    let j = ix as isize + k as isize - half as isize;
                    if j >= 0 && (j as usize) < self.nx {
                        acc += w * row[j as usize];
                    }
                }
                *out = acc;
            }
            self.data[iy * self.nx..(iy + 1) * self.nx].copy_from_slice(&scratch[..self.nx]);
        }
        // Columns.
        for ix in 0..self.nx {
            for (iy, out) in scratch[..self.ny].iter_mut().enumerate() {
                let mut acc = 0.0;
                for (k, &w) in kernel.iter().enumerate() {
                    let j = iy as isize + k as isize - half as isize;
                    if j >= 0 && (j as usize) < self.ny {
                        acc += w * self.data[j as usize * self.nx + ix];
                    }
                }
                *out = acc;
            }
            for (iy, &value) in scratch[..self.ny].iter().enumerate() {
                self.data[iy * self.nx + ix] = value;
            }
        }
    }

    /// Returns a grid with identical shape whose pixels are
    /// `f(self, other)` applied element-wise.
    ///
    /// # Panics
    ///
    /// Panics if the grids have different shapes.
    pub fn zip_map(&self, other: &Grid, f: impl Fn(f64, f64) -> f64) -> Grid {
        assert!(
            self.nx == other.nx && self.ny == other.ny,
            "grid shape mismatch: {}x{} vs {}x{}",
            self.nx,
            self.ny,
            other.nx,
            other.ny
        );
        Grid {
            origin: self.origin,
            pixel: self.pixel,
            nx: self.nx,
            ny: self.ny,
            data: self
                .data
                .iter()
                .zip(&other.data)
                .map(|(&a, &b)| f(a, b))
                .collect(),
        }
    }

    /// Applies `f` to every pixel in place.
    pub fn map_inplace(&mut self, f: impl Fn(f64) -> f64) {
        for v in &mut self.data {
            *v = f(*v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid_10x10() -> Grid {
        Grid::new(Rect::new(0, 0, 100, 100).expect("rect"), 0, 10.0).expect("grid")
    }

    #[test]
    fn rejects_bad_resolution() {
        let w = Rect::new(0, 0, 10, 10).expect("rect");
        assert!(Grid::new(w, 0, 0.0).is_err());
        assert!(Grid::new(w, 0, -1.0).is_err());
        assert!(Grid::new(w, 0, f64::NAN).is_err());
    }

    #[test]
    fn rect_coverage_conserves_area() {
        let mut g = grid_10x10();
        // 25x35 rect not aligned to the 10 nm pixel grid.
        g.add_rect(Rect::new(12, 13, 37, 48).expect("rect"), 1.0);
        let total_area = g.total() * 10.0 * 10.0;
        assert!((total_area - 25.0 * 35.0).abs() < 1e-9, "{total_area}");
    }

    #[test]
    fn full_pixel_coverage_is_one() {
        let mut g = grid_10x10();
        g.add_rect(Rect::new(10, 10, 20, 20).expect("rect"), 1.0);
        assert!((g.at(1, 1) - 1.0).abs() < 1e-12);
        assert_eq!(g.at(0, 0), 0.0);
        assert_eq!(g.at(2, 2), 0.0);
    }

    #[test]
    fn polygon_coverage_matches_area() {
        let mut g = grid_10x10();
        let l = Polygon::new(vec![
            Point::new(5, 5),
            Point::new(55, 5),
            Point::new(55, 25),
            Point::new(25, 25),
            Point::new(25, 65),
            Point::new(5, 65),
        ])
        .expect("valid L");
        g.add_polygon(&l, 1.0);
        let total_area = g.total() * 100.0;
        assert!((total_area - l.area() as f64).abs() < 1e-6);
    }

    #[test]
    fn bilinear_sample_interpolates() {
        let mut g = grid_10x10();
        g.set(0, 0, 0.0);
        g.set(1, 0, 1.0);
        // Pixel centers at x = 5 and x = 15 (y = 5): halfway is 10.
        let v = g.sample(10.0, 5.0);
        assert!((v - 0.5).abs() < 1e-12, "{v}");
        // At a center, exact value.
        assert!((g.sample(15.0, 5.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn sample_clamps_outside() {
        let mut g = grid_10x10();
        g.set(0, 0, 7.0);
        assert!((g.sample(-100.0, -100.0) - 7.0).abs() < 1e-12);
    }

    #[test]
    fn identity_kernel_is_noop() {
        let mut g = grid_10x10();
        g.add_rect(Rect::new(20, 20, 60, 70).expect("rect"), 1.0);
        let before = g.data().to_vec();
        g.convolve_separable(&[1.0]);
        assert_eq!(g.data(), &before[..]);
    }

    #[test]
    fn box_kernel_conserves_mass_in_interior() {
        let mut g = grid_10x10();
        g.set(5, 5, 9.0);
        g.convolve_separable(&[1.0 / 3.0, 1.0 / 3.0, 1.0 / 3.0]);
        assert!((g.total() - 9.0).abs() < 1e-9);
        assert!((g.at(5, 5) - 1.0).abs() < 1e-12);
        assert!((g.at(4, 4) - 1.0).abs() < 1e-12);
        assert_eq!(g.at(2, 2), 0.0);
    }

    #[test]
    fn box_kernel_conserves_mass_on_wide_grid() {
        // nx > ny: the column pass must write back only ny values.
        let mut g = Grid::new(Rect::new(0, 0, 200, 50).expect("rect"), 0, 10.0).expect("grid");
        g.set(10, 2, 9.0);
        g.convolve_separable(&[1.0 / 3.0, 1.0 / 3.0, 1.0 / 3.0]);
        assert!((g.total() - 9.0).abs() < 1e-9);
        assert!((g.at(10, 2) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn zip_map_combines_fields() {
        let mut a = grid_10x10();
        let mut b = grid_10x10();
        a.set(3, 3, 2.0);
        b.set(3, 3, 5.0);
        let c = a.zip_map(&b, |x, y| x + y);
        assert!((c.at(3, 3) - 7.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn zip_map_panics_on_shape_mismatch() {
        let a = grid_10x10();
        let b = Grid::new(Rect::new(0, 0, 50, 50).expect("rect"), 0, 10.0).expect("grid");
        let _ = a.zip_map(&b, |x, _| x);
    }
}
