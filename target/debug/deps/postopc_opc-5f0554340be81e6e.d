/root/repo/target/debug/deps/postopc_opc-5f0554340be81e6e.d: crates/opc/src/lib.rs crates/opc/src/error.rs crates/opc/src/fragment.rs crates/opc/src/hotspots.rs crates/opc/src/model.rs crates/opc/src/mrc.rs crates/opc/src/orc.rs crates/opc/src/rules.rs crates/opc/src/selective.rs crates/opc/src/sraf.rs Cargo.toml

/root/repo/target/debug/deps/libpostopc_opc-5f0554340be81e6e.rmeta: crates/opc/src/lib.rs crates/opc/src/error.rs crates/opc/src/fragment.rs crates/opc/src/hotspots.rs crates/opc/src/model.rs crates/opc/src/mrc.rs crates/opc/src/orc.rs crates/opc/src/rules.rs crates/opc/src/selective.rs crates/opc/src/sraf.rs Cargo.toml

crates/opc/src/lib.rs:
crates/opc/src/error.rs:
crates/opc/src/fragment.rs:
crates/opc/src/hotspots.rs:
crates/opc/src/model.rs:
crates/opc/src/mrc.rs:
crates/opc/src/orc.rs:
crates/opc/src/rules.rs:
crates/opc/src/selective.rs:
crates/opc/src/sraf.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
