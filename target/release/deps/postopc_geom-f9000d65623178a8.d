/root/repo/target/release/deps/postopc_geom-f9000d65623178a8.d: crates/geom/src/lib.rs crates/geom/src/edge.rs crates/geom/src/error.rs crates/geom/src/index.rs crates/geom/src/point.rs crates/geom/src/polygon.rs crates/geom/src/raster.rs crates/geom/src/rect.rs crates/geom/src/transform.rs

/root/repo/target/release/deps/libpostopc_geom-f9000d65623178a8.rlib: crates/geom/src/lib.rs crates/geom/src/edge.rs crates/geom/src/error.rs crates/geom/src/index.rs crates/geom/src/point.rs crates/geom/src/polygon.rs crates/geom/src/raster.rs crates/geom/src/rect.rs crates/geom/src/transform.rs

/root/repo/target/release/deps/libpostopc_geom-f9000d65623178a8.rmeta: crates/geom/src/lib.rs crates/geom/src/edge.rs crates/geom/src/error.rs crates/geom/src/index.rs crates/geom/src/point.rs crates/geom/src/polygon.rs crates/geom/src/raster.rs crates/geom/src/rect.rs crates/geom/src/transform.rs

crates/geom/src/lib.rs:
crates/geom/src/edge.rs:
crates/geom/src/error.rs:
crates/geom/src/index.rs:
crates/geom/src/point.rs:
crates/geom/src/polygon.rs:
crates/geom/src/raster.rs:
crates/geom/src/rect.rs:
crates/geom/src/transform.rs:
