//! Aerial image simulation.

use crate::error::Result;
use crate::kernels::KernelStack;
use crate::optics::{OpticsParams, ProcessConditions};
use postopc_geom::{Grid, Polygon, Rect};

/// Which kernel stack to image with.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum KernelMode {
    /// Center-surround stack with proximity interactions (production).
    #[default]
    CenterSurround,
    /// Single Gaussian blur (ablation baseline).
    SingleGaussian,
}

/// Full specification of one imaging run.
#[derive(Debug, Clone, PartialEq)]
pub struct SimulationSpec {
    /// Projection optics.
    pub optics: OpticsParams,
    /// Focus/dose conditions.
    pub conditions: ProcessConditions,
    /// Raster pixel size in nm (5 nm resolves all kernels comfortably).
    pub pixel_nm: f64,
    /// Kernel stack selection.
    pub kernel_mode: KernelMode,
}

impl SimulationSpec {
    /// Nominal-conditions spec at 5 nm/pixel with the production stack.
    pub fn nominal() -> SimulationSpec {
        SimulationSpec {
            optics: OpticsParams::default(),
            conditions: ProcessConditions::nominal(),
            pixel_nm: 5.0,
            kernel_mode: KernelMode::CenterSurround,
        }
    }

    /// The same spec at different conditions.
    pub fn with_conditions(&self, conditions: ProcessConditions) -> SimulationSpec {
        SimulationSpec {
            conditions,
            ..self.clone()
        }
    }

    /// The kernel stack this spec images with.
    pub fn kernel_stack(&self) -> KernelStack {
        match self.kernel_mode {
            KernelMode::CenterSurround => KernelStack::new(&self.optics, &self.conditions),
            KernelMode::SingleGaussian => {
                KernelStack::single_gaussian(&self.optics, &self.conditions)
            }
        }
    }
}

impl Default for SimulationSpec {
    fn default() -> Self {
        SimulationSpec::nominal()
    }
}

/// A simulated aerial image over a window of the layout.
///
/// Intensity is normalized so that the interior of a very large feature
/// images at `dose × 1.0`; the printed contour is where intensity crosses
/// the resist threshold.
///
/// ```
/// use postopc_litho::{AerialImage, SimulationSpec};
/// use postopc_geom::{Polygon, Rect};
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let line = Polygon::from(Rect::new(-45, -400, 45, 400)?);
/// let image = AerialImage::simulate(&SimulationSpec::nominal(), &[line], Rect::new(-200, -200, 200, 200)?)?;
/// // Bright inside the feature, dark far away.
/// assert!(image.intensity_at(0.0, 0.0) > image.intensity_at(190.0, 0.0));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct AerialImage {
    grid: Grid,
    dose: f64,
}

impl AerialImage {
    /// Images `mask` polygons over `window`.
    ///
    /// The caller should pass every polygon within the optical ambit
    /// (≈ 3σ of the widest kernel, see [`KernelStack::ambit_nm`]) of the
    /// window; the raster is automatically padded by the ambit so border
    /// features image correctly.
    ///
    /// # Errors
    ///
    /// Returns an error for invalid optics or a degenerate window.
    pub fn simulate(spec: &SimulationSpec, mask: &[Polygon], window: Rect) -> Result<AerialImage> {
        spec.optics.validate()?;
        let stack = spec.kernel_stack();
        let margin = stack.ambit_nm().ceil() as i64;
        let mut base = Grid::new(window, margin, spec.pixel_nm)?;
        for polygon in mask {
            base.add_polygon(polygon, 1.0);
        }
        let mut result: Option<Grid> = None;
        for kernel in stack.kernels() {
            let taps = KernelStack::discretize(kernel, spec.pixel_nm);
            let mut field = base.clone();
            field.convolve_separable(&taps);
            field.map_inplace(|v| v * kernel.weight);
            result = Some(match result {
                None => field,
                Some(acc) => acc.zip_map(&field, |a, b| a + b),
            });
        }
        Ok(AerialImage {
            grid: result.expect("stack has at least one kernel"),
            dose: spec.conditions.dose,
        })
    }

    /// Dose-scaled intensity at an arbitrary position (bilinear sampled).
    pub fn intensity_at(&self, x_nm: f64, y_nm: f64) -> f64 {
        self.dose * self.grid.sample(x_nm, y_nm)
    }

    /// The underlying (dose-free) intensity grid.
    pub fn grid(&self) -> &Grid {
        &self.grid
    }

    /// The dose this image was exposed at.
    pub fn dose(&self) -> f64 {
        self.dose
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use postopc_geom::{Coord, Point};

    fn line(x0: Coord, x1: Coord) -> Polygon {
        Polygon::from(Rect::new(x0, -600, x1, 600).expect("rect"))
    }

    fn window() -> Rect {
        Rect::new(-300, -300, 300, 300).expect("rect")
    }

    #[test]
    fn clear_field_normalizes_to_one() {
        // A huge feature: interior intensity must be ~1.0.
        let big = Polygon::from(Rect::new(-2000, -2000, 2000, 2000).expect("rect"));
        let img =
            AerialImage::simulate(&SimulationSpec::nominal(), &[big], window()).expect("image");
        let v = img.intensity_at(0.0, 0.0);
        assert!((v - 1.0).abs() < 1e-3, "interior intensity = {v}");
    }

    #[test]
    fn empty_mask_images_dark() {
        let img = AerialImage::simulate(&SimulationSpec::nominal(), &[], window()).expect("image");
        assert!(img.intensity_at(0.0, 0.0).abs() < 1e-9);
    }

    #[test]
    fn isolated_line_profile_shape() {
        let img = AerialImage::simulate(&SimulationSpec::nominal(), &[line(-45, 45)], window())
            .expect("image");
        let center = img.intensity_at(0.0, 0.0);
        let edge = img.intensity_at(45.0, 0.0);
        let far = img.intensity_at(280.0, 0.0);
        assert!(center > edge, "center {center} <= edge {edge}");
        assert!(edge > far, "edge {edge} <= far {far}");
        assert!(center > 0.5, "90 nm line must print: center = {center}");
        // The negative surround makes the far field slightly negative (dark
        // ring) rather than monotone.
        assert!(far < 0.05, "far field = {far}");
    }

    #[test]
    fn dense_context_changes_edge_intensity() {
        // Iso vs dense (pitch 280): proximity must move the edge intensity.
        let iso = AerialImage::simulate(&SimulationSpec::nominal(), &[line(-45, 45)], window())
            .expect("image");
        let dense_mask = vec![line(-45, 45), line(-325, -235), line(235, 325)];
        let dense = AerialImage::simulate(&SimulationSpec::nominal(), &dense_mask, window())
            .expect("image");
        let iso_edge = iso.intensity_at(45.0, 0.0);
        let dense_edge = dense.intensity_at(45.0, 0.0);
        assert!(
            (iso_edge - dense_edge).abs() > 0.005,
            "no iso-dense interaction: iso {iso_edge} vs dense {dense_edge}"
        );
    }

    #[test]
    fn single_gaussian_has_weaker_proximity() {
        let dense_mask = vec![line(-45, 45), line(-325, -235), line(235, 325)];
        let mut spec = SimulationSpec::nominal();
        let full = AerialImage::simulate(&spec, &dense_mask, window()).expect("image");
        spec.kernel_mode = KernelMode::SingleGaussian;
        let single = AerialImage::simulate(&spec, &dense_mask, window()).expect("image");
        let iso_mask = vec![line(-45, 45)];
        let full_iso =
            AerialImage::simulate(&SimulationSpec::nominal(), &iso_mask, window()).expect("image");
        let single_iso = AerialImage::simulate(&spec, &iso_mask, window()).expect("image");
        let prox_full = (full.intensity_at(45.0, 0.0) - full_iso.intensity_at(45.0, 0.0)).abs();
        let prox_single =
            (single.intensity_at(45.0, 0.0) - single_iso.intensity_at(45.0, 0.0)).abs();
        assert!(
            prox_full > prox_single,
            "center-surround proximity {prox_full} should exceed single-Gaussian {prox_single}"
        );
    }

    #[test]
    fn dose_scales_intensity_linearly() {
        let spec = SimulationSpec::nominal();
        let over = spec.with_conditions(ProcessConditions {
            focus_nm: 0.0,
            dose: 1.1,
        });
        let a = AerialImage::simulate(&spec, &[line(-45, 45)], window()).expect("image");
        let b = AerialImage::simulate(&over, &[line(-45, 45)], window()).expect("image");
        let ratio = b.intensity_at(0.0, 0.0) / a.intensity_at(0.0, 0.0);
        assert!((ratio - 1.1).abs() < 1e-9, "ratio = {ratio}");
    }

    #[test]
    fn defocus_reduces_peak_intensity() {
        let spec = SimulationSpec::nominal();
        let blur = spec.with_conditions(ProcessConditions {
            focus_nm: 200.0,
            dose: 1.0,
        });
        let a = AerialImage::simulate(&spec, &[line(-45, 45)], window()).expect("image");
        let b = AerialImage::simulate(&blur, &[line(-45, 45)], window()).expect("image");
        assert!(b.intensity_at(0.0, 0.0) < a.intensity_at(0.0, 0.0));
    }

    #[test]
    fn line_end_pullback_signal_exists() {
        // A finite line: intensity at the drawn line-end must be lower than
        // at the line middle edge (the line-end pullback driver).
        let short = Polygon::from(Rect::new(-45, -200, 45, 200).expect("rect"));
        let img =
            AerialImage::simulate(&SimulationSpec::nominal(), &[short], window()).expect("image");
        let end = img.intensity_at(0.0, 200.0);
        let side = img.intensity_at(45.0, 0.0);
        assert!(
            end < side,
            "line-end {end} should be dimmer than side edge {side}"
        );
        let _ = Point::new(0, 0); // keep Point import used in this module
    }
}
