/root/repo/target/debug/deps/postopc_rng-3924b57af78fc033.d: crates/rng/src/lib.rs

/root/repo/target/debug/deps/libpostopc_rng-3924b57af78fc033.rlib: crates/rng/src/lib.rs

/root/repo/target/debug/deps/libpostopc_rng-3924b57af78fc033.rmeta: crates/rng/src/lib.rs

crates/rng/src/lib.rs:
