//! Placement transforms: the eight Manhattan orientations plus translation.

use crate::point::{Point, Vector};
use crate::polygon::Polygon;
use crate::rect::Rect;
use std::fmt;

/// One of the eight layout orientations (rotations by multiples of 90° and
/// their mirrored versions), as used for cell placement.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Orient {
    /// Identity.
    #[default]
    R0,
    /// 90° counter-clockwise.
    R90,
    /// 180°.
    R180,
    /// 270° counter-clockwise.
    R270,
    /// Mirror about the x-axis (flip vertically), then `R0`.
    MX,
    /// Mirror about the x-axis, then rotate 90° CCW.
    MX90,
    /// Mirror about the y-axis (flip horizontally), then `R0`.
    MY,
    /// Mirror about the y-axis, then rotate 90° CCW.
    MY90,
}

impl Orient {
    /// All eight orientations.
    pub const ALL: [Orient; 8] = [
        Orient::R0,
        Orient::R90,
        Orient::R180,
        Orient::R270,
        Orient::MX,
        Orient::MX90,
        Orient::MY,
        Orient::MY90,
    ];

    /// Applies the orientation to a point about the origin.
    pub fn apply(self, p: Point) -> Point {
        match self {
            Orient::R0 => p,
            Orient::R90 => Point::new(-p.y, p.x),
            Orient::R180 => Point::new(-p.x, -p.y),
            Orient::R270 => Point::new(p.y, -p.x),
            Orient::MX => Point::new(p.x, -p.y),
            Orient::MX90 => Point::new(p.y, p.x),
            Orient::MY => Point::new(-p.x, p.y),
            Orient::MY90 => Point::new(-p.y, -p.x),
        }
    }

    /// Whether the orientation includes a mirror (flips polygon winding).
    pub fn is_mirrored(self) -> bool {
        matches!(self, Orient::MX | Orient::MX90 | Orient::MY | Orient::MY90)
    }
}

impl fmt::Display for Orient {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Orient::R0 => "R0",
            Orient::R90 => "R90",
            Orient::R180 => "R180",
            Orient::R270 => "R270",
            Orient::MX => "MX",
            Orient::MX90 => "MX90",
            Orient::MY => "MY",
            Orient::MY90 => "MY90",
        };
        f.write_str(s)
    }
}

/// A rigid placement transform: orientation about the origin followed by a
/// translation.
///
/// ```
/// use postopc_geom::{Transform, Orient, Point, Vector};
/// let t = Transform::new(Orient::MY, Vector::new(1000, 0));
/// assert_eq!(t.apply(Point::new(100, 50)), Point::new(900, 50));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Transform {
    /// Orientation applied first, about the origin.
    pub orient: Orient,
    /// Translation applied after the orientation.
    pub offset: Vector,
}

impl Transform {
    /// Creates a transform from orientation and translation.
    pub const fn new(orient: Orient, offset: Vector) -> Transform {
        Transform { orient, offset }
    }

    /// The identity transform.
    pub const IDENTITY: Transform = Transform::new(Orient::R0, Vector::ZERO);

    /// A pure translation.
    pub const fn translation(offset: Vector) -> Transform {
        Transform::new(Orient::R0, offset)
    }

    /// Applies the transform to a point.
    pub fn apply(&self, p: Point) -> Point {
        self.orient.apply(p) + self.offset
    }

    /// Applies the transform to a rectangle.
    pub fn apply_rect(&self, r: Rect) -> Rect {
        let a = self.apply(r.min());
        let b = self.apply(r.max());
        // Orientation permutes corners but preserves non-degeneracy.
        Rect::from_points(a, b)
            .unwrap_or_else(|_| unreachable!("Manhattan transforms preserve rect validity"))
    }

    /// Applies the transform to a polygon (winding is re-normalized).
    pub fn apply_polygon(&self, poly: &Polygon) -> Polygon {
        let vertices = poly.vertices().iter().map(|&v| self.apply(v)).collect();
        // Axis-parallelism and area are preserved by Manhattan transforms.
        Polygon::new(vertices)
            .unwrap_or_else(|_| unreachable!("Manhattan transforms preserve polygon validity"))
    }
}

impl fmt::Display for Transform {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}+{}", self.orient, self.offset)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::point::Coord;

    fn r(x0: Coord, y0: Coord, x1: Coord, y1: Coord) -> Rect {
        Rect::new(x0, y0, x1, y1).expect("rect")
    }

    #[test]
    fn orientations_are_distinct() {
        let p = Point::new(3, 1);
        let images: std::collections::HashSet<Point> =
            Orient::ALL.iter().map(|o| o.apply(p)).collect();
        assert_eq!(images.len(), 8);
    }

    #[test]
    fn r90_four_times_is_identity() {
        let p = Point::new(7, -2);
        let mut q = p;
        for _ in 0..4 {
            q = Orient::R90.apply(q);
        }
        assert_eq!(q, p);
    }

    #[test]
    fn mirrors_are_involutions() {
        for o in [Orient::MX, Orient::MY] {
            let p = Point::new(5, 9);
            assert_eq!(o.apply(o.apply(p)), p);
            assert!(o.is_mirrored());
        }
    }

    #[test]
    fn rect_transform_preserves_area() {
        let rect = r(10, 20, 40, 90);
        for &o in &Orient::ALL {
            let t = Transform::new(o, Vector::new(-17, 33));
            let out = t.apply_rect(rect);
            assert_eq!(out.area(), rect.area(), "orientation {o}");
        }
    }

    #[test]
    fn polygon_transform_preserves_area_and_winding() {
        let l = Polygon::new(vec![
            Point::new(0, 0),
            Point::new(20, 0),
            Point::new(20, 10),
            Point::new(10, 10),
            Point::new(10, 20),
            Point::new(0, 20),
        ])
        .expect("valid L");
        for &o in &Orient::ALL {
            let t = Transform::new(o, Vector::new(100, 200));
            let out = t.apply_polygon(&l);
            assert_eq!(out.area(), l.area(), "orientation {o}");
            assert!(out.is_simple());
        }
    }

    #[test]
    fn my_mirror_in_row_placement() {
        // Standard-cell rows alternate MY-mirrored cells about the cell width.
        let t = Transform::new(Orient::MY, Vector::new(1000, 0));
        assert_eq!(t.apply(Point::new(0, 0)), Point::new(1000, 0));
        assert_eq!(t.apply(Point::new(400, 10)), Point::new(600, 10));
    }
}
