/root/repo/target/release/deps/flow_scaling-c3d973aba6a7364e.d: crates/bench/benches/flow_scaling.rs Cargo.toml

/root/repo/target/release/deps/libflow_scaling-c3d973aba6a7364e.rmeta: crates/bench/benches/flow_scaling.rs Cargo.toml

crates/bench/benches/flow_scaling.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
