/root/repo/target/debug/deps/postopc_suite-ebbc43eab2fdf404.d: src/lib.rs

/root/repo/target/debug/deps/postopc_suite-ebbc43eab2fdf404: src/lib.rs

src/lib.rs:
