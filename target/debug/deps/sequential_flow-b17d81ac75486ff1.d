/root/repo/target/debug/deps/sequential_flow-b17d81ac75486ff1.d: tests/sequential_flow.rs Cargo.toml

/root/repo/target/debug/deps/libsequential_flow-b17d81ac75486ff1.rmeta: tests/sequential_flow.rs Cargo.toml

tests/sequential_flow.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
