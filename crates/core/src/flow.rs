//! The end-to-end post-OPC timing flow.
//!
//! The sequence the DAC 2005 paper describes:
//!
//! 1. **drawn STA** over the placed-and-routed design;
//! 2. **tag critical gates** on the top-k speed paths;
//! 3. **selective extraction**: OPC + imaging + slice extraction on the
//!    tagged gates (optionally every gate);
//! 4. optional **multi-layer extraction** of the critical nets' printed
//!    wire widths;
//! 5. **back-annotated STA** and comparison (criticality reordering,
//!    worst-slack deviation).

use crate::artifact::{content_hash, WarmArtifact};
use crate::compare::TimingComparison;
use crate::durable::{ArtifactIo, ArtifactLock, IoFaultInjection, RetryPolicy};
use crate::error::{ArtifactErrorKind, FlowError, Result};
use crate::extract::{extract_gates, ExtractionConfig, ExtractionStats};
use crate::fault::FaultPolicy;
use crate::multilayer::{extract_wires, WireExtractionConfig, WireExtractionStats};
use crate::session::{BudgetedOutcome, SampleBudget, SessionQuery, TimingSession};
use crate::tags::TagSet;
use postopc_device::ProcessParams;
use postopc_layout::{Design, NetId};
use postopc_sta::{CdAnnotation, TimingModel};
use std::path::Path;
use std::time::{Duration, Instant};

/// Which gates the flow extracts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Selection {
    /// Every gate in the design (full-chip extraction).
    All,
    /// Only gates on the top-`paths` drawn speed paths (the paper's
    /// selective extraction).
    Critical {
        /// Number of top paths whose gates are tagged.
        paths: usize,
    },
}

/// Flow configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct FlowConfig {
    /// Clock period for slack computation, in ps.
    pub clock_ps: f64,
    /// Number of speed paths reported in the comparison.
    pub report_paths: usize,
    /// Gate selection policy.
    pub selection: Selection,
    /// Extraction settings (OPC recipe, imaging, slicing).
    pub extraction: ExtractionConfig,
    /// Wire extraction settings; `None` disables the multi-layer step.
    pub wires: Option<WireExtractionConfig>,
    /// Device process for timing.
    pub process: ProcessParams,
}

impl FlowConfig {
    /// The paper's flow: selective extraction on the top-20 paths,
    /// model OPC, poly only.
    pub fn standard(clock_ps: f64) -> FlowConfig {
        FlowConfig {
            clock_ps,
            report_paths: 20,
            selection: Selection::Critical { paths: 20 },
            extraction: ExtractionConfig::standard(),
            wires: None,
            process: ProcessParams::n90(),
        }
    }

    /// The same flow under a different [`FaultPolicy`] — full-chip runs
    /// typically want `Quarantine` so one degenerate gate cannot abort a
    /// multi-minute analysis.
    #[must_use]
    pub fn with_fault_policy(mut self, policy: FaultPolicy) -> FlowConfig {
        self.extraction.fault_policy = policy;
        self
    }
}

/// The complete result of one flow run.
#[derive(Debug, Clone, PartialEq)]
pub struct FlowReport {
    /// Tagged gates.
    pub tags: TagSet,
    /// Extraction statistics.
    pub extraction: ExtractionStats,
    /// Wire extraction statistics (if the multi-layer step ran).
    pub wire_stats: Option<WireExtractionStats>,
    /// The final annotation (gates + optional nets).
    pub annotation: CdAnnotation,
    /// Drawn vs annotated timing with path comparisons.
    pub comparison: TimingComparison,
    /// Wall-clock time of the extraction step.
    pub extraction_time: Duration,
    /// Wall-clock time of the two timing runs.
    pub timing_time: Duration,
}

impl FlowReport {
    /// Gates quarantined during extraction, in `GateId` order (empty under
    /// [`FaultPolicy::Fail`] or a clean run).
    #[must_use]
    pub fn quarantined(&self) -> &[crate::fault::QuarantinedGate] {
        &self.extraction.quarantined
    }
}

/// Runs the complete post-OPC timing flow on a compiled design.
///
/// # Errors
///
/// Propagates configuration, simulation, extraction and timing errors.
pub fn run_flow(design: &Design, config: &FlowConfig) -> Result<FlowReport> {
    let model = TimingModel::new(design, config.process.clone(), config.clock_ps)?;
    // One compiled model serves the drawn pass and the final comparison.
    let compiled = model.compile()?;
    let mut scratch = compiled.scratch();

    // Step 1-2: drawn timing and tagging.
    let drawn = compiled.evaluate(&mut scratch, None)?;
    let tags = match config.selection {
        Selection::All => TagSet::all(design),
        Selection::Critical { paths } => TagSet::from_critical_paths(design, &drawn, paths),
    };

    // Step 3: selective extraction.
    let t0 = Instant::now();
    let outcome = extract_gates(design, &config.extraction, &tags)?;
    let mut annotation = outcome.annotation;

    // Step 4: optional multi-layer extraction on the nets of the tagged
    // gates' outputs and inputs.
    let wire_stats = match &config.wires {
        Some(wire_config) => {
            let mut nets: Vec<NetId> = Vec::new();
            for gate in tags.sorted() {
                let g = design.netlist().gate(gate);
                nets.push(g.output);
                nets.extend(g.inputs.iter().copied());
            }
            nets.sort_unstable();
            nets.dedup();
            Some(extract_wires(design, wire_config, &nets, &mut annotation)?)
        }
        None => None,
    };
    let extraction_time = t0.elapsed();

    // Step 5: back-annotated timing and comparison.
    let t1 = Instant::now();
    let comparison = TimingComparison::compare_with(
        &compiled,
        &mut scratch,
        design,
        &annotation,
        config.report_paths,
    )?;
    let timing_time = t1.elapsed();

    Ok(FlowReport {
        tags,
        extraction: outcome.stats,
        wire_stats,
        annotation,
        comparison,
        extraction_time,
        timing_time,
    })
}

/// Why a [`serve`] invocation came up cold instead of warm — the rung of
/// the recovery ladder that rejected the persisted artifact.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ColdReason {
    /// No artifact existed at the given path (first run, or a previous
    /// crash before any artifact was published).
    Missing,
    /// The artifact bytes were torn or garbled: bad magic, truncation, a
    /// checksum mismatch or an undecodable section.
    Corrupt,
    /// The artifact decoded cleanly but its content hash does not match
    /// these inputs — the layout, process or config changed since it was
    /// written.
    Stale,
    /// The artifact carries an unsupported format version (written by a
    /// different build).
    Version,
    /// The artifact could not be read at all (I/O error, including an
    /// exhausted transient-retry budget).
    Io,
}

impl std::fmt::Display for ColdReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            ColdReason::Missing => "missing",
            ColdReason::Corrupt => "corrupt",
            ColdReason::Stale => "stale-hash",
            ColdReason::Version => "version",
            ColdReason::Io => "io",
        })
    }
}

impl ColdReason {
    /// Classifies a failed artifact load into its ladder rung. Non-artifact
    /// errors (which the load path does not produce) classify as `Io`.
    fn classify(e: &FlowError) -> ColdReason {
        match e {
            FlowError::Artifact(a) => match a.kind {
                ArtifactErrorKind::Corrupt => ColdReason::Corrupt,
                ArtifactErrorKind::Version { .. } => ColdReason::Version,
                ArtifactErrorKind::StaleHash { .. } => ColdReason::Stale,
                ArtifactErrorKind::Io { .. } | ArtifactErrorKind::Locked { .. } => ColdReason::Io,
            },
            _ => ColdReason::Io,
        }
    }
}

/// What happened to artifact persistence during a [`serve`] invocation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PersistStatus {
    /// Nothing to persist: no artifact path was given, or the session
    /// came up warm from a still-valid artifact.
    Skipped,
    /// A fresh artifact was atomically published for the next caller.
    Persisted,
    /// The save failed after retries. The serve still answered every
    /// query (persistence is an optimization, not a correctness
    /// dependency); the next caller pays a cold start.
    Failed {
        /// The rendered artifact error that aborted the save.
        detail: String,
    },
}

/// Durability and deadline options for [`serve_with`].
#[derive(Debug, Clone, PartialEq)]
pub struct ServeOptions {
    /// Seeded I/O fault injection over every artifact read, write, fsync,
    /// rename and lock this serve performs. `None` (the default) is the
    /// plain production I/O path. Injection never changes query answers —
    /// only whether/how persistence succeeds — so it deliberately lives
    /// outside [`FlowConfig`] and the artifact content hash.
    pub io_fault: Option<IoFaultInjection>,
    /// Retry policy for the transient I/O error class.
    pub retry: RetryPolicy,
    /// Optional query deadline as a deterministic sample-count budget
    /// shared by the whole batch (Monte Carlo samples, corners and
    /// what-ifs all draw from it in evaluation-equivalents). Exhaustion
    /// yields typed [`BudgetedOutcome::Partial`] / `Skipped` outcomes,
    /// never a hang or a panic.
    pub budget: Option<u64>,
    /// Hold the sidecar advisory lock (`<path>.lock`) across the
    /// load/save window so two serves against one artifact path cannot
    /// interleave. On contention with a live owner the serve fails with
    /// a typed [`ArtifactErrorKind::Locked`] error.
    pub lock: bool,
}

impl Default for ServeOptions {
    fn default() -> ServeOptions {
        ServeOptions {
            io_fault: None,
            retry: RetryPolicy::default(),
            budget: None,
            lock: true,
        }
    }
}

/// The result of one [`serve`] invocation.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeReport {
    /// One outcome per submitted query, in submission order. Without a
    /// budget every entry is [`BudgetedOutcome::Full`].
    pub outcomes: Vec<BudgetedOutcome>,
    /// Whether the session came up warm from a valid persisted artifact
    /// (false: it compiled cold, and — when a path was given — wrote a
    /// fresh artifact for the next invocation).
    pub warm: bool,
    /// Why the session came up cold, when it did and a path was given:
    /// the recovery-ladder rung that rejected the artifact. `None` on a
    /// warm start or a pathless serve.
    pub cold_reason: Option<ColdReason>,
    /// Whether a fresh artifact was persisted for the next caller.
    pub persist: PersistStatus,
    /// Wall-clock time to bring the session up (cold compile + extract,
    /// or artifact load + cache-hot re-evaluation).
    pub startup_time: Duration,
    /// Wall-clock time to answer all queries against the warm state.
    pub query_time: Duration,
}

/// Batch-query service mode: brings up one [`TimingSession`] — warm from
/// `artifact_path` when a valid artifact for these exact inputs exists
/// there, cold otherwise (persisting a fresh artifact to the path for
/// the next caller) — and answers every query against it. Equivalent to
/// [`serve_with`] under [`ServeOptions::default`].
///
/// A stale artifact (different content hash over the layout, process,
/// clock, gate selection, wire config or extraction config), a corrupt
/// one, or one that cannot be read is treated as absent: the service
/// recompiles cold and overwrites it, recording the
/// [`ServeReport::cold_reason`]. Answers are bit-identical either way;
/// only `startup_time` differs.
///
/// # Errors
///
/// Propagates configuration, extraction and timing errors, and the typed
/// [`ArtifactErrorKind::Locked`] contention error. A failed artifact
/// *save* is not an error: it degrades to [`PersistStatus::Failed`] and
/// the queries are still answered.
pub fn serve(
    design: &Design,
    config: &FlowConfig,
    artifact_path: Option<&Path>,
    queries: &[SessionQuery],
) -> Result<ServeReport> {
    serve_with(
        design,
        config,
        artifact_path,
        queries,
        &ServeOptions::default(),
    )
}

/// [`serve`] with explicit durability and deadline options: seeded I/O
/// fault injection, a transient-retry policy, a sample-count query
/// budget and advisory locking. See [`ServeOptions`].
///
/// # Errors
///
/// As [`serve`]; additionally [`FlowError::InvalidConfig`] when the
/// fault injection is malconfigured.
pub fn serve_with(
    design: &Design,
    config: &FlowConfig,
    artifact_path: Option<&Path>,
    queries: &[SessionQuery],
    options: &ServeOptions,
) -> Result<ServeReport> {
    if let Some(injection) = &options.io_fault {
        injection.validate()?;
    }
    let mut io = ArtifactIo::new(options.io_fault, options.retry);
    // The lock brackets the whole load/save window; dropping the guard
    // (on every exit path) releases it.
    let _lock = match artifact_path {
        Some(path) if options.lock => Some(ArtifactLock::acquire(&mut io, path)?),
        _ => None,
    };
    let model = TimingModel::new(design, config.process.clone(), config.clock_ps)?;
    let t0 = Instant::now();
    let expected = content_hash(design, config);
    // The recovery ladder: missing → cold; unreadable/torn/foreign-version/
    // stale → cold with the rung recorded; valid → warm.
    let (restored, cold_reason) = match artifact_path {
        None => (None, None),
        Some(p) if !p.exists() => (None, Some(ColdReason::Missing)),
        Some(p) => match WarmArtifact::load_validated_with(p, expected, &mut io) {
            Ok(artifact) => (Some(artifact), None),
            Err(e) => (None, Some(ColdReason::classify(&e))),
        },
    };
    let warm = restored.is_some();
    let mut session = match restored {
        Some(artifact) => TimingSession::restore(&model, config, artifact)?,
        None => TimingSession::new(&model, config)?,
    };
    let persist = match (artifact_path, warm) {
        (Some(path), false) => match session.artifact().save_with(path, &mut io) {
            Ok(()) => PersistStatus::Persisted,
            // Graceful degradation: the artifact is a warm-start
            // optimization, so a failed save must not take down the
            // answers. The next caller simply starts cold.
            Err(e) => PersistStatus::Failed {
                detail: e.to_string(),
            },
        },
        _ => PersistStatus::Skipped,
    };
    let startup_time = t0.elapsed();
    let t1 = Instant::now();
    let mut budget = options.budget.map(SampleBudget::new);
    let outcomes = queries
        .iter()
        .map(|q| session.run_budgeted(q, budget.as_mut()))
        .collect::<Result<Vec<_>>>()?;
    let query_time = t1.elapsed();
    Ok(ServeReport {
        outcomes,
        warm,
        cold_reason,
        persist,
        startup_time,
        query_time,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::extract::OpcMode;
    use postopc_layout::{generate, TechRules};

    fn small_design() -> Design {
        Design::compile(
            generate::ripple_carry_adder(2).expect("netlist"),
            TechRules::n90(),
        )
        .expect("design")
    }

    fn fast_flow(selection: Selection) -> FlowConfig {
        let mut cfg = FlowConfig::standard(800.0);
        cfg.selection = selection;
        cfg.extraction.opc_mode = OpcMode::Rule;
        cfg.report_paths = 5;
        cfg
    }

    #[test]
    fn selective_flow_runs_end_to_end() {
        let d = small_design();
        let report = run_flow(&d, &fast_flow(Selection::Critical { paths: 2 })).expect("flow");
        assert!(!report.tags.is_empty());
        assert!(report.tags.len() < d.netlist().gate_count());
        assert_eq!(report.extraction.gates_extracted, report.tags.len());
        assert_eq!(report.annotation.gate_count(), report.tags.len());
        // Annotated timing differs from drawn.
        assert_ne!(
            report.comparison.drawn.critical_delay_ps(),
            report.comparison.annotated.critical_delay_ps()
        );
        assert!(report.wire_stats.is_none());
    }

    #[test]
    fn full_flow_annotates_every_gate() {
        let d = small_design();
        let report = run_flow(&d, &fast_flow(Selection::All)).expect("flow");
        assert_eq!(report.annotation.gate_count(), d.netlist().gate_count());
    }

    #[test]
    fn selective_is_cheaper_than_full() {
        let d = small_design();
        let selective = run_flow(&d, &fast_flow(Selection::Critical { paths: 1 })).expect("flow");
        let full = run_flow(&d, &fast_flow(Selection::All)).expect("flow");
        assert!(selective.extraction.windows < full.extraction.windows);
    }

    #[test]
    fn serve_warms_up_from_its_own_artifact_bit_identically() {
        let d = small_design();
        let cfg = fast_flow(Selection::Critical { paths: 2 });
        let queries = vec![
            SessionQuery::Corners(postopc_sta::Corner::classic_set(6.0)),
            SessionQuery::MonteCarlo(postopc_sta::MonteCarloConfig {
                samples: 30,
                sigma_nm: 1.5,
                seed: 7,
                ..postopc_sta::MonteCarloConfig::default()
            }),
        ];
        let dir = std::env::temp_dir().join("postopc-serve-test");
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("serve.bin");
        std::fs::remove_file(&path).ok();

        let cold = serve(&d, &cfg, Some(&path), &queries).expect("cold serve");
        assert!(!cold.warm);
        assert!(path.exists(), "cold serve persists an artifact");
        let warm = serve(&d, &cfg, Some(&path), &queries).expect("warm serve");
        assert!(warm.warm);
        assert_eq!(cold.outcomes, warm.outcomes);

        // A config change invalidates the artifact: back to cold.
        let mut other = cfg.clone();
        other.clock_ps = 900.0;
        let stale = serve(&d, &other, Some(&path), &queries).expect("stale serve");
        assert!(!stale.warm);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn serve_invalidates_on_selection_or_wire_changes() {
        let d = small_design();
        let cfg = fast_flow(Selection::Critical { paths: 2 });
        // Monte Carlo samples around the extracted baseline, so its
        // answer genuinely depends on which gates the selection tagged.
        let queries = vec![SessionQuery::MonteCarlo(postopc_sta::MonteCarloConfig {
            samples: 30,
            sigma_nm: 1.5,
            seed: 7,
            ..postopc_sta::MonteCarloConfig::default()
        })];
        let dir = std::env::temp_dir().join("postopc-serve-selection-test");
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("serve.bin");
        std::fs::remove_file(&path).ok();
        let cold = serve(&d, &cfg, Some(&path), &queries).expect("cold serve");
        assert!(!cold.warm);

        // Varying only the tagged-path count must not reuse the artifact:
        // the extraction (and so every answer) covers different gates.
        let mut wider = cfg.clone();
        wider.selection = Selection::Critical { paths: 3 };
        let invalidated = serve(&d, &wider, Some(&path), &queries).expect("wider serve");
        assert!(
            !invalidated.warm,
            "a --paths change must invalidate the artifact"
        );
        let reference = serve(&d, &wider, None, &queries).expect("reference serve");
        assert_eq!(invalidated.outcomes, reference.outcomes);
        // The overwritten artifact now serves the wider selection warm.
        let warm = serve(&d, &wider, Some(&path), &queries).expect("warm serve");
        assert!(warm.warm);
        assert_eq!(warm.outcomes, reference.outcomes);

        // Enabling the wire step likewise invalidates.
        let mut wired = wider.clone();
        wired.wires = Some(WireExtractionConfig::standard());
        let rewired = serve(&d, &wired, Some(&path), &queries).expect("wired serve");
        assert!(
            !rewired.warm,
            "a wire-config change must invalidate the artifact"
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn multilayer_step_annotates_nets() {
        let d = small_design();
        let mut cfg = fast_flow(Selection::Critical { paths: 1 });
        cfg.wires = Some(WireExtractionConfig::standard());
        let report = run_flow(&d, &cfg).expect("flow");
        let stats = report.wire_stats.expect("wire step ran");
        assert!(stats.nets_annotated > 0);
        assert_eq!(report.annotation.net_count(), stats.nets_annotated);
    }
}
