//! Reusable scratch state for the imaging engine.
//!
//! Every aerial-image simulation needs a padded base grid, convolution
//! scratch buffers, and discretized kernel taps. A [`SimWorkspace`] owns
//! all three so that repeated simulations — the OPC iteration loop, FEM
//! sweeps, full-chip extraction — stop paying a fresh set of allocations
//! and a kernel re-discretization per window.
//!
//! Hot loops that own their iteration (model OPC, the extraction worker)
//! hold an explicit workspace and pass it to
//! [`AerialImage::simulate_with`](crate::AerialImage::simulate_with);
//! everything else goes through
//! [`AerialImage::simulate`](crate::AerialImage::simulate), which borrows a
//! per-thread workspace transparently — worker-pool threads each get their
//! own, so the engine stays lock-free.

use std::cell::RefCell;

use crate::error::Result;
use crate::kernels::TapCache;
use postopc_geom::{ConvScratch, Grid, Rect};

/// Scratch state reused across imaging runs: the padded base grid, the
/// separable-convolution buffers, and the discretized-tap cache.
///
/// Buffers grow to the largest window simulated and are then reused
/// allocation-free; the tap cache persists across windows so kernel
/// discretization happens once per distinct `(σ, pixel)` condition.
#[derive(Debug, Default)]
pub struct SimWorkspace {
    pub(crate) base: Option<Grid>,
    pub(crate) scratch: ConvScratch,
    pub(crate) taps: TapCache,
}

impl SimWorkspace {
    /// Creates an empty workspace; buffers are sized lazily on first use.
    pub fn new() -> SimWorkspace {
        SimWorkspace::default()
    }

    /// The base grid reshaped (zero-filled) to cover `window` expanded by
    /// `margin` at `pixel` nm, reusing the previous allocation.
    pub(crate) fn base_grid(&mut self, window: Rect, margin: i64, pixel: f64) -> Result<&mut Grid> {
        match &mut self.base {
            Some(grid) => {
                grid.reset(window, margin, pixel)?;
            }
            None => {
                self.base = Some(Grid::new(window, margin, pixel)?);
            }
        }
        match &mut self.base {
            Some(grid) => Ok(grid),
            None => unreachable!("base grid just ensured"),
        }
    }
}

thread_local! {
    static THREAD_WORKSPACE: RefCell<SimWorkspace> = RefCell::new(SimWorkspace::new());
}

/// Runs `f` with this thread's shared workspace. Falls back to a fresh
/// workspace if the thread-local one is already borrowed (re-entrant
/// simulation through a callback), so the fast path can never panic.
pub(crate) fn with_thread_workspace<R>(f: impl FnOnce(&mut SimWorkspace) -> R) -> R {
    THREAD_WORKSPACE.with(|cell| match cell.try_borrow_mut() {
        Ok(mut workspace) => f(&mut workspace),
        Err(_) => f(&mut SimWorkspace::new()),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn base_grid_reshapes_and_zeroes() {
        let mut ws = SimWorkspace::new();
        let w1 = Rect::new(0, 0, 400, 200).expect("rect");
        let g = ws.base_grid(w1, 50, 5.0).expect("grid");
        g.set(3, 3, 1.0);
        let (nx1, ny1) = (g.nx(), g.ny());
        // A smaller window must come back zeroed with the right shape.
        let w2 = Rect::new(-100, -100, 100, 100).expect("rect");
        let g = ws.base_grid(w2, 50, 5.0).expect("grid");
        assert!(g.nx() < nx1 || g.ny() < ny1);
        assert_eq!(g.max_value(), 0.0);
        let fresh = Grid::new(w2, 50, 5.0).expect("grid");
        assert_eq!(*g, fresh);
    }

    #[test]
    fn thread_workspace_is_reused() {
        let first = with_thread_workspace(|ws| {
            let w = Rect::new(0, 0, 100, 100).expect("rect");
            ws.base_grid(w, 10, 5.0).expect("grid");
            ws as *const SimWorkspace as usize
        });
        let second = with_thread_workspace(|ws| ws as *const SimWorkspace as usize);
        assert_eq!(first, second);
        // Nested access falls back instead of panicking.
        let ok = with_thread_workspace(|_outer| with_thread_workspace(|_inner| true));
        assert!(ok);
    }
}
