//! Drawn-vs-silicon timing comparison: speed-path criticality reordering
//! and worst-slack deviation — the paper's headline metrics.

use crate::error::Result;
use postopc_layout::{Design, NetId};
use postopc_sta::{CdAnnotation, CompiledSta, StaScratch, TimingModel, TimingPath, TimingReport};
use std::collections::HashMap;

/// The two timing views of one design plus path-level comparisons.
#[derive(Debug, Clone, PartialEq)]
pub struct TimingComparison {
    /// Drawn-CD timing.
    pub drawn: TimingReport,
    /// Post-OPC-annotated timing.
    pub annotated: TimingReport,
    /// Top-k speed paths under drawn timing.
    pub drawn_paths: Vec<TimingPath>,
    /// Top-k speed paths under annotated timing.
    pub annotated_paths: Vec<TimingPath>,
}

impl TimingComparison {
    /// Runs both analyses through the compiled evaluator and collects the
    /// top-`k` speed paths of each.
    ///
    /// # Errors
    ///
    /// Propagates timing-analysis errors.
    pub fn compare(
        model: &TimingModel<'_>,
        design: &Design,
        annotation: &CdAnnotation,
        k: usize,
    ) -> Result<TimingComparison> {
        let compiled = model.compile()?;
        let mut scratch = compiled.scratch();
        Self::compare_with(&compiled, &mut scratch, design, annotation, k)
    }

    /// [`compare`](Self::compare) against an already-compiled model —
    /// callers that run other analyses too (the flow) share the
    /// compilation and scratch.
    ///
    /// # Errors
    ///
    /// Propagates timing-analysis errors.
    pub fn compare_with(
        compiled: &CompiledSta<'_>,
        scratch: &mut StaScratch,
        design: &Design,
        annotation: &CdAnnotation,
        k: usize,
    ) -> Result<TimingComparison> {
        let drawn = compiled.evaluate(scratch, None)?;
        let annotated = compiled.evaluate(scratch, Some(annotation))?;
        let drawn_paths = drawn.top_paths(design, k);
        let annotated_paths = annotated.top_paths(design, k);
        Ok(TimingComparison {
            drawn,
            annotated,
            drawn_paths,
            annotated_paths,
        })
    }

    /// Kendall rank correlation (τ-b, tie-adjusted) between the drawn and
    /// annotated criticality orderings of the drawn top-k endpoints.
    ///
    /// τ = 1 means the ranking is unchanged; values well below 1 are the
    /// paper's "significant reordering of speed path criticality". The
    /// tie adjustment matters because symmetric layouts produce exactly
    /// tied slacks: an unchanged ranking with ties still scores τ = 1.
    pub fn kendall_tau(&self) -> f64 {
        let endpoints: Vec<NetId> = self.drawn_paths.iter().map(|p| p.endpoint).collect();
        if endpoints.len() < 2 {
            return 1.0;
        }
        let drawn_slack: HashMap<NetId, f64> = self
            .drawn_paths
            .iter()
            .map(|p| (p.endpoint, p.slack_ps))
            .collect();
        // Annotated slack of each endpoint.
        let annotated_slack: HashMap<NetId, f64> = endpoints
            .iter()
            .map(|&e| (e, self.annotated.slack_ps(e)))
            .collect();
        let n = endpoints.len();
        let mut concordant = 0i64;
        let mut discordant = 0i64;
        let mut drawn_ties = 0i64;
        let mut annotated_ties = 0i64;
        for i in 0..n {
            for j in (i + 1)..n {
                let di = drawn_slack[&endpoints[i]];
                let dj = drawn_slack[&endpoints[j]];
                let si = annotated_slack[&endpoints[i]];
                let sj = annotated_slack[&endpoints[j]];
                if di == dj {
                    drawn_ties += 1;
                }
                if si == sj {
                    annotated_ties += 1;
                }
                if di == dj || si == sj {
                    continue;
                }
                // Drawn order: i more critical than j by construction.
                if si < sj {
                    concordant += 1;
                } else {
                    discordant += 1;
                }
            }
        }
        let pairs = (n * (n - 1) / 2) as i64;
        let denom = (((pairs - drawn_ties) as f64) * ((pairs - annotated_ties) as f64)).sqrt();
        if denom == 0.0 {
            return 1.0; // Everything tied in both views: no reordering.
        }
        (concordant - discordant) as f64 / denom
    }

    /// Mean absolute rank displacement of the drawn top-k endpoints when
    /// re-ranked by annotated slack.
    pub fn mean_rank_displacement(&self) -> f64 {
        let endpoints: Vec<NetId> = self.drawn_paths.iter().map(|p| p.endpoint).collect();
        if endpoints.is_empty() {
            return 0.0;
        }
        let mut by_annotated = endpoints.clone();
        by_annotated.sort_by(|a, b| {
            self.annotated
                .slack_ps(*a)
                .total_cmp(&self.annotated.slack_ps(*b))
        });
        let annotated_rank: HashMap<NetId, usize> = by_annotated
            .iter()
            .enumerate()
            .map(|(r, &e)| (e, r))
            .collect();
        endpoints
            .iter()
            .enumerate()
            .map(|(drawn_rank, e)| (annotated_rank[e] as f64 - drawn_rank as f64).abs())
            .sum::<f64>()
            / endpoints.len() as f64
    }

    /// Number of endpoints in the annotated top-k that were *not* in the
    /// drawn top-k (paths that "became critical" only on silicon).
    pub fn newly_critical(&self) -> usize {
        let drawn: std::collections::HashSet<NetId> =
            self.drawn_paths.iter().map(|p| p.endpoint).collect();
        self.annotated_paths
            .iter()
            .filter(|p| !drawn.contains(&p.endpoint))
            .count()
    }

    /// Relative deviation of the worst-case slack between the two views:
    /// `|ws_annotated − ws_drawn| / |ws_drawn|` — the paper reports 36.4%.
    pub fn worst_slack_shift_fraction(&self) -> f64 {
        let d = self.drawn.worst_slack_ps();
        let a = self.annotated.worst_slack_ps();
        if d.abs() < 1e-12 {
            return 0.0;
        }
        (a - d).abs() / d.abs()
    }

    /// Relative deviation of the critical-path delay.
    pub fn critical_delay_shift_fraction(&self) -> f64 {
        let d = self.drawn.critical_delay_ps();
        if d.abs() < 1e-12 {
            return 0.0;
        }
        (self.annotated.critical_delay_ps() - d) / d
    }

    /// Relative change of total leakage.
    pub fn leakage_shift_fraction(&self) -> f64 {
        let d = self.drawn.leakage_ua();
        if d.abs() < 1e-12 {
            return 0.0;
        }
        (self.annotated.leakage_ua() - d) / d
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use postopc_device::{MosKind, ProcessParams};
    use postopc_layout::{generate, GateId, TechRules};
    use postopc_sta::GateAnnotation;

    fn design() -> Design {
        // The composite test case has many near-critical paths — the
        // precondition for criticality reordering.
        Design::compile(
            generate::paper_testcase(5).expect("netlist"),
            TechRules::n90(),
        )
        .expect("design")
    }

    /// A synthetic annotation that perturbs each gate deterministically
    /// but gate-dependently (stand-in for real extraction).
    fn perturbed_annotation(d: &Design, model: &TimingModel<'_>, amplitude: f64) -> CdAnnotation {
        let mut ann = CdAnnotation::new();
        for (gi, g) in d.netlist().gates().iter().enumerate() {
            let mut records = model.library().drawn_transistors(g.kind, g.drive).to_vec();
            // Deterministic pseudo-random shift in [-amplitude, amplitude].
            let h = (gi as f64 * 2.399963) % 2.0 - 1.0;
            for r in &mut records {
                let shift = amplitude * h * if r.kind == MosKind::Nmos { 1.0 } else { 0.8 };
                r.l_delay_nm += shift;
                r.l_leakage_nm += shift;
            }
            ann.set_gate(
                GateId(gi as u32),
                GateAnnotation {
                    transistors: records,
                },
            );
        }
        ann
    }

    #[test]
    fn identical_annotation_gives_tau_one() {
        let d = design();
        let model = TimingModel::new(&d, ProcessParams::n90(), 600.0).expect("model");
        let mut ann = CdAnnotation::new();
        for (gi, g) in d.netlist().gates().iter().enumerate() {
            ann.set_gate(
                GateId(gi as u32),
                GateAnnotation {
                    transistors: model.library().drawn_transistors(g.kind, g.drive).to_vec(),
                },
            );
        }
        let cmp = TimingComparison::compare(&model, &d, &ann, 10).expect("compare");
        assert!((cmp.kendall_tau() - 1.0).abs() < 1e-12);
        assert_eq!(cmp.mean_rank_displacement(), 0.0);
        assert_eq!(cmp.newly_critical(), 0);
        assert!(cmp.worst_slack_shift_fraction() < 1e-12);
    }

    #[test]
    fn perturbation_reorders_paths() {
        let d = design();
        let model = TimingModel::new(&d, ProcessParams::n90(), 600.0).expect("model");
        let ann = perturbed_annotation(&d, &model, 6.0);
        let cmp = TimingComparison::compare(&model, &d, &ann, 15).expect("compare");
        assert!(
            cmp.kendall_tau() < 0.999,
            "tau = {} should drop under perturbation",
            cmp.kendall_tau()
        );
        assert!(cmp.mean_rank_displacement() > 0.0);
        assert!(cmp.worst_slack_shift_fraction() > 0.0);
    }

    #[test]
    fn stronger_perturbation_reorders_more() {
        let d = design();
        let model = TimingModel::new(&d, ProcessParams::n90(), 600.0).expect("model");
        let weak =
            TimingComparison::compare(&model, &d, &perturbed_annotation(&d, &model, 1.0), 15)
                .expect("compare");
        let strong =
            TimingComparison::compare(&model, &d, &perturbed_annotation(&d, &model, 8.0), 15)
                .expect("compare");
        assert!(strong.kendall_tau() <= weak.kendall_tau());
        assert!(strong.worst_slack_shift_fraction() >= weak.worst_slack_shift_fraction());
    }

    #[test]
    fn uniformly_short_gates_speed_up_timing() {
        let d = design();
        let model = TimingModel::new(&d, ProcessParams::n90(), 600.0).expect("model");
        let mut ann = CdAnnotation::new();
        for (gi, g) in d.netlist().gates().iter().enumerate() {
            let mut records = model.library().drawn_transistors(g.kind, g.drive).to_vec();
            for r in &mut records {
                r.l_delay_nm -= 4.0;
                r.l_leakage_nm -= 4.0;
            }
            ann.set_gate(
                GateId(gi as u32),
                GateAnnotation {
                    transistors: records,
                },
            );
        }
        let cmp = TimingComparison::compare(&model, &d, &ann, 10).expect("compare");
        assert!(cmp.critical_delay_shift_fraction() < 0.0);
        assert!(cmp.leakage_shift_fraction() > 0.0);
    }
}
