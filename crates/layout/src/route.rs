//! Net routing: L-shaped driver-to-sink connections on metal-1/metal-2.
//!
//! Horizontal trunks run on metal-2 and vertical drops on metal-1, with a
//! via at each bend. The router is geometric rather than DRC-exact — its
//! purpose is (a) realistic wire *lengths* for RC back-annotation and
//! (b) printed metal shapes for the paper's multi-layer extraction
//! extension.

use crate::error::{LayoutError, Result};
use crate::layer::Layer;
use crate::library::CellLibrary;
use crate::netlist::{NetId, Netlist};
use crate::place::Placement;
use postopc_geom::{Coord, Point, Rect};

/// One rectangular wire or via piece of a routed net.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RouteSegment {
    /// Layer of the piece.
    pub layer: Layer,
    /// Geometry of the piece.
    pub rect: Rect,
}

/// The complete route of one net.
#[derive(Debug, Clone, PartialEq)]
pub struct NetRoute {
    /// The routed net.
    pub net: NetId,
    /// Wire and via pieces.
    pub segments: Vec<RouteSegment>,
    /// Total routed wirelength in nm.
    pub length_nm: f64,
}

/// Routing of a whole design.
#[derive(Debug, Clone, PartialEq)]
pub struct Routing {
    routes: Vec<NetRoute>,
}

impl Routing {
    /// Routes every gate-driven and primary-input net of the design with
    /// star topology L-routes from driver to each sink.
    ///
    /// # Errors
    ///
    /// Propagates geometry errors (degenerate route rectangles are skipped,
    /// so this only fails on inconsistent technology rules).
    pub fn route(
        netlist: &Netlist,
        placement: &Placement,
        library: &CellLibrary,
    ) -> Result<Routing> {
        let tech = library.tech();
        let mut routes = Vec::new();
        for (net_index, _net) in netlist.nets().iter().enumerate() {
            let net = NetId(net_index as u32);
            let driver_pos = match netlist.driver(net) {
                Some(gid) => {
                    let inst = placement.instance(gid).ok_or(LayoutError::UnknownId {
                        kind: "gate",
                        index: gid.0 as usize,
                    })?;
                    let cell = library.cell(netlist.gate(gid).kind, netlist.gate(gid).drive);
                    inst.transform.apply(cell.output_pin())
                }
                // Primary inputs enter at the die's left edge at mid-height.
                None => Point::new(placement.die().left(), placement.die().center().y),
            };
            let mut segments = Vec::new();
            let mut length = 0.0;
            for sink_gate in netlist.sinks(net) {
                let g = netlist.gate(sink_gate);
                let inst = placement
                    .instance(sink_gate)
                    .ok_or(LayoutError::UnknownId {
                        kind: "gate",
                        index: sink_gate.0 as usize,
                    })?;
                let cell = library.cell(g.kind, g.drive);
                for (pin_index, &input) in g.inputs.iter().enumerate() {
                    if input != net {
                        continue;
                    }
                    let pin = inst.transform.apply(cell.input_pins()[pin_index]);
                    // Spread vertical drops across neighbouring tracks so
                    // distinct nets do not overlap on metal-1, clamping the
                    // drop inside the die.
                    let die = placement.die();
                    let mut track = [0, 1, -1, 2, -2][net_index % 5] * tech.track_pitch;
                    // Reflect the offset back inside the die rather than
                    // clamping (clamping would pile edge nets onto one track).
                    if pin.x + track < die.left() + tech.m1_width
                        || pin.x + track > die.right() - tech.m1_width
                    {
                        track = -track;
                    }
                    let (segs, len) = l_route(driver_pos, pin, tech.m2_width, tech.m1_width, track);
                    segments.extend(segs);
                    length += len;
                }
            }
            routes.push(NetRoute {
                net,
                segments,
                length_nm: length,
            });
        }
        Ok(Routing { routes })
    }

    /// All net routes, indexed by net id.
    pub fn routes(&self) -> &[NetRoute] {
        &self.routes
    }

    /// The route of one net.
    pub fn route_of(&self, net: NetId) -> Option<&NetRoute> {
        self.routes.get(net.0 as usize)
    }

    /// Total wirelength of the design in nm.
    pub fn total_length_nm(&self) -> f64 {
        self.routes.iter().map(|r| r.length_nm).sum()
    }
}

/// Builds an L-route: horizontal metal-2 trunk at the driver's y, a
/// vertical metal-1 drop at the sink's x shifted by `track_offset`, a via
/// at the bend, and (when offset) a short metal-2 approach stub into the
/// pin.
fn l_route(
    from: Point,
    to: Point,
    m2w: Coord,
    m1w: Coord,
    track_offset: Coord,
) -> (Vec<RouteSegment>, f64) {
    let mut segments = Vec::new();
    let mut length = 0.0;
    let drop_x = to.x + track_offset;
    // Horizontal trunk on metal-2, driver to the drop track.
    if (drop_x - from.x).abs() > m2w {
        let (x0, x1) = (from.x.min(drop_x), from.x.max(drop_x));
        if let Ok(rect) = Rect::new(x0, from.y - m2w / 2, x1, from.y + m2w / 2) {
            segments.push(RouteSegment {
                layer: Layer::Metal2,
                rect,
            });
            length += (x1 - x0) as f64;
        }
    }
    // Vertical drop on metal-1.
    let mut dropped = false;
    if (to.y - from.y).abs() > m1w {
        let (y0, y1) = (from.y.min(to.y), from.y.max(to.y));
        if let Ok(rect) = Rect::new(drop_x - m1w / 2, y0, drop_x + m1w / 2, y1) {
            segments.push(RouteSegment {
                layer: Layer::Metal1,
                rect,
            });
            length += (y1 - y0) as f64;
            dropped = true;
            if let Ok(via) = Rect::centered(Point::new(drop_x, from.y), m1w, m1w) {
                segments.push(RouteSegment {
                    layer: Layer::Via1,
                    rect: via,
                });
            }
        }
    }
    // Approach stub from the drop track into the pin (metal-2, to avoid
    // running over cell-internal metal-1).
    if dropped && track_offset != 0 && (drop_x - to.x).abs() > 0 {
        let (x0, x1) = (drop_x.min(to.x), drop_x.max(to.x));
        if let Ok(rect) = Rect::new(x0 - m1w / 2, to.y - m2w / 2, x1 + m1w / 2, to.y + m2w / 2) {
            segments.push(RouteSegment {
                layer: Layer::Metal2,
                rect,
            });
            length += (x1 - x0) as f64;
            if let Ok(via) = Rect::centered(Point::new(drop_x, to.y), m1w, m1w) {
                segments.push(RouteSegment {
                    layer: Layer::Via1,
                    rect: via,
                });
            }
        }
    }
    (segments, length)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate;
    use crate::tech::TechRules;

    fn routed() -> (Netlist, CellLibrary, Placement, Routing) {
        let nl = generate::ripple_carry_adder(4).expect("netlist");
        let lib = CellLibrary::new(TechRules::n90()).expect("library");
        let p = Placement::place(&nl, &lib).expect("placement");
        let r = Routing::route(&nl, &p, &lib).expect("routing");
        (nl, lib, p, r)
    }

    #[test]
    fn every_net_has_a_route_entry() {
        let (nl, _, _, r) = routed();
        assert_eq!(r.routes().len(), nl.nets().len());
    }

    #[test]
    fn multi_sink_nets_route_to_every_sink() {
        let (nl, _, _, r) = routed();
        for (i, _) in nl.nets().iter().enumerate() {
            let net = NetId(i as u32);
            let sinks: usize = nl
                .sinks(net)
                .iter()
                .map(|&g| nl.gate(g).inputs.iter().filter(|&&n| n == net).count())
                .sum();
            let route = r.route_of(net).expect("route exists");
            if sinks > 0 {
                // At most 5 segments per sink (trunk, drop, via, stub, via).
                assert!(route.segments.len() <= 5 * sinks);
            } else {
                assert!(route.segments.is_empty());
            }
        }
    }

    #[test]
    fn wirelength_is_positive_and_reasonable() {
        let (_, _, p, r) = routed();
        let total = r.total_length_nm();
        assert!(total > 0.0);
        // Wirelength should not exceed a generous multiple of the die
        // semi-perimeter times the net count.
        let semi = (p.die().width() + p.die().height()) as f64;
        assert!(total < semi * r.routes().len() as f64);
    }

    #[test]
    fn segments_have_correct_layers() {
        let (_, _, _, r) = routed();
        for route in r.routes() {
            for seg in &route.segments {
                assert!(matches!(
                    seg.layer,
                    Layer::Metal1 | Layer::Metal2 | Layer::Via1
                ));
            }
        }
    }

    #[test]
    fn l_route_geometry() {
        let (segs, len) = l_route(Point::new(0, 0), Point::new(1000, 2000), 140, 120, 0);
        assert_eq!(segs.len(), 3);
        assert_eq!(len, 3000.0);
        assert_eq!(segs[0].layer, Layer::Metal2);
        assert_eq!(segs[1].layer, Layer::Metal1);
        assert_eq!(segs[2].layer, Layer::Via1);
        // Collinear sink: single segment, no via.
        let (segs, len) = l_route(Point::new(0, 0), Point::new(1000, 0), 140, 120, 0);
        assert_eq!(segs.len(), 1);
        assert_eq!(len, 1000.0);
    }

    #[test]
    fn offset_route_adds_approach_stub() {
        let (segs, len) = l_route(Point::new(0, 0), Point::new(1000, 2000), 140, 120, 240);
        // Trunk, drop, via, stub, pin via.
        assert_eq!(segs.len(), 5);
        assert!(len > 3000.0);
        // The drop sits on the offset track.
        let drop = segs
            .iter()
            .find(|s| s.layer == Layer::Metal1)
            .expect("drop");
        assert_eq!(drop.rect.center().x, 1240);
        // The stub reaches the pin.
        let stub = &segs[3];
        assert_eq!(stub.layer, Layer::Metal2);
        assert!(stub.rect.left() <= 1000 && stub.rect.right() >= 1240);
    }

    #[test]
    fn distinct_nets_use_distinct_tracks() {
        // Drops of different nets to the same pin column must not overlap.
        let nl = generate::inverter_chain(60).expect("netlist");
        let lib = CellLibrary::new(TechRules::n90()).expect("library");
        let p = Placement::place(&nl, &lib).expect("placement");
        let r = Routing::route(&nl, &p, &lib).expect("routing");
        let mut drops: Vec<(usize, Rect)> = Vec::new();
        for (i, route) in r.routes().iter().enumerate() {
            for s in &route.segments {
                if s.layer == Layer::Metal1 {
                    drops.push((i, s.rect));
                }
            }
        }
        for a in 0..drops.len() {
            for b in (a + 1)..drops.len() {
                if drops[a].0 != drops[b].0 {
                    assert!(
                        !drops[a].1.intersects(&drops[b].1),
                        "net {} and net {} drops overlap",
                        drops[a].0,
                        drops[b].0
                    );
                }
            }
        }
    }
}
