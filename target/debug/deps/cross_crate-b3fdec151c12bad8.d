/root/repo/target/debug/deps/cross_crate-b3fdec151c12bad8.d: tests/cross_crate.rs Cargo.toml

/root/repo/target/debug/deps/libcross_crate-b3fdec151c12bad8.rmeta: tests/cross_crate.rs Cargo.toml

tests/cross_crate.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
