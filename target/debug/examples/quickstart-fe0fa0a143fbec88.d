/root/repo/target/debug/examples/quickstart-fe0fa0a143fbec88.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-fe0fa0a143fbec88: examples/quickstart.rs

examples/quickstart.rs:
