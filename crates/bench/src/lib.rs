//! # postopc-bench
//!
//! The benchmark harness of the reproduction: one function per table and
//! figure of the DAC 2005 evaluation (as reconstructed in `DESIGN.md`),
//! shared between the `repro` binary and the bench targets (which use the
//! in-tree [`timing`] harness so the workspace builds offline).
//!
//! Run everything with:
//!
//! ```bash
//! cargo run --release -p postopc-bench --bin repro -- all
//! ```

#![warn(missing_docs)]

pub mod experiments;
pub mod json;
pub mod timing;

use postopc_layout::{generate, Design, PlacementOptions, TechRules};

/// Compiles the composite evaluation design (adder + multiplier + random
/// logic; see [`generate::paper_testcase`]).
///
/// # Panics
///
/// Panics if generation fails (impossible for valid seeds) — the harness
/// is a binary context where aborting is the right failure mode.
pub fn evaluation_design(seed: u64) -> Design {
    // 70% row utilization: filler gaps give gates diverse lithographic
    // contexts (dense vs semi-isolated neighbourhoods), as in real designs.
    Design::compile_with(
        generate::paper_testcase(seed).expect("testcase generates"),
        TechRules::n90(),
        &PlacementOptions {
            utilization: 0.7,
            seed,
        },
    )
    .expect("testcase compiles")
}

/// Compiles the speed-path-farm design used by the criticality-reordering
/// experiment: parallel near-identical chains in diverse placement
/// contexts (70% utilization).
///
/// # Panics
///
/// Panics if generation fails (impossible for sane sizes).
pub fn farm_design(paths: usize, depth: usize, seed: u64) -> Design {
    // 85% utilization: enough filler gaps for context diversity without
    // letting random wirelength dominate the drawn slack spread.
    Design::compile_with(
        generate::speed_path_farm(paths, depth, seed).expect("farm generates"),
        TechRules::n90(),
        &PlacementOptions {
            utilization: 0.85,
            seed,
        },
    )
    .expect("farm compiles")
}

/// Compiles a random-logic design of roughly `gates` gates.
///
/// # Panics
///
/// Panics if generation fails (impossible for sane sizes).
pub fn random_design(gates: usize, seed: u64) -> Design {
    Design::compile(
        generate::random_logic(&generate::RandomLogicSpec {
            gates,
            inputs: 16,
            depth_bias: 2.0,
            seed,
        })
        .expect("random logic generates"),
        TechRules::n90(),
    )
    .expect("random logic compiles")
}
