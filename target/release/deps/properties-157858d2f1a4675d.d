/root/repo/target/release/deps/properties-157858d2f1a4675d.d: crates/geom/tests/properties.rs Cargo.toml

/root/repo/target/release/deps/libproperties-157858d2f1a4675d.rmeta: crates/geom/tests/properties.rs Cargo.toml

crates/geom/tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
