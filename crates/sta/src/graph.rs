//! The timing graph: arrival/required propagation, slack, and speed paths.

use crate::annotate::CdAnnotation;
use crate::error::{Result, StaError};
use crate::liberty::{CellTiming, TimingLibrary, CLOCK_SLEW_PS, PRIMARY_INPUT_SLEW_PS};
use postopc_device::{Wire, WireLayerParams};
use postopc_layout::{Design, GateId, NetId};

/// A configured timing engine over a compiled design.
///
/// ```
/// use postopc_sta::TimingModel;
/// use postopc_layout::{Design, generate, TechRules};
/// use postopc_device::ProcessParams;
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let design = Design::compile(generate::ripple_carry_adder(4)?, TechRules::n90())?;
/// let model = TimingModel::new(&design, ProcessParams::n90(), 500.0)?;
/// let report = model.analyze(None)?;
/// assert!(report.critical_delay_ps() > 0.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct TimingModel<'d> {
    design: &'d Design,
    library: TimingLibrary,
    clock_ps: f64,
    wire_layer: WireLayerParams,
}

/// One timed path from a primary input to an endpoint.
#[derive(Debug, Clone, PartialEq)]
pub struct TimingPath {
    /// The endpoint (primary-output net).
    pub endpoint: NetId,
    /// Arrival time at the endpoint, in ps.
    pub arrival_ps: f64,
    /// Slack at the endpoint, in ps.
    pub slack_ps: f64,
    /// Gates along the path, launch to capture order.
    pub gates: Vec<GateId>,
}

/// The result of one timing analysis run.
#[derive(Debug, Clone, PartialEq)]
pub struct TimingReport {
    arrivals: Vec<f64>,
    requireds: Vec<f64>,
    gate_delays: Vec<f64>,
    slews: Vec<f64>,
    endpoint_slacks: Vec<(NetId, f64)>,
    clock_ps: f64,
    leakage_ua: f64,
}

impl<'d> TimingModel<'d> {
    /// Builds a timing model with the given clock period (ps).
    ///
    /// # Errors
    ///
    /// Returns [`StaError::InvalidClock`] for a non-positive clock, or a
    /// device error from characterization.
    pub fn new(
        design: &'d Design,
        process: postopc_device::ProcessParams,
        clock_ps: f64,
    ) -> Result<TimingModel<'d>> {
        if !(clock_ps.is_finite() && clock_ps > 0.0) {
            return Err(StaError::InvalidClock(clock_ps));
        }
        let library = TimingLibrary::characterize(design.library(), process)?;
        Ok(TimingModel {
            design,
            library,
            clock_ps,
            wire_layer: WireLayerParams::m1_90nm(),
        })
    }

    /// The underlying design.
    pub fn design(&self) -> &Design {
        self.design
    }

    /// The characterized timing library.
    pub fn library(&self) -> &TimingLibrary {
        &self.library
    }

    /// The clock period in ps.
    pub fn clock_ps(&self) -> f64 {
        self.clock_ps
    }

    /// The metal-1 wire parameters the model builds net RC from.
    pub(crate) fn wire_layer(&self) -> &WireLayerParams {
        &self.wire_layer
    }

    /// Compiles the annotation-invariant structure (topological order,
    /// drawn wires, drawn cell timings and transistor records) into a
    /// [`CompiledSta`] evaluator, for workloads that analyze the same
    /// design many times with different annotations — corners and Monte
    /// Carlo. Evaluation results are bit-identical to [`Self::analyze`].
    ///
    /// # Errors
    ///
    /// Propagates device errors from building the drawn wire models.
    pub fn compile(&self) -> Result<crate::compiled::CompiledSta<'_>> {
        crate::compiled::CompiledSta::new(self)
    }

    /// Runs timing with optional post-OPC CD annotation (`None` = drawn).
    ///
    /// # Errors
    ///
    /// Propagates device errors for non-physical annotated dimensions.
    pub fn analyze(&self, annotation: Option<&CdAnnotation>) -> Result<TimingReport> {
        let netlist = self.design.netlist();
        let tech = self.design.tech();
        let n_nets = netlist.nets().len();
        let n_gates = netlist.gate_count();

        // Per-gate electrical views.
        let mut timings: Vec<CellTiming> = Vec::with_capacity(n_gates);
        let mut leakage = 0.0;
        for (gi, gate) in netlist.gates().iter().enumerate() {
            let timing = match annotation.and_then(|a| a.gate(GateId(gi as u32))) {
                Some(ann) => self.library.annotated_timing(gate.kind, &ann.transistors)?,
                None => self.library.drawn_timing(gate.kind, gate.drive),
            };
            leakage += timing.leakage_ua;
            timings.push(timing);
        }

        // Per-net wires and sink loads.
        let mut sink_cap = vec![0.0f64; n_nets];
        for (gi, gate) in netlist.gates().iter().enumerate() {
            for &input in &gate.inputs {
                sink_cap[input.0 as usize] += timings[gi].input_cap_ff;
            }
        }
        let mut wires: Vec<Option<Wire>> = Vec::with_capacity(n_nets);
        for (ni, _) in netlist.nets().iter().enumerate() {
            let net = NetId(ni as u32);
            let length = self
                .design
                .routing()
                .route_of(net)
                .map(|r| r.length_nm)
                .unwrap_or(0.0);
            if length < 1.0 {
                wires.push(None);
                continue;
            }
            let drawn_width = tech.m1_width as f64;
            let spacing = tech.m1_space as f64;
            let wire =
                Wire::new(self.wire_layer, length, drawn_width, spacing).map_err(StaError::from)?;
            let wire = match annotation.and_then(|a| a.net(net)) {
                Some(net_ann) => wire
                    .with_printed_width(net_ann.printed_width_nm)
                    .map_err(StaError::from)?,
                None => wire,
            };
            wires.push(Some(wire));
        }

        // Gate delays and output slews, in topological order: each gate's
        // NLDM table is evaluated at (its worst input slew, its lumped
        // sink load), plus the Elmore excess of a routed wire over the
        // lumped `R·C` the table already charges. Registers launch their
        // Q from the clock edge (at the clock's slew) regardless of data
        // arrivals; primary inputs arrive with a nominal board-level slew.
        let mut gate_delays = vec![0.0f64; n_gates];
        let mut slews = vec![PRIMARY_INPUT_SLEW_PS; n_nets];
        for &gid in netlist.topological_order() {
            let gate = netlist.gate(gid);
            let t = &timings[gid.0 as usize];
            let slew_in = if gate.kind.is_sequential() {
                CLOCK_SLEW_PS
            } else {
                gate.inputs
                    .iter()
                    .map(|n| slews[n.0 as usize])
                    .fold(0.0, f64::max)
            };
            let out = gate.output.0 as usize;
            let c_sinks = sink_cap[out] + t.output_cap_ff;
            let table_delay = t.nldm.delay_ps(slew_in, c_sinks);
            gate_delays[gid.0 as usize] = match &wires[out] {
                Some(w) => {
                    let r = t.drive_r_kohm();
                    table_delay + (w.elmore_delay_ps(r, c_sinks) - r * c_sinks)
                }
                None => table_delay,
            };
            slews[out] = t.nldm.output_slew_ps(slew_in, c_sinks);
        }

        // Forward arrivals in topological order.
        let mut arrivals = vec![0.0f64; n_nets];
        for &gid in netlist.topological_order() {
            let gate = netlist.gate(gid);
            let worst_in = if gate.kind.is_sequential() {
                0.0 // launched by the clock edge, not by data
            } else {
                gate.inputs
                    .iter()
                    .map(|n| arrivals[n.0 as usize])
                    .fold(0.0, f64::max)
            };
            arrivals[gate.output.0 as usize] = worst_in + gate_delays[gid.0 as usize];
        }

        // Backward required times. Endpoints: primary outputs (required at
        // the clock period) and register D pins (required a setup time
        // before the next edge). Registers do not propagate requireds
        // backward through themselves.
        let mut requireds = vec![f64::INFINITY; n_nets];
        for &po in netlist.primary_outputs() {
            requireds[po.0 as usize] = self.clock_ps;
        }
        let mut endpoint_required: Vec<(NetId, f64)> = netlist
            .primary_outputs()
            .iter()
            .map(|&po| (po, self.clock_ps))
            .collect();
        for (gi, gate) in netlist.gates().iter().enumerate() {
            if let Some(seq) = &timings[gi].sequential {
                let d_net = gate.inputs[0];
                let required = self.clock_ps - seq.setup_ps;
                let r = &mut requireds[d_net.0 as usize];
                *r = r.min(required);
                endpoint_required.push((d_net, required));
            }
        }
        for &gid in netlist.topological_order().iter().rev() {
            let gate = netlist.gate(gid);
            if gate.kind.is_sequential() {
                continue;
            }
            let req_out = requireds[gate.output.0 as usize];
            if req_out.is_finite() {
                let req_in = req_out - gate_delays[gid.0 as usize];
                for &input in &gate.inputs {
                    let r = &mut requireds[input.0 as usize];
                    *r = r.min(req_in);
                }
            }
        }

        // Endpoint slacks, one entry per endpoint net (a net that is both
        // a primary output and a register D keeps its tighter requirement).
        let mut worst_by_net: std::collections::HashMap<NetId, f64> =
            std::collections::HashMap::new();
        for (net, required) in endpoint_required {
            let slack = required - arrivals[net.0 as usize];
            let entry = worst_by_net.entry(net).or_insert(f64::INFINITY);
            *entry = entry.min(slack);
        }
        let mut endpoint_slacks: Vec<(NetId, f64)> = worst_by_net.into_iter().collect();
        endpoint_slacks.sort_by(|a, b| a.1.total_cmp(&b.1).then_with(|| a.0.cmp(&b.0)));

        Ok(TimingReport {
            arrivals,
            requireds,
            gate_delays,
            slews,
            endpoint_slacks,
            clock_ps: self.clock_ps,
            leakage_ua: leakage,
        })
    }
}

impl TimingReport {
    /// Assembles a report from propagated vectors (the compiled evaluator
    /// builds reports through this; `analyze` constructs them literally).
    pub(crate) fn from_parts(
        arrivals: Vec<f64>,
        requireds: Vec<f64>,
        gate_delays: Vec<f64>,
        slews: Vec<f64>,
        endpoint_slacks: Vec<(NetId, f64)>,
        clock_ps: f64,
        leakage_ua: f64,
    ) -> TimingReport {
        TimingReport {
            arrivals,
            requireds,
            gate_delays,
            slews,
            endpoint_slacks,
            clock_ps,
            leakage_ua,
        }
    }

    /// Arrival time of a net, in ps.
    pub fn arrival_ps(&self, net: NetId) -> f64 {
        self.arrivals[net.0 as usize]
    }

    /// Required time of a net, in ps (`inf` for nets feeding no endpoint).
    pub fn required_ps(&self, net: NetId) -> f64 {
        self.requireds[net.0 as usize]
    }

    /// Slack of a net, in ps.
    pub fn slack_ps(&self, net: NetId) -> f64 {
        self.required_ps(net) - self.arrival_ps(net)
    }

    /// Delay of a gate's worst arc, in ps.
    pub fn gate_delay_ps(&self, gate: GateId) -> f64 {
        self.gate_delays[gate.0 as usize]
    }

    /// Signal transition time (slew) on a net, in ps. Driven nets carry
    /// their driver's NLDM output slew; primary-input and undriven nets
    /// carry the nominal [`PRIMARY_INPUT_SLEW_PS`].
    pub fn slew_ps(&self, net: NetId) -> f64 {
        self.slews[net.0 as usize]
    }

    /// Endpoint slacks, most critical first.
    pub fn endpoint_slacks(&self) -> &[(NetId, f64)] {
        &self.endpoint_slacks
    }

    /// The worst endpoint slack, in ps.
    pub fn worst_slack_ps(&self) -> f64 {
        self.endpoint_slacks
            .first()
            .map(|&(_, s)| s)
            .unwrap_or(f64::INFINITY)
    }

    /// The longest endpoint arrival (critical path delay), in ps.
    pub fn critical_delay_ps(&self) -> f64 {
        self.clock_ps - self.worst_slack_ps()
    }

    /// Total static leakage of the design, in µA.
    pub fn leakage_ua(&self) -> f64 {
        self.leakage_ua
    }

    /// The `k` most critical speed paths (worst path per endpoint, ranked
    /// by endpoint slack — the paper's "speed path" definition).
    pub fn top_paths(&self, design: &Design, k: usize) -> Vec<TimingPath> {
        let netlist = design.netlist();
        self.endpoint_slacks
            .iter()
            .take(k)
            .map(|&(endpoint, slack)| {
                // Trace the worst-arrival chain backward from the endpoint.
                let mut gates = Vec::new();
                let mut net = endpoint;
                while let Some(gid) = netlist.driver(net) {
                    gates.push(gid);
                    let gate = netlist.gate(gid);
                    if gate.kind.is_sequential() {
                        break; // the path launches at this register's Q
                    }
                    let next = gate
                        .inputs
                        .iter()
                        .max_by(|a, b| {
                            self.arrivals[a.0 as usize].total_cmp(&self.arrivals[b.0 as usize])
                        })
                        .copied();
                    match next {
                        Some(n) => net = n,
                        None => break,
                    }
                }
                gates.reverse();
                TimingPath {
                    endpoint,
                    arrival_ps: self.arrivals[endpoint.0 as usize],
                    slack_ps: slack,
                    gates,
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use postopc_device::ProcessParams;
    use postopc_layout::{generate, TechRules};

    fn model(design: &Design, clock: f64) -> TimingModel<'_> {
        TimingModel::new(design, ProcessParams::n90(), clock).expect("model")
    }

    fn rca_design() -> Design {
        Design::compile(
            generate::ripple_carry_adder(4).expect("netlist"),
            TechRules::n90(),
        )
        .expect("design")
    }

    #[test]
    fn rejects_bad_clock() {
        let d = rca_design();
        assert!(TimingModel::new(&d, ProcessParams::n90(), 0.0).is_err());
        assert!(TimingModel::new(&d, ProcessParams::n90(), f64::NAN).is_err());
    }

    #[test]
    fn arrivals_increase_along_carry_chain() {
        let d = rca_design();
        let report = model(&d, 1000.0).analyze(None).expect("analyze");
        // Sum outputs s0..s3 arrive progressively later (carry ripples).
        let nl = d.netlist();
        let arrival_of = |name: &str| {
            let id = nl
                .nets()
                .iter()
                .position(|n| n.name == name)
                .map(|i| NetId(i as u32))
                .expect("net exists");
            report.arrival_ps(id)
        };
        let a0 = arrival_of("fa0_s_o");
        let a3 = arrival_of("fa3_s_o");
        assert!(a3 > a0 + 10.0, "carry chain: {a0} -> {a3}");
    }

    #[test]
    fn worst_slack_matches_critical_delay() {
        let d = rca_design();
        let report = model(&d, 800.0).analyze(None).expect("analyze");
        let ws = report.worst_slack_ps();
        assert!((report.critical_delay_ps() - (800.0 - ws)).abs() < 1e-9);
        // Slack of the most critical endpoint equals worst slack.
        let (net, s) = report.endpoint_slacks()[0];
        assert_eq!(s, ws);
        assert!((report.slack_ps(net) - s).abs() < 1e-9);
    }

    #[test]
    fn paths_are_connected_chains() {
        let d = rca_design();
        let report = model(&d, 800.0).analyze(None).expect("analyze");
        let paths = report.top_paths(&d, 5);
        assert_eq!(paths.len(), 5);
        let nl = d.netlist();
        for p in &paths {
            assert!(!p.gates.is_empty());
            // Consecutive gates connected: output of gate i is an input of i+1.
            for pair in p.gates.windows(2) {
                let out = nl.gate(pair[0]).output;
                assert!(nl.gate(pair[1]).inputs.contains(&out));
            }
            // Last gate drives the endpoint.
            assert_eq!(
                nl.gate(*p.gates.last().expect("non-empty")).output,
                p.endpoint
            );
            // Path slack ordering.
            assert!(p.slack_ps >= report.worst_slack_ps() - 1e-9);
        }
    }

    #[test]
    fn annotation_changes_timing() {
        use crate::annotate::{CdAnnotation, GateAnnotation};
        let d = rca_design();
        let m = model(&d, 800.0);
        let drawn = m.analyze(None).expect("analyze");
        // Annotate every gate 5 nm short: faster, leakier.
        let mut ann = CdAnnotation::new();
        for (gi, g) in d.netlist().gates().iter().enumerate() {
            let mut records = m.library().drawn_transistors(g.kind, g.drive).to_vec();
            for r in &mut records {
                r.l_delay_nm -= 5.0;
                r.l_leakage_nm -= 5.0;
            }
            ann.set_gate(
                GateId(gi as u32),
                GateAnnotation {
                    transistors: records,
                },
            );
        }
        let fast = m.analyze(Some(&ann)).expect("analyze");
        assert!(fast.critical_delay_ps() < drawn.critical_delay_ps());
        assert!(fast.leakage_ua() > 1.3 * drawn.leakage_ua());
    }

    #[test]
    fn longer_wires_mean_more_delay() {
        // An inverter chain placed across rows accumulates wire delay; the
        // report must include finite positive delays.
        let d = Design::compile(
            generate::inverter_chain(40).expect("netlist"),
            TechRules::n90(),
        )
        .expect("design");
        let report = model(&d, 2000.0).analyze(None).expect("analyze");
        assert!(report.critical_delay_ps() > 40.0);
        assert!(report.critical_delay_ps() < 2000.0);
    }

    #[test]
    fn leakage_is_positive_and_scales_with_gates() {
        let small = Design::compile(
            generate::inverter_chain(10).expect("netlist"),
            TechRules::n90(),
        )
        .expect("design");
        let big = Design::compile(
            generate::inverter_chain(100).expect("netlist"),
            TechRules::n90(),
        )
        .expect("design");
        let l_small = model(&small, 1000.0)
            .analyze(None)
            .expect("analyze")
            .leakage_ua();
        let l_big = model(&big, 1000.0)
            .analyze(None)
            .expect("analyze")
            .leakage_ua();
        assert!(l_big > 5.0 * l_small);
    }
}
