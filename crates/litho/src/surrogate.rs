//! Learned CD surrogate: a small, dependency-free regressor that predicts
//! post-OPC critical dimensions directly from hand-built context features,
//! bypassing the OPC + aerial-imaging + measurement pipeline for windows
//! it is confident about.
//!
//! The model is ridge regression over a fixed-dimension feature vector
//! (the caller builds features from its canonical litho-context keys),
//! optionally boosted by a tiny gradient-boosted-stump ensemble fitted to
//! the ridge residuals. Training is *online*: the model accumulates the
//! Gram matrix `Xᵀ X` and moment vectors `Xᵀ y` sample by sample (exact —
//! nothing is down-weighted or forgotten), and [`SurrogateModel::refit`]
//! re-solves the regularised normal equations by Cholesky factorisation
//! whenever the caller wants fresh coefficients. Everything is plain
//! `f64` arithmetic in a deterministic order, so two runs that absorb the
//! same samples in the same order produce bit-identical models and
//! predictions at any thread count.
//!
//! # Confidence gate
//!
//! Predictions are only trustworthy *in distribution*. The model exposes
//! a leverage score — `n · xᵀ (Xᵀ X + λI)⁻¹ x`, the classical hat-matrix
//! diagonal rescaled so a typical in-distribution point scores near the
//! feature dimension `d` regardless of how many samples have been
//! absorbed — and callers gate on it: a window whose features land far
//! from the training cloud scores orders of magnitude higher and must
//! take the real SOCS simulation path instead. See `DESIGN.md` ("Learned
//! CD surrogate") for the gate-threshold calibration.
//!
//! # Persistence
//!
//! [`SurrogateModel::encode_into`] / [`SurrogateModel::decode_from`]
//! round-trip the *training state* (Gram, moments, retained samples) in
//! canonical little-endian bytes with every float as its exact bit
//! pattern; fitted coefficients are derived state and are re-solved after
//! decoding. [`SurrogateModel::to_file_bytes`] wraps the encoding in a
//! standalone `POCSURR1` container (magic + version + checksum) for the
//! offline `surrogate_train` artifact.

use crate::error::{LithoError, Result};

/// Magic bytes identifying a persisted surrogate-model file.
pub const SURROGATE_MAGIC: [u8; 8] = *b"POCSURR1";

/// Current surrogate file-format version; readers reject any other.
pub const SURROGATE_FILE_VERSION: u32 = 1;

/// Number of regression targets: delay-equivalent and leakage-equivalent
/// CD deltas, in that order.
pub const SURROGATE_TARGETS: usize = 2;

/// Retained-sample cap for the stump-boost stage. Gram/moment
/// accumulation is exact beyond the cap; only the nonlinear boost stops
/// seeing new samples (deterministically: the first `MAX_RETAINED` in
/// absorption order are kept).
const MAX_RETAINED: usize = 4096;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv1a(seed: u64, bytes: &[u8]) -> u64 {
    let mut h = seed;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

fn surrogate_err(reason: impl Into<String>) -> LithoError {
    LithoError::Surrogate(reason.into())
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_f64(out: &mut Vec<u8>, v: f64) {
    put_u64(out, v.to_bits());
}

fn take_u64(bytes: &[u8], cursor: &mut usize) -> Result<u64> {
    let end = cursor
        .checked_add(8)
        .filter(|&e| e <= bytes.len())
        .ok_or_else(|| surrogate_err("truncated integer field"))?;
    let mut raw = [0u8; 8];
    raw.copy_from_slice(&bytes[*cursor..end]);
    *cursor = end;
    Ok(u64::from_le_bytes(raw))
}

fn take_f64(bytes: &[u8], cursor: &mut usize) -> Result<f64> {
    Ok(f64::from_bits(take_u64(bytes, cursor)?))
}

/// One depth-1 regression tree of the boost ensemble: route on a single
/// feature threshold, emit a constant per side (already scaled by the
/// learning rate).
#[derive(Debug, Clone, PartialEq)]
struct Stump {
    feature: usize,
    threshold: f64,
    left: f64,
    right: f64,
}

impl Stump {
    fn response(&self, x: &[f64]) -> f64 {
        if x[self.feature] <= self.threshold {
            self.left
        } else {
            self.right
        }
    }
}

/// Online ridge regressor with a leverage-score confidence gate and an
/// optional stump-boost stage. See the module docs for the math and the
/// determinism contract.
#[derive(Debug, Clone, PartialEq)]
pub struct SurrogateModel {
    dim: usize,
    lambda: f64,
    boost_rounds: usize,
    /// Samples absorbed (all of them contribute to Gram/moments).
    count: u64,
    /// `Xᵀ X`, row-major `dim × dim`.
    gram: Vec<f64>,
    /// `Xᵀ y` per target, `SURROGATE_TARGETS × dim`.
    moments: Vec<Vec<f64>>,
    /// Retained training samples for the boost stage (first
    /// [`MAX_RETAINED`] in absorption order).
    samples_x: Vec<Vec<f64>>,
    samples_y: Vec<[f64; SURROGATE_TARGETS]>,
    // ---- derived (re-solved by `refit`, not persisted) ----
    fitted: bool,
    fitted_count: u64,
    weights: Vec<Vec<f64>>,
    inverse: Vec<f64>,
    stumps: Vec<Vec<Stump>>,
}

impl SurrogateModel {
    /// A fresh, untrained model over `dim`-dimensional features.
    ///
    /// `lambda` is the ridge regulariser (also what keeps the leverage
    /// matrix invertible before any data arrives); `boost_rounds` is the
    /// number of stumps per target fitted to the ridge residuals at each
    /// refit (`0` disables the boost stage).
    pub fn new(dim: usize, lambda: f64, boost_rounds: usize) -> SurrogateModel {
        SurrogateModel {
            dim,
            lambda: lambda.max(1e-12),
            boost_rounds,
            count: 0,
            gram: vec![0.0; dim * dim],
            moments: vec![vec![0.0; dim]; SURROGATE_TARGETS],
            samples_x: Vec::new(),
            samples_y: Vec::new(),
            fitted: false,
            fitted_count: 0,
            weights: vec![vec![0.0; dim]; SURROGATE_TARGETS],
            inverse: vec![0.0; dim * dim],
            stumps: vec![Vec::new(); SURROGATE_TARGETS],
        }
    }

    /// Feature dimension this model was built for.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of samples absorbed so far.
    pub fn len(&self) -> u64 {
        self.count
    }

    /// Whether the model has absorbed no samples yet.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Whether [`Self::refit`] has solved coefficients covering every
    /// absorbed sample (predictions and scores require this).
    pub fn is_fitted(&self) -> bool {
        self.fitted && self.fitted_count == self.count
    }

    /// Absorbs one training sample: feature vector `x` (length
    /// [`Self::dim`]) and its [`SURROGATE_TARGETS`] regression targets.
    /// Accumulation is exact and order-dependent — callers must absorb in
    /// a deterministic order for bit-identical models.
    ///
    /// # Errors
    ///
    /// [`LithoError::Surrogate`] on a dimension mismatch or a non-finite
    /// feature/target (a poisoned Gram matrix would silently corrupt
    /// every later prediction).
    pub fn absorb(&mut self, x: &[f64], y: [f64; SURROGATE_TARGETS]) -> Result<()> {
        if x.len() != self.dim {
            return Err(surrogate_err(format!(
                "feature dimension mismatch: model {}, sample {}",
                self.dim,
                x.len()
            )));
        }
        if x.iter().any(|v| !v.is_finite()) || y.iter().any(|v| !v.is_finite()) {
            return Err(surrogate_err("non-finite feature or target"));
        }
        for (i, &xi) in x.iter().enumerate() {
            for (j, &xj) in x.iter().enumerate() {
                self.gram[i * self.dim + j] += xi * xj;
            }
            for (t, moment) in self.moments.iter_mut().enumerate() {
                moment[i] += xi * y[t];
            }
        }
        if self.samples_x.len() < MAX_RETAINED {
            self.samples_x.push(x.to_vec());
            self.samples_y.push(y);
        }
        self.count += 1;
        self.fitted = false;
        Ok(())
    }

    /// Re-solves the ridge coefficients (and refits the boost ensemble)
    /// from the accumulated state. Cheap — one `dim × dim` Cholesky plus
    /// `boost_rounds` passes over the retained samples — so callers refit
    /// at every training-round boundary.
    ///
    /// # Errors
    ///
    /// [`LithoError::Surrogate`] if the regularised Gram matrix is not
    /// numerically positive definite (cannot happen for finite features
    /// and `lambda > 0` short of overflow); the model is left unfitted.
    pub fn refit(&mut self) -> Result<()> {
        self.fitted = false;
        let d = self.dim;
        let mut a = self.gram.clone();
        for i in 0..d {
            a[i * d + i] += self.lambda;
        }
        let chol = cholesky(&a, d).ok_or_else(|| {
            surrogate_err("regularised Gram matrix is not positive definite (overflow?)")
        })?;
        // Inverse via d solves against the unit basis — the leverage
        // score needs the full inverse, not just the weights.
        let mut inverse = vec![0.0; d * d];
        let mut basis = vec![0.0; d];
        for j in 0..d {
            basis.iter_mut().for_each(|v| *v = 0.0);
            basis[j] = 1.0;
            let col = chol_solve(&chol, d, &basis);
            for i in 0..d {
                inverse[i * d + j] = col[i];
            }
        }
        for (t, moment) in self.moments.iter().enumerate() {
            self.weights[t] = chol_solve(&chol, d, moment);
        }
        self.inverse = inverse;
        // Boost stage: stumps on the ridge residuals of the retained
        // samples, greedily, one feature split per round.
        for t in 0..SURROGATE_TARGETS {
            self.stumps[t].clear();
            if self.boost_rounds == 0 || self.samples_x.len() < 8 {
                continue;
            }
            let mut residuals: Vec<f64> = self
                .samples_x
                .iter()
                .zip(&self.samples_y)
                .map(|(x, y)| y[t] - dot(&self.weights[t], x))
                .collect();
            for _ in 0..self.boost_rounds {
                let Some(stump) = best_stump(&self.samples_x, &residuals, d) else {
                    break;
                };
                for (r, x) in residuals.iter_mut().zip(&self.samples_x) {
                    *r -= stump.response(x);
                }
                self.stumps[t].push(stump);
            }
        }
        self.fitted = true;
        self.fitted_count = self.count;
        Ok(())
    }

    /// Leverage score of a feature vector against the fitted model:
    /// `n · xᵀ (Xᵀ X + λI)⁻¹ x`. In-distribution points score near the
    /// feature dimension; far-from-training points score orders of
    /// magnitude higher. Returns `None` until [`Self::refit`] has run
    /// over every absorbed sample.
    pub fn score(&self, x: &[f64]) -> Option<f64> {
        if !self.is_fitted() || x.len() != self.dim {
            return None;
        }
        let d = self.dim;
        let mut quad = 0.0;
        for (i, xi) in x.iter().enumerate() {
            let row: f64 = self.inverse[i * d..(i + 1) * d]
                .iter()
                .zip(x)
                .map(|(inv, xj)| inv * xj)
                .sum();
            quad += xi * row;
        }
        Some(self.count as f64 * quad)
    }

    /// Predicts the [`SURROGATE_TARGETS`] regression targets for `x`
    /// (ridge term plus the boost ensemble). Returns `None` until
    /// [`Self::refit`] has run over every absorbed sample.
    pub fn predict(&self, x: &[f64]) -> Option<[f64; SURROGATE_TARGETS]> {
        if !self.is_fitted() || x.len() != self.dim {
            return None;
        }
        let mut out = [0.0; SURROGATE_TARGETS];
        for (t, slot) in out.iter_mut().enumerate() {
            let mut y = dot(&self.weights[t], x);
            for stump in &self.stumps[t] {
                y += stump.response(x);
            }
            *slot = y;
        }
        Some(out)
    }

    /// Serialises the training state (not the derived fit) as canonical
    /// little-endian bytes: equal training histories produce equal bytes.
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        put_u64(out, self.dim as u64);
        put_f64(out, self.lambda);
        put_u64(out, self.boost_rounds as u64);
        put_u64(out, self.count);
        for &g in &self.gram {
            put_f64(out, g);
        }
        for moment in &self.moments {
            for &m in moment {
                put_f64(out, m);
            }
        }
        put_u64(out, self.samples_x.len() as u64);
        for (x, y) in self.samples_x.iter().zip(&self.samples_y) {
            for &v in x {
                put_f64(out, v);
            }
            for &v in y {
                put_f64(out, v);
            }
        }
    }

    /// Decodes a model previously written by [`Self::encode_into`]. The
    /// result is unfitted; call [`Self::refit`] before predicting.
    ///
    /// # Errors
    ///
    /// [`LithoError::Surrogate`] on truncation or an out-of-range
    /// dimension/sample count — never a panic.
    pub fn decode_from(bytes: &[u8], cursor: &mut usize) -> Result<SurrogateModel> {
        let dim = take_u64(bytes, cursor)? as usize;
        if dim == 0 || dim > 1 << 12 {
            return Err(surrogate_err("stored feature dimension out of range"));
        }
        let lambda = take_f64(bytes, cursor)?;
        let boost_rounds = take_u64(bytes, cursor)? as usize;
        if boost_rounds > 1 << 16 {
            return Err(surrogate_err("stored boost rounds out of range"));
        }
        let count = take_u64(bytes, cursor)?;
        let mut model = SurrogateModel::new(dim, lambda, boost_rounds);
        model.count = count;
        for g in model.gram.iter_mut() {
            *g = take_f64(bytes, cursor)?;
        }
        for moment in model.moments.iter_mut() {
            for m in moment.iter_mut() {
                *m = take_f64(bytes, cursor)?;
            }
        }
        let retained = take_u64(bytes, cursor)? as usize;
        if retained > MAX_RETAINED {
            return Err(surrogate_err("stored sample count out of range"));
        }
        for _ in 0..retained {
            let mut x = vec![0.0; dim];
            for v in x.iter_mut() {
                *v = take_f64(bytes, cursor)?;
            }
            let mut y = [0.0; SURROGATE_TARGETS];
            for v in y.iter_mut() {
                *v = take_f64(bytes, cursor)?;
            }
            model.samples_x.push(x);
            model.samples_y.push(y);
        }
        Ok(model)
    }

    /// FNV-1a hash of the canonical encoding — the model fingerprint
    /// consumers mix into artifact invalidation keys.
    pub fn fingerprint(&self) -> u64 {
        let mut bytes = Vec::new();
        self.encode_into(&mut bytes);
        fnv1a(FNV_OFFSET, &bytes)
    }

    /// Wraps the canonical encoding in the standalone `POCSURR1` file
    /// container: magic, version, payload, trailing FNV-1a checksum.
    pub fn to_file_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(&SURROGATE_MAGIC);
        out.extend_from_slice(&SURROGATE_FILE_VERSION.to_le_bytes());
        self.encode_into(&mut out);
        let checksum = fnv1a(FNV_OFFSET, &out);
        put_u64(&mut out, checksum);
        out
    }

    /// Parses a `POCSURR1` file written by [`Self::to_file_bytes`]. The
    /// result is unfitted; call [`Self::refit`] before predicting.
    ///
    /// # Errors
    ///
    /// [`LithoError::Surrogate`] on bad magic, unsupported version,
    /// checksum mismatch, truncation or trailing bytes.
    pub fn from_file_bytes(bytes: &[u8]) -> Result<SurrogateModel> {
        let header = SURROGATE_MAGIC.len() + 4;
        if bytes.len() < header + 8 {
            return Err(surrogate_err("too short to hold a header and checksum"));
        }
        if bytes[..SURROGATE_MAGIC.len()] != SURROGATE_MAGIC {
            return Err(surrogate_err("bad magic: not a surrogate model file"));
        }
        let mut cursor = SURROGATE_MAGIC.len();
        let mut ver = [0u8; 4];
        ver.copy_from_slice(&bytes[cursor..cursor + 4]);
        let version = u32::from_le_bytes(ver);
        if version != SURROGATE_FILE_VERSION {
            return Err(surrogate_err(format!(
                "unsupported version {version} (expected {SURROGATE_FILE_VERSION})"
            )));
        }
        cursor += 4;
        let body = &bytes[..bytes.len() - 8];
        let mut tail = bytes.len() - 8;
        let stored = take_u64(bytes, &mut tail)?;
        if fnv1a(FNV_OFFSET, body) != stored {
            return Err(surrogate_err("checksum mismatch: model file is corrupt"));
        }
        let model = SurrogateModel::decode_from(body, &mut cursor)?;
        if cursor != body.len() {
            return Err(surrogate_err("trailing bytes after the model payload"));
        }
        Ok(model)
    }
}

fn dot(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Cholesky factorisation of a symmetric positive-definite row-major
/// `d × d` matrix: returns the lower factor `L` (row-major), or `None`
/// if a pivot is not strictly positive.
fn cholesky(a: &[f64], d: usize) -> Option<Vec<f64>> {
    let mut l = vec![0.0; d * d];
    for i in 0..d {
        for j in 0..=i {
            let mut sum = a[i * d + j];
            for k in 0..j {
                sum -= l[i * d + k] * l[j * d + k];
            }
            if i == j {
                if !(sum.is_finite() && sum > 0.0) {
                    return None;
                }
                l[i * d + i] = sum.sqrt();
            } else {
                l[i * d + j] = sum / l[j * d + j];
            }
        }
    }
    Some(l)
}

/// Solves `L Lᵀ x = b` by forward + back substitution.
fn chol_solve(l: &[f64], d: usize, b: &[f64]) -> Vec<f64> {
    let mut y = vec![0.0; d];
    for i in 0..d {
        let mut sum = b[i];
        for k in 0..i {
            sum -= l[i * d + k] * y[k];
        }
        y[i] = sum / l[i * d + i];
    }
    let mut x = vec![0.0; d];
    for i in (0..d).rev() {
        let mut sum = y[i];
        for k in i + 1..d {
            sum -= l[k * d + i] * x[k];
        }
        x[i] = sum / l[i * d + i];
    }
    x
}

/// Learning rate of the boost stage.
const BOOST_SHRINKAGE: f64 = 0.5;

/// Candidate thresholds per feature when growing a stump.
const STUMP_CANDIDATES: usize = 16;

/// The depth-1 split minimising residual SSE over all features and a
/// quantile grid of candidate thresholds. Ties break toward the lowest
/// feature index, then the lowest threshold — fully deterministic.
fn best_stump(xs: &[Vec<f64>], residuals: &[f64], dim: usize) -> Option<Stump> {
    let n = xs.len();
    let total: f64 = residuals.iter().sum();
    let mut best: Option<(f64, Stump)> = None;
    let mut order: Vec<usize> = (0..n).collect();
    // `feature` indexes the inner per-sample vectors, not `xs` itself —
    // an enumerate over `xs` (length n, not dim) would be wrong.
    #[allow(clippy::needless_range_loop)]
    for feature in 0..dim {
        order.sort_by(|&a, &b| xs[a][feature].total_cmp(&xs[b][feature]));
        // Quantile candidate thresholds (midpoints between neighbouring
        // distinct values at evenly spaced ranks).
        for c in 1..=STUMP_CANDIDATES {
            let rank = c * n / (STUMP_CANDIDATES + 1);
            if rank == 0 || rank >= n {
                continue;
            }
            let lo = xs[order[rank - 1]][feature];
            let hi = xs[order[rank]][feature];
            if lo == hi {
                continue;
            }
            let threshold = 0.5 * (lo + hi);
            let mut left_sum = 0.0;
            let mut left_n = 0usize;
            for &i in &order[..rank] {
                left_sum += residuals[i];
                left_n += 1;
            }
            let right_sum = total - left_sum;
            let right_n = n - left_n;
            if left_n == 0 || right_n == 0 {
                continue;
            }
            // SSE reduction of the two-mean fit.
            let gain = left_sum * left_sum / left_n as f64 + right_sum * right_sum / right_n as f64;
            let better = match &best {
                None => true,
                Some((g, _)) => gain > *g + 1e-12,
            };
            if better {
                best = Some((
                    gain,
                    Stump {
                        feature,
                        threshold,
                        left: BOOST_SHRINKAGE * left_sum / left_n as f64,
                        right: BOOST_SHRINKAGE * right_sum / right_n as f64,
                    },
                ));
            }
        }
    }
    best.map(|(_, s)| s)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Tiny deterministic pseudo-random stream for test fixtures.
    struct TestRng(u64);
    impl TestRng {
        fn next_f64(&mut self) -> f64 {
            // SplitMix64 step, mapped to [0, 1).
            self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z = z ^ (z >> 31);
            (z >> 11) as f64 / (1u64 << 53) as f64
        }
    }

    fn linear_fixture(n: usize, seed: u64) -> (Vec<Vec<f64>>, Vec<[f64; 2]>) {
        let mut rng = TestRng(seed);
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for _ in 0..n {
            let a = rng.next_f64() * 2.0 - 1.0;
            let b = rng.next_f64() * 2.0 - 1.0;
            let x = vec![1.0, a, b];
            ys.push([3.0 + 2.0 * a - b, -1.0 + 0.5 * a + 4.0 * b]);
            xs.push(x);
        }
        (xs, ys)
    }

    #[test]
    fn ridge_recovers_a_linear_function() {
        let (xs, ys) = linear_fixture(200, 7);
        let mut model = SurrogateModel::new(3, 1e-6, 0);
        for (x, y) in xs.iter().zip(&ys) {
            model.absorb(x, *y).expect("absorb");
        }
        model.refit().expect("refit");
        for (x, y) in xs.iter().zip(&ys) {
            let p = model.predict(x).expect("fitted");
            assert!((p[0] - y[0]).abs() < 1e-4, "{p:?} vs {y:?}");
            assert!((p[1] - y[1]).abs() < 1e-4, "{p:?} vs {y:?}");
        }
    }

    #[test]
    fn leverage_gate_separates_out_of_distribution_points() {
        let (xs, ys) = linear_fixture(300, 11);
        let mut model = SurrogateModel::new(3, 1e-3, 0);
        for (x, y) in xs.iter().zip(&ys) {
            model.absorb(x, *y).expect("absorb");
        }
        model.refit().expect("refit");
        // In-distribution points score near the feature dimension.
        let in_dist = model.score(&xs[17]).expect("fitted");
        assert!(in_dist < 30.0, "in-distribution score {in_dist}");
        // A far-away point scores orders of magnitude higher.
        let ood = model.score(&[1.0, 50.0, -80.0]).expect("fitted");
        assert!(ood > 1000.0, "out-of-distribution score {ood}");
        assert!(ood > in_dist * 100.0);
    }

    #[test]
    fn boost_stage_reduces_nonlinear_residuals() {
        let mut rng = TestRng(23);
        let mut plain = SurrogateModel::new(2, 1e-6, 0);
        let mut boosted = SurrogateModel::new(2, 1e-6, 32);
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for _ in 0..400 {
            let a = rng.next_f64() * 2.0 - 1.0;
            let x = vec![1.0, a];
            let y = [a.abs() + 0.2 * a, 0.0]; // nonlinear in `a`
            plain.absorb(&x, y).expect("absorb");
            boosted.absorb(&x, y).expect("absorb");
            xs.push(x);
            ys.push(y);
        }
        plain.refit().expect("refit");
        boosted.refit().expect("refit");
        let sse = |m: &SurrogateModel| -> f64 {
            xs.iter()
                .zip(&ys)
                .map(|(x, y)| {
                    let p = m.predict(x).expect("fitted");
                    (p[0] - y[0]).powi(2)
                })
                .sum()
        };
        let (p, b) = (sse(&plain), sse(&boosted));
        assert!(b < p * 0.5, "boost must cut nonlinear SSE: {b} vs {p}");
    }

    #[test]
    fn encode_decode_round_trips_and_refits_identically() {
        let (xs, ys) = linear_fixture(150, 3);
        let mut model = SurrogateModel::new(3, 1e-4, 8);
        for (x, y) in xs.iter().zip(&ys) {
            model.absorb(x, *y).expect("absorb");
        }
        model.refit().expect("refit");
        let mut bytes = Vec::new();
        model.encode_into(&mut bytes);
        // Canonical: same history, same bytes.
        let mut again = Vec::new();
        model.encode_into(&mut again);
        assert_eq!(bytes, again);
        let mut cursor = 0;
        let mut decoded = SurrogateModel::decode_from(&bytes, &mut cursor).expect("decode");
        assert_eq!(cursor, bytes.len());
        assert!(!decoded.is_fitted());
        decoded.refit().expect("refit");
        for x in &xs {
            assert_eq!(model.predict(x), decoded.predict(x), "bit-identical refit");
            assert_eq!(model.score(x), decoded.score(x));
        }
        assert_eq!(model.fingerprint(), decoded.fingerprint());
    }

    #[test]
    fn file_container_validates_magic_version_checksum() {
        let (xs, ys) = linear_fixture(40, 5);
        let mut model = SurrogateModel::new(3, 1e-4, 4);
        for (x, y) in xs.iter().zip(&ys) {
            model.absorb(x, *y).expect("absorb");
        }
        let bytes = model.to_file_bytes();
        let loaded = SurrogateModel::from_file_bytes(&bytes).expect("load");
        assert_eq!(loaded.len(), model.len());
        assert_eq!(loaded.fingerprint(), model.fingerprint());
        // Bad magic.
        let mut bad = bytes.clone();
        bad[0] ^= 0xff;
        assert!(SurrogateModel::from_file_bytes(&bad).is_err());
        // Bad version.
        let mut bad = bytes.clone();
        bad[8] = 0xfe;
        let err = SurrogateModel::from_file_bytes(&bad).expect_err("version");
        assert!(err.to_string().contains("version"));
        // Flipped payload byte.
        let mut bad = bytes.clone();
        let mid = bytes.len() / 2;
        bad[mid] ^= 0x01;
        let err = SurrogateModel::from_file_bytes(&bad).expect_err("corrupt");
        assert!(err.to_string().contains("checksum"));
        // Truncations never panic.
        for cut in [0, 7, 11, 20, bytes.len() / 2, bytes.len() - 1] {
            assert!(SurrogateModel::from_file_bytes(&bytes[..cut]).is_err());
        }
    }

    #[test]
    fn unfitted_and_stale_models_refuse_to_predict() {
        let mut model = SurrogateModel::new(2, 1e-3, 0);
        assert!(model.predict(&[1.0, 0.0]).is_none());
        assert!(model.score(&[1.0, 0.0]).is_none());
        model.absorb(&[1.0, 0.5], [1.0, 2.0]).expect("absorb");
        model.refit().expect("refit");
        assert!(model.predict(&[1.0, 0.0]).is_some());
        // Absorbing invalidates the fit until the next refit.
        model.absorb(&[1.0, -0.5], [0.5, 1.0]).expect("absorb");
        assert!(!model.is_fitted());
        assert!(model.predict(&[1.0, 0.0]).is_none());
        // Dimension mismatches are typed errors.
        assert!(model.absorb(&[1.0], [0.0, 0.0]).is_err());
        assert!(model.absorb(&[1.0, f64::NAN], [0.0, 0.0]).is_err());
    }
}
