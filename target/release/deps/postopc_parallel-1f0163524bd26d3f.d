/root/repo/target/release/deps/postopc_parallel-1f0163524bd26d3f.d: crates/parallel/src/lib.rs Cargo.toml

/root/repo/target/release/deps/libpostopc_parallel-1f0163524bd26d3f.rmeta: crates/parallel/src/lib.rs Cargo.toml

crates/parallel/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
