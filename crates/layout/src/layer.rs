//! Mask layers of the simplified 90 nm-class process stack.

use std::fmt;

/// A drawn mask layer.
///
/// The reproduction models the layers the DAC 2005 flow touches: poly (the
/// critical gate layer), active (to locate channels), contacts, and two
/// routing metals (for the multi-layer extraction extension).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Layer {
    /// N-well (PMOS body region).
    Nwell,
    /// Diffusion / active area.
    Active,
    /// Polysilicon gate layer — the critical layer for timing.
    Poly,
    /// Contact cuts between active/poly and metal-1.
    Contact,
    /// First routing metal.
    Metal1,
    /// Via cuts between metal-1 and metal-2.
    Via1,
    /// Second routing metal.
    Metal2,
}

impl Layer {
    /// All layers, in process order.
    pub const ALL: [Layer; 7] = [
        Layer::Nwell,
        Layer::Active,
        Layer::Poly,
        Layer::Contact,
        Layer::Metal1,
        Layer::Via1,
        Layer::Metal2,
    ];

    /// Whether the layer is printed with critical (gate-level) lithography
    /// and therefore simulated through the OPC flow.
    pub fn is_critical(self) -> bool {
        matches!(self, Layer::Poly | Layer::Metal1)
    }
}

impl fmt::Display for Layer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Layer::Nwell => "nwell",
            Layer::Active => "active",
            Layer::Poly => "poly",
            Layer::Contact => "contact",
            Layer::Metal1 => "metal1",
            Layer::Via1 => "via1",
            Layer::Metal2 => "metal2",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn critical_layers() {
        assert!(Layer::Poly.is_critical());
        assert!(Layer::Metal1.is_critical());
        assert!(!Layer::Nwell.is_critical());
        assert!(!Layer::Via1.is_critical());
    }

    #[test]
    fn all_layers_distinct() {
        let set: std::collections::HashSet<Layer> = Layer::ALL.into_iter().collect();
        assert_eq!(set.len(), Layer::ALL.len());
    }

    #[test]
    fn display_names() {
        assert_eq!(Layer::Poly.to_string(), "poly");
        assert_eq!(Layer::Metal2.to_string(), "metal2");
    }
}
