#!/usr/bin/env bash
# Offline CI gate: formatting, lints, tier-1 build + tests, workspace
# tests, perf smoke parity (across a thread matrix) and the
# bench-regression gate against the committed BENCH_*.json artifacts.
#
# Everything here runs with no network access; the workspace has no
# external dependencies (see DESIGN.md "Dependencies").
#
# Usage:
#   scripts/check.sh            full gate (every stage below)
#   scripts/check.sh --quick    inner loop: fmt + clippy + tier-1 only
#
# Stages (each prints its own wall time):
#   fmt       cargo fmt --check
#   clippy    cargo clippy --workspace --all-targets -- -D warnings
#   strict    library clippy with unwrap()/expect() denied outside tests
#   build     tier-1: cargo build --release
#   test      tier-1: cargo test -q
#   wstest    cargo test --workspace -q
#   smoke     perf_smoke parity gates (ambient thread count)
#   threads   perf_smoke parity gates under POSTOPC_THREADS=1,2,4
#   faults    fault_smoke: seeded injection, quarantine determinism gates
#   mc_batch  mc_batch_smoke: batched-engine parity, warm shared shift
#             cache, variance-reduction convergence gates
#   serve     serve_smoke: cold-vs-warm artifact bit parity, typed bad-
#             artifact errors, incremental-vs-full ECO bit parity, and
#             the warm-query speedup floor
#   surrogate surrogate_train + surrogate_smoke: learned-CD-surrogate
#             parity vs SOCS, serial-vs-pool bit identity, 100% fallback
#             on an out-of-distribution layout, the speedup floor, and
#             the POCSURR1 model-file round trip
#   bench     perf_smoke --bench-regression vs committed BENCH_*.json
#             (extract floors now include the surrogate row), then
#             serve_smoke --bench-regression vs BENCH_serve.json
set -euo pipefail
cd "$(dirname "$0")/.."

QUICK=0
for arg in "$@"; do
  case "$arg" in
    --quick) QUICK=1 ;;
    *)
      echo "check.sh: unknown argument '$arg' (expected --quick)" >&2
      exit 2
      ;;
  esac
done

# Runs one named stage, timing it. Any command failure aborts the script
# (set -e), so a stage that prints its wall time has passed.
stage() {
  local name="$1"
  shift
  echo "== stage $name: $*"
  local t0=$SECONDS
  "$@"
  echo "== stage $name passed in $((SECONDS - t0)) s"
}

stage fmt cargo fmt --check
stage clippy cargo clippy --workspace --all-targets -- -D warnings
# Library code (bench harness and #[cfg(test)] excluded) must route every
# fallible path through typed errors: unwrap()/expect() are deny-by-default
# and each surviving call carries a scoped #[allow] naming its invariant.
stage strict cargo clippy --workspace --exclude postopc-bench --lib -- \
  -D warnings -D clippy::unwrap_used -D clippy::expect_used
stage build cargo build --release
stage test cargo test -q

if [[ "$QUICK" -eq 1 ]]; then
  echo "check.sh: quick gates passed (fmt, clippy, tier-1 build + tests)"
  exit 0
fi

stage wstest cargo test --workspace -q
stage smoke cargo run --release -p postopc-bench --bin perf_smoke

# Thread matrix: the parity gates re-run with the worker pool pinned to
# 1, 2 and 4 threads, so par_map_costed / par_map_init determinism is
# exercised off the single-thread fallback path too.
thread_matrix() {
  local t
  for t in 1 2 4; do
    echo "-- POSTOPC_THREADS=$t"
    POSTOPC_THREADS="$t" cargo run --release -p postopc-bench --bin perf_smoke
  done
}
stage threads thread_matrix

# Fault-injection smoke: a seeded injector over the repro design must
# complete under quarantine, report exact counts, stay bit-identical
# across the thread matrix, and trip the budget past the cap.
stage faults cargo run --release -p postopc-bench --bin fault_smoke

# Batched Monte Carlo smoke: cross-engine bit-parity over sampling
# schemes and lane remainders, warm shared-cache effectiveness, and the
# variance-reduction convergence gate (antithetic/stratified @500 vs
# plain @2000 on the mean worst slack).
stage mc_batch cargo run --release -p postopc-bench --bin mc_batch_smoke

# Warm-service smoke: persisted-artifact round trips (cold == warm, bit
# for bit; corrupt/truncated/stale artifacts come back as typed errors),
# incremental ECO re-analysis parity against a from-scratch run, and the
# 10x warm-query speedup floor on the T6/T9 workloads.
stage serve cargo run --release -p postopc-bench --bin serve_smoke

# Learned-CD-surrogate smoke: offline training via surrogate_train (the
# POCSURR1 file write), then surrogate_smoke's gates — in-distribution
# parity vs SOCS, serial-vs-pool bit identity, 100% fallback on an out-
# of-distribution layout, the wall-time speedup floor, and the trained
# model loading back in as a warm seed.
surrogate_stage() {
  cargo run --release -p postopc-bench --bin surrogate_train -- \
    --out target/surrogate_ci.bin
  cargo run --release -p postopc-bench --bin surrogate_smoke -- \
    --model target/surrogate_ci.bin
}
stage surrogate surrogate_stage

stage bench cargo run --release -p postopc-bench --bin perf_smoke -- --bench-regression
stage bench_serve cargo run --release -p postopc-bench --bin serve_smoke -- --bench-regression

echo "check.sh: all gates passed"
