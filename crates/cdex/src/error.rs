//! Error types for critical-dimension extraction.

use std::error::Error;
use std::fmt;

/// Errors produced by CD extraction.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum CdexError {
    /// Lithography measurement failed (feature missing at a cutline).
    Litho(postopc_litho::LithoError),
    /// Device-model reduction failed.
    Device(postopc_device::DeviceError),
    /// An extraction parameter was out of range.
    InvalidConfig {
        /// Parameter name.
        name: &'static str,
        /// The rejected value.
        value: f64,
    },
    /// The gate channel printed nowhere along any slice — a catastrophic
    /// pinch that would be a manufacturing kill, not a timing shift.
    GateMissing {
        /// Channel center x in nm.
        x_nm: f64,
        /// Channel center y in nm.
        y_nm: f64,
    },
}

impl fmt::Display for CdexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CdexError::Litho(e) => write!(f, "lithography error: {e}"),
            CdexError::Device(e) => write!(f, "device model error: {e}"),
            CdexError::InvalidConfig { name, value } => {
                write!(f, "invalid extraction parameter {name} = {value}")
            }
            CdexError::GateMissing { x_nm, y_nm } => {
                write!(f, "gate channel failed to print near ({x_nm}, {y_nm})")
            }
        }
    }
}

impl Error for CdexError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CdexError::Litho(e) => Some(e),
            CdexError::Device(e) => Some(e),
            _ => None,
        }
    }
}

impl From<postopc_litho::LithoError> for CdexError {
    fn from(e: postopc_litho::LithoError) -> Self {
        CdexError::Litho(e)
    }
}

impl From<postopc_device::DeviceError> for CdexError {
    fn from(e: postopc_device::DeviceError) -> Self {
        CdexError::Device(e)
    }
}

/// Convenience result alias for the cdex crate.
pub type Result<T> = std::result::Result<T, CdexError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = CdexError::GateMissing {
            x_nm: 1.0,
            y_nm: 2.0,
        };
        assert!(e.to_string().contains("(1, 2)"));
        let l = CdexError::from(postopc_litho::LithoError::NoContourCrossing {
            x_nm: 0.0,
            y_nm: 0.0,
        });
        assert!(l.source().is_some());
    }
}
