/root/repo/target/release/deps/opc_convergence-4ae88829bc94a091.d: crates/bench/benches/opc_convergence.rs

/root/repo/target/release/deps/opc_convergence-4ae88829bc94a091: crates/bench/benches/opc_convergence.rs

crates/bench/benches/opc_convergence.rs:
