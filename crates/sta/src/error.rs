//! Error types for static timing analysis.

use std::error::Error;
use std::fmt;

/// Errors produced by timing analysis.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum StaError {
    /// Device model evaluation failed.
    Device(postopc_device::DeviceError),
    /// A clock period was non-positive or non-finite.
    InvalidClock(f64),
    /// An annotation referenced a gate or net the design does not have.
    UnknownAnnotation {
        /// `"gate"` or `"net"`.
        kind: &'static str,
        /// The offending id.
        index: usize,
    },
    /// A Monte Carlo configuration was invalid (zero samples, negative σ).
    InvalidMonteCarlo(String),
    /// An incremental (ECO) evaluation was requested against a scratch
    /// that does not hold a prior full evaluation of the same design.
    InvalidIncremental(String),
    /// An annotated critical dimension was non-physical (non-finite or
    /// non-positive) — the extraction → STA boundary guard.
    InvalidCd {
        /// The offending field (`"width_nm"`, `"l_delay_nm"`, ...).
        field: &'static str,
        /// The rejected value.
        value: f64,
    },
}

impl fmt::Display for StaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StaError::Device(e) => write!(f, "device model error: {e}"),
            StaError::InvalidClock(v) => write!(f, "invalid clock period {v} ps"),
            StaError::UnknownAnnotation { kind, index } => {
                write!(f, "annotation references unknown {kind} {index}")
            }
            StaError::InvalidMonteCarlo(reason) => {
                write!(f, "invalid monte carlo configuration: {reason}")
            }
            StaError::InvalidIncremental(reason) => {
                write!(f, "invalid incremental evaluation: {reason}")
            }
            StaError::InvalidCd { field, value } => {
                write!(f, "non-physical annotated CD: {field} = {value}")
            }
        }
    }
}

impl Error for StaError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            StaError::Device(e) => Some(e),
            _ => None,
        }
    }
}

impl From<postopc_device::DeviceError> for StaError {
    fn from(e: postopc_device::DeviceError) -> Self {
        StaError::Device(e)
    }
}

/// Convenience result alias for the STA crate.
pub type Result<T> = std::result::Result<T, StaError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert!(StaError::InvalidClock(-1.0).to_string().contains("-1"));
        let e = StaError::UnknownAnnotation {
            kind: "gate",
            index: 7,
        };
        assert!(e.to_string().contains("gate 7"));
    }
}
