/root/repo/target/release/deps/postopc_parallel-29858cf52e75c126.d: crates/parallel/src/lib.rs Cargo.toml

/root/repo/target/release/deps/libpostopc_parallel-29858cf52e75c126.rmeta: crates/parallel/src/lib.rs Cargo.toml

crates/parallel/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
