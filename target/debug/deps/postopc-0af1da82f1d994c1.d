/root/repo/target/debug/deps/postopc-0af1da82f1d994c1.d: crates/core/src/lib.rs crates/core/src/compare.rs crates/core/src/dfm.rs crates/core/src/error.rs crates/core/src/extract.rs crates/core/src/flow.rs crates/core/src/guardband.rs crates/core/src/multilayer.rs crates/core/src/report.rs crates/core/src/tags.rs Cargo.toml

/root/repo/target/debug/deps/libpostopc-0af1da82f1d994c1.rmeta: crates/core/src/lib.rs crates/core/src/compare.rs crates/core/src/dfm.rs crates/core/src/error.rs crates/core/src/extract.rs crates/core/src/flow.rs crates/core/src/guardband.rs crates/core/src/multilayer.rs crates/core/src/report.rs crates/core/src/tags.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/compare.rs:
crates/core/src/dfm.rs:
crates/core/src/error.rs:
crates/core/src/extract.rs:
crates/core/src/flow.rs:
crates/core/src/guardband.rs:
crates/core/src/multilayer.rs:
crates/core/src/report.rs:
crates/core/src/tags.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
