//! Fault taxonomy, quarantine policy and the deterministic fault injector.
//!
//! At full-chip scale a single degenerate gate — a non-finite measured CD,
//! a window that collapses under a bad bias, a panic inside a worker —
//! must not abort a multi-minute extraction. This module defines *what*
//! the engine does when a per-gate fault occurs ([`FaultPolicy`]), *where*
//! in the pipeline it happened ([`FaultStage`]), and a seeded, in-tree
//! fault injector ([`FaultInjection`]) that exercises all of it
//! deterministically from CI.
//!
//! Injection decisions are keyed off `split_seed(seed, gate_id)`, so
//! whether a given gate faults depends only on the seed and the gate id —
//! never on thread count, scheduling, or which other gates are tagged.
//! Quarantined runs therefore stay bit-identical across
//! `POSTOPC_THREADS=1,2,4`, which is what the CI fault smoke asserts.

use postopc_layout::GateId;
use postopc_rng::{split_seed, RngExt, SeedableRng, StdRng};

/// What the extraction engine does when a per-gate fault (typed error or
/// worker panic) occurs.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum FaultPolicy {
    /// Abort the run on the first fault — the pre-quarantine behaviour
    /// and the default, so clean runs stay bit-identical to it.
    #[default]
    Fail,
    /// Quarantine the offending gate — it keeps drawn dimensions, exactly
    /// like a measurement fallback — and keep going. The run still fails
    /// (with [`crate::FlowError::QuarantineExceeded`]) if the quarantined
    /// fraction of tagged gates exceeds `max_fraction`.
    Quarantine {
        /// Largest tolerated `quarantined / tagged` ratio, in `[0, 1]`.
        max_fraction: f64,
    },
}

/// Pipeline stage at which a gate was quarantined.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultStage {
    /// Phase 1: context/window building (geometry gathering and
    /// canonicalisation).
    Context,
    /// Phase 2: the OPC → imaging → measurement pipeline of the gate's
    /// distinct litho context.
    Pipeline,
    /// Merge-time CD validation at the extraction → STA boundary.
    Boundary,
}

impl std::fmt::Display for FaultStage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            FaultStage::Context => "context",
            FaultStage::Pipeline => "pipeline",
            FaultStage::Boundary => "boundary",
        })
    }
}

/// One quarantined gate: where it failed and the rendered cause.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QuarantinedGate {
    /// The gate that was quarantined (it keeps drawn dimensions).
    pub gate: GateId,
    /// Pipeline stage at which the fault surfaced.
    pub stage: FaultStage,
    /// Human-readable cause: the typed error's display text, or
    /// `panic: <payload>` for a captured worker panic.
    pub cause: String,
}

/// The fault kinds the injector can plant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InjectedFault {
    /// Overwrite the gate's merged delay CD with NaN — caught by the
    /// boundary guard at the extraction → STA seam.
    NanCd,
    /// Collapse the gate's simulation window to a degenerate rectangle —
    /// surfaces as a real geometry error in context building.
    DegenerateGeometry,
    /// Panic inside the phase-1 worker while building the gate's context.
    WorkerPanic,
}

/// Deterministic, seeded fault injection — validation plumbing for the
/// quarantine machinery. Disabled unless explicitly configured; a `None`
/// injector on [`crate::ExtractionConfig`] leaves the engine byte-for-byte
/// on its normal path.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultInjection {
    /// Base seed; child seeds are split per gate id.
    pub seed: u64,
    /// Per-gate fault probability, in `[0, 1]`.
    pub rate: f64,
    /// Enable [`InjectedFault::NanCd`].
    pub nan_cd: bool,
    /// Enable [`InjectedFault::DegenerateGeometry`].
    pub degenerate_geometry: bool,
    /// Enable [`InjectedFault::WorkerPanic`].
    pub worker_panic: bool,
}

impl FaultInjection {
    /// All three fault kinds enabled at `rate`.
    #[must_use]
    pub fn all(seed: u64, rate: f64) -> FaultInjection {
        FaultInjection {
            seed,
            rate,
            nan_cd: true,
            degenerate_geometry: true,
            worker_panic: true,
        }
    }

    /// The fault injected for `gate`, if any.
    ///
    /// Keyed off `split_seed(seed, gate)`, so the decision depends only on
    /// the seed and the gate id — never on thread count or execution
    /// order. Tests and the CI smoke replay this to predict the exact
    /// quarantine set.
    #[must_use]
    pub fn fault_for(&self, gate: GateId) -> Option<InjectedFault> {
        let mut kinds: [Option<InjectedFault>; 3] = [None; 3];
        let mut n = 0;
        for (enabled, kind) in [
            (self.nan_cd, InjectedFault::NanCd),
            (self.degenerate_geometry, InjectedFault::DegenerateGeometry),
            (self.worker_panic, InjectedFault::WorkerPanic),
        ] {
            if enabled {
                kinds[n] = Some(kind);
                n += 1;
            }
        }
        if n == 0 {
            return None;
        }
        let mut rng = StdRng::seed_from_u64(split_seed(self.seed, u64::from(gate.0)));
        if rng.random_range(0.0..1.0) >= self.rate {
            return None;
        }
        kinds[rng.random_range(0..n)]
    }

    /// Validates the injector's numeric fields.
    ///
    /// # Errors
    ///
    /// [`crate::FlowError::InvalidConfig`] when `rate` is non-finite or
    /// outside `[0, 1]`.
    pub fn validate(&self) -> crate::error::Result<()> {
        if !self.rate.is_finite() || !(0.0..=1.0).contains(&self.rate) {
            return Err(crate::FlowError::InvalidConfig(format!(
                "fault injection rate must be in [0, 1], got {}",
                self.rate
            )));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_decisions_depend_only_on_seed_and_gate() {
        let inj = FaultInjection::all(42, 0.3);
        let a: Vec<_> = (0..200).map(|i| inj.fault_for(GateId(i))).collect();
        let b: Vec<_> = (0..200).map(|i| inj.fault_for(GateId(i))).collect();
        assert_eq!(a, b, "replay must be exact");
        let hits = a.iter().flatten().count();
        assert!(hits > 20 && hits < 120, "rate ~0.3 of 200: got {hits}");
        // A different seed rearranges the fault set.
        let other = FaultInjection::all(43, 0.3);
        let c: Vec<_> = (0..200).map(|i| other.fault_for(GateId(i))).collect();
        assert_ne!(a, c);
    }

    #[test]
    fn disabled_kinds_are_never_drawn() {
        let inj = FaultInjection {
            seed: 7,
            rate: 1.0,
            nan_cd: true,
            degenerate_geometry: false,
            worker_panic: false,
        };
        for i in 0..50 {
            assert_eq!(inj.fault_for(GateId(i)), Some(InjectedFault::NanCd));
        }
        let none = FaultInjection {
            nan_cd: false,
            ..inj
        };
        for i in 0..50 {
            assert_eq!(none.fault_for(GateId(i)), None);
        }
    }

    #[test]
    fn rate_validation() {
        assert!(FaultInjection::all(1, 0.0).validate().is_ok());
        assert!(FaultInjection::all(1, 1.0).validate().is_ok());
        assert!(FaultInjection::all(1, f64::NAN).validate().is_err());
        assert!(FaultInjection::all(1, 1.5).validate().is_err());
    }

    #[test]
    fn default_policy_is_fail() {
        assert_eq!(FaultPolicy::default(), FaultPolicy::Fail);
    }
}
