//! Gate-level logic netlists.
//!
//! The netlist is the "global circuit netlist" of the paper's flow: timing
//! analysis runs on it, critical gates are tagged on it, and the
//! cross-reference ties each of its gates to polygon geometry.

use crate::error::{LayoutError, Result};
use crate::tech::Drive;
use std::collections::HashMap;
use std::fmt;

/// Identifier of a net.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NetId(pub u32);

/// Identifier of a gate instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct GateId(pub u32);

/// Logic function of a standard cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum GateKind {
    /// Inverter.
    Inv,
    /// Non-inverting buffer.
    Buf,
    /// 2-input NAND.
    Nand2,
    /// 2-input NOR.
    Nor2,
    /// 3-input NAND.
    Nand3,
    /// Rising-edge D flip-flop (inputs: D, CLK; output: Q). Breaks the
    /// combinational graph: register-to-register paths launch at its Q
    /// and capture at its D.
    Dff,
}

impl GateKind {
    /// All kinds.
    pub const ALL: [GateKind; 6] = [
        GateKind::Inv,
        GateKind::Buf,
        GateKind::Nand2,
        GateKind::Nor2,
        GateKind::Nand3,
        GateKind::Dff,
    ];

    /// Number of input pins (for a DFF: D and CLK).
    pub fn arity(self) -> usize {
        match self {
            GateKind::Inv | GateKind::Buf => 1,
            GateKind::Nand2 | GateKind::Nor2 | GateKind::Dff => 2,
            GateKind::Nand3 => 3,
        }
    }

    /// Whether the gate is a sequential element (breaks timing paths).
    pub fn is_sequential(self) -> bool {
        matches!(self, GateKind::Dff)
    }

    /// Worst-case series NMOS stack depth (pull-down).
    pub fn nmos_stack(self) -> usize {
        match self {
            GateKind::Inv | GateKind::Buf | GateKind::Nor2 => 1,
            GateKind::Nand2 | GateKind::Dff => 2,
            GateKind::Nand3 => 3,
        }
    }

    /// Worst-case series PMOS stack depth (pull-up).
    pub fn pmos_stack(self) -> usize {
        match self {
            GateKind::Inv | GateKind::Buf | GateKind::Nand2 | GateKind::Nand3 => 1,
            GateKind::Nor2 | GateKind::Dff => 2,
        }
    }

    /// Number of poly gate fingers in the cell layout (one per transistor
    /// pair; a buffer is two inverters; a DFF is a master/slave latch
    /// pair with clock buffers — six fingers).
    pub fn finger_count(self) -> usize {
        match self {
            GateKind::Inv => 1,
            GateKind::Buf => 2,
            GateKind::Nand2 | GateKind::Nor2 => 2,
            GateKind::Nand3 => 3,
            GateKind::Dff => 6,
        }
    }

    /// Cell name stem (`"INV"`, `"NAND2"`, ...).
    pub fn stem(self) -> &'static str {
        match self {
            GateKind::Inv => "INV",
            GateKind::Buf => "BUF",
            GateKind::Nand2 => "NAND2",
            GateKind::Nor2 => "NOR2",
            GateKind::Nand3 => "NAND3",
            GateKind::Dff => "DFF",
        }
    }
}

impl fmt::Display for GateKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.stem())
    }
}

/// A gate instance in the netlist.
#[derive(Debug, Clone, PartialEq)]
pub struct Gate {
    /// Instance name (unique within the netlist).
    pub name: String,
    /// Logic function.
    pub kind: GateKind,
    /// Drive strength.
    pub drive: Drive,
    /// Input nets, in pin order.
    pub inputs: Vec<NetId>,
    /// Output net.
    pub output: NetId,
}

/// A net (signal) in the netlist.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Net {
    /// Net name (unique within the netlist).
    pub name: String,
}

/// A validated gate-level netlist.
///
/// Invariants (enforced by [`NetlistBuilder::build`]): every net has exactly
/// one driver (a gate output or a primary input), every gate has the arity
/// of its kind, and the combinational graph is acyclic.
#[derive(Debug, Clone, PartialEq)]
pub struct Netlist {
    name: String,
    nets: Vec<Net>,
    gates: Vec<Gate>,
    primary_inputs: Vec<NetId>,
    primary_outputs: Vec<NetId>,
    topo_order: Vec<GateId>,
}

impl Netlist {
    /// The design name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// All nets.
    pub fn nets(&self) -> &[Net] {
        &self.nets
    }

    /// All gate instances.
    pub fn gates(&self) -> &[Gate] {
        &self.gates
    }

    /// The gate with the given id.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range (ids originate from this netlist).
    pub fn gate(&self, id: GateId) -> &Gate {
        &self.gates[id.0 as usize]
    }

    /// The net with the given id.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn net(&self, id: NetId) -> &Net {
        &self.nets[id.0 as usize]
    }

    /// Primary input nets.
    pub fn primary_inputs(&self) -> &[NetId] {
        &self.primary_inputs
    }

    /// Primary output nets.
    pub fn primary_outputs(&self) -> &[NetId] {
        &self.primary_outputs
    }

    /// Gates in a topological order (every gate after all gates whose
    /// outputs feed it).
    pub fn topological_order(&self) -> &[GateId] {
        &self.topo_order
    }

    /// The gate driving `net`, if it is gate-driven (not a primary input).
    pub fn driver(&self, net: NetId) -> Option<GateId> {
        self.gates
            .iter()
            .position(|g| g.output == net)
            .map(|i| GateId(i as u32))
    }

    /// All gates with `net` as an input.
    pub fn sinks(&self, net: NetId) -> Vec<GateId> {
        self.gates
            .iter()
            .enumerate()
            .filter(|(_, g)| g.inputs.contains(&net))
            .map(|(i, _)| GateId(i as u32))
            .collect()
    }

    /// Number of gates.
    pub fn gate_count(&self) -> usize {
        self.gates.len()
    }
}

/// Incremental netlist constructor.
///
/// ```
/// use postopc_layout::{NetlistBuilder, GateKind, Drive};
/// # fn main() -> Result<(), postopc_layout::LayoutError> {
/// let mut b = NetlistBuilder::new("demo");
/// let a = b.input("a");
/// let out = b.net("out");
/// b.gate(GateKind::Inv, Drive::X1, &[a], out)?;
/// b.output(out);
/// let netlist = b.build()?;
/// assert_eq!(netlist.gate_count(), 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct NetlistBuilder {
    name: String,
    nets: Vec<Net>,
    gates: Vec<Gate>,
    primary_inputs: Vec<NetId>,
    primary_outputs: Vec<NetId>,
}

impl NetlistBuilder {
    /// Starts a netlist with the given design name.
    pub fn new(name: impl Into<String>) -> NetlistBuilder {
        NetlistBuilder {
            name: name.into(),
            nets: Vec::new(),
            gates: Vec::new(),
            primary_inputs: Vec::new(),
            primary_outputs: Vec::new(),
        }
    }

    /// Creates a new internal net.
    pub fn net(&mut self, name: impl Into<String>) -> NetId {
        let id = NetId(self.nets.len() as u32);
        self.nets.push(Net { name: name.into() });
        id
    }

    /// Creates a primary-input net.
    pub fn input(&mut self, name: impl Into<String>) -> NetId {
        let id = self.net(name);
        self.primary_inputs.push(id);
        id
    }

    /// Marks an existing net as a primary output.
    pub fn output(&mut self, net: NetId) {
        if !self.primary_outputs.contains(&net) {
            self.primary_outputs.push(net);
        }
    }

    /// Adds a gate instance with an auto-generated name.
    ///
    /// # Errors
    ///
    /// Returns [`LayoutError::ArityMismatch`] if `inputs` does not match the
    /// gate kind, or [`LayoutError::UnknownId`] for out-of-range net ids.
    pub fn gate(
        &mut self,
        kind: GateKind,
        drive: Drive,
        inputs: &[NetId],
        output: NetId,
    ) -> Result<GateId> {
        let name = format!("u{}", self.gates.len());
        self.named_gate(name, kind, drive, inputs, output)
    }

    /// Adds a gate instance with an explicit name.
    ///
    /// # Errors
    ///
    /// Same as [`NetlistBuilder::gate`].
    pub fn named_gate(
        &mut self,
        name: impl Into<String>,
        kind: GateKind,
        drive: Drive,
        inputs: &[NetId],
        output: NetId,
    ) -> Result<GateId> {
        let name = name.into();
        if inputs.len() != kind.arity() {
            return Err(LayoutError::ArityMismatch {
                gate: name,
                expected: kind.arity(),
                actual: inputs.len(),
            });
        }
        for &n in inputs.iter().chain(std::iter::once(&output)) {
            if n.0 as usize >= self.nets.len() {
                return Err(LayoutError::UnknownId {
                    kind: "net",
                    index: n.0 as usize,
                });
            }
        }
        let id = GateId(self.gates.len() as u32);
        self.gates.push(Gate {
            name,
            kind,
            drive,
            inputs: inputs.to_vec(),
            output,
        });
        Ok(id)
    }

    /// All nets currently used as a gate input (useful for generators that
    /// promote sink-less nets to primary outputs).
    pub fn nets_used_as_inputs(&self) -> Vec<NetId> {
        let mut v: Vec<NetId> = self
            .gates
            .iter()
            .flat_map(|g| g.inputs.iter().copied())
            .collect();
        v.sort_unstable();
        v.dedup();
        v
    }

    /// Validates and finalizes the netlist.
    ///
    /// # Errors
    ///
    /// - [`LayoutError::DriverConflict`] if a net has zero or multiple
    ///   drivers (primary inputs count as drivers);
    /// - [`LayoutError::CombinationalLoop`] if the gate graph is cyclic;
    /// - [`LayoutError::EmptyDesign`] if there are no gates.
    pub fn build(self) -> Result<Netlist> {
        if self.gates.is_empty() {
            return Err(LayoutError::EmptyDesign);
        }
        // Single-driver check.
        let mut drivers: HashMap<NetId, usize> = HashMap::new();
        for &pi in &self.primary_inputs {
            *drivers.entry(pi).or_insert(0) += 1;
        }
        for g in &self.gates {
            *drivers.entry(g.output).or_insert(0) += 1;
        }
        for (i, net) in self.nets.iter().enumerate() {
            let count = drivers.get(&NetId(i as u32)).copied().unwrap_or(0);
            if count != 1 {
                return Err(LayoutError::DriverConflict {
                    net: net.name.clone(),
                    drivers: count,
                });
            }
        }
        // Topological sort (Kahn) over gate dependencies.
        let driver_of: HashMap<NetId, usize> = self
            .gates
            .iter()
            .enumerate()
            .map(|(i, g)| (g.output, i))
            .collect();
        let mut indegree = vec![0usize; self.gates.len()];
        let mut fanout: Vec<Vec<usize>> = vec![Vec::new(); self.gates.len()];
        for (i, g) in self.gates.iter().enumerate() {
            if g.kind.is_sequential() {
                continue; // registers break combinational dependence
            }
            for input in &g.inputs {
                if let Some(&d) = driver_of.get(input) {
                    indegree[i] += 1;
                    fanout[d].push(i);
                }
            }
        }
        let mut queue: Vec<usize> = (0..self.gates.len())
            .filter(|&i| indegree[i] == 0)
            .collect();
        let mut topo = Vec::with_capacity(self.gates.len());
        while let Some(i) = queue.pop() {
            topo.push(GateId(i as u32));
            for &j in &fanout[i] {
                indegree[j] -= 1;
                if indegree[j] == 0 {
                    queue.push(j);
                }
            }
        }
        if topo.len() != self.gates.len() {
            // An incomplete topological order implies at least one gate
            // still has unresolved predecessors; 0 is a defensive fallback.
            let stuck = indegree.iter().position(|&d| d > 0).unwrap_or(0);
            return Err(LayoutError::CombinationalLoop {
                gate: self.gates[stuck].name.clone(),
            });
        }
        Ok(Netlist {
            name: self.name,
            nets: self.nets,
            gates: self.gates,
            primary_inputs: self.primary_inputs,
            primary_outputs: self.primary_outputs,
            topo_order: topo,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_simple_chain() {
        let mut b = NetlistBuilder::new("chain");
        let a = b.input("a");
        let n1 = b.net("n1");
        let n2 = b.net("n2");
        b.gate(GateKind::Inv, Drive::X1, &[a], n1).expect("gate");
        b.gate(GateKind::Inv, Drive::X2, &[n1], n2).expect("gate");
        b.output(n2);
        let nl = b.build().expect("valid netlist");
        assert_eq!(nl.gate_count(), 2);
        assert_eq!(nl.driver(n2), Some(GateId(1)));
        assert_eq!(nl.sinks(n1), vec![GateId(1)]);
        assert_eq!(nl.topological_order().len(), 2);
        // Topological: gate 0 before gate 1.
        let pos0 = nl.topological_order().iter().position(|&g| g == GateId(0));
        let pos1 = nl.topological_order().iter().position(|&g| g == GateId(1));
        assert!(pos0 < pos1);
    }

    #[test]
    fn rejects_arity_mismatch() {
        let mut b = NetlistBuilder::new("bad");
        let a = b.input("a");
        let out = b.net("out");
        let err = b.gate(GateKind::Nand2, Drive::X1, &[a], out).unwrap_err();
        assert!(matches!(err, LayoutError::ArityMismatch { .. }));
    }

    #[test]
    fn rejects_undriven_net() {
        let mut b = NetlistBuilder::new("bad");
        let floating = b.net("floating");
        let out = b.net("out");
        b.gate(GateKind::Inv, Drive::X1, &[floating], out)
            .expect("gate");
        assert!(matches!(
            b.build(),
            Err(LayoutError::DriverConflict { drivers: 0, .. })
        ));
    }

    #[test]
    fn rejects_multiple_drivers() {
        let mut b = NetlistBuilder::new("bad");
        let a = b.input("a");
        let out = b.net("out");
        b.gate(GateKind::Inv, Drive::X1, &[a], out).expect("gate");
        b.gate(GateKind::Buf, Drive::X1, &[a], out).expect("gate");
        assert!(matches!(
            b.build(),
            Err(LayoutError::DriverConflict { drivers: 2, .. })
        ));
    }

    #[test]
    fn rejects_combinational_loop() {
        let mut b = NetlistBuilder::new("loop");
        let x = b.net("x");
        let y = b.net("y");
        b.gate(GateKind::Inv, Drive::X1, &[x], y).expect("gate");
        b.gate(GateKind::Inv, Drive::X1, &[y], x).expect("gate");
        assert!(matches!(
            b.build(),
            Err(LayoutError::CombinationalLoop { .. })
        ));
    }

    #[test]
    fn registers_legalize_feedback_loops() {
        // x -> INV -> y -> DFF -> x is a legal sequential loop.
        let mut b = NetlistBuilder::new("counterish");
        let clk = b.input("clk");
        let x = b.net("x");
        let y = b.net("y");
        b.gate(GateKind::Inv, Drive::X1, &[x], y).expect("gate");
        b.gate(GateKind::Dff, Drive::X1, &[y, clk], x)
            .expect("gate");
        let nl = b.build().expect("sequential loop is legal");
        assert_eq!(nl.gate_count(), 2);
        assert!(GateKind::Dff.is_sequential());
        assert_eq!(GateKind::Dff.arity(), 2);
        assert_eq!(GateKind::Dff.finger_count(), 6);
    }

    #[test]
    fn rejects_empty_design() {
        let b = NetlistBuilder::new("empty");
        assert!(matches!(b.build(), Err(LayoutError::EmptyDesign)));
    }

    #[test]
    fn gate_kind_properties() {
        assert_eq!(GateKind::Nand3.arity(), 3);
        assert_eq!(GateKind::Nand3.nmos_stack(), 3);
        assert_eq!(GateKind::Nor2.pmos_stack(), 2);
        assert_eq!(GateKind::Buf.finger_count(), 2);
        assert_eq!(GateKind::Nand2.to_string(), "NAND2");
    }

    #[test]
    fn rejects_unknown_net_id() {
        let mut b = NetlistBuilder::new("bad");
        let a = b.input("a");
        let bogus = NetId(999);
        assert!(matches!(
            b.gate(GateKind::Inv, Drive::X1, &[a], bogus),
            Err(LayoutError::UnknownId { .. })
        ));
    }
}
