/root/repo/target/debug/deps/properties-ff0f9803949ebb31.d: crates/sta/tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-ff0f9803949ebb31.rmeta: crates/sta/tests/properties.rs Cargo.toml

crates/sta/tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
