//! Axis-parallel polygon edges.

use crate::point::{Coord, Point, Vector};
use std::fmt;

/// Orientation of an axis-parallel edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Orientation {
    /// Constant `y`, varying `x`.
    Horizontal,
    /// Constant `x`, varying `y`.
    Vertical,
}

impl Orientation {
    /// The perpendicular orientation.
    pub fn perpendicular(self) -> Orientation {
        match self {
            Orientation::Horizontal => Orientation::Vertical,
            Orientation::Vertical => Orientation::Horizontal,
        }
    }
}

/// A directed, axis-parallel edge of a rectilinear polygon.
///
/// Edges are directed so that for a counter-clockwise polygon the interior
/// lies to the *left* of the direction of travel and [`Edge::outward_normal`]
/// points away from the interior.
///
/// ```
/// use postopc_geom::{Edge, Point, Vector};
/// let e = Edge::new(Point::new(0, 0), Point::new(10, 0)); // +x direction
/// assert_eq!(e.outward_normal(), Vector::new(0, -1));     // CCW: outside below
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Edge {
    /// Start point (tail).
    pub start: Point,
    /// End point (head).
    pub end: Point,
}

impl Edge {
    /// Creates an edge from `start` to `end`.
    ///
    /// # Panics
    ///
    /// Panics if the edge is not axis-parallel or has zero length; edges are
    /// only ever produced from validated rectilinear polygons, so a diagonal
    /// here is an internal logic error.
    pub fn new(start: Point, end: Point) -> Edge {
        assert!(
            (start.x == end.x) ^ (start.y == end.y),
            "edge must be axis-parallel and non-degenerate: {start} -> {end}"
        );
        Edge { start, end }
    }

    /// The edge's orientation.
    pub fn orientation(&self) -> Orientation {
        if self.start.y == self.end.y {
            Orientation::Horizontal
        } else {
            Orientation::Vertical
        }
    }

    /// Length in nm.
    pub fn length(&self) -> Coord {
        (self.end.x - self.start.x).abs() + (self.end.y - self.start.y).abs()
    }

    /// Unit direction of travel (one of the four axis directions).
    pub fn direction(&self) -> Vector {
        Vector::new(
            (self.end.x - self.start.x).signum(),
            (self.end.y - self.start.y).signum(),
        )
    }

    /// Unit normal pointing away from the interior of a CCW polygon
    /// (90 degrees clockwise from the direction of travel).
    pub fn outward_normal(&self) -> Vector {
        -self.direction().rotate90()
    }

    /// Midpoint of the edge (rounded toward `start` for odd lengths).
    pub fn midpoint(&self) -> Point {
        Point::new(
            (self.start.x + self.end.x) / 2,
            (self.start.y + self.end.y) / 2,
        )
    }

    /// A point a fraction `t` in `[0, 1]` of the way along the edge.
    pub fn point_at(&self, t: f64) -> Point {
        let t = t.clamp(0.0, 1.0);
        Point::new(
            self.start.x + ((self.end.x - self.start.x) as f64 * t).round() as Coord,
            self.start.y + ((self.end.y - self.start.y) as f64 * t).round() as Coord,
        )
    }

    /// The fixed coordinate: `y` for horizontal edges, `x` for vertical.
    pub fn level(&self) -> Coord {
        match self.orientation() {
            Orientation::Horizontal => self.start.y,
            Orientation::Vertical => self.start.x,
        }
    }

    /// The edge translated by `offset` nm along its outward normal.
    pub fn shifted(&self, offset: Coord) -> Edge {
        let v = self.outward_normal() * offset;
        Edge {
            start: self.start + v,
            end: self.end + v,
        }
    }

    /// Whether `other` lies on the same infinite axis line.
    pub fn is_collinear_with(&self, other: &Edge) -> bool {
        self.orientation() == other.orientation() && self.level() == other.level()
    }
}

impl fmt::Display for Edge {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} -> {}", self.start, self.end)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ccw_square_outward_normals_point_out() {
        // CCW square: bottom, right, top, left.
        let bottom = Edge::new(Point::new(0, 0), Point::new(10, 0));
        let right = Edge::new(Point::new(10, 0), Point::new(10, 10));
        let top = Edge::new(Point::new(10, 10), Point::new(0, 10));
        let left = Edge::new(Point::new(0, 10), Point::new(0, 0));
        assert_eq!(bottom.outward_normal(), Vector::new(0, -1));
        assert_eq!(right.outward_normal(), Vector::new(1, 0));
        assert_eq!(top.outward_normal(), Vector::new(0, 1));
        assert_eq!(left.outward_normal(), Vector::new(-1, 0));
    }

    #[test]
    fn shifted_moves_along_normal() {
        let bottom = Edge::new(Point::new(0, 0), Point::new(10, 0));
        let out = bottom.shifted(3);
        assert_eq!(out.start, Point::new(0, -3)); // outward = grows the polygon
        let inward = bottom.shifted(-2);
        assert_eq!(inward.start, Point::new(0, 2));
    }

    #[test]
    fn levels_and_collinearity() {
        let a = Edge::new(Point::new(0, 5), Point::new(10, 5));
        let b = Edge::new(Point::new(20, 5), Point::new(30, 5));
        let c = Edge::new(Point::new(0, 6), Point::new(10, 6));
        assert_eq!(a.level(), 5);
        assert!(a.is_collinear_with(&b));
        assert!(!a.is_collinear_with(&c));
    }

    #[test]
    fn point_at_interpolates() {
        let e = Edge::new(Point::new(0, 0), Point::new(100, 0));
        assert_eq!(e.point_at(0.25), Point::new(25, 0));
        assert_eq!(e.point_at(-1.0), e.start);
        assert_eq!(e.point_at(2.0), e.end);
    }

    #[test]
    #[should_panic(expected = "axis-parallel")]
    fn diagonal_edge_panics() {
        let _ = Edge::new(Point::new(0, 0), Point::new(1, 1));
    }

    #[test]
    fn length_and_midpoint() {
        let e = Edge::new(Point::new(2, 7), Point::new(2, -3));
        assert_eq!(e.length(), 10);
        assert_eq!(e.midpoint(), Point::new(2, 2));
        assert_eq!(e.orientation(), Orientation::Vertical);
    }
}
