//! The end-to-end post-OPC timing flow.
//!
//! The sequence the DAC 2005 paper describes:
//!
//! 1. **drawn STA** over the placed-and-routed design;
//! 2. **tag critical gates** on the top-k speed paths;
//! 3. **selective extraction**: OPC + imaging + slice extraction on the
//!    tagged gates (optionally every gate);
//! 4. optional **multi-layer extraction** of the critical nets' printed
//!    wire widths;
//! 5. **back-annotated STA** and comparison (criticality reordering,
//!    worst-slack deviation).

use crate::artifact::{content_hash, WarmArtifact};
use crate::compare::TimingComparison;
use crate::error::Result;
use crate::extract::{extract_gates, ExtractionConfig, ExtractionStats};
use crate::fault::FaultPolicy;
use crate::multilayer::{extract_wires, WireExtractionConfig, WireExtractionStats};
use crate::session::{QueryOutcome, SessionQuery, TimingSession};
use crate::tags::TagSet;
use postopc_device::ProcessParams;
use postopc_layout::{Design, NetId};
use postopc_sta::{CdAnnotation, TimingModel};
use std::path::Path;
use std::time::{Duration, Instant};

/// Which gates the flow extracts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Selection {
    /// Every gate in the design (full-chip extraction).
    All,
    /// Only gates on the top-`paths` drawn speed paths (the paper's
    /// selective extraction).
    Critical {
        /// Number of top paths whose gates are tagged.
        paths: usize,
    },
}

/// Flow configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct FlowConfig {
    /// Clock period for slack computation, in ps.
    pub clock_ps: f64,
    /// Number of speed paths reported in the comparison.
    pub report_paths: usize,
    /// Gate selection policy.
    pub selection: Selection,
    /// Extraction settings (OPC recipe, imaging, slicing).
    pub extraction: ExtractionConfig,
    /// Wire extraction settings; `None` disables the multi-layer step.
    pub wires: Option<WireExtractionConfig>,
    /// Device process for timing.
    pub process: ProcessParams,
}

impl FlowConfig {
    /// The paper's flow: selective extraction on the top-20 paths,
    /// model OPC, poly only.
    pub fn standard(clock_ps: f64) -> FlowConfig {
        FlowConfig {
            clock_ps,
            report_paths: 20,
            selection: Selection::Critical { paths: 20 },
            extraction: ExtractionConfig::standard(),
            wires: None,
            process: ProcessParams::n90(),
        }
    }

    /// The same flow under a different [`FaultPolicy`] — full-chip runs
    /// typically want `Quarantine` so one degenerate gate cannot abort a
    /// multi-minute analysis.
    #[must_use]
    pub fn with_fault_policy(mut self, policy: FaultPolicy) -> FlowConfig {
        self.extraction.fault_policy = policy;
        self
    }
}

/// The complete result of one flow run.
#[derive(Debug, Clone, PartialEq)]
pub struct FlowReport {
    /// Tagged gates.
    pub tags: TagSet,
    /// Extraction statistics.
    pub extraction: ExtractionStats,
    /// Wire extraction statistics (if the multi-layer step ran).
    pub wire_stats: Option<WireExtractionStats>,
    /// The final annotation (gates + optional nets).
    pub annotation: CdAnnotation,
    /// Drawn vs annotated timing with path comparisons.
    pub comparison: TimingComparison,
    /// Wall-clock time of the extraction step.
    pub extraction_time: Duration,
    /// Wall-clock time of the two timing runs.
    pub timing_time: Duration,
}

impl FlowReport {
    /// Gates quarantined during extraction, in `GateId` order (empty under
    /// [`FaultPolicy::Fail`] or a clean run).
    #[must_use]
    pub fn quarantined(&self) -> &[crate::fault::QuarantinedGate] {
        &self.extraction.quarantined
    }
}

/// Runs the complete post-OPC timing flow on a compiled design.
///
/// # Errors
///
/// Propagates configuration, simulation, extraction and timing errors.
pub fn run_flow(design: &Design, config: &FlowConfig) -> Result<FlowReport> {
    let model = TimingModel::new(design, config.process.clone(), config.clock_ps)?;
    // One compiled model serves the drawn pass and the final comparison.
    let compiled = model.compile()?;
    let mut scratch = compiled.scratch();

    // Step 1-2: drawn timing and tagging.
    let drawn = compiled.evaluate(&mut scratch, None)?;
    let tags = match config.selection {
        Selection::All => TagSet::all(design),
        Selection::Critical { paths } => TagSet::from_critical_paths(design, &drawn, paths),
    };

    // Step 3: selective extraction.
    let t0 = Instant::now();
    let outcome = extract_gates(design, &config.extraction, &tags)?;
    let mut annotation = outcome.annotation;

    // Step 4: optional multi-layer extraction on the nets of the tagged
    // gates' outputs and inputs.
    let wire_stats = match &config.wires {
        Some(wire_config) => {
            let mut nets: Vec<NetId> = Vec::new();
            for gate in tags.sorted() {
                let g = design.netlist().gate(gate);
                nets.push(g.output);
                nets.extend(g.inputs.iter().copied());
            }
            nets.sort_unstable();
            nets.dedup();
            Some(extract_wires(design, wire_config, &nets, &mut annotation)?)
        }
        None => None,
    };
    let extraction_time = t0.elapsed();

    // Step 5: back-annotated timing and comparison.
    let t1 = Instant::now();
    let comparison = TimingComparison::compare_with(
        &compiled,
        &mut scratch,
        design,
        &annotation,
        config.report_paths,
    )?;
    let timing_time = t1.elapsed();

    Ok(FlowReport {
        tags,
        extraction: outcome.stats,
        wire_stats,
        annotation,
        comparison,
        extraction_time,
        timing_time,
    })
}

/// The result of one [`serve`] invocation.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeReport {
    /// One outcome per submitted query, in submission order.
    pub outcomes: Vec<QueryOutcome>,
    /// Whether the session came up warm from a valid persisted artifact
    /// (false: it compiled cold, and — when a path was given — wrote a
    /// fresh artifact for the next invocation).
    pub warm: bool,
    /// Wall-clock time to bring the session up (cold compile + extract,
    /// or artifact load + cache-hot re-evaluation).
    pub startup_time: Duration,
    /// Wall-clock time to answer all queries against the warm state.
    pub query_time: Duration,
}

/// Batch-query service mode: brings up one [`TimingSession`] — warm from
/// `artifact_path` when a valid artifact for these exact inputs exists
/// there, cold otherwise (persisting a fresh artifact to the path for
/// the next caller) — and answers every query against it.
///
/// A stale artifact (different content hash over the layout, process,
/// clock, gate selection, wire config or extraction config) or a corrupt
/// one is treated as absent: the service recompiles cold and overwrites
/// it. Answers are bit-identical either way; only `startup_time`
/// differs.
///
/// # Errors
///
/// Propagates configuration, extraction, timing and artifact-write
/// errors.
pub fn serve(
    design: &Design,
    config: &FlowConfig,
    artifact_path: Option<&Path>,
    queries: &[SessionQuery],
) -> Result<ServeReport> {
    let model = TimingModel::new(design, config.process.clone(), config.clock_ps)?;
    let t0 = Instant::now();
    let expected = content_hash(design, config);
    let restored = artifact_path
        .filter(|p| p.exists())
        .and_then(|p| WarmArtifact::load_validated(p, expected).ok());
    let warm = restored.is_some();
    let mut session = match restored {
        Some(artifact) => TimingSession::restore(&model, config, artifact)?,
        None => TimingSession::new(&model, config)?,
    };
    if let (Some(path), false) = (artifact_path, warm) {
        session.artifact().save(path)?;
    }
    let startup_time = t0.elapsed();
    let t1 = Instant::now();
    let outcomes = queries
        .iter()
        .map(|q| session.run(q))
        .collect::<Result<Vec<_>>>()?;
    let query_time = t1.elapsed();
    Ok(ServeReport {
        outcomes,
        warm,
        startup_time,
        query_time,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::extract::OpcMode;
    use postopc_layout::{generate, TechRules};

    fn small_design() -> Design {
        Design::compile(
            generate::ripple_carry_adder(2).expect("netlist"),
            TechRules::n90(),
        )
        .expect("design")
    }

    fn fast_flow(selection: Selection) -> FlowConfig {
        let mut cfg = FlowConfig::standard(800.0);
        cfg.selection = selection;
        cfg.extraction.opc_mode = OpcMode::Rule;
        cfg.report_paths = 5;
        cfg
    }

    #[test]
    fn selective_flow_runs_end_to_end() {
        let d = small_design();
        let report = run_flow(&d, &fast_flow(Selection::Critical { paths: 2 })).expect("flow");
        assert!(!report.tags.is_empty());
        assert!(report.tags.len() < d.netlist().gate_count());
        assert_eq!(report.extraction.gates_extracted, report.tags.len());
        assert_eq!(report.annotation.gate_count(), report.tags.len());
        // Annotated timing differs from drawn.
        assert_ne!(
            report.comparison.drawn.critical_delay_ps(),
            report.comparison.annotated.critical_delay_ps()
        );
        assert!(report.wire_stats.is_none());
    }

    #[test]
    fn full_flow_annotates_every_gate() {
        let d = small_design();
        let report = run_flow(&d, &fast_flow(Selection::All)).expect("flow");
        assert_eq!(report.annotation.gate_count(), d.netlist().gate_count());
    }

    #[test]
    fn selective_is_cheaper_than_full() {
        let d = small_design();
        let selective = run_flow(&d, &fast_flow(Selection::Critical { paths: 1 })).expect("flow");
        let full = run_flow(&d, &fast_flow(Selection::All)).expect("flow");
        assert!(selective.extraction.windows < full.extraction.windows);
    }

    #[test]
    fn serve_warms_up_from_its_own_artifact_bit_identically() {
        let d = small_design();
        let cfg = fast_flow(Selection::Critical { paths: 2 });
        let queries = vec![
            SessionQuery::Corners(postopc_sta::Corner::classic_set(6.0)),
            SessionQuery::MonteCarlo(postopc_sta::MonteCarloConfig {
                samples: 30,
                sigma_nm: 1.5,
                seed: 7,
                ..postopc_sta::MonteCarloConfig::default()
            }),
        ];
        let dir = std::env::temp_dir().join("postopc-serve-test");
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("serve.bin");
        std::fs::remove_file(&path).ok();

        let cold = serve(&d, &cfg, Some(&path), &queries).expect("cold serve");
        assert!(!cold.warm);
        assert!(path.exists(), "cold serve persists an artifact");
        let warm = serve(&d, &cfg, Some(&path), &queries).expect("warm serve");
        assert!(warm.warm);
        assert_eq!(cold.outcomes, warm.outcomes);

        // A config change invalidates the artifact: back to cold.
        let mut other = cfg.clone();
        other.clock_ps = 900.0;
        let stale = serve(&d, &other, Some(&path), &queries).expect("stale serve");
        assert!(!stale.warm);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn serve_invalidates_on_selection_or_wire_changes() {
        let d = small_design();
        let cfg = fast_flow(Selection::Critical { paths: 2 });
        // Monte Carlo samples around the extracted baseline, so its
        // answer genuinely depends on which gates the selection tagged.
        let queries = vec![SessionQuery::MonteCarlo(postopc_sta::MonteCarloConfig {
            samples: 30,
            sigma_nm: 1.5,
            seed: 7,
            ..postopc_sta::MonteCarloConfig::default()
        })];
        let dir = std::env::temp_dir().join("postopc-serve-selection-test");
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("serve.bin");
        std::fs::remove_file(&path).ok();
        let cold = serve(&d, &cfg, Some(&path), &queries).expect("cold serve");
        assert!(!cold.warm);

        // Varying only the tagged-path count must not reuse the artifact:
        // the extraction (and so every answer) covers different gates.
        let mut wider = cfg.clone();
        wider.selection = Selection::Critical { paths: 3 };
        let invalidated = serve(&d, &wider, Some(&path), &queries).expect("wider serve");
        assert!(
            !invalidated.warm,
            "a --paths change must invalidate the artifact"
        );
        let reference = serve(&d, &wider, None, &queries).expect("reference serve");
        assert_eq!(invalidated.outcomes, reference.outcomes);
        // The overwritten artifact now serves the wider selection warm.
        let warm = serve(&d, &wider, Some(&path), &queries).expect("warm serve");
        assert!(warm.warm);
        assert_eq!(warm.outcomes, reference.outcomes);

        // Enabling the wire step likewise invalidates.
        let mut wired = wider.clone();
        wired.wires = Some(WireExtractionConfig::standard());
        let rewired = serve(&d, &wired, Some(&path), &queries).expect("wired serve");
        assert!(
            !rewired.warm,
            "a wire-config change must invalidate the artifact"
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn multilayer_step_annotates_nets() {
        let d = small_design();
        let mut cfg = fast_flow(Selection::Critical { paths: 1 });
        cfg.wires = Some(WireExtractionConfig::standard());
        let report = run_flow(&d, &cfg).expect("flow");
        let stats = report.wire_stats.expect("wire step ran");
        assert!(stats.nets_annotated > 0);
        assert_eq!(report.annotation.net_count(), stats.nets_annotated);
    }
}
