//! Hotspot snippet classification and pattern matching.
//!
//! Implements the companion-paper methodology ("Automatic hotspot
//! classification using pattern-based clustering", Ma et al. with
//! Capodieci; and the DRC-Plus pattern work): small layout snippets are
//! clipped around each verification hotspot, rasterized to binary
//! bitmaps, compared by overlap (Jaccard) similarity, and grouped by fast
//! incremental clustering. Cluster representatives become a pattern
//! library that can be matched against new layouts without re-running
//! simulation.

use crate::error::Result;
use crate::orc::Hotspot;
use postopc_geom::{Coord, GridIndex, Point, Polygon, Rect};

/// Snippet capture and clustering parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HotspotConfig {
    /// Snippet half-size (radius) around the hotspot, in nm.
    pub radius_nm: Coord,
    /// Bitmap resolution (pixels per side).
    pub bitmap_px: usize,
    /// Jaccard similarity at or above which two snippets share a cluster.
    pub similarity_threshold: f64,
}

impl HotspotConfig {
    /// Production-style settings: 400 nm radius, 32×32 bitmaps, 0.8
    /// similarity.
    pub fn standard() -> HotspotConfig {
        HotspotConfig {
            radius_nm: 400,
            bitmap_px: 32,
            similarity_threshold: 0.8,
        }
    }
}

impl Default for HotspotConfig {
    fn default() -> Self {
        HotspotConfig::standard()
    }
}

/// A layout snippet around one hotspot, with its rasterized signature.
#[derive(Debug, Clone, PartialEq)]
pub struct HotspotSnippet {
    /// The hotspot this snippet was captured for.
    pub hotspot: Hotspot,
    /// Capture window in chip coordinates.
    pub window: Rect,
    /// Binary occupancy bitmap, row-major `bitmap_px × bitmap_px`.
    bitmap: Vec<bool>,
    px: usize,
}

impl HotspotSnippet {
    /// Captures the snippet around `hotspot` from the given layout shapes.
    ///
    /// # Errors
    ///
    /// Returns a geometry error only for a non-positive radius.
    pub fn capture(
        config: &HotspotConfig,
        hotspot: Hotspot,
        shapes: &[Polygon],
    ) -> Result<HotspotSnippet> {
        let center = Point::new(hotspot.x_nm.round() as Coord, hotspot.y_nm.round() as Coord);
        let window = Rect::centered(center, 2 * config.radius_nm, 2 * config.radius_nm)?;
        let px = config.bitmap_px.max(4);
        let step = window.width() as f64 / px as f64;
        let mut bitmap = vec![false; px * px];
        // Index the shapes for the containment probes.
        let mut index: GridIndex<usize> = GridIndex::new(1_000);
        for (i, p) in shapes.iter().enumerate() {
            index.insert(p.bbox(), i);
        }
        for iy in 0..px {
            for ix in 0..px {
                let x = window.left() as f64 + (ix as f64 + 0.5) * step;
                let y = window.bottom() as f64 + (iy as f64 + 0.5) * step;
                let probe = Point::new(x.round() as Coord, y.round() as Coord);
                let probe_window = Rect::centered(probe, 2, 2)?;
                bitmap[iy * px + ix] = index
                    .query(probe_window)
                    .iter()
                    .any(|(_, &i)| shapes[i].contains(probe));
            }
        }
        Ok(HotspotSnippet {
            hotspot,
            window,
            bitmap,
            px,
        })
    }

    /// Jaccard similarity of two snippets' occupancy bitmaps (1 =
    /// identical geometry, 0 = disjoint).
    ///
    /// # Panics
    ///
    /// Panics if the snippets were captured at different bitmap
    /// resolutions (mixing configs is a caller bug).
    pub fn similarity(&self, other: &HotspotSnippet) -> f64 {
        assert_eq!(
            self.px, other.px,
            "snippets captured at different resolutions"
        );
        let mut intersection = 0usize;
        let mut union = 0usize;
        for (a, b) in self.bitmap.iter().zip(&other.bitmap) {
            if *a && *b {
                intersection += 1;
            }
            if *a || *b {
                union += 1;
            }
        }
        if union == 0 {
            return 1.0; // both empty: vacuously identical
        }
        intersection as f64 / union as f64
    }

    /// Fraction of occupied pixels (pattern density of the snippet).
    pub fn density(&self) -> f64 {
        self.bitmap.iter().filter(|&&b| b).count() as f64 / self.bitmap.len() as f64
    }
}

/// A cluster of geometrically similar hotspots.
#[derive(Debug, Clone, PartialEq)]
pub struct HotspotCluster {
    /// The representative (first-seen) snippet of the cluster.
    pub representative: HotspotSnippet,
    /// All member hotspots (including the representative's).
    pub members: Vec<Hotspot>,
}

/// Groups hotspot snippets by fast incremental clustering: each snippet
/// joins the first cluster whose representative is at least
/// `similarity_threshold` similar, or founds a new cluster.
///
/// The result is ordered by discovery; clusters are sorted most-populated
/// first, which is the triage order a fab would use.
pub fn cluster_hotspots(
    config: &HotspotConfig,
    snippets: Vec<HotspotSnippet>,
) -> Vec<HotspotCluster> {
    let mut clusters: Vec<HotspotCluster> = Vec::new();
    for snippet in snippets {
        match clusters
            .iter_mut()
            .find(|c| c.representative.similarity(&snippet) >= config.similarity_threshold)
        {
            Some(cluster) => cluster.members.push(snippet.hotspot),
            None => clusters.push(HotspotCluster {
                members: vec![snippet.hotspot],
                representative: snippet,
            }),
        }
    }
    clusters.sort_by_key(|c| std::cmp::Reverse(c.members.len()));
    clusters
}

/// Scans `candidates` in a layout for locations matching a cluster
/// representative: the snippet captured at the candidate must be at least
/// `similarity_threshold` similar. Returns the matching candidate points.
///
/// # Errors
///
/// Propagates snippet-capture errors (non-positive radius).
pub fn find_matches(
    config: &HotspotConfig,
    representative: &HotspotSnippet,
    shapes: &[Polygon],
    candidates: &[Point],
) -> Result<Vec<Point>> {
    let mut matches = Vec::new();
    for &candidate in candidates {
        let probe = Hotspot {
            x_nm: candidate.x as f64,
            y_nm: candidate.y as f64,
            ..representative.hotspot
        };
        let snippet = HotspotSnippet::capture(config, probe, shapes)?;
        if representative.similarity(&snippet) >= config.similarity_threshold {
            matches.push(candidate);
        }
    }
    Ok(matches)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::orc::HotspotKind;

    fn hotspot_at(x: f64, y: f64) -> Hotspot {
        Hotspot {
            kind: HotspotKind::EpeViolation,
            x_nm: x,
            y_nm: y,
            value: -10.0,
        }
    }

    fn line(x0: Coord, x1: Coord, y0: Coord, y1: Coord) -> Polygon {
        Polygon::from(Rect::new(x0, y0, x1, y1).expect("rect"))
    }

    /// Two line-end patterns at different chip locations + one dense-line
    /// pattern.
    fn test_shapes() -> Vec<Polygon> {
        vec![
            line(-45, 45, -600, 0),         // line end near (0, 0)
            line(4955, 5045, 4400, 5000),   // same line-end pattern at (5000, 5000)
            line(9955, 10045, 9000, 11000), // through line at (10000, 10000)
            line(9735, 9825, 9000, 11000),  // with a dense neighbour
        ]
    }

    #[test]
    fn identical_patterns_cluster_together() {
        let cfg = HotspotConfig::standard();
        let shapes = test_shapes();
        let snippets = vec![
            HotspotSnippet::capture(&cfg, hotspot_at(0.0, 0.0), &shapes).expect("snippet"),
            HotspotSnippet::capture(&cfg, hotspot_at(5000.0, 5000.0), &shapes).expect("snippet"),
            HotspotSnippet::capture(&cfg, hotspot_at(10000.0, 10000.0), &shapes).expect("snippet"),
        ];
        assert!(snippets[0].similarity(&snippets[1]) > 0.9);
        assert!(snippets[0].similarity(&snippets[2]) < 0.7);
        let clusters = cluster_hotspots(&cfg, snippets);
        assert_eq!(clusters.len(), 2);
        assert_eq!(clusters[0].members.len(), 2); // the repeated line-end
        assert_eq!(clusters[1].members.len(), 1);
    }

    #[test]
    fn similarity_is_reflexive_and_symmetric() {
        let cfg = HotspotConfig::standard();
        let shapes = test_shapes();
        let a = HotspotSnippet::capture(&cfg, hotspot_at(0.0, 0.0), &shapes).expect("snippet");
        let b =
            HotspotSnippet::capture(&cfg, hotspot_at(10000.0, 10000.0), &shapes).expect("snippet");
        assert!((a.similarity(&a) - 1.0).abs() < 1e-12);
        assert!((a.similarity(&b) - b.similarity(&a)).abs() < 1e-12);
    }

    #[test]
    fn pattern_matching_finds_repeats() {
        let cfg = HotspotConfig::standard();
        let shapes = test_shapes();
        let representative =
            HotspotSnippet::capture(&cfg, hotspot_at(0.0, 0.0), &shapes).expect("snippet");
        let candidates = vec![
            Point::new(5000, 5000),   // true repeat
            Point::new(10000, 10000), // different pattern
            Point::new(20000, 20000), // empty area
        ];
        let matches = find_matches(&cfg, &representative, &shapes, &candidates).expect("matching");
        assert_eq!(matches, vec![Point::new(5000, 5000)]);
    }

    #[test]
    fn density_reflects_occupancy() {
        let cfg = HotspotConfig::standard();
        let shapes = test_shapes();
        let line_end =
            HotspotSnippet::capture(&cfg, hotspot_at(0.0, 0.0), &shapes).expect("snippet");
        let empty =
            HotspotSnippet::capture(&cfg, hotspot_at(20000.0, 20000.0), &shapes).expect("snippet");
        assert!(line_end.density() > 0.01);
        assert_eq!(empty.density(), 0.0);
        // Two empty snippets are vacuously identical.
        let empty2 =
            HotspotSnippet::capture(&cfg, hotspot_at(30000.0, 30000.0), &shapes).expect("snippet");
        assert_eq!(empty.similarity(&empty2), 1.0);
    }

    #[test]
    fn clusters_sorted_by_population() {
        let cfg = HotspotConfig::standard();
        let shapes = test_shapes();
        // Three copies of pattern A (same location → identical snippets),
        // one of pattern B.
        let snippets = vec![
            HotspotSnippet::capture(&cfg, hotspot_at(10000.0, 10000.0), &shapes).expect("s"),
            HotspotSnippet::capture(&cfg, hotspot_at(0.0, 0.0), &shapes).expect("s"),
            HotspotSnippet::capture(&cfg, hotspot_at(0.0, 0.0), &shapes).expect("s"),
            HotspotSnippet::capture(&cfg, hotspot_at(0.0, 0.0), &shapes).expect("s"),
        ];
        let clusters = cluster_hotspots(&cfg, snippets);
        assert_eq!(clusters[0].members.len(), 3);
        assert!(clusters
            .windows(2)
            .all(|w| w[0].members.len() >= w[1].members.len()));
    }
}
