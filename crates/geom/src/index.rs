//! Uniform-grid spatial index for rectangles.
//!
//! Full-chip operations (neighbourhood queries for litho context, net↔shape
//! cross-referencing, ORC hotspot lookup) need fast "which shapes are near
//! this window" queries. A uniform bucket grid is ideal for standard-cell
//! layouts, where shape sizes are tightly clustered around the cell pitch.

use crate::point::Coord;
use crate::rect::Rect;

/// A spatial index mapping rectangles to caller-defined payloads.
///
/// ```
/// use postopc_geom::{GridIndex, Rect};
/// # fn main() -> Result<(), postopc_geom::GeomError> {
/// let mut idx = GridIndex::new(1000);
/// idx.insert(Rect::new(0, 0, 90, 600)?, "gate-a");
/// idx.insert(Rect::new(5000, 0, 5090, 600)?, "gate-b");
/// let near = idx.query(Rect::new(-10, -10, 200, 700)?);
/// assert_eq!(near.len(), 1);
/// assert_eq!(*near[0].1, "gate-a");
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct GridIndex<T> {
    cell: Coord,
    items: Vec<(Rect, T)>,
    buckets: std::collections::HashMap<(Coord, Coord), Vec<usize>>,
}

impl<T> GridIndex<T> {
    /// Creates an index with the given bucket size in nm.
    ///
    /// # Panics
    ///
    /// Panics if `cell <= 0`; the bucket size is a compile-time-style
    /// configuration choice, not user data.
    pub fn new(cell: Coord) -> GridIndex<T> {
        assert!(cell > 0, "bucket size must be positive, got {cell}");
        GridIndex {
            cell,
            items: Vec::new(),
            buckets: std::collections::HashMap::new(),
        }
    }

    /// Number of indexed items.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the index is empty.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Inserts a rectangle with its payload; returns the item id.
    pub fn insert(&mut self, rect: Rect, payload: T) -> usize {
        let id = self.items.len();
        for key in self.bucket_range(&rect) {
            self.buckets.entry(key).or_default().push(id);
        }
        self.items.push((rect, payload));
        id
    }

    /// All items whose rectangle interior intersects `window`, in insertion
    /// order and without duplicates.
    pub fn query(&self, window: Rect) -> Vec<(&Rect, &T)> {
        let mut ids: Vec<usize> = Vec::new();
        for key in self.bucket_range(&window) {
            if let Some(bucket) = self.buckets.get(&key) {
                ids.extend_from_slice(bucket);
            }
        }
        ids.sort_unstable();
        ids.dedup();
        ids.into_iter()
            .filter(|&id| self.items[id].0.intersects(&window))
            .map(|id| (&self.items[id].0, &self.items[id].1))
            .collect()
    }

    /// The item with the given id, if it exists.
    pub fn get(&self, id: usize) -> Option<(&Rect, &T)> {
        self.items.get(id).map(|(r, t)| (r, t))
    }

    /// Iterator over all `(rect, payload)` items in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&Rect, &T)> {
        self.items.iter().map(|(r, t)| (r, t))
    }

    fn bucket_range(&self, rect: &Rect) -> impl Iterator<Item = (Coord, Coord)> {
        let bx0 = rect.left().div_euclid(self.cell);
        let bx1 = rect.right().div_euclid(self.cell);
        let by0 = rect.bottom().div_euclid(self.cell);
        let by1 = rect.top().div_euclid(self.cell);
        (by0..=by1).flat_map(move |by| (bx0..=bx1).map(move |bx| (bx, by)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(x0: Coord, y0: Coord, x1: Coord, y1: Coord) -> Rect {
        Rect::new(x0, y0, x1, y1).expect("rect")
    }

    #[test]
    fn query_finds_only_intersecting() {
        let mut idx = GridIndex::new(100);
        idx.insert(r(0, 0, 50, 50), 1);
        idx.insert(r(200, 200, 250, 250), 2);
        idx.insert(r(40, 40, 220, 220), 3);
        let hits: Vec<i32> = idx
            .query(r(45, 45, 60, 60))
            .iter()
            .map(|(_, &v)| v)
            .collect();
        assert_eq!(hits, vec![1, 3]);
    }

    #[test]
    fn large_rect_spanning_buckets_found_once() {
        let mut idx = GridIndex::new(10);
        idx.insert(r(0, 0, 1000, 1000), "big");
        let hits = idx.query(r(500, 500, 510, 510));
        assert_eq!(hits.len(), 1);
    }

    #[test]
    fn negative_coordinates_work() {
        let mut idx = GridIndex::new(64);
        idx.insert(r(-500, -500, -400, -400), "neg");
        assert_eq!(idx.query(r(-450, -450, -440, -440)).len(), 1);
        assert_eq!(idx.query(r(0, 0, 10, 10)).len(), 0);
    }

    #[test]
    fn touching_rects_do_not_intersect() {
        let mut idx = GridIndex::new(100);
        idx.insert(r(0, 0, 10, 10), ());
        assert!(idx.query(r(10, 0, 20, 10)).is_empty());
    }

    #[test]
    fn len_and_get() {
        let mut idx = GridIndex::new(100);
        assert!(idx.is_empty());
        let id = idx.insert(r(0, 0, 10, 10), 42);
        assert_eq!(idx.len(), 1);
        assert_eq!(idx.get(id).map(|(_, &v)| v), Some(42));
        assert!(idx.get(99).is_none());
    }
}
