//! Monte Carlo statistical timing.
//!
//! Experiment T6's engine: sample per-gate channel lengths either around
//! the *drawn* value (the traditional assumption) or around *extracted*
//! post-OPC values (the paper's proposal), run full STA per sample, and
//! compare the resulting worst-slack distributions against the corner
//! bound.
//!
//! [`run`] evaluates samples through the compiled evaluator
//! ([`crate::CompiledSta`]) with per-worker scratch; [`run_reference`] is
//! the retained naive baseline (one [`TimingModel::analyze`] per sample)
//! that the compiled engine is proven bit-identical to.

use crate::annotate::{CdAnnotation, GateAnnotation, TransistorCd};
use crate::compiled::CompiledSta;
use crate::error::{Result, StaError};
use crate::graph::TimingModel;
use postopc_layout::GateId;
use postopc_rng::rngs::StdRng;
use postopc_rng::{split_seed, RngExt, SeedableRng};

/// Monte Carlo configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct MonteCarloConfig {
    /// Number of samples.
    pub samples: usize,
    /// Standard deviation of the random per-gate CD residual, in nm.
    pub sigma_nm: f64,
    /// RNG seed (runs are deterministic given the config).
    pub seed: u64,
    /// Worker-thread override (`None` resolves `POSTOPC_THREADS`, then
    /// the hardware). Results are identical for any thread count.
    pub threads: Option<usize>,
}

impl Default for MonteCarloConfig {
    fn default() -> Self {
        MonteCarloConfig {
            samples: 500,
            sigma_nm: 2.0,
            seed: 1,
            threads: None,
        }
    }
}

/// Distribution summary of a Monte Carlo run.
#[derive(Debug, Clone, PartialEq)]
pub struct MonteCarloResult {
    worst_slacks_ps: Vec<f64>,
    critical_delays_ps: Vec<f64>,
    leakages_ua: Vec<f64>,
    /// Worst slacks sorted ascending, computed once at construction so
    /// quantile queries are O(1) instead of a clone+sort per call.
    sorted_worst_slacks_ps: Vec<f64>,
}

impl MonteCarloResult {
    /// Assembles a result from per-sample vectors (sample order), sorting
    /// the quantile view once.
    pub fn new(
        worst_slacks_ps: Vec<f64>,
        critical_delays_ps: Vec<f64>,
        leakages_ua: Vec<f64>,
    ) -> MonteCarloResult {
        let mut sorted_worst_slacks_ps = worst_slacks_ps.clone();
        sorted_worst_slacks_ps.sort_by(f64::total_cmp);
        MonteCarloResult {
            worst_slacks_ps,
            critical_delays_ps,
            leakages_ua,
            sorted_worst_slacks_ps,
        }
    }

    /// Worst slack of each sample, in ps (sample order).
    pub fn worst_slacks_ps(&self) -> &[f64] {
        &self.worst_slacks_ps
    }

    /// Critical delay of each sample, in ps (sample order).
    pub fn critical_delays_ps(&self) -> &[f64] {
        &self.critical_delays_ps
    }

    /// Total leakage of each sample, in µA (sample order).
    pub fn leakages_ua(&self) -> &[f64] {
        &self.leakages_ua
    }

    /// Mean of the worst-slack distribution, in ps.
    pub fn mean_worst_slack_ps(&self) -> f64 {
        mean(&self.worst_slacks_ps)
    }

    /// Standard deviation of the worst-slack distribution, in ps.
    pub fn std_worst_slack_ps(&self) -> f64 {
        std(&self.worst_slacks_ps)
    }

    /// The `q`-quantile (0..=1) of the worst-slack distribution, in ps.
    ///
    /// # Panics
    ///
    /// Panics if the result is empty (configs with `samples == 0` are
    /// rejected up front).
    pub fn worst_slack_quantile_ps(&self, q: f64) -> f64 {
        let sorted = &self.sorted_worst_slacks_ps;
        let idx = ((sorted.len() - 1) as f64 * q.clamp(0.0, 1.0)).round() as usize;
        sorted[idx]
    }

    /// Mean critical delay, in ps.
    pub fn mean_critical_delay_ps(&self) -> f64 {
        mean(&self.critical_delays_ps)
    }

    /// Mean leakage, in µA.
    pub fn mean_leakage_ua(&self) -> f64 {
        mean(&self.leakages_ua)
    }
}

fn mean(v: &[f64]) -> f64 {
    v.iter().sum::<f64>() / v.len().max(1) as f64
}

fn std(v: &[f64]) -> f64 {
    let m = mean(v);
    (v.iter().map(|x| (x - m).powi(2)).sum::<f64>() / v.len().max(1) as f64).sqrt()
}

fn validate(config: &MonteCarloConfig) -> Result<()> {
    if config.samples == 0 {
        return Err(StaError::InvalidMonteCarlo("samples must be > 0".into()));
    }
    if !(config.sigma_nm.is_finite() && config.sigma_nm >= 0.0) {
        return Err(StaError::InvalidMonteCarlo(format!(
            "sigma must be finite and non-negative, got {}",
            config.sigma_nm
        )));
    }
    Ok(())
}

/// Base (systematic) records per gate: the extracted annotation where
/// present, drawn dimensions elsewhere.
fn base_records(
    model: &TimingModel<'_>,
    systematic: Option<&CdAnnotation>,
) -> Vec<Vec<TransistorCd>> {
    model
        .design()
        .netlist()
        .gates()
        .iter()
        .enumerate()
        .map(
            |(gi, gate)| match systematic.and_then(|a| a.gate(GateId(gi as u32))) {
                Some(ann) => ann.transistors.clone(),
                None => model
                    .library()
                    .drawn_transistors(gate.kind, gate.drive)
                    .to_vec(),
            },
        )
        .collect()
}

/// Runs Monte Carlo timing through the compiled evaluator.
///
/// Per-gate channel lengths are sampled as
/// `L = base(gate) + N(0, sigma_nm)`, where `base` comes from
/// `systematic` (the extracted annotation) or the drawn dimensions when
/// `systematic` is `None`. The same random shift is applied to all fingers
/// of one gate (intra-gate variation is already captured by slice
/// extraction), and the shift is quantized to a `sigma / 16` grid (see
/// [`sampled_shift`]) so characterization memoizes per `(cell, grid bin)`
/// instead of running once per gate per sample.
///
/// The design is compiled once; each worker reuses one
/// [`crate::StaScratch`] (propagation buffers + characterization caches)
/// across its samples via `par_map_init`. Each sample derives its own RNG
/// stream from `(seed, sample index)`, so results are bit-identical to
/// [`run_reference`] for any thread count.
///
/// # Errors
///
/// Returns [`StaError::InvalidMonteCarlo`] for zero samples or a negative
/// sigma; propagates analysis errors.
pub fn run(
    model: &TimingModel<'_>,
    systematic: Option<&CdAnnotation>,
    config: &MonteCarloConfig,
) -> Result<MonteCarloResult> {
    let compiled = model.compile()?;
    run_with(&compiled, systematic, config)
}

/// [`run`] against an existing compiled evaluator: flows that already
/// hold a [`CompiledSta`] (drawn analysis, corner sweeps) share it
/// instead of compiling a fresh one per Monte Carlo run. Workers still
/// own per-thread scratches internally (via `par_map_init`), so no
/// scratch is taken here.
///
/// # Errors
///
/// Returns [`StaError::InvalidMonteCarlo`] for zero samples or a negative
/// sigma; propagates analysis errors.
pub fn run_with(
    compiled: &CompiledSta<'_>,
    systematic: Option<&CdAnnotation>,
    config: &MonteCarloConfig,
) -> Result<MonteCarloResult> {
    validate(config)?;
    let model = compiled.model();
    let bases = base_records(model, systematic);
    let cells = compiled.sample_cells(&bases);
    let sample_indices: Vec<u64> = (0..config.samples as u64).collect();
    let threads = postopc_parallel::effective_threads(config.threads);
    let summaries = postopc_parallel::try_par_map_init(
        threads,
        &sample_indices,
        || compiled.scratch(),
        |scratch, _, &sample| {
            let mut rng = StdRng::seed_from_u64(split_seed(config.seed, sample));
            // One shift per gate, drawn in gate order — the same stream
            // the reference engine consumes.
            compiled.evaluate_shifted(scratch, &cells, |_| {
                sampled_shift(&mut rng, config.sigma_nm)
            })
        },
    )?;
    let mut worst = Vec::with_capacity(config.samples);
    let mut delays = Vec::with_capacity(config.samples);
    let mut leaks = Vec::with_capacity(config.samples);
    for s in summaries {
        worst.push(s.worst_slack_ps);
        delays.push(s.critical_delay_ps);
        leaks.push(s.leakage_ua);
    }
    Ok(MonteCarloResult::new(worst, delays, leaks))
}

/// The naive Monte Carlo baseline: one full [`TimingModel::analyze`] —
/// fresh annotation HashMap, wires, characterization and report vectors —
/// per sample.
///
/// Retained as the reference implementation the compiled engine ([`run`])
/// is benchmarked against and proven bit-identical to; use [`run`]
/// everywhere else.
///
/// # Errors
///
/// Returns [`StaError::InvalidMonteCarlo`] for zero samples or a negative
/// sigma; propagates analysis errors.
pub fn run_reference(
    model: &TimingModel<'_>,
    systematic: Option<&CdAnnotation>,
    config: &MonteCarloConfig,
) -> Result<MonteCarloResult> {
    validate(config)?;
    let bases = base_records(model, systematic);
    let sample_indices: Vec<u64> = (0..config.samples as u64).collect();
    let threads = postopc_parallel::effective_threads(config.threads);
    let reports = postopc_parallel::try_par_map(threads, &sample_indices, |_, &sample| {
        let mut rng = StdRng::seed_from_u64(split_seed(config.seed, sample));
        let mut ann = CdAnnotation::new();
        for (gi, base) in bases.iter().enumerate() {
            let (_, shift) = sampled_shift(&mut rng, config.sigma_nm);
            let mut records = base.clone();
            for r in &mut records {
                r.l_delay_nm = (r.l_delay_nm + shift).max(1.0);
                r.l_leakage_nm = (r.l_leakage_nm + shift).max(1.0);
            }
            ann.set_gate(
                GateId(gi as u32),
                GateAnnotation {
                    transistors: records,
                },
            );
        }
        let report = model.analyze(Some(&ann))?;
        Ok::<_, StaError>((
            report.worst_slack_ps(),
            report.critical_delay_ps(),
            report.leakage_ua(),
        ))
    })?;
    let mut worst = Vec::with_capacity(config.samples);
    let mut delays = Vec::with_capacity(config.samples);
    let mut leaks = Vec::with_capacity(config.samples);
    for (slack, delay, leakage) in reports {
        worst.push(slack);
        delays.push(delay);
        leaks.push(leakage);
    }
    Ok(MonteCarloResult::new(worst, delays, leaks))
}

/// Shift-grid resolution: bins per sigma. The sampled distribution is a
/// normal discretized to steps of `sigma / 16` — a quantization error of
/// at most `sigma / 32` (3% of sigma), far below Monte Carlo sampling
/// noise at any practical sample count, in exchange for characterization
/// collapsing to one device-model run per `(cell, bin)`.
const SHIFT_BINS_PER_SIGMA: f64 = 16.0;

/// One per-gate CD shift: a standard-normal draw scaled by `sigma_nm` and
/// rounded to the shift grid. Returns the grid bin and the shift in nm
/// (`bin * sigma / 16` exactly — the bin is the cache identity of the
/// shift). Both Monte Carlo engines sample through this one function, so
/// their per-gate CDs agree bit for bit.
fn sampled_shift(rng: &mut StdRng, sigma_nm: f64) -> (i32, f64) {
    let raw = normal(rng) * sigma_nm;
    if sigma_nm == 0.0 {
        return (0, 0.0);
    }
    let step = sigma_nm / SHIFT_BINS_PER_SIGMA;
    let bin = (raw / step).round();
    (bin as i32, bin * step)
}

/// Standard normal sample (Box–Muller).
fn normal(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.random_range(f64::EPSILON..1.0);
    let u2: f64 = rng.random_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use postopc_device::ProcessParams;
    use postopc_layout::{generate, Design, TechRules};

    fn design() -> Design {
        Design::compile(
            generate::ripple_carry_adder(2).expect("netlist"),
            TechRules::n90(),
        )
        .expect("design")
    }

    #[test]
    fn rejects_bad_config() {
        let d = design();
        let m = TimingModel::new(&d, ProcessParams::n90(), 800.0).expect("model");
        assert!(run(
            &m,
            None,
            &MonteCarloConfig {
                samples: 0,
                ..Default::default()
            }
        )
        .is_err());
        assert!(run(
            &m,
            None,
            &MonteCarloConfig {
                sigma_nm: -1.0,
                ..Default::default()
            }
        )
        .is_err());
    }

    #[test]
    fn deterministic_given_seed() {
        let d = design();
        let m = TimingModel::new(&d, ProcessParams::n90(), 800.0).expect("model");
        let cfg = MonteCarloConfig {
            samples: 20,
            sigma_nm: 2.0,
            seed: 42,
            threads: None,
        };
        let a = run(&m, None, &cfg).expect("mc");
        let b = run(&m, None, &cfg).expect("mc");
        assert_eq!(a.worst_slacks_ps(), b.worst_slacks_ps());
    }

    #[test]
    fn thread_count_does_not_change_results() {
        let d = design();
        let m = TimingModel::new(&d, ProcessParams::n90(), 800.0).expect("model");
        let base = MonteCarloConfig {
            samples: 24,
            sigma_nm: 2.0,
            seed: 5,
            threads: Some(1),
        };
        let one = run(&m, None, &base).expect("mc");
        for threads in [2, 4, 7] {
            let cfg = MonteCarloConfig {
                threads: Some(threads),
                ..base.clone()
            };
            let many = run(&m, None, &cfg).expect("mc");
            assert_eq!(one, many, "threads = {threads}");
        }
    }

    #[test]
    fn zero_sigma_collapses_to_nominal() {
        let d = design();
        let m = TimingModel::new(&d, ProcessParams::n90(), 800.0).expect("model");
        let cfg = MonteCarloConfig {
            samples: 5,
            sigma_nm: 0.0,
            seed: 1,
            threads: None,
        };
        let mc = run(&m, None, &cfg).expect("mc");
        let nominal = m.analyze(None).expect("nominal");
        for &s in mc.worst_slacks_ps() {
            assert!((s - nominal.worst_slack_ps()).abs() < 1e-9);
        }
        assert!(mc.std_worst_slack_ps() < 1e-12);
    }

    #[test]
    fn variance_grows_with_sigma() {
        let d = design();
        let m = TimingModel::new(&d, ProcessParams::n90(), 800.0).expect("model");
        let small = run(
            &m,
            None,
            &MonteCarloConfig {
                samples: 60,
                sigma_nm: 1.0,
                seed: 3,
                threads: None,
            },
        )
        .expect("mc");
        let large = run(
            &m,
            None,
            &MonteCarloConfig {
                samples: 60,
                sigma_nm: 4.0,
                seed: 3,
                threads: None,
            },
        )
        .expect("mc");
        assert!(large.std_worst_slack_ps() > 2.0 * small.std_worst_slack_ps());
    }

    #[test]
    fn quantiles_are_ordered() {
        let d = design();
        let m = TimingModel::new(&d, ProcessParams::n90(), 800.0).expect("model");
        let mc = run(
            &m,
            None,
            &MonteCarloConfig {
                samples: 100,
                sigma_nm: 2.0,
                seed: 9,
                threads: None,
            },
        )
        .expect("mc");
        let q01 = mc.worst_slack_quantile_ps(0.01);
        let q50 = mc.worst_slack_quantile_ps(0.5);
        let q99 = mc.worst_slack_quantile_ps(0.99);
        assert!(q01 <= q50 && q50 <= q99);
        assert!((q50 - mc.mean_worst_slack_ps()).abs() < 3.0 * mc.std_worst_slack_ps() + 1e-9);
        // The cached quantile view spans the sample extremes.
        assert_eq!(
            mc.worst_slack_quantile_ps(0.0),
            mc.worst_slacks_ps()
                .iter()
                .cloned()
                .fold(f64::INFINITY, f64::min)
        );
    }
}
