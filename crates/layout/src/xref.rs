//! Netlist ↔ geometry cross-reference.
//!
//! The heart of the paper's methodology is a *traceable correspondence*
//! between selected netlist gates and their silicon geometry ("tagging
//! critical gates, post-OPC layout back-annotation, and selective
//! extraction from the global circuit netlist"). [`TransistorSite`] is that
//! correspondence: one record per transistor channel, in chip coordinates,
//! carrying the netlist ids needed to put extracted CDs back into timing.

use crate::library::CellLibrary;
use crate::netlist::{GateId, Netlist};
use crate::place::Placement;
use postopc_device::MosKind;
use postopc_geom::Rect;

/// One transistor channel of the placed design, in chip coordinates.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TransistorSite {
    /// The netlist gate instance this channel belongs to.
    pub gate: GateId,
    /// Device polarity.
    pub kind: MosKind,
    /// Channel region (poly ∩ active) in chip coordinates.
    pub channel: Rect,
    /// Channel width in nm.
    pub width_nm: f64,
    /// Drawn channel length in nm.
    pub drawn_l_nm: f64,
    /// Finger index within the cell.
    pub finger: usize,
}

impl TransistorSite {
    /// Whether the channel is horizontal current flow (vertical poly
    /// finger crossing a horizontal active stripe). After placement all
    /// our channels are; kept as data for generality.
    pub fn gate_is_vertical(&self) -> bool {
        self.channel.height() > self.channel.width()
    }
}

/// Enumerates every transistor channel of the placed design.
///
/// Order: placement order, then cell transistor order — deterministic for
/// a given design.
pub fn transistor_sites(
    netlist: &Netlist,
    placement: &Placement,
    library: &CellLibrary,
) -> Vec<TransistorSite> {
    let mut sites = Vec::new();
    for inst in placement.instances() {
        let g = netlist.gate(inst.gate);
        let cell = library.cell(g.kind, g.drive);
        for t in cell.transistors() {
            sites.push(TransistorSite {
                gate: inst.gate,
                kind: t.kind,
                channel: inst.transform.apply_rect(t.channel),
                width_nm: t.width_nm,
                drawn_l_nm: t.length_nm,
                finger: t.finger,
            });
        }
    }
    sites
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate;
    use crate::tech::TechRules;

    #[test]
    fn sites_cover_all_gates() {
        let nl = generate::ripple_carry_adder(2).expect("netlist");
        let lib = CellLibrary::new(TechRules::n90()).expect("library");
        let p = Placement::place(&nl, &lib).expect("placement");
        let sites = transistor_sites(&nl, &p, &lib);
        // Every NAND2 has 4 transistors (2 fingers × N/P).
        assert_eq!(sites.len(), nl.gate_count() * 4);
        let gates: std::collections::HashSet<GateId> = sites.iter().map(|s| s.gate).collect();
        assert_eq!(gates.len(), nl.gate_count());
    }

    #[test]
    fn channels_are_inside_die_and_vertical() {
        let nl = generate::inverter_chain(20).expect("netlist");
        let lib = CellLibrary::new(TechRules::n90()).expect("library");
        let p = Placement::place(&nl, &lib).expect("placement");
        for site in transistor_sites(&nl, &p, &lib) {
            assert!(p.die().contains_rect(&site.channel));
            assert!(site.gate_is_vertical());
            assert_eq!(site.channel.width(), 90);
            assert_eq!(site.drawn_l_nm, 90.0);
        }
    }

    #[test]
    fn mirrored_rows_preserve_channel_size() {
        let nl = generate::inverter_chain(60).expect("netlist");
        let lib = CellLibrary::new(TechRules::n90()).expect("library");
        let p = Placement::place(&nl, &lib).expect("placement");
        assert!(p.rows() > 1, "need a mirrored row for this test");
        for site in transistor_sites(&nl, &p, &lib) {
            assert_eq!(site.channel.width(), 90);
            assert!(site.channel.height() >= 420);
        }
    }
}
