/root/repo/target/release/deps/postopc-88393de6bfc66f6b.d: crates/core/src/bin/postopc.rs Cargo.toml

/root/repo/target/release/deps/libpostopc-88393de6bfc66f6b.rmeta: crates/core/src/bin/postopc.rs Cargo.toml

crates/core/src/bin/postopc.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
