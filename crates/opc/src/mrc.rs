//! MRC — mask rule checking.
//!
//! OPC moves edges; mask shops constrain what they will write. The MRC
//! pass verifies corrected mask polygons against minimum-feature,
//! minimum-space and maximum-vertex-count rules so a correction that
//! passes ORC cannot still be unmanufacturable as a mask.

use postopc_geom::{Coord, GridIndex, Point, Polygon};

/// Mask manufacturing rules (wafer-scale nm; mask shops quote 4× reticle
/// numbers, we stay in wafer dimensions like OPC tools do).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MrcRules {
    /// Minimum feature dimension on the mask.
    pub min_feature: Coord,
    /// Minimum space between mask features.
    pub min_space: Coord,
    /// Maximum vertices per polygon (mask-writer fracture limit).
    pub max_vertices: usize,
}

impl MrcRules {
    /// Typical 90 nm-node mask rules: 40 nm features and spaces (wafer
    /// scale) and a generous vertex budget.
    pub fn standard() -> MrcRules {
        MrcRules {
            min_feature: 40,
            min_space: 40,
            max_vertices: 200,
        }
    }
}

impl Default for MrcRules {
    fn default() -> Self {
        MrcRules::standard()
    }
}

/// The rule class an MRC violation belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MrcViolationKind {
    /// A decomposition band narrower than `min_feature`.
    Feature,
    /// Two mask polygons closer than `min_space`.
    Space,
    /// A polygon with more vertices than the writer accepts.
    VertexCount,
}

/// One MRC violation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MrcViolation {
    /// Rule class.
    pub kind: MrcViolationKind,
    /// Index of the offending polygon in the checked mask.
    pub polygon: usize,
    /// Marker location.
    pub location: Point,
    /// Measured value (nm for dimensions, count for vertices).
    pub measured: i64,
}

/// Checks a corrected mask against mask rules.
pub fn check_mask(rules: &MrcRules, mask: &[Polygon]) -> Vec<MrcViolation> {
    let mut violations = Vec::new();
    for (pi, polygon) in mask.iter().enumerate() {
        if polygon.vertices().len() > rules.max_vertices {
            violations.push(MrcViolation {
                kind: MrcViolationKind::VertexCount,
                polygon: pi,
                location: polygon.bbox().center(),
                measured: polygon.vertices().len() as i64,
            });
        }
        for rect in polygon.to_rects() {
            let w = rect.width().min(rect.height());
            if w < rules.min_feature {
                violations.push(MrcViolation {
                    kind: MrcViolationKind::Feature,
                    polygon: pi,
                    location: rect.center(),
                    measured: w,
                });
            }
        }
    }
    // Pairwise spacing via a bucket index.
    let mut index: GridIndex<usize> = GridIndex::new((4 * rules.min_space).max(1));
    for (i, p) in mask.iter().enumerate() {
        index.insert(p.bbox(), i);
    }
    let mut reported = std::collections::HashSet::new();
    for (i, p) in mask.iter().enumerate() {
        let Ok(search) = p.bbox().expand(rules.min_space) else {
            continue;
        };
        for (_, &j) in index.query(search) {
            if j <= i || !reported.insert((i, j)) {
                continue;
            }
            let gap = min_gap(p, &mask[j]);
            if gap > 0 && gap < rules.min_space {
                violations.push(MrcViolation {
                    kind: MrcViolationKind::Space,
                    polygon: i,
                    location: Point::new(
                        (p.bbox().center().x + mask[j].bbox().center().x) / 2,
                        (p.bbox().center().y + mask[j].bbox().center().y) / 2,
                    ),
                    measured: gap,
                });
            }
        }
    }
    violations
}

fn min_gap(a: &Polygon, b: &Polygon) -> Coord {
    let mut best = f64::MAX;
    for ra in a.to_rects() {
        for rb in b.to_rects() {
            best = best.min(ra.gap(&rb));
        }
    }
    best.round() as Coord
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{self, ModelOpcConfig};
    use crate::rules::{self, RuleOpcConfig};
    use crate::sraf;
    use postopc_geom::Rect;

    fn line(x0: Coord, x1: Coord) -> Polygon {
        Polygon::from(Rect::new(x0, -300, x1, 300).expect("rect"))
    }

    #[test]
    fn clean_mask_passes() {
        let mask = vec![line(0, 90), line(280, 370)];
        assert!(check_mask(&MrcRules::standard(), &mask).is_empty());
    }

    #[test]
    fn thin_feature_flagged() {
        let mask = vec![Polygon::from(Rect::new(0, 0, 30, 500).expect("rect"))];
        let v = check_mask(&MrcRules::standard(), &mask);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].kind, MrcViolationKind::Feature);
        assert_eq!(v[0].measured, 30);
    }

    #[test]
    fn tight_space_flagged() {
        let mask = vec![line(0, 90), line(120, 210)]; // 30 nm gap
        let v = check_mask(&MrcRules::standard(), &mask);
        assert!(v
            .iter()
            .any(|v| v.kind == MrcViolationKind::Space && v.measured == 30));
    }

    #[test]
    fn vertex_budget_flagged() {
        // A long comb with many teeth exceeds a tiny vertex budget.
        let target = Polygon::from(Rect::new(0, 0, 90, 2000).expect("rect"));
        let frag = crate::fragment::FragmentedPolygon::new(
            &target,
            &crate::fragment::FragmentSpec::standard(),
        )
        .expect("fragment");
        let offsets: Vec<Coord> = (0..frag.len()).map(|i| (i % 2) as Coord * 3).collect();
        let jagged = frag.apply_offsets(&offsets).expect("apply");
        let rules = MrcRules {
            max_vertices: 8,
            ..MrcRules::standard()
        };
        let v = check_mask(&rules, &[jagged]);
        assert!(v.iter().any(|v| v.kind == MrcViolationKind::VertexCount));
    }

    #[test]
    fn opc_outputs_are_mask_manufacturable() {
        // The production recipes (rule and model OPC + SRAFs) must emit
        // MRC-clean masks on a representative dense/iso pattern.
        let targets = vec![line(-45, 45), line(-325, -235), line(515, 605)];
        let window = Rect::new(-500, -450, 800, 450).expect("rect");
        let rule = rules::correct(&RuleOpcConfig::standard(), &targets, &[]).expect("rule");
        let model_result =
            model::correct(&ModelOpcConfig::standard(), &targets, &[], window).expect("model");
        let bars = sraf::insert_srafs(&sraf::SrafConfig::standard(), &targets, &[]).expect("sraf");
        for (name, mask) in [
            ("rule", &rule.corrected),
            ("model", &model_result.corrected),
            ("sraf", &bars),
        ] {
            let v = check_mask(&MrcRules::standard(), mask);
            assert!(
                v.is_empty(),
                "{name} OPC output violates mask rules: {:?}",
                v.first()
            );
        }
    }
}
