/root/repo/target/debug/deps/properties-69b6a17ccb4f51a6.d: crates/device/tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-69b6a17ccb4f51a6.rmeta: crates/device/tests/properties.rs Cargo.toml

crates/device/tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
