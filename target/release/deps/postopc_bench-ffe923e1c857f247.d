/root/repo/target/release/deps/postopc_bench-ffe923e1c857f247.d: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/timing.rs Cargo.toml

/root/repo/target/release/deps/libpostopc_bench-ffe923e1c857f247.rmeta: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/timing.rs Cargo.toml

crates/bench/src/lib.rs:
crates/bench/src/experiments.rs:
crates/bench/src/timing.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
