//! # postopc-opc
//!
//! Optical proximity correction for the post-OPC timing flow:
//!
//! - [`fragment`]: edge fragmentation with corner/line-end classification;
//! - [`rules`]: table-driven rule OPC (bias tables, hammerheads) — the
//!   cheap path;
//! - [`model`]: iterative model-based OPC with damped EPE feedback — the
//!   accurate path;
//! - [`sraf`]: sub-resolution assist feature insertion for isolated edges;
//! - [`orc`]: post-OPC verification (residual EPE statistics, pinch
//!   hotspots) — the source of experiment T1's distributions;
//! - [`selective`]: the paper's selective-OPC proposal — model OPC on
//!   tagged critical gates, rule OPC elsewhere.
//!
//! # Example
//!
//! ```
//! use postopc_opc::model::{self, ModelOpcConfig};
//! use postopc_geom::{Polygon, Rect};
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let gate = Polygon::from(Rect::new(-45, -300, 45, 300)?);
//! let window = Rect::new(-300, -400, 300, 400)?;
//! let result = model::correct(&ModelOpcConfig::standard(), &[gate], &[], window)?;
//! assert_eq!(result.corrected.len(), 1);
//! println!("converged to max EPE {:.1} nm", result.report.max_epe_history.last().unwrap());
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

mod error;
pub mod fragment;
pub mod hotspots;
pub mod model;
pub mod mrc;
pub mod orc;
pub mod rules;
pub mod selective;
pub mod sraf;

pub use error::{OpcError, Result};
pub use fragment::{FragmentInfo, FragmentKind, FragmentSpec, FragmentedPolygon};
pub use hotspots::{cluster_hotspots, find_matches, HotspotCluster, HotspotConfig, HotspotSnippet};
pub use model::{ModelOpcConfig, ModelOpcResult, OpcReport};
pub use mrc::{check_mask, MrcRules, MrcViolation, MrcViolationKind};
pub use orc::{Hotspot, HotspotKind, OrcConfig, OrcReport};
pub use rules::{RuleOpcConfig, RuleOpcResult};
pub use selective::SelectiveResult;
pub use sraf::SrafConfig;
