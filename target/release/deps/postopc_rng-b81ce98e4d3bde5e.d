/root/repo/target/release/deps/postopc_rng-b81ce98e4d3bde5e.d: crates/rng/src/lib.rs

/root/repo/target/release/deps/libpostopc_rng-b81ce98e4d3bde5e.rlib: crates/rng/src/lib.rs

/root/repo/target/release/deps/libpostopc_rng-b81ce98e4d3bde5e.rmeta: crates/rng/src/lib.rs

crates/rng/src/lib.rs:
