//! Umbrella package hosting workspace-level integration tests and examples.
