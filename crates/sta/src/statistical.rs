//! Monte Carlo statistical timing.
//!
//! Experiment T6's engine: sample per-gate channel lengths either around
//! the *drawn* value (the traditional assumption) or around *extracted*
//! post-OPC values (the paper's proposal), run full STA per sample, and
//! compare the resulting worst-slack distributions against the corner
//! bound.
//!
//! [`run`] evaluates samples through the compiled evaluator
//! ([`crate::CompiledSta`]); the default [`McEngine::Batched`] engine
//! processes [`LANES`](crate::LANES) samples per gate visit over a shift
//! cache prewarmed once and shared read-only across workers, and is
//! bit-identical to the scalar engine and to [`run_reference`] (one
//! [`TimingModel::analyze`] per sample) for the same sample stream.
//!
//! Four [`Sampling`] schemes share one inverse-CDF sampler (the Acklam
//! inverse normal CDF now lives in [`postopc_rng`], next to the streams
//! it inverts): plain independent draws, antithetic pairing (sample
//! `2p + 1` negates the normals of sample `2p`, cancelling odd error
//! terms), stratified Latin-hypercube sampling (each gate's `n` draws
//! occupy all `n` equiprobable strata exactly once, in a per-gate
//! deterministic random order), and tail-targeted importance sampling
//! ([`Sampling::TailIs`]: per-gate draws tilted toward the slow corner
//! along a criticality-weighted sensitivity direction, with exact
//! per-sample log-likelihood-ratio reweighting and self-normalized
//! weighted estimation). A linearized first-order control variate
//! ([`MonteCarloConfig::control_variate`]) composes with every scheme
//! and both engines. All are deterministic given the config and
//! thread-count invariant, via per-sample seed splitting.

use crate::annotate::{CdAnnotation, GateAnnotation, TransistorCd};
use crate::compiled::{CompiledSta, SampleCells, LANES};
use crate::error::{Result, StaError};
use crate::graph::TimingModel;
use postopc_layout::GateId;
use postopc_rng::rngs::StdRng;
use postopc_rng::{
    normal_quantile, normal_quantile_central, split_seed, unit_range_f64, LaneRng, RngExt,
    SeedableRng, NORMAL_QUANTILE_P_LOW as P_LOW,
};

/// How per-gate CD shifts are sampled across the run.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum Sampling {
    /// Independent standard-normal draws per sample (the baseline).
    #[default]
    Plain,
    /// Antithetic pairing: samples `2p` and `2p + 1` share one uniform
    /// stream, with the odd sample's normals negated. First-order (odd)
    /// error terms of the pair cancel, shrinking the variance of smooth
    /// statistics at the same sample count.
    Antithetic,
    /// Stratified (Latin-hypercube) sampling: for a run of `n` samples,
    /// each gate's `n` normal draws are produced by inverting one uniform
    /// jitter inside each of the `n` equiprobable strata of the normal
    /// CDF, visited in a per-gate deterministic random order. Every
    /// marginal is sampled with near-zero stratum imbalance, which
    /// collapses the variance of quantile estimates — of the *mean* and
    /// central quantiles; deep-tail order statistics stay biased low at
    /// small `n` (see [`MonteCarloResult::tail_quantile_caveat`]).
    Stratified,
    /// Tail-targeted importance sampling: every gate's draw distribution
    /// is shifted from `N(0, 1)` to `N(μ_g, 1)`, where the per-gate means
    /// `μ_g` point along the criticality-weighted slack-sensitivity
    /// direction (one extra backward pass over the compiled model, see
    /// [`crate::CompiledSta::gate_sensitivities`]) with
    /// `Σ μ_g² = tilt²` — so `tilt` is both the slow-corner push in
    /// z-units and the standard deviation of the per-sample
    /// log-likelihood ratio (the weight-degeneracy budget). Each sample
    /// carries the exact log-likelihood ratio
    /// `log w = Σ_g (μ_g²/2 − μ_g z_g)` against the nominal density, and
    /// estimates are self-normalized weighted statistics
    /// ([`MonteCarloResult::weights`]), which concentrates samples — and
    /// so estimator accuracy — on the slow tail the guardband quantiles
    /// read.
    TailIs {
        /// Slow-corner tilt in z-units (`0` degenerates to plain
        /// sampling with unit weights up to rounding; `1.0..=1.5` is the
        /// productive range for q01/q001 estimation).
        tilt: f64,
    },
}

/// Which evaluation engine a Monte Carlo run uses. Both are bit-identical
/// for the same config; the batched engine is several times faster.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum McEngine {
    /// One sample per gate visit ([`CompiledSta::evaluate_shifted`]).
    Scalar,
    /// [`LANES`](crate::LANES) samples per gate visit over a prewarmed
    /// shared shift cache ([`CompiledSta::evaluate_shifted_batch`]).
    #[default]
    Batched,
}

/// Monte Carlo configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct MonteCarloConfig {
    /// Number of samples.
    pub samples: usize,
    /// Standard deviation of the random per-gate CD residual, in nm.
    pub sigma_nm: f64,
    /// RNG seed (runs are deterministic given the config).
    pub seed: u64,
    /// Worker-thread override (`None` resolves `POSTOPC_THREADS`, then
    /// the hardware). Results are identical for any thread count.
    pub threads: Option<usize>,
    /// Variance-reduction scheme for the per-gate shift draws.
    pub sampling: Sampling,
    /// Evaluation engine (bit-identical either way; batched is faster).
    pub engine: McEngine,
    /// Attach the linearized first-order worst slack (sensitivity
    /// gradient dot sampled shifts) as a control variate: it is exactly
    /// integrable against the nominal normal (`E[C] = 0`), and the
    /// optimal coefficient `β = Cov(Y, C) / Var(C)` is estimated online
    /// from the run itself, so
    /// [`MonteCarloResult::cv_adjusted_mean_worst_slack_ps`] subtracts
    /// the linear part of the sampling noise. Composes with every
    /// [`Sampling`] scheme and both engines.
    pub control_variate: bool,
}

impl Default for MonteCarloConfig {
    fn default() -> Self {
        MonteCarloConfig {
            samples: 500,
            sigma_nm: 2.0,
            seed: 1,
            threads: None,
            sampling: Sampling::Plain,
            engine: McEngine::Batched,
            control_variate: false,
        }
    }
}

/// Shift-cache behaviour of one Monte Carlo run, summed over workers.
///
/// Diagnostic only: totals depend on how samples were partitioned across
/// per-worker caches, so they may vary with the thread count even though
/// the sampled results never do (hence excluded from result equality).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ShiftCacheStats {
    /// Per-worker `(cell, bin)` cache hits.
    pub hits: u64,
    /// Per-worker cache misses (each ran the device model once).
    pub misses: u64,
    /// Lookups served by the prewarmed shared cache.
    pub shared_hits: u64,
    /// Entries characterized once into the shared cache before sampling
    /// (0 for engines that skip prewarming).
    pub prewarmed: u64,
    /// Insertions refused because a per-worker cache was at its
    /// configured capacity (`POSTOPC_SHIFT_CACHE_CAP`); those lookups
    /// re-run the device model on every recurrence instead of caching.
    pub rejected: u64,
    /// Entries resident across per-worker caches when the run finished —
    /// against the cap, this says how close the run came to rejecting.
    pub occupancy: u64,
}

/// Distribution summary of a Monte Carlo run.
#[derive(Debug, Clone)]
pub struct MonteCarloResult {
    worst_slacks_ps: Vec<f64>,
    critical_delays_ps: Vec<f64>,
    leakages_ua: Vec<f64>,
    /// Worst slacks sorted ascending, computed once at construction so
    /// quantile queries are O(1) instead of a clone+sort per call.
    sorted_worst_slacks_ps: Vec<f64>,
    /// Self-normalized importance weights in sample order; empty means
    /// every sample carries weight `1/n` (all non-IS schemes).
    weights: Vec<f64>,
    /// The weights realigned to `sorted_worst_slacks_ps` (same length
    /// regime as `weights`).
    sorted_weights: Vec<f64>,
    /// Per-sample control-variate values in ps (the linearized
    /// first-order worst slack); empty when the run had no CV.
    control_ps: Vec<f64>,
    /// Sampling scheme that produced the run — lets consumers fence
    /// scheme-specific caveats (see [`Self::tail_quantile_caveat`]).
    sampling: Sampling,
    cache_stats: ShiftCacheStats,
}

/// Result equality is over the sampled distributions and the attached
/// estimator state (importance weights, control-variate values), in
/// sample order. [`ShiftCacheStats`] is a scheduling-dependent
/// diagnostic, so two bit-identical runs on different thread counts
/// still compare equal.
impl PartialEq for MonteCarloResult {
    fn eq(&self, other: &Self) -> bool {
        self.worst_slacks_ps == other.worst_slacks_ps
            && self.critical_delays_ps == other.critical_delays_ps
            && self.leakages_ua == other.leakages_ua
            && self.weights == other.weights
            && self.control_ps == other.control_ps
    }
}

impl MonteCarloResult {
    /// Assembles a result from per-sample vectors (sample order), sorting
    /// the quantile view once.
    pub fn new(
        worst_slacks_ps: Vec<f64>,
        critical_delays_ps: Vec<f64>,
        leakages_ua: Vec<f64>,
    ) -> MonteCarloResult {
        let sorted_worst_slacks_ps = crate::quantile::sorted_ascending(&worst_slacks_ps);
        MonteCarloResult {
            worst_slacks_ps,
            critical_delays_ps,
            leakages_ua,
            sorted_worst_slacks_ps,
            weights: Vec::new(),
            sorted_weights: Vec::new(),
            control_ps: Vec::new(),
            sampling: Sampling::Plain,
            cache_stats: ShiftCacheStats::default(),
        }
    }

    /// [`Self::new`] with the run's shift-cache counters attached.
    pub fn with_cache_stats(mut self, cache_stats: ShiftCacheStats) -> MonteCarloResult {
        self.cache_stats = cache_stats;
        self
    }

    /// [`Self::new`] with the producing sampling scheme recorded.
    pub fn with_sampling(mut self, sampling: Sampling) -> MonteCarloResult {
        self.sampling = sampling;
        self
    }

    /// Attaches per-sample log-likelihood ratios of an importance-sampled
    /// run: weights are self-normalized ([`normalize_log_weights`],
    /// serially in sample order, so they are identical for any thread
    /// count) and every mean/quantile query becomes weighted.
    ///
    /// # Panics
    ///
    /// Panics if `log_weights` does not cover every sample.
    pub fn with_log_weights(mut self, log_weights: &[f64]) -> MonteCarloResult {
        assert_eq!(
            log_weights.len(),
            self.worst_slacks_ps.len(),
            "one log weight per sample"
        );
        let weights = normalize_log_weights(log_weights);
        let (sorted, sorted_weights) =
            crate::quantile::sorted_with_weights(&self.worst_slacks_ps, &weights);
        self.sorted_worst_slacks_ps = sorted;
        self.sorted_weights = sorted_weights;
        self.weights = weights;
        self
    }

    /// Attaches per-sample control-variate values (ps).
    ///
    /// # Panics
    ///
    /// Panics if `control_ps` does not cover every sample.
    pub fn with_control(mut self, control_ps: Vec<f64>) -> MonteCarloResult {
        assert_eq!(
            control_ps.len(),
            self.worst_slacks_ps.len(),
            "one control value per sample"
        );
        self.control_ps = control_ps;
        self
    }

    /// Shift-cache counters of the run that produced this result (zeros
    /// for the naive reference engine, which has no shift cache).
    pub fn cache_stats(&self) -> ShiftCacheStats {
        self.cache_stats
    }

    /// Worst slack of each sample, in ps (sample order).
    pub fn worst_slacks_ps(&self) -> &[f64] {
        &self.worst_slacks_ps
    }

    /// Critical delay of each sample, in ps (sample order).
    pub fn critical_delays_ps(&self) -> &[f64] {
        &self.critical_delays_ps
    }

    /// Total leakage of each sample, in µA (sample order).
    pub fn leakages_ua(&self) -> &[f64] {
        &self.leakages_ua
    }

    /// Self-normalized importance weights in sample order (they sum to 1
    /// by construction); empty for unit-weight runs, where every sample
    /// effectively weighs `1/n`.
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// Per-sample control-variate values in ps (the linearized
    /// first-order worst slack); empty when the run had no CV attached.
    pub fn control_values_ps(&self) -> &[f64] {
        &self.control_ps
    }

    /// The sampling scheme that produced this result.
    pub fn sampling(&self) -> Sampling {
        self.sampling
    }

    /// Weighted mean of `v` under the run's (self-normalized) importance
    /// weights; the plain mean for unit-weight runs.
    fn weighted_mean(&self, v: &[f64]) -> f64 {
        if self.weights.is_empty() {
            mean(v)
        } else {
            self.weights.iter().zip(v).map(|(w, x)| w * x).sum()
        }
    }

    /// Mean of the worst-slack distribution, in ps — the self-normalized
    /// weighted mean for importance-sampled runs.
    pub fn mean_worst_slack_ps(&self) -> f64 {
        self.weighted_mean(&self.worst_slacks_ps)
    }

    /// The control-variate-adjusted mean worst slack, in ps:
    /// `Ȳ_w − β · C̄_w` with `β = Cov_w(Y, C) / Var_w(C)` estimated
    /// online from the run (the optimal linear coefficient) and
    /// `E[C] = 0` exactly under the nominal normal — so on a model whose
    /// worst slack is exactly linear in the sampled shifts, the adjusted
    /// mean reproduces the deterministic value up to rounding, for *any*
    /// seed. Falls back to [`Self::mean_worst_slack_ps`] when the run
    /// carried no control variate or `Var(C)` is degenerate.
    pub fn cv_adjusted_mean_worst_slack_ps(&self) -> f64 {
        if self.control_ps.is_empty() {
            return self.mean_worst_slack_ps();
        }
        let y_bar = self.weighted_mean(&self.worst_slacks_ps);
        let c_bar = self.weighted_mean(&self.control_ps);
        let n = self.worst_slacks_ps.len();
        let uniform = 1.0 / n.max(1) as f64;
        let mut var_c = 0.0;
        let mut cov = 0.0;
        for i in 0..n {
            let w = if self.weights.is_empty() {
                uniform
            } else {
                self.weights[i]
            };
            let dc = self.control_ps[i] - c_bar;
            var_c += w * dc * dc;
            cov += w * (self.worst_slacks_ps[i] - y_bar) * dc;
        }
        let beta = if var_c > f64::MIN_POSITIVE {
            cov / var_c
        } else {
            0.0
        };
        y_bar - beta * c_bar
    }

    /// Standard deviation of the worst-slack distribution, in ps (the
    /// weighted deviation for importance-sampled runs).
    pub fn std_worst_slack_ps(&self) -> f64 {
        if self.weights.is_empty() {
            return std(&self.worst_slacks_ps);
        }
        let m = self.mean_worst_slack_ps();
        self.weights
            .iter()
            .zip(&self.worst_slacks_ps)
            .map(|(w, x)| w * (x - m) * (x - m))
            .sum::<f64>()
            .sqrt()
    }

    /// The documented caveat, if any, of asking this run for the `q`
    /// tail quantile. Stratified-LHS runs estimate deep-tail order
    /// statistics (`q` outside `0.05..=0.95`) biased low at small `n`
    /// (EXPERIMENTS.md caveat 7) — callers rendering reports surface
    /// this string next to the number; [`Sampling::TailIs`] is the
    /// estimator built for those quantiles.
    pub fn tail_quantile_caveat(&self, q: f64) -> Option<&'static str> {
        (matches!(self.sampling, Sampling::Stratified) && !(0.05..=0.95).contains(&q)).then_some(
            "stratified-LHS deep-tail quantiles are biased low at small n \
             (EXPERIMENTS.md caveat 7); use Sampling::TailIs for tail estimates",
        )
    }

    /// The `q`-quantile (0..=1) of the worst-slack distribution, in ps.
    ///
    /// Estimated by linear interpolation between order statistics
    /// (Hyndman–Fan type 7, the R/NumPy default): with `n` sorted samples
    /// `x[0..n]`, the position is `h = (n - 1) q` and the estimate
    /// `x[⌊h⌋] + (h - ⌊h⌋) · (x[⌊h⌋+1] - x[⌊h⌋])`. `q = 0` and `q = 1`
    /// return the sample extremes exactly.
    ///
    /// Importance-sampled runs answer with the self-normalized weighted
    /// type-7 estimator instead
    /// ([`crate::quantile::weighted_quantile_of_sorted`]).
    ///
    /// # Panics
    ///
    /// Panics if the result is empty (configs with `samples == 0` are
    /// rejected up front).
    pub fn worst_slack_quantile_ps(&self, q: f64) -> f64 {
        if self.weights.is_empty() {
            crate::quantile::quantile_of_sorted(&self.sorted_worst_slacks_ps, q)
        } else {
            crate::quantile::weighted_quantile_of_sorted(
                &self.sorted_worst_slacks_ps,
                &self.sorted_weights,
                q,
            )
        }
    }

    /// [`Self::worst_slack_quantile_ps`] for several quantiles against the
    /// one cached sorted view — callers needing a quantile profile (e.g.
    /// guardband sweeps) issue one call instead of re-sorting per level.
    ///
    /// # Panics
    ///
    /// Panics if the result is empty (configs with `samples == 0` are
    /// rejected up front).
    pub fn worst_slack_quantiles_ps(&self, qs: &[f64]) -> Vec<f64> {
        qs.iter()
            .map(|&q| self.worst_slack_quantile_ps(q))
            .collect()
    }

    /// Mean critical delay, in ps.
    pub fn mean_critical_delay_ps(&self) -> f64 {
        mean(&self.critical_delays_ps)
    }

    /// Mean leakage, in µA.
    pub fn mean_leakage_ua(&self) -> f64 {
        mean(&self.leakages_ua)
    }
}

fn mean(v: &[f64]) -> f64 {
    v.iter().sum::<f64>() / v.len().max(1) as f64
}

fn std(v: &[f64]) -> f64 {
    let m = mean(v);
    (v.iter().map(|x| (x - m).powi(2)).sum::<f64>() / v.len().max(1) as f64).sqrt()
}

/// Self-normalizes per-sample log-likelihood ratios into weights that sum
/// to 1: the running maximum is subtracted before exponentiation (so the
/// largest weight exponentiates exactly 0 and nothing overflows), then
/// the exponentials are normalized by their serial sample-order sum.
/// Every step is serial and deterministic, so the weights are identical
/// for any thread count. Degenerate inputs (empty, or all `-inf`)
/// produce uniform weights.
#[must_use]
pub fn normalize_log_weights(log_weights: &[f64]) -> Vec<f64> {
    let n = log_weights.len();
    let max = log_weights
        .iter()
        .copied()
        .fold(f64::NEG_INFINITY, f64::max);
    if !max.is_finite() {
        return vec![1.0 / n.max(1) as f64; n];
    }
    let mut w: Vec<f64> = log_weights.iter().map(|lw| (lw - max).exp()).collect();
    let total: f64 = w.iter().sum();
    for x in &mut w {
        *x /= total;
    }
    w
}

fn validate(config: &MonteCarloConfig) -> Result<()> {
    if config.samples == 0 {
        return Err(StaError::InvalidMonteCarlo("samples must be > 0".into()));
    }
    if !(config.sigma_nm.is_finite() && config.sigma_nm >= 0.0) {
        return Err(StaError::InvalidMonteCarlo(format!(
            "sigma must be finite and non-negative, got {}",
            config.sigma_nm
        )));
    }
    if let Sampling::TailIs { tilt } = config.sampling {
        if !(tilt.is_finite() && tilt >= 0.0) {
            return Err(StaError::InvalidMonteCarlo(format!(
                "TailIs tilt must be finite and non-negative, got {tilt}"
            )));
        }
    }
    Ok(())
}

/// Base (systematic) records per gate: the extracted annotation where
/// present, drawn dimensions elsewhere.
fn base_records(
    model: &TimingModel<'_>,
    systematic: Option<&CdAnnotation>,
) -> Vec<Vec<TransistorCd>> {
    model
        .design()
        .netlist()
        .gates()
        .iter()
        .enumerate()
        .map(
            |(gi, gate)| match systematic.and_then(|a| a.gate(GateId(gi as u32))) {
                Some(ann) => ann.transistors.clone(),
                None => model
                    .library()
                    .drawn_transistors(gate.kind, gate.drive)
                    .to_vec(),
            },
        )
        .collect()
}

/// Runs Monte Carlo timing through the compiled evaluator.
///
/// Per-gate channel lengths are sampled as
/// `L = base(gate) + N(0, sigma_nm)`, where `base` comes from
/// `systematic` (the extracted annotation) or the drawn dimensions when
/// `systematic` is `None`. The same random shift is applied to all fingers
/// of one gate (intra-gate variation is already captured by slice
/// extraction), and the shift is quantized to a `sigma / 16` grid (see
/// [`SHIFT_BINS_PER_SIGMA`]) so characterization memoizes per
/// `(cell, grid bin)` instead of running once per gate per sample.
///
/// The design is compiled once. The default [`McEngine::Batched`] engine
/// first draws the whole run's shift bins, prewarms every distinct
/// `(cell, bin)` into a read-only [`crate::SharedShiftCache`] shared
/// across workers, then evaluates [`LANES`](crate::LANES) samples per gate
/// visit; the scalar engine evaluates one sample at a time against
/// per-worker caches. Each sample derives its own RNG stream from
/// `(seed, sample index)` (pair index for antithetic sampling), so results
/// are bit-identical across engines, [`run_reference`], and any thread
/// count.
///
/// # Errors
///
/// Returns [`StaError::InvalidMonteCarlo`] for zero samples or a negative
/// sigma; propagates analysis errors.
pub fn run(
    model: &TimingModel<'_>,
    systematic: Option<&CdAnnotation>,
    config: &MonteCarloConfig,
) -> Result<MonteCarloResult> {
    let compiled = model.compile()?;
    run_with(&compiled, systematic, config)
}

/// [`run`] against an existing compiled evaluator: flows that already
/// hold a [`CompiledSta`] (drawn analysis, corner sweeps) share it
/// instead of compiling a fresh one per Monte Carlo run. Workers still
/// own per-thread scratches internally, so no scratch is taken here.
///
/// # Errors
///
/// Returns [`StaError::InvalidMonteCarlo`] for zero samples or a negative
/// sigma; propagates analysis errors.
pub fn run_with(
    compiled: &CompiledSta<'_>,
    systematic: Option<&CdAnnotation>,
    config: &MonteCarloConfig,
) -> Result<MonteCarloResult> {
    validate(config)?;
    let model = compiled.model();
    let bases = base_records(model, systematic);
    let cells = compiled.sample_cells(&bases);
    let threads = postopc_parallel::effective_threads(config.threads);
    let plan = stratified_plan(config, bases.len());
    let tilt = tilt_plan(compiled, &cells, config)?;
    let sampler = ShiftSampler {
        sigma_nm: config.sigma_nm,
        seed: config.seed,
        sampling: config.sampling,
        plan: plan.as_ref(),
        mu: tilt_mu(config, tilt.as_ref()),
        cv: tilt_cv(config, tilt.as_ref()),
    };
    match config.engine {
        McEngine::Scalar => run_scalar(compiled, &cells, &sampler, config, threads),
        McEngine::Batched => run_batched(compiled, &cells, &sampler, config, threads),
    }
}

/// The per-gate proposal means of an importance-sampled config (`None`
/// for every other scheme).
fn tilt_mu<'a>(config: &MonteCarloConfig, tilt: Option<&'a TiltPlan>) -> Option<&'a [f64]> {
    match (config.sampling, tilt) {
        (Sampling::TailIs { .. }, Some(t)) => Some(&t.mu),
        _ => None,
    }
}

/// The per-gate control-variate coefficients of a CV-enabled config.
fn tilt_cv<'a>(config: &MonteCarloConfig, tilt: Option<&'a TiltPlan>) -> Option<&'a [f64]> {
    match (config.control_variate, tilt) {
        (true, Some(t)) => Some(&t.a),
        _ => None,
    }
}

/// The per-gate tilt direction of a run: proposal means `mu` (z-units,
/// `Σ mu² = tilt²`) for importance sampling and linearization
/// coefficients `a` (ps per z-unit of the gate's draw) for the control
/// variate. Both point along the same criticality-weighted sensitivity
/// direction `raw_g = softcrit_g · max(∂D/∂L, 0)`, where `softcrit`
/// decays exponentially in the gate's slack excess over the worst slack
/// (scale: the delay spread three sigma of CD noise produces on an
/// average stage — gates whose slack margin exceeds what CD noise can
/// erase contribute nothing).
struct TiltPlan {
    mu: Vec<f64>,
    a: Vec<f64>,
}

/// Builds the tilt plan when the config needs one (importance sampling
/// and/or control variate): one zero-shift baseline evaluation plus two
/// characterizations per distinct cell
/// ([`CompiledSta::gate_sensitivities`]), computed serially once per run
/// so every worker and engine shares bit-identical `mu`/`a`.
fn tilt_plan(
    compiled: &CompiledSta<'_>,
    cells: &SampleCells,
    config: &MonteCarloConfig,
) -> Result<Option<TiltPlan>> {
    let tilt = match config.sampling {
        Sampling::TailIs { tilt } => tilt,
        _ if config.control_variate => 0.0,
        _ => return Ok(None),
    };
    // Central-difference step: one shift-grid bin, or a fixed sub-nm step
    // when sigma is 0 (the plan is still needed for the CV coefficients'
    // criticality weighting, even though `a` then collapses to zeros).
    let step_nm = if config.sigma_nm == 0.0 {
        0.125
    } else {
        shift_step(config.sigma_nm)
    };
    let mut scratch = compiled.scratch();
    let sens = compiled.gate_sensitivities(&mut scratch, cells, step_nm)?;
    let n = sens.slack_ps.len();
    let mean_abs_d = if n == 0 {
        0.0
    } else {
        sens.ddelay_dl_ps_per_nm
            .iter()
            .map(|d| d.abs())
            .sum::<f64>()
            / n as f64
    };
    let crit_scale_ps = 3.0 * config.sigma_nm * mean_abs_d + 1e-9;
    let mut raw = Vec::with_capacity(n);
    for g in 0..n {
        let excess_ps = (sens.slack_ps[g] - sens.worst_slack_ps).max(0.0);
        let softcrit = (-excess_ps / crit_scale_ps).exp();
        raw.push(softcrit * sens.ddelay_dl_ps_per_nm[g].max(0.0));
    }
    let norm = raw.iter().map(|r| r * r).sum::<f64>().sqrt();
    let mu = if norm > 0.0 {
        raw.iter().map(|r| tilt * r / norm).collect()
    } else {
        vec![0.0; n]
    };
    // ps of linearized worst-slack *decrease* per z-unit: a positive
    // shift (longer channel) on a sensitivity-positive gate adds delay,
    // so the control variate `C = Σ a_g z_g` moves with the worst slack.
    let a = raw.iter().map(|r| -r * config.sigma_nm).collect();
    Ok(Some(TiltPlan { mu, a }))
}

/// One gate's contribution to a sample's log-likelihood ratio against the
/// nominal density, `log φ(z) − log φ(z − μ)` for the *post-tilt* draw
/// `z`. Shared verbatim by the scalar stream and the batched block fill —
/// bit-identical accumulation is what makes the engines agree.
#[inline]
fn logw_term(mu: f64, z: f64) -> f64 {
    0.5 * mu * mu - mu * z
}

/// One gate's contribution to a sample's control-variate value (ps).
#[inline]
fn cv_term(a: f64, z: f64) -> f64 {
    a * z
}

/// Assembles a result with the estimator state the config calls for:
/// sampling scheme always, self-normalized weights for importance
/// sampling, control values when the CV was attached.
fn finish(
    config: &MonteCarloConfig,
    result: MonteCarloResult,
    log_weights: &[f64],
    control_ps: Vec<f64>,
) -> MonteCarloResult {
    let mut result = result.with_sampling(config.sampling);
    if matches!(config.sampling, Sampling::TailIs { .. }) {
        result = result.with_log_weights(log_weights);
    }
    if config.control_variate {
        result = result.with_control(control_ps);
    }
    result
}

/// The scalar engine: one [`CompiledSta::evaluate_shifted`] per sample,
/// per-worker shift caches, no prewarm.
fn run_scalar(
    compiled: &CompiledSta<'_>,
    cells: &SampleCells,
    sampler: &ShiftSampler<'_>,
    config: &MonteCarloConfig,
    threads: usize,
) -> Result<MonteCarloResult> {
    let sample_indices: Vec<u64> = (0..config.samples as u64).collect();
    let summaries = postopc_parallel::try_par_map_init(
        threads,
        &sample_indices,
        || compiled.scratch(),
        |scratch, _, &sample| {
            let before = (
                scratch.shift_cache_hits(),
                scratch.shift_cache_misses(),
                scratch.shift_cache_rejected(),
                scratch.shift_cache_len() as u64,
            );
            let mut stream = sampler.stream(sample);
            let timing = compiled
                .evaluate_shifted(scratch, cells, None, |gi| sampler.shift(&mut stream, gi))?;
            Ok::<_, StaError>((
                timing,
                stream.logw,
                stream.cv,
                scratch.shift_cache_hits() - before.0,
                scratch.shift_cache_misses() - before.1,
                scratch.shift_cache_rejected() - before.2,
                scratch.shift_cache_len() as u64 - before.3,
            ))
        },
    )?;
    let mut stats = ShiftCacheStats::default();
    let mut worst = Vec::with_capacity(config.samples);
    let mut delays = Vec::with_capacity(config.samples);
    let mut leaks = Vec::with_capacity(config.samples);
    let mut logw = Vec::with_capacity(config.samples);
    let mut cv = Vec::with_capacity(config.samples);
    for (s, lw, c, hits, misses, rejected, grown) in summaries {
        worst.push(s.worst_slack_ps);
        delays.push(s.critical_delay_ps);
        leaks.push(s.leakage_ua);
        logw.push(lw);
        cv.push(c);
        stats.hits += hits;
        stats.misses += misses;
        stats.rejected += rejected;
        // Per-worker cache sizes only grow, so summing the per-sample
        // growth telescopes to the final resident total across workers.
        stats.occupancy += grown;
    }
    let result = MonteCarloResult::new(worst, delays, leaks).with_cache_stats(stats);
    Ok(finish(config, result, &logw, cv))
}

/// The batched engine: draw the whole run's shift bins once, prewarm
/// every distinct `(cell, bin)` into a shared read-only cache, then
/// evaluate [`LANES`] samples per gate visit. Bit-identical to the scalar
/// engine because the bins come from the same per-sample streams and the
/// batched evaluator mirrors the scalar float-operation order per lane.
fn run_batched(
    compiled: &CompiledSta<'_>,
    cells: &SampleCells,
    sampler: &ShiftSampler<'_>,
    config: &MonteCarloConfig,
    threads: usize,
) -> Result<MonteCarloResult> {
    let n = config.samples;
    let n_gates = cells.cell_of_gate().len();
    let step = shift_step(config.sigma_nm);

    // Phase 1 — sampling: every sample's per-gate shift bins, drawn from
    // the same streams the scalar engine consumes, then transposed to
    // gate-major layout (`bins[g * n + s]`) so one gate's lane reads are
    // contiguous in the evaluation hot loop.
    // One bin block per LANES-wide batch, already in the gate-major
    // `block[gate * LANES + lane]` layout the evaluation hot loop reads —
    // the lockstep lane fill writes it directly, no transpose pass.
    let batch_indices: Vec<usize> = (0..n.div_ceil(LANES)).collect();
    let blocks: Vec<BinBlock> = postopc_parallel::par_map_init(
        threads,
        &batch_indices,
        FillBuffers::default,
        |buf, _, &batch| {
            let mut block = BinBlock {
                bins: vec![0i32; n_gates * LANES],
                logw: [0.0; LANES],
                cv: [0.0; LANES],
            };
            sampler.fill_bins_block(
                batch * LANES,
                n,
                buf,
                &mut block.bins,
                &mut block.logw,
                &mut block.cv,
            );
            block
        },
    );

    // Phase 2 — prewarm: enumerate the distinct (cell, bin) pairs of the
    // whole run (dense presence bitmap over the observed bin range) and
    // characterize each exactly once into the shared cache.
    let shared = {
        let (mut lo, mut hi) = (i32::MAX, i32::MIN);
        for block in &blocks {
            for &b in &block.bins {
                lo = lo.min(b);
                hi = hi.max(b);
            }
        }
        let span = if blocks.is_empty() {
            0
        } else {
            (hi - lo) as usize + 1
        };
        let mut seen = vec![false; cells.distinct() * span];
        let mut keys: Vec<(u32, i32)> = Vec::new();
        for block in &blocks {
            for (gi, lanes) in block.bins.chunks_exact(LANES).enumerate() {
                let cell = cells.cell_of_gate()[gi];
                for &bin in lanes {
                    let slot = cell as usize * span + (bin - lo) as usize;
                    if !seen[slot] {
                        seen[slot] = true;
                        keys.push((cell, bin));
                    }
                }
            }
        }
        compiled.prewarm_shift_cache(cells, &keys, threads, |bin| f64::from(bin) * step)?
    };

    // Phase 3 — evaluation: contiguous LANES-wide batches in input order.
    // Tail lanes past the last sample repeat the final sample's stream and
    // are discarded (the kernel always evaluates every lane).
    let summaries = postopc_parallel::try_par_map_batched_init(
        threads,
        n,
        LANES,
        || compiled.scratch(),
        |scratch, range| {
            let before = (
                scratch.shift_cache_hits(),
                scratch.shift_cache_misses(),
                scratch.shift_cache_shared_hits(),
                scratch.shift_cache_rejected(),
                scratch.shift_cache_len() as u64,
            );
            let block = &blocks[range.start / LANES].bins;
            let lanes =
                compiled.evaluate_shifted_batch(scratch, cells, Some(&shared), |lane, gi| {
                    let bin = block[gi * LANES + lane];
                    (bin, f64::from(bin) * step)
                })?;
            let deltas = (
                scratch.shift_cache_hits() - before.0,
                scratch.shift_cache_misses() - before.1,
                scratch.shift_cache_shared_hits() - before.2,
                scratch.shift_cache_rejected() - before.3,
                scratch.shift_cache_len() as u64 - before.4,
            );
            Ok::<_, StaError>(
                range
                    .clone()
                    .map(|s| {
                        let d = if s == range.start {
                            deltas
                        } else {
                            (0, 0, 0, 0, 0)
                        };
                        (lanes[s - range.start], d)
                    })
                    .collect(),
            )
        },
    )?;
    let mut stats = ShiftCacheStats {
        prewarmed: shared.entries() as u64,
        ..ShiftCacheStats::default()
    };
    let mut worst = Vec::with_capacity(n);
    let mut delays = Vec::with_capacity(n);
    let mut leaks = Vec::with_capacity(n);
    for (s, (hits, misses, shared_hits, rejected, grown)) in summaries {
        worst.push(s.worst_slack_ps);
        delays.push(s.critical_delay_ps);
        leaks.push(s.leakage_ua);
        stats.hits += hits;
        stats.misses += misses;
        stats.shared_hits += shared_hits;
        stats.rejected += rejected;
        stats.occupancy += grown;
    }
    let logw: Vec<f64> = (0..n).map(|s| blocks[s / LANES].logw[s % LANES]).collect();
    let cv: Vec<f64> = (0..n).map(|s| blocks[s / LANES].cv[s % LANES]).collect();
    let result = MonteCarloResult::new(worst, delays, leaks).with_cache_stats(stats);
    Ok(finish(config, result, &logw, cv))
}

/// One [`LANES`]-wide batch of the batched engine's sampling phase: the
/// gate-major shift bins plus each lane's accumulated log-likelihood
/// ratio and control-variate value (both 0 for schemes that carry
/// neither).
struct BinBlock {
    bins: Vec<i32>,
    logw: [f64; LANES],
    cv: [f64; LANES],
}

/// The naive Monte Carlo baseline: one full [`TimingModel::analyze`] —
/// fresh annotation HashMap, wires, characterization and report vectors —
/// per sample.
///
/// Retained as the reference implementation the compiled engines ([`run`])
/// are benchmarked against and proven bit-identical to; use [`run`]
/// everywhere else. Consumes the same per-sample streams as the compiled
/// engines for every [`Sampling`] scheme.
///
/// # Errors
///
/// Returns [`StaError::InvalidMonteCarlo`] for zero samples or a negative
/// sigma; propagates analysis errors.
pub fn run_reference(
    model: &TimingModel<'_>,
    systematic: Option<&CdAnnotation>,
    config: &MonteCarloConfig,
) -> Result<MonteCarloResult> {
    validate(config)?;
    let bases = base_records(model, systematic);
    let plan = stratified_plan(config, bases.len());
    // The tilt plan reads sensitivities off the compiled evaluator —
    // compile one here just for the plan (it is deterministic, so the
    // reference sees bit-identical `mu`/`a` to the compiled engines).
    let compiled = model.compile()?;
    let cells = compiled.sample_cells(&bases);
    let tilt = tilt_plan(&compiled, &cells, config)?;
    let sampler = ShiftSampler {
        sigma_nm: config.sigma_nm,
        seed: config.seed,
        sampling: config.sampling,
        plan: plan.as_ref(),
        mu: tilt_mu(config, tilt.as_ref()),
        cv: tilt_cv(config, tilt.as_ref()),
    };
    let sample_indices: Vec<u64> = (0..config.samples as u64).collect();
    let threads = postopc_parallel::effective_threads(config.threads);
    let reports = postopc_parallel::try_par_map(threads, &sample_indices, |_, &sample| {
        let mut stream = sampler.stream(sample);
        let mut ann = CdAnnotation::new();
        for (gi, base) in bases.iter().enumerate() {
            let (_, shift) = sampler.shift(&mut stream, gi);
            let mut records = base.clone();
            for r in &mut records {
                r.l_delay_nm = (r.l_delay_nm + shift).max(1.0);
                r.l_leakage_nm = (r.l_leakage_nm + shift).max(1.0);
            }
            ann.set_gate(
                GateId(gi as u32),
                GateAnnotation {
                    transistors: records,
                },
            );
        }
        let report = model.analyze(Some(&ann))?;
        Ok::<_, StaError>((
            report.worst_slack_ps(),
            report.critical_delay_ps(),
            report.leakage_ua(),
            stream.logw,
            stream.cv,
        ))
    })?;
    let mut worst = Vec::with_capacity(config.samples);
    let mut delays = Vec::with_capacity(config.samples);
    let mut leaks = Vec::with_capacity(config.samples);
    let mut logw = Vec::with_capacity(config.samples);
    let mut cv = Vec::with_capacity(config.samples);
    for (slack, delay, leakage, lw, c) in reports {
        worst.push(slack);
        delays.push(delay);
        leaks.push(leakage);
        logw.push(lw);
        cv.push(c);
    }
    Ok(finish(
        config,
        MonteCarloResult::new(worst, delays, leaks),
        &logw,
        cv,
    ))
}

/// One point of a variance-reduction convergence study: the worst-slack
/// estimation errors of `(sampling, samples)` against a high-sample
/// reference, averaged over seeds, with the mean per-run wall clock.
#[derive(Debug, Clone, PartialEq)]
pub struct ConvergencePoint {
    /// Sampling scheme of this point.
    pub sampling: Sampling,
    /// Samples per run.
    pub samples: usize,
    /// Mean absolute 1%-quantile worst-slack error vs the reference, ps.
    pub q01_abs_err_ps: f64,
    /// Mean absolute 0.1%-quantile worst-slack error vs the reference,
    /// ps — the deep-tail statistic [`Sampling::TailIs`] targets.
    pub q001_abs_err_ps: f64,
    /// Mean absolute mean-worst-slack error vs the reference, ps. The
    /// statistic antithetic and stratified sampling actually collapse:
    /// their per-gate coverage guarantees cancel the leading error terms
    /// of *smooth* estimators, while a deep tail order statistic of the
    /// max-type worst slack keeps most of its sampling noise (see the
    /// `mc_batch` benchmark table).
    pub mean_abs_err_ps: f64,
    /// Mean wall clock of one run at this point, in seconds.
    pub mean_wall_s: f64,
}

/// Measures convergence of sampling schemes against a high-sample plain
/// reference run: for each `(sampling, samples)` point, runs one Monte
/// Carlo per seed in `seeds` (re-seeded from `base.seed` xor the entry)
/// and reports the mean absolute errors of the worst-slack mean and
/// 1%-quantile plus the mean wall clock — the data behind the "matched
/// mean error at fewer samples" CI gate and the `mc_batch` benchmark
/// table.
///
/// `reference_samples` should be several times the largest point (the
/// reference uses plain sampling, the batched engine and `base.seed`).
///
/// # Errors
///
/// Propagates configuration and analysis errors from the underlying runs.
pub fn convergence_study(
    compiled: &CompiledSta<'_>,
    systematic: Option<&CdAnnotation>,
    base: &MonteCarloConfig,
    reference_samples: usize,
    points: &[(Sampling, usize)],
    seeds: &[u64],
) -> Result<Vec<ConvergencePoint>> {
    let reference = run_with(
        compiled,
        systematic,
        &MonteCarloConfig {
            samples: reference_samples,
            sampling: Sampling::Plain,
            engine: McEngine::Batched,
            ..base.clone()
        },
    )?;
    let ref_q01 = reference.worst_slack_quantile_ps(0.01);
    let ref_q001 = reference.worst_slack_quantile_ps(0.001);
    let ref_mean = reference.mean_worst_slack_ps();
    let mut out = Vec::with_capacity(points.len());
    for &(sampling, samples) in points {
        let mut q01_err_sum = 0.0;
        let mut q001_err_sum = 0.0;
        let mut mean_err_sum = 0.0;
        let mut wall_sum = 0.0;
        for &seed in seeds {
            let cfg = MonteCarloConfig {
                samples,
                sampling,
                seed: base.seed ^ seed,
                ..base.clone()
            };
            let t0 = std::time::Instant::now();
            let mc = run_with(compiled, systematic, &cfg)?;
            wall_sum += t0.elapsed().as_secs_f64();
            q01_err_sum += (mc.worst_slack_quantile_ps(0.01) - ref_q01).abs();
            q001_err_sum += (mc.worst_slack_quantile_ps(0.001) - ref_q001).abs();
            mean_err_sum += (mc.cv_adjusted_mean_worst_slack_ps() - ref_mean).abs();
        }
        let runs = seeds.len().max(1) as f64;
        out.push(ConvergencePoint {
            sampling,
            samples,
            q01_abs_err_ps: q01_err_sum / runs,
            q001_abs_err_ps: q001_err_sum / runs,
            mean_abs_err_ps: mean_err_sum / runs,
            mean_wall_s: wall_sum / runs,
        });
    }
    Ok(out)
}

/// Shift-grid resolution: bins per sigma. The sampled distribution is a
/// normal discretized to steps of `sigma / 16` — a quantization error of
/// at most `sigma / 32` (3% of sigma), far below Monte Carlo sampling
/// noise at any practical sample count, in exchange for characterization
/// collapsing to one device-model run per `(cell, bin)`.
pub const SHIFT_BINS_PER_SIGMA: f64 = 16.0;

/// Width of one shift-grid bin in nm (0 when sigma is 0, where every
/// draw collapses to bin 0 with a zero shift).
fn shift_step(sigma_nm: f64) -> f64 {
    if sigma_nm == 0.0 {
        0.0
    } else {
        sigma_nm / SHIFT_BINS_PER_SIGMA
    }
}

/// Quantizes a raw shift (nm) to the grid: returns the grid bin and the
/// shift `bin * step` exactly — the bin is the cache identity of the
/// shift, and `bin as f64 * step` reproduces the shift bit for bit (the
/// batched engine stores only bins and rebuilds shifts that way).
fn quantize(raw_nm: f64, sigma_nm: f64) -> (i32, f64) {
    if sigma_nm == 0.0 {
        return (0, 0.0);
    }
    let step = sigma_nm / SHIFT_BINS_PER_SIGMA;
    let bin = quantize_bin(raw_nm, SHIFT_BINS_PER_SIGMA / sigma_nm);
    (bin, f64::from(bin) * step)
}

/// The bin of a raw shift given the precomputed inverse step
/// (`SHIFT_BINS_PER_SIGMA / sigma`). Rounds half-to-even — a single
/// rounding instruction, so the batched bin fill vectorizes — and is the
/// one rounding rule every engine shares (ties sit exactly between two
/// grid points; either neighbour is an equally valid discretization, it
/// only has to be the *same* one everywhere).
#[inline]
fn quantize_bin(raw_nm: f64, inv_step: f64) -> i32 {
    (raw_nm * inv_step).round_ties_even() as i32
}

/// Per-gate stratum permutations of a stratified run: gate `g`'s draw for
/// sample `s` lands in stratum `perm[g * n + s]`, a Fisher–Yates shuffle
/// of `0..n` seeded from the config seed and the gate index — independent
/// of the sample index, so any worker reproduces it.
struct StratifiedPlan {
    n: usize,
    perm: Vec<u32>,
}

/// Seed salt separating the per-gate permutation streams from the
/// per-sample jitter streams.
const STRATA_SEED_SALT: u64 = 0x5354_5241_5441_u64;

/// Builds the stratified plan when the config asks for it.
fn stratified_plan(config: &MonteCarloConfig, n_gates: usize) -> Option<StratifiedPlan> {
    if config.sampling != Sampling::Stratified {
        return None;
    }
    let n = config.samples;
    let mut perm = Vec::with_capacity(n_gates * n);
    for g in 0..n_gates {
        let mut rng = StdRng::seed_from_u64(split_seed(config.seed ^ STRATA_SEED_SALT, g as u64));
        let base = perm.len();
        perm.extend(0..n as u32);
        for i in (1..n).rev() {
            let j = rng.random_range(0..=i);
            perm.swap(base + i, base + j);
        }
    }
    Some(StratifiedPlan { n, perm })
}

/// The per-gate CD shift sampler shared by every engine. One instance per
/// run; [`Self::stream`] derives a sample's deterministic stream and
/// [`Self::shift`] draws that sample's per-gate shifts from it in gate
/// order. All schemes consume exactly one uniform per gate, mapped
/// through the inverse normal CDF.
struct ShiftSampler<'a> {
    sigma_nm: f64,
    seed: u64,
    sampling: Sampling,
    plan: Option<&'a StratifiedPlan>,
    /// Per-gate proposal means of an importance-sampled run, z-units
    /// ([`TiltPlan::mu`]); `None` for nominal-density schemes.
    mu: Option<&'a [f64]>,
    /// Per-gate control-variate coefficients ([`TiltPlan::a`]); `None`
    /// when the run carries no control variate.
    cv: Option<&'a [f64]>,
}

/// One sample's deterministic draw state.
struct SampleStream {
    rng: StdRng,
    /// Negate the normal draws (odd half of an antithetic pair).
    negate: bool,
    /// Sample index (stratum column of a stratified run).
    sample: usize,
    /// Accumulated log-likelihood ratio vs the nominal density (0 unless
    /// importance sampling).
    logw: f64,
    /// Accumulated control-variate value, ps (0 unless the CV is on).
    cv: f64,
}

impl ShiftSampler<'_> {
    /// The deterministic stream of sample `sample`: seeded from the pair
    /// index for antithetic sampling (both halves replay one stream), the
    /// sample index otherwise.
    fn stream(&self, sample: u64) -> SampleStream {
        let (stream_index, negate) = match self.sampling {
            Sampling::Antithetic => (sample >> 1, sample & 1 == 1),
            Sampling::Plain | Sampling::Stratified | Sampling::TailIs { .. } => (sample, false),
        };
        SampleStream {
            rng: StdRng::seed_from_u64(split_seed(self.seed, stream_index)),
            negate,
            sample: sample as usize,
            logw: 0.0,
            cv: 0.0,
        }
    }

    /// The `(grid bin, shift nm)` of gate `gate` in this stream — called
    /// in gate order, consuming one uniform per gate and accumulating the
    /// stream's log-likelihood ratio and control-variate value as a side
    /// effect.
    fn shift(&self, stream: &mut SampleStream, gate: usize) -> (i32, f64) {
        let u = match (self.sampling, self.plan) {
            (Sampling::Stratified, Some(plan)) => {
                // Latin hypercube: the jitter picks a point inside the
                // stratum this (gate, sample) pair owns.
                let jitter: f64 = stream.rng.random_range(0.0..1.0);
                let stratum = f64::from(plan.perm[gate * plan.n + stream.sample]);
                ((stratum + jitter) / plan.n as f64).max(f64::EPSILON)
            }
            _ => stream.rng.random_range(f64::EPSILON..1.0),
        };
        let mut z = normal_quantile(u);
        if stream.negate {
            z = -z;
        }
        if let Some(mu_all) = self.mu {
            // Importance tilt: draw from N(mu, 1) by shifting the nominal
            // draw, and accumulate the exact log-likelihood ratio of the
            // *post-tilt, pre-quantization* value.
            let mu = mu_all[gate];
            z += mu;
            stream.logw += logw_term(mu, z);
        }
        if let Some(a) = self.cv {
            stream.cv += cv_term(a[gate], z);
        }
        quantize(z * self.sigma_nm, self.sigma_nm)
    }

    /// Fills one [`LANES`]-wide batch block of shift bins, laid out
    /// `block[gate * LANES + lane]` — bit-for-bit the bins [`Self::shift`]
    /// streams for samples `first + lane` (clamped to `n_samples - 1`;
    /// tail lanes replay the last live sample, exactly the padding the
    /// batch evaluator discards).
    ///
    /// Staged for throughput: the [`LANES`] per-sample generators step in
    /// lockstep ([`LaneRng`]), so the draw loop, the central branch of
    /// the quantile inversion and the quantization all run as
    /// straight-line lane loops that autovectorize; the rare tail draws
    /// (~4.9%) are then overwritten through the exact tail branches.
    /// Identical operations on identical values as the streaming path —
    /// the `block_fill_matches_streaming_shifts` unit test and the
    /// batched parity suite hold it there.
    fn fill_bins_block(
        &self,
        first: usize,
        n_samples: usize,
        buf: &mut FillBuffers,
        block: &mut [i32],
        logw: &mut [f64; LANES],
        cv: &mut [f64; LANES],
    ) {
        if self.sigma_nm == 0.0 && self.mu.is_none() && self.cv.is_none() {
            // `quantize` collapses every draw to bin 0 at zero sigma, and
            // with neither accumulator there is nothing else to compute.
            block.fill(0);
            return;
        }
        let n_gates = block.len() / LANES;
        let last = n_samples - 1;
        let mut samples = [0usize; LANES];
        let mut negate = [false; LANES];
        let mut seeds = [0u64; LANES];
        for l in 0..LANES {
            let sample = (first + l).min(last);
            samples[l] = sample;
            let (stream_index, neg) = match self.sampling {
                Sampling::Antithetic => ((sample as u64) >> 1, sample & 1 == 1),
                Sampling::Plain | Sampling::Stratified | Sampling::TailIs { .. } => {
                    (sample as u64, false)
                }
            };
            negate[l] = neg;
            seeds[l] = split_seed(self.seed, stream_index);
        }
        let mut rng: LaneRng<LANES> = LaneRng::seed_from(seeds);
        buf.p.resize(block.len(), 0.0);
        match (self.sampling, self.plan) {
            (Sampling::Stratified, Some(plan)) => {
                for (gate, row) in buf.p.chunks_exact_mut(LANES).enumerate().take(n_gates) {
                    let raws = rng.next_u64s();
                    for l in 0..LANES {
                        let jitter = unit_range_f64(raws[l], 0.0, 1.0);
                        let stratum = f64::from(plan.perm[gate * plan.n + samples[l]]);
                        row[l] = ((stratum + jitter) / plan.n as f64).max(f64::EPSILON);
                    }
                }
            }
            _ => {
                for row in buf.p.chunks_exact_mut(LANES).take(n_gates) {
                    let raws = rng.next_u64s();
                    for l in 0..LANES {
                        row[l] = unit_range_f64(raws[l], f64::EPSILON, 1.0);
                    }
                }
            }
        }
        buf.tails.clear();
        for (i, &p) in buf.p.iter().enumerate() {
            if !(P_LOW..=1.0 - P_LOW).contains(&p) {
                buf.tails.push((i as u32, p));
            }
        }
        for z in buf.p.iter_mut() {
            *z = normal_quantile_central(*z);
        }
        for &(i, p) in &buf.tails {
            buf.p[i as usize] = normal_quantile(p);
        }
        // Importance tilt and control variate ride the z buffer before
        // quantization, per accumulator in gate order — each lane's sums
        // add the exact [`logw_term`]/[`cv_term`] sequence the scalar
        // stream adds, so the accumulators agree bit for bit. The tilt
        // only exists for [`Sampling::TailIs`], which never negates, so
        // adding `mu` to the pre-negation rows matches the scalar's
        // post-negation add.
        if let Some(mu_all) = self.mu {
            for (gate, row) in buf.p.chunks_exact_mut(LANES).enumerate().take(n_gates) {
                let mu = mu_all[gate];
                for l in 0..LANES {
                    row[l] += mu;
                    logw[l] += logw_term(mu, row[l]);
                }
            }
        }
        if let Some(a_all) = self.cv {
            for (gate, row) in buf.p.chunks_exact(LANES).enumerate().take(n_gates) {
                let a = a_all[gate];
                for l in 0..LANES {
                    // The scalar stream sees the post-negation z; rows
                    // hold the pre-negation value, so flip explicitly
                    // (exact IEEE sign flip, same bits as the scalar's).
                    let z = if negate[l] { -row[l] } else { row[l] };
                    cv[l] += cv_term(a, z);
                }
            }
        }
        if self.sigma_nm == 0.0 {
            // Accumulators were still needed; the bins all collapse to 0
            // (`quantize` at zero sigma), matching the scalar path.
            block.fill(0);
            return;
        }
        // `-z * s == z * -s` exactly (an IEEE sign flip either way), so
        // each lane's antithetic negation rides its sigma scale factor.
        let mut sigma = [self.sigma_nm; LANES];
        for l in 0..LANES {
            if negate[l] {
                sigma[l] = -self.sigma_nm;
            }
        }
        let inv_step = SHIFT_BINS_PER_SIGMA / self.sigma_nm;
        for (row_bin, row_z) in block.chunks_exact_mut(LANES).zip(buf.p.chunks_exact(LANES)) {
            for l in 0..LANES {
                row_bin[l] = quantize_bin(row_z[l] * sigma[l], inv_step);
            }
        }
    }
}

/// Reusable per-worker staging for [`ShiftSampler::fill_bins_block`]: the
/// uniform-then-z buffer and the (index, uniform) pairs that landed in
/// the quantile's tail branches.
#[derive(Default)]
struct FillBuffers {
    p: Vec<f64>,
    tails: Vec<(u32, f64)>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use postopc_device::ProcessParams;
    use postopc_layout::{generate, Design, TechRules};

    fn design() -> Design {
        Design::compile(
            generate::ripple_carry_adder(2).expect("netlist"),
            TechRules::n90(),
        )
        .expect("design")
    }

    #[test]
    fn rejects_bad_config() {
        let d = design();
        let m = TimingModel::new(&d, ProcessParams::n90(), 800.0).expect("model");
        assert!(run(
            &m,
            None,
            &MonteCarloConfig {
                samples: 0,
                ..Default::default()
            }
        )
        .is_err());
        assert!(run(
            &m,
            None,
            &MonteCarloConfig {
                sigma_nm: -1.0,
                ..Default::default()
            }
        )
        .is_err());
    }

    #[test]
    fn deterministic_given_seed() {
        let d = design();
        let m = TimingModel::new(&d, ProcessParams::n90(), 800.0).expect("model");
        for sampling in [
            Sampling::Plain,
            Sampling::Antithetic,
            Sampling::Stratified,
            Sampling::TailIs { tilt: 1.0 },
        ] {
            let cfg = MonteCarloConfig {
                samples: 20,
                sigma_nm: 2.0,
                seed: 42,
                sampling,
                ..Default::default()
            };
            let a = run(&m, None, &cfg).expect("mc");
            let b = run(&m, None, &cfg).expect("mc");
            assert_eq!(a.worst_slacks_ps(), b.worst_slacks_ps());
            assert_eq!(a.weights(), b.weights());
        }
    }

    #[test]
    fn thread_count_does_not_change_results() {
        let d = design();
        let m = TimingModel::new(&d, ProcessParams::n90(), 800.0).expect("model");
        for sampling in [
            Sampling::Plain,
            Sampling::Antithetic,
            Sampling::Stratified,
            Sampling::TailIs { tilt: 1.0 },
        ] {
            for engine in [McEngine::Scalar, McEngine::Batched] {
                let base = MonteCarloConfig {
                    samples: 24,
                    sigma_nm: 2.0,
                    seed: 5,
                    threads: Some(1),
                    sampling,
                    engine,
                    control_variate: true,
                };
                let one = run(&m, None, &base).expect("mc");
                for threads in [2, 4, 7] {
                    let cfg = MonteCarloConfig {
                        threads: Some(threads),
                        ..base.clone()
                    };
                    let many = run(&m, None, &cfg).expect("mc");
                    assert_eq!(one, many, "threads = {threads}, {sampling:?}, {engine:?}");
                }
            }
        }
    }

    #[test]
    fn engines_agree_for_every_sampling() {
        let d = design();
        let m = TimingModel::new(&d, ProcessParams::n90(), 800.0).expect("model");
        for sampling in [
            Sampling::Plain,
            Sampling::Antithetic,
            Sampling::Stratified,
            Sampling::TailIs { tilt: 1.2 },
        ] {
            // Samples chosen to leave a partial tail batch.
            let scalar = MonteCarloConfig {
                samples: LANES * 2 + 3,
                sigma_nm: 1.5,
                seed: 11,
                sampling,
                engine: McEngine::Scalar,
                control_variate: true,
                ..Default::default()
            };
            let batched = MonteCarloConfig {
                engine: McEngine::Batched,
                ..scalar.clone()
            };
            let a = run(&m, None, &scalar).expect("scalar");
            let b = run(&m, None, &batched).expect("batched");
            assert_eq!(a, b, "{sampling:?}");
            for (x, y) in a.worst_slacks_ps().iter().zip(b.worst_slacks_ps()) {
                assert_eq!(x.to_bits(), y.to_bits(), "{sampling:?}");
            }
        }
    }

    #[test]
    fn zero_sigma_collapses_to_nominal() {
        let d = design();
        let m = TimingModel::new(&d, ProcessParams::n90(), 800.0).expect("model");
        for engine in [McEngine::Scalar, McEngine::Batched] {
            let cfg = MonteCarloConfig {
                samples: 5,
                sigma_nm: 0.0,
                seed: 1,
                engine,
                ..Default::default()
            };
            let mc = run(&m, None, &cfg).expect("mc");
            let nominal = m.analyze(None).expect("nominal");
            for &s in mc.worst_slacks_ps() {
                assert!((s - nominal.worst_slack_ps()).abs() < 1e-9);
            }
            assert!(mc.std_worst_slack_ps() < 1e-12);
        }
    }

    #[test]
    fn variance_grows_with_sigma() {
        let d = design();
        let m = TimingModel::new(&d, ProcessParams::n90(), 800.0).expect("model");
        let small = run(
            &m,
            None,
            &MonteCarloConfig {
                samples: 60,
                sigma_nm: 1.0,
                seed: 3,
                ..Default::default()
            },
        )
        .expect("mc");
        let large = run(
            &m,
            None,
            &MonteCarloConfig {
                samples: 60,
                sigma_nm: 4.0,
                seed: 3,
                ..Default::default()
            },
        )
        .expect("mc");
        assert!(large.std_worst_slack_ps() > 2.0 * small.std_worst_slack_ps());
    }

    #[test]
    fn quantiles_are_ordered() {
        let d = design();
        let m = TimingModel::new(&d, ProcessParams::n90(), 800.0).expect("model");
        let mc = run(
            &m,
            None,
            &MonteCarloConfig {
                samples: 100,
                sigma_nm: 2.0,
                seed: 9,
                ..Default::default()
            },
        )
        .expect("mc");
        let q01 = mc.worst_slack_quantile_ps(0.01);
        let q50 = mc.worst_slack_quantile_ps(0.5);
        let q99 = mc.worst_slack_quantile_ps(0.99);
        assert!(q01 <= q50 && q50 <= q99);
        assert!((q50 - mc.mean_worst_slack_ps()).abs() < 3.0 * mc.std_worst_slack_ps() + 1e-9);
        // The cached quantile view spans the sample extremes exactly.
        assert_eq!(
            mc.worst_slack_quantile_ps(0.0),
            mc.worst_slacks_ps()
                .iter()
                .cloned()
                .fold(f64::INFINITY, f64::min)
        );
        assert_eq!(
            mc.worst_slack_quantile_ps(1.0),
            mc.worst_slacks_ps()
                .iter()
                .cloned()
                .fold(f64::NEG_INFINITY, f64::max)
        );
        // The multi-quantile helper matches the scalar queries.
        assert_eq!(
            mc.worst_slack_quantiles_ps(&[0.01, 0.5, 0.99]),
            vec![q01, q50, q99]
        );
    }

    #[test]
    fn antithetic_pairs_mirror_each_other() {
        let d = design();
        let m = TimingModel::new(&d, ProcessParams::n90(), 800.0).expect("model");
        let compiled = m.compile().expect("compile");
        let cfg = MonteCarloConfig {
            samples: 8,
            sigma_nm: 2.0,
            seed: 21,
            sampling: Sampling::Antithetic,
            ..Default::default()
        };
        let plan = stratified_plan(&cfg, 4);
        let sampler = ShiftSampler {
            sigma_nm: cfg.sigma_nm,
            seed: cfg.seed,
            sampling: cfg.sampling,
            plan: plan.as_ref(),
            mu: None,
            cv: None,
        };
        let mut even = sampler.stream(4);
        let mut odd = sampler.stream(5);
        for gate in 0..10 {
            let (be, se) = sampler.shift(&mut even, gate);
            let (bo, so) = sampler.shift(&mut odd, gate);
            assert_eq!(be, -bo, "gate {gate}");
            assert_eq!(se, -so, "gate {gate}");
        }
        // And the variance of the pair means is below the plain one on
        // an actual run (weak sanity bound, not a tight statistics test).
        let _ = compiled;
    }

    #[test]
    fn stratified_covers_every_stratum_once() {
        let cfg = MonteCarloConfig {
            samples: 16,
            sigma_nm: 2.0,
            seed: 33,
            sampling: Sampling::Stratified,
            ..Default::default()
        };
        let n_gates = 5;
        let plan = stratified_plan(&cfg, n_gates).expect("stratified plan");
        assert_eq!(plan.perm.len(), n_gates * cfg.samples);
        for g in 0..n_gates {
            let mut strata: Vec<u32> = plan.perm[g * cfg.samples..(g + 1) * cfg.samples].to_vec();
            strata.sort_unstable();
            let expect: Vec<u32> = (0..cfg.samples as u32).collect();
            assert_eq!(strata, expect, "gate {g} must cover all strata");
        }
        // Distinct gates get distinct permutations (overwhelmingly likely;
        // equality would mean the per-gate seeding collapsed).
        assert_ne!(
            plan.perm[0..cfg.samples],
            plan.perm[cfg.samples..2 * cfg.samples]
        );
    }

    #[test]
    fn batched_reports_cache_stats() {
        let d = design();
        let m = TimingModel::new(&d, ProcessParams::n90(), 800.0).expect("model");
        let cfg = MonteCarloConfig {
            samples: 40,
            sigma_nm: 2.0,
            seed: 7,
            engine: McEngine::Batched,
            ..Default::default()
        };
        let mc = run(&m, None, &cfg).expect("mc");
        let stats = mc.cache_stats();
        // Every (cell, bin) of the run is prewarmed, so the hot loop never
        // misses and every lookup lands in the shared cache.
        assert!(stats.prewarmed > 0);
        assert_eq!(stats.misses, 0);
        assert_eq!(
            stats.shared_hits,
            (d.netlist().gate_count() * 40_usize.div_ceil(LANES) * LANES) as u64
        );
        // The scalar engine reports per-worker cache traffic instead.
        let scalar = run(
            &m,
            None,
            &MonteCarloConfig {
                engine: McEngine::Scalar,
                ..cfg
            },
        )
        .expect("mc");
        let s = scalar.cache_stats();
        assert_eq!(s.prewarmed, 0);
        assert_eq!(s.shared_hits, 0);
        assert!(s.hits > 0 && s.misses > 0);
    }

    #[test]
    fn rejects_bad_tilt() {
        let d = design();
        let m = TimingModel::new(&d, ProcessParams::n90(), 800.0).expect("model");
        for tilt in [-1.0, f64::NAN, f64::INFINITY] {
            assert!(
                run(
                    &m,
                    None,
                    &MonteCarloConfig {
                        sampling: Sampling::TailIs { tilt },
                        ..Default::default()
                    }
                )
                .is_err(),
                "tilt {tilt}"
            );
        }
    }

    #[test]
    fn tail_is_weights_are_normalized_and_estimates_stay_sane() {
        let d = design();
        let m = TimingModel::new(&d, ProcessParams::n90(), 800.0).expect("model");
        let plain = run(
            &m,
            None,
            &MonteCarloConfig {
                samples: 400,
                sigma_nm: 2.0,
                seed: 13,
                ..Default::default()
            },
        )
        .expect("plain");
        let tail = run(
            &m,
            None,
            &MonteCarloConfig {
                samples: 400,
                sigma_nm: 2.0,
                seed: 13,
                sampling: Sampling::TailIs { tilt: 1.0 },
                ..Default::default()
            },
        )
        .expect("tail");
        let sum: f64 = tail.weights().iter().sum();
        assert!((sum - 1.0).abs() < 1e-12, "weights sum to {sum}");
        assert!(tail.weights().iter().all(|&w| w >= 0.0));
        assert_eq!(tail.weights().len(), 400);
        // Self-normalized reweighting recovers nominal-distribution
        // statistics: mean and q01 land near the plain estimates (loose
        // statistical bounds — both are noisy estimators of the same
        // distribution).
        let spread = plain.std_worst_slack_ps();
        assert!(
            (tail.mean_worst_slack_ps() - plain.mean_worst_slack_ps()).abs() < spread,
            "IS mean {} vs plain {}",
            tail.mean_worst_slack_ps(),
            plain.mean_worst_slack_ps()
        );
        assert!(
            (tail.worst_slack_quantile_ps(0.01) - plain.worst_slack_quantile_ps(0.01)).abs()
                < 2.0 * spread,
            "IS q01 {} vs plain {}",
            tail.worst_slack_quantile_ps(0.01),
            plain.worst_slack_quantile_ps(0.01)
        );
        // The tilt pushes samples toward the slow corner: the proposal's
        // raw (unweighted) mean worst slack sits below the nominal one.
        assert!(mean(tail.worst_slacks_ps()) < plain.mean_worst_slack_ps());
    }

    #[test]
    fn control_variate_is_exact_on_linear_model() {
        // On a synthetic result whose worst slack is exactly
        // `c0 + C_i`, the online β is 1 and the adjusted mean recovers
        // `c0` exactly (E[C] = 0 by construction of the estimator), for
        // any control values.
        let control: Vec<f64> = (0..40).map(|i| f64::from(i - 20) * 0.37).collect();
        let worst: Vec<f64> = control.iter().map(|c| 42.0 + c).collect();
        let n = worst.len();
        let r = MonteCarloResult::new(worst, vec![0.0; n], vec![0.0; n]).with_control(control);
        assert!((r.cv_adjusted_mean_worst_slack_ps() - 42.0).abs() < 1e-9);
        // Without a control the adjusted mean is the plain mean.
        let r2 = MonteCarloResult::new(vec![1.0, 3.0], vec![0.0; 2], vec![0.0; 2]);
        assert_eq!(r2.cv_adjusted_mean_worst_slack_ps(), 2.0);
    }

    #[test]
    fn control_variate_reduces_mean_error_on_real_runs() {
        let d = design();
        let m = TimingModel::new(&d, ProcessParams::n90(), 800.0).expect("model");
        // High-sample reference for the true mean.
        let reference = run(
            &m,
            None,
            &MonteCarloConfig {
                samples: 4000,
                sigma_nm: 2.0,
                seed: 2,
                ..Default::default()
            },
        )
        .expect("reference");
        let truth = reference.mean_worst_slack_ps();
        let mut raw_err = 0.0;
        let mut cv_err = 0.0;
        for seed in [101, 202, 303, 404, 505] {
            let mc = run(
                &m,
                None,
                &MonteCarloConfig {
                    samples: 60,
                    sigma_nm: 2.0,
                    seed,
                    control_variate: true,
                    ..Default::default()
                },
            )
            .expect("mc");
            raw_err += (mc.mean_worst_slack_ps() - truth).abs();
            cv_err += (mc.cv_adjusted_mean_worst_slack_ps() - truth).abs();
        }
        assert!(
            cv_err < raw_err,
            "CV-adjusted error {cv_err} should beat raw {raw_err}"
        );
    }

    #[test]
    fn tail_caveat_fences_stratified_deep_quantiles() {
        let r = MonteCarloResult::new(vec![1.0, 2.0], vec![0.0; 2], vec![0.0; 2]);
        assert!(
            r.tail_quantile_caveat(0.01).is_none(),
            "plain has no caveat"
        );
        let s = MonteCarloResult::new(vec![1.0, 2.0], vec![0.0; 2], vec![0.0; 2])
            .with_sampling(Sampling::Stratified);
        assert!(s.tail_quantile_caveat(0.01).is_some());
        assert!(s.tail_quantile_caveat(0.001).is_some());
        assert!(s.tail_quantile_caveat(0.5).is_none(), "central is fine");
        let t = MonteCarloResult::new(vec![1.0, 2.0], vec![0.0; 2], vec![0.0; 2])
            .with_sampling(Sampling::TailIs { tilt: 1.0 });
        assert!(t.tail_quantile_caveat(0.01).is_none(), "IS is the fix");
    }

    #[test]
    fn normalize_log_weights_handles_degenerate_inputs() {
        assert!(normalize_log_weights(&[]).is_empty());
        let uniform = normalize_log_weights(&[f64::NEG_INFINITY, f64::NEG_INFINITY]);
        assert_eq!(uniform, vec![0.5, 0.5]);
        // Shift invariance: adding a constant to every log weight leaves
        // the normalized weights unchanged (max-subtract at work).
        let a = normalize_log_weights(&[0.0, 1.0, -2.0]);
        let b = normalize_log_weights(&[700.0, 701.0, 698.0]);
        for (x, y) in a.iter().zip(&b) {
            assert!((x - y).abs() < 1e-15);
        }
        let sum: f64 = a.iter().sum();
        assert!((sum - 1.0).abs() < 1e-12);
    }

    #[test]
    fn zero_tilt_matches_plain_up_to_weights() {
        // tilt = 0 draws the exact plain stream; weights collapse to
        // uniform, so every estimate matches plain sampling bit for bit.
        let d = design();
        let m = TimingModel::new(&d, ProcessParams::n90(), 800.0).expect("model");
        let base = MonteCarloConfig {
            samples: 32,
            sigma_nm: 2.0,
            seed: 77,
            ..Default::default()
        };
        let plain = run(&m, None, &base).expect("plain");
        let zero = run(
            &m,
            None,
            &MonteCarloConfig {
                sampling: Sampling::TailIs { tilt: 0.0 },
                ..base
            },
        )
        .expect("zero tilt");
        assert_eq!(plain.worst_slacks_ps(), zero.worst_slacks_ps());
        for &w in zero.weights() {
            assert!((w - 1.0 / 32.0).abs() < 1e-15);
        }
        assert!(
            (plain.worst_slack_quantile_ps(0.1) - zero.worst_slack_quantile_ps(0.1)).abs() < 1e-9
        );
    }
}
