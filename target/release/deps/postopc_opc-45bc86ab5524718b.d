/root/repo/target/release/deps/postopc_opc-45bc86ab5524718b.d: crates/opc/src/lib.rs crates/opc/src/error.rs crates/opc/src/fragment.rs crates/opc/src/hotspots.rs crates/opc/src/model.rs crates/opc/src/mrc.rs crates/opc/src/orc.rs crates/opc/src/rules.rs crates/opc/src/selective.rs crates/opc/src/sraf.rs Cargo.toml

/root/repo/target/release/deps/libpostopc_opc-45bc86ab5524718b.rmeta: crates/opc/src/lib.rs crates/opc/src/error.rs crates/opc/src/fragment.rs crates/opc/src/hotspots.rs crates/opc/src/model.rs crates/opc/src/mrc.rs crates/opc/src/orc.rs crates/opc/src/rules.rs crates/opc/src/selective.rs crates/opc/src/sraf.rs Cargo.toml

crates/opc/src/lib.rs:
crates/opc/src/error.rs:
crates/opc/src/fragment.rs:
crates/opc/src/hotspots.rs:
crates/opc/src/model.rs:
crates/opc/src/mrc.rs:
crates/opc/src/orc.rs:
crates/opc/src/rules.rs:
crates/opc/src/selective.rs:
crates/opc/src/sraf.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
