/root/repo/target/release/deps/postopc-b31fc844f7cdf52d.d: crates/core/src/lib.rs crates/core/src/compare.rs crates/core/src/dfm.rs crates/core/src/error.rs crates/core/src/extract.rs crates/core/src/flow.rs crates/core/src/guardband.rs crates/core/src/multilayer.rs crates/core/src/report.rs crates/core/src/tags.rs

/root/repo/target/release/deps/libpostopc-b31fc844f7cdf52d.rlib: crates/core/src/lib.rs crates/core/src/compare.rs crates/core/src/dfm.rs crates/core/src/error.rs crates/core/src/extract.rs crates/core/src/flow.rs crates/core/src/guardband.rs crates/core/src/multilayer.rs crates/core/src/report.rs crates/core/src/tags.rs

/root/repo/target/release/deps/libpostopc-b31fc844f7cdf52d.rmeta: crates/core/src/lib.rs crates/core/src/compare.rs crates/core/src/dfm.rs crates/core/src/error.rs crates/core/src/extract.rs crates/core/src/flow.rs crates/core/src/guardband.rs crates/core/src/multilayer.rs crates/core/src/report.rs crates/core/src/tags.rs

crates/core/src/lib.rs:
crates/core/src/compare.rs:
crates/core/src/dfm.rs:
crates/core/src/error.rs:
crates/core/src/extract.rs:
crates/core/src/flow.rs:
crates/core/src/guardband.rs:
crates/core/src/multilayer.rs:
crates/core/src/report.rs:
crates/core/src/tags.rs:
