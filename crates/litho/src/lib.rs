//! # postopc-litho
//!
//! Lithography simulation for the post-OPC timing flow: a SOCS-style
//! aerial-image model with genuine proximity phenomenology (iso-dense bias,
//! line-end pullback, corner rounding, through-focus/dose CD walk), a
//! constant-threshold resist, cutline metrology, and focus-exposure-matrix
//! sweeps.
//!
//! This crate substitutes the paper's calibrated commercial OPC/litho
//! models (see `DESIGN.md`): the imaging operator is a weighted stack of
//! analytic center-surround kernels rather than eigenfunctions of a
//! measured system, but it exposes the same interfaces the flow consumes —
//! intensity fields, printed contours, EPE and CD measurements.
//!
//! # Example
//!
//! ```
//! use postopc_litho::{AerialImage, ResistModel, SimulationSpec, cutline};
//! use postopc_geom::{Polygon, Rect};
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let gate = Polygon::from(Rect::new(-45, -600, 45, 600)?);
//! let window = Rect::new(-300, -300, 300, 300)?;
//! let image = AerialImage::simulate(&SimulationSpec::nominal(), &[gate], window)?;
//! let cd = cutline::measure_cd(&image, &ResistModel::standard(), (0.0, 0.0), (1.0, 0.0), 150.0)?;
//! println!("printed CD = {cd:.1} nm (drawn 90)");
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod bossung;
pub mod contour;
pub mod cutline;
mod error;
mod fem;
mod image;
mod kernels;
mod optics;
mod resist;
pub mod surrogate;
mod workspace;

pub use error::{LithoError, Result};
pub use fem::{FemPoint, FocusExposureMatrix, ProcessWindow};
pub use image::{AerialImage, KernelMode, SimulationSpec};
pub use kernels::{ImagingKernel, KernelStack, TapCache};
pub use optics::{OpticsParams, ProcessConditions};
pub use resist::ResistModel;
pub use surrogate::{SurrogateModel, SURROGATE_TARGETS};
pub use workspace::SimWorkspace;
