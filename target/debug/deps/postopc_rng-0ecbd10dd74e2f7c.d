/root/repo/target/debug/deps/postopc_rng-0ecbd10dd74e2f7c.d: crates/rng/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libpostopc_rng-0ecbd10dd74e2f7c.rmeta: crates/rng/src/lib.rs Cargo.toml

crates/rng/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
