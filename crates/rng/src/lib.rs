//! # postopc-rng
//!
//! A small, dependency-free pseudo-random number generator for the
//! postopc workspace: xoshiro256++ state seeded through SplitMix64.
//!
//! The API mirrors the subset of the external `rand` crate the workspace
//! used ([`SeedableRng::seed_from_u64`], [`RngExt::random_range`],
//! `rngs::StdRng`), so call sites port with an import swap — which is the
//! point: the build must resolve with no network access (see the offline
//! tier-1 requirement in `ROADMAP.md`).
//!
//! Streams are stable across platforms and releases: experiment tables and
//! test expectations may rely on exact draws for a given seed.
//!
//! # Example
//!
//! ```
//! use postopc_rng::rngs::StdRng;
//! use postopc_rng::{RngExt, SeedableRng};
//! let mut rng = StdRng::seed_from_u64(7);
//! let u: f64 = rng.random_range(0.0..1.0);
//! assert!((0.0..1.0).contains(&u));
//! let k = rng.random_range(0..=5usize);
//! assert!(k <= 5);
//! ```

#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Construction of a generator from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Sampling methods shared by all generators.
pub trait RngExt {
    /// The next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;

    /// A uniform sample from `range`.
    ///
    /// Supported ranges: half-open and inclusive ranges of `f64` and of
    /// the integer types the workspace draws (`i32`, `i64`, `u32`, `u64`,
    /// `usize`).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty (mirroring `rand`).
    fn random_range<R: SampleRange>(&mut self, range: R) -> R::Output
    where
        Self: Sized,
    {
        range.sample(self)
    }
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    /// The workspace's standard generator: xoshiro256++.
    ///
    /// Not cryptographic — it backs deterministic test-case generation,
    /// placement gap insertion and Monte Carlo sampling.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        pub(crate) s: [u64; 4],
    }
}

pub use rngs::StdRng;

/// One step of the SplitMix64 sequence; also usable standalone as a
/// cheap integer mixer.
#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Derives an independent child seed from a base seed and a stream index.
///
/// Used to give each Monte Carlo sample (or any other parallel work item)
/// its own generator whose stream does not depend on execution order —
/// the determinism keystone of the parallel analysis loops.
#[must_use]
pub fn split_seed(seed: u64, index: u64) -> u64 {
    let mut s = seed ^ index.wrapping_mul(0xA076_1D64_78BD_642F);
    // Two rounds decorrelate adjacent indices for any base seed.
    let first = splitmix64(&mut s);
    s ^= first;
    splitmix64(&mut s)
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> StdRng {
        // Expand the seed through SplitMix64 per the xoshiro authors'
        // recommendation; guarantees a non-zero state.
        let mut sm = seed;
        StdRng {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }
}

impl RngExt for StdRng {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        // xoshiro256++ by Blackman & Vigna (public domain reference).
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

/// A range that [`RngExt::random_range`] can sample from.
pub trait SampleRange {
    /// The sampled value type.
    type Output;
    /// Draws one uniform sample using `rng`.
    fn sample<G: RngExt>(self, rng: &mut G) -> Self::Output;
}

impl SampleRange for Range<f64> {
    type Output = f64;
    fn sample<G: RngExt>(self, rng: &mut G) -> f64 {
        assert!(self.start < self.end, "empty range {:?}", self);
        // 53 uniform mantissa bits in [0, 1).
        let u = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        let v = self.start + u * (self.end - self.start);
        // Guard the pathological rounding case v == end.
        if v < self.end {
            v
        } else {
            self.start
        }
    }
}

impl SampleRange for RangeInclusive<f64> {
    type Output = f64;
    fn sample<G: RngExt>(self, rng: &mut G) -> f64 {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "empty range {:?}", self);
        let u = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        start + u * (end - start)
    }
}

/// Uniform integer in `[0, span)` via Lemire's widening-multiply map;
/// bias is at most 2⁻⁶⁴·span — immaterial for simulation workloads.
#[inline]
fn bounded<G: RngExt>(rng: &mut G, span: u64) -> u64 {
    ((u128::from(rng.next_u64()) * u128::from(span)) >> 64) as u64
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample<G: RngExt>(self, rng: &mut G) -> $t {
                assert!(self.start < self.end, "empty range {:?}", self);
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + bounded(rng, span) as i128) as $t
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            fn sample<G: RngExt>(self, rng: &mut G) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range {:?}", self);
                let span = (end as i128 - start as i128) as u128 + 1;
                if span > u128::from(u64::MAX) {
                    // Full-width range: every bit pattern is valid.
                    return rng.next_u64() as $t;
                }
                (start as i128 + bounded(rng, span as u64) as i128) as $t
            }
        }
    )*};
}

impl_int_range!(i32, i64, u32, u64, usize);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn zero_seed_is_usable() {
        let mut rng = StdRng::seed_from_u64(0);
        assert_ne!(rng.s, [0; 4]);
        let draws: Vec<u64> = (0..4).map(|_| rng.next_u64()).collect();
        assert!(draws.windows(2).any(|w| w[0] != w[1]));
    }

    #[test]
    fn float_range_bounds() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..10_000 {
            let v = rng.random_range(2.0..3.0);
            assert!((2.0..3.0).contains(&v));
        }
        let v = rng.random_range(5.0..=5.0);
        assert_eq!(v, 5.0);
    }

    #[test]
    fn int_range_bounds_and_coverage() {
        let mut rng = StdRng::seed_from_u64(10);
        let mut seen = [false; 10];
        for _ in 0..1_000 {
            let v = rng.random_range(0..10);
            seen[usize::try_from(v).expect("in range")] = true;
        }
        assert!(seen.iter().all(|&s| s), "all buckets hit: {seen:?}");
        for _ in 0..1_000 {
            let v = rng.random_range(-5i64..=5);
            assert!((-5..=5).contains(&v));
        }
        assert_eq!(rng.random_range(7usize..8), 7);
        assert_eq!(rng.random_range(3u32..=3), 3);
    }

    #[test]
    fn float_range_is_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(11);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.random_range(0.0..1.0)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean = {mean}");
    }

    #[test]
    fn split_seed_decorrelates_indices() {
        let seeds: Vec<u64> = (0..100).map(|i| split_seed(1, i)).collect();
        let mut unique = seeds.clone();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(unique.len(), seeds.len());
        // Different base seeds give different families.
        assert_ne!(split_seed(1, 0), split_seed(2, 0));
        // And child streams actually differ.
        let mut a = StdRng::seed_from_u64(split_seed(1, 0));
        let mut b = StdRng::seed_from_u64(split_seed(1, 1));
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = StdRng::seed_from_u64(0);
        let _ = rng.random_range(3..3);
    }
}
