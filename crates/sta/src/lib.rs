//! # postopc-sta
//!
//! Static timing analysis for the post-OPC flow: a full arrival/required/
//! slack engine over compiled designs, with the back-annotation interface
//! the paper's methodology revolves around.
//!
//! - [`TimingLibrary`]: cell electrical characterization from the
//!   alpha-power device model (the Liberty/NLDM stand-in);
//! - [`TimingModel`] / [`TimingReport`]: arrival and required propagation,
//!   endpoint slacks, and speed-path extraction (worst path per endpoint);
//! - [`CdAnnotation`]: extracted per-gate channel lengths and per-net
//!   printed wire widths, consumed in place of drawn dimensions;
//! - [`CompiledSta`]: the compiled sample evaluator
//!   ([`TimingModel::compile`]) — annotation-invariant structure computed
//!   once, per-sample evaluation against reusable [`StaScratch`] buffers
//!   and a memoized [`CharacterizationCache`], bit-identical to
//!   [`TimingModel::analyze`];
//! - [`corners`]: traditional uniform worst-case CD corners;
//! - [`statistical`]: Monte Carlo timing over CD distributions.
//!
//! # Example
//!
//! ```
//! use postopc_sta::TimingModel;
//! use postopc_layout::{Design, generate, TechRules};
//! use postopc_device::ProcessParams;
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let design = Design::compile(generate::ripple_carry_adder(4)?, TechRules::n90())?;
//! let model = TimingModel::new(&design, ProcessParams::n90(), 600.0)?;
//! let report = model.analyze(None)?;
//! for path in report.top_paths(&design, 3) {
//!     println!("endpoint slack {:.1} ps over {} gates", path.slack_ps, path.gates.len());
//! }
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

mod annotate;
mod compiled;
pub mod corners;
mod error;
mod graph;
mod liberty;
pub mod paths;
pub mod quantile;
pub mod statistical;

pub use annotate::{CdAnnotation, GateAnnotation, NetAnnotation, TransistorCd};
pub use compiled::{
    CompiledSta, GateSensitivity, SampleCells, SampleTiming, SharedShiftCache, StaScratch, LANES,
    SHIFT_CACHE_CAP_DEFAULT, SHIFT_CACHE_CAP_ENV,
};
pub use corners::{
    analyze_corner, analyze_corners, analyze_corners_with, corner_annotation, Corner,
};
pub use error::{Result, StaError};
pub use graph::{TimingModel, TimingPath, TimingReport};
pub use liberty::{
    CellTiming, CharCacheEntry, CharacterizationCache, NldmTable, SequentialTiming, TimingLibrary,
    CHAR_CACHE_CAP_DEFAULT, CHAR_CACHE_CAP_ENV, CLOCK_SLEW_PS, NLDM_LOAD_PTS, NLDM_SLEW_AXIS_PS,
    NLDM_SLEW_PTS, PRIMARY_INPUT_SLEW_PS,
};
pub use paths::k_worst_paths;
pub use statistical::{
    ConvergencePoint, McEngine, MonteCarloConfig, MonteCarloResult, Sampling, ShiftCacheStats,
};
