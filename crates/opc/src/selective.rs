//! Selective OPC: route tagged (critical) polygons to model-based OPC and
//! the rest to cheap rule-based OPC.
//!
//! This is the paper's closing proposal: "by passing design intent to
//! process/OPC engineers, selective OPC can be applied to improve CD
//! variation control based on gates' functions such as critical gates and
//! matching transistors." The cost asymmetry (simulations vs table
//! lookups) is what experiment T7 quantifies.

use crate::error::Result;
use crate::model::{self, ModelOpcConfig, OpcReport};
use crate::rules::{self, RuleOpcConfig};
use postopc_geom::{Polygon, Rect};

/// Result of a selective correction run.
#[derive(Debug, Clone, PartialEq)]
pub struct SelectiveResult {
    /// Model-corrected masks, parallel to the tagged targets.
    pub corrected_tagged: Vec<Polygon>,
    /// Rule-corrected masks, parallel to the untagged targets.
    pub corrected_untagged: Vec<Polygon>,
    /// Model-OPC cost report (simulations, fragment moves).
    pub model_report: OpcReport,
    /// Rule-OPC fragment count (its only cost).
    pub rule_fragments: usize,
}

/// Corrects `tagged` polygons with model-based OPC and `untagged` with
/// rule-based OPC.
///
/// The rule pass runs first; its output becomes frozen context for the
/// model pass, so critical-gate corrections account for their (cheaply
/// corrected) neighbours. `window` must cover the tagged polygons.
///
/// # Errors
///
/// Propagates model/rule correction errors.
pub fn correct(
    model_config: &ModelOpcConfig,
    rule_config: &RuleOpcConfig,
    tagged: &[Polygon],
    untagged: &[Polygon],
    context: &[Polygon],
    window: Rect,
) -> Result<SelectiveResult> {
    // Rule pass over the non-critical geometry.
    let rule_result = rules::correct(rule_config, untagged, &{
        let mut ctx: Vec<Polygon> = tagged.to_vec();
        ctx.extend(context.iter().cloned());
        ctx
    })?;
    // Model pass over the critical geometry, seeing the rule-corrected
    // neighbours as context.
    let mut model_context = rule_result.corrected.clone();
    model_context.extend(context.iter().cloned());
    let model_result = model::correct(model_config, tagged, &model_context, window)?;
    Ok(SelectiveResult {
        corrected_tagged: model_result.corrected,
        corrected_untagged: rule_result.corrected,
        model_report: model_result.report,
        rule_fragments: rule_result.fragments,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::orc::{self, OrcConfig};
    use postopc_litho::{ResistModel, SimulationSpec};

    fn line(x0: i64, x1: i64) -> Polygon {
        Polygon::from(Rect::new(x0, -300, x1, 300).expect("rect"))
    }

    fn window() -> Rect {
        Rect::new(-500, -450, 700, 450).expect("rect")
    }

    #[test]
    fn selective_splits_work_between_engines() {
        let tagged = vec![line(-45, 45)];
        let untagged = vec![line(-325, -235), line(235, 325), line(515, 605)];
        let result = correct(
            &ModelOpcConfig::standard(),
            &RuleOpcConfig::standard(),
            &tagged,
            &untagged,
            &[],
            window(),
        )
        .expect("selective");
        assert_eq!(result.corrected_tagged.len(), 1);
        assert_eq!(result.corrected_untagged.len(), 3);
        assert!(result.model_report.simulations > 0);
        assert!(result.rule_fragments > 0);
    }

    #[test]
    fn tagged_geometry_verifies_better_than_rule_only() {
        let tagged = vec![line(-45, 45)];
        let untagged = vec![line(-325, -235), line(235, 325)];
        let selective = correct(
            &ModelOpcConfig::standard(),
            &RuleOpcConfig::standard(),
            &tagged,
            &untagged,
            &[],
            window(),
        )
        .expect("selective");
        // Compare against an all-rule flow.
        let all_rule = rules::correct(
            &RuleOpcConfig::standard(),
            &[tagged.clone(), untagged.clone()].concat(),
            &[],
        )
        .expect("rule");
        let orc_cfg = OrcConfig::standard();
        let sim = SimulationSpec::nominal();
        let resist = ResistModel::standard();
        let mut selective_mask = selective.corrected_tagged.clone();
        selective_mask.extend(selective.corrected_untagged.clone());
        let sel_report = orc::verify(
            &orc_cfg,
            &sim,
            &resist,
            &tagged,
            &selective_mask,
            &[],
            window(),
        )
        .expect("verify");
        let rule_report = orc::verify(
            &orc_cfg,
            &sim,
            &resist,
            &tagged,
            &all_rule.corrected,
            &[],
            window(),
        )
        .expect("verify");
        assert!(
            sel_report.rms_epe < rule_report.rms_epe,
            "selective (model on tagged) rms {} should beat all-rule {}",
            sel_report.rms_epe,
            rule_report.rms_epe
        );
    }

    #[test]
    fn cost_scales_with_tagged_fraction() {
        let all = vec![
            line(-45, 45),
            line(-325, -235),
            line(235, 325),
            line(515, 605),
        ];
        // Tag one polygon vs tag all.
        let one = correct(
            &ModelOpcConfig::standard(),
            &RuleOpcConfig::standard(),
            &all[..1],
            &all[1..],
            &[],
            window(),
        )
        .expect("selective");
        let every = correct(
            &ModelOpcConfig::standard(),
            &RuleOpcConfig::standard(),
            &all,
            &[],
            &[],
            window(),
        )
        .expect("selective");
        assert!(
            one.model_report.fragment_moves < every.model_report.fragment_moves,
            "tagging fewer gates must cost fewer model moves"
        );
        assert!(one.model_report.fragments < every.model_report.fragments);
    }
}
