//! Focus-exposure matrix (FEM): CD response across the process window.

use crate::error::Result;
use crate::optics::ProcessConditions;

/// One measured point of a focus-exposure matrix.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FemPoint {
    /// Conditions of this exposure.
    pub conditions: ProcessConditions,
    /// Measured value (typically a CD in nm), or `None` if the feature
    /// failed to print at these conditions.
    pub value: Option<f64>,
}

/// A focus-exposure matrix: a rectangular sweep of focus × dose with one
/// measured value per cell.
#[derive(Debug, Clone, PartialEq)]
pub struct FocusExposureMatrix {
    focus_values: Vec<f64>,
    dose_values: Vec<f64>,
    points: Vec<FemPoint>,
}

impl FocusExposureMatrix {
    /// Runs `measure` at every (focus, dose) combination.
    ///
    /// `measure` returns `Ok(cd)` for printable conditions; an `Err` is
    /// recorded as a failed (`None`) cell rather than aborting the sweep —
    /// dying at the window edge is exactly what a FEM is for.
    ///
    /// # Errors
    ///
    /// Never fails currently; the `Result` return leaves room for sweep-
    /// level failures (e.g. aborted simulations) without an API break.
    pub fn sweep(
        focus_values: Vec<f64>,
        dose_values: Vec<f64>,
        mut measure: impl FnMut(&ProcessConditions) -> Result<f64>,
    ) -> Result<FocusExposureMatrix> {
        let mut points = Vec::with_capacity(focus_values.len() * dose_values.len());
        for &dose in &dose_values {
            for &focus_nm in &focus_values {
                let conditions = ProcessConditions { focus_nm, dose };
                let value = measure(&conditions).ok();
                points.push(FemPoint { conditions, value });
            }
        }
        Ok(FocusExposureMatrix {
            focus_values,
            dose_values,
            points,
        })
    }

    /// [`FocusExposureMatrix::sweep`] with the cells measured on the
    /// shared worker pool: one task per (focus, dose) cell, results
    /// merged in grid order so the matrix is identical to a serial sweep.
    ///
    /// `threads` follows the pool convention: `None` defers to the
    /// `POSTOPC_THREADS` environment variable, then to the machine's
    /// available parallelism.
    ///
    /// # Errors
    ///
    /// Never fails currently (failed cells are recorded as `None`), like
    /// the serial sweep.
    pub fn sweep_parallel(
        focus_values: Vec<f64>,
        dose_values: Vec<f64>,
        threads: Option<usize>,
        measure: impl Fn(&ProcessConditions) -> Result<f64> + Sync,
    ) -> Result<FocusExposureMatrix> {
        let mut grid = Vec::with_capacity(focus_values.len() * dose_values.len());
        for &dose in &dose_values {
            for &focus_nm in &focus_values {
                grid.push(ProcessConditions { focus_nm, dose });
            }
        }
        let workers = postopc_parallel::effective_threads(threads);
        let points = postopc_parallel::par_map(workers, &grid, |_, conditions| FemPoint {
            conditions: *conditions,
            value: measure(conditions).ok(),
        });
        Ok(FocusExposureMatrix {
            focus_values,
            dose_values,
            points,
        })
    }

    /// The focus axis values.
    pub fn focus_values(&self) -> &[f64] {
        &self.focus_values
    }

    /// The dose axis values.
    pub fn dose_values(&self) -> &[f64] {
        &self.dose_values
    }

    /// All points, dose-major (rows of constant dose).
    pub fn points(&self) -> &[FemPoint] {
        &self.points
    }

    /// The measured value at a (focus index, dose index) cell.
    pub fn at(&self, focus_index: usize, dose_index: usize) -> Option<f64> {
        self.points
            .get(dose_index * self.focus_values.len() + focus_index)
            .and_then(|p| p.value)
    }

    /// The fraction of cells whose value lies within ±`tolerance` of
    /// `target` — a scalar process-window metric.
    pub fn window_yield(&self, target: f64, tolerance: f64) -> f64 {
        if self.points.is_empty() {
            return 0.0;
        }
        let good = self
            .points
            .iter()
            .filter(|p| matches!(p.value, Some(v) if (v - target).abs() <= tolerance))
            .count();
        good as f64 / self.points.len() as f64
    }

    /// The largest contiguous rectangular process window (focus range ×
    /// dose range) in which every cell stays within ±`tolerance` of
    /// `target`, or `None` if no cell qualifies.
    ///
    /// Ranges are reported as `(min, max)` of the matrix axis values; the
    /// window with the largest (focus span × dose span) area wins, with
    /// focus span breaking ties (depth of focus is the scarcer resource).
    pub fn process_window(&self, target: f64, tolerance: f64) -> Option<ProcessWindow> {
        let nf = self.focus_values.len();
        let nd = self.dose_values.len();
        let ok = |fi: usize, di: usize| matches!(self.at(fi, di), Some(v) if (v - target).abs() <= tolerance);
        let mut best: Option<(f64, f64, ProcessWindow)> = None; // (area, fspan, window)
        for f0 in 0..nf {
            for f1 in f0..nf {
                for d0 in 0..nd {
                    'd1: for d1 in d0..nd {
                        for fi in f0..=f1 {
                            for di in d0..=d1 {
                                if !ok(fi, di) {
                                    continue 'd1;
                                }
                            }
                        }
                        let fspan = self.focus_values[f1] - self.focus_values[f0];
                        let dspan = self.dose_values[d1] - self.dose_values[d0];
                        // Single cells count with epsilon spans so a
                        // one-point window still beats no window.
                        let area = (fspan + 1e-9) * (dspan + 1e-9);
                        let candidate = ProcessWindow {
                            focus_range_nm: (self.focus_values[f0], self.focus_values[f1]),
                            dose_range: (self.dose_values[d0], self.dose_values[d1]),
                        };
                        let better = match &best {
                            None => true,
                            Some((a, f, _)) => {
                                area > *a + 1e-15 || ((area - *a).abs() <= 1e-15 && fspan > *f)
                            }
                        };
                        if better {
                            best = Some((area, fspan, candidate));
                        }
                    }
                }
            }
        }
        best.map(|(_, _, w)| w)
    }
}

/// A rectangular process window: the focus and dose ranges over which a
/// feature stays in spec.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProcessWindow {
    /// Focus range (min, max) in nm.
    pub focus_range_nm: (f64, f64),
    /// Dose range (min, max), relative.
    pub dose_range: (f64, f64),
}

impl ProcessWindow {
    /// Depth of focus (focus span) in nm.
    pub fn depth_of_focus_nm(&self) -> f64 {
        self.focus_range_nm.1 - self.focus_range_nm.0
    }

    /// Exposure latitude (dose span / center dose), as a fraction.
    pub fn exposure_latitude(&self) -> f64 {
        let center = 0.5 * (self.dose_range.0 + self.dose_range.1);
        if center <= 0.0 {
            return 0.0;
        }
        (self.dose_range.1 - self.dose_range.0) / center
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// An analytic stand-in CD model: bowl in focus, linear in dose.
    fn toy_cd(c: &ProcessConditions) -> Result<f64> {
        Ok(90.0 - 20.0 * (c.dose - 1.0) * 10.0 + 0.0002 * c.focus_nm * c.focus_nm)
    }

    #[test]
    fn sweep_covers_grid() {
        let fem =
            FocusExposureMatrix::sweep(vec![-100.0, 0.0, 100.0], vec![0.95, 1.0, 1.05], toy_cd)
                .expect("sweep");
        assert_eq!(fem.points().len(), 9);
        assert_eq!(fem.at(1, 1), Some(90.0));
        // Bossung bowl: defocus raises CD symmetrically.
        assert!(fem.at(0, 1).expect("cell") > fem.at(1, 1).expect("cell"));
        assert_eq!(fem.at(0, 1), fem.at(2, 1));
    }

    #[test]
    fn failed_cells_recorded_as_none() {
        let fem = FocusExposureMatrix::sweep(vec![0.0], vec![1.0, 9.0], |c| {
            if c.dose > 2.0 {
                Err(crate::error::LithoError::NoContourCrossing {
                    x_nm: 0.0,
                    y_nm: 0.0,
                })
            } else {
                Ok(90.0)
            }
        })
        .expect("sweep");
        assert_eq!(fem.at(0, 0), Some(90.0));
        assert_eq!(fem.at(0, 1), None);
    }

    #[test]
    fn parallel_sweep_matches_serial() {
        let focus = vec![-150.0, -75.0, 0.0, 75.0, 150.0];
        let dose = vec![0.9, 1.0, 1.1];
        let serial =
            FocusExposureMatrix::sweep(focus.clone(), dose.clone(), toy_cd).expect("serial");
        for workers in [Some(1), Some(4), None] {
            let pooled =
                FocusExposureMatrix::sweep_parallel(focus.clone(), dose.clone(), workers, toy_cd)
                    .expect("pooled");
            assert_eq!(pooled, serial, "workers = {workers:?}");
        }
    }

    #[test]
    fn imaging_sweep_with_shared_workspace_matches_fresh_workspaces() {
        // A real imaging measure across the FEM grid: every (focus, dose)
        // cell re-discretizes kernels unless the tap cache works, and the
        // base grid is reused across all cells. The shared-workspace sweep
        // must be bit-identical to fresh workspaces per cell.
        use crate::cutline;
        use crate::image::{AerialImage, SimulationSpec};
        use crate::resist::ResistModel;
        use crate::workspace::SimWorkspace;
        use postopc_geom::{Polygon, Rect};

        let line = Polygon::from(Rect::new(-45, -600, 45, 600).expect("rect"));
        let window = Rect::new(-200, -200, 200, 200).expect("rect");
        let resist = ResistModel::standard();
        let measure_with = |ws: &mut SimWorkspace, c: &ProcessConditions| -> Result<f64> {
            let spec = SimulationSpec::nominal().with_conditions(*c);
            let image = AerialImage::simulate_with(ws, &spec, std::slice::from_ref(&line), window)?;
            cutline::measure_cd(&image, &resist, (0.0, 0.0), (1.0, 0.0), 150.0)
        };
        let focus = vec![-120.0, 0.0, 120.0];
        let dose = vec![0.97, 1.03];
        let mut shared = SimWorkspace::new();
        let reused = FocusExposureMatrix::sweep(focus.clone(), dose.clone(), |c| {
            measure_with(&mut shared, c)
        })
        .expect("sweep");
        let fresh =
            FocusExposureMatrix::sweep(focus, dose, |c| measure_with(&mut SimWorkspace::new(), c))
                .expect("sweep");
        assert_eq!(reused, fresh);
        // The sweep actually measured something plausible everywhere.
        assert!(reused.points().iter().all(|p| p.value.is_some()));
    }

    #[test]
    fn process_window_finds_the_in_spec_rectangle() {
        let fem = FocusExposureMatrix::sweep(
            vec![-150.0, -75.0, 0.0, 75.0, 150.0],
            vec![0.9, 1.0, 1.1],
            toy_cd,
        )
        .expect("sweep");
        // toy_cd: 90 at (0, 1.0); grows quadratically in focus (4.5 nm at
        // |focus| = 150) and ±20 nm at dose 0.9/1.1. Tolerance 3 nm keeps
        // |focus| <= 75 at dose 1.0 only.
        let w = fem.process_window(90.0, 3.0).expect("window exists");
        assert_eq!(w.dose_range, (1.0, 1.0));
        assert_eq!(w.focus_range_nm, (-75.0, 75.0));
        assert_eq!(w.depth_of_focus_nm(), 150.0);
        // Impossible tolerance: no window.
        assert!(fem.process_window(50.0, 0.1).is_none());
        // Huge tolerance: the whole matrix.
        let all = fem.process_window(90.0, 1000.0).expect("window");
        assert_eq!(all.focus_range_nm, (-150.0, 150.0));
        assert!((all.exposure_latitude() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn window_yield_counts_in_spec_cells() {
        let fem = FocusExposureMatrix::sweep(vec![-150.0, 0.0, 150.0], vec![0.9, 1.0, 1.1], toy_cd)
            .expect("sweep");
        let y_all = fem.window_yield(90.0, 1000.0);
        assert!((y_all - 1.0).abs() < 1e-12);
        let y_tight = fem.window_yield(90.0, 4.0);
        assert!(y_tight > 0.0 && y_tight < 1.0, "yield = {y_tight}");
    }
}
