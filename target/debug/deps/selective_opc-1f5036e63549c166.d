/root/repo/target/debug/deps/selective_opc-1f5036e63549c166.d: crates/bench/benches/selective_opc.rs Cargo.toml

/root/repo/target/debug/deps/libselective_opc-1f5036e63549c166.rmeta: crates/bench/benches/selective_opc.rs Cargo.toml

crates/bench/benches/selective_opc.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
