/root/repo/target/debug/deps/postopc_litho-61aa088a490a5896.d: crates/litho/src/lib.rs crates/litho/src/bossung.rs crates/litho/src/contour.rs crates/litho/src/cutline.rs crates/litho/src/error.rs crates/litho/src/fem.rs crates/litho/src/image.rs crates/litho/src/kernels.rs crates/litho/src/optics.rs crates/litho/src/resist.rs

/root/repo/target/debug/deps/libpostopc_litho-61aa088a490a5896.rlib: crates/litho/src/lib.rs crates/litho/src/bossung.rs crates/litho/src/contour.rs crates/litho/src/cutline.rs crates/litho/src/error.rs crates/litho/src/fem.rs crates/litho/src/image.rs crates/litho/src/kernels.rs crates/litho/src/optics.rs crates/litho/src/resist.rs

/root/repo/target/debug/deps/libpostopc_litho-61aa088a490a5896.rmeta: crates/litho/src/lib.rs crates/litho/src/bossung.rs crates/litho/src/contour.rs crates/litho/src/cutline.rs crates/litho/src/error.rs crates/litho/src/fem.rs crates/litho/src/image.rs crates/litho/src/kernels.rs crates/litho/src/optics.rs crates/litho/src/resist.rs

crates/litho/src/lib.rs:
crates/litho/src/bossung.rs:
crates/litho/src/contour.rs:
crates/litho/src/cutline.rs:
crates/litho/src/error.rs:
crates/litho/src/fem.rs:
crates/litho/src/image.rs:
crates/litho/src/kernels.rs:
crates/litho/src/optics.rs:
crates/litho/src/resist.rs:
