//! Process-window exploration: printed gate CD and circuit delay across
//! the focus-exposure matrix.
//!
//! ```bash
//! cargo run --release --example process_window
//! ```

use postopc_geom::{Polygon, Rect};
use postopc_litho::{
    cutline, AerialImage, FocusExposureMatrix, ProcessConditions, ResistModel, SimulationSpec,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let line = Polygon::from(Rect::new(-45, -600, 45, 600)?);
    let dense: Vec<Polygon> = vec![
        line.clone(),
        Polygon::from(Rect::new(-325, -600, -235, 600)?),
        Polygon::from(Rect::new(235, -600, 325, 600)?),
    ];
    let window = Rect::new(-300, -300, 300, 300)?;
    let resist = ResistModel::standard();

    for (name, mask) in [("isolated", vec![line]), ("dense", dense)] {
        let fem = FocusExposureMatrix::sweep(
            vec![-150.0, -75.0, 0.0, 75.0, 150.0],
            vec![0.94, 1.0, 1.06],
            |conditions: &ProcessConditions| {
                let spec = SimulationSpec::nominal().with_conditions(*conditions);
                let image = AerialImage::simulate(&spec, &mask, window)?;
                cutline::measure_cd(&image, &resist, (0.0, 0.0), (1.0, 0.0), 150.0)
            },
        )?;
        println!("printed CD (nm) of the {name} 90 nm line:");
        print!("{:>8}", "dose\\foc");
        for f in fem.focus_values() {
            print!("{f:>9.0}");
        }
        println!();
        for (di, dose) in fem.dose_values().iter().enumerate() {
            print!("{dose:>8.2}");
            for fi in 0..fem.focus_values().len() {
                match fem.at(fi, di) {
                    Some(cd) => print!("{cd:>9.2}"),
                    None => print!("{:>9}", "-"),
                }
            }
            println!();
        }
        println!(
            "within +/-10% of 90 nm over {:.0}% of the matrix\n",
            100.0 * fem.window_yield(90.0, 9.0)
        );
    }
    Ok(())
}
