//! # postopc-rng
//!
//! A small, dependency-free pseudo-random number generator for the
//! postopc workspace: xoshiro256++ state seeded through SplitMix64.
//!
//! The API mirrors the subset of the external `rand` crate the workspace
//! used ([`SeedableRng::seed_from_u64`], [`RngExt::random_range`],
//! `rngs::StdRng`), so call sites port with an import swap — which is the
//! point: the build must resolve with no network access (see the offline
//! tier-1 requirement in `ROADMAP.md`).
//!
//! Streams are stable across platforms and releases: experiment tables and
//! test expectations may rely on exact draws for a given seed.
//!
//! # Example
//!
//! ```
//! use postopc_rng::rngs::StdRng;
//! use postopc_rng::{RngExt, SeedableRng};
//! let mut rng = StdRng::seed_from_u64(7);
//! let u: f64 = rng.random_range(0.0..1.0);
//! assert!((0.0..1.0).contains(&u));
//! let k = rng.random_range(0..=5usize);
//! assert!(k <= 5);
//! ```

#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Construction of a generator from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Sampling methods shared by all generators.
pub trait RngExt {
    /// The next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;

    /// A uniform sample from `range`.
    ///
    /// Supported ranges: half-open and inclusive ranges of `f64` and of
    /// the integer types the workspace draws (`i32`, `i64`, `u32`, `u64`,
    /// `usize`).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty (mirroring `rand`).
    fn random_range<R: SampleRange>(&mut self, range: R) -> R::Output
    where
        Self: Sized,
    {
        range.sample(self)
    }
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    /// The workspace's standard generator: xoshiro256++.
    ///
    /// Not cryptographic — it backs deterministic test-case generation,
    /// placement gap insertion and Monte Carlo sampling.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        pub(crate) s: [u64; 4],
    }
}

pub use rngs::StdRng;

/// One step of the SplitMix64 sequence; also usable standalone as a
/// cheap integer mixer.
#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Derives an independent child seed from a base seed and a stream index.
///
/// Used to give each Monte Carlo sample (or any other parallel work item)
/// its own generator whose stream does not depend on execution order —
/// the determinism keystone of the parallel analysis loops.
#[must_use]
pub fn split_seed(seed: u64, index: u64) -> u64 {
    let mut s = seed ^ index.wrapping_mul(0xA076_1D64_78BD_642F);
    // Two rounds decorrelate adjacent indices for any base seed.
    let first = splitmix64(&mut s);
    s ^= first;
    splitmix64(&mut s)
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> StdRng {
        // Expand the seed through SplitMix64 per the xoshiro authors'
        // recommendation; guarantees a non-zero state.
        let mut sm = seed;
        StdRng {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }
}

impl RngExt for StdRng {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        // xoshiro256++ by Blackman & Vigna (public domain reference).
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

/// `N` independent xoshiro256++ streams stepped in lockstep, state held
/// structure-of-arrays so one step's add/xor/rotate lattice runs as
/// straight-line `N`-wide lane loops (autovectorized in release builds).
///
/// Lane `l` replays exactly the stream of
/// `StdRng::seed_from_u64(seeds[l])` — the Monte Carlo batch sampler
/// relies on that equivalence for its scalar/batched bit-parity.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LaneRng<const N: usize> {
    s: [[u64; N]; 4],
}

impl<const N: usize> LaneRng<N> {
    /// Builds the lockstep streams of `seeds`, each expanded through
    /// SplitMix64 exactly as [`SeedableRng::seed_from_u64`] expands one.
    #[must_use]
    pub fn seed_from(seeds: [u64; N]) -> Self {
        let mut s = [[0u64; N]; 4];
        for (l, &seed) in seeds.iter().enumerate() {
            let mut sm = seed;
            for word in &mut s {
                word[l] = splitmix64(&mut sm);
            }
        }
        LaneRng { s }
    }

    /// Steps every stream once; lane `l` of the result is the draw the
    /// scalar generator seeded with `seeds[l]` would produce at this
    /// position of its stream.
    #[inline]
    pub fn next_u64s(&mut self) -> [u64; N] {
        let [s0, s1, s2, s3] = &mut self.s;
        let mut out = [0u64; N];
        for l in 0..N {
            out[l] = s0[l]
                .wrapping_add(s3[l])
                .rotate_left(23)
                .wrapping_add(s0[l]);
        }
        for l in 0..N {
            let t = s1[l] << 17;
            s2[l] ^= s0[l];
            s3[l] ^= s1[l];
            s1[l] ^= s2[l];
            s0[l] ^= s3[l];
            s2[l] ^= t;
            s3[l] = s3[l].rotate_left(45);
        }
        out
    }
}

/// A range that [`RngExt::random_range`] can sample from.
pub trait SampleRange {
    /// The sampled value type.
    type Output;
    /// Draws one uniform sample using `rng`.
    fn sample<G: RngExt>(self, rng: &mut G) -> Self::Output;
}

impl SampleRange for Range<f64> {
    type Output = f64;
    fn sample<G: RngExt>(self, rng: &mut G) -> f64 {
        assert!(self.start < self.end, "empty range {:?}", self);
        unit_range_f64(rng.next_u64(), self.start, self.end)
    }
}

/// Maps 64 raw uniform bits onto `[start, end)`: the top 53 bits as a
/// uniform in `[0, 1)`, lerped onto the range, with the pathological
/// round-up-to-`end` case folded back to `start`.
///
/// This is the sampling kernel of [`RngExt::random_range`] over
/// `Range<f64>`, exposed so lane-parallel fills over [`LaneRng`] draws
/// run the identical float ops — and so produce the identical bits — as
/// the scalar path.
#[inline]
#[must_use]
pub fn unit_range_f64(raw: u64, start: f64, end: f64) -> f64 {
    let u = (raw >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
    let v = start + u * (end - start);
    if v < end {
        v
    } else {
        start
    }
}

impl SampleRange for RangeInclusive<f64> {
    type Output = f64;
    fn sample<G: RngExt>(self, rng: &mut G) -> f64 {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "empty range {:?}", self);
        let u = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        start + u * (end - start)
    }
}

/// Uniform integer in `[0, span)` via Lemire's widening-multiply map;
/// bias is at most 2⁻⁶⁴·span — immaterial for simulation workloads.
#[inline]
fn bounded<G: RngExt>(rng: &mut G, span: u64) -> u64 {
    ((u128::from(rng.next_u64()) * u128::from(span)) >> 64) as u64
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample<G: RngExt>(self, rng: &mut G) -> $t {
                assert!(self.start < self.end, "empty range {:?}", self);
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + bounded(rng, span) as i128) as $t
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            fn sample<G: RngExt>(self, rng: &mut G) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range {:?}", self);
                let span = (end as i128 - start as i128) as u128 + 1;
                if span > u128::from(u64::MAX) {
                    // Full-width range: every bit pattern is valid.
                    return rng.next_u64() as $t;
                }
                (start as i128 + bounded(rng, span as u64) as i128) as $t
            }
        }
    )*};
}

impl_int_range!(i32, i64, u32, u64, usize);

/// Tail boundary of [`normal_quantile`]: uniforms outside
/// `NORMAL_QUANTILE_P_LOW ..= 1 − NORMAL_QUANTILE_P_LOW` take the tail
/// branches, everything else the vectorizable central branch
/// ([`normal_quantile_central`]).
pub const NORMAL_QUANTILE_P_LOW: f64 = 0.02425;

/// Acklam coefficients: central-region numerator (`A`) / denominator
/// (`B`), tail numerator (`C`) / denominator (`D`). Shared by the scalar
/// quantile and lane-parallel fills so both produce identical bits.
const A: [f64; 6] = [
    -3.969_683_028_665_376e1,
    2.209_460_984_245_205e2,
    -2.759_285_104_469_687e2,
    1.383_577_518_672_69e2,
    -3.066_479_806_614_716e1,
    2.506_628_277_459_239,
];
const B: [f64; 5] = [
    -5.447_609_879_822_406e1,
    1.615_858_368_580_409e2,
    -1.556_989_798_598_866e2,
    6.680_131_188_771_972e1,
    -1.328_068_155_288_572e1,
];
const C: [f64; 6] = [
    -7.784_894_002_430_293e-3,
    -3.223_964_580_411_365e-1,
    -2.400_758_277_161_838,
    -2.549_732_539_343_734,
    4.374_664_141_464_968,
    2.938_163_982_698_783,
];
const D: [f64; 4] = [
    7.784_695_709_041_462e-3,
    3.224_671_290_700_398e-1,
    2.445_134_137_142_996,
    3.754_408_661_907_416,
];

/// Standard-normal quantile (inverse CDF), Acklam's rational
/// approximation: relative error below `1.2e-9` over the open unit
/// interval, far cheaper than a Box–Muller transform (one uniform, no
/// trigonometry). This is the inverse-CDF kernel behind every Monte Carlo
/// sampling scheme in the workspace — plain and antithetic draws invert an
/// unconstrained uniform, stratified draws invert a uniform confined to
/// one stratum, and importance-sampled (tilted) streams shift its output
/// by a per-gate mean and replay the identical bits when reweighting.
#[must_use]
pub fn normal_quantile(p: f64) -> f64 {
    if p < NORMAL_QUANTILE_P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p > 1.0 - NORMAL_QUANTILE_P_LOW {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else {
        normal_quantile_central(p)
    }
}

/// The central branch of [`normal_quantile`]
/// (`NORMAL_QUANTILE_P_LOW ..= 1 − NORMAL_QUANTILE_P_LOW`): pure
/// straight-line rational arithmetic, so a loop applying it to a whole
/// buffer autovectorizes. Outside the central region its value is
/// meaningless — callers must overwrite through the tail branches.
#[inline]
#[must_use]
pub fn normal_quantile_central(p: f64) -> f64 {
    let q = p - 0.5;
    let r = q * q;
    (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
        / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn lane_rng_replays_scalar_streams() {
        // The lockstep generator's whole contract: lane l IS the stream
        // of StdRng::seed_from_u64(seeds[l]), draw for draw.
        let seeds = [7u64, 0, 42, u64::MAX, 1, 2, 3, 0xDEAD_BEEF];
        let mut lanes = LaneRng::seed_from(seeds);
        let mut scalars: Vec<StdRng> = seeds.iter().map(|&s| StdRng::seed_from_u64(s)).collect();
        for _ in 0..256 {
            let step = lanes.next_u64s();
            for (l, rng) in scalars.iter_mut().enumerate() {
                assert_eq!(step[l], rng.next_u64(), "lane {l}");
            }
        }
    }

    #[test]
    fn unit_range_f64_matches_random_range() {
        let mut a = StdRng::seed_from_u64(5);
        let mut b = StdRng::seed_from_u64(5);
        for _ in 0..1000 {
            let direct = a.random_range(0.25..0.75);
            let via_raw = unit_range_f64(b.next_u64(), 0.25, 0.75);
            assert_eq!(direct.to_bits(), via_raw.to_bits());
        }
    }

    #[test]
    fn zero_seed_is_usable() {
        let mut rng = StdRng::seed_from_u64(0);
        assert_ne!(rng.s, [0; 4]);
        let draws: Vec<u64> = (0..4).map(|_| rng.next_u64()).collect();
        assert!(draws.windows(2).any(|w| w[0] != w[1]));
    }

    #[test]
    fn float_range_bounds() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..10_000 {
            let v = rng.random_range(2.0..3.0);
            assert!((2.0..3.0).contains(&v));
        }
        let v = rng.random_range(5.0..=5.0);
        assert_eq!(v, 5.0);
    }

    #[test]
    fn int_range_bounds_and_coverage() {
        let mut rng = StdRng::seed_from_u64(10);
        let mut seen = [false; 10];
        for _ in 0..1_000 {
            let v = rng.random_range(0..10);
            seen[usize::try_from(v).expect("in range")] = true;
        }
        assert!(seen.iter().all(|&s| s), "all buckets hit: {seen:?}");
        for _ in 0..1_000 {
            let v = rng.random_range(-5i64..=5);
            assert!((-5..=5).contains(&v));
        }
        assert_eq!(rng.random_range(7usize..8), 7);
        assert_eq!(rng.random_range(3u32..=3), 3);
    }

    #[test]
    fn float_range_is_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(11);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.random_range(0.0..1.0)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean = {mean}");
    }

    #[test]
    fn split_seed_decorrelates_indices() {
        let seeds: Vec<u64> = (0..100).map(|i| split_seed(1, i)).collect();
        let mut unique = seeds.clone();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(unique.len(), seeds.len());
        // Different base seeds give different families.
        assert_ne!(split_seed(1, 0), split_seed(2, 0));
        // And child streams actually differ.
        let mut a = StdRng::seed_from_u64(split_seed(1, 0));
        let mut b = StdRng::seed_from_u64(split_seed(1, 1));
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = StdRng::seed_from_u64(0);
        let _ = rng.random_range(3..3);
    }

    #[test]
    fn normal_quantile_matches_tables_and_is_odd() {
        // Φ⁻¹ spot checks (values from standard tables).
        assert!((normal_quantile(0.5) - 0.0).abs() < 1e-9);
        assert!((normal_quantile(0.975) - 1.959_963_985).abs() < 1e-6);
        assert!((normal_quantile(0.025) + 1.959_963_985).abs() < 1e-6);
        assert!((normal_quantile(0.841_344_746) - 1.0).abs() < 1e-6);
        // Tail branches (beyond the 0.02425 split) stay sane and odd.
        assert!((normal_quantile(0.001) + 3.090_232_306).abs() < 1e-6);
        assert!((normal_quantile(0.999) - 3.090_232_306).abs() < 1e-6);
        // Central branch agrees with the dispatcher inside its region.
        for p in [0.05, 0.25, 0.5, 0.75, 0.95] {
            assert_eq!(
                normal_quantile(p).to_bits(),
                normal_quantile_central(p).to_bits()
            );
        }
    }
}
