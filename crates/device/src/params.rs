//! Process parameters for the 90 nm-class technology model.
//!
//! The workspace substitutes foundry BSIM decks with an alpha-power-law
//! model (Sakurai–Newton) plus a short-channel V_th roll-off. Only the
//! *sensitivities* matter for reproducing the paper: delay and leakage must
//! respond to printed gate length the way silicon does — super-linearly,
//! and much more steeply for leakage than for delay.

/// Technology constants shared by all device evaluations.
///
/// Units: volts, nm, µA, fF, kΩ, ps (so that kΩ·fF = ps exactly).
///
/// ```
/// use postopc_device::ProcessParams;
/// let p = ProcessParams::n90();
/// assert_eq!(p.l_nominal_nm, 90.0);
/// assert!(p.vdd > 1.0 && p.vdd < 1.5);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ProcessParams {
    /// Supply voltage in volts.
    pub vdd: f64,
    /// Nominal (drawn) gate length in nm.
    pub l_nominal_nm: f64,
    /// Long-channel NMOS threshold voltage in volts.
    pub vth0_n: f64,
    /// Long-channel PMOS threshold voltage magnitude in volts.
    pub vth0_p: f64,
    /// Velocity-saturation exponent of the alpha-power law (1 = fully
    /// velocity saturated, 2 = long-channel square law).
    pub alpha: f64,
    /// NMOS transconductance factor: `I_on = k_n (W/L) (Vdd - Vth)^alpha`
    /// in µA per square.
    pub k_n: f64,
    /// PMOS transconductance factor in µA per square.
    pub k_p: f64,
    /// Short-channel V_th roll-off amplitude in volts:
    /// `Vth(L) = Vth0 - a · exp(-L / lambda)`.
    pub vth_rolloff_v: f64,
    /// Roll-off characteristic length in nm.
    pub vth_rolloff_lambda_nm: f64,
    /// Subthreshold swing in mV/decade.
    pub subthreshold_swing_mv: f64,
    /// Leakage prefactor: `I_off = i_leak0 (W/L) 10^(-Vth / S)` in µA.
    pub i_leak0: f64,
    /// Gate-oxide areal capacitance in fF/nm².
    pub c_ox: f64,
    /// Gate overlap/fringe capacitance in fF per nm of width.
    pub c_overlap: f64,
    /// Effective junction (drain) capacitance in fF per nm of width.
    pub c_junction: f64,
}

impl ProcessParams {
    /// The 90 nm-class process used throughout the reproduction
    /// (λ = 193 nm lithography generation; see `DESIGN.md`).
    ///
    /// Calibration sanity targets: a W = 1 µm NMOS at nominal L drives
    /// ≈ 500–700 µA, leaks tens of nA, and has ≈ 1.5–2.5 fF of gate
    /// capacitance — consistent with published 90 nm data.
    pub fn n90() -> ProcessParams {
        ProcessParams {
            vdd: 1.2,
            l_nominal_nm: 90.0,
            vth0_n: 0.32,
            vth0_p: 0.35,
            alpha: 1.3,
            k_n: 62.0,
            k_p: 28.0,
            vth_rolloff_v: 30.0,
            vth_rolloff_lambda_nm: 13.0,
            subthreshold_swing_mv: 85.0,
            i_leak0: 2.2,
            c_ox: 1.7e-5,
            c_overlap: 2.6e-4,
            c_junction: 4.0e-4,
        }
    }
}

impl ProcessParams {
    /// The same process at a different supply voltage (voltage-scaling
    /// studies: the alpha-power delay grows as `Vdd / (Vdd - Vth)^alpha`
    /// when the supply drops).
    ///
    /// # Panics
    ///
    /// Panics if `vdd` is not a positive finite voltage.
    pub fn with_vdd(&self, vdd: f64) -> ProcessParams {
        assert!(vdd.is_finite() && vdd > 0.0, "invalid supply voltage {vdd}");
        ProcessParams {
            vdd,
            ..self.clone()
        }
    }
}

impl Default for ProcessParams {
    fn default() -> Self {
        ProcessParams::n90()
    }
}

/// Transistor polarity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MosKind {
    /// N-channel device (pull-down).
    Nmos,
    /// P-channel device (pull-up).
    Pmos,
}

impl std::fmt::Display for MosKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MosKind::Nmos => f.write_str("nmos"),
            MosKind::Pmos => f.write_str("pmos"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_n90() {
        assert_eq!(ProcessParams::default(), ProcessParams::n90());
    }

    #[test]
    fn voltage_scaling_slows_delay() {
        use crate::mosfet::Mosfet;
        use crate::params::MosKind;
        let nominal = ProcessParams::n90();
        let low = nominal.with_vdd(0.9);
        let d = Mosfet::new(MosKind::Nmos, 1000.0, 90.0).expect("device");
        // R_eff ∝ Vdd/(Vdd - Vth)^alpha grows as Vdd drops toward Vth.
        assert!(d.r_eff(&low) > 1.2 * d.r_eff(&nominal));
        // Subthreshold leakage is Vdd-independent in this model.
        assert!((d.i_off(&low) - d.i_off(&nominal)).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "invalid supply voltage")]
    fn with_vdd_rejects_nonsense() {
        let _ = ProcessParams::n90().with_vdd(-1.0);
    }

    #[test]
    fn rolloff_is_meaningful_at_nominal() {
        // The roll-off term must be a few tens of mV at nominal L so that
        // printed-CD variation of a few nm visibly moves Vth.
        let p = ProcessParams::n90();
        let dv = p.vth_rolloff_v * (-p.l_nominal_nm / p.vth_rolloff_lambda_nm).exp();
        assert!(dv > 0.01 && dv < 0.1, "roll-off at nominal = {dv} V");
    }
}
