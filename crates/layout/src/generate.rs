//! Benchmark circuit generators.
//!
//! The paper evaluates on production speed paths; we substitute generated
//! circuits with the same structural property that drives the paper's
//! headline result: *many near-critical paths whose gates sit in different
//! layout contexts*, so that drawn-CD timing and post-OPC-CD timing
//! diverge and reorder path criticality.

use crate::error::Result;
use crate::netlist::{GateKind, NetId, Netlist, NetlistBuilder};
use crate::tech::Drive;
use postopc_rng::rngs::StdRng;
use postopc_rng::{RngExt, SeedableRng};

/// Builds `out = a NAND b` and returns the output net.
fn nand2(b: &mut NetlistBuilder, a: NetId, x: NetId, name: &str) -> Result<NetId> {
    let out = b.net(format!("{name}_o"));
    b.named_gate(name, GateKind::Nand2, Drive::X1, &[a, x], out)?;
    Ok(out)
}

/// Builds a 9-NAND full adder; returns `(sum, carry_out)`.
fn full_adder(
    b: &mut NetlistBuilder,
    a: NetId,
    x: NetId,
    c: NetId,
    name: &str,
) -> Result<(NetId, NetId)> {
    let t1 = nand2(b, a, x, &format!("{name}_t1"))?;
    let t2 = nand2(b, a, t1, &format!("{name}_t2"))?;
    let t3 = nand2(b, x, t1, &format!("{name}_t3"))?;
    let x1 = nand2(b, t2, t3, &format!("{name}_x1"))?; // a ^ x
    let t4 = nand2(b, x1, c, &format!("{name}_t4"))?;
    let t5 = nand2(b, x1, t4, &format!("{name}_t5"))?;
    let t6 = nand2(b, c, t4, &format!("{name}_t6"))?;
    let s = nand2(b, t5, t6, &format!("{name}_s"))?;
    let cout = nand2(b, t4, t1, &format!("{name}_co"))?;
    Ok((s, cout))
}

/// An inverter chain of `stages` stages — the minimal litho-context
/// testbench (dense and isolated fingers depending on placement).
///
/// # Errors
///
/// Returns a netlist error only for `stages == 0` (empty design).
pub fn inverter_chain(stages: usize) -> Result<Netlist> {
    let mut b = NetlistBuilder::new(format!("chain{stages}"));
    let mut prev = b.input("in");
    for i in 0..stages {
        let next = b.net(format!("n{i}"));
        b.named_gate(format!("inv{i}"), GateKind::Inv, Drive::X1, &[prev], next)?;
        prev = next;
    }
    b.output(prev);
    b.build()
}

/// An n-bit ripple-carry adder built from 9-NAND full adders.
///
/// Produces `9n` NAND2 gates with a long carry chain — the classic
/// near-critical-path generator.
///
/// # Errors
///
/// Returns a netlist error only for `bits == 0`.
pub fn ripple_carry_adder(bits: usize) -> Result<Netlist> {
    let mut b = NetlistBuilder::new(format!("rca{bits}"));
    let a: Vec<NetId> = (0..bits).map(|i| b.input(format!("a{i}"))).collect();
    let x: Vec<NetId> = (0..bits).map(|i| b.input(format!("b{i}"))).collect();
    let mut carry = b.input("cin");
    for i in 0..bits {
        let (s, c) = full_adder(&mut b, a[i], x[i], carry, &format!("fa{i}"))?;
        b.output(s);
        carry = c;
    }
    b.output(carry);
    b.build()
}

/// An n×n array multiplier: AND-matrix partial products reduced by rows of
/// full adders. Generates a rich set of converging medium-length paths.
///
/// # Errors
///
/// Returns a netlist error only for `bits < 2`.
pub fn array_multiplier(bits: usize) -> Result<Netlist> {
    let mut b = NetlistBuilder::new(format!("mult{bits}"));
    let a: Vec<NetId> = (0..bits).map(|i| b.input(format!("a{i}"))).collect();
    let x: Vec<NetId> = (0..bits).map(|i| b.input(format!("b{i}"))).collect();
    // Partial products pp[i][j] = a[i] AND x[j] = INV(NAND).
    let mut pp = vec![vec![None; bits]; bits];
    for i in 0..bits {
        for j in 0..bits {
            let n = nand2(&mut b, a[i], x[j], &format!("pp{i}_{j}_n"))?;
            let o = b.net(format!("pp{i}_{j}"));
            b.named_gate(format!("pp{i}_{j}_i"), GateKind::Inv, Drive::X1, &[n], o)?;
            pp[i][j] = Some(o);
        }
    }
    // The loops above fill every slot, so indexing never sees a `None`.
    #[allow(clippy::expect_used)]
    let pp = |i: usize, j: usize| pp[i][j].expect("all partial products built");
    // Row-by-row carry-save reduction.
    let zero = b.input("zero"); // tie-low pseudo-input
    let mut row: Vec<NetId> = (0..bits).map(|j| pp(0, j)).collect();
    row.push(zero);
    let mut product: Vec<NetId> = vec![row[0]];
    for i in 1..bits {
        let mut carry = zero;
        let mut next_row = Vec::with_capacity(bits + 1);
        for j in 0..bits {
            let addend = if j + 1 < row.len() { row[j + 1] } else { zero };
            let (s, c) = full_adder(&mut b, pp(i, j), addend, carry, &format!("m{i}_{j}"))?;
            next_row.push(s);
            carry = c;
        }
        next_row.push(carry);
        product.push(next_row[0]);
        row = next_row;
    }
    for &s in product.iter().chain(row[1..].iter()) {
        b.output(s);
    }
    b.build()
}

/// Parameters for [`random_logic`].
#[derive(Debug, Clone, PartialEq)]
pub struct RandomLogicSpec {
    /// Number of gates to generate.
    pub gates: usize,
    /// Number of primary inputs.
    pub inputs: usize,
    /// Bias toward recently created nets (0 = uniform, higher = deeper
    /// circuits with longer paths).
    pub depth_bias: f64,
    /// RNG seed (generation is fully deterministic given the spec).
    pub seed: u64,
}

impl Default for RandomLogicSpec {
    fn default() -> Self {
        RandomLogicSpec {
            gates: 400,
            inputs: 24,
            depth_bias: 2.0,
            seed: 7,
        }
    }
}

/// A random layered combinational network (ISCAS-like), deterministic in
/// the spec's seed.
///
/// # Errors
///
/// Returns a netlist error only for a spec with `gates == 0` or
/// `inputs == 0`.
pub fn random_logic(spec: &RandomLogicSpec) -> Result<Netlist> {
    let mut rng = StdRng::seed_from_u64(spec.seed);
    let mut b = NetlistBuilder::new(format!("rand{}x{}", spec.gates, spec.seed));
    let mut nets: Vec<NetId> = (0..spec.inputs)
        .map(|i| b.input(format!("pi{i}")))
        .collect();
    for g in 0..spec.gates {
        let kind = match rng.random_range(0..10) {
            0..=1 => GateKind::Inv,
            2 => GateKind::Buf,
            3..=6 => GateKind::Nand2,
            7..=8 => GateKind::Nor2,
            _ => GateKind::Nand3,
        };
        let drive = match rng.random_range(0..10) {
            0..=5 => Drive::X1,
            6..=8 => Drive::X2,
            _ => Drive::X4,
        };
        // Pick inputs biased toward recent nets for depth.
        let mut inputs = Vec::with_capacity(kind.arity());
        for _ in 0..kind.arity() {
            let u: f64 = rng.random_range(0.0..1.0);
            let frac = 1.0 - u.powf(spec.depth_bias);
            let idx = ((nets.len() - 1) as f64 * frac).round() as usize;
            inputs.push(nets[idx.min(nets.len() - 1)]);
        }
        let out = b.net(format!("w{g}"));
        b.named_gate(format!("g{g}"), kind, drive, &inputs, out)?;
        nets.push(out);
    }
    // Nets with no sinks become primary outputs.
    let used: std::collections::HashSet<NetId> = b.nets_used_as_inputs().into_iter().collect();
    for &n in &nets {
        if !used.contains(&n) {
            b.output(n);
        }
    }
    b.build()
}

/// A farm of near-critical speed paths: `paths` parallel chains, each of
/// `depth` stages built from the *same multiset* of gate kinds in a
/// seed-shuffled order.
///
/// Because every chain instantiates identical cells, drawn-CD timing
/// ranks them within a few picoseconds of each other (the "slack wall" a
/// timing-optimized design shows); their *placement contexts* differ, so
/// post-OPC extracted CDs — and therefore the silicon ranking — diverge.
/// This is the workload for the criticality-reordering experiment (F3).
///
/// # Errors
///
/// Returns a netlist error only for `paths == 0` or `depth == 0`.
pub fn speed_path_farm(paths: usize, depth: usize, seed: u64) -> Result<Netlist> {
    let mut b = NetlistBuilder::new(format!("farm{paths}x{depth}"));
    let mut rng = StdRng::seed_from_u64(seed);
    // The per-chain stage multiset: heavy on stacked gates so CD
    // sensitivity is meaningful.
    let mut stage_kinds: Vec<GateKind> = Vec::with_capacity(depth);
    for i in 0..depth {
        stage_kinds.push(match i % 5 {
            0 => GateKind::Nand2,
            1 => GateKind::Inv,
            2 => GateKind::Nor2,
            3 => GateKind::Nand3,
            _ => GateKind::Inv,
        });
    }
    for p in 0..paths {
        let start = b.input(format!("pi{p}"));
        let side_a = b.input(format!("sa{p}"));
        let side_b = b.input(format!("sb{p}"));
        // Shuffle the common multiset differently per chain.
        let mut kinds = stage_kinds.clone();
        for i in (1..kinds.len()).rev() {
            let j = rng.random_range(0..=i);
            kinds.swap(i, j);
        }
        let mut prev = start;
        for (s, kind) in kinds.iter().enumerate() {
            let out = b.net(format!("p{p}_s{s}"));
            let inputs: Vec<NetId> = match kind.arity() {
                1 => vec![prev],
                2 => vec![prev, side_a],
                _ => vec![prev, side_a, side_b],
            };
            b.named_gate(format!("p{p}g{s}"), *kind, Drive::X1, &inputs, out)?;
            prev = out;
        }
        b.output(prev);
    }
    b.build()
}

/// A registered speed-path farm: like [`speed_path_farm`], but every
/// chain launches from a D flip-flop and captures into one — true
/// register-to-register speed paths with clock-to-Q and setup arcs.
///
/// All registers share one clock primary input.
///
/// # Errors
///
/// Returns a netlist error only for `paths == 0` or `depth == 0`.
pub fn registered_farm(paths: usize, depth: usize, seed: u64) -> Result<Netlist> {
    let mut b = NetlistBuilder::new(format!("regfarm{paths}x{depth}"));
    let mut rng = StdRng::seed_from_u64(seed);
    let clk = b.input("clk");
    let mut stage_kinds: Vec<GateKind> = Vec::with_capacity(depth);
    for i in 0..depth {
        stage_kinds.push(match i % 5 {
            0 => GateKind::Nand2,
            1 => GateKind::Inv,
            2 => GateKind::Nor2,
            3 => GateKind::Nand3,
            _ => GateKind::Inv,
        });
    }
    for p in 0..paths {
        let d_in = b.input(format!("d{p}"));
        let side_a = b.input(format!("sa{p}"));
        let side_b = b.input(format!("sb{p}"));
        let q = b.net(format!("p{p}_q"));
        b.named_gate(
            format!("p{p}_launch"),
            GateKind::Dff,
            Drive::X1,
            &[d_in, clk],
            q,
        )?;
        let mut kinds = stage_kinds.clone();
        for i in (1..kinds.len()).rev() {
            let j = rng.random_range(0..=i);
            kinds.swap(i, j);
        }
        let mut prev = q;
        for (s, kind) in kinds.iter().enumerate() {
            let out = b.net(format!("p{p}_s{s}"));
            let inputs: Vec<NetId> = match kind.arity() {
                1 => vec![prev],
                2 => vec![prev, side_a],
                _ => vec![prev, side_a, side_b],
            };
            b.named_gate(format!("p{p}g{s}"), *kind, Drive::X1, &inputs, out)?;
            prev = out;
        }
        let q_out = b.net(format!("p{p}_qo"));
        b.named_gate(
            format!("p{p}_capture"),
            GateKind::Dff,
            Drive::X1,
            &[prev, clk],
            q_out,
        )?;
        b.output(q_out);
    }
    b.build()
}

/// The composite test case used for the paper's evaluation experiments:
/// an 8-bit ripple-carry adder, a 4×4 array multiplier and a random-logic
/// block merged into a single netlist with shared primary inputs — a
/// design with hundreds of near-critical paths through differing layout
/// neighbourhoods.
///
/// # Errors
///
/// Propagates netlist construction errors (none for valid seeds).
pub fn paper_testcase(seed: u64) -> Result<Netlist> {
    let mut b = NetlistBuilder::new(format!("testcase_s{seed}"));
    let mut rng = StdRng::seed_from_u64(seed);

    // Shared primary inputs.
    let pis: Vec<NetId> = (0..20).map(|i| b.input(format!("pi{i}"))).collect();

    // 8-bit RCA.
    let mut carry = pis[16];
    for i in 0..8 {
        let (s, c) = full_adder(&mut b, pis[i], pis[8 + i], carry, &format!("fa{i}"))?;
        b.output(s);
        carry = c;
    }
    b.output(carry);

    // 4x4 multiplier on the low inputs.
    let mut row: Vec<NetId> = Vec::new();
    for j in 0..4 {
        let n = nand2(&mut b, pis[j], pis[4], &format!("mp0_{j}_n"))?;
        let o = b.net(format!("mp0_{j}"));
        b.named_gate(format!("mp0_{j}_i"), GateKind::Inv, Drive::X1, &[n], o)?;
        row.push(o);
    }
    let mut mult_carry = pis[17];
    for i in 1..4 {
        let mut next = Vec::new();
        for j in 0..4 {
            let n = nand2(&mut b, pis[j], pis[4 + i], &format!("mp{i}_{j}_n"))?;
            let o = b.net(format!("mp{i}_{j}"));
            b.named_gate(format!("mp{i}_{j}_i"), GateKind::Inv, Drive::X1, &[n], o)?;
            let addend = if j + 1 < row.len() {
                row[j + 1]
            } else {
                pis[18]
            };
            let (s, c) = full_adder(&mut b, o, addend, mult_carry, &format!("mm{i}_{j}"))?;
            next.push(s);
            mult_carry = c;
        }
        b.output(next[0]);
        row = next;
    }
    b.output(mult_carry);

    // Random-logic cloud seeded from the shared inputs.
    let mut nets: Vec<NetId> = pis.clone();
    for g in 0..360 {
        let kind = match rng.random_range(0..10) {
            0..=1 => GateKind::Inv,
            2 => GateKind::Buf,
            3..=6 => GateKind::Nand2,
            7..=8 => GateKind::Nor2,
            _ => GateKind::Nand3,
        };
        let drive = match rng.random_range(0..10) {
            0..=5 => Drive::X1,
            6..=8 => Drive::X2,
            _ => Drive::X4,
        };
        let mut inputs = Vec::with_capacity(kind.arity());
        for _ in 0..kind.arity() {
            let u: f64 = rng.random_range(0.0..1.0);
            let frac = 1.0 - u.powf(2.0);
            let idx = ((nets.len() - 1) as f64 * frac).round() as usize;
            inputs.push(nets[idx.min(nets.len() - 1)]);
        }
        let out = b.net(format!("rl{g}"));
        b.named_gate(format!("rl{g}"), kind, drive, &inputs, out)?;
        nets.push(out);
    }
    let used: std::collections::HashSet<NetId> = b.nets_used_as_inputs().into_iter().collect();
    for &n in &nets[20..] {
        if !used.contains(&n) {
            b.output(n);
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inverter_chain_has_linear_structure() {
        let nl = inverter_chain(10).expect("chain");
        assert_eq!(nl.gate_count(), 10);
        assert_eq!(nl.primary_inputs().len(), 1);
        assert_eq!(nl.primary_outputs().len(), 1);
    }

    #[test]
    fn rca_gate_count_is_nine_per_bit() {
        let nl = ripple_carry_adder(8).expect("rca");
        assert_eq!(nl.gate_count(), 72);
        assert_eq!(nl.primary_outputs().len(), 9); // 8 sums + carry out
    }

    #[test]
    fn multiplier_builds_and_validates() {
        let nl = array_multiplier(4).expect("mult");
        // 16 partial products (2 gates each) + 12 full adders (9 each).
        assert_eq!(nl.gate_count(), 16 * 2 + 12 * 9);
        assert!(!nl.primary_outputs().is_empty());
    }

    #[test]
    fn random_logic_is_deterministic() {
        let spec = RandomLogicSpec {
            gates: 100,
            ..RandomLogicSpec::default()
        };
        let a = random_logic(&spec).expect("random");
        let b = random_logic(&spec).expect("random");
        assert_eq!(a.gate_count(), b.gate_count());
        assert_eq!(a.gates()[37], b.gates()[37]);
    }

    #[test]
    fn random_logic_seeds_differ() {
        let a = random_logic(&RandomLogicSpec {
            gates: 100,
            seed: 1,
            ..RandomLogicSpec::default()
        })
        .expect("random");
        let b = random_logic(&RandomLogicSpec {
            gates: 100,
            seed: 2,
            ..RandomLogicSpec::default()
        })
        .expect("random");
        assert_ne!(a.gates(), b.gates());
    }

    #[test]
    fn speed_path_farm_structure() {
        let nl = speed_path_farm(8, 20, 3).expect("farm");
        assert_eq!(nl.gate_count(), 8 * 20);
        assert_eq!(nl.primary_outputs().len(), 8);
        assert_eq!(nl.primary_inputs().len(), 24);
        // Chains share no gates; each endpoint's cone is depth 20.
        let a = speed_path_farm(8, 20, 3).expect("farm");
        assert_eq!(a.gates(), nl.gates());
        let b = speed_path_farm(8, 20, 4).expect("farm");
        assert_ne!(b.gates(), nl.gates());
    }

    #[test]
    fn registered_farm_has_launch_and_capture_registers() {
        let nl = registered_farm(4, 10, 1).expect("farm");
        // Per path: launch DFF + 10 combinational + capture DFF.
        assert_eq!(nl.gate_count(), 4 * 12);
        let dffs = nl
            .gates()
            .iter()
            .filter(|g| g.kind == GateKind::Dff)
            .count();
        assert_eq!(dffs, 8);
        assert_eq!(nl.primary_outputs().len(), 4);
    }

    #[test]
    fn paper_testcase_is_substantial_and_valid() {
        let nl = paper_testcase(11).expect("testcase");
        assert!(nl.gate_count() > 500, "got {} gates", nl.gate_count());
        assert!(nl.primary_outputs().len() > 10);
        // Topological order covers every gate exactly once.
        let mut seen = vec![false; nl.gate_count()];
        for &g in nl.topological_order() {
            assert!(!seen[g.0 as usize]);
            seen[g.0 as usize] = true;
        }
        assert!(seen.into_iter().all(|s| s));
    }
}
