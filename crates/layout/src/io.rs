//! Layout stream I/O: a minimal line-oriented text interchange format.
//!
//! Real flows exchange GDSII/OASIS; this workspace uses a transparent text
//! equivalent so flattened geometry can be dumped, diffed, and re-read —
//! one shape per line:
//!
//! ```text
//! postopc-layout v1
//! # comment
//! poly 0,0 90,0 90,600 0,600
//! metal1 0,0 120,0 120,5000 0,5000
//! ```
//!
//! Vertices are `x,y` integer nm pairs in CCW or CW order (winding is
//! normalized on read).

use crate::error::{LayoutError, Result};
use crate::layer::Layer;
use postopc_geom::{Point, Polygon};
use std::io::{BufRead, BufReader, Read, Write};

/// The format header line.
const HEADER: &str = "postopc-layout v1";

/// Writes `(layer, polygon)` records to `writer` in the text format.
///
/// A `mut` reference can be passed for `writer` (e.g. `&mut Vec<u8>` or
/// `&mut File`).
///
/// # Errors
///
/// Returns [`LayoutError::Io`] on write failure.
pub fn write_shapes<'a, W, I>(mut writer: W, shapes: I) -> Result<()>
where
    W: Write,
    I: IntoIterator<Item = (Layer, &'a Polygon)>,
{
    writeln!(writer, "{HEADER}").map_err(io_err)?;
    for (layer, polygon) in shapes {
        write!(writer, "{layer}").map_err(io_err)?;
        for v in polygon.vertices() {
            write!(writer, " {},{}", v.x, v.y).map_err(io_err)?;
        }
        writeln!(writer).map_err(io_err)?;
    }
    Ok(())
}

/// Reads `(layer, polygon)` records from `reader`.
///
/// A `mut` reference can be passed for `reader`.
///
/// # Errors
///
/// Returns [`LayoutError::Io`] for read failures and
/// [`LayoutError::Parse`] for malformed content (bad header, unknown
/// layer, malformed vertex, invalid polygon).
pub fn read_shapes<R: Read>(reader: R) -> Result<Vec<(Layer, Polygon)>> {
    let mut lines = BufReader::new(reader).lines();
    let header = lines
        .next()
        .ok_or_else(|| parse_err(0, "empty stream"))?
        .map_err(io_err)?;
    if header.trim() != HEADER {
        return Err(parse_err(1, &format!("bad header {header:?}")));
    }
    let mut shapes = Vec::new();
    for (index, line) in lines.enumerate() {
        let line_no = index + 2;
        let line = line.map_err(io_err)?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut fields = line.split_whitespace();
        let layer_name = fields
            .next()
            .ok_or_else(|| parse_err(line_no, "missing layer"))?;
        let layer = parse_layer(layer_name)
            .ok_or_else(|| parse_err(line_no, &format!("unknown layer {layer_name:?}")))?;
        let mut vertices = Vec::new();
        for field in fields {
            let (x, y) = field
                .split_once(',')
                .ok_or_else(|| parse_err(line_no, &format!("malformed vertex {field:?}")))?;
            let x = x
                .parse()
                .map_err(|_| parse_err(line_no, &format!("bad x coordinate {x:?}")))?;
            let y = y
                .parse()
                .map_err(|_| parse_err(line_no, &format!("bad y coordinate {y:?}")))?;
            vertices.push(Point::new(x, y));
        }
        let polygon = Polygon::new(vertices)
            .map_err(|e| parse_err(line_no, &format!("invalid polygon: {e}")))?;
        shapes.push((layer, polygon));
    }
    Ok(shapes)
}

fn parse_layer(name: &str) -> Option<Layer> {
    Layer::ALL.into_iter().find(|l| l.to_string() == name)
}

fn io_err(e: std::io::Error) -> LayoutError {
    LayoutError::Io(e.to_string())
}

fn parse_err(line: usize, reason: &str) -> LayoutError {
    LayoutError::Parse {
        line,
        reason: reason.to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::design::Design;
    use crate::generate;
    use crate::tech::TechRules;
    use postopc_geom::Rect;

    #[test]
    fn round_trips_a_compiled_design() {
        let design = Design::compile(
            generate::inverter_chain(3).expect("netlist"),
            TechRules::n90(),
        )
        .expect("design");
        let mut all: Vec<(Layer, &Polygon)> = Vec::new();
        for layer in Layer::ALL {
            for p in design.shapes_on(layer) {
                all.push((layer, p));
            }
        }
        let mut buffer = Vec::new();
        write_shapes(&mut buffer, all.iter().map(|&(l, p)| (l, p))).expect("write");
        let restored = read_shapes(buffer.as_slice()).expect("read");
        assert_eq!(restored.len(), all.len());
        for ((la, pa), (lb, pb)) in all.iter().zip(&restored) {
            assert_eq!(la, lb);
            assert_eq!(*pa, pb);
        }
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let text = "postopc-layout v1\n\n# a comment\npoly 0,0 90,0 90,600 0,600\n";
        let shapes = read_shapes(text.as_bytes()).expect("read");
        assert_eq!(shapes.len(), 1);
        assert_eq!(shapes[0].0, Layer::Poly);
        assert_eq!(
            shapes[0].1,
            Polygon::from(Rect::new(0, 0, 90, 600).expect("rect"))
        );
    }

    #[test]
    fn rejects_bad_header() {
        assert!(matches!(
            read_shapes("gdsii\npoly 0,0 1,0 1,1 0,1\n".as_bytes()),
            Err(LayoutError::Parse { line: 1, .. })
        ));
        assert!(read_shapes("".as_bytes()).is_err());
    }

    #[test]
    fn rejects_unknown_layer_and_bad_vertices() {
        let bad_layer = "postopc-layout v1\nmystery 0,0 1,0 1,1 0,1\n";
        assert!(matches!(
            read_shapes(bad_layer.as_bytes()),
            Err(LayoutError::Parse { line: 2, .. })
        ));
        let bad_vertex = "postopc-layout v1\npoly 0,0 1;0 1,1 0,1\n";
        assert!(read_shapes(bad_vertex.as_bytes()).is_err());
        let bad_poly = "postopc-layout v1\npoly 0,0 1,1 2,2 3,3\n";
        assert!(read_shapes(bad_poly.as_bytes()).is_err());
    }

    #[test]
    fn winding_normalized_on_read() {
        // Clockwise input comes back as a valid CCW polygon equal to the
        // canonical rect polygon.
        let text = "postopc-layout v1\npoly 0,0 0,600 90,600 90,0\n";
        let shapes = read_shapes(text.as_bytes()).expect("read");
        assert_eq!(
            shapes[0].1,
            Polygon::from(Rect::new(0, 0, 90, 600).expect("rect"))
        );
    }
}
