//! Selective post-OPC extraction: the paper's core engine.
//!
//! For every *tagged* gate instance, the extractor builds a local
//! simulation window around the instance's poly geometry, applies the
//! configured OPC recipe (none / rule / model — with neighbouring
//! geometry as rule-corrected context), images the corrected mask,
//! slices every printed channel, reduces slices to equivalent lengths,
//! and writes the result into a [`CdAnnotation`] ready for timing
//! back-annotation.
//!
//! Windowing is per-instance rather than full-chip: this *is* the paper's
//! "selective extraction from the global circuit netlist" — experiment T9
//! quantifies the resulting scalability.

use crate::error::Result;
use crate::tags::TagSet;
use postopc_cdex::{extract_gate, ExtractedGate, MeasureConfig};
use postopc_device::ProcessParams;
use postopc_geom::{Coord, Polygon};
use postopc_layout::{Design, GateId, Layer};
use postopc_litho::{AerialImage, ResistModel, SimulationSpec};
use postopc_opc::{model, rules, ModelOpcConfig, RuleOpcConfig};
use postopc_sta::{CdAnnotation, GateAnnotation, TransistorCd};
use std::collections::HashMap;

/// How the mask in each extraction window is corrected before imaging.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OpcMode {
    /// No correction: image the drawn layout (the "what if we skipped
    /// OPC" baseline of experiment T1).
    None,
    /// Rule-based OPC on targets and context.
    Rule,
    /// Model-based OPC on the instance's polygons, rule-corrected
    /// context (the production recipe).
    #[default]
    Model,
}

/// Across-chip systematic process variation: a smooth focus/dose surface
/// over the die (lens field curvature, post-exposure-bake plate gradients,
/// etch loading — the dominant 90 nm CD-uniformity terms).
///
/// Real across-field variation lives at the millimetre scale; our
/// substitute die is tens of µm, so the map is scale-compressed: `period`
/// should be chosen relative to the die size (see `DESIGN.md`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AcrossChipMap {
    /// Peak focus excursion in nm.
    pub focus_amplitude_nm: f64,
    /// Peak relative dose excursion (0.02 = ±2%).
    pub dose_amplitude: f64,
    /// Spatial period of the variation surface, in nm.
    pub period_nm: f64,
}

impl AcrossChipMap {
    /// A typical 90 nm across-chip budget: ±60 nm focus, ±2% dose.
    pub fn typical(die: postopc_geom::Rect) -> AcrossChipMap {
        AcrossChipMap {
            focus_amplitude_nm: 60.0,
            dose_amplitude: 0.02,
            period_nm: (die.width().max(die.height()) as f64) * 0.8,
        }
    }

    /// The local exposure conditions at a die position.
    pub fn conditions_at(
        &self,
        die: postopc_geom::Rect,
        position: postopc_geom::Point,
        base: postopc_litho::ProcessConditions,
    ) -> postopc_litho::ProcessConditions {
        let tau = std::f64::consts::TAU;
        let u = tau * (position.x - die.left()) as f64 / self.period_nm;
        let v = tau * (position.y - die.bottom()) as f64 / self.period_nm;
        postopc_litho::ProcessConditions {
            focus_nm: base.focus_nm + self.focus_amplitude_nm * u.sin() * v.cos(),
            dose: base.dose * (1.0 + self.dose_amplitude * (u + 0.7).cos() * (v + 0.3).sin()),
        }
    }
}

/// Extraction configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct ExtractionConfig {
    /// Imaging model.
    pub sim: SimulationSpec,
    /// Resist threshold model.
    pub resist: ResistModel,
    /// Gate slicing parameters.
    pub measure: MeasureConfig,
    /// Device model for equivalent-length reduction.
    pub process: ProcessParams,
    /// Mask correction recipe.
    pub opc_mode: OpcMode,
    /// Model-OPC settings (used when `opc_mode == Model`).
    pub model_opc: ModelOpcConfig,
    /// Rule-OPC settings (used for context and `opc_mode == Rule`).
    pub rule_opc: RuleOpcConfig,
    /// Extra margin around the instance bbox for the simulation window, nm.
    pub window_margin_nm: Coord,
    /// Context gathering radius beyond the window (optical ambit), nm.
    pub context_ambit_nm: Coord,
    /// Optional across-chip systematic variation surface: each gate is
    /// imaged at the *local* focus/dose of its die position.
    pub across_chip: Option<AcrossChipMap>,
}

impl ExtractionConfig {
    /// The production recipe: model OPC, standard measurement.
    pub fn standard() -> ExtractionConfig {
        ExtractionConfig {
            sim: SimulationSpec::nominal(),
            resist: ResistModel::standard(),
            measure: MeasureConfig::standard(),
            process: ProcessParams::n90(),
            opc_mode: OpcMode::Model,
            model_opc: ModelOpcConfig::standard(),
            rule_opc: RuleOpcConfig::standard(),
            window_margin_nm: 80,
            context_ambit_nm: 420,
            across_chip: None,
        }
    }

    /// The same configuration at different process conditions (for
    /// process-window timing, experiment F5).
    pub fn with_conditions(&self, conditions: postopc_litho::ProcessConditions) -> ExtractionConfig {
        let mut cfg = self.clone();
        cfg.sim = cfg.sim.with_conditions(conditions);
        cfg.model_opc.sim = cfg.model_opc.sim.clone(); // OPC stays at nominal: masks are built once
        cfg
    }
}

impl Default for ExtractionConfig {
    fn default() -> Self {
        ExtractionConfig::standard()
    }
}

/// Bookkeeping of one extraction run.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ExtractionStats {
    /// Gates successfully extracted.
    pub gates_extracted: usize,
    /// Gates that fell back to drawn dimensions (unprinted channels).
    pub gates_failed: usize,
    /// Simulation windows imaged (one per gate + OPC-internal iterations).
    pub windows: usize,
    /// Model-OPC aerial simulations (cost metric of experiment T7/T9).
    pub opc_simulations: usize,
    /// Model-OPC fragment moves.
    pub opc_fragment_moves: usize,
    /// All per-transistor extraction records (input to CD statistics, T2).
    pub extracted: Vec<ExtractedGate>,
}

/// Result of an extraction run: the annotation plus its statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct ExtractionOutcome {
    /// Per-gate extracted CDs, ready for [`postopc_sta::TimingModel::analyze`].
    pub annotation: CdAnnotation,
    /// Run statistics.
    pub stats: ExtractionStats,
}

/// Extracts post-OPC CDs for every tagged gate of `design`.
///
/// # Errors
///
/// Propagates simulation/OPC errors; per-gate measurement failures are
/// recorded in the stats (the gate keeps drawn dimensions) rather than
/// aborting the run.
pub fn extract_gates(
    design: &Design,
    config: &ExtractionConfig,
    tags: &TagSet,
) -> Result<ExtractionOutcome> {
    // Group transistor sites by gate for quick lookup.
    let mut sites_by_gate: HashMap<GateId, Vec<usize>> = HashMap::new();
    for (i, site) in design.transistor_sites().iter().enumerate() {
        sites_by_gate.entry(site.gate).or_default().push(i);
    }
    let mut annotation = CdAnnotation::new();
    let mut stats = ExtractionStats::default();

    for gate_id in tags.sorted() {
        let gate = design.netlist().gate(gate_id);
        let cell = design.library().cell(gate.kind, gate.drive);
        let inst = design
            .placement()
            .instance(gate_id)
            .expect("every netlist gate is placed");
        // Target polygons: this instance's poly shapes in chip coordinates.
        let targets: Vec<Polygon> = cell
            .shapes_on(Layer::Poly)
            .map(|p| inst.transform.apply_polygon(p))
            .collect();
        let window = targets
            .iter()
            .map(|p| p.bbox())
            .reduce(|a, b| a.union_bbox(&b))
            .expect("cells have poly")
            .expand(config.window_margin_nm)?;
        // Context: every other poly shape within the optical ambit.
        let search = window.expand(config.context_ambit_nm)?;
        let target_set: std::collections::HashSet<&Polygon> = targets.iter().collect();
        let context: Vec<Polygon> = design
            .shapes_in_window(Layer::Poly, search)
            .into_iter()
            .filter(|p| !target_set.contains(p))
            .cloned()
            .collect();

        // Correct the mask.
        let (mask_targets, mask_context) = match config.opc_mode {
            OpcMode::None => (targets.clone(), context.clone()),
            OpcMode::Rule => {
                let t = rules::correct(&config.rule_opc, &targets, &context)?;
                let c = rules::correct(&config.rule_opc, &context, &targets)?;
                (t.corrected, c.corrected)
            }
            OpcMode::Model => {
                let c = rules::correct(&config.rule_opc, &context, &targets)?;
                let m = model::correct(&config.model_opc, &targets, &c.corrected, window)?;
                stats.opc_simulations += m.report.simulations;
                stats.opc_fragment_moves += m.report.fragment_moves;
                (m.corrected, c.corrected)
            }
        };

        // Image the corrected mask at the extraction conditions — adjusted
        // to the local across-chip conditions of this gate if a map is set.
        let mask: Vec<Polygon> = mask_targets.iter().chain(mask_context.iter()).cloned().collect();
        let sim = match &config.across_chip {
            Some(map) => config.sim.with_conditions(map.conditions_at(
                design.die(),
                window.center(),
                config.sim.conditions,
            )),
            None => config.sim.clone(),
        };
        let image = AerialImage::simulate(&sim, &mask, window)?;
        stats.windows += 1;

        // Extract every channel of this gate.
        match extract_instance(config, design, gate_id, cell, &sites_by_gate, &image) {
            Some((records, extracted)) => {
                annotation.set_gate(gate_id, GateAnnotation { transistors: records });
                stats.extracted.extend(extracted);
                stats.gates_extracted += 1;
            }
            None => {
                stats.gates_failed += 1;
            }
        }
    }
    Ok(ExtractionOutcome { annotation, stats })
}

/// Extracts all channels of one instance; `None` if any channel failed
/// (the gate then keeps drawn dimensions).
fn extract_instance(
    config: &ExtractionConfig,
    design: &Design,
    gate_id: GateId,
    cell: &postopc_layout::CellLayout,
    sites_by_gate: &HashMap<GateId, Vec<usize>>,
    image: &AerialImage,
) -> Option<(Vec<TransistorCd>, Vec<ExtractedGate>)> {
    let resist = &config.resist;
    let mut records = Vec::new();
    let mut extracted_records = Vec::new();
    for &site_index in sites_by_gate.get(&gate_id)? {
        let site = &design.transistor_sites()[site_index];
        let extracted =
            extract_gate(&config.measure, &config.process, image, resist, site).ok()?;
        // Recover the logical input pin from the cell template.
        let input_pin = cell
            .transistors()
            .iter()
            .find(|t| t.finger == site.finger && t.kind == site.kind)
            .and_then(|t| t.input_pin);
        records.push(TransistorCd {
            kind: site.kind,
            width_nm: site.width_nm,
            l_delay_nm: extracted.equivalent.l_delay_nm,
            l_leakage_nm: extracted.equivalent.l_leakage_nm,
            input_pin,
            finger: site.finger,
        });
        extracted_records.push(extracted);
    }
    Some((records, extracted_records))
}

#[cfg(test)]
mod tests {
    use super::*;
    use postopc_layout::{generate, TechRules};

    fn chain_design(n: usize) -> Design {
        Design::compile(generate::inverter_chain(n).expect("netlist"), TechRules::n90())
            .expect("design")
    }

    fn fast_config(mode: OpcMode) -> ExtractionConfig {
        let mut cfg = ExtractionConfig::standard();
        cfg.opc_mode = mode;
        cfg.model_opc.iterations = 3;
        cfg
    }

    #[test]
    fn extracts_all_tagged_gates() {
        let d = chain_design(6);
        let tags = TagSet::all(&d);
        let out = extract_gates(&d, &fast_config(OpcMode::Rule), &tags).expect("extract");
        assert_eq!(out.stats.gates_extracted, 6);
        assert_eq!(out.stats.gates_failed, 0);
        assert_eq!(out.annotation.gate_count(), 6);
        // Each inverter has 2 channels.
        assert_eq!(out.stats.extracted.len(), 12);
        // Extracted lengths are near drawn but not exactly drawn.
        let mean = out.annotation.mean_l_delay_nm().expect("annotated");
        assert!((mean - 90.0).abs() < 20.0, "mean extracted L = {mean}");
    }

    #[test]
    fn selective_extraction_touches_only_tagged() {
        let d = chain_design(8);
        let mut tags = TagSet::new();
        tags.insert(GateId(0));
        tags.insert(GateId(3));
        let out = extract_gates(&d, &fast_config(OpcMode::Rule), &tags).expect("extract");
        assert_eq!(out.annotation.gate_count(), 2);
        assert!(out.annotation.gate(GateId(0)).is_some());
        assert!(out.annotation.gate(GateId(1)).is_none());
        assert_eq!(out.stats.windows, 2);
    }

    #[test]
    fn model_mode_costs_simulations() {
        let d = chain_design(3);
        let mut tags = TagSet::new();
        tags.insert(GateId(1));
        let rule = extract_gates(&d, &fast_config(OpcMode::Rule), &tags).expect("extract");
        let model = extract_gates(&d, &fast_config(OpcMode::Model), &tags).expect("extract");
        assert_eq!(rule.stats.opc_simulations, 0);
        assert!(model.stats.opc_simulations >= 3);
        assert!(model.stats.opc_fragment_moves > 0);
    }

    #[test]
    fn opc_improves_extracted_cd_accuracy() {
        let d = chain_design(5);
        let tags = TagSet::all(&d);
        let none = extract_gates(&d, &fast_config(OpcMode::None), &tags).expect("extract");
        let model = extract_gates(&d, &fast_config(OpcMode::Model), &tags).expect("extract");
        let rms = |out: &ExtractionOutcome| {
            let v: Vec<f64> = out
                .stats
                .extracted
                .iter()
                .map(|e| e.equivalent.l_delay_nm - e.site.drawn_l_nm)
                .collect();
            (v.iter().map(|d| d * d).sum::<f64>() / v.len() as f64).sqrt()
        };
        assert!(
            rms(&model) < rms(&none),
            "model OPC should bring printed CDs toward drawn: {} vs {}",
            rms(&model),
            rms(&none)
        );
    }

    #[test]
    fn annotation_preserves_pin_mapping() {
        let d = Design::compile(
            generate::ripple_carry_adder(1).expect("netlist"),
            TechRules::n90(),
        )
        .expect("design");
        let mut tags = TagSet::new();
        tags.insert(GateId(0)); // a NAND2
        let out = extract_gates(&d, &fast_config(OpcMode::Rule), &tags).expect("extract");
        let ann = out.annotation.gate(GateId(0)).expect("annotated");
        assert_eq!(ann.transistors.len(), 4); // 2 fingers × N/P
        let pins: std::collections::HashSet<Option<usize>> =
            ann.transistors.iter().map(|t| t.input_pin).collect();
        assert!(pins.contains(&Some(0)) && pins.contains(&Some(1)));
    }
}
