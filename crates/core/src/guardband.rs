//! Guardband analysis: how much timing margin post-OPC extraction
//! recovers versus traditional worst-case corners.
//!
//! The practical payoff of experiment T6: if the extracted-distribution
//! Monte Carlo bound is tighter than the uniform-corner bound, a design
//! signed off on extraction can run at a faster clock (or ship with less
//! margin) — quantified here.

use crate::error::Result;
use postopc_sta::{
    analyze_corners_with, statistical, CdAnnotation, CompiledSta, Corner, MonteCarloConfig,
    StaScratch, TimingModel,
};

/// Guardband comparison configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct GuardbandConfig {
    /// Uniform corner CD guardband (3σ) in nm.
    pub corner_sigma3_nm: f64,
    /// Monte Carlo settings for the extracted-distribution bound.
    pub monte_carlo: MonteCarloConfig,
    /// Percentile of the MC delay distribution used as the statistical
    /// bound (0.99 = 99th percentile of delay = 1st percentile of slack).
    pub percentile: f64,
}

impl Default for GuardbandConfig {
    fn default() -> Self {
        GuardbandConfig {
            corner_sigma3_nm: 6.0,
            monte_carlo: MonteCarloConfig {
                samples: 300,
                sigma_nm: 1.5,
                seed: 7,
                ..MonteCarloConfig::default()
            },
            percentile: 0.99,
        }
    }
}

/// The two worst-case bounds and the margin between them.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GuardbandAnalysis {
    /// Nominal (drawn TT) critical delay, in ps.
    pub nominal_delay_ps: f64,
    /// Slow-corner critical delay, in ps.
    pub corner_delay_ps: f64,
    /// Extracted-distribution percentile delay, in ps.
    pub statistical_delay_ps: f64,
    /// Statistical delay at the 50th / 90th / 99th delay percentiles, in
    /// ps — the distribution profile behind `statistical_delay_ps`,
    /// computed in one pass over the cached quantile view.
    pub statistical_profile_ps: [f64; 3],
    /// Margin the corner wastes relative to the statistical bound, in ps.
    pub recoverable_margin_ps: f64,
}

impl GuardbandAnalysis {
    /// Runs both analyses against the same timing model.
    ///
    /// `extracted` is the systematic annotation the Monte Carlo samples
    /// around (pass the post-OPC extraction result); the corner uses the
    /// traditional uniform shift.
    ///
    /// # Errors
    ///
    /// Propagates timing and Monte Carlo errors.
    pub fn compute(
        model: &TimingModel<'_>,
        extracted: &CdAnnotation,
        config: &GuardbandConfig,
    ) -> Result<GuardbandAnalysis> {
        // One compiled evaluator serves all three analyses (drawn,
        // corner, Monte Carlo) instead of compiling per call.
        let compiled = model.compile()?;
        let mut scratch = compiled.scratch();
        Self::compute_with(&compiled, &mut scratch, extracted, config)
    }

    /// [`Self::compute`] against an existing compiled evaluator and
    /// scratch — warm sessions ([`crate::TimingSession`]) answer repeated
    /// guardband queries without recompiling or re-characterizing.
    ///
    /// Leaves `scratch` holding the SS-corner evaluation, not the
    /// extracted baseline; callers that interleave incremental (ECO)
    /// queries must re-establish their baseline afterwards.
    ///
    /// # Errors
    ///
    /// Propagates timing and Monte Carlo errors.
    pub fn compute_with(
        compiled: &CompiledSta<'_>,
        scratch: &mut StaScratch,
        extracted: &CdAnnotation,
        config: &GuardbandConfig,
    ) -> Result<GuardbandAnalysis> {
        let model = compiled.model();
        let nominal = compiled.evaluate(scratch, None)?;
        let ss = analyze_corners_with(
            compiled,
            scratch,
            &[Corner {
                name: "SS".into(),
                delta_l_nm: config.corner_sigma3_nm,
            }],
        )?
        .pop()
        .unwrap_or_else(|| unreachable!("one corner in, one report out"));
        let mc = statistical::run_with(compiled, Some(extracted), &config.monte_carlo)?;
        // One multi-quantile query against the cached sorted view: the
        // signoff percentile plus the p50/p90/p99 delay profile (delay
        // percentile p = slack quantile 1 - p).
        let qs = mc.worst_slack_quantiles_ps(&[1.0 - config.percentile, 0.5, 0.1, 0.01]);
        let statistical_delay = model.clock_ps() - qs[0];
        Ok(GuardbandAnalysis {
            nominal_delay_ps: nominal.critical_delay_ps(),
            corner_delay_ps: ss.critical_delay_ps(),
            statistical_delay_ps: statistical_delay,
            statistical_profile_ps: [
                model.clock_ps() - qs[1],
                model.clock_ps() - qs[2],
                model.clock_ps() - qs[3],
            ],
            recoverable_margin_ps: ss.critical_delay_ps() - statistical_delay,
        })
    }

    /// Recoverable margin as a fraction of the corner bound.
    pub fn recoverable_fraction(&self) -> f64 {
        if self.corner_delay_ps <= 0.0 {
            return 0.0;
        }
        self.recoverable_margin_ps / self.corner_delay_ps
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::extract::{extract_gates, ExtractionConfig, OpcMode};
    use crate::tags::TagSet;
    use postopc_device::ProcessParams;
    use postopc_layout::{generate, Design, TechRules};

    #[test]
    fn extraction_recovers_margin_over_corners() {
        let design = Design::compile(
            generate::ripple_carry_adder(2).expect("netlist"),
            TechRules::n90(),
        )
        .expect("design");
        let model = TimingModel::new(&design, ProcessParams::n90(), 800.0).expect("model");
        let mut cfg = ExtractionConfig::standard();
        cfg.opc_mode = OpcMode::Rule;
        let out = extract_gates(&design, &cfg, &TagSet::all(&design)).expect("extraction");
        let analysis = GuardbandAnalysis::compute(
            &model,
            &out.annotation,
            &GuardbandConfig {
                monte_carlo: MonteCarloConfig {
                    samples: 80,
                    sigma_nm: 1.5,
                    seed: 7,
                    ..MonteCarloConfig::default()
                },
                ..GuardbandConfig::default()
            },
        )
        .expect("analysis");
        // The corner bound is the most pessimistic; the statistical bound
        // sits between nominal and corner.
        assert!(analysis.corner_delay_ps > analysis.statistical_delay_ps);
        assert!(analysis.statistical_delay_ps > 0.9 * analysis.nominal_delay_ps);
        assert!(analysis.recoverable_margin_ps > 0.0);
        assert!(analysis.recoverable_fraction() > 0.0 && analysis.recoverable_fraction() < 0.5);
        // The delay profile is monotone in the percentile, and the default
        // signoff percentile (0.99) coincides with the profile's p99 entry.
        let [p50, p90, p99] = analysis.statistical_profile_ps;
        assert!(p50 <= p90 && p90 <= p99);
        assert_eq!(p99, analysis.statistical_delay_ps);
    }
}
