/root/repo/target/release/deps/ablations-fc341d14d33e4721.d: crates/bench/benches/ablations.rs Cargo.toml

/root/repo/target/release/deps/libablations-fc341d14d33e4721.rmeta: crates/bench/benches/ablations.rs Cargo.toml

crates/bench/benches/ablations.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
