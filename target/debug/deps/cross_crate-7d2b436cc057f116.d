/root/repo/target/debug/deps/cross_crate-7d2b436cc057f116.d: tests/cross_crate.rs

/root/repo/target/debug/deps/cross_crate-7d2b436cc057f116: tests/cross_crate.rs

tests/cross_crate.rs:
