//! Reduction of measured slices to equivalent rectangular transistors, and
//! the complete per-site extraction record.

use crate::error::Result;
use crate::measure::{measure_gate_slices, MeasureConfig};
use postopc_device::{EquivalentGate, ProcessParams, SlicedGate};
use postopc_layout::TransistorSite;
use postopc_litho::{AerialImage, ResistModel};

/// The complete extraction record of one transistor channel.
#[derive(Debug, Clone, PartialEq)]
pub struct ExtractedGate {
    /// The site this record was extracted from.
    pub site: TransistorSite,
    /// Measured slices (bottom to top along the width).
    pub slices: Vec<postopc_device::GateSlice>,
    /// Equivalent rectangular transistor (delay and leakage lengths).
    pub equivalent: EquivalentGate,
}

impl ExtractedGate {
    /// Width-weighted mean printed CD across the slices, in nm — the
    /// "single mid-gate CD" a naive extraction would report.
    pub fn mean_cd_nm(&self) -> f64 {
        let total_w: f64 = self.slices.iter().map(|s| s.w_nm).sum();
        self.slices.iter().map(|s| s.w_nm * s.l_nm).sum::<f64>() / total_w
    }

    /// Deviation of the delay-equivalent length from drawn, in nm.
    pub fn delta_l_nm(&self) -> f64 {
        self.equivalent.l_delay_nm - self.site.drawn_l_nm
    }
}

/// Extracts one transistor site from an aerial image: slice measurement
/// followed by equivalent-length reduction under `process`.
///
/// # Errors
///
/// Returns a measurement error if the channel does not print, or a device
/// error if the reduction fails (requires pathological slice data).
pub fn extract_gate(
    config: &MeasureConfig,
    process: &ProcessParams,
    image: &AerialImage,
    resist: &ResistModel,
    site: &TransistorSite,
) -> Result<ExtractedGate> {
    let slices = measure_gate_slices(config, image, resist, site)?;
    let sliced = SlicedGate::new(site.kind, slices.clone())?;
    let equivalent = sliced.equivalent(process)?;
    Ok(ExtractedGate {
        site: *site,
        slices,
        equivalent,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use postopc_device::MosKind;
    use postopc_geom::{Polygon, Rect};
    use postopc_layout::GateId;
    use postopc_litho::SimulationSpec;

    fn extract_finger(poly_top: i64) -> ExtractedGate {
        let poly = Polygon::from(Rect::new(-45, -500, 45, poly_top).expect("rect"));
        let channel = Rect::new(-45, -210, 45, 210).expect("rect");
        let image = AerialImage::simulate(
            &SimulationSpec::nominal(),
            &[poly],
            Rect::new(-400, -500, 400, 500).expect("rect"),
        )
        .expect("image");
        let site = TransistorSite {
            gate: GateId(0),
            kind: MosKind::Nmos,
            channel,
            width_nm: 420.0,
            drawn_l_nm: 90.0,
            finger: 0,
        };
        extract_gate(
            &MeasureConfig::standard(),
            &ProcessParams::n90(),
            &image,
            &ResistModel::standard(),
            &site,
        )
        .expect("extraction")
    }

    #[test]
    fn long_finger_extracts_near_drawn() {
        let e = extract_finger(500);
        assert!((e.equivalent.l_delay_nm - 90.0).abs() < 20.0);
        assert!((e.mean_cd_nm() - 90.0).abs() < 20.0);
        assert_eq!(e.equivalent.w_nm, 420.0);
    }

    #[test]
    fn leakage_length_at_most_delay_length() {
        let e = extract_finger(500);
        assert!(e.equivalent.l_leakage_nm <= e.equivalent.l_delay_nm + 1e-9);
    }

    #[test]
    fn short_endcap_shifts_equivalent_length_down() {
        // Insufficient endcap: line-end pullback intrudes into the channel,
        // the top slices narrow, and both equivalent lengths drop below the
        // long-finger case.
        let long = extract_finger(500);
        let short = extract_finger(240); // endcap only 30 nm past active
        assert!(
            short.equivalent.l_delay_nm < long.equivalent.l_delay_nm,
            "short endcap {} should be faster than long {}",
            short.equivalent.l_delay_nm,
            long.equivalent.l_delay_nm
        );
        assert!(short.equivalent.l_leakage_nm < long.equivalent.l_leakage_nm);
        assert!(short.delta_l_nm() < long.delta_l_nm());
    }
}
