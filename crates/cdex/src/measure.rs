//! Printed-gate measurement: slicing a transistor channel out of an
//! aerial image.
//!
//! For each transistor channel (a vertical poly finger crossing a
//! horizontal active stripe), cutlines are cast across the gate at several
//! heights along the transistor width. Each cutline yields one printed CD;
//! together they form the slice stack that the companion paper's
//! non-rectangular-transistor model consumes.

use crate::error::{CdexError, Result};
use postopc_device::GateSlice;
use postopc_layout::TransistorSite;
use postopc_litho::{cutline, AerialImage, ResistModel};

/// Extraction parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MeasureConfig {
    /// Target slice height along the transistor width, in nm.
    pub slice_height_nm: f64,
    /// Minimum number of slices per gate.
    pub min_slices: usize,
    /// Maximum half-width searched for the printed edge, in nm.
    pub max_half_cd_nm: f64,
    /// Inset from the active edges for the first/last cutline, in nm
    /// (avoids measuring exactly at the diffusion corner).
    pub edge_inset_nm: f64,
}

impl MeasureConfig {
    /// Production-style settings: ~80 nm slices, 3-slice minimum.
    pub fn standard() -> MeasureConfig {
        MeasureConfig {
            slice_height_nm: 80.0,
            min_slices: 3,
            max_half_cd_nm: 120.0,
            edge_inset_nm: 10.0,
        }
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`CdexError::InvalidConfig`] for non-positive or
    /// non-finite parameters.
    pub fn validate(&self) -> Result<()> {
        for (name, v) in [
            ("slice_height_nm", self.slice_height_nm),
            ("max_half_cd_nm", self.max_half_cd_nm),
            ("edge_inset_nm", self.edge_inset_nm),
        ] {
            if !(v.is_finite() && v > 0.0) {
                return Err(CdexError::InvalidConfig { name, value: v });
            }
        }
        if self.min_slices == 0 {
            return Err(CdexError::InvalidConfig {
                name: "min_slices",
                value: 0.0,
            });
        }
        Ok(())
    }
}

impl Default for MeasureConfig {
    fn default() -> Self {
        MeasureConfig::standard()
    }
}

/// Slices the printed channel of `site` out of `image`.
///
/// Returns one [`GateSlice`] per cutline, bottom to top. Slices where the
/// feature failed to print are skipped; if *no* slice prints, the gate is
/// reported missing.
///
/// # Errors
///
/// Returns [`CdexError::GateMissing`] for an unprinted channel or
/// [`CdexError::InvalidConfig`] for a bad config.
pub fn measure_gate_slices(
    config: &MeasureConfig,
    image: &AerialImage,
    resist: &ResistModel,
    site: &TransistorSite,
) -> Result<Vec<GateSlice>> {
    config.validate()?;
    let channel = site.channel;
    // Channel: vertical poly finger; CD measured horizontally, slices
    // stacked vertically along the transistor width.
    let width = channel.height() as f64;
    let n = ((width / config.slice_height_nm).round() as usize).max(config.min_slices);
    let usable = width - 2.0 * config.edge_inset_nm;
    let slice_w = width / n as f64;
    let x_center = (channel.left() + channel.right()) as f64 / 2.0;
    let mut slices = Vec::with_capacity(n);
    for i in 0..n {
        let frac = (i as f64 + 0.5) / n as f64;
        let y = channel.bottom() as f64 + config.edge_inset_nm + usable * frac;
        // A locally pinched slice (Err) is skipped.
        if let Ok(cd) = cutline::measure_cd(
            image,
            resist,
            (x_center, y),
            (1.0, 0.0),
            config.max_half_cd_nm,
        ) {
            slices.push(GateSlice {
                w_nm: slice_w,
                l_nm: cd,
            });
        }
    }
    if slices.is_empty() {
        return Err(CdexError::GateMissing {
            x_nm: x_center,
            y_nm: (channel.bottom() + channel.top()) as f64 / 2.0,
        });
    }
    Ok(slices)
}

#[cfg(test)]
mod tests {
    use super::*;
    use postopc_device::MosKind;
    use postopc_geom::{Polygon, Rect};
    use postopc_layout::GateId;
    use postopc_litho::{AerialImage, SimulationSpec};

    fn site(channel: Rect) -> TransistorSite {
        TransistorSite {
            gate: GateId(0),
            kind: MosKind::Nmos,
            channel,
            width_nm: channel.height() as f64,
            drawn_l_nm: channel.width() as f64,
            finger: 0,
        }
    }

    fn image_of(mask: &[Polygon]) -> AerialImage {
        AerialImage::simulate(
            &SimulationSpec::nominal(),
            mask,
            Rect::new(-400, -500, 400, 500).expect("rect"),
        )
        .expect("image")
    }

    #[test]
    fn config_validation() {
        assert!(MeasureConfig::standard().validate().is_ok());
        let bad = MeasureConfig {
            slice_height_nm: 0.0,
            ..MeasureConfig::standard()
        };
        assert!(bad.validate().is_err());
        let bad = MeasureConfig {
            min_slices: 0,
            ..MeasureConfig::standard()
        };
        assert!(bad.validate().is_err());
    }

    #[test]
    fn slices_cover_the_channel_width() {
        // Poly finger from -45..45 crossing an active 420 tall.
        let poly = Polygon::from(Rect::new(-45, -500, 45, 500).expect("rect"));
        let channel = Rect::new(-45, -210, 45, 210).expect("rect");
        let image = image_of(&[poly]);
        let slices = measure_gate_slices(
            &MeasureConfig::standard(),
            &image,
            &ResistModel::standard(),
            &site(channel),
        )
        .expect("slices");
        assert!(slices.len() >= 3);
        let total_w: f64 = slices.iter().map(|s| s.w_nm).sum();
        assert!((total_w - 420.0).abs() < 1.0);
        for s in &slices {
            assert!((s.l_nm - 90.0).abs() < 25.0, "slice CD {} nm", s.l_nm);
        }
    }

    #[test]
    fn missing_gate_is_reported() {
        let channel = Rect::new(-45, -210, 45, 210).expect("rect");
        let image = image_of(&[]); // nothing printed
        let err = measure_gate_slices(
            &MeasureConfig::standard(),
            &image,
            &ResistModel::standard(),
            &site(channel),
        )
        .unwrap_err();
        assert!(matches!(err, CdexError::GateMissing { .. }));
    }

    #[test]
    fn corner_rounding_narrows_edge_slices() {
        // A poly finger ending just past the channel: the slice nearest the
        // line end prints shorter than the middle slice.
        let poly = Polygon::from(Rect::new(-45, -280, 45, 240).expect("rect")); // 30 nm endcap
        let channel = Rect::new(-45, -210, 45, 210).expect("rect");
        let image = image_of(&[poly]);
        let slices = measure_gate_slices(
            &MeasureConfig {
                slice_height_nm: 60.0,
                ..MeasureConfig::standard()
            },
            &image,
            &ResistModel::standard(),
            &site(channel),
        )
        .expect("slices");
        // The top slice sits ~70 nm below the line end; core blur mass
        // lost past the end narrows it relative to the middle of the gate.
        let top = slices.last().expect("non-empty").l_nm;
        let mid = slices[slices.len() / 2].l_nm;
        assert!(
            top < mid,
            "endcap slice {top} should be narrower than mid {mid}"
        );
    }
}
