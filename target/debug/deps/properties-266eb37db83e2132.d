/root/repo/target/debug/deps/properties-266eb37db83e2132.d: crates/opc/tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-266eb37db83e2132.rmeta: crates/opc/tests/properties.rs Cargo.toml

crates/opc/tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
