//! Error types for geometry construction and processing.

use std::error::Error;
use std::fmt;

/// Errors produced when constructing or validating geometric objects.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum GeomError {
    /// A polygon failed rectilinear validation.
    ///
    /// Carries a human-readable reason (too few vertices, non-axis-parallel
    /// edge, zero-length edge, self-touching contour, zero area, ...).
    InvalidPolygon(String),
    /// A rectangle was specified with inverted or degenerate extents.
    EmptyRect {
        /// Requested width (may be zero or negative before normalization).
        width: i64,
        /// Requested height.
        height: i64,
    },
    /// A grid or raster was requested with a non-positive resolution.
    InvalidResolution(f64),
    /// An index was out of bounds for the addressed structure.
    OutOfBounds {
        /// The offending index.
        index: usize,
        /// The size of the structure.
        len: usize,
    },
}

impl fmt::Display for GeomError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GeomError::InvalidPolygon(reason) => write!(f, "invalid polygon: {reason}"),
            GeomError::EmptyRect { width, height } => {
                write!(f, "empty rectangle: width {width} x height {height}")
            }
            GeomError::InvalidResolution(res) => {
                write!(f, "invalid raster resolution: {res}")
            }
            GeomError::OutOfBounds { index, len } => {
                write!(f, "index {index} out of bounds for length {len}")
            }
        }
    }
}

impl Error for GeomError {}

/// Convenience result alias used throughout the geometry crate.
pub type Result<T> = std::result::Result<T, GeomError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_informative() {
        let e = GeomError::InvalidPolygon("diagonal edge at vertex 3".into());
        assert_eq!(e.to_string(), "invalid polygon: diagonal edge at vertex 3");
        let e = GeomError::EmptyRect {
            width: 0,
            height: 5,
        };
        assert!(e.to_string().contains("empty rectangle"));
        let e = GeomError::InvalidResolution(-1.0);
        assert!(e.to_string().contains("-1"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<GeomError>();
    }
}
