/root/repo/target/debug/deps/postopc_sta-20c12acf2bbd07c4.d: crates/sta/src/lib.rs crates/sta/src/annotate.rs crates/sta/src/corners.rs crates/sta/src/error.rs crates/sta/src/graph.rs crates/sta/src/liberty.rs crates/sta/src/paths.rs crates/sta/src/statistical.rs Cargo.toml

/root/repo/target/debug/deps/libpostopc_sta-20c12acf2bbd07c4.rmeta: crates/sta/src/lib.rs crates/sta/src/annotate.rs crates/sta/src/corners.rs crates/sta/src/error.rs crates/sta/src/graph.rs crates/sta/src/liberty.rs crates/sta/src/paths.rs crates/sta/src/statistical.rs Cargo.toml

crates/sta/src/lib.rs:
crates/sta/src/annotate.rs:
crates/sta/src/corners.rs:
crates/sta/src/error.rs:
crates/sta/src/graph.rs:
crates/sta/src/liberty.rs:
crates/sta/src/paths.rs:
crates/sta/src/statistical.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
