//! # postopc-layout
//!
//! Layout database, standard-cell library, netlist, placement and routing —
//! the substrate that stands in for the paper's production placed-and-routed
//! full-chip layout (see `DESIGN.md` for the substitution argument).
//!
//! Pipeline:
//!
//! 1. build or generate a [`Netlist`] ([`generate`] has adders, multipliers,
//!    random logic and the composite [`generate::paper_testcase`]);
//! 2. [`Design::compile`] places it in standard-cell rows, routes every net
//!    with metal-1/metal-2 L-routes, flattens all polygons to chip
//!    coordinates, and extracts the [`TransistorSite`] cross-reference that
//!    ties each netlist gate to its channel geometry — the correspondence
//!    the paper's "selective extraction" and "back-annotation" steps need.
//!
//! # Example
//!
//! ```
//! use postopc_layout::{Design, generate, TechRules, Layer};
//! # fn main() -> Result<(), postopc_layout::LayoutError> {
//! let netlist = generate::ripple_carry_adder(4)?;
//! let design = Design::compile(netlist, TechRules::n90())?;
//! println!(
//!     "die {} x {} nm, {} poly shapes",
//!     design.die().width(),
//!     design.die().height(),
//!     design.shapes_on(Layer::Poly).len()
//! );
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

mod density;
mod design;
pub mod drc;
mod error;
pub mod generate;
pub mod io;
mod layer;
mod library;
mod netlist;
mod place;
mod route;
mod stdcells;
mod tech;
mod xref;

pub use density::DensityMap;
pub use design::Design;
pub use error::{LayoutError, Result};
pub use layer::Layer;
pub use library::CellLibrary;
pub use netlist::{Gate, GateId, GateKind, Net, NetId, Netlist, NetlistBuilder};
pub use place::{PlacedGate, Placement, PlacementOptions};
pub use route::{NetRoute, RouteSegment, Routing};
pub use stdcells::{CellLayout, CellTransistor};
pub use tech::{Drive, TechRules};
pub use xref::{transistor_sites, TransistorSite};
