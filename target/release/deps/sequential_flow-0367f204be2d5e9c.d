/root/repo/target/release/deps/sequential_flow-0367f204be2d5e9c.d: tests/sequential_flow.rs Cargo.toml

/root/repo/target/release/deps/libsequential_flow-0367f204be2d5e9c.rmeta: tests/sequential_flow.rs Cargo.toml

tests/sequential_flow.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
