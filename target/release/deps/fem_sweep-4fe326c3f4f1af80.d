/root/repo/target/release/deps/fem_sweep-4fe326c3f4f1af80.d: crates/bench/benches/fem_sweep.rs Cargo.toml

/root/repo/target/release/deps/libfem_sweep-4fe326c3f4f1af80.rmeta: crates/bench/benches/fem_sweep.rs Cargo.toml

crates/bench/benches/fem_sweep.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
